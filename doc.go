// Package mvml is a from-scratch Go reproduction of "Multi-version Machine
// Learning and Rejuvenation for Resilient Perception in Safety-critical
// Systems" (DSN 2025): an N-version ML architecture with a trusted voter and
// reactive plus time-triggered proactive rejuvenation, its DSPN reliability
// models, the fault-injection experiments that parameterise them, and a
// driving-simulator case study evaluating end-to-end safety.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory and per-experiment index); cmd/ hosts the binaries that
// regenerate every table and figure of the paper's evaluation, examples/
// shows the public API in use, and bench_test.go ties each experiment to a
// testing.B benchmark.
package mvml
