// Benchmarks for the fused batched-GEMM inference hot path: the per-sample
// Forward loop against three arena-backed paths, per architecture and batch
// size —
//
//	path=fused    the unpacked blocked kernels (DisablePacking; the
//	              pre-packing baseline)
//	path=packed   the default register-blocked packed kernels, bitwise
//	              identical to fused
//	path=int8     the quantized fixed-point path (symmetric per-layer
//	              scales, exact int32 accumulation)
//
// Run with
//
//	go test -run '^$' -bench '^BenchmarkGemmInference' -benchmem .
//
// or via `./bench.sh`, which parses the output into BENCH_gemm.json. Every
// arena path must report 0 allocs/op in steady state (warmed arena, reused
// prediction slice) — that is an acceptance criterion, not an aspiration.
package mvml_test

import (
	"fmt"
	"testing"

	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

func inferBatch(b *testing.B, bsz int) (*tensor.Tensor, []*tensor.Tensor) {
	b.Helper()
	r := xrand.New(uint64(bsz))
	samples := make([]*tensor.Tensor, bsz)
	for i := range samples {
		x := tensor.New(nn.InputChannels, nn.InputSize, nn.InputSize)
		x.RandomizeUniform(r, 0, 1)
		samples[i] = x
	}
	batch, err := nn.Stack(samples)
	if err != nil {
		b.Fatal(err)
	}
	return batch, samples
}

func BenchmarkGemmInference(b *testing.B) {
	for _, name := range nn.AllModels() {
		net, err := nn.NewModel(name, 7, xrand.New(uint64(name)))
		if err != nil {
			b.Fatal(err)
		}
		for _, bsz := range []int{1, 8, 32} {
			batch, samples := inferBatch(b, bsz)
			b.Run(fmt.Sprintf("model=%s/path=persample/batch=%d", name, bsz), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, x := range samples {
						if _, err := net.Predict(x); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			benchArena := func(path string, configure func(*nn.InferenceArena)) {
				b.Run(fmt.Sprintf("model=%s/path=%s/batch=%d", name, path, bsz), func(b *testing.B) {
					ar := nn.NewInferenceArena()
					configure(ar)
					preds, err := net.PredictBatchArena(batch, ar, nil) // warm the arena
					if err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if preds, err = net.PredictBatchArena(batch, ar, preds); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			benchArena("fused", func(ar *nn.InferenceArena) { ar.DisablePacking = true })
			benchArena("packed", func(*nn.InferenceArena) {})
			benchArena("int8", func(ar *nn.InferenceArena) {
				quant, err := nn.CalibrateInt8(net, calibSamples(b, samples), 32)
				if err != nil {
					b.Fatal(err)
				}
				ar.Quant = quant
			})
		}
	}
}

// calibSamples wraps the benchmark inputs as a calibration set — the bench
// measures kernel speed, not accuracy, so calibrating on the serving inputs
// themselves is exactly right.
func calibSamples(b *testing.B, xs []*tensor.Tensor) []nn.Sample {
	b.Helper()
	out := make([]nn.Sample, len(xs))
	for i, x := range xs {
		out[i] = nn.Sample{X: x}
	}
	return out
}
