// Benchmarks for the fused batched-GEMM inference hot path: the per-sample
// Forward loop against the arena-backed fused path, per architecture and
// batch size. Run with
//
//	go test -run '^$' -bench '^BenchmarkGemmInference' -benchmem .
//
// or via `./bench.sh`, which parses the output into BENCH_gemm.json. The
// fused path must report 0 allocs/op in steady state (warmed arena, reused
// prediction slice) — that is an acceptance criterion, not an aspiration.
package mvml_test

import (
	"fmt"
	"testing"

	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

func inferBatch(b *testing.B, bsz int) (*tensor.Tensor, []*tensor.Tensor) {
	b.Helper()
	r := xrand.New(uint64(bsz))
	samples := make([]*tensor.Tensor, bsz)
	for i := range samples {
		x := tensor.New(nn.InputChannels, nn.InputSize, nn.InputSize)
		x.RandomizeUniform(r, 0, 1)
		samples[i] = x
	}
	batch, err := nn.Stack(samples)
	if err != nil {
		b.Fatal(err)
	}
	return batch, samples
}

func BenchmarkGemmInference(b *testing.B) {
	for _, name := range nn.AllModels() {
		net, err := nn.NewModel(name, 7, xrand.New(uint64(name)))
		if err != nil {
			b.Fatal(err)
		}
		for _, bsz := range []int{1, 8, 32} {
			batch, samples := inferBatch(b, bsz)
			b.Run(fmt.Sprintf("model=%s/path=persample/batch=%d", name, bsz), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, x := range samples {
						if _, err := net.Predict(x); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.Run(fmt.Sprintf("model=%s/path=fused/batch=%d", name, bsz), func(b *testing.B) {
				ar := nn.NewInferenceArena()
				preds, err := net.PredictBatchArena(batch, ar, nil) // warm the arena
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if preds, err = net.PredictBatchArena(batch, ar, preds); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
