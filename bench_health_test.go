// Benchmarks for the streaming health engine's serving overhead: the same
// sequential Classify loop against a fully instrumented server without the
// engine and one with it riding the span firehose (detectors, SLO trackers
// and the α estimator all live). Run with
//
//	go test -run '^$' -bench '^BenchmarkServeHealth' .
//
// or via `./bench.sh`, which parses the output into BENCH_health.json and
// reports the relative overhead. The acceptance bar is <5% on the end-to-end
// request path — the engine judges the firehose, it must not tax it.
package mvml_test

import (
	"testing"

	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/serve"
)

func BenchmarkServeHealth(b *testing.B) {
	run := func(b *testing.B, withEngine bool) {
		rt := obs.NewRuntime(4096)
		cfg := obsBenchConfig()
		if withEngine {
			cfg.Health = &health.Options{}
		}
		s, err := serve.New(cfg, rt)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchServe(b, s)
		if withEngine {
			if v := s.Health().Snapshot(); v == nil || v.Spans == 0 {
				b.Fatal("health engine observed no spans")
			}
		}
	}
	b.Run("health=off", func(b *testing.B) { run(b, false) })
	b.Run("health=on", func(b *testing.B) { run(b, true) })
}
