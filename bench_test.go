// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment harness and reports the
// headline quantities via b.ReportMetric, so `go test -bench=. -benchmem`
// reproduces the whole evaluation in one sweep:
//
//	BenchmarkTableII    — fault-injection accuracies and fitted p/p'/α
//	BenchmarkTableIII   — per-state reliability functions
//	BenchmarkTableV     — steady-state reliability of the 6 configurations
//	BenchmarkFig4a..f   — the parameter sweeps of Fig. 4
//	BenchmarkTableVI    — driving-safety comparison over 8 routes
//	BenchmarkTableVII   — rejuvenation-interval sweep
//	BenchmarkTableVIII  — FPS/CPU/GPU overhead proxies
//	BenchmarkAblation*  — design-choice ablations from DESIGN.md
package mvml_test

import (
	"testing"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/experiments"
	"mvml/internal/nn"
	"mvml/internal/obs"
	"mvml/internal/perception"
	"mvml/internal/petri"
	"mvml/internal/reliability"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// benchSimConfig keeps the DSPN solves fast while preserving tight CIs.
func benchSimConfig() petri.SimConfig {
	return petri.SimConfig{Horizon: 2e6, Warmup: 2e4}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableII(experiments.QuickTableIIConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.P, "p")
		b.ReportMetric(res.PPrime, "p'")
		b.ReportMetric(res.Alpha, "alpha")
	}
}

func BenchmarkTableIII(b *testing.B) {
	params := reliability.DefaultParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableIII(params)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Values[0], "R(3,0,0)")
	}
}

func BenchmarkTableV(b *testing.B) {
	params := reliability.DefaultParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableV(params, benchSimConfig(), xrand.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Without[3], "3v-wo")
		b.ReportMetric(res.With[3], "3v-w")
		b.ReportMetric(res.With[2], "2v-w")
	}
}

// benchFig4 runs one sweep letter and reports the 3-version endpoints.
func benchFig4(b *testing.B, letter string) {
	b.Helper()
	params := reliability.DefaultParams()
	cfg := experiments.Fig4Config{SimConfig: benchSimConfig(), Points: 6}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(letter, params, cfg, xrand.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		first := res.Points[0]
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(first.With[3], "3v-w-first")
		b.ReportMetric(last.With[3], "3v-w-last")
	}
}

func BenchmarkFig4a(b *testing.B) { benchFig4(b, "a") }
func BenchmarkFig4b(b *testing.B) { benchFig4(b, "b") }
func BenchmarkFig4c(b *testing.B) { benchFig4(b, "c") }
func BenchmarkFig4d(b *testing.B) { benchFig4(b, "d") }
func BenchmarkFig4e(b *testing.B) { benchFig4(b, "e") }
func BenchmarkFig4f(b *testing.B) { benchFig4(b, "f") }

func BenchmarkTableVI(b *testing.B) {
	cfg := experiments.DefaultCaseStudyConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableVI(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var withColl, withoutColl int
		for r := range res.With {
			withColl += res.With[r].CollidedRuns
			withoutColl += res.Without[r].CollidedRuns
		}
		b.ReportMetric(float64(withColl), "coll-w")
		b.ReportMetric(float64(withoutColl), "coll-wo")
	}
}

func BenchmarkTableVII(b *testing.B) {
	cfg := experiments.DefaultCaseStudyConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableVII(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].CollidedRuns), "coll-3s")
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].CollidedRuns), "coll-9s")
	}
}

func BenchmarkTableVIII(b *testing.B) {
	cfg := experiments.DefaultCaseStudyConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableVIII(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].FPS.Mean, "fps-1v")
		b.ReportMetric(res.Rows[1].FPS.Mean, "fps-3v")
		b.ReportMetric(res.Rows[2].FPS.Mean, "fps-3v-rej")
	}
}

func BenchmarkAblationVoting(b *testing.B) {
	cfg := experiments.DefaultCaseStudyConfig()
	cfg.RunsPerRoute = 2
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunVotingAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].SkipRatio, "skip-quorum")
		b.ReportMetric(res.Rows[1].SkipRatio, "skip-list")
	}
}

func BenchmarkAblationSelection(b *testing.B) {
	cfg := experiments.DefaultCaseStudyConfig()
	cfg.RunsPerRoute = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSelectionAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationClocks(b *testing.B) {
	cfg := experiments.DefaultCaseStudyConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunClockAblation(cfg.System, 100_000, xrand.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SharedDegraded, "degraded-shared")
		b.ReportMetric(res.PerModuleDegraded, "degraded-permodule")
	}
}

func BenchmarkExtensionNVersion(b *testing.B) {
	cfg := experiments.DefaultNVersionStudyConfig()
	cfg.Requests = 20_000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNVersionStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.ErrorFreeWith, "errfree-5v")
	}
}

func BenchmarkExtensionDiversity(b *testing.B) {
	cfg := experiments.QuickTableIIConfig()
	cfg.Dataset.TrainPerClass = 14
	cfg.Dataset.TestPerClass = 6
	cfg.Epochs = 6
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDiversityStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Alpha, "alpha-init")
		b.ReportMetric(res.Rows[2].Alpha, "alpha-arch")
	}
}

func BenchmarkExtensionTransient(b *testing.B) {
	params := reliability.DefaultParams()
	model, err := reliability.NewModel(3, params, true)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{300, 1523, 6092}
	for i := 0; i < b.N; i++ {
		pts, err := model.TransientReliability(times, 800, 0, xrand.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].Reward.Mean, "R(6092s)")
	}
}

func BenchmarkExtensionFaultSensitivity(b *testing.B) {
	cfg := experiments.QuickTableIIConfig()
	cfg.Dataset.TrainPerClass = 14
	cfg.Dataset.TestPerClass = 6
	cfg.Epochs = 6
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFaultSensitivity(cfg, 6, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Campaigns[0].Baseline, "baseline")
	}
}

func BenchmarkAblationErlang(b *testing.B) {
	params := reliability.DefaultParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunErlangConvergence(params, []int{1, 5, 20}, xrand.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Simulated, "sim")
		b.ReportMetric(res.Values[len(res.Values)-1], "erlang-20")
	}
}

// benchTelemetryPipeline measures the perception inference hot path with
// telemetry detached or attached. The disabled path must cost nothing
// beyond nil checks; the enabled path adds a fixed few timestamp reads per
// round and no allocations.
func benchTelemetryPipeline(b *testing.B, instrument bool) {
	pipe, err := perception.NewPipeline(3, perception.DefaultDetectorParams(),
		core.Config{DisableFaults: true}, 1, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		pipe.Instrument(obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceCapacity))
	}
	sc := drivesim.Scene{
		Ego: drivesim.VehicleState{},
		Objects: []drivesim.Object{
			{ID: 1, Pos: drivesim.Vec2{X: 12, Y: 0}},
			{ID: 2, Pos: drivesim.Vec2{X: 30, Y: 1}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Frame = i
		sc.Time = float64(i) * 0.05
		if _, err := pipe.Perceive(sc.Time, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryDisabled(b *testing.B) { benchTelemetryPipeline(b, false) }
func BenchmarkTelemetryEnabled(b *testing.B)  { benchTelemetryPipeline(b, true) }

// benchInference measures the three classifier versions over one serving
// micro-batch of sign images, per-sample vs. the batched fast path — the
// comparison that justifies mvserve's micro-batching scheduler.
func benchInference(b *testing.B, batched bool) {
	b.Helper()
	const batchSize = 16
	cfg := signs.DefaultConfig()
	cfg.TrainPerClass = 1
	cfg.TestPerClass = 1
	ds, err := signs.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	images := make([]*tensor.Tensor, batchSize)
	for i := range images {
		images[i] = ds.Test[i%len(ds.Test)].X
	}
	stacked, err := nn.Stack(images)
	if err != nil {
		b.Fatal(err)
	}
	root := xrand.New(7)
	var nets []*nn.Network
	for _, name := range nn.AllModels() {
		net, err := nn.NewModel(name, signs.NumClasses, root.Split("bench", uint64(name)))
		if err != nil {
			b.Fatal(err)
		}
		nets = append(nets, net)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, net := range nets {
			if batched {
				if _, err := net.PredictBatch(stacked); err != nil {
					b.Fatal(err)
				}
			} else {
				for _, x := range images {
					if _, err := net.Predict(x); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

func BenchmarkInferencePerSample(b *testing.B) { benchInference(b, false) }
func BenchmarkInferenceBatched(b *testing.B)   { benchInference(b, true) }
