#!/bin/sh
# bench.sh — runs the parallel-runner benchmarks (DSPN transient replications
# and drivesim episodes at 1/2/4/8 workers) and emits BENCH_parallel.json
# with per-width ns/op and the speedup over workers=1.
#
# Results are worker-count-invariant by construction (see
# internal/parallel), so this measures scheduling only. Speedups scale with
# the number of CPUs actually available: on a single-core machine every
# width runs at ~1.0x.
#
# Usage: ./bench.sh [output.json]
set -eu
cd "$(dirname "$0")"

out=${1:-BENCH_parallel.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench BenchmarkParallel (this runs the full fan-outs; be patient)"
go test -run '^$' -bench '^BenchmarkParallel' -benchtime 1x -count 1 . | tee "$raw"

awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
/^BenchmarkParallel/ {
    # BenchmarkParallelTransient/workers=4-8   1   123456 ns/op ...
    split($1, parts, "/")
    bench = substr(parts[1], length("BenchmarkParallel") + 1)
    split(parts[2], wp, /[=-]/)
    w = wp[2]
    ns[bench, w] = $3
    if (!(bench in seen)) { order[++n] = bench; seen[bench] = 1 }
    widths[w] = w
}
END {
    printf "{\n  \"cpus\": %d,\n  \"benchmarks\": {", ncpu
    for (i = 1; i <= n; i++) {
        b = order[i]
        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), tolower(b)
        first = 1
        for (w = 1; w <= 8; w *= 2) {
            if (!((b, w) in ns)) continue
            sp = ns[b, 1] > 0 ? ns[b, 1] / ns[b, w] : 0
            printf "%s\n      \"workers=%d\": {\"ns_per_op\": %d, \"speedup_vs_1\": %.3f}", \
                (first ? "" : ","), w, ns[b, w], sp
            first = 0
        }
        printf "\n    }"
    }
    printf "\n  }\n}\n"
}' "$raw" > "$out"

echo "==> wrote $out"
cat "$out"
