#!/bin/sh
# bench.sh — runs the parallel-runner benchmarks (DSPN transient replications
# and drivesim episodes at 1/2/4/8 workers) and emits BENCH_parallel.json
# with per-width ns/op and the speedup over workers=1, then runs the fused
# batched-GEMM inference benchmarks (per-sample Forward vs the arena path at
# batch 1/8/32) and emits BENCH_gemm.json with ns/op, allocs/op and the
# fused-over-per-sample speedup.
#
# Parallel-runner results are worker-count-invariant by construction (see
# internal/parallel), so that stage measures scheduling only. Speedups scale
# with the number of CPUs actually available: on a single-core machine every
# width runs at ~1.0x.
#
# It then measures the observability layer's serving overhead (the same
# sequential Classify loop with telemetry off vs the full stack of metrics,
# spans, per-layer profiler and flight recorder) and emits BENCH_obs.json;
# the acceptance bar is <5% end-to-end overhead.
#
# Finally it measures the streaming health engine's overhead on top of full
# telemetry (detectors, SLO trackers and the online α estimator riding the
# span firehose) and emits BENCH_health.json; same <5% acceptance bar.
#
# The fifth stage measures the gateway's routing overhead (direct Classify vs
# the same server behind a single-shard gateway: hash lookup, health plan,
# retry-budget and inflight bookkeeping) and emits BENCH_gateway.json; the
# acceptance bar is <10% — looser than the telemetry bars because the gateway
# is a real front tier, not a tap.
#
# Usage: ./bench.sh [parallel.json] [gemm.json] [obs.json] [health.json] [gateway.json]
set -eu
cd "$(dirname "$0")"

out=${1:-BENCH_parallel.json}
out2=${2:-BENCH_gemm.json}
out3=${3:-BENCH_obs.json}
out4=${4:-BENCH_health.json}
out5=${5:-BENCH_gateway.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench BenchmarkParallel (this runs the full fan-outs; be patient)"
go test -run '^$' -bench '^BenchmarkParallel' -benchtime 1x -count 1 . | tee "$raw"

awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
/^BenchmarkParallel/ {
    # BenchmarkParallelTransient/workers=4-8   1   123456 ns/op ...
    split($1, parts, "/")
    bench = substr(parts[1], length("BenchmarkParallel") + 1)
    split(parts[2], wp, /[=-]/)
    w = wp[2]
    ns[bench, w] = $3
    if (!(bench in seen)) { order[++n] = bench; seen[bench] = 1 }
    widths[w] = w
}
END {
    printf "{\n  \"cpus\": %d,\n  \"benchmarks\": {", ncpu
    for (i = 1; i <= n; i++) {
        b = order[i]
        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), tolower(b)
        first = 1
        for (w = 1; w <= 8; w *= 2) {
            if (!((b, w) in ns)) continue
            sp = ns[b, 1] > 0 ? ns[b, 1] / ns[b, w] : 0
            printf "%s\n      \"workers=%d\": {\"ns_per_op\": %d, \"speedup_vs_1\": %.3f}", \
                (first ? "" : ","), w, ns[b, w], sp
            first = 0
        }
        printf "\n    }"
    }
    printf "\n  }\n}\n"
}' "$raw" > "$out"

echo "==> wrote $out"
cat "$out"

echo "==> go test -bench BenchmarkGemmInference (per-sample vs fused vs packed vs int8, batch 1/8/32)"
go test -run '^$' -bench '^BenchmarkGemmInference' -benchtime 20x -benchmem -count 1 . | tee "$raw"

# BenchmarkGemmInference/model=lenet-small/path=fused/batch=8-8  20  1893092 ns/op  0 B/op  0 allocs/op
# Speedups are all relative to the per-sample Forward loop; packed and int8
# ride the same arena plumbing as fused, so column deltas isolate the kernels.
awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
/^BenchmarkGemmInference\// {
    split($1, parts, "/")
    split(parts[2], mp, "="); model = mp[2]
    split(parts[3], pp, "="); path = pp[2]
    split(parts[4], bp, /[=-]/); batch = bp[2]
    ns[model, path, batch] = $3
    allocs[model, path, batch] = $7
    if (!(model in seen)) { order[++n] = model; seen[model] = 1 }
}
END {
    printf "{\n  \"cpus\": %d,\n  \"models\": {", ncpu
    for (i = 1; i <= n; i++) {
        m = order[i]
        printf "%s\n    \"%s\": {", (i > 1 ? "," : ""), m
        first = 1
        for (b = 1; b <= 32; b *= 2) {
            if (!((m, "fused", b) in ns)) continue
            per = ns[m, "persample", b]; fus = ns[m, "fused", b]
            pk = ns[m, "packed", b]; i8 = ns[m, "int8", b]
            sp = fus > 0 ? per / fus : 0
            spk = pk > 0 ? per / pk : 0
            si8 = i8 > 0 ? per / i8 : 0
            printf "%s\n      \"batch=%d\": {\"persample_ns_per_op\": %d, \"fused_ns_per_op\": %d, \"packed_ns_per_op\": %d, \"int8_ns_per_op\": %d, \"speedup\": %.3f, \"packed_speedup\": %.3f, \"int8_speedup\": %.3f, \"persample_allocs_per_op\": %d, \"fused_allocs_per_op\": %d, \"packed_allocs_per_op\": %d, \"int8_allocs_per_op\": %d}", \
                (first ? "" : ","), b, per, fus, pk, i8, sp, spk, si8, \
                allocs[m, "persample", b], allocs[m, "fused", b], allocs[m, "packed", b], allocs[m, "int8", b]
            first = 0
        }
        printf "\n    }"
    }
    printf "\n  }\n}\n"
}' "$raw" > "$out2"

echo "==> wrote $out2"
cat "$out2"

echo "==> go test -bench BenchmarkServeObs (span/profiler overhead, telemetry off vs on)"
go test -run '^$' -bench '^BenchmarkServeObs' -benchtime 300x -count 5 . | tee "$raw"

# BenchmarkServeObs/telemetry=off-8   300   767125 ns/op
# Interleaved repeats; keep the per-config minimum so scheduler noise on a
# loaded machine does not masquerade as telemetry overhead.
awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
/^BenchmarkServeObs\// {
    split($1, parts, "/")
    split(parts[2], tp, /[=-]/)
    if (!(tp[2] in ns) || $3 < ns[tp[2]]) ns[tp[2]] = $3
}
END {
    off = ns["off"]; on = ns["on"]; sampled = ns["sampled"]
    pct = off > 0 ? (on - off) * 100.0 / off : 0
    spct = off > 0 ? (sampled - off) * 100.0 / off : 0
    printf "{\n  \"cpus\": %d,\n  \"telemetry_off_ns_per_op\": %d,\n  \"telemetry_on_ns_per_op\": %d,\n  \"telemetry_sampled_ns_per_op\": %d,\n  \"overhead_pct\": %.2f,\n  \"sampled_overhead_pct\": %.2f,\n  \"acceptance_pct\": 5.0,\n  \"pass\": %s\n}\n", \
        ncpu, off, on, sampled, pct, spct, (pct < 5.0 && spct < 5.0 ? "true" : "false")
}' "$raw" > "$out3"

echo "==> wrote $out3"
cat "$out3"

echo "==> go test -bench BenchmarkServeHealth (health engine overhead, off vs on)"
go test -run '^$' -bench '^BenchmarkServeHealth' -benchtime 300x -count 5 . | tee "$raw"

# BenchmarkServeHealth/health=off-8   300   767125 ns/op
# Same per-config-minimum treatment as the obs stage: interleaved repeats,
# keep the fastest, so machine noise does not read as engine overhead.
awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
/^BenchmarkServeHealth\// {
    split($1, parts, "/")
    split(parts[2], tp, /[=-]/)
    if (!(tp[2] in ns) || $3 < ns[tp[2]]) ns[tp[2]] = $3
}
END {
    off = ns["off"]; on = ns["on"]
    pct = off > 0 ? (on - off) * 100.0 / off : 0
    printf "{\n  \"cpus\": %d,\n  \"health_off_ns_per_op\": %d,\n  \"health_on_ns_per_op\": %d,\n  \"overhead_pct\": %.2f,\n  \"acceptance_pct\": 5.0,\n  \"pass\": %s\n}\n", \
        ncpu, off, on, pct, (pct < 5.0 ? "true" : "false")
}' "$raw" > "$out4"

echo "==> wrote $out4"
cat "$out4"

echo "==> go test -bench BenchmarkGateway (routing overhead, direct vs gateway)"
go test -run '^$' -bench '^BenchmarkGateway' -benchtime 300x -count 5 . | tee "$raw"

# BenchmarkGateway/path=direct-8   300   767125 ns/op
# Same per-config-minimum treatment as the obs/health stages: interleaved
# repeats, keep the fastest, so machine noise does not read as routing cost.
awk -v ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)" '
/^BenchmarkGateway\// {
    split($1, parts, "/")
    split(parts[2], tp, /[=-]/)
    if (!(tp[2] in ns) || $3 < ns[tp[2]]) ns[tp[2]] = $3
}
END {
    direct = ns["direct"]; gw = ns["gateway"]
    pct = direct > 0 ? (gw - direct) * 100.0 / direct : 0
    printf "{\n  \"cpus\": %d,\n  \"direct_ns_per_op\": %d,\n  \"gateway_ns_per_op\": %d,\n  \"overhead_pct\": %.2f,\n  \"acceptance_pct\": 10.0,\n  \"pass\": %s\n}\n", \
        ncpu, direct, gw, pct, (pct < 10.0 ? "true" : "false")
}' "$raw" > "$out5"

echo "==> wrote $out5"
cat "$out5"
