// Benchmarks for the gateway's routing overhead: the same sequential
// Classify loop against one server called directly and the same server
// fronted by a single-shard gateway (hash lookup, health plan, retry-budget
// bookkeeping, inflight accounting). Run with
//
//	go test -run '^$' -bench '^BenchmarkGateway' .
//
// or via `./bench.sh`, which parses the output into BENCH_gateway.json.
// The acceptance bar is <10% on the end-to-end request path — looser than
// the telemetry bar because the gateway is a real front tier, not a tap.
package mvml_test

import (
	"testing"

	"mvml/internal/gateway"
	"mvml/internal/serve"
	"mvml/internal/signs"
	"mvml/internal/xrand"
)

// gatewayBenchServer reuses the obs-bench profile (lenet ensemble, one
// worker per version, no micro-batching) so the two bench stages measure the
// same serving path; only the front tier differs.
func gatewayBenchServer(b *testing.B, label string) *serve.Server {
	b.Helper()
	cfg := obsBenchConfig()
	cfg.ShardLabel = label
	s, err := serve.New(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func BenchmarkGateway(b *testing.B) {
	img := signs.Render(0, xrand.New(3), signs.DefaultConfig())

	b.Run("path=direct", func(b *testing.B) {
		s := gatewayBenchServer(b, "")
		if _, err := s.Classify(img); err != nil { // warm the arenas
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Classify(img); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("path=gateway", func(b *testing.B) {
		s := gatewayBenchServer(b, "shard-0")
		sh, err := gateway.NewLocalShard(s)
		if err != nil {
			b.Fatal(err)
		}
		gw := gateway.New(gateway.Config{}, nil)
		defer gw.Close()
		if err := gw.AddShard(sh); err != nil {
			b.Fatal(err)
		}
		key := gateway.RouteKey(&serve.ClassifyRequest{Image: img.Data})
		if _, _, err := gw.Classify(key, "bench", img); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := gw.Classify(key, "bench", img); err != nil {
				b.Fatal(err)
			}
		}
	})
}
