package health

import "math"

// Objective is one service-level objective: a target fraction of good
// events over a rolling budget window, monitored through the standard
// multi-window burn-rate rule (alert only when both a short and a long
// window burn faster than BurnAlert, so a brief spike alone cannot page but
// a sustained burn is caught quickly).
type Objective struct {
	// Name labels the objective in gauges and reports ("availability", ...).
	Name string `json:"name"`
	// Target is the good-event fraction promised, e.g. 0.99.
	Target float64 `json:"target"`
	// Window is the error-budget window in seconds.
	Window float64 `json:"window_seconds"`
	// ShortWindow and LongWindow are the burn-rate windows in seconds.
	ShortWindow float64 `json:"short_window_seconds"`
	LongWindow  float64 `json:"long_window_seconds"`
	// BurnAlert is the burn-rate threshold both windows must exceed.
	BurnAlert float64 `json:"burn_alert"`
}

// sloBucket aggregates one bucket-width of events.
type sloBucket struct {
	start     float64 // bucket start time; -1 when empty
	good, bad uint64
}

// sloTracker maintains one objective's event stream in a fixed ring of
// time buckets, so budget and burn-rate queries are O(buckets) with no
// allocation, and the whole structure is deterministic in the observed
// (time, bad) sequence.
type sloTracker struct {
	obj   Objective
	width float64 // bucket width in seconds
	ring  []sloBucket

	totalGood, totalBad uint64
	lastT               float64
	alerting            bool
	alerts              int // rising edges of the burn alert
}

func newSLOTracker(obj Objective, bucketSeconds float64) *sloTracker {
	if bucketSeconds <= 0 {
		bucketSeconds = 1
	}
	n := int(math.Ceil(obj.Window/bucketSeconds)) + 1
	if n < 2 {
		n = 2
	}
	t := &sloTracker{obj: obj, width: bucketSeconds, ring: make([]sloBucket, n)}
	for i := range t.ring {
		t.ring[i].start = -1
	}
	return t
}

// record counts one event at time t (seconds on the span clock).
func (t *sloTracker) record(ts float64, bad bool) {
	if ts < 0 {
		ts = 0
	}
	if ts > t.lastT {
		t.lastT = ts
	}
	start := math.Floor(ts/t.width) * t.width
	b := &t.ring[int(ts/t.width)%len(t.ring)]
	if b.start != start {
		// Ring wrapped onto a stale bucket: evict it.
		b.start, b.good, b.bad = start, 0, 0
	}
	if bad {
		b.bad++
		t.totalBad++
	} else {
		b.good++
		t.totalGood++
	}
	// Re-evaluate the multi-window alert on every event; count rising edges.
	now := t.alertNow()
	if now && !t.alerting {
		t.alerts++
	}
	t.alerting = now
}

// window sums events in (now-window, now].
func (t *sloTracker) windowCounts(now, window float64) (good, bad uint64) {
	lo := now - window
	for _, b := range t.ring {
		if b.start < 0 || b.start+t.width <= lo || b.start > now {
			continue
		}
		good += b.good
		bad += b.bad
	}
	return good, bad
}

// BurnRate is the error rate over the window divided by the budget rate
// (1 - target): 1.0 means the budget is being consumed exactly at the
// sustainable pace, N means N× too fast. An empty window burns at 0.
func (t *sloTracker) burnRate(now, window float64) float64 {
	good, bad := t.windowCounts(now, window)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - t.obj.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// budgetRemaining is the unspent fraction of the error budget over the
// budget window: 1 when no errors, 0 when the budget is exactly spent,
// negative when overspent.
func (t *sloTracker) budgetRemaining(now float64) float64 {
	good, bad := t.windowCounts(now, t.obj.Window)
	total := good + bad
	if total == 0 {
		return 1
	}
	budget := 1 - t.obj.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return 1 - (float64(bad)/float64(total))/budget
}

// alertNow applies the multi-window rule at the latest observed time.
func (t *sloTracker) alertNow() bool {
	return t.burnRate(t.lastT, t.obj.ShortWindow) > t.obj.BurnAlert &&
		t.burnRate(t.lastT, t.obj.LongWindow) > t.obj.BurnAlert
}

// SLOStatus is one objective's externally visible state.
type SLOStatus struct {
	Objective       Objective `json:"objective"`
	Good            uint64    `json:"good"`
	Bad             uint64    `json:"bad"`
	BudgetRemaining float64   `json:"budget_remaining"`
	BurnShort       float64   `json:"burn_short"`
	BurnLong        float64   `json:"burn_long"`
	Alerting        bool      `json:"alerting"`
	Alerts          int       `json:"alerts"`
}

func (t *sloTracker) status() SLOStatus {
	return SLOStatus{
		Objective:       t.obj,
		Good:            t.totalGood,
		Bad:             t.totalBad,
		BudgetRemaining: t.budgetRemaining(t.lastT),
		BurnShort:       t.burnRate(t.lastT, t.obj.ShortWindow),
		BurnLong:        t.burnRate(t.lastT, t.obj.LongWindow),
		Alerting:        t.alerting,
		Alerts:          t.alerts,
	}
}
