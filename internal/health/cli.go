package health

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mvml/internal/obs"
)

// CLI is the shared command-line wiring for the health engine: each cmd/
// binary registers the same -health* flags next to the obs.CLI telemetry
// flags. The engine is opt-in — with -health unset, Options returns nil and
// nothing is attached. mvserve hands the options to serve.Config (the
// server owns its engine so verdicts can drive rejuvenation); the
// simulation and bench binaries Attach the engine straight to the runtime's
// span sink and write the final verdict with Finish.
type CLI struct {
	// Enable turns the engine on.
	Enable bool
	// LatencySLO is the per-request latency objective.
	LatencySLO time.Duration
	// Availability is the availability SLO target (fraction of requests
	// answered at all).
	Availability float64
	// Window is the SLO error-budget window.
	Window time.Duration
	// ReportPath, when non-empty, receives the end-of-run health report as
	// JSON (implies -health).
	ReportPath string

	engine *Engine
}

// RegisterFlags installs the health flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Enable, "health", false,
		"attach the streaming health engine (SLO budgets, anomaly detection, online alpha) to the span stream")
	fs.DurationVar(&c.LatencySLO, "health-latency-slo", 250*time.Millisecond,
		"per-request latency objective feeding the latency SLO")
	fs.Float64Var(&c.Availability, "health-availability", 0.99,
		"availability SLO target in (0,1)")
	fs.DurationVar(&c.Window, "health-window", 2*time.Minute,
		"SLO error-budget window")
	fs.StringVar(&c.ReportPath, "health-report", "",
		"write the end-of-run health report here as JSON (implies -health)")
}

// Enabled reports whether any flag turns the engine on.
func (c *CLI) Enabled() bool { return c.Enable || c.ReportPath != "" }

// Options materialises the engine options from the flags, or nil when the
// engine is disabled.
func (c *CLI) Options() *Options {
	if !c.Enabled() {
		return nil
	}
	opts := DefaultOptions()
	opts.LatencyObjective = c.LatencySLO.Seconds()
	window := c.Window.Seconds()
	for i := range opts.Objectives {
		opts.Objectives[i].Window = window
		if opts.Objectives[i].Name == "availability" {
			opts.Objectives[i].Target = c.Availability
		}
	}
	return &opts
}

// Attach builds the engine and subscribes it to rt's span sink and metric
// registry — the path for binaries whose span stream is not the serving
// subsystem (drivesim, dspn, mvmlbench). Returns nil (and attaches
// nothing) when the engine or telemetry is disabled.
func (c *CLI) Attach(rt *obs.Runtime) *Engine {
	opts := c.Options()
	if opts == nil || rt == nil || rt.Spans() == nil {
		return nil
	}
	c.engine = NewEngine(*opts, rt.Metrics())
	rt.Spans().Attach(c.engine)
	return c.engine
}

// Observe adopts an engine created elsewhere (mvserve's server owns its
// own), so Finish reports on it.
func (c *CLI) Observe(e *Engine) {
	if e != nil {
		c.engine = e
	}
}

// Finish writes the -health-report artifact and prints the final verdict.
// Safe to call when the engine is disabled.
func (c *CLI) Finish() error {
	if c.engine == nil {
		return nil
	}
	rep := c.engine.Report()
	v := rep.Final
	fmt.Fprintf(os.Stderr, "health: final verdict %s (%d components, %d incidents, alpha=%.4f over %d rounds)\n",
		v.Overall, len(v.Components), len(rep.Incidents), rep.AlphaFinal, rep.RoundsDecided)
	if c.ReportPath == "" {
		return nil
	}
	f, err := os.Create(c.ReportPath)
	if err != nil {
		return fmt.Errorf("health: report: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(rep)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("health: report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "health: wrote health report to %s\n", c.ReportPath)
	return nil
}
