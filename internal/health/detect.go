// Package health is the streaming judgment layer over the observability
// substrate: it subscribes to the span firehose (implementing
// obs.SpanObserver) and turns raw latency, queue-depth and voter
// disagreement streams into explainable health verdicts — windowed anomaly
// detection, SLO error budgets with multi-window burn rates, an online
// error-dependency (α) estimator, and a per-component health state machine.
//
// Every detector is deterministic: state advances only on observed span
// records (never on wall-clock reads), so replaying the same spans.jsonl
// yields bit-identical verdicts to the live run that produced it. That is
// the property cmd/mvhealth relies on, and it mirrors the repo-wide rule
// that telemetry must never change behaviour — the engine reads the
// firehose, it does not touch the serving path.
package health

import "math"

// EWMA is an exponentially-weighted moving average anomaly detector: it
// tracks an EW mean and EW variance of a stream and flags observations
// whose z-score against the pre-update statistics exceeds Z. The classic
// EWMA control chart, cheap enough for per-span use.
type EWMA struct {
	// Lambda is the smoothing factor in (0,1]; smaller = longer memory.
	Lambda float64
	// Z is the anomaly threshold in standard deviations.
	Z float64
	// Warmup is how many observations seed the baseline before the
	// detector may flag anything.
	Warmup int

	n        int
	mean, vr float64
}

// Observe feeds one sample and reports its z-score against the pre-update
// baseline plus whether it is anomalous. The baseline always absorbs the
// sample afterwards, so a sustained shift eventually becomes the new
// normal — change-point detection is CUSUM's job, not EWMA's.
func (e *EWMA) Observe(x float64) (z float64, anomalous bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, false
	}
	if e.n > 0 {
		// Floor sigma at a small fraction of the mean: a near-constant stream
		// (variance at float rounding noise) must not turn ppm-level jitter
		// into huge z-scores.
		sigma := math.Sqrt(e.vr)
		if floor := 1e-12 + 1e-6*math.Abs(e.mean); sigma < floor {
			sigma = floor
		}
		z = (x - e.mean) / sigma
	}
	anomalous = e.n >= e.Warmup && math.Abs(z) > e.Z
	// Standard EW mean/variance update (West 1979).
	if e.n == 0 {
		e.mean = x
	} else {
		d := x - e.mean
		incr := e.Lambda * d
		e.mean += incr
		e.vr = (1 - e.Lambda) * (e.vr + d*incr)
	}
	e.n++
	return z, anomalous
}

// Mean returns the current EW mean.
func (e *EWMA) Mean() float64 { return e.mean }

// CUSUM is a two-sided cumulative-sum change-point detector. A baseline
// mean/σ is frozen from the first Warmup samples; afterwards the
// standardised deviations accumulate into an upward and a downward sum
// (with slack K) and a change is declared when either crosses H. On
// detection the sums reset and the baseline re-learns from the post-change
// stream, so successive change-points (shift up at compromise, shift back
// down after rejuvenation) are each detected once.
type CUSUM struct {
	// K is the slack per sample in σ units (half the shift to detect).
	K float64
	// H is the decision threshold in σ units.
	H float64
	// Warmup is how many samples estimate the baseline.
	Warmup int

	n          int
	sum, sumsq float64
	mu, sigma  float64
	gPos, gNeg float64
}

// Observe feeds one sample and reports the larger of the two cumulative
// sums plus whether a change-point was declared at this sample.
func (c *CUSUM) Observe(x float64) (stat float64, change bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return math.Max(c.gPos, c.gNeg), false
	}
	if c.n < c.Warmup {
		c.n++
		c.sum += x
		c.sumsq += x * x
		if c.n == c.Warmup {
			c.mu = c.sum / float64(c.n)
			v := c.sumsq/float64(c.n) - c.mu*c.mu
			if v < 0 {
				v = 0
			}
			c.sigma = math.Sqrt(v)
			// Constant (or near-constant) baseline: floor sigma relative to
			// the mean so any real deviation registers without float noise
			// producing astronomically large statistics.
			if floor := 1e-9 + 1e-3*math.Abs(c.mu); c.sigma < floor {
				c.sigma = floor
			}
		}
		return 0, false
	}
	z := (x - c.mu) / c.sigma
	c.gPos = math.Max(0, c.gPos+z-c.K)
	c.gNeg = math.Max(0, c.gNeg-z-c.K)
	stat = math.Max(c.gPos, c.gNeg)
	if stat > c.H {
		// Reset and re-learn the baseline from the post-change regime.
		c.n, c.sum, c.sumsq = 0, 0, 0
		c.gPos, c.gNeg = 0, 0
		return stat, true
	}
	return stat, false
}

// Baseline returns the frozen baseline mean (0 until warmed up).
func (c *CUSUM) Baseline() float64 { return c.mu }

// Learning reports whether the detector is still estimating its baseline
// (initially, or re-learning after a detection). While learning it cannot
// flag changes, so its silence is not evidence of health.
func (c *CUSUM) Learning() bool { return c.n < c.Warmup }

// divergenceRing is the engine's windowed disagreement-rate tracker for one
// version — the span-stream twin of the serving pool's reactive-trigger
// ring, so health verdicts and the legacy trigger agree on what "diverging"
// means.
type divergenceRing struct {
	window    []bool
	pos, fill int
	disagreed int
}

func newDivergenceRing(n int) *divergenceRing {
	if n < 1 {
		n = 1
	}
	return &divergenceRing{window: make([]bool, n)}
}

func (r *divergenceRing) observe(disagreed bool) {
	if r.fill == len(r.window) {
		if r.window[r.pos] {
			r.disagreed--
		}
	} else {
		r.fill++
	}
	r.window[r.pos] = disagreed
	if disagreed {
		r.disagreed++
	}
	r.pos = (r.pos + 1) % len(r.window)
}

func (r *divergenceRing) reset() {
	for i := range r.window {
		r.window[i] = false
	}
	r.pos, r.fill, r.disagreed = 0, 0, 0
}

// rate returns the windowed disagreement fraction and whether the window
// has filled (rates over a part-filled window are not trigger-worthy).
func (r *divergenceRing) rate() (float64, bool) {
	if r.fill == 0 {
		return 0, false
	}
	return float64(r.disagreed) / float64(r.fill), r.fill == len(r.window)
}
