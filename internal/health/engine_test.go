package health

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mvml/internal/obs"
)

// streamBuilder assembles a synthetic serving span stream: per round one
// batch span (carrying queue_depth), one vote span (voters/diverged or
// skipped) and one request span — the same shapes internal/serve emits.
type streamBuilder struct {
	recs []obs.SpanRecord
	id   uint64
}

func (b *streamBuilder) span(kind string, start, end float64, attrs map[string]any) {
	b.id++
	b.recs = append(b.recs, obs.SpanRecord{
		Trace: b.id, ID: b.id, Kind: kind, Start: start, End: end, Attrs: attrs,
	})
}

// round emits one voting round at time t. diverged lists dissenting
// versions; skipped marks a no-majority round; degraded marks the request
// answer degraded.
func (b *streamBuilder) round(t float64, queueDepth int, diverged []string, skipped, degraded bool) {
	b.span("batch", t, t+0.002, map[string]any{
		"batch_size": 1, "queue_depth": queueDepth,
	})
	vattrs := map[string]any{
		"voters": []string{"a", "b", "c"},
	}
	if skipped {
		vattrs["skipped"] = true
	} else if len(diverged) > 0 {
		vattrs["diverged"] = diverged
	}
	b.span("vote", t+0.002, t+0.003, vattrs)
	rattrs := map[string]any{}
	if degraded {
		rattrs["degraded"] = true
	}
	b.span("request", t, t+0.005, rattrs)
}

// rejuvenation emits a rejuvenation span; the short duration keeps builder
// order identical to end-time order, which live feeding relies on below.
func (b *streamBuilder) rejuvenation(t float64, version, kind string) {
	b.span("rejuvenation", t, t+0.01, map[string]any{"version": version, "kind": kind})
}

// testOptions uses SLO windows short enough that the synthetic incident
// both alerts and fully recovers within the stream.
func testEngineOptions() Options {
	opts := DefaultOptions()
	for i := range opts.Objectives {
		opts.Objectives[i].Window = 10
		opts.Objectives[i].ShortWindow = 1
		opts.Objectives[i].LongWindow = 3
	}
	return opts
}

// incidentStream builds the canonical test scenario: a clean baseline,
// a mid-stream compromise of version "a" (persistent divergence, queue
// surge, degraded answers, two coincident-failure skips), a reactive
// rejuvenation, and a clean recovery phase. Rounds are 0.1s apart.
func incidentStream() []obs.SpanRecord {
	var b streamBuilder
	const dt = 0.1
	for i := 0; i < 100; i++ { // healthy baseline, t ∈ [0,10)
		var div []string
		if i == 50 {
			div = []string{"b"} // one transient dissent, far below the trigger
		}
		b.round(float64(i)*dt, 2, div, false, false)
	}
	for i := 100; i < 200; i++ { // compromise, t ∈ [10,20)
		skipped := i == 140 || i == 141 // two no-majority rounds
		b.round(float64(i)*dt, 50, []string{"a"}, skipped, true)
	}
	b.rejuvenation(199.5*dt, "a", "reactive")
	for i := 200; i < 300; i++ { // recovery, t ∈ [20,30)
		b.round(float64(i)*dt, 2, nil, false, false)
	}
	return b.recs
}

func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(buf)
}

// TestReplayDeterministic: the same stream replayed twice yields a
// byte-identical report — the engine has no hidden wall-clock or map-order
// dependence.
func TestReplayDeterministic(t *testing.T) {
	recs := incidentStream()
	opts := testEngineOptions()
	a := reportJSON(t, Replay(recs, opts))
	for i := 0; i < 5; i++ {
		if b := reportJSON(t, Replay(recs, opts)); a != b {
			t.Fatalf("replay %d differs from the first:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// TestLiveMatchesReplay: an engine fed live (record-at-a-time, and in odd
// batch sizes) produces the exact report of the offline replay — the
// determinism contract cmd/mvhealth relies on.
func TestLiveMatchesReplay(t *testing.T) {
	recs := incidentStream()
	opts := testEngineOptions()
	want := reportJSON(t, Replay(recs, opts))

	for _, chunk := range []int{1, 7, 64, len(recs)} {
		live := NewEngine(opts, nil)
		live.trackAlphaTrajectory(64)
		for lo := 0; lo < len(recs); lo += chunk {
			hi := lo + chunk
			if hi > len(recs) {
				hi = len(recs)
			}
			live.ObserveSpans(recs[lo:hi], 0)
		}
		if got := reportJSON(t, live.Report()); got != want {
			t.Fatalf("live engine (chunk %d) diverged from replay:\n%s\nvs\n%s", chunk, got, want)
		}
	}
}

// TestEngineIncidentArc: the synthetic compromise is detected, attributed,
// and resolved — incident window, version-critical verdict, queue
// change-points, SLO burn alert, finite α, and a final healthy rollup.
func TestEngineIncidentArc(t *testing.T) {
	rep := Replay(incidentStream(), testEngineOptions())

	if rep.Final.Overall != Healthy {
		t.Fatalf("final verdict %s, want healthy (components: %s)", rep.Final.Overall, reportJSON(t, rep))
	}
	if len(rep.Incidents) != 1 {
		t.Fatalf("got %d incident windows, want 1", len(rep.Incidents))
	}
	inc := rep.Incidents[0]
	if !inc.Resolved || inc.Peak != Critical {
		t.Fatalf("incident %+v, want resolved with critical peak", inc)
	}
	if inc.Start < 10 || inc.Start > 20 {
		t.Fatalf("incident starts at %.2fs, want within the compromise phase", inc.Start)
	}

	// The compromised version went critical and was reset by rejuvenation.
	var wentCritical, cameBack bool
	for _, tr := range rep.Timeline {
		if tr.Component == "version:a" && tr.To == Critical {
			wentCritical = true
		}
		if tr.Component == "version:a" && wentCritical && tr.To == Healthy {
			cameBack = true
			if !strings.Contains(tr.Reason, "rejuvenated") {
				t.Fatalf("version:a recovery reason %q, want rejuvenation", tr.Reason)
			}
		}
	}
	if !wentCritical || !cameBack {
		t.Fatalf("version:a arc critical=%v healthy=%v, want both", wentCritical, cameBack)
	}

	// Queue surge and return each produce a change-point.
	if len(rep.ChangePoints) < 2 {
		t.Fatalf("got %d change-points, want >= 2 (surge + return)", len(rep.ChangePoints))
	}
	if len(rep.Rejuvenations) != 1 || rep.Rejuvenations[0].Version != "a" {
		t.Fatalf("rejuvenations %+v, want one for version a", rep.Rejuvenations)
	}

	// The quality SLO alerted during the compromise.
	var quality *SLOStatus
	for i := range rep.Final.SLOs {
		if rep.Final.SLOs[i].Objective.Name == "quality" {
			quality = &rep.Final.SLOs[i]
		}
	}
	if quality == nil || quality.Alerts == 0 {
		t.Fatalf("quality SLO never alerted: %+v", quality)
	}
	if quality.Alerting {
		t.Fatal("quality SLO still alerting after recovery")
	}

	// α is measured and finite: the two skip rounds are coincident failures.
	if !rep.AlphaKnown {
		t.Fatal("alpha unmeasured")
	}
	if rep.AlphaFinal <= 0 || rep.AlphaFinal >= 1 {
		t.Fatalf("alpha %v, want in (0,1)", rep.AlphaFinal)
	}
	if len(rep.AlphaTraj) == 0 {
		t.Fatal("alpha trajectory empty")
	}
	if rep.RoundsSkipped != 2 {
		t.Fatalf("rounds skipped %d, want 2", rep.RoundsSkipped)
	}
}

// TestShouldRejuvenate: critical divergence advises rejuvenation; the
// post-rejuvenation cooldown and the reset both clear the advice.
func TestShouldRejuvenate(t *testing.T) {
	var b streamBuilder
	for i := 0; i < 100; i++ {
		b.round(float64(i)*0.1, 2, []string{"a"}, false, false)
	}
	e := NewEngine(testEngineOptions(), nil)
	e.ObserveSpans(b.recs, 0)
	if !e.ShouldRejuvenate("a") {
		t.Fatal("persistently diverging version not advised for rejuvenation")
	}
	if e.ShouldRejuvenate("b") {
		t.Fatal("healthy version advised for rejuvenation")
	}

	var rb streamBuilder
	rb.rejuvenation(10.0, "a", "reactive")
	e.ObserveSpans(rb.recs, 0)
	if e.ShouldRejuvenate("a") {
		t.Fatal("advice persists through rejuvenation reset + cooldown")
	}
}

// TestSuppressRejuvenation: repeated queue change-points without recovery
// escalate the queue component to critical, which vetoes rejuvenation.
func TestSuppressRejuvenation(t *testing.T) {
	e := NewEngine(testEngineOptions(), nil)
	var b streamBuilder
	// First change-point at i=40 (2→60); the CUSUM then re-learns its
	// baseline over the next Warmup observations (during which the queue
	// component must NOT recover — learning is not evidence of health), and
	// the second surge (60→300) lands right after, escalating to critical.
	depth := func(i int) int {
		switch {
		case i < 40:
			return 2
		case i < 40+1+testEngineOptions().Warmup:
			return 60
		default:
			return 300
		}
	}
	for i := 0; i < 100; i++ {
		b.round(float64(i)*0.1, depth(i), nil, false, false)
	}
	e.ObserveSpans(b.recs, 0)
	if !e.SuppressRejuvenation() {
		t.Fatalf("queue collapse does not veto rejuvenation (components: %s)",
			reportJSON(t, e.Report()))
	}

	var nilEngine *Engine
	if nilEngine.SuppressRejuvenation() || nilEngine.ShouldRejuvenate("a") {
		t.Fatal("nil engine gave advice")
	}
	if nilEngine.Snapshot() != nil || nilEngine.Report() != nil {
		t.Fatal("nil engine produced a snapshot")
	}
}

// TestExpositionByteStable extends the repo's byte-stability guarantee to
// the mv_health_* families: with no new observations between scrapes, two
// successive expositions of a registry carrying engine gauges are
// byte-identical, and replaying the same stream into a fresh registry
// reproduces them exactly.
func TestExpositionByteStable(t *testing.T) {
	expose := func() []byte {
		reg := obs.NewRegistry()
		e := NewEngine(testEngineOptions(), reg)
		e.ObserveSpans(incidentStream(), 0)
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := expose()
	for _, want := range []string{
		"mv_health_state", "mv_health_alpha", "mv_health_budget_remaining",
		"mv_health_burn_rate", "mv_health_anomalies_total",
	} {
		if !bytes.Contains(first, []byte(want)) {
			t.Fatalf("exposition missing %s:\n%s", want, first)
		}
	}
	// Same registry, no new observations: scrape twice.
	reg := obs.NewRegistry()
	e := NewEngine(testEngineOptions(), reg)
	e.ObserveSpans(incidentStream(), 0)
	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("successive scrapes differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Fresh registry + engine over the same stream: byte-identical.
	if again := expose(); !bytes.Equal(first, again) {
		t.Fatalf("replayed exposition differs:\n%s\nvs\n%s", first, again)
	}
}

// TestEngineGauges: the engine publishes its verdict into mv_health_*
// gauges on the shared registry.
func TestEngineGauges(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewEngine(testEngineOptions(), reg)
	var b streamBuilder
	for i := 0; i < 100; i++ {
		b.round(float64(i)*0.1, 2, []string{"a"}, false, false)
	}
	b.recs = append(b.recs, obs.SpanRecord{
		Trace: 9999, ID: 9999, Kind: "vote", Start: 10, End: 10.001,
		Attrs: map[string]any{"skipped": true, "voters": []string{"a", "b"}},
	})
	e.ObserveSpans(b.recs, 0)

	if got := reg.Gauge("mv_health_state", "component", "version:a").Value(); got != float64(Critical) {
		t.Fatalf("mv_health_state{version:a} = %v, want %v", got, float64(Critical))
	}
	if got := reg.Gauge("mv_health_state", "component", "overall").Value(); got != float64(Critical) {
		t.Fatalf("mv_health_state{overall} = %v, want %v", got, float64(Critical))
	}
	wantAlpha, known := e.alpha.Alpha()
	if !known {
		t.Fatal("alpha unmeasured in gauge test")
	}
	if got := reg.Gauge("mv_health_alpha").Value(); got != wantAlpha {
		t.Fatalf("mv_health_alpha = %v, want %v", got, wantAlpha)
	}
	if got := reg.Gauge("mv_health_budget_remaining", "slo", "availability").Value(); got != 1 {
		t.Fatalf("availability budget gauge = %v, want 1 (no failures)", got)
	}
}
