package health

import (
	"math"
	"testing"
)

// noise returns a small deterministic pseudo-random perturbation in
// [-scale, scale] (xorshift-free: a fixed irrational stride keeps the
// sequence aperiodic without any RNG state).
func noise(i int, scale float64) float64 {
	x := math.Mod(float64(i)*0.6180339887498949, 1)
	return (2*x - 1) * scale
}

func TestEWMAFlagsSpike(t *testing.T) {
	det := &EWMA{Lambda: 0.05, Z: 6, Warmup: 32}
	for i := 0; i < 200; i++ {
		if _, anom := det.Observe(0.010 + noise(i, 0.001)); anom {
			t.Fatalf("false positive on stationary sample %d", i)
		}
	}
	z, anom := det.Observe(0.100) // 10x the baseline
	if !anom {
		t.Fatalf("10x latency spike not flagged (z=%.1f)", z)
	}
	if z < 6 {
		t.Fatalf("spike z-score %.1f below threshold yet flagged", z)
	}
}

func TestEWMAWarmupSuppressesFlags(t *testing.T) {
	det := &EWMA{Lambda: 0.05, Z: 2, Warmup: 50}
	for i := 0; i < 50; i++ {
		x := 1.0
		if i%7 == 0 {
			x = 100 // wild warmup samples must not flag
		}
		if _, anom := det.Observe(x); anom {
			t.Fatalf("anomaly flagged during warmup at sample %d", i)
		}
	}
}

func TestEWMAAdaptsToSustainedShift(t *testing.T) {
	det := &EWMA{Lambda: 0.1, Z: 4, Warmup: 16}
	for i := 0; i < 100; i++ {
		det.Observe(1 + noise(i, 0.05))
	}
	// A sustained doubling: flagged at first, absorbed eventually.
	flagged := false
	for i := 0; i < 500; i++ {
		_, anom := det.Observe(2 + noise(i, 0.05))
		if i == 0 && anom {
			flagged = true
		}
		if i > 400 && anom {
			t.Fatalf("shift still flagged after %d absorbing samples", i)
		}
	}
	if !flagged {
		t.Fatal("onset of a 2x sustained shift not flagged")
	}
	if m := det.Mean(); math.Abs(m-2) > 0.1 {
		t.Fatalf("EW mean %.3f did not converge to the new regime", m)
	}
}

func TestEWMARejectsNonFinite(t *testing.T) {
	det := &EWMA{Lambda: 0.1, Z: 4, Warmup: 2}
	det.Observe(1)
	det.Observe(1)
	if z, anom := det.Observe(math.NaN()); anom || z != 0 {
		t.Fatal("NaN observation flagged or scored")
	}
	if _, anom := det.Observe(math.Inf(1)); anom {
		t.Fatal("Inf observation flagged")
	}
	if m := det.Mean(); m != 1 {
		t.Fatalf("non-finite samples perturbed the mean: %v", m)
	}
}

func TestCUSUMDetectsShift(t *testing.T) {
	det := &CUSUM{K: 0.5, H: 8, Warmup: 32}
	for i := 0; i < 100; i++ {
		if _, change := det.Observe(4 + noise(i, 0.5)); change {
			t.Fatalf("false change-point on stationary sample %d", i)
		}
	}
	base := det.Baseline()
	if math.Abs(base-4) > 0.2 {
		t.Fatalf("baseline %.3f, want ~4", base)
	}
	// A persistent +3σ shift must be caught within a bounded delay.
	detected := -1
	for i := 0; i < 64; i++ {
		if _, change := det.Observe(6 + noise(i, 0.5)); change {
			detected = i
			break
		}
	}
	if detected < 0 {
		t.Fatal("sustained upward shift never detected")
	}
	if detected > 32 {
		t.Fatalf("detection delay %d samples, want prompt", detected)
	}
}

func TestCUSUMRelearnsAfterDetection(t *testing.T) {
	det := &CUSUM{K: 0.5, H: 8, Warmup: 16}
	for i := 0; i < 32; i++ {
		det.Observe(1 + noise(i, 0.1))
	}
	// Shift up, detect once; the detector re-baselines on the new regime.
	changes := 0
	for i := 0; i < 200; i++ {
		if _, change := det.Observe(5 + noise(i, 0.1)); change {
			changes++
		}
	}
	if changes != 1 {
		t.Fatalf("%d change-points on one sustained shift, want exactly 1", changes)
	}
	// Shift back down: detected again from the re-learned baseline.
	changes = 0
	for i := 0; i < 200; i++ {
		if _, change := det.Observe(1 + noise(i, 0.1)); change {
			changes++
		}
	}
	if changes != 1 {
		t.Fatalf("%d change-points on the return shift, want exactly 1", changes)
	}
}

func TestCUSUMConstantBaseline(t *testing.T) {
	det := &CUSUM{K: 0.5, H: 8, Warmup: 8}
	for i := 0; i < 20; i++ {
		if _, change := det.Observe(3); change {
			t.Fatal("change-point on a constant stream")
		}
	}
	// With a constant baseline any deviation is significant.
	detected := false
	for i := 0; i < 10; i++ {
		if _, change := det.Observe(3.5); change {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("deviation from a constant baseline not detected")
	}
}

func TestDivergenceRing(t *testing.T) {
	r := newDivergenceRing(4)
	if _, full := r.rate(); full {
		t.Fatal("empty ring reports full")
	}
	r.observe(true)
	r.observe(false)
	if rate, full := r.rate(); full || rate != 0.5 {
		t.Fatalf("part-filled ring: rate %.2f full %v, want 0.50 false", rate, full)
	}
	r.observe(true)
	r.observe(true)
	if rate, full := r.rate(); !full || rate != 0.75 {
		t.Fatalf("filled ring: rate %.2f full %v, want 0.75 true", rate, full)
	}
	// Eviction: the oldest (true) slides out.
	r.observe(false)
	if rate, _ := r.rate(); rate != 0.5 {
		t.Fatalf("after eviction: rate %.2f, want 0.50", rate)
	}
	r.reset()
	if rate, full := r.rate(); rate != 0 || full {
		t.Fatalf("after reset: rate %.2f full %v, want 0 false", rate, full)
	}
}
