package health

import (
	"sort"

	"mvml/internal/obs"
)

// IncidentWindow is a contiguous interval during which the process-level
// verdict was worse than healthy.
type IncidentWindow struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"` // equal to the replay horizon when unresolved
	Peak  Level   `json:"peak"`
	// Resolved marks windows that returned to healthy before the end of
	// the replay.
	Resolved bool `json:"resolved"`
}

// AlphaPoint is one sample of the online α trajectory.
type AlphaPoint struct {
	T      float64 `json:"t"`
	Rounds uint64  `json:"rounds"`
	Alpha  float64 `json:"alpha"`
}

// Report is the engine's accumulated judgment over a span stream — what
// cmd/mvhealth renders, and what the live /healthz endpoint summarises.
type Report struct {
	Spans         uint64              `json:"spans"`
	RoundsDecided uint64              `json:"rounds_decided"`
	RoundsSkipped uint64              `json:"rounds_skipped"`
	Horizon       float64             `json:"horizon_seconds"`
	Final         *Verdict            `json:"final"`
	Timeline      []Transition        `json:"timeline,omitempty"`
	TimelineTrunc uint64              `json:"timeline_truncated,omitempty"`
	Incidents     []IncidentWindow    `json:"incidents,omitempty"`
	ChangePoints  []ChangePoint       `json:"change_points,omitempty"`
	Rejuvenations []RejuvenationEvent `json:"rejuvenations,omitempty"`
	AlphaFinal    float64             `json:"alpha_final"`
	AlphaKnown    bool                `json:"alpha_known"`
	AlphaPairs    []PairAlpha         `json:"alpha_pairs,omitempty"`
	AlphaTraj     []AlphaPoint        `json:"alpha_trajectory,omitempty"`
}

// Report snapshots the engine's accumulated judgment. Nil on a nil engine.
func (e *Engine) Report() *Report {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r := &Report{
		Spans:         e.spansSeen,
		RoundsDecided: e.roundsDecided,
		RoundsSkipped: e.roundsSkipped,
		Horizon:       e.now,
		Timeline:      append([]Transition(nil), e.timeline...),
		TimelineTrunc: e.timelineTrunc,
		ChangePoints:  append([]ChangePoint(nil), e.changePoints...),
		Rejuvenations: append([]RejuvenationEvent(nil), e.rejuvenations...),
		AlphaPairs:    e.alpha.Pairs(),
		AlphaTraj:     append([]AlphaPoint(nil), e.alphaTraj...),
	}
	r.AlphaFinal, r.AlphaKnown = e.alpha.Alpha()
	r.Final = e.snapshotLocked()
	r.Incidents = incidentWindows(r.Timeline, e.now)
	return r
}

// incidentWindows folds the overall-component transitions into contiguous
// non-healthy intervals.
func incidentWindows(timeline []Transition, horizon float64) []IncidentWindow {
	var out []IncidentWindow
	var open *IncidentWindow
	for _, tr := range timeline {
		if tr.Component != "overall" {
			continue
		}
		switch {
		case tr.To > Healthy && open == nil:
			out = append(out, IncidentWindow{Start: tr.T, Peak: tr.To})
			open = &out[len(out)-1]
		case open != nil && tr.To > open.Peak:
			open.Peak = tr.To
		}
		if open != nil && tr.To == Healthy {
			open.End = tr.T
			open.Resolved = true
			open = nil
		}
	}
	if open != nil {
		open.End = horizon
	}
	return out
}

// Replay feeds an exported span stream through a fresh engine and returns
// its report. Records are sorted by end time (stable) first, the same order
// a live sink observes completions in, so a replayed report reproduces the
// live engine's verdicts.
func Replay(recs []obs.SpanRecord, opts Options) *Report {
	e := NewEngine(opts, nil)
	e.trackAlphaTrajectory(64)
	sorted := append([]obs.SpanRecord(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].End < sorted[j].End })
	// Feed in sink-sized batches purely to exercise the same batch path the
	// live sink uses; batch boundaries carry no state.
	const batch = 256
	for len(sorted) > 0 {
		n := batch
		if n > len(sorted) {
			n = len(sorted)
		}
		e.ObserveSpans(sorted[:n], 0)
		sorted = sorted[n:]
	}
	return e.Report()
}

// trackAlphaTrajectory makes the engine sample the online α estimate every
// `every` decided rounds (the replay path's trajectory for reports; the
// live path reads the gauge instead).
func (e *Engine) trackAlphaTrajectory(every uint64) {
	if e == nil || every == 0 {
		return
	}
	e.mu.Lock()
	e.alphaEvery = every
	e.mu.Unlock()
}
