package health

import "sort"

// AlphaEstimator measures the error-dependency degree α of the paper's
// reliability model (Eq. 8) online, from the voter disagreement stream:
// each decided round contributes, per version, whether that version
// disagreed with the voted output (its proxy error event), and α for a
// pair is the ratio of simultaneous disagreements to the larger of the two
// individual disagreement counts — exactly reliability.AlphaPairwise
// computed incrementally, so the reliability projection can consume a
// measured α instead of the offline fault-injection estimate.
type AlphaEstimator struct {
	rounds   uint64
	versions []string          // in first-seen order
	index    map[string]int    // version name → dense index
	disagree []uint64          // per version
	pair     map[[2]int]uint64 // i<j → simultaneous disagreements
}

// NewAlphaEstimator returns an empty estimator; versions register lazily as
// they first appear in the disagreement stream.
func NewAlphaEstimator() *AlphaEstimator {
	return &AlphaEstimator{index: map[string]int{}, pair: map[[2]int]uint64{}}
}

// ObserveRound feeds one decided voting round: diverged lists the versions
// whose proposal disagreed with the voted output (empty for a clean round).
func (a *AlphaEstimator) ObserveRound(diverged []string) {
	a.rounds++
	if len(diverged) == 0 {
		return
	}
	ids := make([]int, 0, len(diverged))
	for _, name := range diverged {
		id, ok := a.index[name]
		if !ok {
			id = len(a.versions)
			a.index[name] = id
			a.versions = append(a.versions, name)
			a.disagree = append(a.disagree, 0)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for k, i := range ids {
		if k > 0 && ids[k-1] == i {
			continue // duplicate name in one round
		}
		a.disagree[i]++
		for _, j := range ids[k+1:] {
			if j == i {
				continue
			}
			a.pair[[2]int{i, j}]++
		}
	}
}

// Rounds returns how many decided rounds have been observed.
func (a *AlphaEstimator) Rounds() uint64 { return a.rounds }

// PairAlpha is one version pair's measured dependency.
type PairAlpha struct {
	A     string  `json:"a"`
	B     string  `json:"b"`
	Both  uint64  `json:"both"`
	MaxN  uint64  `json:"max_n"`
	Alpha float64 `json:"alpha"`
}

// Pairs returns the per-pair α values in deterministic (registration
// sorted) order, only for pairs where at least one version has disagreed.
func (a *AlphaEstimator) Pairs() []PairAlpha {
	names := append([]string(nil), a.versions...)
	sort.Strings(names)
	var out []PairAlpha
	for x, na := range names {
		for _, nb := range names[x+1:] {
			i, j := a.index[na], a.index[nb]
			if i > j {
				i, j = j, i
			}
			maxN := a.disagree[i]
			if a.disagree[j] > maxN {
				maxN = a.disagree[j]
			}
			if maxN == 0 {
				continue
			}
			both := a.pair[[2]int{i, j}]
			out = append(out, PairAlpha{
				A: na, B: nb, Both: both, MaxN: maxN,
				Alpha: float64(both) / float64(maxN),
			})
		}
	}
	return out
}

// Alpha returns the overall dependency estimate — the mean of the pairwise
// values (the paper's Eq. 9 generalisation) — and whether any pair has
// data yet. With no disagreements at all it reports (0, false): fully
// independent as far as the stream can tell, but unmeasured.
func (a *AlphaEstimator) Alpha() (float64, bool) {
	pairs := a.Pairs()
	if len(pairs) == 0 {
		return 0, false
	}
	var sum float64
	for _, p := range pairs {
		sum += p.Alpha
	}
	return sum / float64(len(pairs)), true
}
