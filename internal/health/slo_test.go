package health

import (
	"math"
	"testing"
)

func testObjective() Objective {
	return Objective{
		Name: "test", Target: 0.9, // 10% error budget
		Window: 100, ShortWindow: 5, LongWindow: 30, BurnAlert: 2,
	}
}

func TestSLOTrackerBudget(t *testing.T) {
	tr := newSLOTracker(testObjective(), 1)
	// 90 good + 10 bad over the window: budget exactly spent.
	for i := 0; i < 100; i++ {
		tr.record(float64(i), i%10 == 0)
	}
	s := tr.status()
	if s.Good != 90 || s.Bad != 10 {
		t.Fatalf("counts %d/%d, want 90/10", s.Good, s.Bad)
	}
	if math.Abs(s.BudgetRemaining) > 1e-9 {
		t.Fatalf("budget remaining %v, want 0 (exactly spent)", s.BudgetRemaining)
	}
}

func TestSLOTrackerCleanStream(t *testing.T) {
	tr := newSLOTracker(testObjective(), 1)
	for i := 0; i < 50; i++ {
		tr.record(float64(i), false)
	}
	s := tr.status()
	if s.BudgetRemaining != 1 {
		t.Fatalf("clean stream budget %v, want 1", s.BudgetRemaining)
	}
	if s.BurnShort != 0 || s.BurnLong != 0 || s.Alerting || s.Alerts != 0 {
		t.Fatalf("clean stream alerting: %+v", s)
	}
}

func TestSLOTrackerBurnRateAndAlert(t *testing.T) {
	tr := newSLOTracker(testObjective(), 1)
	// Healthy baseline, long enough to cover the long window.
	for i := 0; i < 60; i++ {
		tr.record(float64(i), false)
	}
	if tr.alerting {
		t.Fatal("alerting on the clean baseline")
	}
	// A short spike alone must not alert (long window still healthy).
	for i := 60; i < 63; i++ {
		tr.record(float64(i), true)
	}
	if tr.alerting {
		t.Fatal("multi-window rule alerted on a brief spike")
	}
	// A sustained 100% error rate alerts once both windows burn.
	for i := 63; i < 95; i++ {
		tr.record(float64(i), true)
	}
	s := tr.status()
	if !s.Alerting {
		t.Fatalf("sustained burn not alerting: %+v", s)
	}
	if s.Alerts != 1 {
		t.Fatalf("rising edges %d, want 1", s.Alerts)
	}
	if s.BurnShort < s.Objective.BurnAlert || s.BurnLong < s.Objective.BurnAlert {
		t.Fatalf("burn rates %.2f/%.2f below the alert threshold", s.BurnShort, s.BurnLong)
	}
	// Recovery clears the alert and a second burn is a second edge.
	for i := 95; i < 160; i++ {
		tr.record(float64(i), false)
	}
	if tr.alerting {
		t.Fatal("still alerting after a long clean stretch")
	}
	for i := 160; i < 200; i++ {
		tr.record(float64(i), true)
	}
	if got := tr.status().Alerts; got != 2 {
		t.Fatalf("rising edges %d after a second burn, want 2", got)
	}
}

func TestSLOTrackerRingEviction(t *testing.T) {
	tr := newSLOTracker(testObjective(), 1)
	// Errors early on, then a window-length of clean traffic: the stale
	// buckets must age out of the budget window.
	for i := 0; i < 20; i++ {
		tr.record(float64(i), true)
	}
	for i := 20; i < 250; i++ {
		tr.record(float64(i), false)
	}
	s := tr.status()
	if s.BudgetRemaining != 1 {
		t.Fatalf("budget %v after errors aged out, want 1", s.BudgetRemaining)
	}
	// Totals are lifetime counters, unaffected by eviction.
	if s.Bad != 20 {
		t.Fatalf("lifetime bad %d, want 20", s.Bad)
	}
}

func TestSLOTrackerEmptyWindow(t *testing.T) {
	tr := newSLOTracker(testObjective(), 1)
	if got := tr.budgetRemaining(0); got != 1 {
		t.Fatalf("empty tracker budget %v, want 1", got)
	}
	if got := tr.burnRate(0, 5); got != 0 {
		t.Fatalf("empty tracker burn %v, want 0", got)
	}
}
