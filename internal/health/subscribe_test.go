package health

import (
	"reflect"
	"testing"

	"mvml/internal/obs"
)

// TestSubscribeReceivesEveryTransition pins the push contract the gateway's
// LocalShard relies on: a subscriber sees exactly the engine's recorded
// timeline, in order, and the cached final level matches the engine's own.
func TestSubscribeReceivesEveryTransition(t *testing.T) {
	e := NewEngine(testEngineOptions(), nil)
	var got []Transition
	e.Subscribe(func(tr Transition) { got = append(got, tr) })
	e.ObserveSpans(incidentStream(), 0)

	rep := e.Report()
	if len(rep.Timeline) == 0 {
		t.Fatal("incident stream produced no transitions")
	}
	if !reflect.DeepEqual(got, rep.Timeline) {
		t.Fatalf("subscriber saw %d transitions, timeline has %d:\n%v\nvs\n%v",
			len(got), len(rep.Timeline), got, rep.Timeline)
	}
	last := Healthy
	for _, tr := range got {
		if tr.Component == "overall" {
			last = tr.To
		}
	}
	if last != e.OverallLevel() {
		t.Fatalf("replayed subscriber level %v != engine level %v", last, e.OverallLevel())
	}
}

// TestSubscribeBatchedDelivery: transitions buffered within one ObserveSpans
// batch are delivered after that batch, not lost, when subscribing midway.
func TestSubscribeLateSubscriberMissesHistory(t *testing.T) {
	e := NewEngine(testEngineOptions(), nil)
	recs := incidentStream()
	e.ObserveSpans(recs[:len(recs)/2], 0)
	var got []Transition
	e.Subscribe(func(tr Transition) { got = append(got, tr) })
	e.ObserveSpans(recs[len(recs)/2:], 0)
	rep := e.Report()
	if len(got) >= len(rep.Timeline) {
		t.Fatalf("late subscriber replayed history: got %d of %d", len(got), len(rep.Timeline))
	}
}

// TestShardFilter pins the multi-shard attribution contract: an engine with
// a ShardFilter judges only spans carrying its own shard label, so one shared
// sink can feed N independent per-shard verdicts.
func TestShardFilter(t *testing.T) {
	label := func(recs []obs.SpanRecord, shard string) []obs.SpanRecord {
		out := make([]obs.SpanRecord, len(recs))
		for i, r := range recs {
			attrs := map[string]any{"shard": shard}
			for k, v := range r.Attrs {
				attrs[k] = v
			}
			r.Attrs = attrs
			out[i] = r
		}
		return out
	}

	// Foreign spans only: the filtered engine must stay a blank slate.
	foreign := NewEngine(Options{ShardFilter: "shard-a"}, nil)
	var got []Transition
	foreign.Subscribe(func(tr Transition) { got = append(got, tr) })
	foreign.ObserveSpans(label(incidentStream(), "shard-b"), 0)
	if len(got) != 0 || foreign.OverallLevel() != Healthy {
		t.Fatalf("engine judged foreign spans: %d transitions, level %v", len(got), foreign.OverallLevel())
	}
	if rounds := foreign.Report().RoundsDecided; rounds != 0 {
		t.Fatalf("foreign spans counted as %d decided rounds", rounds)
	}

	// Matching spans must produce the same verdict as an unfiltered engine
	// over the unlabelled stream: filtering selects, it never distorts.
	opts := testEngineOptions()
	opts.ShardFilter = "shard-a"
	filtered := NewEngine(opts, nil)
	mixed := append(label(incidentStream(), "shard-a"), label(incidentStream(), "shard-b")...)
	// Interleave is irrelevant for this engine (it advances on span time), so
	// feeding the concatenation suffices to prove selection.
	filtered.ObserveSpans(mixed, 0)

	plain := NewEngine(testEngineOptions(), nil)
	plain.ObserveSpans(incidentStream(), 0)

	a, b := filtered.Report(), plain.Report()
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatalf("filtered verdict diverges from single-shard verdict:\n%v\nvs\n%v", a.Timeline, b.Timeline)
	}
	if a.RoundsDecided != b.RoundsDecided {
		t.Fatalf("filtered engine decided %d rounds, want %d", a.RoundsDecided, b.RoundsDecided)
	}
}

// TestLevelAccessors covers the gateway-facing read API.
func TestLevelAccessors(t *testing.T) {
	var nilEngine *Engine
	if nilEngine.OverallLevel() != Healthy {
		t.Fatal("nil engine must read healthy")
	}
	nilEngine.Subscribe(func(Transition) {}) // must not panic

	e := NewEngine(testEngineOptions(), nil)
	if e.Level("no-such-component") != Healthy {
		t.Fatal("unknown component must read healthy")
	}
	e.ObserveSpans(incidentStream()[:600], 0) // stop mid-incident
	if e.OverallLevel() == Healthy {
		t.Fatal("mid-incident engine reads healthy")
	}
}
