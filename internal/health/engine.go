package health

import (
	"fmt"
	"sort"
	"sync"

	"mvml/internal/obs"
)

// Level is a component's health verdict.
type Level int

const (
	Healthy Level = iota
	Degraded
	Critical
)

func (l Level) String() string {
	switch l {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the level as its name.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// UnmarshalJSON parses a level name, so verdicts and reports round-trip
// through JSON (the /healthz body, exported reports).
func (l *Level) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"healthy"`:
		*l = Healthy
	case `"degraded"`:
		*l = Degraded
	case `"critical"`:
		*l = Critical
	default:
		return fmt.Errorf("health: unknown level %s", b)
	}
	return nil
}

// Options parameterises an Engine. Start from DefaultOptions.
type Options struct {
	// Objectives are the SLOs to track; empty selects DefaultObjectives.
	Objectives []Objective
	// LatencyObjective is the per-request latency threshold (seconds)
	// feeding the latency SLO: a slower answer spends latency budget.
	LatencyObjective float64
	// BucketSeconds is the SLO ring bucket width.
	BucketSeconds float64
	// EWMALambda/EWMAZ/Warmup parameterise the per-stream EWMA detectors.
	EWMALambda float64
	EWMAZ      float64
	Warmup     int
	// CUSUMK/CUSUMH parameterise the queue-depth change-point detector.
	CUSUMK float64
	CUSUMH float64
	// DivergenceWindow/DivergenceThreshold mirror the serving reactive
	// trigger: a version whose windowed disagreement rate reaches the
	// threshold goes critical (the engine's rejuvenation advice).
	DivergenceWindow    int
	DivergenceThreshold float64
	// RecoverAfter is how many consecutive clean observations step a
	// component's level down by one (hysteresis).
	RecoverAfter int
	// CooldownSeconds suppresses repeat rejuvenation advice for a version
	// after its last rejuvenation.
	CooldownSeconds float64
	// MaxTimeline bounds the recorded verdict-transition log.
	MaxTimeline int
	// ShardFilter, when non-empty, restricts the engine to spans carrying a
	// matching "shard" attribute. In a multi-shard deployment every shard's
	// engine rides the same shared span sink; the filter is what keeps each
	// engine's verdict about its own shard only. Empty observes everything
	// (the single-server and replay default).
	ShardFilter string
}

// DefaultObjectives returns the standard serving objectives: availability
// (answered at all), quality (answered by a healthy majority) and latency
// (answered within the latency objective). The windows are short enough
// that a demo run exercises the budget machinery.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "availability", Target: 0.99, Window: 120, ShortWindow: 5, LongWindow: 30, BurnAlert: 2},
		{Name: "quality", Target: 0.90, Window: 120, ShortWindow: 5, LongWindow: 30, BurnAlert: 2},
		{Name: "latency", Target: 0.95, Window: 120, ShortWindow: 5, LongWindow: 30, BurnAlert: 2},
	}
}

// DefaultOptions returns engine parameters matched to the demo workload.
func DefaultOptions() Options {
	return Options{
		Objectives:          DefaultObjectives(),
		LatencyObjective:    0.25,
		BucketSeconds:       1,
		EWMALambda:          0.05,
		EWMAZ:               6,
		Warmup:              32,
		CUSUMK:              0.5,
		CUSUMH:              8,
		DivergenceWindow:    32,
		DivergenceThreshold: 0.5,
		RecoverAfter:        16,
		CooldownSeconds:     5,
		MaxTimeline:         4096,
	}
}

// withDefaults fills zero fields from DefaultOptions.
func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if len(o.Objectives) == 0 {
		o.Objectives = d.Objectives
	}
	if o.LatencyObjective <= 0 {
		o.LatencyObjective = d.LatencyObjective
	}
	if o.BucketSeconds <= 0 {
		o.BucketSeconds = d.BucketSeconds
	}
	if o.EWMALambda <= 0 || o.EWMALambda > 1 {
		o.EWMALambda = d.EWMALambda
	}
	if o.EWMAZ <= 0 {
		o.EWMAZ = d.EWMAZ
	}
	if o.Warmup <= 0 {
		o.Warmup = d.Warmup
	}
	if o.CUSUMK <= 0 {
		o.CUSUMK = d.CUSUMK
	}
	if o.CUSUMH <= 0 {
		o.CUSUMH = d.CUSUMH
	}
	if o.DivergenceWindow <= 0 {
		o.DivergenceWindow = d.DivergenceWindow
	}
	if o.DivergenceThreshold <= 0 || o.DivergenceThreshold > 1 {
		o.DivergenceThreshold = d.DivergenceThreshold
	}
	if o.RecoverAfter <= 0 {
		o.RecoverAfter = d.RecoverAfter
	}
	if o.CooldownSeconds <= 0 {
		o.CooldownSeconds = d.CooldownSeconds
	}
	if o.MaxTimeline <= 0 {
		o.MaxTimeline = d.MaxTimeline
	}
	return o
}

// component is one tracked health dimension's state-machine cell.
type component struct {
	level       Level
	cleanStreak int
	anomalies   uint64
	lastChange  float64
	lastReason  string
	gauge       *obs.Gauge
}

// Transition is one verdict change in the engine's timeline.
type Transition struct {
	T         float64 `json:"t"`
	Component string  `json:"component"`
	From      Level   `json:"from"`
	To        Level   `json:"to"`
	Reason    string  `json:"reason"`
}

// ChangePoint is one CUSUM detection.
type ChangePoint struct {
	T      float64 `json:"t"`
	Stream string  `json:"stream"`
	Stat   float64 `json:"stat"`
}

// RejuvenationEvent is one observed rejuvenation span.
type RejuvenationEvent struct {
	T       float64 `json:"t"`
	Version string  `json:"version"`
	Kind    string  `json:"kind"`
}

// Engine is the streaming health engine. It implements obs.SpanObserver:
// attach it to a span sink (live) or feed it records directly (replay) —
// both paths run the identical code, and all state advances on span
// timestamps only, so a replay reproduces the live verdicts exactly.
//
// A nil *Engine is a valid no-op handle.
type Engine struct {
	opts Options

	mu    sync.Mutex
	now   float64 // latest observed span end time
	comps map[string]*component
	order []string // component registration order for stable iteration

	latency *EWMA
	stages  map[string]*EWMA
	queue   *CUSUM

	slos  []*sloTracker
	alpha *AlphaEstimator
	rings map[string]*divergenceRing // version name → disagreement window
	cool  map[string]float64         // version name → cooldown deadline

	timeline      []Transition
	timelineTrunc uint64
	changePoints  []ChangePoint
	rejuvenations []RejuvenationEvent
	spansSeen     uint64
	roundsDecided uint64
	roundsSkipped uint64
	alphaEvery    uint64 // sample the α trajectory every N decided rounds
	alphaTraj     []AlphaPoint

	reg        *obs.Registry
	alphaGauge *obs.Gauge
	sloGauges  map[string][3]*obs.Gauge // name → budget, burn short, burn long

	// subs receive verdict transitions; pending buffers transitions recorded
	// while e.mu is held so subscribers are always invoked outside the lock
	// (they may call back into the engine's accessors).
	subs    []func(Transition)
	pending []Transition
}

// NewEngine builds an engine publishing mv_health_* gauges into reg (nil
// reg keeps the engine fully functional with no-op gauges).
func NewEngine(opts Options, reg *obs.Registry) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		opts:    opts,
		comps:   map[string]*component{},
		latency: &EWMA{Lambda: opts.EWMALambda, Z: opts.EWMAZ, Warmup: opts.Warmup},
		stages:  map[string]*EWMA{},
		queue:   &CUSUM{K: opts.CUSUMK, H: opts.CUSUMH, Warmup: opts.Warmup},
		alpha:   NewAlphaEstimator(),
		rings:   map[string]*divergenceRing{},
		cool:    map[string]float64{},
		reg:     reg,
	}
	reg.Help("mv_health_state", "Component health verdict: 0 healthy, 1 degraded, 2 critical.")
	reg.Help("mv_health_alpha", "Online error-dependency estimate over the voter disagreement stream.")
	reg.Help("mv_health_budget_remaining", "Unspent fraction of the SLO error budget (1 = untouched, <0 = overspent).")
	reg.Help("mv_health_burn_rate", "SLO budget burn rate over the labelled window (1 = sustainable pace).")
	reg.Help("mv_health_anomalies_total", "Anomalous observations flagged per component.")
	e.alphaGauge = reg.Gauge("mv_health_alpha")
	e.sloGauges = map[string][3]*obs.Gauge{}
	for _, obj := range opts.Objectives {
		e.slos = append(e.slos, newSLOTracker(obj, opts.BucketSeconds))
		e.sloGauges[obj.Name] = [3]*obs.Gauge{
			reg.Gauge("mv_health_budget_remaining", "slo", obj.Name),
			reg.Gauge("mv_health_burn_rate", "slo", obj.Name, "window", "short"),
			reg.Gauge("mv_health_burn_rate", "slo", obj.Name, "window", "long"),
		}
	}
	// Pre-register the process rollup so /metrics always exposes it.
	e.comp("overall")
	return e
}

// comp resolves (lazily creating) one component cell. Caller holds e.mu
// (or the engine is still being constructed).
func (e *Engine) comp(name string) *component {
	c := e.comps[name]
	if c == nil {
		c = &component{gauge: e.reg.Gauge("mv_health_state", "component", name)}
		e.comps[name] = c
		e.order = append(e.order, name)
		c.gauge.Set(0)
	}
	return c
}

// bump raises name's level to at least lvl, recording the transition.
// Caller holds e.mu.
func (e *Engine) bump(name string, lvl Level, t float64, reason string) {
	c := e.comp(name)
	c.cleanStreak = 0
	c.anomalies++
	if e.reg != nil {
		e.reg.Counter("mv_health_anomalies_total", "component", name).Inc()
	}
	if lvl <= c.level {
		return
	}
	e.transition(name, c, lvl, t, reason)
}

// clean records one unremarkable observation for name; enough of them in a
// row step the level down (hysteresis). Caller holds e.mu.
func (e *Engine) clean(name string, t float64) {
	c := e.comps[name]
	if c == nil || c.level == Healthy {
		return
	}
	c.cleanStreak++
	if c.cleanStreak >= e.opts.RecoverAfter {
		c.cleanStreak = 0
		e.transition(name, c, c.level-1, t, "recovered")
	}
}

// force sets name's level outright (rejuvenation reset). Caller holds e.mu.
func (e *Engine) force(name string, lvl Level, t float64, reason string) {
	c := e.comp(name)
	c.cleanStreak = 0
	if c.level == lvl {
		return
	}
	e.transition(name, c, lvl, t, reason)
}

func (e *Engine) transition(name string, c *component, to Level, t float64, reason string) {
	from := c.level
	c.level = to
	c.lastChange = t
	c.lastReason = reason
	c.gauge.Set(float64(to))
	e.record(Transition{T: t, Component: name, From: from, To: to, Reason: reason})
	e.rollup(t)
}

// rollup recomputes the process-level verdict (max over components).
// Caller holds e.mu.
func (e *Engine) rollup(t float64) {
	worst := Healthy
	var why string
	for _, name := range e.order {
		if name == "overall" {
			continue
		}
		if c := e.comps[name]; c.level > worst {
			worst = c.level
			why = name
		}
	}
	o := e.comps["overall"]
	if o.level == worst {
		return
	}
	from := o.level
	o.level = worst
	o.lastChange = t
	o.lastReason = why
	o.gauge.Set(float64(worst))
	e.record(Transition{T: t, Component: "overall", From: from, To: worst, Reason: why})
}

func (e *Engine) record(tr Transition) {
	if len(e.subs) > 0 {
		e.pending = append(e.pending, tr)
	}
	if len(e.timeline) >= e.opts.MaxTimeline {
		e.timelineTrunc++
		return
	}
	e.timeline = append(e.timeline, tr)
}

// Subscribe registers fn to receive every subsequent verdict transition
// (component level changes, including the "overall" rollup). Callbacks run
// synchronously on the span-publishing goroutine but always outside the
// engine's lock, so a subscriber may call the engine's accessors; it must
// not block. A nil engine ignores the call.
func (e *Engine) Subscribe(fn func(Transition)) {
	if e == nil || fn == nil {
		return
	}
	e.mu.Lock()
	e.subs = append(e.subs, fn)
	e.mu.Unlock()
}

// Level returns the named component's current verdict (Healthy when the
// component is unknown or the engine is nil).
func (e *Engine) Level(component string) Level {
	if e == nil {
		return Healthy
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if c := e.comps[component]; c != nil {
		return c.level
	}
	return Healthy
}

// OverallLevel returns the process-level rollup verdict.
func (e *Engine) OverallLevel() Level { return e.Level("overall") }

// ObserveSpans implements obs.SpanObserver: the engine's single ingestion
// path, shared by live serving and offline replay. The sink's now is
// ignored — all detector state advances on span timestamps, which is what
// makes replay deterministic.
func (e *Engine) ObserveSpans(recs []obs.SpanRecord, _ float64) {
	if e == nil || len(recs) == 0 {
		return
	}
	e.mu.Lock()
	for i := range recs {
		if e.opts.ShardFilter != "" && attrString(recs[i].Attrs["shard"]) != e.opts.ShardFilter {
			continue
		}
		e.observeOne(&recs[i])
	}
	// Publish the continuous gauges once per batch.
	if a, ok := e.alpha.Alpha(); ok {
		e.alphaGauge.Set(a)
	}
	for _, t := range e.slos {
		g := e.sloGauges[t.obj.Name]
		g[0].Set(t.budgetRemaining(e.now))
		g[1].Set(t.burnRate(e.now, t.obj.ShortWindow))
		g[2].Set(t.burnRate(e.now, t.obj.LongWindow))
	}
	// Hand pending transitions to subscribers outside the lock; subs is
	// append-only, so the slice snapshot stays valid after unlock.
	fired := e.pending
	e.pending = nil
	subs := e.subs
	e.mu.Unlock()
	for _, tr := range fired {
		for _, fn := range subs {
			fn(tr)
		}
	}
}

// observeOne dispatches one span record into the detectors. Caller holds
// e.mu.
func (e *Engine) observeOne(rec *obs.SpanRecord) {
	e.spansSeen++
	t := rec.End
	if t > e.now {
		e.now = t
	}
	switch rec.Kind {
	case "request":
		e.observeRequest(rec, t)
	case "queue_wait", "forward", "vote", "batch":
		e.observeStage(rec, t)
		if rec.Kind == "vote" {
			e.observeVote(rec, t)
		}
		if rec.Kind == "batch" {
			if depth, ok := attrFloat(rec.Attrs["queue_depth"]); ok {
				e.observeQueueDepth(depth, t)
			}
		}
	case "rejuvenation":
		e.observeRejuvenation(rec, t)
	case "divergence":
		// The simulation stack's voter-skip span (core telemetry).
		e.bump("voter", Degraded, t, "voter skipped: divergence")
	case "disagreement":
		// A decided round with minority dissent (core telemetry): a
		// per-module error observation for the α estimator.
		e.alpha.ObserveRound(attrStrings(rec.Attrs["diverged"]))
	}
}

func (e *Engine) observeRequest(rec *obs.SpanRecord, t float64) {
	d := rec.Duration()
	errAttr := rec.Attrs["error"] != nil
	degraded := attrBool(rec.Attrs["degraded"])
	for _, tr := range e.slos {
		var bad bool
		switch tr.obj.Name {
		case "availability":
			bad = errAttr
		case "quality":
			bad = errAttr || degraded
		case "latency":
			bad = !errAttr && d > e.opts.LatencyObjective
		default:
			bad = errAttr
		}
		tr.record(t, bad)
		if tr.alerting {
			e.bump("slo:"+tr.obj.Name, Critical, t,
				fmt.Sprintf("burn rate over %.3g on both windows", tr.obj.BurnAlert))
		} else {
			e.clean("slo:"+tr.obj.Name, t)
		}
	}
	if errAttr {
		return // latency of a failed admission is not a latency sample
	}
	if z, anom := e.latency.Observe(d); anom {
		e.bump("latency", Degraded, t, fmt.Sprintf("e2e latency z=%.1f", z))
	} else {
		e.clean("latency", t)
	}
}

func (e *Engine) observeStage(rec *obs.SpanRecord, t float64) {
	det := e.stages[rec.Kind]
	if det == nil {
		det = &EWMA{Lambda: e.opts.EWMALambda, Z: e.opts.EWMAZ, Warmup: e.opts.Warmup}
		e.stages[rec.Kind] = det
	}
	if z, anom := det.Observe(rec.Duration()); anom {
		e.bump("stage:"+rec.Kind, Degraded, t, fmt.Sprintf("stage latency z=%.1f", z))
	} else {
		e.clean("stage:"+rec.Kind, t)
	}
}

func (e *Engine) observeQueueDepth(depth, t float64) {
	stat, change := e.queue.Observe(depth)
	if change {
		e.changePoints = append(e.changePoints, ChangePoint{T: t, Stream: "queue_depth", Stat: stat})
		// First change-point degrades; a repeat before the component recovers
		// (the CUSUM relearns its baseline after each detection, so a repeat
		// means the shift is sustained) escalates to critical — the level at
		// which rejuvenation is vetoed until the backlog clears.
		lvl := Degraded
		if c := e.comps["queue"]; c != nil && c.level >= Degraded {
			lvl = Critical
		}
		e.bump("queue", lvl, t, fmt.Sprintf("queue depth change-point (CUSUM %.1f)", stat))
	} else if !e.queue.Learning() {
		// While the CUSUM re-learns its baseline it cannot flag anything, so
		// those observations are not evidence of recovery.
		e.clean("queue", t)
	}
}

// observeVote consumes one voting round: the diverged attribute lists the
// versions that disagreed with the voted output (absent for clean rounds).
func (e *Engine) observeVote(rec *obs.SpanRecord, t float64) {
	if attrBool(rec.Attrs["skipped"]) {
		e.roundsSkipped++
		e.bump("voter", Degraded, t, "voter skipped: no majority")
		// A skipped round is a coincident failure: every participating
		// version was in a minority, which is exactly the simultaneous-error
		// event Eq. 8's intersection counts (under majority voting a decided
		// round can have at most one dissenter, so only skips produce
		// simultaneous disagreements).
		e.alpha.ObserveRound(attrStrings(rec.Attrs["voters"]))
		return
	}
	e.roundsDecided++
	e.clean("voter", t)
	diverged := attrStrings(rec.Attrs["diverged"])
	e.alpha.ObserveRound(diverged)
	if e.alphaEvery > 0 && e.roundsDecided%e.alphaEvery == 0 {
		if a, ok := e.alpha.Alpha(); ok {
			e.alphaTraj = append(e.alphaTraj, AlphaPoint{T: t, Rounds: e.roundsDecided, Alpha: a})
		}
	}
	divergedSet := map[string]bool{}
	for _, name := range diverged {
		divergedSet[name] = true
	}
	for _, name := range attrStrings(rec.Attrs["voters"]) {
		ring := e.rings[name]
		if ring == nil {
			ring = newDivergenceRing(e.opts.DivergenceWindow)
			e.rings[name] = ring
		}
		ring.observe(divergedSet[name])
		comp := "version:" + name
		rate, full := ring.rate()
		switch {
		case full && rate >= e.opts.DivergenceThreshold:
			e.bump(comp, Critical, t, fmt.Sprintf("divergence rate %.2f over window", rate))
		case full && rate >= e.opts.DivergenceThreshold/2:
			e.bump(comp, Degraded, t, fmt.Sprintf("divergence rate %.2f over window", rate))
		default:
			e.comp(comp)
			e.clean(comp, t)
		}
	}
}

func (e *Engine) observeRejuvenation(rec *obs.SpanRecord, t float64) {
	version := attrString(rec.Attrs["version"])
	kind := attrString(rec.Attrs["kind"])
	e.rejuvenations = append(e.rejuvenations, RejuvenationEvent{T: t, Version: version, Kind: kind})
	if version == "" {
		return
	}
	// Rejuvenation gives the version a clean slate: its disagreement window
	// restarts (mirroring the serving pool's reset) and repeat advice is
	// suppressed for the cooldown.
	if ring := e.rings[version]; ring != nil {
		ring.reset()
	}
	e.cool[version] = t + e.opts.CooldownSeconds
	if _, ok := e.comps["version:"+version]; ok {
		e.force("version:"+version, Healthy, t, "rejuvenated ("+kind+")")
	}
}

// ShouldRejuvenate reports whether the engine's verdict calls for
// rejuvenating the named version: its divergence component is critical and
// it is outside the post-rejuvenation cooldown. False on a nil engine.
func (e *Engine) ShouldRejuvenate(version string) bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.comps["version:"+version]
	if c == nil || c.level < Critical {
		return false
	}
	return e.now >= e.cool[version]
}

// SuppressRejuvenation reports whether reactive rejuvenation should be held
// back right now: draining a version while the queue is collapsing under
// backpressure would amplify the latency incident, so a critical queue
// component vetoes the trigger until the backlog clears. False on a nil
// engine.
func (e *Engine) SuppressRejuvenation() bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.comps["queue"]
	return c != nil && c.level >= Critical
}

// ObserveAlert feeds an external alert transition — the tsdb rule engine's
// firing/resolve edges — into the verdict as component "alert:"+name. A
// firing critical alert goes Critical, a firing warning Degraded; a resolve
// returns the component to Healthy immediately (the rule engine's
// for-duration already provides the hysteresis the span-driven components
// get from RecoverAfter). Safe on a nil engine.
func (e *Engine) ObserveAlert(name string, critical, firing bool, t float64, reason string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	comp := "alert:" + name
	if firing {
		lvl := Degraded
		if critical {
			lvl = Critical
		}
		if reason == "" {
			reason = "alert firing"
		}
		e.bump(comp, lvl, t, reason)
		return
	}
	if _, ok := e.comps[comp]; ok {
		e.force(comp, Healthy, t, "alert resolved")
	}
}

// ComponentStatus is one component's externally visible state.
type ComponentStatus struct {
	Name       string  `json:"name"`
	Level      Level   `json:"level"`
	Anomalies  uint64  `json:"anomalies"`
	LastChange float64 `json:"last_change,omitempty"`
	LastReason string  `json:"last_reason,omitempty"`
}

// Verdict is a point-in-time snapshot of the engine's health state.
type Verdict struct {
	Overall    Level             `json:"overall"`
	Components []ComponentStatus `json:"components"`
	SLOs       []SLOStatus       `json:"slos"`
	Alpha      float64           `json:"alpha"`
	AlphaKnown bool              `json:"alpha_known"`
	Rounds     uint64            `json:"rounds"`
	Spans      uint64            `json:"spans"`
}

// Snapshot returns the current verdict; components are sorted by name for
// deterministic output. Nil on a nil engine.
func (e *Engine) Snapshot() *Verdict {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

// snapshotLocked builds the verdict; caller holds e.mu.
func (e *Engine) snapshotLocked() *Verdict {
	v := &Verdict{
		Overall: e.comps["overall"].level,
		Rounds:  e.roundsDecided,
		Spans:   e.spansSeen,
	}
	v.Alpha, v.AlphaKnown = e.alpha.Alpha()
	names := append([]string(nil), e.order...)
	sort.Strings(names)
	for _, name := range names {
		c := e.comps[name]
		v.Components = append(v.Components, ComponentStatus{
			Name: name, Level: c.level, Anomalies: c.anomalies,
			LastChange: c.lastChange, LastReason: c.lastReason,
		})
	}
	for _, t := range e.slos {
		v.SLOs = append(v.SLOs, t.status())
	}
	return v
}

// attr accessors tolerant of both live values and JSONL round-trips (JSON
// decodes numbers as float64 and string slices as []any).

func attrBool(v any) bool {
	b, _ := v.(bool)
	return b
}

func attrString(v any) string {
	s, _ := v.(string)
	return s
}

func attrFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	}
	return 0, false
}

func attrStrings(v any) []string {
	switch xs := v.(type) {
	case []string:
		return xs
	case []any:
		out := make([]string, 0, len(xs))
		for _, x := range xs {
			if s, ok := x.(string); ok {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}
