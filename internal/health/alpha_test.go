package health

import (
	"math"
	"testing"

	"mvml/internal/reliability"
)

// TestAlphaMatchesPairwise cross-checks the incremental estimator against
// the reference batch computation (reliability.AlphaPairwise, Eq. 8) on a
// synthetic round log: per-version error sets built from the same rounds
// must yield the same pairwise α values.
func TestAlphaMatchesPairwise(t *testing.T) {
	versions := []string{"a", "b", "c"}
	// rounds[i] lists which versions diverged in round i.
	rounds := [][]string{
		{"a"}, {}, {"a", "b"}, {"b"}, {"a", "b", "c"}, {}, {"c"},
		{"a", "b"}, {"a"}, {}, {"b", "c"}, {"a", "c"}, {}, {"a", "b", "c"},
	}

	est := NewAlphaEstimator()
	errSets := map[string]map[int]bool{}
	for _, v := range versions {
		errSets[v] = map[int]bool{}
	}
	for i, div := range rounds {
		est.ObserveRound(div)
		for _, v := range div {
			errSets[v][i] = true
		}
	}

	if got, want := est.Rounds(), uint64(len(rounds)); got != want {
		t.Fatalf("Rounds() = %d, want %d", got, want)
	}
	pairs := est.Pairs()
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3", len(pairs))
	}
	for _, p := range pairs {
		want := reliability.AlphaPairwise(errSets[p.A], errSets[p.B])
		if math.Abs(p.Alpha-want) > 1e-12 {
			t.Errorf("pair %s~%s: alpha %v, want AlphaPairwise %v", p.A, p.B, p.Alpha, want)
		}
	}

	// Overall α is the mean of the pairwise values (Eq. 9).
	want := reliability.AlphaThreeVersion(errSets["a"], errSets["b"], errSets["c"])
	got, known := est.Alpha()
	if !known {
		t.Fatal("alpha unmeasured despite disagreements")
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("overall alpha %v, want AlphaThreeVersion %v", got, want)
	}
}

func TestAlphaUnmeasuredWithoutDisagreements(t *testing.T) {
	est := NewAlphaEstimator()
	for i := 0; i < 100; i++ {
		est.ObserveRound(nil)
	}
	if a, known := est.Alpha(); known || a != 0 {
		t.Fatalf("clean stream: alpha (%v, %v), want (0, false)", a, known)
	}
	if pairs := est.Pairs(); len(pairs) != 0 {
		t.Fatalf("clean stream produced %d pairs", len(pairs))
	}
}

func TestAlphaDeduplicatesWithinRound(t *testing.T) {
	est := NewAlphaEstimator()
	est.ObserveRound([]string{"a", "a", "b"})
	pairs := est.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1", len(pairs))
	}
	if p := pairs[0]; p.Both != 1 || p.MaxN != 1 || p.Alpha != 1 {
		t.Fatalf("duplicate-name round double-counted: %+v", p)
	}
}

func TestAlphaFullyDependent(t *testing.T) {
	est := NewAlphaEstimator()
	for i := 0; i < 10; i++ {
		est.ObserveRound([]string{"x", "y"})
	}
	a, known := est.Alpha()
	if !known || a != 1 {
		t.Fatalf("always-together divergence: alpha (%v, %v), want (1, true)", a, known)
	}
}

func TestAlphaIndependent(t *testing.T) {
	est := NewAlphaEstimator()
	for i := 0; i < 10; i++ {
		est.ObserveRound([]string{"x"})
		est.ObserveRound([]string{"y"})
	}
	a, known := est.Alpha()
	if !known || a != 0 {
		t.Fatalf("never-together divergence: alpha (%v, %v), want (0, true)", a, known)
	}
}
