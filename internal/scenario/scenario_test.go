package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mvml/internal/xrand"
)

// sampleValid is the shared test scenario: every optional feature present.
func sampleValid() Scenario {
	return Scenario{
		Version:   DSLVersion,
		Name:      "kitchen-sink",
		Route:     3,
		Seed:      42,
		DT:        0.05,
		MaxFrames: 400,
		Cruise:    14,
		NPCs: []NPCSpec{
			{StartFrac: 0.2, Radius: 1.5, Phases: []PhaseSpec{{Until: 5, Speed: 6}, {Until: 30, Speed: 0}}},
			{StartFrac: 0.6, Phases: []PhaseSpec{{Until: 40, Speed: 3}}},
		},
		Occlusions: []OcclusionSpec{{S0: 0.1, S1: 0.4, HalfWidth: 3, T0: 2, T1: 9}},
		Perception: PerceptionSpec{
			Versions: 3, Seed: 9, Photometric: 0.25, MissScale: 1.5,
			NoiseScale: 1, Ghost: 0.3, CommonMode: 0.7, MatchRadius: 1.6,
		},
		Faults: []FaultEvent{
			{Time: 1, Version: 0, Action: ActionCompromise, Kind: "bit-flip"},
			{Time: 4, Version: 1, Action: ActionCompromise},
			{Time: 8, Version: 0, Action: ActionRestore},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleValid()
	b1, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("canonical encoding not a fixpoint:\n%s\nvs\n%s", b1, b2)
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := sampleValid().MustEncode()
	cases := []struct {
		name   string
		mangle func(Scenario) Scenario
		substr string
	}{
		{"wrong version", func(s Scenario) Scenario { s.Version = 99; return s }, "version"},
		{"route zero", func(s Scenario) Scenario { s.Route = 0; return s }, "route"},
		{"route high", func(s Scenario) Scenario { s.Route = 9; return s }, "route"},
		{"negative dt", func(s Scenario) Scenario { s.DT = -0.01; return s }, "dt"},
		{"huge dt", func(s Scenario) Scenario { s.DT = 2; return s }, "dt"},
		{"frames cap", func(s Scenario) Scenario { s.MaxFrames = MaxFrameCap + 1; return s }, "max_frames"},
		{"cruise cap", func(s Scenario) Scenario { s.Cruise = 99; return s }, "cruise"},
		{"nil npcs", func(s Scenario) Scenario { s.NPCs = nil; return s }, "npcs"},
		{"start frac", func(s Scenario) Scenario { s.NPCs[0].StartFrac = 1.5; return s }, "start_frac"},
		{"no phases", func(s Scenario) Scenario { s.NPCs[0].Phases = nil; return s }, "phases"},
		{"phase order", func(s Scenario) Scenario {
			s.NPCs[0].Phases = []PhaseSpec{{Until: 5, Speed: 1}, {Until: 5, Speed: 2}}
			return s
		}, "increasing"},
		{"npc speed cap", func(s Scenario) Scenario { s.NPCs[0].Phases[0].Speed = 99; return s }, "speed"},
		{"occlusion span", func(s Scenario) Scenario { s.Occlusions[0].S1 = s.Occlusions[0].S0; return s }, "arc window"},
		{"occlusion time", func(s Scenario) Scenario { s.Occlusions[0].T1 = s.Occlusions[0].T0; return s }, "time window"},
		{"versions", func(s Scenario) Scenario { s.Perception.Versions = 4; return s }, "versions"},
		{"photometric", func(s Scenario) Scenario { s.Perception.Photometric = 1.5; return s }, "photometric"},
		{"match radius", func(s Scenario) Scenario { s.Perception.MatchRadius = 0; return s }, "match_radius"},
		{"fault order", func(s Scenario) Scenario {
			s.Faults[0].Time = 100
			return s
		}, "sorted"},
		{"fault version", func(s Scenario) Scenario { s.Faults[0].Version = 3; return s }, "version"},
		{"fault action", func(s Scenario) Scenario { s.Faults[0].Action = "melt"; return s }, "action"},
		{"fault kind", func(s Scenario) Scenario { s.Faults[0].Kind = "rowhammer"; return s }, "kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mangle(mustDecode(t, valid))
			err := s.Validate()
			if err == nil {
				t.Fatal("expected validation error")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("error %q does not mention %q", err, tc.substr)
			}
		})
	}
}

func mustDecode(t *testing.T, data []byte) Scenario {
	t.Helper()
	s, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestValidateRejectsNonFinite: NaN and Inf are unrepresentable in JSON, so
// a scenario carrying one could never round-trip through the corpus —
// Validate must refuse them everywhere a float lives.
func TestValidateRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for name, mangle := range map[string]func(*Scenario){
			"dt":          func(s *Scenario) { s.DT = bad },
			"cruise":      func(s *Scenario) { s.Cruise = bad },
			"start_frac":  func(s *Scenario) { s.NPCs[0].StartFrac = bad },
			"phase until": func(s *Scenario) { s.NPCs[0].Phases[0].Until = bad },
			"phase speed": func(s *Scenario) { s.NPCs[0].Phases[0].Speed = bad },
			"occlusion":   func(s *Scenario) { s.Occlusions[0].HalfWidth = bad },
			"photometric": func(s *Scenario) { s.Perception.Photometric = bad },
			"fault time":  func(s *Scenario) { s.Faults[0].Time = bad },
		} {
			s := sampleValid()
			mangle(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("%s = %v passed validation", name, bad)
			}
		}
	}
}

func TestDecodeRejectsUnknownFieldsAndTrailer(t *testing.T) {
	if _, err := Decode([]byte(`{"version": 1, "turbo": true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	trailer := append(sampleValid().MustEncode(), []byte("{}")...)
	if _, err := Decode(trailer); err == nil {
		t.Fatal("trailing document accepted")
	}
}

// TestCloneDoesNotAlias: a mutated clone must never write through to the
// original's schedule slices — the hill-climber depends on this to keep its
// accepted scenario intact across rejected candidates.
func TestCloneDoesNotAlias(t *testing.T) {
	s := sampleValid()
	c := Clone(s)
	c.NPCs[0].Phases[0].Speed = 99
	c.NPCs[0].StartFrac = 0.99
	c.Occlusions[0].T0 = 99
	c.Faults[0].Time = 99
	if s.NPCs[0].Phases[0].Speed == 99 || s.NPCs[0].StartFrac == 0.99 ||
		s.Occlusions[0].T0 == 99 || s.Faults[0].Time == 99 {
		t.Fatal("Clone shares memory with the original")
	}
}

// TestSampleMutateAlwaysValid: the falsifier's generators must stay inside
// the DSL — every sampled scenario and every mutation chain is valid.
func TestSampleMutateAlwaysValid(t *testing.T) {
	sp := DefaultSpace()
	rng := xrand.New(123)
	for i := 0; i < 50; i++ {
		s := Sample(sp, rng.Split("sample", uint64(i)))
		if err := s.Validate(); err != nil {
			t.Fatalf("sample %d invalid: %v", i, err)
		}
		mrng := rng.Split("mutate", uint64(i))
		for j := 0; j < 20; j++ {
			s = Mutate(sp, s, mrng)
			if err := s.Validate(); err != nil {
				t.Fatalf("sample %d mutation %d invalid: %v\n%s", i, j, err, s.MustEncode())
			}
		}
	}
}

// TestEvaluateDeterministic: Evaluate is a pure function of the scenario.
func TestEvaluateDeterministic(t *testing.T) {
	s := sampleValid()
	a, err := Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two evaluations diverged:\n%+v\n%+v", a, b)
	}
	if a.TotalFrames < 1 || a.TotalFrames > s.MaxFrames {
		t.Fatalf("frames %d outside 1..%d", a.TotalFrames, s.MaxFrames)
	}
}

// TestOcclusionHidesObstacle: an occlusion box covering the hazard corridor
// must degrade what perception reports — here a parked lead under a
// permanent occlusion is invisible, so a perfect-knob ensemble drives into
// it, while the unoccluded twin stops in time.
func TestOcclusionHidesObstacle(t *testing.T) {
	base := Scenario{
		Version: DSLVersion, Route: 1, Seed: 5, DT: 0.05, MaxFrames: 700, Cruise: 13,
		NPCs: []NPCSpec{{StartFrac: 0.35, Phases: []PhaseSpec{{Until: 300, Speed: 0}}}},
		Perception: PerceptionSpec{
			Versions: 3, Seed: 5, MissScale: 1, NoiseScale: 1, MatchRadius: 1.6,
		},
	}
	clear, err := Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	occluded := Clone(base)
	occluded.Occlusions = []OcclusionSpec{{S0: 0, S1: 1, HalfWidth: 10, T0: 0, T1: 299}}
	hidden, err := Evaluate(occluded)
	if err != nil {
		t.Fatal(err)
	}
	if clear.Collided {
		t.Fatalf("healthy ensemble hit a visible parked car: %+v", clear)
	}
	if !hidden.Collided {
		t.Fatalf("fully occluded parked car not hit: %+v", hidden)
	}
	if hidden.MissedObstacleFrames == 0 {
		t.Fatal("occluded hazard produced no missed-obstacle frames")
	}
}

// TestFaultScheduleCompromises: a scheduled 2-of-3 compromise with a high
// common mode must produce a worse outcome than the fault-free twin, and a
// restore event must be honoured (the channel applies events in order).
func TestFaultScheduleCompromises(t *testing.T) {
	base := Scenario{
		Version: DSLVersion, Route: 2, Seed: 11, DT: 0.05, MaxFrames: 700, Cruise: 13,
		NPCs: []NPCSpec{{StartFrac: 0.4, Phases: []PhaseSpec{{Until: 300, Speed: 0}}}},
		Perception: PerceptionSpec{
			Versions: 3, Seed: 11, MissScale: 1, NoiseScale: 1,
			CommonMode: 1, MatchRadius: 1.6,
		},
	}
	healthy, err := Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := Clone(base)
	faulty.Faults = []FaultEvent{
		{Time: 0, Version: 0, Action: ActionCompromise, Kind: "weight-value"},
		{Time: 0, Version: 1, Action: ActionCompromise, Kind: "bit-flip"},
	}
	broken, err := Evaluate(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Collided {
		t.Fatalf("fault-free ensemble collided: %+v", healthy)
	}
	if broken.Margin >= healthy.Margin {
		t.Fatalf("compromising 2/3 versions did not shrink the margin: %v -> %v",
			healthy.Margin, broken.Margin)
	}
	// Restoring both versions immediately must behave like no fault at all.
	restored := Clone(faulty)
	restored.Faults = append(restored.Faults,
		FaultEvent{Time: 0.01, Version: 0, Action: ActionRestore},
		FaultEvent{Time: 0.01, Version: 1, Action: ActionRestore})
	fixed, err := Evaluate(restored)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Collided {
		t.Fatalf("rejuvenated ensemble still collided: %+v", fixed)
	}
}
