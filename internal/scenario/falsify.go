package scenario

import (
	"fmt"
	"math"

	"mvml/internal/parallel"
	"mvml/internal/xrand"
)

// Space bounds the sampled scenario space — tighter than the DSL's hard
// validation caps so the search spends its budget in the interesting region.
type Space struct {
	// Routes are the candidate route numbers.
	Routes []int
	// MaxNPCs / MaxOcclusions / MaxFaults cap the sampled schedule sizes.
	MaxNPCs       int
	MaxOcclusions int
	MaxFaults     int
	// MaxFrames and DT are fixed per search so every evaluation has the
	// same simulation budget.
	MaxFrames int
	DT        float64
}

// DefaultSpace is the search space of the checked-in corpus and the CI
// smoke: all eight routes, up to three vehicles, two occlusion boxes and
// four fault events, 45 simulated seconds per run.
func DefaultSpace() Space {
	return Space{
		Routes:        []int{1, 2, 3, 4, 5, 6, 7, 8},
		MaxNPCs:       3,
		MaxOcclusions: 2,
		MaxFaults:     4,
		MaxFrames:     900,
		DT:            0.05,
	}
}

func (sp Space) validate() error {
	if len(sp.Routes) == 0 {
		return fmt.Errorf("scenario: search space has no routes")
	}
	if sp.MaxNPCs < 0 || sp.MaxNPCs > MaxNPCs ||
		sp.MaxOcclusions < 0 || sp.MaxOcclusions > MaxOcclusions ||
		sp.MaxFaults < 0 || sp.MaxFaults > MaxFaults {
		return fmt.Errorf("scenario: search space caps outside DSL bounds")
	}
	if sp.MaxFrames < 1 || sp.MaxFrames > MaxFrameCap {
		return fmt.Errorf("scenario: search space max_frames %d outside 1..%d", sp.MaxFrames, MaxFrameCap)
	}
	if !(sp.DT > 0 && sp.DT <= 0.5) {
		return fmt.Errorf("scenario: search space dt %v outside (0, 0.5]", sp.DT)
	}
	return nil
}

// Config parameterises one falsification search.
type Config struct {
	// Space is the sampled region; the zero value means DefaultSpace.
	Space Space
	// Chains is the number of independent hill-climbing chains. Each chain
	// is one parallel.Run replication on its own root.Split("chain", i)
	// substream, so a search with fewer chains produces exactly a prefix
	// of a larger search's chains — the property the CI rediscovery smoke
	// relies on.
	Chains int
	// Steps is the evaluation budget per chain.
	Steps int
	// Workers bounds concurrency; it never changes the result set.
	Workers int
	// Seed is the search's root seed.
	Seed uint64
	// Minimize shrinks each found violation to a locally-minimal scenario
	// before reporting it.
	Minimize bool
}

// acceptWorseProb is the hill-climber's escape hatch: the probability of
// accepting a candidate with a worse margin, so a chain cannot pin itself to
// a local plateau for its whole budget.
const acceptWorseProb = 0.1

// Counterexample is one violating scenario found by the search.
type Counterexample struct {
	Scenario Scenario `json:"scenario"`
	Metrics  Metrics  `json:"metrics"`
	// Chain and Step locate the discovery within the search, for
	// reproducing a single find without the full budget.
	Chain int `json:"chain"`
	Step  int `json:"step"`
}

// TTCBucket is one bin of the explored-scenario MinTTC distribution.
type TTCBucket struct {
	// Lo and Hi bound the bin, [Lo, Hi); the last bin is closed at TTCCap.
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
}

// ttcEdges are the histogram bin edges (seconds).
var ttcEdges = []float64{0, 0.5, 1, 2, 5, 10, 30, 60}

// Report summarises a search.
type Report struct {
	// Explored counts scenario evaluations across all chains (excluding
	// minimization shrink attempts).
	Explored int `json:"explored"`
	// Violations counts raw violating evaluations before deduplication.
	Violations int `json:"violations"`
	// TTCHistogram is the MinTTC distribution over explored scenarios.
	TTCHistogram []TTCBucket `json:"ttc_histogram"`
	// Counterexamples are the deduplicated (by canonical scenario bytes)
	// violations in chain-then-step order, minimized when cfg.Minimize.
	Counterexamples []Counterexample `json:"counterexamples"`
}

// chainResult is one chain's contribution, collected in replication order.
type chainResult struct {
	explored int
	ttcs     []float64
	ces      []Counterexample
}

// Search runs the falsifier: Chains independent hill-climbing chains, each
// sampling a scenario, evaluating it, and proposing mutations, accepting
// those that shrink the safety margin (or, rarely, any — see
// acceptWorseProb); every violation is recorded (and optionally minimized)
// and the chain restarts from a fresh sample. The report is deterministic in
// (Space, Chains, Steps, Seed): the worker count changes wall-clock time
// only.
func Search(cfg Config) (*Report, error) {
	if cfg.Space.Routes == nil {
		cfg.Space = DefaultSpace()
	}
	if err := cfg.Space.validate(); err != nil {
		return nil, err
	}
	if cfg.Chains < 1 || cfg.Steps < 1 {
		return nil, fmt.Errorf("scenario: need at least 1 chain and 1 step, got %d/%d", cfg.Chains, cfg.Steps)
	}
	root := xrand.New(cfg.Seed)
	results, err := parallel.Run(root, "chain", cfg.Chains,
		parallel.Options{Workers: cfg.Workers},
		func(rep int, rng *xrand.Rand) (chainResult, error) {
			return runChain(cfg, rep, rng)
		})
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	for _, e := range ttcEdges[:len(ttcEdges)-1] {
		rep.TTCHistogram = append(rep.TTCHistogram, TTCBucket{Lo: e})
	}
	for i := range rep.TTCHistogram {
		rep.TTCHistogram[i].Hi = ttcEdges[i+1]
	}
	seen := map[string]bool{}
	for _, cr := range results {
		rep.Explored += cr.explored
		for _, ttc := range cr.ttcs {
			for i := len(rep.TTCHistogram) - 1; i >= 0; i-- {
				if ttc >= rep.TTCHistogram[i].Lo {
					rep.TTCHistogram[i].Count++
					break
				}
			}
		}
		rep.Violations += len(cr.ces)
		for _, ce := range cr.ces {
			fp := Fingerprint(ce.Scenario)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			rep.Counterexamples = append(rep.Counterexamples, ce)
		}
	}
	return rep, nil
}

// runChain is one chain's sequential mutate-and-accept loop. Everything
// stochastic comes from the chain's own rng, so the chain's trajectory is a
// pure function of (search seed, chain index).
func runChain(cfg Config, chain int, rng *xrand.Rand) (chainResult, error) {
	var (
		cr   chainResult
		cur  Scenario
		curM Metrics
		have bool
	)
	for step := 0; step < cfg.Steps; step++ {
		var cand Scenario
		if have {
			cand = Mutate(cfg.Space, cur, rng)
		} else {
			cand = Sample(cfg.Space, rng)
		}
		m, err := Evaluate(cand)
		if err != nil {
			// Sample/Mutate only emit valid scenarios; an error here is a
			// bug worth surfacing, not skipping.
			return chainResult{}, fmt.Errorf("scenario: chain %d step %d: %w", chain, step, err)
		}
		cr.explored++
		cr.ttcs = append(cr.ttcs, m.MinTTC)
		if m.Violation {
			ce := Counterexample{Scenario: cand, Metrics: m, Chain: chain, Step: step}
			if cfg.Minimize {
				ce.Scenario, ce.Metrics = Minimize(cand, m)
			}
			cr.ces = append(cr.ces, ce)
			have = false // restart from a fresh sample
			continue
		}
		if !have || m.Margin < curM.Margin || rng.Float64() < acceptWorseProb {
			cur, curM, have = cand, m, true
		}
	}
	return cr, nil
}

// round3 snaps a sampled float to a 1e-3 grid: canonical JSON stays short
// and shrink steps land on exactly representable values.
func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sample draws a uniform-ish random scenario from the space. The result is
// always valid: `go vet`-grade guarantees live in the Validate call inside
// MustEncode, and FuzzScenarioRun leans on this postcondition.
func Sample(sp Space, rng *xrand.Rand) Scenario {
	s := Scenario{
		Version:   DSLVersion,
		Route:     sp.Routes[rng.Intn(len(sp.Routes))],
		Seed:      uint64(rng.Intn(1_000_000)),
		DT:        sp.DT,
		MaxFrames: sp.MaxFrames,
		Cruise:    round3(rng.Uniform(8, 20)),
		NPCs:      []NPCSpec{},
	}
	for i, n := 0, rng.Intn(sp.MaxNPCs+1); i < n; i++ {
		s.NPCs = append(s.NPCs, sampleNPC(rng))
	}
	for i, n := 0, rng.Intn(sp.MaxOcclusions+1); i < n; i++ {
		s.Occlusions = append(s.Occlusions, sampleOcclusion(rng))
	}
	s.Perception = PerceptionSpec{
		Versions:    1 + rng.Intn(3),
		Seed:        uint64(rng.Intn(1_000_000)),
		Photometric: round3(rng.Uniform(0, 1)),
		MissScale:   round3(rng.Uniform(0.5, 3)),
		NoiseScale:  round3(rng.Uniform(0.5, 3)),
		Ghost:       round3(rng.Uniform(0, 0.8)),
		CommonMode:  round3(rng.Uniform(0, 1)),
		MatchRadius: round3(rng.Uniform(1, 3)),
	}
	t := 0.0
	for i, n := 0, rng.Intn(sp.MaxFaults+1); i < n; i++ {
		t = round3(t + rng.Uniform(0.5, 12))
		s.Faults = append(s.Faults, sampleFault(rng, t, s.Perception.Versions))
	}
	return s
}

func sampleNPC(rng *xrand.Rand) NPCSpec {
	n := NPCSpec{
		StartFrac: round3(rng.Uniform(0.05, 0.9)),
		Radius:    round3(rng.Uniform(0.8, 2.2)),
	}
	until := 0.0
	for i, k := 0, 1+rng.Intn(3); i < k; i++ {
		until = round3(until + rng.Uniform(2, 15))
		n.Phases = append(n.Phases, PhaseSpec{Until: until, Speed: round3(rng.Uniform(0, 12))})
	}
	return n
}

func sampleOcclusion(rng *xrand.Rand) OcclusionSpec {
	s0 := round3(rng.Uniform(0, 0.8))
	s1 := round3(math.Min(1, s0+rng.Uniform(0.05, 0.3)))
	t0 := round3(rng.Uniform(0, 20))
	return OcclusionSpec{
		S0: s0, S1: s1,
		HalfWidth: round3(rng.Uniform(1, 6)),
		T0:        t0,
		T1:        round3(t0 + rng.Uniform(2, 20)),
	}
}

func sampleFault(rng *xrand.Rand, t float64, versions int) FaultEvent {
	f := FaultEvent{Time: t, Version: rng.Intn(versions), Action: ActionCompromise}
	if rng.Float64() < 0.25 {
		f.Action = ActionRestore
	}
	kinds := []string{"", "weight-value", "bit-flip", "stuck-at-zero"}
	f.Kind = kinds[rng.Intn(len(kinds))]
	return f
}

// Clone deep-copies a scenario so mutation never aliases the original's
// schedule slices.
func Clone(s Scenario) Scenario {
	c := s
	c.NPCs = make([]NPCSpec, len(s.NPCs))
	for i, n := range s.NPCs {
		c.NPCs[i] = n
		c.NPCs[i].Phases = append([]PhaseSpec(nil), n.Phases...)
	}
	c.Occlusions = append([]OcclusionSpec(nil), s.Occlusions...)
	if s.Faults != nil {
		c.Faults = append([]FaultEvent(nil), s.Faults...)
	}
	return c
}

// Mutate returns a neighbour of the scenario: one randomly chosen local
// change, with the cruise-speed tweak as the universal fallback when the
// drawn mutation does not apply (e.g. "remove an NPC" with none present).
// Like Sample, it only emits valid scenarios.
func Mutate(sp Space, s Scenario, rng *xrand.Rand) Scenario {
	c := Clone(s)
	switch rng.Intn(12) {
	case 0: // re-roll route
		c.Route = sp.Routes[rng.Intn(len(sp.Routes))]
		return c
	case 1: // re-roll the nuisance seeds
		c.Seed = uint64(rng.Intn(1_000_000))
		c.Perception.Seed = uint64(rng.Intn(1_000_000))
		return c
	case 2: // nudge an NPC spawn point
		if len(c.NPCs) > 0 {
			i := rng.Intn(len(c.NPCs))
			c.NPCs[i].StartFrac = round3(clamp(c.NPCs[i].StartFrac+rng.Uniform(-0.1, 0.1), 0, 1))
			return c
		}
	case 3: // nudge an NPC phase speed
		if len(c.NPCs) > 0 {
			i := rng.Intn(len(c.NPCs))
			j := rng.Intn(len(c.NPCs[i].Phases))
			c.NPCs[i].Phases[j].Speed = round3(clamp(c.NPCs[i].Phases[j].Speed+rng.Uniform(-3, 3), 0, 15))
			return c
		}
	case 4: // add a vehicle
		if len(c.NPCs) < sp.MaxNPCs {
			c.NPCs = append(c.NPCs, sampleNPC(rng))
			return c
		}
	case 5: // remove a vehicle
		if len(c.NPCs) > 0 {
			i := rng.Intn(len(c.NPCs))
			c.NPCs = append(c.NPCs[:i], c.NPCs[i+1:]...)
			return c
		}
	case 6: // photometric weather
		c.Perception.Photometric = round3(clamp(c.Perception.Photometric+rng.Uniform(-0.25, 0.25), 0, 1))
		return c
	case 7: // error-model scales
		c.Perception.MissScale = round3(clamp(c.Perception.MissScale+rng.Uniform(-0.5, 0.5), 0.5, 3))
		c.Perception.NoiseScale = round3(clamp(c.Perception.NoiseScale+rng.Uniform(-0.5, 0.5), 0.5, 3))
		return c
	case 8: // correlated-failure dials
		c.Perception.Ghost = round3(clamp(c.Perception.Ghost+rng.Uniform(-0.2, 0.2), 0, 1))
		c.Perception.CommonMode = round3(clamp(c.Perception.CommonMode+rng.Uniform(-0.25, 0.25), 0, 1))
		return c
	case 9: // ensemble shape
		c.Perception.Versions = 1 + rng.Intn(3)
		c.Faults = retargetFaults(c.Faults, c.Perception.Versions)
		return c
	case 10: // add a fault event
		if len(c.Faults) < sp.MaxFaults {
			last := 0.0
			if len(c.Faults) > 0 {
				last = c.Faults[len(c.Faults)-1].Time
			}
			c.Faults = append(c.Faults, sampleFault(rng,
				round3(last+rng.Uniform(0.5, 12)), c.Perception.Versions))
			return c
		}
	case 11: // drop a fault event
		if len(c.Faults) > 0 {
			i := rng.Intn(len(c.Faults))
			c.Faults = append(c.Faults[:i], c.Faults[i+1:]...)
			return c
		}
	}
	// Fallback: the always-applicable cruise tweak.
	c.Cruise = round3(clamp(c.Cruise+rng.Uniform(-3, 3), 4, 25))
	return c
}

// retargetFaults clamps fault targets into a shrunk ensemble.
func retargetFaults(fs []FaultEvent, versions int) []FaultEvent {
	for i := range fs {
		if fs[i].Version >= versions {
			fs[i].Version = versions - 1
		}
	}
	return fs
}
