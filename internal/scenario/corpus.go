package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusDir is the repository-relative location of the counterexample
// corpus, replayed by TestCorpusReplay on every `go test ./...`.
const CorpusDir = "testdata/corpus"

// Entry is one corpus record: a minimized violating scenario plus the exact
// metrics its evaluation must reproduce.
type Entry struct {
	Scenario Scenario `json:"scenario"`
	Metrics  Metrics  `json:"metrics"`
	// Note optionally records provenance (search seed, date, what broke).
	Note string `json:"note,omitempty"`
}

// Fingerprint identifies a scenario by the first 12 hex digits of the
// SHA-256 of its canonical bytes. Corpus filenames embed it, and search
// deduplication keys on it, so "the same counterexample" means "the same
// canonical scenario", nothing fuzzier.
func Fingerprint(s Scenario) string {
	sum := sha256.Sum256(s.MustEncode())
	return hex.EncodeToString(sum[:6])
}

// EncodeEntry renders the canonical corpus file form.
func EncodeEntry(e Entry) ([]byte, error) {
	if err := e.Scenario.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeEntry parses a corpus file strictly (unknown fields rejected) and
// validates the embedded scenario.
func DecodeEntry(data []byte) (Entry, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var e Entry
	if err := dec.Decode(&e); err != nil {
		return Entry{}, fmt.Errorf("scenario: corpus entry: %w", err)
	}
	if dec.More() {
		return Entry{}, fmt.Errorf("scenario: corpus entry: trailing data after document")
	}
	if err := e.Scenario.Validate(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// entryFilename is the canonical corpus filename for a scenario.
func entryFilename(s Scenario) string {
	return "ce-" + Fingerprint(s) + ".json"
}

// LoadCorpus reads every *.json under dir in filename order. A missing
// directory is an empty corpus, not an error, so fresh checkouts and tools
// pointed at a new directory behave.
func LoadCorpus(dir string) ([]Entry, []string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(names)
	entries := make([]Entry, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, err
		}
		e, err := DecodeEntry(data)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", filepath.Base(name), err)
		}
		entries = append(entries, e)
	}
	return entries, names, nil
}

// WriteEntry stores an entry under its canonical filename, creating the
// directory as needed, and returns the path. Writing an entry whose scenario
// is already present overwrites it (the fingerprint guarantees the scenario
// half is identical; the metrics/note may be refreshed).
func WriteEntry(dir string, e Entry) (string, error) {
	data, err := EncodeEntry(e)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, entryFilename(e.Scenario))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// CorpusFingerprints returns the set of scenario fingerprints present in a
// loaded corpus, for rediscovery checks (the CI smoke asserts a short search
// still finds at least one known corpus member).
func CorpusFingerprints(entries []Entry) map[string]bool {
	fps := make(map[string]bool, len(entries))
	for _, e := range entries {
		fps[Fingerprint(e.Scenario)] = true
	}
	return fps
}

// DescribeMetrics is the one-line human summary used by tooling output.
func DescribeMetrics(m Metrics) string {
	var b strings.Builder
	if m.Collided {
		fmt.Fprintf(&b, "collision@frame%d", m.FirstCollisionFrame)
	} else {
		fmt.Fprintf(&b, "ttc=%.3gs", m.MinTTC)
	}
	fmt.Fprintf(&b, " margin=%.3g frames=%d", m.Margin, m.TotalFrames)
	if m.MissedObstacleFrames > 0 {
		fmt.Fprintf(&b, " missed=%d", m.MissedObstacleFrames)
	}
	if m.SkippedFrames > 0 {
		fmt.Fprintf(&b, " skips=%d", m.SkippedFrames)
	}
	return b.String()
}
