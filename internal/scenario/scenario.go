// Package scenario is the adversarial scenario-search subsystem: a compact,
// versioned, deterministic DSL over everything that makes a driving run hard
// — traffic density and behaviour, occlusion boxes, sensor-noise and
// photometric-shift knobs, fault-injection schedules, route selection — plus
// a falsifier that drives thousands of sampled scenarios through the
// deterministic parallel runner, scores each by safety margin, hill-climbs
// toward violations, shrinks what it finds to locally-minimal
// counterexamples, and banks them in a corpus replayed by `go test` forever
// after. The paper's Tables VI–VIII replay eight fixed routes; this package
// *searches* the scenario space instead (the VerifAI programme), and turns
// every failure it finds into a permanent regression test.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"mvml/internal/drivesim"
	"mvml/internal/faultinject"
)

// DSLVersion is the current scenario-encoding version. Decode rejects files
// from a different major version so corpus entries can never be silently
// reinterpreted.
const DSLVersion = 1

// Hard bounds of the scenario space. Validation enforces them, the sampler
// stays inside them, and the fuzzers confirm every in-bounds scenario runs.
const (
	MaxNPCs       = 6
	MaxPhases     = 6
	MaxOcclusions = 4
	MaxFaults     = 8
	MaxFrameCap   = 5000
	MaxCruise     = 40.0  // m/s
	MaxNPCSpeed   = 30.0  // m/s
	MaxEventTime  = 300.0 // s
)

// Scenario is one falsifiable driving situation. All fields are plain data
// with deterministic canonical JSON; Evaluate turns a scenario into metrics
// reproducibly, bit-for-bit, at any worker count.
type Scenario struct {
	// Version is the DSL version (DSLVersion).
	Version int `json:"version"`
	// Name is an optional human label; it does not affect execution.
	Name string `json:"name,omitempty"`
	// Route selects the town route, 1..drivesim.NumRoutes.
	Route int `json:"route"`
	// Seed drives the simulation's nuisance randomness (cost jitter) and
	// the multi-version system stream.
	Seed uint64 `json:"seed"`
	// DT is the frame period in seconds; 0 means the drivesim default.
	DT float64 `json:"dt,omitempty"`
	// MaxFrames bounds the run (0 = drivesim's route-derived default).
	MaxFrames int `json:"max_frames,omitempty"`
	// Cruise is the ego's desired speed in m/s (0 = drivesim default).
	Cruise float64 `json:"cruise,omitempty"`
	// NPCs is the traffic schedule. Always non-nil in a valid scenario;
	// an empty list is an open road.
	NPCs []NPCSpec `json:"npcs"`
	// Occlusions hide ground-truth objects from the sensors inside
	// route-relative boxes during time windows.
	Occlusions []OcclusionSpec `json:"occlusions,omitempty"`
	// Perception configures the multi-version detection ensemble.
	Perception PerceptionSpec `json:"perception"`
	// Faults is the compromise/restore schedule applied to ensemble
	// versions at simulated times.
	Faults []FaultEvent `json:"faults,omitempty"`
}

// NPCSpec is one scripted traffic vehicle.
type NPCSpec struct {
	// StartFrac spawns the vehicle at this fraction of the route length,
	// in [0, 1].
	StartFrac float64 `json:"start_frac"`
	// Radius is the collision radius in metres (0 = drivesim default).
	Radius float64 `json:"radius,omitempty"`
	// Phases is the piecewise speed profile (1..MaxPhases entries,
	// strictly increasing end times).
	Phases []PhaseSpec `json:"phases"`
}

// PhaseSpec mirrors drivesim.SpeedPhase in the DSL.
type PhaseSpec struct {
	// Until is the phase end time in seconds.
	Until float64 `json:"until"`
	// Speed is the target speed in m/s.
	Speed float64 `json:"speed"`
}

// OcclusionSpec hides objects from the sensor channel: any ground-truth
// object whose route projection falls in [S0, S1] (fractions of the route
// length) within HalfWidth metres of the route, during [T0, T1) seconds, is
// removed from the scene handed to perception. Ground truth — and therefore
// the safety scoring — still sees it: an occluded hazard is exactly the
// "hard tail" case a perception monitor must survive.
type OcclusionSpec struct {
	S0        float64 `json:"s0"`
	S1        float64 `json:"s1"`
	HalfWidth float64 `json:"half_width"`
	T0        float64 `json:"t0"`
	T1        float64 `json:"t1"`
}

// PerceptionSpec configures the detection ensemble. All knobs are explicit
// (no omitted-means-default ambiguity) so canonical encodings are stable.
type PerceptionSpec struct {
	// Versions is the ensemble size, 1..3.
	Versions int `json:"versions"`
	// Seed drives the shared detector randomness (the common-mode draws).
	Seed uint64 `json:"seed"`
	// Photometric in [0, 1] applies DetectorParams.WithPhotometricShift —
	// the weather knob.
	Photometric float64 `json:"photometric"`
	// MissScale in [0.25, 4] multiplies the compromised miss
	// probabilities (clamped to 0.98).
	MissScale float64 `json:"miss_scale"`
	// NoiseScale in [0.25, 4] multiplies every localisation sigma.
	NoiseScale float64 `json:"noise_scale"`
	// Ghost in [0, 1] is the compromised phantom-detection probability.
	Ghost float64 `json:"ghost"`
	// CommonMode in [0, 1] sets both common-mode fractions — the
	// correlated-failure dial that defeats majority voting.
	CommonMode float64 `json:"common_mode"`
	// MatchRadius in [0.5, 4] is the voter association distance in
	// metres.
	MatchRadius float64 `json:"match_radius"`
}

// Fault actions.
const (
	ActionCompromise = "compromise"
	ActionRestore    = "restore"
)

// FaultEvent compromises or restores one ensemble version at a simulated
// time. Kind optionally names the faultinject fault model (a Kind.String
// label) that an NN-backed pipeline would inject; the error-model pipeline
// treats every kind as behavioural compromise.
type FaultEvent struct {
	Time    float64 `json:"time"`
	Version int     `json:"version"`
	Action  string  `json:"action"`
	Kind    string  `json:"kind,omitempty"`
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate reports whether the scenario is inside the DSL's space. Every
// valid scenario is runnable: Evaluate on a validated scenario cannot fail.
func (s Scenario) Validate() error {
	if s.Version != DSLVersion {
		return fmt.Errorf("scenario: DSL version %d, this build speaks %d", s.Version, DSLVersion)
	}
	if s.Route < 1 || s.Route > drivesim.NumRoutes {
		return fmt.Errorf("scenario: route %d outside 1..%d", s.Route, drivesim.NumRoutes)
	}
	if s.DT != 0 && !(finite(s.DT) && s.DT > 0 && s.DT <= 0.5) {
		return fmt.Errorf("scenario: dt %v outside (0, 0.5]", s.DT)
	}
	if s.MaxFrames < 0 || s.MaxFrames > MaxFrameCap {
		return fmt.Errorf("scenario: max_frames %d outside 0..%d", s.MaxFrames, MaxFrameCap)
	}
	if s.Cruise != 0 && !(finite(s.Cruise) && s.Cruise > 0 && s.Cruise <= MaxCruise) {
		return fmt.Errorf("scenario: cruise %v outside (0, %v]", s.Cruise, MaxCruise)
	}
	if s.NPCs == nil {
		return fmt.Errorf("scenario: npcs must be present (an empty list is an open road)")
	}
	if len(s.NPCs) > MaxNPCs {
		return fmt.Errorf("scenario: %d NPCs above cap %d", len(s.NPCs), MaxNPCs)
	}
	for i, n := range s.NPCs {
		if err := n.validate(); err != nil {
			return fmt.Errorf("scenario: npc %d: %w", i, err)
		}
	}
	if len(s.Occlusions) > MaxOcclusions {
		return fmt.Errorf("scenario: %d occlusions above cap %d", len(s.Occlusions), MaxOcclusions)
	}
	for i, o := range s.Occlusions {
		if err := o.validate(); err != nil {
			return fmt.Errorf("scenario: occlusion %d: %w", i, err)
		}
	}
	if err := s.Perception.validate(); err != nil {
		return fmt.Errorf("scenario: perception: %w", err)
	}
	if len(s.Faults) > MaxFaults {
		return fmt.Errorf("scenario: %d fault events above cap %d", len(s.Faults), MaxFaults)
	}
	prev := math.Inf(-1)
	for i, f := range s.Faults {
		if !finite(f.Time) || f.Time < 0 || f.Time > MaxEventTime {
			return fmt.Errorf("scenario: fault %d time %v outside [0, %v]", i, f.Time, MaxEventTime)
		}
		if f.Time < prev {
			return fmt.Errorf("scenario: fault %d time %v before predecessor %v (schedule must be sorted)", i, f.Time, prev)
		}
		prev = f.Time
		if f.Version < 0 || f.Version >= s.Perception.Versions {
			return fmt.Errorf("scenario: fault %d targets version %d outside 0..%d",
				i, f.Version, s.Perception.Versions-1)
		}
		if f.Action != ActionCompromise && f.Action != ActionRestore {
			return fmt.Errorf("scenario: fault %d has unknown action %q", i, f.Action)
		}
		if f.Kind != "" {
			if _, err := faultinject.ParseKind(f.Kind); err != nil {
				return fmt.Errorf("scenario: fault %d: %w", i, err)
			}
		}
	}
	return nil
}

func (n NPCSpec) validate() error {
	if !finite(n.StartFrac) || n.StartFrac < 0 || n.StartFrac > 1 {
		return fmt.Errorf("start_frac %v outside [0, 1]", n.StartFrac)
	}
	if n.Radius != 0 && !(finite(n.Radius) && n.Radius >= 0.5 && n.Radius <= 3) {
		return fmt.Errorf("radius %v outside [0.5, 3]", n.Radius)
	}
	if len(n.Phases) == 0 || len(n.Phases) > MaxPhases {
		return fmt.Errorf("%d phases outside 1..%d", len(n.Phases), MaxPhases)
	}
	prev := 0.0
	for i, ph := range n.Phases {
		if !finite(ph.Until) || ph.Until <= prev || ph.Until > MaxEventTime {
			return fmt.Errorf("phase %d until %v not strictly increasing within (0, %v]", i, ph.Until, MaxEventTime)
		}
		prev = ph.Until
		if !finite(ph.Speed) || ph.Speed < 0 || ph.Speed > MaxNPCSpeed {
			return fmt.Errorf("phase %d speed %v outside [0, %v]", i, ph.Speed, MaxNPCSpeed)
		}
	}
	return nil
}

func (o OcclusionSpec) validate() error {
	if !finite(o.S0) || !finite(o.S1) || o.S0 < 0 || o.S1 > 1 || o.S0 >= o.S1 {
		return fmt.Errorf("arc window [%v, %v] not inside [0, 1]", o.S0, o.S1)
	}
	if !finite(o.HalfWidth) || o.HalfWidth < 0.5 || o.HalfWidth > 10 {
		return fmt.Errorf("half_width %v outside [0.5, 10]", o.HalfWidth)
	}
	if !finite(o.T0) || !finite(o.T1) || o.T0 < 0 || o.T1 > MaxEventTime || o.T0 >= o.T1 {
		return fmt.Errorf("time window [%v, %v) not inside [0, %v]", o.T0, o.T1, MaxEventTime)
	}
	return nil
}

func (p PerceptionSpec) validate() error {
	if p.Versions < 1 || p.Versions > 3 {
		return fmt.Errorf("versions %d outside 1..3", p.Versions)
	}
	check := func(name string, v, lo, hi float64) error {
		if !finite(v) || v < lo || v > hi {
			return fmt.Errorf("%s %v outside [%v, %v]", name, v, lo, hi)
		}
		return nil
	}
	for _, c := range []error{
		check("photometric", p.Photometric, 0, 1),
		check("miss_scale", p.MissScale, 0.25, 4),
		check("noise_scale", p.NoiseScale, 0.25, 4),
		check("ghost", p.Ghost, 0, 1),
		check("common_mode", p.CommonMode, 0, 1),
		check("match_radius", p.MatchRadius, 0.5, 4),
	} {
		if c != nil {
			return c
		}
	}
	return nil
}

// Encode renders the canonical byte form: two-space-indented JSON with a
// trailing newline and struct-ordered keys. Encode∘Decode is the identity on
// canonical bytes — the round-trip property the fuzzer enforces — and the
// corpus stores exactly these bytes, so `git diff` on a counterexample is
// always a semantic diff.
func (s Scenario) Encode() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// MustEncode is Encode for scenarios already known valid (sampler/mutator
// output); it panics on the programming error of an invalid scenario.
func (s Scenario) MustEncode() []byte {
	data, err := s.Encode()
	if err != nil {
		panic(err)
	}
	return data
}

// Decode parses and validates a scenario. Unknown fields are rejected — a
// corpus file written by a future DSL version fails loudly here instead of
// being silently reinterpreted.
func Decode(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decode: %w", err)
	}
	// Trailing garbage after the document is a corrupt file, not a scenario.
	if dec.More() {
		return Scenario{}, fmt.Errorf("scenario: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
