package scenario

// Minimize shrinks a violating scenario to a local minimum: it greedily
// applies structure-removing and knob-resetting reductions, keeping each
// only if the reduced scenario still violates, until no reduction applies.
// The process is fully deterministic (no randomness, fixed reduction order),
// so the minimized form of a counterexample is a pure function of the
// original — which is what keeps the search's output, and therefore the
// checked-in corpus, reproducible.
//
// A minimal counterexample is the point of the corpus: when a future change
// breaks the replay test, the diff against a scenario with one vehicle, no
// spare occlusions and benign knobs names the causal ingredient directly.
func Minimize(s Scenario, m Metrics) (Scenario, Metrics) {
	if !m.Violation {
		return s, m
	}
	for {
		reduced := false
		for _, cand := range reductions(s, m) {
			cm, err := Evaluate(cand)
			if err != nil || !cm.Violation {
				continue
			}
			s, m = cand, cm
			reduced = true
			break // restart the reduction sweep from the smaller scenario
		}
		if !reduced {
			return s, m
		}
	}
}

// reductions enumerates the candidate shrink steps for one sweep, most
// aggressive first. Every candidate is valid by construction.
func reductions(s Scenario, m Metrics) []Scenario {
	var out []Scenario
	add := func(c Scenario) { out = append(out, c) }

	// Trim the run right after the first collision: shorter replays, and
	// post-impact frames cannot be what makes the scenario a violation.
	if m.Collided && m.FirstCollisionFrame >= 0 {
		trimmed := m.FirstCollisionFrame + 20
		if trimmed >= 1 && (s.MaxFrames == 0 || trimmed < s.MaxFrames) {
			c := Clone(s)
			c.MaxFrames = trimmed
			add(c)
		}
	}
	for i := range s.NPCs {
		c := Clone(s)
		c.NPCs = append(c.NPCs[:i], c.NPCs[i+1:]...)
		add(c)
	}
	for i := range s.Occlusions {
		c := Clone(s)
		c.Occlusions = append(c.Occlusions[:i], c.Occlusions[i+1:]...)
		add(c)
	}
	for i := range s.Faults {
		c := Clone(s)
		c.Faults = append(c.Faults[:i], c.Faults[i+1:]...)
		add(c)
	}
	for i := range s.NPCs {
		if len(s.NPCs[i].Phases) > 1 {
			c := Clone(s)
			c.NPCs[i].Phases = c.NPCs[i].Phases[:len(c.NPCs[i].Phases)-1]
			add(c)
		}
	}
	// Reset environment knobs to benign values, one at a time, so the
	// surviving non-benign knobs are exactly the causal ones.
	knobs := []func(*Scenario) bool{
		func(c *Scenario) bool {
			if c.Perception.Photometric == 0 {
				return false
			}
			c.Perception.Photometric = 0
			return true
		},
		func(c *Scenario) bool {
			if c.Perception.MissScale == 1 {
				return false
			}
			c.Perception.MissScale = 1
			return true
		},
		func(c *Scenario) bool {
			if c.Perception.NoiseScale == 1 {
				return false
			}
			c.Perception.NoiseScale = 1
			return true
		},
		func(c *Scenario) bool {
			if c.Perception.Ghost == 0 {
				return false
			}
			c.Perception.Ghost = 0
			return true
		},
		func(c *Scenario) bool {
			if c.Perception.CommonMode == 0 {
				return false
			}
			c.Perception.CommonMode = 0
			return true
		},
	}
	for _, k := range knobs {
		c := Clone(s)
		if k(&c) {
			add(c)
		}
	}
	if s.Name != "" {
		c := Clone(s)
		c.Name = ""
		add(c)
	}
	return out
}
