package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mvml/internal/xrand"
)

// FuzzScenarioRoundTrip: any byte string that decodes into a scenario must
// re-encode canonically — encode∘decode∘encode is byte-identical — so there
// is exactly one on-disk form per scenario and corpus diffs are always
// semantic.
func FuzzScenarioRoundTrip(f *testing.F) {
	sp := DefaultSpace()
	for seed := uint64(0); seed < 5; seed++ {
		f.Add(Sample(sp, xrand.New(seed)).MustEncode())
	}
	f.Add(sampleScenarioForFuzz().MustEncode())
	if names, err := filepath.Glob(filepath.Join(CorpusDir, "*.json")); err == nil {
		for _, name := range names {
			if data, err := os.ReadFile(name); err == nil {
				f.Add(data)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // invalid inputs only need to be rejected cleanly
		}
		b1, err := s.Encode()
		if err != nil {
			t.Fatalf("decoded scenario failed to encode: %v", err)
		}
		s2, err := Decode(b1)
		if err != nil {
			t.Fatalf("canonical bytes failed to decode: %v\n%s", err, b1)
		}
		b2, err := s2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonical encoding not a fixpoint:\n%s\nvs\n%s", b1, b2)
		}
	})
}

// sampleScenarioForFuzz is a hand-built every-feature scenario seed.
func sampleScenarioForFuzz() Scenario {
	return Scenario{
		Version: DSLVersion, Name: "fuzz-seed", Route: 5, Seed: 1,
		DT: 0.1, MaxFrames: 50, Cruise: 10,
		NPCs:       []NPCSpec{{StartFrac: 0.5, Radius: 1, Phases: []PhaseSpec{{Until: 3, Speed: 2}}}},
		Occlusions: []OcclusionSpec{{S0: 0.2, S1: 0.3, HalfWidth: 2, T0: 1, T1: 2}},
		Perception: PerceptionSpec{
			Versions: 2, Seed: 2, Photometric: 0.1, MissScale: 1,
			NoiseScale: 1, Ghost: 0.1, CommonMode: 0.5, MatchRadius: 2,
		},
		Faults: []FaultEvent{{Time: 1, Version: 1, Action: ActionCompromise, Kind: "stuck-at-zero"}},
	}
}

// FuzzScenarioRun: every sampled scenario — the falsifier's entire input
// space — evaluates without error or panic, within its frame bound. The
// frame budget is clamped small so the fuzzer spends its time on coverage,
// not on long simulations.
func FuzzScenarioRun(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sp := DefaultSpace()
		sp.MaxFrames = 120
		s := Sample(sp, xrand.New(seed))
		if err := s.Validate(); err != nil {
			t.Fatalf("sampler produced an invalid scenario: %v\n%s", err, s.MustEncode())
		}
		m, err := Evaluate(s)
		if err != nil {
			t.Fatalf("valid scenario failed to run: %v\n%s", err, s.MustEncode())
		}
		if m.TotalFrames < 1 || m.TotalFrames > sp.MaxFrames {
			t.Fatalf("run length %d outside 1..%d", m.TotalFrames, sp.MaxFrames)
		}
	})
}
