package scenario

import "mvml/internal/drivesim"

// TTCViolation is the minimum time-to-collision (s) below which a run counts
// as a safety violation even without contact: under the simulator's braking
// model an approach this tight leaves no recovery margin.
const TTCViolation = 0.75

// Safety-margin weights. The margin is the falsifier's objective — lower is
// worse — so the weights encode which near-miss structure the hill-climber
// is pulled toward: undetected in-corridor obstacles hardest, physically
// unrecoverable speeds next, voter skips least (a skip is the *safe* failure
// mode; it only matters through the exposure it creates).
const (
	weightMissed = 2.0
	weightUnsafe = 1.5
	weightSkip   = 0.5
)

// Metrics is the scored outcome of one scenario evaluation, stored verbatim
// in corpus entries so a replay can assert bit-identical behaviour.
type Metrics struct {
	TotalFrames          int  `json:"total_frames"`
	CollisionFrames      int  `json:"collision_frames,omitempty"`
	FirstCollisionFrame  int  `json:"first_collision_frame"`
	Collided             bool `json:"collided"`
	Completed            bool `json:"completed"`
	SkippedFrames        int  `json:"skipped_frames,omitempty"`
	MissedObstacleFrames int  `json:"missed_obstacle_frames,omitempty"`
	UnsafeSpeedFrames    int  `json:"unsafe_speed_frames,omitempty"`
	// MinTTC is the run's minimum time-to-collision (s), capped at
	// drivesim.TTCCap, 0 on collision.
	MinTTC float64 `json:"min_ttc"`
	// Margin is the scalar safety margin the falsifier minimises; see
	// Score.
	Margin float64 `json:"margin"`
	// Violation marks the run as a counterexample: a collision, or an
	// approach tighter than TTCViolation.
	Violation bool `json:"violation"`
}

// Score reduces a simulation result to search metrics. The margin is the
// minimum TTC (negative once a collision occurs, more negative the longer
// the contact lasted) minus weighted exposure fractions for missed
// obstacles, stopping-envelope violations and voter skips — a smooth-ish
// scalar that decreases monotonically as a run gets more dangerous, giving
// the hill-climber gradient even between runs that both "merely" complete.
func Score(res *drivesim.Result) Metrics {
	m := Metrics{
		TotalFrames:          res.TotalFrames,
		CollisionFrames:      res.CollisionFrames,
		FirstCollisionFrame:  res.FirstCollisionFrame,
		Collided:             res.Collided,
		Completed:            res.Completed,
		SkippedFrames:        res.SkippedFrames,
		MissedObstacleFrames: res.MissedObstacleFrames,
		UnsafeSpeedFrames:    res.UnsafeSpeedFrames,
		MinTTC:               res.MinTTC,
	}
	base := res.MinTTC
	frames := float64(res.TotalFrames)
	if frames == 0 {
		frames = 1
	}
	if res.Collided {
		base = -1 - float64(res.CollisionFrames)/frames
	}
	m.Margin = base -
		weightMissed*float64(res.MissedObstacleFrames)/frames -
		weightUnsafe*float64(res.UnsafeSpeedFrames)/frames -
		weightSkip*float64(res.SkippedFrames)/frames
	m.Violation = res.Collided || res.MinTTC <= TTCViolation
	return m
}
