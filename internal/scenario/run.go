package scenario

import (
	"fmt"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/perception"
	"mvml/internal/xrand"
)

// Evaluate runs one scenario end to end — ensemble construction, fault
// schedule, occlusion channel, driving simulation — and scores the outcome.
// It is a pure function of the scenario: same input, same Metrics, on any
// machine, at any concurrency. All randomness derives from the scenario's
// own seeds via xrand.Split substreams; Evaluate itself draws nothing from
// any shared generator, which is what lets the falsifier run thousands of
// evaluations across a worker pool without losing reproducibility.
func Evaluate(s Scenario) (Metrics, error) {
	if err := s.Validate(); err != nil {
		return Metrics{}, err
	}
	route, _, err := drivesim.Route(s.Route)
	if err != nil {
		return Metrics{}, err
	}

	// Traffic from the DSL. The slice is always non-nil so drivesim treats
	// an NPC-free scenario as an open road rather than substituting the
	// route's scripted jam.
	npcs := make([]*drivesim.NPC, 0, len(s.NPCs))
	for i, spec := range s.NPCs {
		phases := make([]drivesim.SpeedPhase, len(spec.Phases))
		for j, ph := range spec.Phases {
			phases[j] = drivesim.SpeedPhase{Until: ph.Until, Speed: ph.Speed}
		}
		npc, err := drivesim.NewNPC(i+1, route, spec.StartFrac*route.Length(), phases)
		if err != nil {
			return Metrics{}, fmt.Errorf("scenario: npc %d: %w", i, err)
		}
		if spec.Radius != 0 {
			npc.Radius = spec.Radius
		}
		npcs = append(npcs, npc)
	}

	// Detector error model under the scenario's environment knobs.
	params := detectorParams(s.Perception)
	versions := make([]*perception.DetectorVersion, s.Perception.Versions)
	coreVersions := make([]core.Version[drivesim.Scene, []drivesim.Detection], s.Perception.Versions)
	for i := range versions {
		v, err := perception.NewDetectorVersion(fmt.Sprintf("v%d", i+1), params, s.Perception.Seed)
		if err != nil {
			return Metrics{}, fmt.Errorf("scenario: version %d: %w", i, err)
		}
		versions[i] = v
		coreVersions[i] = v
	}
	// The stochastic fault processes are frozen (DisableFaults): the only
	// compromises in a scenario are the scheduled FaultEvents, applied by
	// the channel below directly to the version behaviour. The system keeps
	// believing its modules are healthy — the undetected-compromise model
	// the voter exists to survive.
	sys, err := core.NewSystem[drivesim.Scene, []drivesim.Detection](
		coreVersions,
		perception.NewDetectionVoter(s.Perception.MatchRadius),
		core.Config{DisableFaults: true},
		xrand.New(s.Seed).Split("core", 0))
	if err != nil {
		return Metrics{}, fmt.Errorf("scenario: system: %w", err)
	}

	channel := &sensorChannel{
		pipe:     perception.NewPipelineFromSystem(sys),
		route:    route,
		routeLen: route.Length(),
		occl:     s.Occlusions,
		faults:   s.Faults,
		versions: versions,
	}
	res, err := drivesim.Run(drivesim.Config{
		RouteNumber: s.Route,
		DT:          s.DT,
		MaxFrames:   s.MaxFrames,
		CruiseSpeed: s.Cruise,
		Traffic:     npcs,
	}, channel, xrand.New(s.Seed).Split("sim", 0))
	if err != nil {
		return Metrics{}, fmt.Errorf("scenario: run: %w", err)
	}
	return Score(res), nil
}

// detectorParams derives the ensemble error model from the perception spec:
// the Table VI calibration scaled by the scenario's environment knobs.
func detectorParams(p PerceptionSpec) perception.DetectorParams {
	d := perception.DefaultDetectorParams()
	clampProb := func(v float64) float64 {
		if v > 0.98 {
			return 0.98
		}
		return v
	}
	d.MissHealthy = clampProb(d.MissHealthy * p.MissScale)
	d.MissCompromisedNear = clampProb(d.MissCompromisedNear * p.MissScale)
	d.MissCompromisedFar = clampProb(d.MissCompromisedFar * p.MissScale)
	d.NoiseHealthy *= p.NoiseScale
	d.NoiseCompromisedNear *= p.NoiseScale
	d.NoiseCompromisedFar *= p.NoiseScale
	d.GhostCompromised = p.Ghost
	d.CommonMode = p.CommonMode
	d.CommonModeNear = p.CommonMode
	d.MatchRadius = p.MatchRadius
	return d.WithPhotometricShift(p.Photometric)
}

// sensorChannel sits between the simulator and the perception pipeline. It
// is the scenario's environment model: scheduled fault events flip version
// behaviour at their simulated times, and occlusion boxes remove
// ground-truth objects from the scene before perception sees them. Ground
// truth itself — and therefore the safety scoring — is untouched.
type sensorChannel struct {
	pipe     *perception.Pipeline
	route    *drivesim.Path
	routeLen float64
	occl     []OcclusionSpec
	faults   []FaultEvent
	versions []*perception.DetectorVersion
	next     int // first fault event not yet applied
}

var _ drivesim.PerceptionSystem = (*sensorChannel)(nil)

// Perceive implements drivesim.PerceptionSystem.
func (c *sensorChannel) Perceive(t float64, scene drivesim.Scene) (drivesim.PerceptionResult, error) {
	for c.next < len(c.faults) && c.faults[c.next].Time <= t {
		f := c.faults[c.next]
		c.next++
		v := c.versions[f.Version]
		if f.Action == ActionCompromise {
			if err := v.Compromise(); err != nil {
				return drivesim.PerceptionResult{}, err
			}
		} else if err := v.Restore(); err != nil {
			return drivesim.PerceptionResult{}, err
		}
	}
	if len(c.occl) > 0 && len(scene.Objects) > 0 {
		visible := make([]drivesim.Object, 0, len(scene.Objects))
		for _, obj := range scene.Objects {
			if !c.occluded(t, obj) {
				visible = append(visible, obj)
			}
		}
		scene.Objects = visible
	}
	return c.pipe.Perceive(t, scene)
}

// occluded reports whether any occlusion box hides the object at time t.
func (c *sensorChannel) occluded(t float64, obj drivesim.Object) bool {
	objS := c.route.NearestArcLength(obj.Pos)
	frac := objS / c.routeLen
	lateral := obj.Pos.Dist(c.route.PointAt(objS))
	for _, o := range c.occl {
		if t >= o.T0 && t < o.T1 && frac >= o.S0 && frac <= o.S1 && lateral <= o.HalfWidth {
			return true
		}
	}
	return false
}

// FunctionalModules implements drivesim.PerceptionSystem.
func (c *sensorChannel) FunctionalModules() int { return c.pipe.FunctionalModules() }

// RejuvenatingModules implements drivesim.PerceptionSystem.
func (c *sensorChannel) RejuvenatingModules() int { return c.pipe.RejuvenatingModules() }
