package scenario

// Determinism tests for the falsifier, following the golden-fixture pattern
// of internal/experiments: the committed fixture pins the exact search
// output, and every worker count must reproduce it byte-for-byte.
//
// Regenerate (only after an intentional search-semantics change) with:
//
//	go test ./internal/scenario -run TestFalsifierGolden -update-golden

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the falsifier golden fixture")

// goldenWorkers mirrors the experiments golden test: the sequential fast
// path plus two genuinely concurrent pool widths.
var goldenWorkers = []int{1, 4, 8}

// goldenConfig is a deliberately small search budget — enough to exercise
// sampling, mutation, violation recording and minimization, small enough to
// run on every `go test`.
func goldenConfig(workers int) Config {
	return Config{Chains: 4, Steps: 6, Workers: workers, Seed: 7, Minimize: true}
}

func TestFalsifierGolden(t *testing.T) {
	for _, workers := range goldenWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rep, err := Search(goldenConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "falsify.golden.json")
			if *updateGolden && workers == goldenWorkers[0] {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("workers=%d: search output diverged from golden fixture\ngot:\n%s", workers, got)
			}
		})
	}
}

// TestChainPrefixProperty: chains derive from root.Split("chain", i), which
// depends only on (seed, i) — so a search with fewer chains must produce
// exactly the counterexamples of the larger search's low-index chains. The
// CI falsify-smoke leans on this: its 8-chain budget is guaranteed to retrace
// the first 8 chains of the 24-chain corpus-generation run.
func TestChainPrefixProperty(t *testing.T) {
	small, err := Search(Config{Chains: 2, Steps: 6, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Search(Config{Chains: 5, Steps: 6, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var prefix []Counterexample
	for _, ce := range big.Counterexamples {
		if ce.Chain < 2 {
			prefix = append(prefix, ce)
		}
	}
	a, _ := json.Marshal(small.Counterexamples)
	b, _ := json.Marshal(prefix)
	if string(a) != string(b) {
		t.Fatalf("2-chain search is not a prefix of the 5-chain search:\n%s\nvs\n%s", a, b)
	}
}

// TestMinimizeProperties: minimization preserves the violation, never grows
// the scenario, and is deterministic (a second pass is the identity).
func TestMinimizeProperties(t *testing.T) {
	rep, err := Search(Config{Chains: 6, Steps: 8, Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) == 0 {
		t.Fatal("search budget found no violations; pick a different seed")
	}
	size := func(s Scenario) int {
		n := len(s.Occlusions) + len(s.Faults)
		for _, npc := range s.NPCs {
			n += 1 + len(npc.Phases)
		}
		return n
	}
	for i, ce := range rep.Counterexamples {
		min, mm := Minimize(ce.Scenario, ce.Metrics)
		if !mm.Violation {
			t.Fatalf("ce %d: minimization lost the violation", i)
		}
		if size(min) > size(ce.Scenario) {
			t.Fatalf("ce %d: minimization grew the scenario", i)
		}
		again, am := Minimize(min, mm)
		if string(again.MustEncode()) != string(min.MustEncode()) || am != mm {
			t.Fatalf("ce %d: minimization is not a fixpoint", i)
		}
	}
}

// TestSearchRejectsBadConfig covers the config guard rails.
func TestSearchRejectsBadConfig(t *testing.T) {
	if _, err := Search(Config{Chains: 0, Steps: 5, Space: DefaultSpace()}); err == nil {
		t.Fatal("zero chains accepted")
	}
	bad := DefaultSpace()
	bad.MaxNPCs = MaxNPCs + 1
	if _, err := Search(Config{Chains: 1, Steps: 1, Space: bad}); err == nil {
		t.Fatal("out-of-bounds space accepted")
	}
	empty := DefaultSpace()
	empty.Routes = []int{}
	if _, err := Search(Config{Chains: 1, Steps: 1, Space: empty}); err == nil {
		t.Fatal("empty route set accepted")
	}
}
