package scenario

// The counterexample regression corpus: every file under testdata/corpus is
// a minimized violating scenario found by the falsifier and banked forever.
// TestCorpusReplay re-runs each one on every `go test ./...` and asserts the
// stored metrics are reproduced exactly — so any change to the simulator,
// the perception error model, the voter or the planner that alters behaviour
// on a known-dangerous scenario fails loudly, with the minimal scenario that
// exposes it attached.
//
// After an INTENTIONAL semantic change, refresh the stored metrics with:
//
//	go test ./internal/scenario -run TestCorpusReplay -update-corpus
//
// and review the metric diffs like any other golden change. Entries whose
// scenario no longer violates are reported; decide case by case whether the
// regression is real or the entry should be re-minimized via
// `mvfalsify search`.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false, "rewrite stored corpus metrics from the current implementation")

// minCorpusEntries is the floor the corpus must never shrink below.
const minCorpusEntries = 8

func TestCorpusReplay(t *testing.T) {
	entries, names, err := LoadCorpus(CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < minCorpusEntries {
		t.Fatalf("corpus holds %d entries, need at least %d", len(entries), minCorpusEntries)
	}
	for i, e := range entries {
		name := filepath.Base(names[i])
		t.Run(name, func(t *testing.T) {
			if want := entryFilename(e.Scenario); name != want {
				t.Fatalf("file %s does not match its scenario fingerprint (want %s)", name, want)
			}
			got, err := Evaluate(e.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			if *updateCorpus {
				if got != e.Metrics {
					t.Logf("refreshing metrics: %s -> %s", DescribeMetrics(e.Metrics), DescribeMetrics(got))
				}
				e.Metrics = got
				if _, err := WriteEntry(CorpusDir, e); err != nil {
					t.Fatal(err)
				}
			}
			if !got.Violation {
				t.Errorf("counterexample no longer violates: %s", DescribeMetrics(got))
			}
			if !*updateCorpus && got != e.Metrics {
				t.Errorf("replay diverged from stored metrics:\nstored: %+v\ngot:    %+v", e.Metrics, got)
			}
		})
	}
}

// TestCorpusEntryRoundTrip: corpus files are canonical — decoding and
// re-encoding each file must reproduce its bytes exactly, so no tool or
// editor churn can hide in the corpus diff history.
func TestCorpusEntryRoundTrip(t *testing.T) {
	names, err := filepath.Glob(filepath.Join(CorpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		e, err := DecodeEntry(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc, err := EncodeEntry(e)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(data) {
			t.Errorf("%s is not in canonical form", filepath.Base(name))
		}
	}
}

func TestCorpusHelpers(t *testing.T) {
	dir := t.TempDir()
	entries, _, err := LoadCorpus(filepath.Join(dir, "missing"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("missing corpus dir: entries=%d err=%v", len(entries), err)
	}
	e := Entry{Scenario: sampleValid(), Note: "unit"}
	path, err := WriteEntry(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(path), "ce-") {
		t.Fatalf("unexpected corpus filename %s", path)
	}
	loaded, _, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Note != "unit" {
		t.Fatalf("round-trip through corpus dir lost data: %+v", loaded)
	}
	fps := CorpusFingerprints(loaded)
	if !fps[Fingerprint(e.Scenario)] {
		t.Fatal("fingerprint set missing the written entry")
	}
}
