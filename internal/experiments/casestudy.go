package experiments

import (
	"fmt"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/obs"
	"mvml/internal/parallel"
	"mvml/internal/perception"
	"mvml/internal/stats"
	"mvml/internal/xrand"
)

// CaseStudyConfig parameterises the CARLA-style driving experiments
// (Tables VI–VIII).
type CaseStudyConfig struct {
	// RunsPerRoute is the number of repetitions (the paper uses 5).
	RunsPerRoute int
	// CruiseSpeed is the ego target speed (m/s).
	CruiseSpeed float64
	// Detector is the perception error model.
	Detector perception.DetectorParams
	// System is the fault/rejuvenation configuration of the
	// with-rejuvenation arm; the without arm disables the rejuvenation
	// mechanism entirely.
	System core.Config
	// Seed drives all runs.
	Seed uint64
	// Workers bounds concurrent simulation runs (<= 0 = GOMAXPROCS). Every
	// run's randomness is Split from the experiment root by (route, run)
	// seed, so results are identical for every worker count.
	Workers int
	// Obs, when non-nil, instruments every pipeline and simulation run in
	// the experiment: module state/rejuvenation series and latency
	// histograms accumulate across runs in one registry, and per-run
	// counters are recorded under mvml_experiment_runs_total. Telemetry is
	// observational only and does not change any run's decisions.
	Obs *obs.Runtime
}

// MetricExperimentRuns counts simulation runs executed by the experiment
// harness, labelled by route and arm.
const MetricExperimentRuns = "mvml_experiment_runs_total"

// DefaultCaseStudyConfig returns the paper's §VII-A setup.
func DefaultCaseStudyConfig() CaseStudyConfig {
	return CaseStudyConfig{
		RunsPerRoute: 5,
		CruiseSpeed:  10,
		Detector:     perception.DefaultDetectorParams(),
		System:       core.CaseStudyConfig(),
		Seed:         2025,
	}
}

// RouteStats aggregates the paper's Table VI metrics for one route and arm.
type RouteStats struct {
	Route string
	// FirstCollisionFrame is the mean frame of the first collision over
	// colliding runs (-1 if none collided).
	FirstCollisionFrame int
	// TotalFrames is the mean run length.
	TotalFrames int
	// CollisionRatePct is collision frames / total frames (%).
	CollisionRatePct float64
	// CollidedRuns / Runs is the "#Coll." column.
	CollidedRuns, Runs int
	// SkipRatio is the mean fraction of skipped frames.
	SkipRatio float64
}

// TableVIResult compares the eight routes with and without rejuvenation.
type TableVIResult struct {
	With    []RouteStats
	Without []RouteStats
}

// runRoute executes RunsPerRoute simulations of one route and arm.
func runRoute(cfg CaseStudyConfig, route int, rejuvenate bool, root *xrand.Rand) (RouteStats, error) {
	sysCfg := cfg.System
	if !rejuvenate {
		// The without-rejuvenation arm disables the entire rejuvenation
		// mechanism, so the ensemble degrades monotonically over a run.
		sysCfg.RejuvenationInterval = 0
		sysCfg.DisableReactive = true
	}
	var agg RouteStats
	agg.Runs = cfg.RunsPerRoute
	var firstSum, firstN, totalSum, collFrames, frames int
	var skipSum float64
	arm := "with_rejuvenation"
	if !rejuvenate {
		arm = "without_rejuvenation"
	}
	// Fan the runs out. Each run derives its streams from the shared root
	// by its (route, run) seed — a pure read of root — and builds a private
	// pipeline, so runs are self-contained; the results come back in run
	// order and the aggregation below sums in the sequential order.
	runs, err := parallel.Run(root, "run", cfg.RunsPerRoute, parallel.Options{
		Workers:  cfg.Workers,
		Progress: parallel.RegistryProgress(cfg.Obs.Metrics(), "casestudy"),
	}, func(run int, _ *xrand.Rand) (*drivesim.Result, error) {
		seed := uint64(route*100 + run)
		pipe, err := perception.NewPipeline(3, cfg.Detector, sysCfg, seed, root.Split("sys", seed))
		if err != nil {
			return nil, err
		}
		pipe.InstrumentObs(cfg.Obs)
		cfg.Obs.Metrics().Counter(MetricExperimentRuns,
			"route", fmt.Sprintf("%d", route), "arm", arm).Inc()
		return drivesim.Run(drivesim.Config{
			RouteNumber: route,
			CruiseSpeed: cfg.CruiseSpeed,
			Metrics:     cfg.Obs.Metrics(),
			Tracer:      cfg.Obs.Tracer(),
		}, pipe, root.Split("sim", seed))
	})
	if err != nil {
		return RouteStats{}, err
	}
	for _, res := range runs {
		agg.Route = res.Route
		totalSum += res.TotalFrames
		frames += res.TotalFrames
		collFrames += res.CollisionFrames
		skipSum += res.SkipRatio()
		if res.Collided {
			agg.CollidedRuns++
			firstSum += res.FirstCollisionFrame
			firstN++
		}
	}
	agg.TotalFrames = totalSum / cfg.RunsPerRoute
	if firstN > 0 {
		agg.FirstCollisionFrame = firstSum / firstN
	} else {
		agg.FirstCollisionFrame = -1
	}
	if frames > 0 {
		agg.CollisionRatePct = 100 * float64(collFrames) / float64(frames)
	}
	agg.SkipRatio = skipSum / float64(cfg.RunsPerRoute)
	return agg, nil
}

// RunTableVI reproduces the paper's Table VI: collision data of the
// three-version perception system with and without rejuvenation over the
// eight routes.
func RunTableVI(cfg CaseStudyConfig) (*TableVIResult, error) {
	root := xrand.New(cfg.Seed)
	res := &TableVIResult{}
	for route := 1; route <= drivesim.NumRoutes; route++ {
		w, err := runRoute(cfg, route, true, root)
		if err != nil {
			return nil, fmt.Errorf("experiments: table VI route %d w/: %w", route, err)
		}
		wo, err := runRoute(cfg, route, false, root)
		if err != nil {
			return nil, fmt.Errorf("experiments: table VI route %d w/o: %w", route, err)
		}
		res.With = append(res.With, w)
		res.Without = append(res.Without, wo)
	}
	return res, nil
}

// Totals aggregates one arm across routes: average first collision,
// average total frames, overall collision rate, total collided runs.
func totals(rows []RouteStats) (first, totalFrames int, ratePct float64, collided, runs int, skip float64) {
	var firstSum, firstN, totalSum, rateN int
	var rateSum, skipSum float64
	for _, r := range rows {
		if r.FirstCollisionFrame >= 0 {
			firstSum += r.FirstCollisionFrame
			firstN++
		}
		totalSum += r.TotalFrames
		rateSum += r.CollisionRatePct
		rateN++
		collided += r.CollidedRuns
		runs += r.Runs
		skipSum += r.SkipRatio
	}
	if firstN > 0 {
		first = firstSum / firstN
	} else {
		first = -1
	}
	if rateN > 0 {
		totalFrames = totalSum / rateN
		ratePct = rateSum / float64(rateN)
		skip = skipSum / float64(rateN)
	}
	return first, totalFrames, ratePct, collided, runs, skip
}

// Render formats the result like the paper's Table VI.
func (r *TableVIResult) Render() string {
	t := &Table{
		Title: "Table VI: collision data of the multi-version perception system w/ and w/o rejuvenation",
		Headers: []string{"Route", "1st coll. w/", "1st coll. w/o", "Frames w/", "Frames w/o",
			"Rate% w/", "Rate% w/o", "#Coll w/", "#Coll w/o"},
	}
	fmtFirst := func(v int) string {
		if v < 0 {
			return "NA"
		}
		return fmt.Sprintf("%d", v)
	}
	for i := range r.With {
		w, wo := r.With[i], r.Without[i]
		t.AddRow(fmt.Sprintf("#%d (%s)", i+1, w.Route),
			fmtFirst(w.FirstCollisionFrame), fmtFirst(wo.FirstCollisionFrame),
			fmt.Sprintf("%d", w.TotalFrames), fmt.Sprintf("%d", wo.TotalFrames),
			fmt.Sprintf("%.2f", w.CollisionRatePct), fmt.Sprintf("%.2f", wo.CollisionRatePct),
			fmt.Sprintf("%d/%d", w.CollidedRuns, w.Runs), fmt.Sprintf("%d/%d", wo.CollidedRuns, wo.Runs))
	}
	wf, wt, wr, wc, wruns, wskip := totals(r.With)
	of, ot, or, oc, oruns, _ := totals(r.Without)
	t.AddRow("Avg/Total", fmtFirst(wf), fmtFirst(of),
		fmt.Sprintf("%d", wt), fmt.Sprintf("%d", ot),
		fmt.Sprintf("%.2f", wr), fmt.Sprintf("%.2f", or),
		fmt.Sprintf("%d/%d", wc, wruns), fmt.Sprintf("%d/%d", oc, oruns))
	t.Notes = append(t.Notes,
		fmt.Sprintf("with-rejuvenation skip ratio: %.3f (paper: ~0.02)", wskip),
		"paper totals: w/ 0/40 at 0.00%, w/o 33/40 at 33.54%, first collision avg 287")
	return t.String()
}

// TableVIIRow is one rejuvenation-interval configuration of Table VII.
type TableVIIRow struct {
	Interval            float64
	FirstCollisionFrame int
	TotalFrames         int
	CollisionRatePct    float64
	CollidedRuns, Runs  int
}

// TableVIIResult sweeps the rejuvenation interval on route #1.
type TableVIIResult struct {
	Rows []TableVIIRow
}

// RunTableVII reproduces the paper's Table VII: the impact of the
// rejuvenation interval (3, 5, 7, 9 s) on driving safety for route #1.
func RunTableVII(cfg CaseStudyConfig, intervals []float64) (*TableVIIResult, error) {
	if len(intervals) == 0 {
		intervals = []float64{3, 5, 7, 9}
	}
	root := xrand.New(cfg.Seed + 1)
	res := &TableVIIResult{}
	for i, interval := range intervals {
		c := cfg
		c.System.RejuvenationInterval = interval
		stats, err := runRoute(c, 1, true, root.Split("interval", uint64(i)))
		if err != nil {
			return nil, fmt.Errorf("experiments: table VII interval %v: %w", interval, err)
		}
		res.Rows = append(res.Rows, TableVIIRow{
			Interval:            interval,
			FirstCollisionFrame: stats.FirstCollisionFrame,
			TotalFrames:         stats.TotalFrames,
			CollisionRatePct:    stats.CollisionRatePct,
			CollidedRuns:        stats.CollidedRuns,
			Runs:                stats.Runs,
		})
	}
	return res, nil
}

// Render formats the result like the paper's Table VII.
func (r *TableVIIResult) Render() string {
	t := &Table{
		Title:   "Table VII: impact of the rejuvenation interval on driving safety (route #1)",
		Headers: []string{"1/gamma (s)", "1st coll.", "Total", "Coll. rate", "#Coll."},
	}
	for _, row := range r.Rows {
		first := "NA"
		if row.FirstCollisionFrame >= 0 {
			first = fmt.Sprintf("%d", row.FirstCollisionFrame)
		}
		t.AddRow(fmt.Sprintf("%.0f", row.Interval), first,
			fmt.Sprintf("%d", row.TotalFrames),
			fmt.Sprintf("%.2f%%", row.CollisionRatePct),
			fmt.Sprintf("%d/%d", row.CollidedRuns, row.Runs))
	}
	t.Notes = append(t.Notes, "paper: 0/5, 1/5, 2/5, 3/5 at rates 0.00/1.27/8.93/10.44%")
	return t.String()
}

// OverheadRow is one perception configuration of Table VIII.
type OverheadRow struct {
	System string
	FPS    stats.Interval
	CPU    stats.Interval
	GPU    stats.Interval
}

// TableVIIIResult compares the overhead of single-version, three-version
// and three-version-with-rejuvenation perception.
type TableVIIIResult struct {
	Rows []OverheadRow
}

// RunTableVIII reproduces the paper's Table VIII overhead comparison on
// route #1. FPS/CPU/GPU are deterministic cost-model proxies (see
// drivesim's cost account); the confidence intervals come from run-to-run
// variation, as in the paper's three-run setup.
func RunTableVIII(cfg CaseStudyConfig, runs int) (*TableVIIIResult, error) {
	if runs < 2 {
		runs = 3
	}
	root := xrand.New(cfg.Seed + 2)
	res := &TableVIIIResult{}
	type arm struct {
		name     string
		versions int
		system   core.Config
	}
	healthy := core.Config{DisableFaults: true}
	faultyWithRejuvenation := cfg.System
	arms := []arm{
		{"Single-v", 1, healthy},
		{"Three-v", 3, healthy},
		{"Three-v w/rej", 3, faultyWithRejuvenation},
	}
	for ai, a := range arms {
		// Per-arm fan-out over the repeated runs; per-run results come back
		// in run order, so the CI inputs below are assembled exactly as the
		// sequential loop did.
		type overhead struct{ fps, cpu, gpu float64 }
		runRes, err := parallel.Run(root, "run", runs, parallel.Options{
			Workers:  cfg.Workers,
			Progress: parallel.RegistryProgress(cfg.Obs.Metrics(), "tableviii"),
		}, func(run int, _ *xrand.Rand) (overhead, error) {
			seed := uint64(ai*100 + run)
			pipe, err := perception.NewPipeline(a.versions, cfg.Detector, a.system, seed,
				root.Split("sys", seed))
			if err != nil {
				return overhead{}, err
			}
			pipe.InstrumentObs(cfg.Obs)
			r, err := drivesim.Run(drivesim.Config{RouteNumber: 1, CruiseSpeed: cfg.CruiseSpeed,
				Metrics: cfg.Obs.Metrics(), Tracer: cfg.Obs.Tracer()},
				pipe, root.Split("sim", seed))
			if err != nil {
				return overhead{}, err
			}
			return overhead{fps: r.AvgFPS, cpu: r.AvgCPUUtil, gpu: r.AvgGPUUtil}, nil
		})
		if err != nil {
			return nil, err
		}
		var fps, cpu, gpu []float64
		for _, r := range runRes {
			fps = append(fps, r.fps)
			cpu = append(cpu, r.cpu)
			gpu = append(gpu, r.gpu)
		}
		fpsCI, err := stats.MeanCI(fps, 0.95)
		if err != nil {
			return nil, err
		}
		cpuCI, err := stats.MeanCI(cpu, 0.95)
		if err != nil {
			return nil, err
		}
		gpuCI, err := stats.MeanCI(gpu, 0.95)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, OverheadRow{System: a.name, FPS: fpsCI, CPU: cpuCI, GPU: gpuCI})
	}
	return res, nil
}

// Render formats the result like the paper's Table VIII.
func (r *TableVIIIResult) Render() string {
	t := &Table{
		Title:   "Table VIII: overhead comparison (route #1)",
		Headers: []string{"System", "FPS [CI]", "CPU-% [CI]", "GPU-% [CI]"},
	}
	ci := func(iv stats.Interval) string {
		return fmt.Sprintf("%.2f [%.4f, %.4f]", iv.Mean, iv.Lo, iv.Hi)
	}
	for _, row := range r.Rows {
		t.AddRow(row.System, ci(row.FPS), ci(row.CPU), ci(row.GPU))
	}
	t.Notes = append(t.Notes,
		"paper: 5.85/3.62/28.0, 4.27/3.97/35.0, 4.20/3.76/33.0 (FPS/CPU%/GPU%)")
	return t.String()
}
