package experiments

import (
	"testing"

	"mvml/internal/drivesim"
	"mvml/internal/obs"
	"mvml/internal/perception"
	"mvml/internal/xrand"
)

// TestCaseStudyTelemetryDeterminism is the end-to-end determinism
// regression test: one case-study route driven by the real 3-version
// perception pipeline must produce identical driving results and identical
// system stats whether or not telemetry is attached.
func TestCaseStudyTelemetryDeterminism(t *testing.T) {
	cfg := DefaultCaseStudyConfig()
	const route, seed = 1, 7

	drive := func(rt *obs.Runtime) (*drivesim.Result, *perception.Pipeline) {
		t.Helper()
		root := xrand.New(cfg.Seed)
		pipe, err := perception.NewPipeline(3, cfg.Detector, cfg.System, seed, root.Split("sys", seed))
		if err != nil {
			t.Fatal(err)
		}
		pipe.Instrument(rt.Metrics(), rt.Tracer())
		res, err := drivesim.Run(drivesim.Config{
			RouteNumber: route,
			CruiseSpeed: cfg.CruiseSpeed,
			Metrics:     rt.Metrics(),
			Tracer:      rt.Tracer(),
		}, pipe, root.Split("sim", seed))
		if err != nil {
			t.Fatal(err)
		}
		return res, pipe
	}

	plainRes, plainPipe := drive(nil)
	rt := obs.NewRuntime(obs.DefaultTraceCapacity)
	instRes, instPipe := drive(rt)

	if *plainRes != *instRes {
		t.Errorf("drive results diverged:\nplain        %+v\ninstrumented %+v", *plainRes, *instRes)
	}
	if plainPipe.System().Stats() != instPipe.System().Stats() {
		t.Errorf("system stats diverged:\nplain        %+v\ninstrumented %+v",
			plainPipe.System().Stats(), instPipe.System().Stats())
	}

	// Sanity: the instrumented run actually recorded something.
	st := instPipe.System().Stats()
	if st.Inferences == 0 {
		t.Fatal("no inferences — test drove nothing")
	}
	var voteCount uint64
	for _, m := range rt.Metrics().Snapshot() {
		if m.Name == "mvml_vote_latency_seconds" {
			voteCount += m.Histogram.Count
		}
	}
	if voteCount != uint64(st.Inferences) {
		t.Errorf("vote histogram count %d, stats %d", voteCount, st.Inferences)
	}
	if rt.Tracer().Emitted() == 0 {
		t.Error("no trace events from an instrumented case-study run")
	}
}
