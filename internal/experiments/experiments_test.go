package experiments

import (
	"math"
	"strings"
	"testing"

	"mvml/internal/petri"
	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

// tinyTableIIConfig keeps the Table II pipeline test fast: the assertions
// below check pipeline mechanics, not headline accuracy (that is the
// full-scale benchmark's job).
func tinyTableIIConfig() TableIIConfig {
	cfg := QuickTableIIConfig()
	cfg.Dataset.TrainPerClass = 10
	cfg.Dataset.TestPerClass = 5
	cfg.Epochs = 5
	cfg.MaxSeedTries = 200
	return cfg
}

func TestRunTableIIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	res, err := RunTableII(tinyTableIIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	const chance = 1.0 / 43
	for _, row := range res.Rows {
		if row.Healthy < 3*chance {
			t.Errorf("%s healthy accuracy %.3f barely above chance", row.Model, row.Healthy)
		}
		if row.Compromised >= row.Healthy {
			t.Errorf("%s: compromised accuracy %.3f not below healthy %.3f",
				row.Model, row.Compromised, row.Healthy)
		}
	}
	if res.P <= 0 || res.P >= 1 || res.PPrime <= res.P {
		t.Fatalf("derived p=%v p'=%v implausible", res.P, res.PPrime)
	}
	if res.Alpha < 0 || res.Alpha > 1 {
		t.Fatalf("alpha %v outside [0,1]", res.Alpha)
	}
	params := res.Params()
	if err := params.Validate(); err != nil {
		t.Fatalf("derived params invalid: %v", err)
	}
	if !strings.Contains(res.Render(), "alexnet-small") {
		t.Fatal("render missing model rows")
	}
}

func TestRunTableIIIMatchesPaper(t *testing.T) {
	res, err := RunTableIII(reliability.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.States) != 9 {
		t.Fatalf("%d states, want 9", len(res.States))
	}
	// First row is (3,0,0) = 0.988626295 in the paper.
	if res.States[0] != (reliability.State{Healthy: 3}) {
		t.Fatalf("first state %v", res.States[0])
	}
	if math.Abs(res.Values[0]-0.988626295) > 2e-5 {
		t.Fatalf("R(3,0,0) = %v", res.Values[0])
	}
	if !strings.Contains(res.Render(), "(3,0,0)") {
		t.Fatal("render missing states")
	}
}

func TestRenderTableIV(t *testing.T) {
	out := RenderTableIV(reliability.DefaultParams())
	for _, want := range []string{"alpha", "1/gamma", "300 s", "1523 s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table IV missing %q:\n%s", want, out)
		}
	}
}

func TestRunTableVMatchesPaper(t *testing.T) {
	simCfg := petri.SimConfig{Horizon: 2e6, Warmup: 2e4}
	res, err := RunTableV(reliability.DefaultParams(), simCfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	wantWithout := []float64{0, 0.848211, 0.943875, 0.903190}
	wantWith := []float64{0, 0.920217, 0.967152, 0.952998}
	for n := 1; n <= 3; n++ {
		if math.Abs(res.Without[n]-wantWithout[n]) > 1e-4 {
			t.Errorf("%d-version w/o: %.6f, want %.6f", n, res.Without[n], wantWithout[n])
		}
		if math.Abs(res.With[n]-wantWith[n]) > 0.012 {
			t.Errorf("%d-version w/: %.6f, want ≈%.6f", n, res.With[n], wantWith[n])
		}
		if res.With[n] <= res.Without[n] {
			t.Errorf("%d-version: rejuvenation did not improve reliability", n)
		}
	}
	if !strings.Contains(res.Render(), "Two-version") {
		t.Fatal("render missing rows")
	}
}

// fig4SimConfig keeps sweep tests fast.
func fig4SimConfig() Fig4Config {
	return Fig4Config{
		SimConfig: petri.SimConfig{Horizon: 4e5, Warmup: 4e3},
		Points:    4,
	}
}

func TestFig4aIntervalMonotonicity(t *testing.T) {
	res, err := RunFig4("a", reliability.DefaultParams(), fig4SimConfig(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Short intervals must beat long intervals for the 3-version system.
	if first.With[3] <= last.With[3] {
		t.Errorf("3v w/: interval %v (%.4f) should beat %v (%.4f)",
			first.X, first.With[3], last.X, last.With[3])
	}
	// The without-rejuvenation series is flat in 1/gamma.
	if math.Abs(first.Without[3]-last.Without[3]) > 1e-9 {
		t.Error("w/o series should not depend on the rejuvenation interval")
	}
}

func TestFig4dAlphaHurtsRedundancy(t *testing.T) {
	res, err := RunFig4("d", reliability.DefaultParams(), fig4SimConfig(), xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Higher dependency degrades the 2v and 3v systems...
	if last.Without[3] >= first.Without[3] {
		t.Error("3-version reliability should fall as alpha grows")
	}
	if last.Without[2] >= first.Without[2] {
		t.Error("2-version reliability should fall as alpha grows")
	}
	// ...but the single version is immune to alpha.
	if math.Abs(last.Without[1]-first.Without[1]) > 1e-9 {
		t.Error("single version should not depend on alpha")
	}
}

func TestFig4eCrossoverExists(t *testing.T) {
	cfg := Fig4Config{
		SimConfig: petri.SimConfig{Horizon: 8e5, Warmup: 8e3},
		Points:    8,
	}
	res, err := RunFig4("e", reliability.DefaultParams(), cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	// The paper: a rejuvenated single version beats the non-rejuvenated
	// three-version system for small p, and loses for large p, so a
	// crossover exists inside the sweep.
	xs := res.Crossovers(
		func(p Fig4Point) float64 { return p.With[1] },
		func(p Fig4Point) float64 { return p.Without[3] })
	if len(xs) == 0 {
		t.Fatal("no 1v-with vs 3v-without crossover found in Fig. 4(e) sweep")
	}
}

func TestFig4fCompromisedInaccuracy(t *testing.T) {
	res, err := RunFig4("f", reliability.DefaultParams(), fig4SimConfig(), xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Reliability drops with p' everywhere, and the single version
	// without rejuvenation is hurt the most (paper: −27%).
	dropSingle := first.Without[1] - last.Without[1]
	dropThreeWith := first.With[3] - last.With[3]
	if dropSingle <= 0 {
		t.Error("single-version reliability should fall with p'")
	}
	if dropSingle <= dropThreeWith {
		t.Errorf("1v w/o should be harmed more (%.4f) than 3v w/ (%.4f)", dropSingle, dropThreeWith)
	}
}

func TestRunFig4UnknownLetter(t *testing.T) {
	if _, err := RunFig4("z", reliability.DefaultParams(), fig4SimConfig(), xrand.New(1)); err == nil {
		t.Fatal("expected error for unknown sweep")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Headers: []string{"a", "long-header"},
		Notes:   []string{"note"},
	}
	tb.AddRow("x", "y")
	out := tb.String()
	for _, want := range []string{"T", "long-header", "x", "note", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
