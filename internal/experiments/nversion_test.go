package experiments

import (
	"strings"
	"testing"
)

func quickNVersionConfig() NVersionStudyConfig {
	cfg := DefaultNVersionStudyConfig()
	cfg.Requests = 12_000
	return cfg
}

func TestNVersionStudyValidation(t *testing.T) {
	bad := quickNVersionConfig()
	bad.MaxVersions = 0
	if _, err := RunNVersionStudy(bad); err == nil {
		t.Fatal("expected error for MaxVersions 0")
	}
	bad = quickNVersionConfig()
	bad.Requests = 0
	if _, err := RunNVersionStudy(bad); err == nil {
		t.Fatal("expected error for zero requests")
	}
}

func TestNVersionStudyShape(t *testing.T) {
	cfg := quickNVersionConfig()
	res, err := RunNVersionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 row for n=1 plus 3 voters x 4 sizes.
	if len(res.Rows) != 1+3*(cfg.MaxVersions-1) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	byKey := map[string]NVersionRow{}
	for _, row := range res.Rows {
		byKey[row.Voter+string(rune('0'+row.Versions))] = row

		// Rejuvenation must never hurt the error-free metric by much
		// (Monte-Carlo noise aside) and usually helps correctness.
		if row.ErrorFreeWith < row.ErrorFreeWithout-0.02 {
			t.Errorf("%d-version %s: rejuvenation degraded error-freeness (%.4f vs %.4f)",
				row.Versions, row.Voter, row.ErrorFreeWith, row.ErrorFreeWithout)
		}
		// Plurality never skips; unanimity skips most.
		if row.Voter == "plurality" && (row.SkipWith != 0 || row.SkipWithout != 0) {
			t.Errorf("plurality skipped: %+v", row)
		}
	}
	// Table V's finding generalises: under the paper's error-free metric
	// the 2-version majority (with its safe skip) at least matches the
	// 3-version majority.
	two := byKey["majority2"]
	three := byKey["majority3"]
	if two.ErrorFreeWith < three.ErrorFreeWith-0.005 {
		t.Errorf("2-version error-freeness %.4f should rival 3-version %.4f",
			two.ErrorFreeWith, three.ErrorFreeWith)
	}
	// Unanimity trades availability for error-freeness: it must have the
	// highest skip ratio of the 3-version voters and at least as good an
	// error-free rate as majority.
	u3 := byKey["unanimous3"]
	if u3.SkipWith <= three.SkipWith {
		t.Error("unanimity should skip more than majority")
	}
	if u3.ErrorFreeWith < three.ErrorFreeWith-0.005 {
		t.Error("unanimity should be at least as error-free as majority")
	}
	// Five-version majority should beat three-version majority on plain
	// correctness (more redundancy).
	five := byKey["majority5"]
	if five.ReliabilityWith < three.ReliabilityWith-0.015 { // Monte-Carlo margin at 12k requests
		t.Errorf("5-version correctness %.4f should be >= 3-version %.4f",
			five.ReliabilityWith, three.ReliabilityWith)
	}
	if !strings.Contains(res.Render(), "unanimous") {
		t.Fatal("render broken")
	}
}
