package experiments

import (
	"fmt"
	"math"

	"mvml/internal/core"
	"mvml/internal/drivesim"
	"mvml/internal/parallel"
	"mvml/internal/perception"
	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

// The ablation studies below probe the design choices DESIGN.md calls out:
// the voting scheme, the proactive victim-selection policy, the fault-clock
// semantics, and the Erlang phase count used to cross-validate the DSPN
// simulator.

// AblationRow is one configuration of a driving-side ablation.
type AblationRow struct {
	Name             string
	CollidedRuns     int
	Runs             int
	CollisionRatePct float64
	SkipRatio        float64
}

// AblationResult is a set of compared configurations.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render formats the ablation as a table.
func (r *AblationResult) Render() string {
	t := &Table{
		Title:   r.Title,
		Headers: []string{"Configuration", "#Coll", "Coll. rate", "Skip ratio"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%d/%d", row.CollidedRuns, row.Runs),
			fmt.Sprintf("%.2f%%", row.CollisionRatePct),
			fmt.Sprintf("%.3f", row.SkipRatio))
	}
	return t.String()
}

// driveArm runs every route once per run index with a pipeline factory and
// aggregates collision statistics. The route x run grid is flattened into
// one fan-out (cfg.Workers bounds concurrency); every episode is
// self-contained — a private pipeline with streams Split from the shared
// root by its (route, run) seed — and the per-episode results come back in
// grid order, so the aggregation reduces in the sequential order for any
// worker count.
func driveArm(cfg CaseStudyConfig, makePipe func(seed uint64, rng *xrand.Rand) (drivesim.PerceptionSystem, error),
	root *xrand.Rand) (AblationRow, error) {
	episodes, err := parallel.Run(root, "episode", drivesim.NumRoutes*cfg.RunsPerRoute,
		parallel.Options{
			Workers:  cfg.Workers,
			Progress: parallel.RegistryProgress(cfg.Obs.Metrics(), "ablation"),
		}, func(rep int, _ *xrand.Rand) (*drivesim.Result, error) {
			route := 1 + rep/cfg.RunsPerRoute
			run := rep % cfg.RunsPerRoute
			seed := uint64(route*100 + run)
			pipe, err := makePipe(seed, root.Split("sys", seed))
			if err != nil {
				return nil, err
			}
			if p, ok := pipe.(*perception.Pipeline); ok {
				p.InstrumentObs(cfg.Obs)
			}
			return drivesim.Run(drivesim.Config{RouteNumber: route, CruiseSpeed: cfg.CruiseSpeed,
				Metrics: cfg.Obs.Metrics(), Tracer: cfg.Obs.Tracer()},
				pipe, root.Split("sim", seed))
		})
	if err != nil {
		return AblationRow{}, err
	}
	var row AblationRow
	var collFrames, frames int
	var skipSum float64
	for _, res := range episodes {
		row.Runs++
		frames += res.TotalFrames
		collFrames += res.CollisionFrames
		skipSum += res.SkipRatio()
		if res.Collided {
			row.CollidedRuns++
		}
	}
	if frames > 0 {
		row.CollisionRatePct = 100 * float64(collFrames) / float64(frames)
	}
	row.SkipRatio = skipSum / float64(row.Runs)
	return row, nil
}

// RunVotingAblation compares the object-level quorum voter (default), the
// list-level majority voter, and strict unanimity on the with-rejuvenation
// case study.
func RunVotingAblation(cfg CaseStudyConfig) (*AblationResult, error) {
	root := xrand.New(cfg.Seed + 11)
	voters := []struct {
		name  string
		voter core.Voter[[]drivesim.Detection]
	}{
		{"object-level quorum (default)", perception.NewDetectionVoter(cfg.Detector.MatchRadius)},
		{"list-level majority", perception.NewListVoter(cfg.Detector.MatchRadius)},
		{"unanimous lists", &core.UnanimousVoter[[]drivesim.Detection]{
			Eq: perception.NewListVoter(cfg.Detector.MatchRadius).Eq,
		}},
	}
	res := &AblationResult{Title: "Ablation: voting scheme (3 versions, with rejuvenation)"}
	for vi, v := range voters {
		voter := v.voter
		row, err := driveArm(cfg, func(seed uint64, rng *xrand.Rand) (drivesim.PerceptionSystem, error) {
			return perception.NewPipelineWithVoter(3, cfg.Detector, cfg.System, voter, seed, rng)
		}, root.Split("voter", uint64(vi)))
		if err != nil {
			return nil, fmt.Errorf("experiments: voting ablation %s: %w", v.name, err)
		}
		row.Name = v.name
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunSelectionAblation compares the proactive victim-selection policies:
// the case study's 2/3 compromised-first rule against the DSPN's
// count-proportional random choice.
func RunSelectionAblation(cfg CaseStudyConfig) (*AblationResult, error) {
	root := xrand.New(cfg.Seed + 13)
	policies := []struct {
		name string
		mut  func(core.Config) core.Config
	}{
		{"prefer compromised (2/3)", func(c core.Config) core.Config {
			c.Selection = core.SelectPreferCompromised
			c.PreferProb = 2.0 / 3.0
			return c
		}},
		{"uniform by count (w1/w2)", func(c core.Config) core.Config {
			c.Selection = core.SelectByCount
			return c
		}},
		{"always compromised first", func(c core.Config) core.Config {
			c.Selection = core.SelectPreferCompromised
			c.PreferProb = 1
			return c
		}},
	}
	res := &AblationResult{Title: "Ablation: proactive victim selection (3 versions, with rejuvenation)"}
	for pi, p := range policies {
		sysCfg := p.mut(cfg.System)
		row, err := driveArm(cfg, func(seed uint64, rng *xrand.Rand) (drivesim.PerceptionSystem, error) {
			return perception.NewPipeline(3, cfg.Detector, sysCfg, seed, rng)
		}, root.Split("policy", uint64(pi)))
		if err != nil {
			return nil, fmt.Errorf("experiments: selection ablation %s: %w", p.name, err)
		}
		row.Name = p.name
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// ClockAblationResult compares fault-clock semantics: shared single-server
// clocks (DSPN-aligned) versus per-module clocks.
type ClockAblationResult struct {
	// DegradedFraction is the long-run fraction of time with >= 2
	// non-healthy modules, per mode.
	SharedDegraded, PerModuleDegraded float64
}

// RunClockAblation measures how the two fault-clock semantics change the
// system's exposure to degraded majorities under the case-study parameters.
func RunClockAblation(sysCfg core.Config, horizon float64, rng *xrand.Rand) (*ClockAblationResult, error) {
	degraded := func(perModule bool, r *xrand.Rand) (float64, error) {
		cfg := sysCfg
		cfg.PerModuleClocks = perModule
		versions := make([]core.Version[int, int], 3)
		for i := range versions {
			versions[i] = &core.FuncVersion[int, int]{
				VersionName: fmt.Sprintf("v%d", i+1),
				InferFn:     func(in int) (int, error) { return in, nil },
			}
		}
		sys, err := core.NewSystem[int, int](versions, core.NewEqualityVoter[int](), cfg, r)
		if err != nil {
			return 0, err
		}
		if err := sys.Advance(horizon); err != nil {
			return 0, err
		}
		var frac float64
		for st, occ := range sys.Occupancy() {
			if st.Healthy <= 1 {
				frac += occ
			}
		}
		return frac, nil
	}
	shared, err := degraded(false, rng.Split("shared", 0))
	if err != nil {
		return nil, err
	}
	perModule, err := degraded(true, rng.Split("permodule", 0))
	if err != nil {
		return nil, err
	}
	return &ClockAblationResult{SharedDegraded: shared, PerModuleDegraded: perModule}, nil
}

// Render formats the clock ablation.
func (r *ClockAblationResult) Render() string {
	t := &Table{
		Title:   "Ablation: fault-clock semantics (fraction of time with <= 1 healthy module)",
		Headers: []string{"Clock semantics", "Degraded-majority fraction"},
	}
	t.AddRow("shared single-server (DSPN)", f6(r.SharedDegraded))
	t.AddRow("per-module", f6(r.PerModuleDegraded))
	return t.String()
}

// ErlangConvergenceResult records how the Erlang phase-type approximation of
// the rejuvenation clock converges to the simulated DSPN reliability.
type ErlangConvergenceResult struct {
	Simulated float64
	Stages    []int
	Values    []float64
}

// RunErlangConvergence solves the 3-version proactive model with increasing
// Erlang stage counts and compares against the Monte-Carlo DSPN solution.
func RunErlangConvergence(params reliability.Params, stages []int, rng *xrand.Rand) (*ErlangConvergenceResult, error) {
	if len(stages) == 0 {
		stages = []int{1, 2, 5, 10, 20}
	}
	model, err := reliability.NewModel(3, params, true)
	if err != nil {
		return nil, err
	}
	sim, err := model.SolveSimulation(reliability.DefaultSimConfig(), rng)
	if err != nil {
		return nil, err
	}
	res := &ErlangConvergenceResult{Simulated: sim.Expected, Stages: stages}
	for _, k := range stages {
		erl, err := model.SolveErlang(k)
		if err != nil {
			return nil, fmt.Errorf("experiments: Erlang k=%d: %w", k, err)
		}
		res.Values = append(res.Values, erl.Expected)
	}
	return res, nil
}

// Render formats the convergence study.
func (r *ErlangConvergenceResult) Render() string {
	t := &Table{
		Title:   "Ablation: Erlang phase-type approximation of the rejuvenation clock",
		Headers: []string{"Stages", "E[R] (exact CTMC of approximation)", "abs. err vs simulation"},
	}
	for i, k := range r.Stages {
		t.AddRow(fmt.Sprintf("%d", k), f6(r.Values[i]), f6(math.Abs(r.Values[i]-r.Simulated)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("DSPN simulation reference: %s", f6(r.Simulated)))
	return t.String()
}
