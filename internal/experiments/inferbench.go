package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// InferBenchConfig parameterises the fused-GEMM inference micro-benchmark.
type InferBenchConfig struct {
	// BatchSizes to measure (default 1, 8, 32).
	BatchSizes []int
	// Iters is the number of timed batch inferences per measurement.
	Iters int
	// GemmWorkers is the row-tile fan-out of the fused path (<= 1
	// sequential); predictions are identical for every value.
	GemmWorkers int
	Seed        uint64
}

// DefaultInferBenchConfig returns the measurement grid used by EXPERIMENTS.md.
func DefaultInferBenchConfig() InferBenchConfig {
	return InferBenchConfig{BatchSizes: []int{1, 8, 32}, Iters: 30, Seed: 1}
}

// InferBenchRow is one (model, batch size) measurement: the per-sample
// Forward loop against the fused batched-GEMM arena path.
type InferBenchRow struct {
	Model        string
	Batch        int
	PerSampleNs  float64 // wall time per batch, per-sample path
	FusedNs      float64 // wall time per batch, fused arena path
	Speedup      float64
	FusedMallocs float64 // heap objects per batch on the fused path
}

// InferBenchResult is the full measurement grid.
type InferBenchResult struct {
	GemmWorkers int
	Rows        []InferBenchRow
}

// RunInferBench measures the serving hot path: per-sample Forward versus the
// fused batched-GEMM arena path, for every architecture and batch size. The
// two paths are differentially checked on every iteration — a prediction
// mismatch fails the run, so the speedup numbers can never come from a
// diverging kernel.
func RunInferBench(cfg InferBenchConfig) (*InferBenchResult, error) {
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 8, 32}
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 30
	}
	res := &InferBenchResult{GemmWorkers: cfg.GemmWorkers}
	for _, name := range nn.AllModels() {
		net, err := nn.NewModel(name, 7, xrand.New(cfg.Seed+uint64(name)))
		if err != nil {
			return nil, err
		}
		for _, bsz := range cfg.BatchSizes {
			row, err := benchOne(net, name.String(), bsz, cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func benchOne(net *nn.Network, model string, bsz int, cfg InferBenchConfig) (InferBenchRow, error) {
	r := xrand.New(cfg.Seed + uint64(bsz))
	samples := make([]*tensor.Tensor, bsz)
	for i := range samples {
		x := tensor.New(nn.InputChannels, nn.InputSize, nn.InputSize)
		x.RandomizeUniform(r, 0, 1)
		samples[i] = x
	}
	batch, err := nn.Stack(samples)
	if err != nil {
		return InferBenchRow{}, err
	}

	ar := nn.NewInferenceArena()
	ar.GemmWorkers = cfg.GemmWorkers
	preds, err := net.PredictBatchArena(batch, ar, nil) // warm the arena
	if err != nil {
		return InferBenchRow{}, err
	}

	// Per-sample path: one Forward per sample, as the pre-fusion serving
	// loop did.
	perSample := func() ([]int, error) {
		out := make([]int, bsz)
		for i, x := range samples {
			c, err := net.Predict(x)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}

	start := time.Now()
	for it := 0; it < cfg.Iters; it++ {
		ref, err := perSample()
		if err != nil {
			return InferBenchRow{}, err
		}
		for i, c := range ref {
			if c != preds[i] {
				return InferBenchRow{}, fmt.Errorf(
					"inferbench: %s batch %d sample %d: fused class %d, per-sample %d",
					model, bsz, i, preds[i], c)
			}
		}
	}
	perNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Iters)

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	for it := 0; it < cfg.Iters; it++ {
		if preds, err = net.PredictBatchArena(batch, ar, preds); err != nil {
			return InferBenchRow{}, err
		}
	}
	fusedNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Iters)
	runtime.ReadMemStats(&ms1)

	return InferBenchRow{
		Model:        model,
		Batch:        bsz,
		PerSampleNs:  perNs,
		FusedNs:      fusedNs,
		Speedup:      perNs / fusedNs,
		FusedMallocs: float64(ms1.Mallocs-ms0.Mallocs) / float64(cfg.Iters),
	}, nil
}

// Render formats the grid as an aligned table.
func (r *InferBenchResult) Render() string {
	t := &Table{
		Title:   "Fused batched-GEMM inference vs per-sample Forward",
		Headers: []string{"Model", "Batch", "Per-sample/batch", "Fused/batch", "Speedup", "Fused mallocs/batch"},
		Notes: []string{fmt.Sprintf(
			"gemm workers: %d; predictions differentially verified each iteration", r.GemmWorkers)},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Model,
			fmt.Sprintf("%d", row.Batch),
			time.Duration(row.PerSampleNs).String(),
			time.Duration(row.FusedNs).String(),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.1f", row.FusedMallocs))
	}
	return t.String()
}
