package experiments

import (
	"fmt"
	"runtime"
	"time"

	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// InferBenchConfig parameterises the fused-GEMM inference micro-benchmark.
type InferBenchConfig struct {
	// BatchSizes to measure (default 1, 8, 32).
	BatchSizes []int
	// Iters is the number of timed batch inferences per measurement.
	Iters int
	// GemmWorkers is the row-tile fan-out of the fused path (<= 1
	// sequential); predictions are identical for every value.
	GemmWorkers int
	// Int8 additionally measures the quantized fixed-point path (per-layer
	// symmetric scales calibrated on the benchmark inputs).
	Int8 bool
	Seed uint64
}

// DefaultInferBenchConfig returns the measurement grid used by EXPERIMENTS.md.
func DefaultInferBenchConfig() InferBenchConfig {
	return InferBenchConfig{BatchSizes: []int{1, 8, 32}, Iters: 30, Seed: 1}
}

// InferBenchRow is one (model, batch size) measurement: the per-sample
// Forward loop against the arena paths — the unpacked fused kernels, the
// packed register-blocked kernels (bitwise identical, differentially checked
// every iteration), and optionally the int8 quantized path.
type InferBenchRow struct {
	Model         string
	Batch         int
	PerSampleNs   float64 // wall time per batch, per-sample path
	FusedNs       float64 // wall time per batch, unpacked fused arena path
	PackedNs      float64 // wall time per batch, packed arena path
	Int8Ns        float64 // wall time per batch, int8 path (0 unless enabled)
	Speedup       float64 // per-sample / fused
	PackedSpeedup float64 // per-sample / packed
	Int8Speedup   float64 // per-sample / int8 (0 unless enabled)
	Int8Match     float64 // fraction of int8 predictions agreeing with float
	FusedMallocs  float64 // heap objects per batch on the packed path
}

// InferBenchResult is the full measurement grid.
type InferBenchResult struct {
	GemmWorkers int
	Int8        bool
	Rows        []InferBenchRow
}

// RunInferBench measures the serving hot path: per-sample Forward versus the
// arena paths, for every architecture and batch size. The float paths are
// differentially checked on every iteration — a prediction mismatch fails
// the run, so the speedup numbers can never come from a diverging kernel.
// The int8 path reports its decision-agreement fraction instead (quantized
// logits may legitimately flip borderline argmaxes; the committed golden
// corpus in internal/nn pins the samples where they must not).
func RunInferBench(cfg InferBenchConfig) (*InferBenchResult, error) {
	if len(cfg.BatchSizes) == 0 {
		cfg.BatchSizes = []int{1, 8, 32}
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 30
	}
	res := &InferBenchResult{GemmWorkers: cfg.GemmWorkers, Int8: cfg.Int8}
	for _, name := range nn.AllModels() {
		net, err := nn.NewModel(name, 7, xrand.New(cfg.Seed+uint64(name)))
		if err != nil {
			return nil, err
		}
		for _, bsz := range cfg.BatchSizes {
			row, err := benchOne(net, name.String(), bsz, cfg)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func benchOne(net *nn.Network, model string, bsz int, cfg InferBenchConfig) (InferBenchRow, error) {
	r := xrand.New(cfg.Seed + uint64(bsz))
	samples := make([]*tensor.Tensor, bsz)
	for i := range samples {
		x := tensor.New(nn.InputChannels, nn.InputSize, nn.InputSize)
		x.RandomizeUniform(r, 0, 1)
		samples[i] = x
	}
	batch, err := nn.Stack(samples)
	if err != nil {
		return InferBenchRow{}, err
	}

	arFused := nn.NewInferenceArena()
	arFused.GemmWorkers = cfg.GemmWorkers
	arFused.DisablePacking = true
	arPacked := nn.NewInferenceArena()
	arPacked.GemmWorkers = cfg.GemmWorkers
	preds, err := net.PredictBatchArena(batch, arFused, nil) // warm both arenas
	if err != nil {
		return InferBenchRow{}, err
	}
	packedPreds, err := net.PredictBatchArena(batch, arPacked, nil)
	if err != nil {
		return InferBenchRow{}, err
	}

	// Per-sample path: one Forward per sample, as the pre-fusion serving
	// loop did.
	perSample := func() ([]int, error) {
		out := make([]int, bsz)
		for i, x := range samples {
			c, err := net.Predict(x)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}

	start := time.Now()
	for it := 0; it < cfg.Iters; it++ {
		ref, err := perSample()
		if err != nil {
			return InferBenchRow{}, err
		}
		for i, c := range ref {
			if c != preds[i] {
				return InferBenchRow{}, fmt.Errorf(
					"inferbench: %s batch %d sample %d: fused class %d, per-sample %d",
					model, bsz, i, preds[i], c)
			}
			if c != packedPreds[i] {
				return InferBenchRow{}, fmt.Errorf(
					"inferbench: %s batch %d sample %d: packed class %d, per-sample %d",
					model, bsz, i, packedPreds[i], c)
			}
		}
	}
	perNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Iters)

	start = time.Now()
	for it := 0; it < cfg.Iters; it++ {
		if preds, err = net.PredictBatchArena(batch, arFused, preds); err != nil {
			return InferBenchRow{}, err
		}
	}
	fusedNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Iters)

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start = time.Now()
	for it := 0; it < cfg.Iters; it++ {
		if packedPreds, err = net.PredictBatchArena(batch, arPacked, packedPreds); err != nil {
			return InferBenchRow{}, err
		}
	}
	packedNs := float64(time.Since(start).Nanoseconds()) / float64(cfg.Iters)
	runtime.ReadMemStats(&ms1)

	row := InferBenchRow{
		Model:         model,
		Batch:         bsz,
		PerSampleNs:   perNs,
		FusedNs:       fusedNs,
		PackedNs:      packedNs,
		Speedup:       perNs / fusedNs,
		PackedSpeedup: perNs / packedNs,
		FusedMallocs:  float64(ms1.Mallocs-ms0.Mallocs) / float64(cfg.Iters),
	}

	if cfg.Int8 {
		calib := make([]nn.Sample, len(samples))
		for i, x := range samples {
			calib[i] = nn.Sample{X: x}
		}
		quant, err := nn.CalibrateInt8(net, calib, 32)
		if err != nil {
			return InferBenchRow{}, err
		}
		arInt8 := nn.NewInferenceArena()
		arInt8.GemmWorkers = cfg.GemmWorkers
		arInt8.Quant = quant
		int8Preds, err := net.PredictBatchArena(batch, arInt8, nil) // warm
		if err != nil {
			return InferBenchRow{}, err
		}
		match := 0
		for i, c := range int8Preds {
			if c == packedPreds[i] {
				match++
			}
		}
		row.Int8Match = float64(match) / float64(bsz)
		start = time.Now()
		for it := 0; it < cfg.Iters; it++ {
			if int8Preds, err = net.PredictBatchArena(batch, arInt8, int8Preds); err != nil {
				return InferBenchRow{}, err
			}
		}
		row.Int8Ns = float64(time.Since(start).Nanoseconds()) / float64(cfg.Iters)
		row.Int8Speedup = perNs / row.Int8Ns
	}
	return row, nil
}

// Render formats the grid as an aligned table.
func (r *InferBenchResult) Render() string {
	t := &Table{
		Title: "Batched-GEMM inference vs per-sample Forward",
		Headers: []string{"Model", "Batch", "Per-sample/batch", "Fused/batch",
			"Packed/batch", "Fused x", "Packed x", "Packed mallocs/batch"},
		Notes: []string{fmt.Sprintf(
			"gemm workers: %d; float paths differentially verified each iteration", r.GemmWorkers)},
	}
	if r.Int8 {
		t.Headers = append(t.Headers, "Int8/batch", "Int8 x", "Int8 agree")
		t.Notes = append(t.Notes,
			"int8: per-layer symmetric scales calibrated on the bench inputs; agreement vs float argmax")
	}
	for _, row := range r.Rows {
		cells := []string{row.Model,
			fmt.Sprintf("%d", row.Batch),
			time.Duration(row.PerSampleNs).String(),
			time.Duration(row.FusedNs).String(),
			time.Duration(row.PackedNs).String(),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.2fx", row.PackedSpeedup),
			fmt.Sprintf("%.1f", row.FusedMallocs)}
		if r.Int8 {
			cells = append(cells,
				time.Duration(row.Int8Ns).String(),
				fmt.Sprintf("%.2fx", row.Int8Speedup),
				fmt.Sprintf("%.0f%%", row.Int8Match*100))
		}
		t.AddRow(cells...)
	}
	return t.String()
}
