package experiments

import (
	"strings"
	"testing"

	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

// quickCaseStudy reduces the repetitions to keep the suite fast while still
// covering all eight routes.
func quickCaseStudy() CaseStudyConfig {
	cfg := DefaultCaseStudyConfig()
	cfg.RunsPerRoute = 2
	return cfg
}

func TestRunTableVIShape(t *testing.T) {
	res, err := RunTableVI(quickCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.With) != 8 || len(res.Without) != 8 {
		t.Fatalf("route rows: %d/%d, want 8/8", len(res.With), len(res.Without))
	}
	_, _, withRate, withColl, _, _ := totals(res.With)
	_, _, withoutRate, withoutColl, withoutRuns, _ := totals(res.Without)
	if withColl != 0 {
		t.Errorf("with rejuvenation: %d collided runs, want 0", withColl)
	}
	if withoutColl < withoutRuns/2 {
		t.Errorf("without rejuvenation: only %d/%d runs collided", withoutColl, withoutRuns)
	}
	if withoutRate <= withRate+5 {
		t.Errorf("collision rates: w/o %.2f%% should far exceed w/ %.2f%%", withoutRate, withRate)
	}
	out := res.Render()
	for _, want := range []string{"Town02", "Avg/Total", "#Coll"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestRunTableVIIShape(t *testing.T) {
	cfg := DefaultCaseStudyConfig()
	cfg.RunsPerRoute = 3
	res, err := RunTableVII(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	if res.Rows[0].Interval != 3 || res.Rows[3].Interval != 9 {
		t.Fatalf("unexpected intervals: %+v", res.Rows)
	}
	// The 3 s interval keeps driving safe; longer intervals must not be
	// strictly safer overall.
	if res.Rows[0].CollidedRuns != 0 {
		t.Errorf("3s interval collided %d times, want 0", res.Rows[0].CollidedRuns)
	}
	longTotal := res.Rows[1].CollidedRuns + res.Rows[2].CollidedRuns + res.Rows[3].CollidedRuns
	if longTotal == 0 {
		t.Error("longer intervals produced no collisions at all — sweep shows no effect")
	}
	if !strings.Contains(res.Render(), "1/gamma") {
		t.Fatal("render broken")
	}
}

func TestRunTableVIIIShape(t *testing.T) {
	res, err := RunTableVIII(DefaultCaseStudyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	single, three, threeRej := res.Rows[0], res.Rows[1], res.Rows[2]
	if single.FPS.Mean <= three.FPS.Mean {
		t.Error("single-version FPS should exceed three-version")
	}
	ratio := three.FPS.Mean / single.FPS.Mean
	if ratio < 0.6 || ratio > 0.85 {
		t.Errorf("3v/1v FPS ratio %.3f outside the paper's ≈0.73 band", ratio)
	}
	if threeRej.FPS.Mean >= three.FPS.Mean {
		t.Error("rejuvenation reload stall should cost some FPS")
	}
	if single.GPU.Mean >= three.GPU.Mean {
		t.Error("GPU utilisation should grow with versions")
	}
	// The paper: rejuvenation makes no significant GPU difference (CI
	// overlap between the two three-version rows).
	if !threeRej.GPU.Overlaps(three.GPU) && three.GPU.Mean-threeRej.GPU.Mean < 0.5 {
		t.Error("rejuvenation GPU cost should be statistically insignificant")
	}
	if !strings.Contains(res.Render(), "Three-v w/rej") {
		t.Fatal("render broken")
	}
}

func TestVotingAblation(t *testing.T) {
	cfg := quickCaseStudy()
	res, err := RunVotingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	quorum, list, unanimous := res.Rows[0], res.Rows[1], res.Rows[2]
	// The object-level quorum voter should skip least; unanimity most.
	if quorum.SkipRatio >= unanimous.SkipRatio {
		t.Errorf("quorum skip %.3f should undercut unanimity %.3f",
			quorum.SkipRatio, unanimous.SkipRatio)
	}
	if list.SkipRatio <= quorum.SkipRatio {
		t.Errorf("list voting skip %.3f should exceed quorum %.3f",
			list.SkipRatio, quorum.SkipRatio)
	}
	if !strings.Contains(res.Render(), "quorum") {
		t.Fatal("render broken")
	}
}

func TestSelectionAblation(t *testing.T) {
	res, err := RunSelectionAblation(quickCaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Runs != 16 {
			t.Fatalf("row %s ran %d times, want 16", row.Name, row.Runs)
		}
	}
}

func TestClockAblation(t *testing.T) {
	res, err := RunClockAblation(DefaultCaseStudyConfig().System, 50_000, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// Per-module clocks triple the compromise arrival rate, so the system
	// spends more time with a degraded majority.
	if res.PerModuleDegraded <= res.SharedDegraded {
		t.Errorf("per-module clocks (%.4f) should be more degraded than shared (%.4f)",
			res.PerModuleDegraded, res.SharedDegraded)
	}
	if !strings.Contains(res.Render(), "single-server") {
		t.Fatal("render broken")
	}
}

func TestErlangConvergence(t *testing.T) {
	res, err := RunErlangConvergence(reliability.DefaultParams(), []int{1, 5, 20}, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Fatalf("%d values, want 3", len(res.Values))
	}
	errAt := func(i int) float64 {
		d := res.Values[i] - res.Simulated
		if d < 0 {
			d = -d
		}
		return d
	}
	if errAt(2) > errAt(0) {
		t.Errorf("Erlang-20 error %.5f should not exceed Erlang-1 error %.5f", errAt(2), errAt(0))
	}
	if errAt(2) > 0.005 {
		t.Errorf("Erlang-20 should approximate the DSPN within 0.005, got %.5f", errAt(2))
	}
	if !strings.Contains(res.Render(), "Stages") {
		t.Fatal("render broken")
	}
}
