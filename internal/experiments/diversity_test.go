package experiments

import (
	"strings"
	"testing"
)

func TestDiversityStudyMechanics(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	cfg := tinyTableIIConfig()
	res, err := RunDiversityStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	byArm := map[DiversityArm]DiversityRow{}
	for _, row := range res.Rows {
		byArm[row.Arm] = row
		if row.Alpha < 0 || row.Alpha > 1 {
			t.Errorf("%v: alpha %v outside [0,1]", row.Arm, row.Alpha)
		}
		if row.MeanAccuracy <= 1.0/43 {
			t.Errorf("%v: models at or below chance (%.3f)", row.Arm, row.MeanAccuracy)
		}
		if row.VotedAccuracy < 0 || row.VotedAccuracy > 1 {
			t.Errorf("%v: voted accuracy %v", row.Arm, row.VotedAccuracy)
		}
	}
	// Init-only clones share data and architecture, so their errors should
	// be the most correlated of the three arms.
	if byArm[DiversityNone].Alpha < byArm[DiversityArchitecture].Alpha-0.1 {
		t.Errorf("init-only alpha %.3f unexpectedly far below architecture-diversity alpha %.3f",
			byArm[DiversityNone].Alpha, byArm[DiversityArchitecture].Alpha)
	}
	if !strings.Contains(res.Render(), "architecture diversity") {
		t.Fatal("render broken")
	}
}

func TestFaultSensitivityMechanics(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	res, err := RunFaultSensitivity(tinyTableIIConfig(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Campaigns) != 2 {
		t.Fatalf("%d campaigns, want 2", len(res.Campaigns))
	}
	for _, c := range res.Campaigns {
		if len(c.Layers) != 5 { // LeNetSmall has 5 parameterised layers
			t.Fatalf("%v swept %d layers, want 5", c.Kind, len(c.Layers))
		}
		for _, l := range c.Layers {
			// A single fault can only lower accuracy on average.
			if l.MeanAccuracy > c.Baseline+0.02 {
				t.Errorf("%v layer %d mean accuracy %v above baseline %v",
					c.Kind, l.Layer, l.MeanAccuracy, c.Baseline)
			}
		}
	}
	if _, err := RunFaultSensitivity(tinyTableIIConfig(), 0, 0); err == nil {
		t.Fatal("expected error for zero trials")
	}
}
