package experiments

import (
	"fmt"

	"mvml/internal/core"
	"mvml/internal/nn"
	"mvml/internal/reliability"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// The diversity study implements another of the paper's future-work
// directions (§VIII: "other aspects of diversification, such as input, ML
// models, and training dataset diversity"): it measures how three sources of
// ensemble diversity change the error-dependency factor α and the voted
// 2-out-of-3 accuracy.

// DiversityArm names one diversification strategy.
type DiversityArm int

// The diversification strategies under study.
const (
	// DiversityNone trains three copies of the same architecture on the
	// same data; only the weight initialisation differs.
	DiversityNone DiversityArm = iota + 1
	// DiversityData trains three copies of the same architecture on
	// disjoint thirds of the training set.
	DiversityData
	// DiversityArchitecture trains the three different architectures on
	// the same data — the paper's own setup.
	DiversityArchitecture
)

func (a DiversityArm) String() string {
	switch a {
	case DiversityNone:
		return "init only (same arch, same data)"
	case DiversityData:
		return "training-data diversity (same arch)"
	case DiversityArchitecture:
		return "architecture diversity (paper setup)"
	default:
		return fmt.Sprintf("DiversityArm(%d)", int(a))
	}
}

// DiversityRow is the measurement for one arm.
type DiversityRow struct {
	Arm DiversityArm
	// MeanAccuracy is the mean single-model accuracy.
	MeanAccuracy float64
	// Alpha is the measured error dependency (Eq. 9).
	Alpha float64
	// VotedAccuracy is the 2-out-of-3 majority-voted accuracy.
	VotedAccuracy float64
	// SkipRatio is the voter's skip ratio on the test set.
	SkipRatio float64
}

// DiversityResult is the full study.
type DiversityResult struct {
	Rows []DiversityRow
}

// RunDiversityStudy trains each arm's ensemble and evaluates it on the
// shared test set.
func RunDiversityStudy(cfg TableIIConfig) (*DiversityResult, error) {
	ds, err := signs.Generate(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed + 99)
	res := &DiversityResult{}
	for _, arm := range []DiversityArm{DiversityNone, DiversityData, DiversityArchitecture} {
		row, err := runDiversityArm(arm, cfg, ds, root.Split("arm", uint64(arm)))
		if err != nil {
			return nil, fmt.Errorf("experiments: diversity arm %v: %w", arm, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runDiversityArm(arm DiversityArm, cfg TableIIConfig, ds *signs.Dataset, rng *xrand.Rand) (DiversityRow, error) {
	var nets []*nn.Network
	for i := 0; i < 3; i++ {
		var net *nn.Network
		var err error
		if arm == DiversityArchitecture {
			net, err = nn.NewModel(nn.AllModels()[i], signs.NumClasses, rng.Split("init", uint64(i)))
			if err != nil {
				return DiversityRow{}, err
			}
		} else {
			net = nn.NewLeNetSmall(signs.NumClasses, rng.Split("init", uint64(i)))
			// Distinguish the three same-architecture versions by name so
			// the multi-version system accepts them.
			net.Name = fmt.Sprintf("lenet-small-%d", i+1)
		}
		train := ds.Train
		if arm == DiversityData {
			// Disjoint thirds.
			third := len(ds.Train) / 3
			train = ds.Train[i*third : (i+1)*third]
		}
		if err := Train(net, train, cfg, rng.Split("train", uint64(i))); err != nil {
			return DiversityRow{}, err
		}
		nets = append(nets, net)
	}

	row := DiversityRow{Arm: arm}
	var errorSets []map[int]bool
	var accSum float64
	for _, net := range nets {
		acc, err := net.Accuracy(ds.Test)
		if err != nil {
			return DiversityRow{}, err
		}
		accSum += acc
		errs, err := net.ErrorSet(ds.Test)
		if err != nil {
			return DiversityRow{}, err
		}
		errorSets = append(errorSets, errs)
	}
	row.MeanAccuracy = accSum / 3
	row.Alpha = reliability.AlphaThreeVersion(errorSets[0], errorSets[1], errorSets[2])

	// Voted accuracy over the real model outputs.
	var versions []core.Version[*tensor.Tensor, int]
	for _, net := range nets {
		v, err := core.NewNNVersion(net, nil)
		if err != nil {
			return DiversityRow{}, err
		}
		versions = append(versions, v)
	}
	sys, err := core.NewSystem[*tensor.Tensor, int](
		versions, core.NewEqualityVoter[int](), core.Config{DisableFaults: true}, rng.Split("sys", 0))
	if err != nil {
		return DiversityRow{}, err
	}
	correct := 0
	for i, sample := range ds.Test {
		d, _, err := sys.Infer(float64(i), sample.X)
		if err != nil {
			return DiversityRow{}, err
		}
		if !d.Skipped && d.Value == sample.Label {
			correct++
		}
	}
	row.VotedAccuracy = float64(correct) / float64(len(ds.Test))
	row.SkipRatio = sys.Stats().SkipRatio()
	return row, nil
}

// Render formats the study.
func (r *DiversityResult) Render() string {
	t := &Table{
		Title:   "Extension: sources of ensemble diversity (paper future work)",
		Headers: []string{"Diversity", "Mean acc.", "alpha", "2oo3 voted acc.", "Skip ratio"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Arm.String(), f6(row.MeanAccuracy), f6(row.Alpha),
			f6(row.VotedAccuracy), f3(row.SkipRatio))
	}
	t.Notes = append(t.Notes, "lower alpha = more independent errors = more maskable by voting")
	return t.String()
}
