package experiments

import (
	"fmt"

	"mvml/internal/core"
	"mvml/internal/parallel"
	"mvml/internal/xrand"
)

// The N-version study implements the paper's stated future work ("systems
// with more replicas and under different voting schemes", §IX): it runs
// synthetic ensembles of one to five versions behind majority, plurality
// and unanimous voters, with and without proactive rejuvenation, and
// measures the empirical output reliability of the full runtime system.

// NVersionStudyConfig parameterises RunNVersionStudy.
type NVersionStudyConfig struct {
	// MaxVersions is the largest ensemble size (>= 1).
	MaxVersions int
	// Requests is the number of inference rounds per configuration.
	Requests int
	// Period is the simulated time between requests (s).
	Period float64
	// Ensemble sets the per-version error behaviour (Versions is
	// overridden per row).
	Ensemble core.SyntheticEnsembleConfig
	// System sets fault/rejuvenation timing; the without arm clears the
	// proactive interval.
	System core.Config
	// Seed drives the runs.
	Seed uint64
	// Workers bounds concurrent (ensemble size, voter) configurations
	// (<= 0 = GOMAXPROCS). Every configuration seeds its own streams from
	// Seed, so results are identical for every worker count.
	Workers int
}

// DefaultNVersionStudyConfig uses the paper's fitted error parameters and a
// fault process scaled so modules cycle through H/C/N many times per run.
func DefaultNVersionStudyConfig() NVersionStudyConfig {
	return NVersionStudyConfig{
		MaxVersions: 5,
		Requests:    60_000,
		Period:      0.05,
		Ensemble: core.SyntheticEnsembleConfig{
			Classes: 43,
			P:       0.062893,
			PPrime:  0.240406,
			Alpha:   0.369953,
			Seed:    38,
		},
		System: core.Config{
			MeanTimeToCompromise:      60,
			MeanTimeToFailure:         60,
			MeanReactiveRejuvenation:  0.5,
			MeanProactiveRejuvenation: 0.5,
			RejuvenationInterval:      15,
		},
		Seed: 7,
	}
}

// NVersionRow is one (ensemble size, voter) configuration.
type NVersionRow struct {
	Versions int
	Voter    string
	// ReliabilityWith/Without is the fraction of requests answered
	// correctly (skips are not errors but also not correct answers).
	ReliabilityWith, ReliabilityWithout float64
	// ErrorFreeWith/Without is 1 - wrong/requests: the paper's notion of
	// output reliability, under which a safe skip is not a failure (it is
	// what makes the two-version system so strong in Table V).
	ErrorFreeWith, ErrorFreeWithout float64
	// SkipWith/Without is the skip ratio of each arm.
	SkipWith, SkipWithout float64
}

// NVersionStudyResult is the full sweep.
type NVersionStudyResult struct {
	Rows []NVersionRow
}

// voterChoices returns the voting schemes under study.
func voterChoices() []struct {
	name  string
	voter core.Voter[int]
} {
	return []struct {
		name  string
		voter core.Voter[int]
	}{
		{"majority", core.NewEqualityVoter[int]()},
		{"plurality", core.NewPluralityVoter[int]()},
		{"unanimous", core.NewUnanimousVoter[int]()},
	}
}

// RunNVersionStudy measures empirical output reliability for every
// configuration in the sweep.
func RunNVersionStudy(cfg NVersionStudyConfig) (*NVersionStudyResult, error) {
	if cfg.MaxVersions < 1 {
		return nil, fmt.Errorf("experiments: MaxVersions %d < 1", cfg.MaxVersions)
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("experiments: Requests %d < 1", cfg.Requests)
	}
	// Enumerate the sweep's (ensemble size, voter) configurations, then fan
	// them out. Every configuration is self-contained: it derives all of
	// its streams from fresh generators seeded by cfg.Seed and builds
	// private ensembles and voters, so the rows — collected in enumeration
	// order — are identical for every worker count.
	type rowSpec struct{ versions, voterIdx int }
	var specs []rowSpec
	for n := 1; n <= cfg.MaxVersions; n++ {
		for vi, vc := range voterChoices() {
			if n == 1 && vc.name != "majority" {
				continue // all voters coincide for a single version
			}
			specs = append(specs, rowSpec{versions: n, voterIdx: vi})
		}
	}
	rows, err := parallel.Run(xrand.New(cfg.Seed), "row", len(specs),
		parallel.Options{Workers: cfg.Workers},
		func(rep int, _ *xrand.Rand) (NVersionRow, error) {
			spec := specs[rep]
			n := spec.versions
			vc := voterChoices()[spec.voterIdx]
			row := NVersionRow{Versions: n, Voter: vc.name}
			for _, rejuvenate := range []bool{true, false} {
				sysCfg := cfg.System
				if !rejuvenate {
					sysCfg.RejuvenationInterval = 0
				}
				ensembleCfg := cfg.Ensemble
				ensembleCfg.Versions = n
				versions, err := core.NewSyntheticEnsemble(ensembleCfg)
				if err != nil {
					return NVersionRow{}, err
				}
				sys, err := core.NewSystem[core.LabeledInput, int](
					versions, vc.voter, sysCfg,
					xrand.New(cfg.Seed).Split("sys", uint64(n*10)+boolBit(rejuvenate)))
				if err != nil {
					return NVersionRow{}, err
				}
				inputs := xrand.New(cfg.Seed).Split("inputs", 0)
				correct, wrong := 0, 0
				for i := 0; i < cfg.Requests; i++ {
					truth := inputs.Intn(ensembleCfg.Classes)
					d, _, err := sys.Infer(float64(i)*cfg.Period, core.LabeledInput{ID: i, Truth: truth})
					if err != nil {
						return NVersionRow{}, err
					}
					switch {
					case d.Skipped:
					case d.Value == truth:
						correct++
					default:
						wrong++
					}
				}
				rel := float64(correct) / float64(cfg.Requests)
				errFree := 1 - float64(wrong)/float64(cfg.Requests)
				skip := sys.Stats().SkipRatio()
				if rejuvenate {
					row.ReliabilityWith = rel
					row.ErrorFreeWith = errFree
					row.SkipWith = skip
				} else {
					row.ReliabilityWithout = rel
					row.ErrorFreeWithout = errFree
					row.SkipWithout = skip
				}
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return &NVersionStudyResult{Rows: rows}, nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Render formats the study.
func (r *NVersionStudyResult) Render() string {
	t := &Table{
		Title: "Extension: N-version systems and voting schemes (paper future work)",
		Headers: []string{"Versions", "Voter", "Correct w/", "Correct w/o",
			"ErrFree w/", "ErrFree w/o", "Skip w/", "Skip w/o"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Versions), row.Voter,
			f6(row.ReliabilityWith), f6(row.ReliabilityWithout),
			f6(row.ErrorFreeWith), f6(row.ErrorFreeWithout),
			f3(row.SkipWith), f3(row.SkipWithout))
	}
	t.Notes = append(t.Notes,
		"Correct = correct answers / requests; ErrFree = 1 - wrong answers / requests",
		"(the paper's output reliability treats a safe skip as a non-failure -> ErrFree)")
	return t.String()
}
