package experiments

import (
	"fmt"
	"sort"

	"mvml/internal/petri"
	"mvml/internal/reliability"
	"mvml/internal/stats"
	"mvml/internal/xrand"
)

// TableIIIResult lists the reliability-function value of every reachable
// system state (the paper's Table III).
type TableIIIResult struct {
	Params reliability.Params
	States []reliability.State
	Values []float64
}

// RunTableIII evaluates the reliability functions of Section V-B for every
// (i, j, k) state with 1–3 functional modules.
func RunTableIII(params reliability.Params) (*TableIIIResult, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	res := &TableIIIResult{Params: params}
	// The paper's Table III lists the states in this order.
	states := []reliability.State{
		{Healthy: 3}, {Healthy: 2, NonFunctional: 1}, {Healthy: 2, Compromised: 1},
		{Healthy: 1, NonFunctional: 2}, {Healthy: 1, Compromised: 1, NonFunctional: 1},
		{Healthy: 1, Compromised: 2}, {Compromised: 3}, {Compromised: 2, NonFunctional: 1},
		{Compromised: 1, NonFunctional: 2},
	}
	for _, s := range states {
		v, err := params.StateReliability(s)
		if err != nil {
			return nil, err
		}
		res.States = append(res.States, s)
		res.Values = append(res.Values, v)
	}
	return res, nil
}

// Render formats the result like the paper's Table III.
func (r *TableIIIResult) Render() string {
	t := &Table{
		Title:   "Table III: output reliability of the reliability functions per system state",
		Headers: []string{"System state", "Reliability"},
	}
	for i, s := range r.States {
		t.AddRow(s.String(), f9(r.Values[i]))
	}
	return t.String()
}

// RenderTableIV prints the model input parameters (the paper's Table IV).
func RenderTableIV(p reliability.Params) string {
	t := &Table{
		Title:   "Table IV: default input parameters for the DSPN models",
		Headers: []string{"Param", "Description", "Value"},
	}
	t.AddRow("alpha", "Error probability dependency", f6(p.Alpha))
	t.AddRow("p", "Output failure probability (healthy)", f6(p.P))
	t.AddRow("p'", "Output failure probability (compromised)", f6(p.PPrime))
	t.AddRow("1/lambda_c", "Mean time to compromise a module", fmt.Sprintf("%.0f s", p.MeanTimeToCompromise))
	t.AddRow("1/lambda", "Module's mean time to failure", fmt.Sprintf("%.0f s", p.MeanTimeToFailure))
	t.AddRow("1/mu", "Mean time to reactive rejuvenate", fmt.Sprintf("%.1f s", p.MeanReactiveRejuvenation))
	t.AddRow("1/mu_r", "Mean time to proactive rejuvenate", fmt.Sprintf("%.1f s", p.MeanProactiveRejuvenation))
	t.AddRow("1/gamma", "Rejuvenation interval", fmt.Sprintf("%.0f s", p.RejuvenationInterval))
	return t.String()
}

// TableVResult holds the steady-state reliabilities of the six
// configurations (1/2/3 versions × with/without proactive rejuvenation).
type TableVResult struct {
	Params  reliability.Params
	Without [4]float64 // index by n (1..3)
	With    [4]float64
	WithCI  [4]stats.Interval
}

// RunTableV solves the DSPN models of Figs. 2 and 3 for one-, two- and
// three-version systems: the without-proactive column exactly via the
// embedded CTMC, the with-proactive column by Monte-Carlo simulation of the
// deterministic-clock DSPN.
func RunTableV(params reliability.Params, simCfg petri.SimConfig, rng *xrand.Rand) (*TableVResult, error) {
	res := &TableVResult{Params: params}
	for n := 1; n <= 3; n++ {
		without, err := reliability.NewModel(n, params, false)
		if err != nil {
			return nil, err
		}
		exact, err := without.SolveExact()
		if err != nil {
			return nil, fmt.Errorf("experiments: table V %d-version exact: %w", n, err)
		}
		res.Without[n] = exact.Expected

		with, err := reliability.NewModel(n, params, true)
		if err != nil {
			return nil, err
		}
		sim, err := with.SolveSimulation(simCfg, rng.Split("tableV", uint64(n)))
		if err != nil {
			return nil, fmt.Errorf("experiments: table V %d-version simulation: %w", n, err)
		}
		res.With[n] = sim.Expected
		res.WithCI[n] = sim.CI
	}
	return res, nil
}

// Render formats the result like the paper's Table V.
func (r *TableVResult) Render() string {
	t := &Table{
		Title:   "Table V: steady-state reliability with and without proactive rejuvenation",
		Headers: []string{"Configuration", "w/o rej.", "w/ rej."},
	}
	names := []string{"", "Single-version (baseline)", "Two-version", "Three-version"}
	for n := 1; n <= 3; n++ {
		t.AddRow(names[n], f6(r.Without[n]), f6(r.With[n]))
	}
	t.Notes = append(t.Notes,
		"w/o column: exact CTMC solution; w/ column: DSPN simulation",
		fmt.Sprintf("paper: 0.848211/0.920217, 0.943875/0.967152, 0.903190/0.952998"))
	return t.String()
}

// Fig4Point is one x-coordinate of a Fig. 4 sweep with the six series
// values.
type Fig4Point struct {
	X float64
	// Without and With are indexed by version count (1..3).
	Without [4]float64
	With    [4]float64
}

// Fig4Result is a full parameter sweep (one of Fig. 4 a–f).
type Fig4Result struct {
	Name   string // e.g. "4a"
	XLabel string
	Points []Fig4Point
}

// fig4Sweep evaluates the six configurations across a parameter sweep.
// mutate applies the x value to a copy of the base parameters.
func fig4Sweep(name, xlabel string, xs []float64, base reliability.Params,
	mutate func(reliability.Params, float64) reliability.Params,
	simCfg petri.SimConfig, rng *xrand.Rand) (*Fig4Result, error) {

	res := &Fig4Result{Name: name, XLabel: xlabel}
	for i, x := range xs {
		params := mutate(base, x)
		if err := params.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: fig %s at %v: %w", name, x, err)
		}
		point := Fig4Point{X: x}
		for n := 1; n <= 3; n++ {
			without, err := reliability.NewModel(n, params, false)
			if err != nil {
				return nil, err
			}
			exact, err := without.SolveExact()
			if err != nil {
				return nil, err
			}
			point.Without[n] = exact.Expected

			with, err := reliability.NewModel(n, params, true)
			if err != nil {
				return nil, err
			}
			sim, err := with.SolveSimulation(simCfg, rng.Split(name, uint64(i*4+n)))
			if err != nil {
				return nil, err
			}
			point.With[n] = sim.Expected
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Fig4Config selects the sweep grids; the zero value uses the paper's
// ranges.
type Fig4Config struct {
	// SimConfig is used for every with-rejuvenation solve.
	SimConfig petri.SimConfig
	// Points overrides the number of sweep points (0 = default grid).
	Points int
}

func sweepGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return xs
}

// RunFig4 produces one of the paper's Fig. 4 sweeps by letter (a–f).
func RunFig4(letter string, base reliability.Params, cfg Fig4Config, rng *xrand.Rand) (*Fig4Result, error) {
	simCfg := cfg.SimConfig
	if simCfg.Horizon == 0 {
		simCfg = reliability.DefaultSimConfig()
	}
	n := cfg.Points
	grid := func(lo, hi float64, def int) []float64 {
		if n > 0 {
			return sweepGrid(lo, hi, n)
		}
		return sweepGrid(lo, hi, def)
	}
	switch letter {
	case "a":
		return fig4Sweep("4a", "rejuvenation interval 1/gamma (s)", grid(50, 3000, 9), base,
			func(p reliability.Params, x float64) reliability.Params {
				p.RejuvenationInterval = x
				return p
			}, simCfg, rng)
	case "b":
		return fig4Sweep("4b", "rejuvenation duration 1/mu_r (s)", grid(0.1, 50, 9), base,
			func(p reliability.Params, x float64) reliability.Params {
				p.MeanProactiveRejuvenation = x
				return p
			}, simCfg, rng)
	case "c":
		return fig4Sweep("4c", "mean time to compromise 1/lambda_c (s)", grid(100, 7000, 9), base,
			func(p reliability.Params, x float64) reliability.Params {
				p.MeanTimeToCompromise = x
				return p
			}, simCfg, rng)
	case "d":
		return fig4Sweep("4d", "error dependency alpha", grid(0.1, 1.0, 10), base,
			func(p reliability.Params, x float64) reliability.Params {
				p.Alpha = x
				return p
			}, simCfg, rng)
	case "e":
		return fig4Sweep("4e", "healthy inaccuracy p", grid(0.01, 0.23, 9), base,
			func(p reliability.Params, x float64) reliability.Params {
				p.P = x
				return p
			}, simCfg, rng)
	case "f":
		return fig4Sweep("4f", "compromised inaccuracy p'", grid(0.1, 0.6, 9), base,
			func(p reliability.Params, x float64) reliability.Params {
				p.PPrime = x
				return p
			}, simCfg, rng)
	default:
		return nil, fmt.Errorf("experiments: unknown Fig. 4 sweep %q (want a-f)", letter)
	}
}

// Render formats the sweep as a series table.
func (r *Fig4Result) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Fig. %s: reliability vs %s", r.Name, r.XLabel),
		Headers: []string{r.XLabel,
			"1v w/o", "1v w/", "2v w/o", "2v w/", "3v w/o", "3v w/"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.4g", p.X),
			f6(p.Without[1]), f6(p.With[1]),
			f6(p.Without[2]), f6(p.With[2]),
			f6(p.Without[3]), f6(p.With[3]))
	}
	return t.String()
}

// Crossovers reports the x values at which one series overtakes another —
// the paper highlights, e.g., where a rejuvenated single version beats a
// non-rejuvenated three-version system in Fig. 4(e).
func (r *Fig4Result) Crossovers(seriesA, seriesB func(Fig4Point) float64) []float64 {
	var xs []float64
	for i := 1; i < len(r.Points); i++ {
		prev := seriesA(r.Points[i-1]) - seriesB(r.Points[i-1])
		cur := seriesA(r.Points[i]) - seriesB(r.Points[i])
		if (prev < 0 && cur >= 0) || (prev > 0 && cur <= 0) {
			xs = append(xs, r.Points[i].X)
		}
	}
	sort.Float64s(xs)
	return xs
}
