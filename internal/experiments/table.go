// Package experiments contains one harness per table and figure of the
// paper's evaluation (Tables II–VIII, Fig. 4a–f), plus the ablation studies
// called out in DESIGN.md. Each harness returns a structured result and can
// render itself as an aligned text table, so the cmd/ binaries and the
// benchmark suite share the same code paths.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
func f9(v float64) string { return fmt.Sprintf("%.9f", v) }
