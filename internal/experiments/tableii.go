package experiments

import (
	"fmt"

	"mvml/internal/faultinject"
	"mvml/internal/nn"
	"mvml/internal/reliability"
	"mvml/internal/signs"
	"mvml/internal/xrand"
)

// TableIIConfig controls the fault-injection experiment that reproduces the
// paper's Table II (healthy vs. compromised model accuracy on the traffic
// sign dataset) and yields the p, p′, α parameters used everywhere else.
type TableIIConfig struct {
	// Dataset is the synthetic traffic-sign dataset configuration.
	Dataset signs.Config
	// Epochs, BatchSize, LearningRate configure training (the paper uses
	// 20 epochs, batch 128, lr 0.001 on full GTSRB; our synthetic set is
	// smaller, so fewer epochs suffice).
	Epochs       int
	BatchSize    int
	LearningRate float64
	// InjectLayer, InjectMin, InjectMax parameterise the PyTorchFI-style
	// weight injection; the paper uses layer 1 with range (-10, 30).
	InjectLayer          int
	InjectMin, InjectMax float64
	// AccuracyBand is the target compromised-accuracy window relative to
	// the healthy accuracy (the paper searched seeds until all three
	// models had "similar (reduced) accuracy" around 0.75).
	BandLo, BandHi float64
	// MaxSeedTries bounds the per-model injection-seed search.
	MaxSeedTries uint64
	// Seed drives training initialisation.
	Seed uint64
}

// DefaultTableIIConfig returns the full-scale configuration.
func DefaultTableIIConfig() TableIIConfig {
	ds := signs.DefaultConfig()
	// The reproduction targets the paper's healthy-accuracy band
	// (0.92–0.96); the photometric difficulty is dialled so the three
	// small models land there with a laptop-scale training budget.
	ds.Noise = 0.07
	ds.BlurProb = 0.25
	ds.OcclusionProb = 0.15
	ds.LowContrastProb = 0.20
	ds.Jitter = 2
	return TableIIConfig{
		Dataset:      ds,
		Epochs:       20,
		BatchSize:    32,
		LearningRate: 0.04,
		InjectLayer:  1,
		InjectMin:    -10,
		InjectMax:    30,
		BandLo:       0.55,
		BandHi:       0.85,
		MaxSeedTries: 400,
		Seed:         38,
	}
}

// QuickTableIIConfig returns a reduced configuration for tests and
// benchmarks: fewer samples and epochs, same pipeline.
func QuickTableIIConfig() TableIIConfig {
	cfg := DefaultTableIIConfig()
	cfg.Dataset.TrainPerClass = 30
	cfg.Dataset.TestPerClass = 8
	cfg.Epochs = 12
	return cfg
}

// ModelAccuracy is one row of Table II.
type ModelAccuracy struct {
	Model               string
	Healthy             float64
	Compromised         float64
	InjectionSeed       uint64
	InjectionDescriptor string
}

// TableIIResult carries the trained models' accuracies and the derived
// reliability parameters (Eqs. 6–9).
type TableIIResult struct {
	Rows []ModelAccuracy
	// P, PPrime, Alpha are the fitted reliability-function parameters.
	P, PPrime, Alpha float64
	// PairwiseAlphas are α₁₂, α₁₃, α₂₃ (Eq. 8) of the healthy models.
	PairwiseAlphas [3]float64
}

// RunTableII trains the three classifier versions on the synthetic sign
// dataset, injects one calibrated weight fault per model to obtain the
// compromised versions, measures accuracies on the held-out test set, and
// derives p, p′ and α.
func RunTableII(cfg TableIIConfig) (*TableIIResult, error) {
	ds, err := signs.Generate(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating dataset: %w", err)
	}
	root := xrand.New(cfg.Seed)

	res := &TableIIResult{}
	var healthyAcc, compromisedAcc []float64
	var errorSets []map[int]bool

	for _, name := range nn.AllModels() {
		net, err := nn.NewModel(name, signs.NumClasses, root.Split("init", uint64(name)))
		if err != nil {
			return nil, err
		}
		if err := Train(net, ds.Train, cfg, root.Split("train", uint64(name))); err != nil {
			return nil, fmt.Errorf("experiments: training %s: %w", name, err)
		}
		healthy, err := net.Accuracy(ds.Test)
		if err != nil {
			return nil, err
		}
		errs, err := net.ErrorSet(ds.Test)
		if err != nil {
			return nil, err
		}
		errorSets = append(errorSets, errs)

		// Calibrate the compromise: search injection seeds until the
		// model's accuracy drops into the band (relative to healthy).
		calib, err := faultinject.CalibrateCompromise(
			net, ds.Test, cfg.InjectLayer, cfg.InjectMin, cfg.InjectMax,
			cfg.BandLo*healthy, cfg.BandHi*healthy, cfg.MaxSeedTries,
			root.Split("inject", uint64(name)))
		if err != nil {
			return nil, fmt.Errorf("experiments: compromising %s: %w", name, err)
		}
		res.Rows = append(res.Rows, ModelAccuracy{
			Model:               name.String(),
			Healthy:             healthy,
			Compromised:         calib.Accuracy,
			InjectionSeed:       calib.Seed,
			InjectionDescriptor: calib.Applied[0].String(),
		})
		healthyAcc = append(healthyAcc, healthy)
		compromisedAcc = append(compromisedAcc, calib.Accuracy)
	}

	if res.P, err = reliability.ErrorProbability(healthyAcc); err != nil {
		return nil, err
	}
	if res.PPrime, err = reliability.ErrorProbability(compromisedAcc); err != nil {
		return nil, err
	}
	res.PairwiseAlphas = [3]float64{
		reliability.AlphaPairwise(errorSets[0], errorSets[1]),
		reliability.AlphaPairwise(errorSets[0], errorSets[2]),
		reliability.AlphaPairwise(errorSets[1], errorSets[2]),
	}
	res.Alpha = reliability.AlphaThreeVersion(errorSets[0], errorSets[1], errorSets[2])
	return res, nil
}

// Train runs mini-batch SGD with momentum and step learning-rate decay over
// the training set for the configured epochs — the training loop behind
// Table II, exported for the example programs.
func Train(net *nn.Network, samples []nn.Sample, cfg TableIIConfig, rng *xrand.Rand) error {
	opt := nn.NewSGD(cfg.LearningRate, 0.9)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	batch := make([]nn.Sample, 0, cfg.BatchSize)
	decayEvery := cfg.Epochs/3 + 1
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if epoch > 0 && epoch%decayEvery == 0 {
			opt.LR *= 0.4 // step decay stabilises the late epochs
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start+cfg.BatchSize <= len(idx); start += cfg.BatchSize {
			batch = batch[:0]
			for _, k := range idx[start : start+cfg.BatchSize] {
				batch = append(batch, samples[k])
			}
			if _, err := net.TrainBatch(batch, opt); err != nil {
				return err
			}
		}
	}
	return nil
}

// Params converts the measured accuracies into a reliability parameter set,
// keeping the paper's timing defaults.
func (r *TableIIResult) Params() reliability.Params {
	p := reliability.DefaultParams()
	p.P = r.P
	p.PPrime = r.PPrime
	p.Alpha = r.Alpha
	return p
}

// Render formats the result like the paper's Table II.
func (r *TableIIResult) Render() string {
	t := &Table{
		Title:   "Table II: accuracy of healthy and compromised models (synthetic GTSRB)",
		Headers: []string{"Model", "Accuracy healthy", "Accuracy compromised", "Inject seed"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Model, f9(row.Healthy), f9(row.Compromised), fmt.Sprintf("%d", row.InjectionSeed))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("derived: p = %s   p' = %s   alpha = %s", f9(r.P), f9(r.PPrime), f9(r.Alpha)),
		fmt.Sprintf("pairwise alphas: a12 = %s  a13 = %s  a23 = %s",
			f6(r.PairwiseAlphas[0]), f6(r.PairwiseAlphas[1]), f6(r.PairwiseAlphas[2])))
	return t.String()
}
