package experiments

import (
	"fmt"
	"testing"
)

func TestTimingTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	res, err := RunTableII(QuickTableIIConfig())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(res.Render())
}
