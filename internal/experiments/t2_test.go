package experiments

import (
	"fmt"
	"testing"
)

func TestTimingTableII(t *testing.T) {
	res, err := RunTableII(QuickTableIIConfig())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(res.Render())
}
