package experiments

import (
	"fmt"
	"strings"

	"mvml/internal/faultinject"
	"mvml/internal/nn"
	"mvml/internal/signs"
	"mvml/internal/xrand"
)

// FaultSensitivityResult bundles per-kind fault-injection campaigns over one
// trained classifier — the per-layer fragility analysis the paper's FI
// tooling (§II-B) is built for.
type FaultSensitivityResult struct {
	Model     string
	Campaigns []*faultinject.CampaignResult
}

// RunFaultSensitivity trains one LeNet-style classifier on the configured
// dataset and sweeps every parameterised layer with the weight-value
// (the paper's random_weight_inj range) and bit-flip fault models.
// Injection trials fan out over `workers` goroutines (<= 0 = GOMAXPROCS)
// on replicated networks; results are identical for every worker count.
func RunFaultSensitivity(cfg TableIIConfig, trialsPerLayer, workers int) (*FaultSensitivityResult, error) {
	if trialsPerLayer < 1 {
		return nil, fmt.Errorf("experiments: trialsPerLayer %d < 1", trialsPerLayer)
	}
	ds, err := signs.Generate(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed + 7)
	net := nn.NewLeNetSmall(signs.NumClasses, root.Split("init", 0))
	if err := Train(net, ds.Train, cfg, root.Split("train", 0)); err != nil {
		return nil, err
	}

	// Concurrent trials need private networks: rebuild the architecture
	// (the init draws are overwritten) and copy the trained weights in.
	trained := net.CloneWeights()
	replicate := func() (*nn.Network, error) {
		clone := nn.NewLeNetSmall(signs.NumClasses, xrand.New(0))
		if err := clone.RestoreWeights(trained); err != nil {
			return nil, err
		}
		return clone, nil
	}

	res := &FaultSensitivityResult{Model: net.Name}
	kinds := []faultinject.CampaignConfig{
		{
			Kind: faultinject.KindWeightValue, TrialsPerLayer: trialsPerLayer,
			MinVal: cfg.InjectMin, MaxVal: cfg.InjectMax,
			CriticalAccuracy: 0.5, Seed: cfg.Seed,
			Workers: workers, Replicate: replicate,
		},
		{
			Kind: faultinject.KindBitFlip, TrialsPerLayer: trialsPerLayer,
			CriticalAccuracy: 0.5, Seed: cfg.Seed,
			Workers: workers, Replicate: replicate,
		},
	}
	for _, kindCfg := range kinds {
		campaign, err := faultinject.RunCampaign(net, ds.Test, kindCfg, root.Split("campaign", uint64(kindCfg.Kind)))
		if err != nil {
			return nil, fmt.Errorf("experiments: %v campaign: %w", kindCfg.Kind, err)
		}
		res.Campaigns = append(res.Campaigns, campaign)
	}
	return res, nil
}

// Render formats the study.
func (r *FaultSensitivityResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Extension: per-layer fault sensitivity of %s\n\n", r.Model)
	for _, c := range r.Campaigns {
		sb.WriteString(c.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}
