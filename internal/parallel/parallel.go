// Package parallel is the repository's deterministic fan-out runner: it
// executes n independent replications of a stochastic experiment across a
// bounded worker pool and guarantees that the collected results are
// byte-identical to a sequential run, for any worker count.
//
// The determinism rests on two properties:
//
//   - RNG substreams. Each replication receives its own generator derived
//     via root.Split(label, rep). Split is a pure function of the parent's
//     state — it neither consumes from nor mutates the parent — so the
//     derived stream depends only on (root seed material, label, rep),
//     never on scheduling. Replication bodies may also derive further
//     streams from a captured parent for the same reason; the only
//     forbidden operation is *advancing* a shared generator (Uint64,
//     Float64, ...) from inside a replication.
//
//   - Order-preserving collection. Results land in a slice indexed by
//     replication, so the caller's reduction runs in replication order
//     regardless of completion order. Floating-point accumulation —
//     which is not associative — therefore sums in exactly the sequential
//     order.
//
// Everything stochastic a replication needs must come from its arguments
// (rep, rng); shared mutable state (model instances, accumulators, scratch
// buffers) must be per-replication or per-worker. Telemetry writes to an
// obs.Registry are safe: the registry is concurrency-safe and observational
// only.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mvml/internal/obs"
	"mvml/internal/xrand"
)

// Options tunes a Run. The zero value runs on GOMAXPROCS workers with no
// cancellation and no progress reporting.
type Options struct {
	// Workers bounds concurrent replications; <= 0 means GOMAXPROCS. The
	// worker count never changes results, only wall-clock time.
	Workers int
	// Context, when non-nil, cancels the run early: no new replications
	// start after it is done and Run returns its error.
	Context context.Context
	// Progress, when non-nil, is called after every completed replication
	// with the number of completions so far and the total. Calls may come
	// from any worker goroutine and are not ordered by replication index;
	// the callback must be safe for concurrent use (obs handles are).
	Progress func(done, total int)
}

// CounterProgress adapts an obs counter into a Progress callback: one
// increment per completed replication. A nil counter yields a no-op
// callback, matching obs's nil-handle convention.
func CounterProgress(c *obs.Counter) func(done, total int) {
	return func(done, total int) { c.Inc() }
}

// MetricReplications counts completed fan-out replications, labelled by
// experiment.
const MetricReplications = "mvml_parallel_replications_total"

// RegistryProgress returns a Progress callback incrementing
// MetricReplications{experiment=...} in the given registry. A nil registry
// yields a no-op callback.
func RegistryProgress(reg *obs.Registry, experiment string) func(done, total int) {
	reg.Help(MetricReplications, "Completed fan-out replications per experiment.")
	return CounterProgress(reg.Counter(MetricReplications, "experiment", experiment))
}

// Run executes fn for every replication in [0, n) and returns the results
// in replication order. Each call receives rng = root.Split(label, rep).
//
// Error and panic semantics: the first failure stops the dispatch of new
// replications. Run returns the error of the lowest-indexed replication
// that failed before the pool drained, and re-panics (with the original
// value and stack) if any replication panicked. On a clean run with a
// cancelled context it returns the context's error.
func Run[T any](root *xrand.Rand, label string, n int, opt Options, fn func(rep int, rng *xrand.Rand) (T, error)) ([]T, error) {
	if root == nil {
		return nil, errors.New("parallel: nil root rng")
	}
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative replication count %d", n)
	}
	if fn == nil {
		return nil, errors.New("parallel: nil replication function")
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}

	if workers == 1 {
		// Sequential fast path: same RNG derivation, same order, no
		// goroutines. This is the reference the parallel path must match.
		for rep := 0; rep < n; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(rep, root.Split(label, uint64(rep)))
			if err != nil {
				return nil, err
			}
			results[rep] = v
			if opt.Progress != nil {
				opt.Progress(rep+1, n)
			}
		}
		return results, nil
	}

	var (
		next atomic.Int64 // next replication to dispatch
		done atomic.Int64 // completed replications
		wg   sync.WaitGroup

		mu          sync.Mutex
		firstErr    error
		firstErrRep = -1
		panicVal    any
		panicStack  []byte
		panicked    bool
	)
	// stop is closed on the first error, panic or context cancellation;
	// workers poll it before claiming the next replication.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	if ctx.Done() != nil {
		// Watcher translating context cancellation into a halt. It exits
		// when the run finishes (halt is always called after wg.Wait).
		go func() {
			select {
			case <-ctx.Done():
				halt()
			case <-stop:
			}
		}()
	}

	body := func(rep int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if !panicked {
					panicked, panicVal, panicStack = true, r, debug.Stack()
				}
				mu.Unlock()
				halt()
			}
		}()
		v, err := fn(rep, root.Split(label, uint64(rep)))
		if err != nil {
			mu.Lock()
			if firstErrRep == -1 || rep < firstErrRep {
				firstErr, firstErrRep = err, rep
			}
			mu.Unlock()
			halt()
			return
		}
		results[rep] = v
		if opt.Progress != nil {
			opt.Progress(int(done.Add(1)), n)
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ctx.Err() != nil {
					halt()
					return
				}
				rep := int(next.Add(1)) - 1
				if rep >= n {
					return
				}
				body(rep)
			}
		}()
	}
	wg.Wait()
	halt()

	if panicked {
		panic(fmt.Sprintf("parallel: replication panicked: %v\n%s", panicVal, panicStack))
	}
	if firstErrRep != -1 {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
