package parallel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"mvml/internal/obs"
	"mvml/internal/xrand"
)

// drawSome consumes a few values from the replication's own stream and
// returns a digest of them, emulating a stochastic experiment body.
func drawSome(rep int, rng *xrand.Rand) (uint64, error) {
	var h uint64
	for i := 0; i < 8; i++ {
		h = h*31 + rng.Uint64()
	}
	return h + uint64(rep), nil
}

func TestRunMatchesSequentialForAnyWorkerCount(t *testing.T) {
	const n = 64
	want, err := Run(xrand.New(7), "rep", n, Options{Workers: 1}, drawSome)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 4, 8, 64, 100} {
		got, err := Run(xrand.New(7), "rep", n, Options{Workers: workers}, drawSome)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential", workers)
		}
	}
}

func TestRunSharedParentSplitsAreRaceFreeAndDeterministic(t *testing.T) {
	// Replication bodies may derive extra streams from a captured parent;
	// Split must be a pure read. Run under -race this doubles as the
	// shared-parent race test.
	root := xrand.New(42)
	fn := func(rep int, _ *xrand.Rand) (uint64, error) {
		a := root.Split("sys", uint64(rep*100)).Uint64()
		b := root.Split("sim", uint64(rep*100)).Uint64()
		return a ^ b, nil
	}
	want, err := Run(root, "ignored", 32, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(root, "ignored", 32, Options{Workers: 8}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("captured-parent splits are schedule-dependent")
	}
}

func TestRunResultsLandInReplicationOrder(t *testing.T) {
	got, err := Run(xrand.New(1), "rep", 100, Options{Workers: 7},
		func(rep int, _ *xrand.Rand) (int, error) { return rep * rep, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(xrand.New(1), "rep", 50, Options{Workers: workers},
			func(rep int, _ *xrand.Rand) (int, error) {
				if rep%13 == 7 {
					return 0, fmt.Errorf("rep %d: %w", rep, boom)
				}
				return rep, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
	}
}

func TestRunSequentialErrorIsFirstFailingRep(t *testing.T) {
	_, err := Run(xrand.New(1), "rep", 50, Options{Workers: 1},
		func(rep int, _ *xrand.Rand) (int, error) {
			if rep >= 10 {
				return 0, fmt.Errorf("rep %d failed", rep)
			}
			return rep, nil
		})
	if err == nil || err.Error() != "rep 10 failed" {
		t.Fatalf("err = %v, want rep 10 failed", err)
	}
}

func TestRunErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	_, err := Run(xrand.New(1), "rep", 10_000, Options{Workers: 4},
		func(rep int, _ *xrand.Rand) (int, error) {
			ran.Add(1)
			return 0, errors.New("immediate failure")
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("%d replications ran after the first failure", n)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if workers > 1 && !strings.Contains(fmt.Sprint(r), "kaboom") {
					t.Fatalf("workers=%d: panic value lost: %v", workers, r)
				}
			}()
			_, _ = Run(xrand.New(1), "rep", 20, Options{Workers: workers},
				func(rep int, _ *xrand.Rand) (int, error) {
					if rep == 3 {
						panic("kaboom")
					}
					return rep, nil
				})
		}()
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Run(xrand.New(1), "rep", 1_000_000, Options{Workers: 4, Context: ctx},
		func(rep int, _ *xrand.Rand) (int, error) {
			if ran.Add(1) == 10 {
				cancel()
			}
			return rep, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 10_000 {
		t.Fatalf("%d replications ran after cancellation", n)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Run(xrand.New(1), "rep", 8, Options{Workers: workers, Context: ctx},
			func(rep int, _ *xrand.Rand) (int, error) { return rep, nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestRunProgressCountsEveryReplication(t *testing.T) {
	for _, workers := range []int{1, 5} {
		var calls atomic.Int64
		var sawTotal atomic.Int64
		_, err := Run(xrand.New(1), "rep", 37, Options{
			Workers: workers,
			Progress: func(done, total int) {
				calls.Add(1)
				sawTotal.Store(int64(total))
			},
		}, func(rep int, _ *xrand.Rand) (int, error) { return rep, nil })
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 37 || sawTotal.Load() != 37 {
			t.Fatalf("workers=%d: %d progress calls (total %d), want 37",
				workers, calls.Load(), sawTotal.Load())
		}
	}
}

func TestRunRacingTelemetryWrites(t *testing.T) {
	// Replications writing to one obs registry from many goroutines must be
	// race-free (run under -race via verify.sh) and lose no increments.
	reg := obs.NewRegistry()
	ctr := reg.Counter("parallel_test_reps_total", "experiment", "race")
	hist := reg.Histogram("parallel_test_values", obs.DefBuckets(), "experiment", "race")
	_, err := Run(xrand.New(3), "rep", 200, Options{
		Workers:  8,
		Progress: CounterProgress(ctr),
	}, func(rep int, rng *xrand.Rand) (int, error) {
		hist.Observe(rng.Float64())
		return rep, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctr.Value() != 200 {
		t.Fatalf("progress counter = %d, want 200", ctr.Value())
	}
	if hist.Count() != 200 {
		t.Fatalf("histogram count = %d, want 200", hist.Count())
	}
}

func TestCounterProgressNilCounterIsNoop(t *testing.T) {
	p := CounterProgress(nil)
	p(1, 2) // must not panic
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run[int](nil, "rep", 1, Options{}, func(int, *xrand.Rand) (int, error) { return 0, nil }); err == nil {
		t.Fatal("nil root accepted")
	}
	if _, err := Run[int](xrand.New(1), "rep", -1, Options{}, func(int, *xrand.Rand) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Run[int](xrand.New(1), "rep", 1, Options{}, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
	got, err := Run(xrand.New(1), "rep", 0, Options{Workers: 4},
		func(rep int, _ *xrand.Rand) (int, error) { return rep, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
}
