package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newTestServer(t, cfg, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPClassifyByClass(t *testing.T) {
	_, ts := newHTTPServer(t, testConfig())
	resp := postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Class: ptr(7), Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	cr := decode[ClassifyResponse](t, resp)
	if cr.Proposals != 3 || cr.Degraded {
		t.Fatalf("healthy identical ensemble response: %+v", cr)
	}
	if cr.LatencyMS <= 0 {
		t.Fatalf("latency %v not reported", cr.LatencyMS)
	}
	// Same class+seed is deterministic across calls.
	again := decode[ClassifyResponse](t, postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Class: ptr(7), Seed: 1}))
	if again.Class != cr.Class {
		t.Fatalf("same request classified differently: %d vs %d", again.Class, cr.Class)
	}
}

func TestHTTPClassifyByImage(t *testing.T) {
	_, ts := newHTTPServer(t, testConfig())
	img := testImage(3)
	resp := postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Image: img.Data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	cr := decode[ClassifyResponse](t, resp)
	if cr.Proposals != 3 {
		t.Fatalf("response: %+v", cr)
	}
}

func TestHTTPClassifyBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t, testConfig())
	cases := []any{
		ClassifyRequest{},                                        // neither image nor class
		ClassifyRequest{Image: make([]float32, 7)},               // wrong size
		ClassifyRequest{Class: ptr(-1)},                          // class out of range
		ClassifyRequest{Class: ptr(99)},                          // class out of range
		ClassifyRequest{Image: testImage(0).Data, Class: ptr(1)}, // both
	}
	for i, body := range cases {
		resp := postJSON(t, ts.URL+"/v1/classify", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		er := decode[errorResponse](t, resp)
		if er.Error == "" {
			t.Errorf("case %d: empty error body", i)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPQueueFull429 proves backpressure is explicit at the HTTP surface:
// a full admission queue answers 429 with a Retry-After hint, immediately.
func TestHTTPQueueFull429(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1
	cfg.batchGate = make(chan struct{}, 4)
	s, ts := newHTTPServer(t, cfg)

	// Occupy the queue's only slot; the gated batcher leaves it in place.
	first := make(chan *http.Response, 1)
	go func() {
		raw, _ := json.Marshal(ClassifyRequest{Class: ptr(0)})
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(raw))
		if err == nil {
			first <- resp
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.depth.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/classify", ClassifyRequest{Class: ptr(1)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()

	cfg.batchGate <- struct{}{}
	if resp := <-first; resp.StatusCode != http.StatusOK {
		t.Fatalf("queued request finished with %d after gate opened", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newHTTPServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	hr := decode[healthResponse](t, resp)
	if hr.Status != "ok" || len(hr.Versions) != 3 {
		t.Fatalf("health: %+v", hr)
	}
	for _, v := range hr.Versions {
		if v.State != "serving" {
			t.Fatalf("version %s state %s at rest", v.Name, v.State)
		}
	}
}

func TestHTTPAdminRejuvenateAndCompromise(t *testing.T) {
	s, ts := newHTTPServer(t, testConfig())
	if resp := postJSON(t, ts.URL+"/admin/compromise", adminRequest{Version: 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compromise status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/admin/rejuvenate", adminRequest{Version: 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("rejuvenate status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/admin/rejuvenate", adminRequest{Version: 9}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range rejuvenate status %d, want 400", resp.StatusCode)
	}
	// The ensemble still answers in full agreement after the round trip.
	res, err := s.Classify(testImage(1))
	if err != nil || res.Agreeing != 3 {
		t.Fatalf("post-admin classify: res=%+v err=%v", res, err)
	}
}
