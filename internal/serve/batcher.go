package serve

import (
	"time"

	"mvml/internal/core"
	"mvml/internal/nn"
	"mvml/internal/tensor"
)

// batchLoop is the micro-batching scheduler: it collects queued requests
// until either MaxBatch is reached or MaxBatchWait has elapsed since the
// batch's first request, stacks the images into one tensor, fans the batch
// out to every version's worker pool, gathers proposals until the earliest
// request deadline, and votes per sample.
func (s *Server) batchLoop() {
	defer s.stopped.Done()
	for {
		if gate := s.cfg.batchGate; gate != nil {
			select {
			case <-gate:
			case <-s.stop:
				return
			}
		}
		var first *request
		select {
		case first = <-s.queue:
		case <-s.stop:
			return
		}
		batch := s.collect(first)
		s.m.queueDepth.Set(float64(s.depth.Add(-int64(len(batch)))))
		s.m.batchSize.Observe(float64(len(batch)))
		s.m.batches.Inc()
		s.dispatch(batch)
	}
}

// collect gathers up to MaxBatch requests, waiting at most MaxBatchWait
// beyond the first one.
func (s *Server) collect(first *request) []*request {
	batch := append(make([]*request, 0, s.cfg.MaxBatch), first)
	if s.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.MaxBatchWait)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case req := <-s.queue:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		case <-s.stop:
			return batch
		}
	}
	return batch
}

// dispatch runs one batch end to end: stack → fan out → gather → vote.
func (s *Server) dispatch(batch []*request) {
	sink := s.m.spans // nil when tracing is disabled
	tCollected := sink.Now()
	images := make([]*tensor.Tensor, len(batch))
	for i, req := range batch {
		images[i] = req.image
	}
	stacked, err := nn.Stack(images)
	if err != nil {
		s.fail(batch, err)
		return
	}

	job := batchJob{batch: stacked, out: make(chan versionAnswer, len(s.pools))}
	submitted := 0
	for _, p := range s.pools {
		if p.trySubmit(job) {
			submitted++
		}
	}

	// Gather until every submitted version answered or the earliest request
	// deadline passes; late answers land in the buffered channel and are
	// discarded, so no worker ever blocks.
	preds := make([][]int, len(s.pools))
	var fwd []versionAnswer // successful answers with forward timings
	if sink != nil {
		fwd = make([]versionAnswer, 0, submitted)
	}
	deadline := batch[0].deadline
	for _, req := range batch[1:] {
		if req.deadline.Before(deadline) {
			deadline = req.deadline
		}
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
gather:
	for got := 0; got < submitted; {
		select {
		case ans := <-job.out:
			got++
			if ans.err == nil {
				preds[ans.version] = ans.preds
				if sink != nil {
					fwd = append(fwd, ans)
				}
			}
		case <-timer.C:
			break gather
		}
	}

	if sink != nil {
		// Back-fill the batch-level stages into every member request's
		// trace: the wall intervals are shared (the work happened once for
		// the whole batch) but each trace gets its own records, so a single
		// trace id reconstructs the full waterfall.
		tGathered := sink.Now()
		// queue_depth samples the admission backlog once per batch — the
		// stream the health engine's change-point detector watches.
		battrs := map[string]any{
			"batch_size":  len(batch),
			"queue_depth": int(s.depth.Load()),
		}
		fattrs := make([]map[string]any, len(fwd))
		for i, ans := range fwd {
			fattrs[i] = map[string]any{"version": s.pools[ans.version].name}
		}
		if s.m.shard != "" {
			battrs["shard"] = s.m.shard
			for _, fa := range fattrs {
				fa["shard"] = s.m.shard
			}
		}
		for _, req := range batch {
			if req.span == nil {
				continue
			}
			req.span.Interval("queue_wait", req.tq, tCollected, s.m.shardAttrs)
			bid := req.span.Interval("batch", tCollected, tGathered, battrs)
			for i, ans := range fwd {
				req.span.IntervalUnder(bid, "forward", ans.start, ans.end, fattrs[i])
			}
		}
	}
	s.vote(batch, preds)
	s.maybeReact()
}

// vote runs the majority voter per sample over the versions that answered,
// degrading gracefully: a safe skip falls back to the first available
// proposal (in fixed version order, so responses are deterministic), and
// only a total absence of proposals fails the request.
func (s *Server) vote(batch []*request, preds [][]int) {
	sink := s.m.spans
	proposals := make([]core.Proposal[int], 0, len(s.pools))
	for i, req := range batch {
		tVote := sink.Now()
		proposals = proposals[:0]
		for v, p := range preds {
			if p != nil {
				proposals = append(proposals, core.Proposal[int]{
					Module: s.pools[v].name,
					Value:  p[i],
				})
			}
		}
		dec := s.voter.Vote(proposals)

		var res Result
		switch {
		case !dec.Skipped:
			res = Result{
				Class:     dec.Value,
				Agreeing:  dec.Agreeing,
				Proposals: dec.Proposals,
			}
			if dec.Proposals < len(s.pools) {
				res.Degraded = true
				res.Reason = "partial ensemble"
			}
		case len(proposals) > 0:
			// Graceful degradation: the voter safely skipped (divergence),
			// but an answer is still owed — serve the first proposal and
			// tag it so the client can weigh its trust.
			res = Result{
				Class:     proposals[0].Value,
				Degraded:  true,
				Reason:    "voter skipped: " + dec.Reason,
				Agreeing:  1,
				Proposals: dec.Proposals,
			}
		default:
			res = Result{Err: ErrNoProposals, Reason: dec.Reason}
		}

		if req.span != nil {
			// voters/diverged give the health engine the per-round
			// disagreement picture: which versions answered, and which of
			// them contradicted the voted output (the online α estimator's
			// simultaneous-error signal).
			vattrs := map[string]any{
				"agreeing": dec.Agreeing, "proposals": dec.Proposals,
			}
			if s.m.shard != "" {
				vattrs["shard"] = s.m.shard
			}
			if dec.Skipped {
				vattrs["skipped"] = true
			}
			voters := make([]string, 0, len(s.pools))
			var diverged []string
			for v, p := range preds {
				if p == nil {
					continue
				}
				voters = append(voters, s.pools[v].name)
				if !dec.Skipped && p[i] != dec.Value {
					diverged = append(diverged, s.pools[v].name)
				}
			}
			vattrs["voters"] = voters
			if len(diverged) > 0 {
				vattrs["diverged"] = diverged
			}
			req.span.Interval("vote", tVote, sink.Now(), vattrs)
		}

		// Feed the reactive trigger: versions are judged against the voted
		// output only when a real majority existed.
		if !dec.Skipped {
			for v, p := range preds {
				if p != nil {
					s.pools[v].observe(p[i] != dec.Value)
				}
			}
		}

		s.finish(req, res)
	}
}

// finish completes one request: metrics, then exactly one send on done, then
// the request's trace goes out (the batcher still owns the span — the waiting
// client only ever reads the done channel).
func (s *Server) finish(req *request, res Result) {
	s.m.requests.Inc()
	if res.Err != nil {
		s.m.failed.Inc()
	} else {
		if res.Degraded {
			s.m.degraded.Inc()
		}
		s.m.latency.Observe(time.Since(req.enqueued).Seconds())
	}
	if req.span == nil {
		req.done <- res
		return
	}
	sink := s.m.spans
	tReply := sink.Now()
	req.done <- res
	req.span.Interval("reply", tReply, sink.Now(), s.m.shardAttrs)
	req.span.SetAttr("class", res.Class)
	if res.Degraded {
		req.span.SetAttr("degraded", true)
	}
	if res.Err != nil {
		req.span.SetAttr("error", res.Err.Error())
	}
	req.span.End()
}

// fail completes a whole batch with one error (stacking failure).
func (s *Server) fail(batch []*request, err error) {
	for _, req := range batch {
		s.finish(req, Result{Err: err})
	}
}
