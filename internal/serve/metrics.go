package serve

import (
	"time"

	"mvml/internal/obs"
)

// metrics bundles the serving subsystem's telemetry handles, resolved once
// at startup. With a nil runtime every handle is a nil no-op, so the serving
// hot path pays only nil checks — instrumentation never changes responses.
type metrics struct {
	queueDepth *obs.Gauge
	batchSize  *obs.Histogram
	latency    *obs.Histogram
	requests   *obs.Counter
	degraded   *obs.Counter
	rejected   *obs.Counter
	failed     *obs.Counter
	batches    *obs.Counter

	reg     *obs.Registry
	tracer  *obs.Tracer
	started time.Time
}

func newMetrics(rt *obs.Runtime) *metrics {
	m := &metrics{started: time.Now()}
	if rt != nil {
		m.reg = rt.Metrics()
		m.tracer = rt.Tracer()
	}
	r := m.reg // nil registry hands out nil (no-op) handles
	r.Help("mvserve_queue_depth", "Requests waiting in the admission queue.")
	r.Help("mvserve_batch_size", "Requests per dispatched micro-batch.")
	r.Help("mvserve_e2e_latency_seconds", "End-to-end latency of answered requests.")
	r.Help("mvserve_requests_total", "Requests that reached a terminal outcome (answered or failed).")
	r.Help("mvserve_degraded_total", "Answers served without a full healthy majority.")
	r.Help("mvserve_rejected_total", "Requests shed at admission because the queue was full.")
	r.Help("mvserve_failed_total", "Requests that could not be answered at all.")
	r.Help("mvserve_batches_total", "Micro-batches dispatched to the version pools.")
	r.Help("mvserve_rejuvenations_total", "Completed rejuvenations by trigger kind.")
	r.Help("mvserve_divergence_total", "Decided requests in which a version disagreed with the voted output.")

	m.queueDepth = r.Gauge("mvserve_queue_depth")
	m.batchSize = r.Histogram("mvserve_batch_size", obs.LinearBuckets(1, 1, 16))
	m.latency = r.Histogram("mvserve_e2e_latency_seconds", obs.LatencyBuckets())
	m.requests = r.Counter("mvserve_requests_total")
	m.degraded = r.Counter("mvserve_degraded_total")
	m.rejected = r.Counter("mvserve_rejected_total")
	m.failed = r.Counter("mvserve_failed_total")
	m.batches = r.Counter("mvserve_batches_total")
	return m
}

// rejuvenations resolves the per-trigger-kind counter.
func (m *metrics) rejuvenations(kind string) *obs.Counter {
	return m.reg.Counter("mvserve_rejuvenations_total", "kind", kind)
}

// divergence resolves the per-version divergence counter.
func (m *metrics) divergence(version string) *obs.Counter {
	return m.reg.Counter("mvserve_divergence_total", "version", version)
}

// trace emits a lifecycle event stamped with seconds since server start.
func (m *metrics) trace(typ string, attrs map[string]any) {
	m.tracer.Emit(time.Since(m.started).Seconds(), typ, attrs)
}
