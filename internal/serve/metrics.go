package serve

import (
	"time"

	"mvml/internal/nn"
	"mvml/internal/obs"
)

// metrics bundles the serving subsystem's telemetry handles, resolved once
// at startup. With a nil runtime every handle is a nil no-op, so the serving
// hot path pays only nil checks — instrumentation never changes responses.
type metrics struct {
	queueDepth *obs.Gauge
	batchSize  *obs.Histogram
	latency    *obs.Histogram
	requests   *obs.Counter
	degraded   *obs.Counter
	rejected   *obs.Counter
	failed     *obs.Counter
	batches    *obs.Counter

	reg     *obs.Registry
	tracer  *obs.Tracer
	spans   *obs.SpanSink
	flight  *obs.FlightRecorder
	profile bool
	started time.Time

	// shard is the server's shard label ("" standalone); shardAttrs is a
	// shared read-only attrs map carrying just that label, reused for stages
	// that otherwise have no attributes (span attrs must not be mutated after
	// emission, so sharing one map is safe).
	shard      string
	shardAttrs map[string]any
}

func newMetrics(rt *obs.Runtime, profile bool, shard string) *metrics {
	m := &metrics{started: time.Now(), shard: shard}
	if shard != "" {
		m.shardAttrs = map[string]any{"shard": shard}
	}
	if rt != nil {
		m.reg = rt.Metrics()
		m.tracer = rt.Tracer()
		m.spans = rt.Spans()
		m.flight = rt.Flight()
		m.profile = profile
	}
	r := m.reg // nil registry hands out nil (no-op) handles
	r.Help("mvserve_queue_depth", "Requests waiting in the admission queue.")
	r.Help("mvserve_batch_size", "Requests per dispatched micro-batch.")
	r.Help("mvserve_e2e_latency_seconds", "End-to-end latency of answered requests.")
	r.Help("mvserve_requests_total", "Requests that reached a terminal outcome (answered or failed).")
	r.Help("mvserve_degraded_total", "Answers served without a full healthy majority.")
	r.Help("mvserve_rejected_total", "Requests shed at admission because the queue was full.")
	r.Help("mvserve_failed_total", "Requests that could not be answered at all.")
	r.Help("mvserve_batches_total", "Micro-batches dispatched to the version pools.")
	r.Help("mvserve_rejuvenations_total", "Completed rejuvenations by trigger kind.")
	r.Help("mvserve_divergence_total", "Decided requests in which a version disagreed with the voted output.")
	if m.profile {
		r.Help("mvserve_layer_seconds", "Wall time of one layer dispatch on the batched inference path.")
		r.Help("mvserve_gemm_dispatch_total", "GEMM kernels issued by the batched inference path.")
		r.Help("mvserve_gemm_bytes_total", "Bytes moved by inference GEMMs (operands plus outputs, float32).")
	}

	m.queueDepth = r.Gauge("mvserve_queue_depth")
	m.batchSize = r.Histogram("mvserve_batch_size", obs.LinearBuckets(1, 1, 16))
	m.latency = r.Histogram("mvserve_e2e_latency_seconds", obs.LatencyBuckets())
	m.requests = r.Counter("mvserve_requests_total")
	m.degraded = r.Counter("mvserve_degraded_total")
	m.rejected = r.Counter("mvserve_rejected_total")
	m.failed = r.Counter("mvserve_failed_total")
	m.batches = r.Counter("mvserve_batches_total")
	return m
}

// rejuvenations resolves the per-trigger-kind counter.
func (m *metrics) rejuvenations(kind string) *obs.Counter {
	return m.reg.Counter("mvserve_rejuvenations_total", "kind", kind)
}

// divergence resolves the per-version divergence counter.
func (m *metrics) divergence(version string) *obs.Counter {
	return m.reg.Counter("mvserve_divergence_total", "version", version)
}

// trace emits a lifecycle event stamped with seconds since server start.
func (m *metrics) trace(typ string, attrs map[string]any) {
	m.tracer.Emit(time.Since(m.started).Seconds(), typ, attrs)
}

// incident fires the flight recorder (a no-op when none is attached): the
// window around reason is captured into a standalone incident file.
func (m *metrics) incident(reason string, attrs map[string]any) {
	m.flight.Trigger(reason, attrs)
}

// layerProfiler adapts the obs registry to nn.ForwardProfiler for one
// version. Each worker goroutine gets its own instance (series handles are
// cached per layer without locking), while the underlying counters and
// histograms are shared and concurrency-safe.
type layerProfiler struct {
	m       *metrics
	version string
	seconds map[string]*obs.Histogram
	gemms   map[string]*obs.Counter
	bytes   map[string]*obs.Counter
}

// layerProfiler returns a fresh per-worker profiler for the named version,
// or nil when layer profiling is disabled.
func (m *metrics) layerProfiler(version string) nn.ForwardProfiler {
	if m.reg == nil || !m.profile {
		return nil
	}
	return &layerProfiler{
		m:       m,
		version: version,
		seconds: make(map[string]*obs.Histogram),
		gemms:   make(map[string]*obs.Counter),
		bytes:   make(map[string]*obs.Counter),
	}
}

// ObserveLayer implements nn.ForwardProfiler.
func (lp *layerProfiler) ObserveLayer(layer string, seconds float64, batch int) {
	h := lp.seconds[layer]
	if h == nil {
		h = lp.m.reg.Histogram("mvserve_layer_seconds", obs.LatencyBuckets(),
			"version", lp.version, "layer", layer)
		lp.seconds[layer] = h
	}
	h.Observe(seconds)
}

// ObserveGemm implements nn.ForwardProfiler. The byte volume counts both
// operands and the output at float32 width: 4·(m·k + k·n + m·n).
func (lp *layerProfiler) ObserveGemm(layer string, m, n, k int) {
	c := lp.gemms[layer]
	if c == nil {
		c = lp.m.reg.Counter("mvserve_gemm_dispatch_total", "version", lp.version, "layer", layer)
		lp.gemms[layer] = c
	}
	c.Inc()
	b := lp.bytes[layer]
	if b == nil {
		b = lp.m.reg.Counter("mvserve_gemm_bytes_total", "version", lp.version, "layer", layer)
		lp.bytes[layer] = b
	}
	b.Add(uint64(4 * (m*k + k*n + m*n)))
}
