package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mvml/internal/nn"
	"mvml/internal/obs"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// tinyNet builds a minimal classifier. Every version gets IDENTICAL weights
// (a fixed internal seed), so the healthy ensemble always agrees 3-of-3 and
// tests can reason exactly about voting, degradation and divergence.
func tinyNet(version int, _ *xrand.Rand) (*nn.Network, error) {
	r := xrand.New(1234)
	return &nn.Network{
		Name: fmt.Sprintf("tiny-%d", version),
		Layers: []nn.Layer{
			nn.NewFlatten("flat"),
			nn.NewDense("fc", nn.InputChannels*nn.InputSize*nn.InputSize, signs.NumClasses, r),
		},
	}, nil
}

// testConfig is a fast configuration over the tiny identical networks.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NewNetwork = tinyNet
	cfg.InjectLayer = 0  // the tiny net's only parameterised layer
	cfg.InjectCount = 64 // enough perturbed weights to reliably flip argmax
	cfg.WorkersPerVersion = 2
	cfg.MaxBatch = 4
	cfg.MaxBatchWait = time.Millisecond
	cfg.RequestTimeout = 2 * time.Second
	return cfg
}

func newTestServer(t *testing.T, cfg Config, rt *obs.Runtime) *Server {
	t.Helper()
	s, err := New(cfg, rt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// testImage renders a deterministic sign image.
func testImage(i int) *tensor.Tensor {
	r := xrand.New(uint64(i)).Split("test-image", uint64(i))
	return signs.Render(i%signs.NumClasses, r, signs.DefaultConfig())
}

func TestClassifyHealthyFullMajority(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	res, err := s.Classify(testImage(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposals != 3 || res.Agreeing != 3 {
		t.Fatalf("healthy identical versions must agree 3-of-3, got %+v", res)
	}
	if res.Degraded {
		t.Fatalf("healthy answer tagged degraded: %+v", res)
	}
	if res.Class < 0 || res.Class >= signs.NumClasses {
		t.Fatalf("class %d out of range", res.Class)
	}
}

func TestClassifyRejectsBadImage(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	if _, err := s.Classify(tensor.New(3)); err == nil {
		t.Fatal("wrong-size image accepted")
	}
	if _, err := s.Classify(nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

// TestResponsesUnchangedByInstrumentation is the determinism guarantee the
// telemetry layer promises: the same request sequence against a fully
// instrumented server (metrics, tracer, spans, per-layer profiler AND an
// attached flight recorder) and an uninstrumented one yields identical
// answers.
func TestResponsesUnchangedByInstrumentation(t *testing.T) {
	rt := obs.NewRuntime(64)
	fr, err := obs.NewFlightRecorder(t.TempDir(), time.Minute, 0, rt.Spans(), rt.Tracer())
	if err != nil {
		t.Fatal(err)
	}
	rt.AttachFlightRecorder(fr)
	instCfg := testConfig()
	instCfg.ProfileLayers = true
	bare := newTestServer(t, testConfig(), nil)
	inst := newTestServer(t, instCfg, rt)

	const n = 24
	for i := 0; i < n; i++ {
		img := testImage(i)
		a, errA := bare.Classify(img)
		b, errB := inst.Classify(img)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("request %d: error mismatch %v vs %v", i, errA, errB)
		}
		if a.Class != b.Class || a.Degraded != b.Degraded ||
			a.Agreeing != b.Agreeing || a.Proposals != b.Proposals {
			t.Fatalf("request %d: instrumented answer differs: %+v vs %+v", i, a, b)
		}
	}
	if got := rt.Metrics().Counter("mvserve_requests_total").Value(); got != n {
		t.Fatalf("instrumented server counted %d requests, want %d", got, n)
	}
	var b strings.Builder
	if err := rt.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mvserve_requests_total", "mvserve_batch_size", "mvserve_e2e_latency_seconds",
		"mvserve_queue_depth", "mvserve_layer_seconds", "mvserve_gemm_dispatch_total",
		"mvserve_gemm_bytes_total",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, b.String())
		}
	}
}

// TestRequestWaterfall submits traced requests and reconstructs one full
// waterfall from the span ring: a request root with admission, queue_wait,
// batch, vote and reply children, and one forward span per version parented
// under the batch interval.
func TestRequestWaterfall(t *testing.T) {
	rt := obs.NewRuntime(256)
	s := newTestServer(t, testConfig(), rt)

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := s.Classify(testImage(i)); err != nil {
			t.Fatal(err)
		}
	}

	byTrace := map[uint64][]obs.SpanRecord{}
	for _, r := range rt.Spans().Spans() {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	if len(byTrace) != n {
		t.Fatalf("got %d traces, want %d", len(byTrace), n)
	}
	for trace, recs := range byTrace {
		var root obs.SpanRecord
		byKind := map[string][]obs.SpanRecord{}
		for _, r := range recs {
			byKind[r.Kind] = append(byKind[r.Kind], r)
			if r.Kind == "request" {
				root = r
			}
		}
		if root.ID == 0 {
			t.Fatalf("trace %d has no request root", trace)
		}
		for _, kind := range []string{"admission", "queue_wait", "batch", "vote", "reply"} {
			rs := byKind[kind]
			if len(rs) != 1 {
				t.Fatalf("trace %d: %d %q spans, want 1", trace, len(rs), kind)
			}
			if rs[0].Parent != root.ID {
				t.Fatalf("trace %d: %q parented under %d, want root %d", trace, kind, rs[0].Parent, root.ID)
			}
			if rs[0].End < rs[0].Start {
				t.Fatalf("trace %d: %q ends before it starts: %+v", trace, kind, rs[0])
			}
		}
		batch := byKind["batch"][0]
		forwards := byKind["forward"]
		if len(forwards) != 3 {
			t.Fatalf("trace %d: %d forward spans, want one per version", trace, len(forwards))
		}
		versions := map[any]bool{}
		for _, f := range forwards {
			if f.Parent != batch.ID {
				t.Fatalf("trace %d: forward parented under %d, want batch %d", trace, f.Parent, batch.ID)
			}
			versions[f.Attrs["version"]] = true
		}
		if len(versions) != 3 {
			t.Fatalf("trace %d: forward version attrs not distinct: %v", trace, versions)
		}
		if _, ok := root.Attrs["class"]; !ok {
			t.Fatalf("trace %d: root missing class attr: %v", trace, root.Attrs)
		}
		// The stages tile the request in order.
		adm, qw := byKind["admission"][0], byKind["queue_wait"][0]
		if adm.End > qw.Start || qw.End > batch.Start {
			t.Fatalf("trace %d: stages out of order: admission=%+v queue_wait=%+v batch=%+v",
				trace, adm, qw, batch)
		}
	}
}

// TestQueueFullRejects holds the batcher on a gate so the admission queue
// fills deterministically; the overflow submit must reject immediately with
// ErrQueueFull (not block), and queued requests must still be answered after
// the gate opens.
func TestQueueFullRejects(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	cfg.batchGate = make(chan struct{}, 4)
	s := newTestServer(t, cfg, nil)

	r1, err := s.submit(testImage(1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.submit(testImage(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit(testImage(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: got %v, want ErrQueueFull", err)
	}

	cfg.batchGate <- struct{}{}
	cfg.batchGate <- struct{}{}
	for i, req := range []*request{r1, r2} {
		res := <-req.done
		if res.Err != nil {
			t.Fatalf("queued request %d failed after gate opened: %v", i, res.Err)
		}
	}
}

// TestDegradedOnPartialEnsemble: with two versions out of rotation, the
// single remaining proposal is accepted (rule R.3) and tagged degraded.
func TestDegradedOnPartialEnsemble(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	for _, v := range []int{1, 2} {
		s.pools[v].mu.Lock()
		s.pools[v].state = poolDraining
		s.pools[v].mu.Unlock()
	}
	res, err := s.Classify(testImage(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Proposals != 1 {
		t.Fatalf("single-version answer must be degraded R.3, got %+v", res)
	}
	versions, _ := s.Status()
	if versions[1].State != "draining" || versions[0].State != "serving" {
		t.Fatalf("status does not reflect pool states: %+v", versions)
	}
	for _, v := range []int{1, 2} {
		s.pools[v].mu.Lock()
		s.pools[v].state = poolServing
		s.pools[v].mu.Unlock()
	}
}

// classifyUntil runs requests until pred holds, bounded by n attempts.
func classifyUntil(t *testing.T, s *Server, n int, pred func(Result) bool) bool {
	t.Helper()
	for i := 0; i < n; i++ {
		res, err := s.Classify(testImage(i))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if pred(res) {
			return true
		}
	}
	return false
}

// TestCompromiseOutvotedAndCounted: a compromised minority version cannot
// change the served answers (2-of-3 majority holds) but its divergence is
// observed — the signal the reactive trigger feeds on.
func TestCompromiseOutvotedAndCounted(t *testing.T) {
	cfg := testConfig()
	cfg.DivergenceThreshold = 1 // keep the reactive trigger out of this test
	s := newTestServer(t, cfg, nil)
	if err := s.Compromise(0); err != nil {
		t.Fatal(err)
	}
	diverged := classifyUntil(t, s, 200, func(res Result) bool {
		if res.Err != nil || res.Degraded {
			t.Fatalf("compromised minority must not degrade answers: %+v", res)
		}
		return s.pools[0].divergenceRate() > 0
	})
	if !diverged {
		t.Fatal("compromised version never diverged from the majority")
	}
	// Manual rejuvenation restores full agreement.
	if err := s.Rejuvenate(0, RejuvManual); err != nil {
		t.Fatal(err)
	}
	if !classifyUntil(t, s, 50, func(res Result) bool { return res.Agreeing == 3 }) {
		t.Fatal("no 3-of-3 agreement after rejuvenation")
	}
}

// TestReactiveRejuvenation: sustained divergence past the threshold drains
// and restores the offending version automatically.
func TestReactiveRejuvenation(t *testing.T) {
	rt := obs.NewRuntime(64)
	cfg := testConfig()
	cfg.DivergenceWindow = 8
	cfg.DivergenceThreshold = 0.5
	s := newTestServer(t, cfg, rt)
	if err := s.Compromise(1); err != nil {
		t.Fatal(err)
	}
	reactive := rt.Metrics().Counter("mvserve_rejuvenations_total", "kind", RejuvReactive)
	fired := classifyUntil(t, s, 500, func(res Result) bool {
		if res.Err != nil {
			t.Fatalf("request failed during reactive rejuvenation: %v", res.Err)
		}
		return reactive.Value() > 0
	})
	if !fired {
		t.Fatalf("reactive rejuvenation never fired (divergence %v)", s.pools[1].divergenceRate())
	}
	if !classifyUntil(t, s, 200, func(res Result) bool { return res.Agreeing == 3 }) {
		t.Fatal("version still diverging after reactive rejuvenation")
	}
}

// TestProactiveRejuvenation: the time trigger rotates through versions and
// heals a compromised one without any divergence signal.
func TestProactiveRejuvenation(t *testing.T) {
	rt := obs.NewRuntime(64)
	cfg := testConfig()
	cfg.ProactiveInterval = 10 * time.Millisecond
	cfg.DivergenceThreshold = 1 // isolate the proactive path
	s := newTestServer(t, cfg, rt)
	if err := s.Compromise(2); err != nil {
		t.Fatal(err)
	}
	proactive := rt.Metrics().Counter("mvserve_rejuvenations_total", "kind", RejuvProactive)
	deadline := time.Now().Add(5 * time.Second)
	for proactive.Value() < 3 { // a full rotation covers version 2
		if time.Now().After(deadline) {
			t.Fatalf("proactive trigger too slow: %d rejuvenations", proactive.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !classifyUntil(t, s, 50, func(res Result) bool { return res.Agreeing == 3 }) {
		t.Fatal("compromised version not healed by proactive rotation")
	}
}

// TestRejuvenationUnderLoadZeroFailures is the subsystem's acceptance
// property: rejuvenating every version while concurrent clients hammer the
// server must not fail a single request — degraded answers are allowed,
// errors are not (queue-full rejections would be allowed too, but the
// bounded concurrency here keeps the queue below its depth).
func TestRejuvenationUnderLoadZeroFailures(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 256
	s := newTestServer(t, cfg, nil)

	const clients = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Classify(testImage(c*1000 + i)); err != nil {
					errCh <- fmt.Errorf("client %d request %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	for round := 0; round < 3; round++ {
		for v := 0; v < cfg.Versions; v++ {
			if err := s.Rejuvenate(v, RejuvManual); err != nil {
				t.Errorf("rejuvenate %d: %v", v, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestCloseRejectsAndFailsQueued(t *testing.T) {
	cfg := testConfig()
	cfg.batchGate = make(chan struct{}) // batcher never runs
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	req, err := s.submit(testImage(0))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if res := <-req.done; !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("queued request after Close: got %v, want ErrClosed", res.Err)
	}
	if _, err := s.Classify(testImage(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Classify after Close: got %v, want ErrClosed", err)
	}
}

func TestRejuvenateValidatesVersion(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	if err := s.Rejuvenate(-1, RejuvManual); err == nil {
		t.Fatal("negative version accepted")
	}
	if err := s.Rejuvenate(99, RejuvManual); err == nil {
		t.Fatal("out-of-range version accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Versions = 0 },
		func(c *Config) { c.WorkersPerVersion = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.MaxBatch = 0 },
		func(c *Config) { c.MaxBatchWait = 0 },
		func(c *Config) { c.RequestTimeout = 0 },
		func(c *Config) { c.DivergenceWindow = 0 },
		func(c *Config) { c.DivergenceThreshold = 0 },
		func(c *Config) { c.DivergenceThreshold = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestRealEnsembleServes exercises the default three-architecture ensemble
// (untrained, so construction is fast) end to end.
func TestRealEnsembleServes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorkersPerVersion = 1
	s := newTestServer(t, cfg, nil)
	res, err := s.Classify(testImage(0))
	if err != nil {
		t.Fatal(err)
	}
	// Three diverse untrained architectures rarely agree; whatever the vote
	// does, the request must be answered, not failed.
	if res.Proposals == 0 {
		t.Fatalf("no proposals from the real ensemble: %+v", res)
	}
}
