package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunLoadAgainstHealthyServer(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := RunLoad(ts.URL, LoadConfig{
		Rate:     200,
		Duration: 400 * time.Millisecond,
		Timeout:  5 * time.Second,
		Seed:     38,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("open-loop generator sent nothing")
	}
	if rep.Errors != 0 || rep.Failed != 0 {
		t.Fatalf("healthy run saw failures: %+v", rep)
	}
	if rep.OK+rep.Degraded != rep.Sent-rep.Rejected {
		t.Fatalf("outcome counts do not add up: %+v", rep)
	}
	if rep.OK > 0 && (rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99) {
		t.Fatalf("latency percentiles not monotone: %+v", rep)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
	out := rep.String()
	for _, want := range []string{"ok", "degraded", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunLoadSurvivesRejuvenation is the loadgen-side statement of the
// acceptance criterion: a forced compromise plus rejuvenation in the middle
// of an open-loop run produces zero 5xx responses.
func TestRunLoadSurvivesRejuvenation(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(100 * time.Millisecond)
		if err := s.Compromise(0); err != nil {
			t.Error(err)
		}
		time.Sleep(100 * time.Millisecond)
		if err := s.Rejuvenate(0, RejuvManual); err != nil {
			t.Error(err)
		}
	}()
	rep, err := RunLoad(ts.URL, LoadConfig{
		Rate:     150,
		Duration: 500 * time.Millisecond,
		Timeout:  5 * time.Second,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Errors != 0 {
		t.Fatalf("rejuvenation under load failed requests: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("no successful answers at all: %+v", rep)
	}
}

func TestRunLoadValidatesConfig(t *testing.T) {
	if _, err := RunLoad("http://127.0.0.1:0", LoadConfig{Rate: 0, Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := RunLoad("http://127.0.0.1:0", LoadConfig{Rate: 10, Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// TestRunLoadStatusCounts pins the per-status-code failure breakdown: a
// server cycling 200/429/503 must produce a report whose StatusCounts
// reconcile exactly with the aggregate Rejected and Failed counters, keeping
// gateway shed (429) distinguishable from shard errors (5xx).
func TestRunLoadStatusCounts(t *testing.T) {
	var mu sync.Mutex
	n := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		i := n
		n++
		mu.Unlock()
		switch i % 3 {
		case 0:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"class":1,"agreeing":3,"proposals":3}`)
		case 1:
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	rep, err := RunLoad(ts.URL, LoadConfig{
		Rate: 100, Duration: 300 * time.Millisecond, Timeout: 2 * time.Second, Seed: 1,
		ClientID: "breakdown",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("transport errors against a local stub: %+v", rep)
	}
	if rep.StatusCounts[http.StatusTooManyRequests] != rep.Rejected {
		t.Fatalf("429 count %d != rejected %d", rep.StatusCounts[http.StatusTooManyRequests], rep.Rejected)
	}
	if rep.StatusCounts[http.StatusServiceUnavailable] != rep.Failed {
		t.Fatalf("503 count %d != failed %d", rep.StatusCounts[http.StatusServiceUnavailable], rep.Failed)
	}
	if _, ok := rep.StatusCounts[http.StatusOK]; ok {
		t.Fatal("200s must not appear in the non-200 breakdown")
	}
	out := rep.String()
	if !strings.Contains(out, "non-200 by status") {
		t.Fatalf("report does not render the breakdown:\n%s", out)
	}
}

// TestRunLoadCleanReportOmitsBreakdown keeps the all-200 report identical to
// the pre-breakdown format (StatusCounts nils out when empty).
func TestRunLoadCleanReportOmitsBreakdown(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rep, err := RunLoad(ts.URL, LoadConfig{
		Rate: 50, Duration: 200 * time.Millisecond, Timeout: 2 * time.Second, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 && rep.Rejected == 0 && rep.Errors == 0 && rep.StatusCounts != nil {
		t.Fatalf("clean run still carries StatusCounts: %+v", rep.StatusCounts)
	}
	if strings.Contains(rep.String(), "non-200") {
		t.Fatalf("clean report renders an empty breakdown:\n%s", rep)
	}
}
