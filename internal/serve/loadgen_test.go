package serve

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRunLoadAgainstHealthyServer(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := RunLoad(ts.URL, LoadConfig{
		Rate:     200,
		Duration: 400 * time.Millisecond,
		Timeout:  5 * time.Second,
		Seed:     38,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 {
		t.Fatal("open-loop generator sent nothing")
	}
	if rep.Errors != 0 || rep.Failed != 0 {
		t.Fatalf("healthy run saw failures: %+v", rep)
	}
	if rep.OK+rep.Degraded != rep.Sent-rep.Rejected {
		t.Fatalf("outcome counts do not add up: %+v", rep)
	}
	if rep.OK > 0 && (rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99) {
		t.Fatalf("latency percentiles not monotone: %+v", rep)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
	out := rep.String()
	for _, want := range []string{"ok", "degraded", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunLoadSurvivesRejuvenation is the loadgen-side statement of the
// acceptance criterion: a forced compromise plus rejuvenation in the middle
// of an open-loop run produces zero 5xx responses.
func TestRunLoadSurvivesRejuvenation(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(100 * time.Millisecond)
		if err := s.Compromise(0); err != nil {
			t.Error(err)
		}
		time.Sleep(100 * time.Millisecond)
		if err := s.Rejuvenate(0, RejuvManual); err != nil {
			t.Error(err)
		}
	}()
	rep, err := RunLoad(ts.URL, LoadConfig{
		Rate:     150,
		Duration: 500 * time.Millisecond,
		Timeout:  5 * time.Second,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Errors != 0 {
		t.Fatalf("rejuvenation under load failed requests: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("no successful answers at all: %+v", rep)
	}
}

func TestRunLoadValidatesConfig(t *testing.T) {
	if _, err := RunLoad("http://127.0.0.1:0", LoadConfig{Rate: 0, Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := RunLoad("http://127.0.0.1:0", LoadConfig{Rate: 10, Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
}
