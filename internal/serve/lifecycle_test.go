package serve

import (
	"testing"

	"mvml/internal/obs"
)

func TestResizeWorkers(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	if got := s.Workers(); got != 2 {
		t.Fatalf("initial workers %d, want 2", got)
	}

	if err := s.ResizeWorkers(4); err != nil {
		t.Fatal(err)
	}
	if got := s.Workers(); got != 4 {
		t.Fatalf("after grow: %d workers, want 4", got)
	}
	versions, _ := s.Status()
	for _, v := range versions {
		if v.Workers != 4 {
			t.Fatalf("version %s reports %d workers, want 4", v.Name, v.Workers)
		}
	}

	if err := s.ResizeWorkers(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Workers(); got != 1 {
		t.Fatalf("after shrink: %d workers, want 1", got)
	}

	// The resized pools must still answer with the full ensemble.
	res, err := s.Classify(testImage(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposals != 3 || res.Agreeing != 3 {
		t.Fatalf("resized server lost ensemble agreement: %+v", res)
	}

	if err := s.ResizeWorkers(0); err == nil {
		t.Fatal("resize to zero workers accepted")
	}
}

// TestResizeKeepsCompromisedVersionUniform pins the replica-uniformity rule:
// a worker added while its version is compromised must clone the CURRENT
// (faulted) weights, not the pristine safe store — replicas of one version
// must answer identically, and rejuvenation must still heal them all.
func TestResizeKeepsCompromisedVersionUniform(t *testing.T) {
	s := newTestServer(t, testConfig(), nil)
	if err := s.Compromise(0); err != nil {
		t.Fatal(err)
	}
	if err := s.ResizeWorkers(4); err != nil {
		t.Fatal(err)
	}
	// With version 0 compromised (all four replicas identically), every
	// decided request is a clean 2-of-3: the healthy pair always agrees and
	// the voter never sees intra-version disagreement.
	for i := 0; i < 16; i++ {
		res, err := s.Classify(testImage(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Proposals == 3 && res.Agreeing != 2 && res.Agreeing != 3 {
			t.Fatalf("request %d: mixed replica weights? %+v", i, res)
		}
	}
	// Rejuvenation restores the pristine weights on every replica, grown
	// ones included.
	if err := s.Rejuvenate(0, RejuvManual); err != nil {
		t.Fatal(err)
	}
	if !classifyUntil(t, s, 32, func(r Result) bool { return r.Agreeing == 3 }) {
		t.Fatal("full agreement not restored after rejuvenating the resized pool")
	}
}

func TestDrainingFlag(t *testing.T) {
	rt := obs.NewRuntime(0)
	cfg := testConfig()
	cfg.ShardLabel = "shard-x"
	s := newTestServer(t, cfg, rt)

	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}
	s.SetDraining(true)
	if !s.Draining() {
		t.Fatal("drain flag did not stick")
	}
	// Draining is advisory: the shard keeps answering what reaches it.
	if _, err := s.Classify(testImage(0)); err != nil {
		t.Fatalf("draining server refused a request: %v", err)
	}
	s.SetDraining(false)
	if s.Draining() {
		t.Fatal("drain flag did not clear")
	}
}

// TestShardLabelOnSpans pins the multi-shard attribution contract: with a
// ShardLabel configured, every span the server emits carries the label, so a
// shared sink stays filterable per shard; without one, no span carries it.
func TestShardLabelOnSpans(t *testing.T) {
	for _, label := range []string{"", "shard-7"} {
		rt := obs.NewRuntime(0)
		cfg := testConfig()
		cfg.ShardLabel = label
		s := newTestServer(t, cfg, rt)
		if _, err := s.Classify(testImage(1)); err != nil {
			t.Fatal(err)
		}
		recs := rt.Spans().Spans()
		if len(recs) == 0 {
			t.Fatal("no spans published")
		}
		for _, r := range recs {
			got, ok := r.Attrs["shard"]
			if label == "" && ok {
				t.Fatalf("unlabelled server emitted shard attr on %s span", r.Kind)
			}
			if label != "" && (!ok || got != label) {
				t.Fatalf("%s span missing shard label: attrs=%v", r.Kind, r.Attrs)
			}
		}
	}
}
