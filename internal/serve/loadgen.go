package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mvml/internal/signs"
	"mvml/internal/stats"
)

// LoadConfig parameterises an open-loop load run: requests fire on a fixed
// schedule regardless of how fast responses come back, so queueing delay is
// measured honestly (closed-loop generators hide it by self-throttling).
type LoadConfig struct {
	// Rate is the request arrival rate in requests per second.
	Rate float64
	// Duration is how long to generate load.
	Duration time.Duration
	// Timeout bounds each HTTP request.
	Timeout time.Duration
	// Seed varies the classes requested.
	Seed uint64
	// ClientID, when non-empty, is sent as the X-Client-ID header on every
	// request — the identity the gateway's per-client retry budgets key on.
	ClientID string
}

// DefaultLoadConfig is a moderate smoke-load.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{Rate: 100, Duration: 3 * time.Second, Timeout: 2 * time.Second, Seed: 38}
}

// LoadReport summarises one load run.
type LoadReport struct {
	Sent       int           `json:"sent"`
	OK         int           `json:"ok"`       // 200, full-majority answers
	Degraded   int           `json:"degraded"` // 200, degraded answers
	Rejected   int           `json:"rejected"` // 429 backpressure
	Failed     int           `json:"failed"`   // 5xx
	Errors     int           `json:"errors"`   // transport-level failures
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"throughput_rps"` // answered (OK+Degraded) per second
	P50        time.Duration `json:"p50_ns"`
	P90        time.Duration `json:"p90_ns"`
	P99        time.Duration `json:"p99_ns"`
	Max        time.Duration `json:"max_ns"`
	// StatusCounts breaks every non-200 HTTP response down by status code,
	// so gateway shed (429) and shard errors (503, ...) stay distinguishable
	// in one report instead of lumping into the aggregate counters above.
	StatusCounts map[int]int `json:"status_counts,omitempty"`
}

// String renders the report as the one-paragraph summary the CLI prints.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent %d: %d ok, %d degraded, %d rejected (429), %d failed (5xx), %d transport errors\n",
		r.Sent, r.OK, r.Degraded, r.Rejected, r.Failed, r.Errors)
	if len(r.StatusCounts) > 0 {
		codes := make([]int, 0, len(r.StatusCounts))
		for c := range r.StatusCounts {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		parts := make([]string, 0, len(codes))
		for _, c := range codes {
			parts = append(parts, fmt.Sprintf("%d×%d", c, r.StatusCounts[c]))
		}
		fmt.Fprintf(&b, "non-200 by status: %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "elapsed %v, throughput %.1f req/s\n", r.Elapsed.Round(time.Millisecond), r.Throughput)
	fmt.Fprintf(&b, "latency p50 %v  p90 %v  p99 %v  max %v",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	return b.String()
}

// RunLoad drives baseURL's /v1/classify endpoint open-loop per cfg and
// reports outcome counts, throughput and latency percentiles (computed over
// answered requests). The schedule is deficit-corrected: each wakeup fires
// however many requests the elapsed wall clock is owed, so a busy machine
// that misses ticker ticks still offers the configured rate instead of
// silently under-driving the target.
func RunLoad(baseURL string, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("serve: load rate %v and duration %v must be positive", cfg.Rate, cfg.Duration)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}
	url := strings.TrimRight(baseURL, "/") + "/v1/classify"

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		report    LoadReport
		latencies []time.Duration
	)
	report.StatusCounts = map[int]int{}
	fire := func(n int) {
		body, _ := json.Marshal(ClassifyRequest{
			Class: ptr((n + int(cfg.Seed)) % signs.NumClasses),
			Seed:  cfg.Seed + uint64(n),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
			if err == nil {
				req.Header.Set("Content-Type", "application/json")
				if cfg.ClientID != "" {
					req.Header.Set("X-Client-ID", cfg.ClientID)
				}
			}
			var resp *http.Response
			if err == nil {
				resp, err = client.Do(req)
			}
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			report.Sent++
			if err != nil {
				report.Errors++
				return
			}
			var cr ClassifyResponse
			decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&cr)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				report.StatusCounts[resp.StatusCode]++
			}
			switch {
			case resp.StatusCode == http.StatusOK && decErr == nil:
				if cr.Degraded {
					report.Degraded++
				} else {
					report.OK++
				}
				latencies = append(latencies, lat)
			case resp.StatusCode == http.StatusTooManyRequests:
				report.Rejected++
			case resp.StatusCode >= 500:
				report.Failed++
			default:
				report.Errors++
			}
		}()
	}

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval < time.Millisecond {
		interval = time.Millisecond // wake at most 1kHz; deficit catch-up covers the rest
	}
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(cfg.Duration)

	total := int(cfg.Rate * cfg.Duration.Seconds())
	n := 0
loop:
	for n < total {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			owed := int(cfg.Rate * time.Since(start).Seconds())
			if owed > total {
				owed = total
			}
			for ; n < owed; n++ {
				fire(n)
			}
		}
	}
	wg.Wait()
	report.Elapsed = time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		report.P50 = stats.NearestRank(latencies, 0.50)
		report.P90 = stats.NearestRank(latencies, 0.90)
		report.P99 = stats.NearestRank(latencies, 0.99)
		report.Max = latencies[len(latencies)-1]
	}
	if secs := report.Elapsed.Seconds(); secs > 0 {
		report.Throughput = float64(report.OK+report.Degraded) / secs
	}
	if len(report.StatusCounts) == 0 {
		report.StatusCounts = nil
	}
	return &report, nil
}

func ptr[T any](v T) *T { return &v }
