package serve

import (
	"sync"
	"sync/atomic"

	"mvml/internal/core"
	"mvml/internal/nn"
	"mvml/internal/obs"
	"mvml/internal/tensor"
)

// poolState is a version pool's serving state.
type poolState int

const (
	poolServing poolState = iota
	// poolDraining rejects new batches while in-flight ones finish — the
	// first phase of rejuvenation.
	poolDraining
	// poolHalted is terminal (server shutdown).
	poolHalted
)

func (st poolState) String() string {
	switch st {
	case poolServing:
		return "serving"
	case poolDraining:
		return "draining"
	case poolHalted:
		return "halted"
	default:
		return "unknown"
	}
}

// batchJob asks one version for its predictions over a stacked batch.
type batchJob struct {
	batch *tensor.Tensor
	// out is buffered for every version, so a worker finishing after the
	// batch deadline never blocks on the send.
	out chan versionAnswer
}

// versionAnswer is one version's predictions for a batch (or its failure).
type versionAnswer struct {
	version int
	preds   []int
	err     error
	// start and end bracket the forward pass on the span sink's clock; both
	// zero when tracing is disabled. The batcher back-fills them as
	// "forward" intervals into every member request's trace.
	start, end float64
}

// worker is one replica plus its private stop signal, so the pool can be
// shrunk one worker at a time (autoscaling) without closing the shared jobs
// channel. quant carries the replica's calibrated int8 activation scales
// (nil on float pools); scales are keyed by layer identity, so they belong
// to exactly this replica's network.
type worker struct {
	nv    *core.NNVersion
	quant *nn.QuantParams
	stop  chan struct{}
}

// pool runs one version: a set of workers, each owning a private replica
// network with the version's shared weights. Replicas exist because layer
// forward passes record state — two batches must never share a network.
type pool struct {
	index int
	name  string
	m     *metrics

	jobs        chan batchJob
	workers     []*worker
	gemmWorkers int
	wg          sync.WaitGroup

	// factory builds one more replica (used by resize) together with its
	// int8 calibration (nil for float pools); nextReplica numbers replicas so
	// each gets its own deterministic fault stream. Both are only touched
	// while the pool is quiesced under the server's rejuvMu.
	factory     func(replica int) (*core.NNVersion, *nn.QuantParams, error)
	nextReplica int

	// weightEpoch counts weight swaps on this pool's replicas (compromise,
	// rejuvenation restore). Workers compare it per job and invalidate their
	// arena's packed weight panels when it moved — without this a
	// rejuvenated replica would keep serving its compromised weights out of
	// the packed-GEMM cache. Bumped only while the pool is quiesced; atomic
	// because workers read it outside the lock.
	weightEpoch atomic.Uint64

	// quantized marks an int8 pool (status/reporting only; the workers'
	// QuantParams do the actual switching).
	quantized bool

	mu      sync.Mutex
	cond    *sync.Cond
	state   poolState
	pending int // jobs accepted but not yet finished

	// Divergence ring: outcome of the last windowSize decided requests this
	// version participated in (true = disagreed with the voted output).
	window     []bool
	windowPos  int
	windowFill int
	disagreed  int
	threshold  float64

	divergedTotal *obs.Counter
}

func newPool(index int, name string, cfg Config, m *metrics) *pool {
	p := &pool{
		index:         index,
		name:          name,
		m:             m,
		jobs:          make(chan batchJob, cfg.WorkersPerVersion),
		gemmWorkers:   cfg.GemmWorkers,
		window:        make([]bool, cfg.DivergenceWindow),
		threshold:     cfg.DivergenceThreshold,
		divergedTotal: m.divergence(name),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// addWorker registers one replica; call before start.
func (p *pool) addWorker(v *core.NNVersion, quant *nn.QuantParams) {
	p.workers = append(p.workers, &worker{nv: v, quant: quant, stop: make(chan struct{})})
	p.nextReplica++
}

// start launches one goroutine per replica.
func (p *pool) start() {
	for _, w := range p.workers {
		p.wg.Add(1)
		go p.run(w)
	}
}

// run is a worker loop: each job is a full-batch inference on this worker's
// private replica, through the fused-GEMM arena path. The arena is owned by
// this goroutine (like the replica itself), so buffers are reused across
// jobs without synchronisation; the prediction slice crosses the channel to
// the voter and therefore must be freshly allocated per job (preds = nil).
func (p *pool) run(w *worker) {
	defer p.wg.Done()
	ar := nn.NewInferenceArena()
	ar.GemmWorkers = p.gemmWorkers
	ar.Profiler = p.m.layerProfiler(p.name)
	ar.Quant = w.quant
	sink := p.m.spans
	seenEpoch := p.weightEpoch.Load()
	for {
		select {
		case <-w.stop:
			return
		case job, ok := <-p.jobs:
			if !ok {
				return
			}
			// A weight swap while this worker was idle (compromise or
			// rejuvenation ran under quiescence) invalidates the packed
			// weight panels cached in the arena.
			if ep := p.weightEpoch.Load(); ep != seenEpoch {
				ar.InvalidateWeights()
				seenEpoch = ep
			}
			ans := versionAnswer{version: p.index}
			if sink != nil {
				ans.start = sink.Now()
			}
			ans.preds, ans.err = w.nv.Network().PredictBatchArena(job.batch, ar, nil)
			if sink != nil {
				ans.end = sink.Now()
			}
			job.out <- ans
			p.finishJob()
		}
	}
}

// trySubmit offers a batch to the pool without ever blocking: it declines
// when the pool is draining/halted or all workers are busy with a full
// backlog. A declined version simply contributes no proposal to this batch.
func (p *pool) trySubmit(job batchJob) bool {
	p.mu.Lock()
	if p.state != poolServing {
		p.mu.Unlock()
		return false
	}
	p.pending++
	p.mu.Unlock()
	select {
	case p.jobs <- job:
		return true
	default:
		p.finishJob()
		return false
	}
}

func (p *pool) finishJob() {
	p.mu.Lock()
	p.pending--
	if p.pending == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// withQuiesced drains the pool (no new batches; in-flight ones finish), runs
// fn on every replica while nothing touches the weights, and reinstates the
// pool. The first error is returned but every replica is still visited, so
// the replicas never diverge from each other.
func (p *pool) withQuiesced(fn func(*core.NNVersion) error) error {
	p.mu.Lock()
	if p.state == poolHalted {
		p.mu.Unlock()
		return ErrClosed
	}
	p.state = poolDraining
	for p.pending > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()

	var first error
	for _, w := range p.workers {
		if err := fn(w.nv); err != nil && first == nil {
			first = err
		}
	}
	// Every withQuiesced caller may have swapped weights (restore, fault
	// injection); bumping the epoch unconditionally costs at worst one
	// spurious repack per worker, while missing a bump would serve stale
	// packed weights. Ordered before the pool reopens so every worker sees
	// the new epoch ahead of its next job.
	p.weightEpoch.Add(1)

	p.mu.Lock()
	if p.state == poolDraining {
		p.state = poolServing
	}
	p.mu.Unlock()
	return first
}

// resize grows or shrinks the worker set to n replicas while the pool is
// quiesced. New replicas are built by the factory and then loaded with the
// CURRENT weights of an existing replica (not the pristine ones): if the
// version is compromised right now, all replicas must stay functionally
// identical until rejuvenation restores the whole set. Shrinking stops the
// newest workers first. Caller must serialise resize with rejuvenation
// (the server holds rejuvMu).
func (p *pool) resize(n int) error {
	p.mu.Lock()
	if p.state == poolHalted {
		p.mu.Unlock()
		return ErrClosed
	}
	p.state = poolDraining
	for p.pending > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()

	// The pool is quiesced, so no goroutine touches the replicas themselves;
	// the slice header is still guarded by p.mu for concurrent size() reads.
	var err error
	for len(p.workers) > n && len(p.workers) > 1 {
		w := p.workers[len(p.workers)-1]
		p.mu.Lock()
		p.workers = p.workers[:len(p.workers)-1]
		p.mu.Unlock()
		close(w.stop)
	}
	if len(p.workers) < n {
		cur := p.workers[0].nv.Network().CloneWeights()
		for len(p.workers) < n {
			nv, quant, ferr := p.factory(p.nextReplica)
			if ferr != nil {
				err = ferr
				break
			}
			if ferr := nv.Network().RestoreWeights(cur); ferr != nil {
				err = ferr
				break
			}
			p.nextReplica++
			w := &worker{nv: nv, quant: quant, stop: make(chan struct{})}
			p.mu.Lock()
			p.workers = append(p.workers, w)
			p.mu.Unlock()
			p.wg.Add(1)
			go p.run(w)
		}
	}

	p.mu.Lock()
	if p.state == poolDraining {
		p.state = poolServing
	}
	p.mu.Unlock()
	return err
}

// size reports the current replica count.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// halt permanently stops the pool and its workers (server shutdown).
func (p *pool) halt() {
	p.mu.Lock()
	if p.state == poolHalted {
		p.mu.Unlock()
		return
	}
	p.state = poolHalted
	for p.pending > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
	close(p.jobs)
	p.wg.Wait()
}

// observe records whether this version agreed with the voted output for one
// decided request, maintaining the reactive-trigger ring.
func (p *pool) observe(disagreed bool) {
	p.mu.Lock()
	if p.windowFill == len(p.window) {
		if p.window[p.windowPos] {
			p.disagreed--
		}
	} else {
		p.windowFill++
	}
	p.window[p.windowPos] = disagreed
	if disagreed {
		p.disagreed++
	}
	p.windowPos = (p.windowPos + 1) % len(p.window)
	p.mu.Unlock()
	if disagreed {
		p.divergedTotal.Inc()
	}
}

// shouldRejuvenate reports whether the divergence window is full and over
// threshold — the reactive trigger condition.
func (p *pool) shouldRejuvenate() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state != poolServing || p.windowFill < len(p.window) {
		return false
	}
	return float64(p.disagreed)/float64(len(p.window)) >= p.threshold
}

// resetDivergence clears the window after rejuvenation so stale
// disagreements cannot immediately re-trigger.
func (p *pool) resetDivergence() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.window {
		p.window[i] = false
	}
	p.windowPos, p.windowFill, p.disagreed = 0, 0, 0
}

// divergenceRate is the current windowed disagreement fraction.
func (p *pool) divergenceRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.windowFill == 0 {
		return 0
	}
	return float64(p.disagreed) / float64(p.windowFill)
}

func (p *pool) status() VersionStatus {
	p.mu.Lock()
	st := VersionStatus{
		Index:     p.index,
		Name:      p.name,
		State:     p.state.String(),
		InFlight:  p.pending,
		Workers:   len(p.workers),
		Quantized: p.quantized,
	}
	if p.windowFill > 0 {
		st.Divergence = float64(p.disagreed) / float64(p.windowFill)
	}
	p.mu.Unlock()
	return st
}
