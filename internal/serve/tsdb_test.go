package serve

import (
	"testing"

	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/obs/tsdb"
)

// TestResponsesUnchangedByTsdbAndSampling extends the determinism guarantee
// to the full telemetry pipeline: a server with tail sampling, the
// time-series store (span ingestion + rule evaluation) and a registry
// scraper all attached must answer bitwise identically to a bare one.
// Telemetry observes; it never decides.
func TestResponsesUnchangedByTsdbAndSampling(t *testing.T) {
	rt := obs.NewRuntime(256)
	rt.SetSampler(obs.NewSampler(obs.SampleConfig{Rate: 0.1, Seed: 42}))
	store := tsdb.New(tsdb.Config{BucketSeconds: 1, Buckets: 120})
	store.Register(rt.Metrics())
	rules := tsdb.NewRules(store, 1, tsdb.DefaultServingRules(health.DefaultOptions()))
	rules.Register(rt.Metrics())
	rt.Spans().AttachSampled(tsdb.NewIngester(store, rules))
	scraper := tsdb.NewScraper(store)

	bare := newTestServer(t, testConfig(), nil)
	inst := newTestServer(t, testConfig(), rt)

	const n = 48
	for i := 0; i < n; i++ {
		img := testImage(i)
		a, errA := bare.Classify(img)
		b, errB := inst.Classify(img)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("request %d: error mismatch %v vs %v", i, errA, errB)
		}
		if a.Class != b.Class || a.Degraded != b.Degraded ||
			a.Agreeing != b.Agreeing || a.Proposals != b.Proposals {
			t.Fatalf("request %d: answer differs with tsdb+sampling attached: %+v vs %+v", i, a, b)
		}
		if i%8 == 0 {
			if err := scraper.ScrapeRegistry(rt.Metrics(), rt.Spans().Now()); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The pipeline actually ran: the sink saw every span, retained a subset,
	// and the store aggregated only the retained ones.
	if rt.Spans().Published() == 0 {
		t.Fatal("no spans published")
	}
	if rt.Spans().Retained() > rt.Spans().Published() {
		t.Fatal("retained more than published")
	}
	horizon := rt.Spans().Now() + 1
	reqs := store.FamilySumOver(tsdb.SeriesRequests, 0, horizon)
	if reqs <= 0 || reqs > n {
		t.Fatalf("store saw %v requests, want (0, %d]", reqs, n)
	}
}
