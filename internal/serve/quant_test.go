package serve

// Serving-side tests for the packed-GEMM weight cache and the int8 inference
// path: the swap-then-infer differential (compromise → answers change;
// rejuvenate → answers restore bitwise) is the regression test for weight-
// epoch invalidation — with a stale packed cache a rejuvenated replica would
// keep serving its compromised weights.

import (
	"testing"
	"time"
)

// quantConfig is a single-version configuration whose answers expose the
// version directly (no majority to outvote a weight swap), with a small
// calibration dataset for the int8 pools.
func quantConfig() Config {
	cfg := testConfig()
	cfg.Versions = 1
	cfg.Dataset.TrainPerClass = 2
	cfg.Dataset.TestPerClass = 2
	cfg.ProactiveInterval = 0
	cfg.RequestTimeout = 5 * time.Second
	return cfg
}

// classifySet returns the served class for a fixed set of images.
func classifySet(t *testing.T, s *Server, n int) []int {
	t.Helper()
	out := make([]int, n)
	for i := range out {
		res, err := s.Classify(testImage(i))
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		out[i] = res.Class
	}
	return out
}

// TestSwapThenInferDifferential drives the full weight-swap lifecycle through
// a serving worker's warmed arena, float and int8: baseline answers, then a
// compromise must change them (the packed weight panels were invalidated and
// repacked from the faulty weights — a stale cache would keep the old
// answers), then rejuvenation must restore the baseline exactly (stale cache
// would keep the faulty answers).
func TestSwapThenInferDifferential(t *testing.T) {
	for _, int8Path := range []bool{false, true} {
		name := map[bool]string{false: "float", true: "int8"}[int8Path]
		t.Run(name, func(t *testing.T) {
			cfg := quantConfig()
			if int8Path {
				cfg.Int8Versions = []int{0}
			}
			s := newTestServer(t, cfg, nil)
			const n = 12
			baseline := classifySet(t, s, n)

			if err := s.Compromise(0); err != nil {
				t.Fatal(err)
			}
			compromised := classifySet(t, s, n)
			changed := false
			for i := range baseline {
				if compromised[i] != baseline[i] {
					changed = true
					break
				}
			}
			if !changed {
				t.Fatal("compromise did not change a single answer — stale packed weights, or fault injection too weak for this test")
			}

			if err := s.Rejuvenate(0, RejuvManual); err != nil {
				t.Fatal(err)
			}
			restored := classifySet(t, s, n)
			for i := range baseline {
				if restored[i] != baseline[i] {
					t.Fatalf("image %d: post-rejuvenation class %d, baseline %d — packed weight cache not invalidated on restore",
						i, restored[i], baseline[i])
				}
			}
		})
	}
}

// TestInt8MixedEnsembleServes serves a three-version ensemble with one
// quantized member: the float majority pins the voted class, so every answer
// must match the float-only server's, and /status must advertise which
// version is quantized.
func TestInt8MixedEnsembleServes(t *testing.T) {
	cfg := testConfig()
	cfg.Dataset.TrainPerClass = 2
	cfg.Dataset.TestPerClass = 2
	cfg.Int8Versions = []int{1}
	s := newTestServer(t, cfg, nil)

	ref := newTestServer(t, testConfig(), nil)
	for i := 0; i < 8; i++ {
		res, err := s.Classify(testImage(i))
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		want, err := ref.Classify(testImage(i))
		if err != nil {
			t.Fatalf("image %d (reference): %v", i, err)
		}
		if res.Class != want.Class {
			t.Fatalf("image %d: mixed ensemble voted %d, float ensemble %d — the two float versions should outvote any int8 flip",
				i, res.Class, want.Class)
		}
	}

	versions, _ := s.Status()
	for _, v := range versions {
		if want := v.Index == 1; v.Quantized != want {
			t.Fatalf("version %d: quantized=%v, want %v", v.Index, v.Quantized, want)
		}
	}
}

// TestInt8ResizeWorkers grows an int8 pool: late-built replicas must come out
// of the factory with their own calibration and answer like their siblings.
func TestInt8ResizeWorkers(t *testing.T) {
	cfg := quantConfig()
	cfg.Int8Versions = []int{0}
	cfg.WorkersPerVersion = 1
	s := newTestServer(t, cfg, nil)
	baseline := classifySet(t, s, 8)
	if err := s.ResizeWorkers(3); err != nil {
		t.Fatal(err)
	}
	if got := s.Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
	// All replicas share weights and calibration-derived scales, so answers
	// are identical whichever (possibly new) worker serves the batch.
	for round := 0; round < 3; round++ {
		got := classifySet(t, s, 8)
		for i := range baseline {
			if got[i] != baseline[i] {
				t.Fatalf("round %d image %d: class %d, baseline %d — resized replica diverges", round, i, got[i], baseline[i])
			}
		}
	}
}
