// Package serve is the online multi-version inference serving subsystem: it
// exposes the paper's three-version classifier ensemble (§IV) as a concurrent
// request/response service with bounded admission, micro-batching, majority
// voting, graceful degradation and zero-downtime rejuvenation.
//
// Request flow:
//
//	client → admission queue (bounded; full ⇒ explicit rejection)
//	       → micro-batcher   (flush on batch size or max-wait deadline)
//	       → per-version worker pools (the N versions run concurrently)
//	       → majority voter  (rules R.1–R.3; safe skip ⇒ degraded fallback)
//	       → response
//
// Each worker owns a private replica of its version's network, because
// nn.Layer implementations record state during Forward and are not safe for
// concurrent use. All replicas of a version share the same weights, so a
// version answers identically regardless of which worker serves the batch.
//
// Rejuvenation never stops the service: one version at a time is drained
// (workers finish in-flight batches, new batches skip the version), its
// replicas reload pristine weights from safe storage, and it is reinstated
// while the remaining versions keep answering — requests served meanwhile are
// at most tagged degraded, never failed. Rejuvenation is triggered reactively
// (observed divergence from the majority exceeding a threshold) and
// proactively (time-triggered rotation), mirroring the paper's two triggers.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvml/internal/core"
	"mvml/internal/experiments"
	"mvml/internal/faultinject"
	"mvml/internal/health"
	"mvml/internal/nn"
	"mvml/internal/obs"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// Config parameterises a Server. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Versions is the ensemble size (the paper's n; default 3).
	Versions int
	// WorkersPerVersion is how many weight-sharing replicas serve each
	// version concurrently.
	WorkersPerVersion int
	// QueueDepth bounds the admission queue; a full queue rejects instead
	// of blocking (explicit backpressure).
	QueueDepth int
	// MaxBatch is the micro-batch flush size.
	MaxBatch int
	// MaxBatchWait is the micro-batch flush deadline: a partially filled
	// batch is dispatched at most this long after its first request.
	MaxBatchWait time.Duration
	// RequestTimeout is the per-request deadline. Versions that have not
	// answered by then are dropped from the vote; the request degrades to
	// whatever proposals arrived rather than failing.
	RequestTimeout time.Duration
	// Seed drives model initialisation, training and fault injection.
	Seed uint64
	// TrainEpochs trains each version on the signs dataset before serving;
	// 0 serves the deterministic untrained initialisation (fast start for
	// tests and latency-focused load runs).
	TrainEpochs int
	// Dataset configures the training data when TrainEpochs > 0.
	Dataset signs.Config
	// ProactiveInterval rejuvenates one version (round-robin) per tick;
	// 0 disables the proactive trigger.
	ProactiveInterval time.Duration
	// DivergenceWindow and DivergenceThreshold configure the reactive
	// trigger: a version whose answers disagreed with the voted output in
	// at least Threshold of the last Window decided requests is rejuvenated.
	DivergenceWindow    int
	DivergenceThreshold float64
	// InjectLayer is the parameterised layer Compromise faults (the paper
	// injects into layer 1 with range (-10, 30)); InjectCount is how many
	// weights one compromise event perturbs.
	InjectLayer int
	InjectCount int
	// Int8Versions lists version indices served through the fixed-point int8
	// inference path: each listed version's replicas quantize their weights
	// symmetrically and run the quantized GEMM kernels, with activation
	// scales calibrated once per replica on the signs test split (see
	// nn.CalibrateInt8). Decisions are verified against the float path by the
	// golden-corpus gate in internal/nn; unlisted versions are untouched, so
	// a mixed ensemble pits both numeric regimes against each other in the
	// vote. Empty serves everything in float32.
	Int8Versions []int
	// GemmWorkers fans the fused convolution GEMMs of each inference worker
	// out over row tiles (see tensor.GemmParallel); results are bitwise
	// identical for every value. <= 1 keeps each worker single-threaded,
	// which is usually right when WorkersPerVersion already saturates cores.
	GemmWorkers int
	// ProfileLayers enables the per-layer inference profiler: every layer
	// dispatch is timed and every GEMM's shape and byte volume is counted
	// into the obs registry (mvserve_layer_seconds, mvserve_gemm_*). Off by
	// default — profiling is observational and never changes answers, but
	// the per-layer clock reads cost a few percent of inference throughput.
	ProfileLayers bool
	// NewNetwork overrides how a version's network is built (tests use
	// small identical networks). nil selects the three small classifier
	// architectures from internal/nn in round-robin order.
	NewNetwork func(version int, r *xrand.Rand) (*nn.Network, error)
	// Health, when non-nil, attaches a streaming health engine to the span
	// firehose: SLO error budgets, anomaly detectors and the online α
	// estimator feed /healthz and the mv_health_* gauges, and the reactive
	// rejuvenation trigger is driven (and suppressed) by health verdicts
	// instead of the raw per-pool divergence counter. Requires a telemetry
	// runtime with a span sink; the engine only observes published spans,
	// so responses are bitwise-identical with it on or off.
	Health *health.Options
	// ShardLabel names this server inside a multi-shard deployment. When
	// non-empty every span the server emits carries a "shard" attribute, so a
	// shared span sink stays attributable per shard (the gateway's per-shard
	// health engines filter on it, and mvtrace groups stage latencies by it).
	// Empty for a standalone server — spans are then byte-identical to the
	// pre-gateway format.
	ShardLabel string

	// batchGate, when non-nil, makes the batcher wait for a token before
	// collecting each batch — lets tests fill the admission queue
	// deterministically.
	batchGate chan struct{}
}

// DefaultConfig returns serving parameters suitable for the demo workload.
func DefaultConfig() Config {
	return Config{
		Versions:            3,
		WorkersPerVersion:   2,
		QueueDepth:          64,
		MaxBatch:            8,
		MaxBatchWait:        2 * time.Millisecond,
		RequestTimeout:      500 * time.Millisecond,
		Seed:                38,
		Dataset:             signs.DefaultConfig(),
		InjectLayer:         1,
		InjectCount:         1,
		DivergenceWindow:    32,
		DivergenceThreshold: 0.5,
	}
}

// Validate reports whether the configuration is serveable.
func (c Config) Validate() error {
	if c.Versions < 1 {
		return fmt.Errorf("serve: need at least one version, got %d", c.Versions)
	}
	if c.WorkersPerVersion < 1 {
		return fmt.Errorf("serve: need at least one worker per version, got %d", c.WorkersPerVersion)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("serve: queue depth %d", c.QueueDepth)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: max batch %d", c.MaxBatch)
	}
	if c.MaxBatchWait <= 0 {
		return fmt.Errorf("serve: max batch wait %v", c.MaxBatchWait)
	}
	if c.RequestTimeout <= 0 {
		return fmt.Errorf("serve: request timeout %v", c.RequestTimeout)
	}
	if c.InjectCount < 1 {
		return fmt.Errorf("serve: inject count %d", c.InjectCount)
	}
	if c.GemmWorkers < 0 {
		return fmt.Errorf("serve: gemm workers %d", c.GemmWorkers)
	}
	for _, v := range c.Int8Versions {
		if v < 0 || v >= c.Versions {
			return fmt.Errorf("serve: int8 version %d outside [0,%d)", v, c.Versions)
		}
	}
	if c.DivergenceWindow < 1 {
		return fmt.Errorf("serve: divergence window %d", c.DivergenceWindow)
	}
	if c.DivergenceThreshold <= 0 || c.DivergenceThreshold > 1 {
		return fmt.Errorf("serve: divergence threshold %v outside (0,1]", c.DivergenceThreshold)
	}
	return nil
}

// Sentinel errors surfaced to callers; the HTTP layer maps them to status
// codes (429 for ErrQueueFull, 503 for ErrNoProposals and ErrClosed).
var (
	// ErrQueueFull is returned when the admission queue is at capacity —
	// the service sheds load explicitly instead of queueing unboundedly.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosed is returned once the server has shut down.
	ErrClosed = errors.New("serve: server closed")
	// ErrNoProposals is returned when no version answered before the
	// request deadline, so not even a degraded answer exists.
	ErrNoProposals = errors.New("serve: no version answered before the deadline")
)

// Result is the served answer for one classification request.
type Result struct {
	// Class is the voted (or degraded-fallback) class index.
	Class int
	// Degraded marks answers that did not come from a full healthy
	// majority: the voter safely skipped and a fallback proposal was used,
	// or fewer than the configured number of versions answered in time.
	Degraded bool
	// Reason explains a degraded answer.
	Reason string
	// Agreeing and Proposals echo the voter's tally.
	Agreeing  int
	Proposals int
	// Err is set when the request failed outright (no proposals at all).
	Err error
}

// request is one queued classification.
type request struct {
	image    *tensor.Tensor
	enqueued time.Time
	deadline time.Time
	done     chan Result // buffered(1); exactly one send

	// span is the request's trace root (nil when tracing is disabled). It is
	// owned by the submitting goroutine until the request enters the queue;
	// the channel handoff then transfers ownership to the batcher, which
	// back-fills the stage intervals and ends it.
	span *obs.Span
	// tq is the queue-wait start on the span sink's clock.
	tq float64
}

// Server is the serving subsystem. Create with New, stop with Close.
type Server struct {
	cfg    Config
	pools  []*pool
	voter  core.Voter[int]
	m      *metrics
	health *health.Engine // nil when the health engine is disabled

	queue chan *request
	depth atomic.Int64 // live queue length, mirrored into the gauge

	stop    chan struct{}
	stopped sync.WaitGroup
	closed  atomic.Bool

	// rejuvMu serialises rejuvenation, compromise and worker resizing so at
	// most one version is ever out of service at a time (the other n−1 keep
	// answering).
	rejuvMu sync.Mutex
	// reactivePending collapses concurrent reactive triggers into one.
	reactivePending atomic.Bool

	// draining is the gateway-visible lifecycle state: a draining shard keeps
	// answering whatever still reaches it (zero downtime), but advertises
	// that new traffic should be routed to its ring successor. Purely
	// advisory — admission itself never rejects on it.
	draining atomic.Bool

	startedAt time.Time
}

// New builds the ensemble (optionally training it), starts the batcher,
// worker pools and the proactive rejuvenation timer, and returns a serving
// Server. rt carries the telemetry runtime; nil serves uninstrumented —
// instrumentation never changes responses.
func New(cfg Config, rt *obs.Runtime) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)

	var train, calib []nn.Sample
	if cfg.TrainEpochs > 0 || len(cfg.Int8Versions) > 0 {
		ds, err := signs.Generate(cfg.Dataset)
		if err != nil {
			return nil, fmt.Errorf("serve: training data: %w", err)
		}
		if cfg.TrainEpochs > 0 {
			train = ds.Train
		}
		if len(cfg.Int8Versions) > 0 {
			// Int8 activation scales are calibrated on the test split — the
			// same distribution the quantized versions will serve.
			calib = ds.Test
		}
	}

	s := &Server{
		cfg:       cfg,
		voter:     core.NewEqualityVoter[int](),
		m:         newMetrics(rt, cfg.ProfileLayers, cfg.ShardLabel),
		queue:     make(chan *request, cfg.QueueDepth),
		stop:      make(chan struct{}),
		startedAt: time.Now(),
	}
	if cfg.Health != nil && s.m.spans != nil {
		// The engine rides the span firehose: it sees every published span
		// (votes, stages, rejuvenations) and nothing else, so enabling it
		// cannot change a single response. Verdict-driven rejuvenation
		// replaces the per-pool divergence counter in maybeReact.
		opts := *cfg.Health
		if opts.DivergenceWindow == 0 {
			opts.DivergenceWindow = cfg.DivergenceWindow
		}
		if opts.DivergenceThreshold == 0 {
			opts.DivergenceThreshold = cfg.DivergenceThreshold
		}
		if opts.ShardFilter == "" {
			// On a shared multi-shard sink this engine must judge only its
			// own shard's spans.
			opts.ShardFilter = cfg.ShardLabel
		}
		s.health = health.NewEngine(opts, s.m.reg)
		s.m.spans.Attach(s.health)
	}

	for v := 0; v < cfg.Versions; v++ {
		var vcalib []nn.Sample
		for _, iv := range cfg.Int8Versions {
			if iv == v {
				vcalib = calib
				break
			}
		}
		p, err := s.buildPool(v, root, train, vcalib)
		if err != nil {
			s.haltPools()
			return nil, err
		}
		s.pools = append(s.pools, p)
	}

	s.stopped.Add(1)
	go s.batchLoop()
	if cfg.ProactiveInterval > 0 {
		s.stopped.Add(1)
		go s.proactiveLoop()
	}
	return s, nil
}

// makeNetwork builds version v's architecture with its deterministic stream.
func (s *Server) makeNetwork(v int, root *xrand.Rand) (*nn.Network, error) {
	r := root.Split("model", uint64(v))
	if s.cfg.NewNetwork != nil {
		return s.cfg.NewNetwork(v, r)
	}
	names := nn.AllModels()
	return nn.NewModel(names[v%len(names)], signs.NumClasses, r)
}

// buildPool trains version v once, then clones the weights into
// WorkersPerVersion private replicas. The replica factory is retained on the
// pool so the worker set can be grown later (autoscaling): xrand.Split is a
// pure derivation, so replicas built after startup draw the same
// deterministic streams they would have drawn at startup.
//
// A non-empty calib set marks the version as int8-served: every replica is
// calibrated on it right after adopting the trained weights, so late-built
// autoscale replicas derive exactly the scales their siblings got at startup
// (replicas share weights and the calibration set is fixed).
func (s *Server) buildPool(v int, root *xrand.Rand, train, calib []nn.Sample) (*pool, error) {
	proto, err := s.makeNetwork(v, root)
	if err != nil {
		return nil, fmt.Errorf("serve: version %d: %w", v, err)
	}
	if len(train) > 0 {
		tcfg := experiments.QuickTableIIConfig()
		tcfg.Epochs = s.cfg.TrainEpochs
		if err := experiments.Train(proto, train, tcfg, root.Split("train", uint64(v))); err != nil {
			return nil, fmt.Errorf("serve: training version %d: %w", v, err)
		}
	}
	weights := proto.CloneWeights()

	p := newPool(v, proto.Name, s.cfg, s.m)
	p.quantized = len(calib) > 0
	layer, count := s.cfg.InjectLayer, s.cfg.InjectCount
	p.factory = func(w int) (*core.NNVersion, *nn.QuantParams, error) {
		net, err := s.makeNetwork(v, root)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: version %d replica %d: %w", v, w, err)
		}
		if err := net.RestoreWeights(weights); err != nil {
			return nil, nil, fmt.Errorf("serve: version %d replica %d: %w", v, w, err)
		}
		var quant *nn.QuantParams
		if len(calib) > 0 {
			if quant, err = nn.CalibrateInt8(net, calib, s.cfg.MaxBatch); err != nil {
				return nil, nil, fmt.Errorf("serve: version %d replica %d: calibration: %w", v, w, err)
			}
		}
		faultR := root.Split("fault", uint64(v)<<16|uint64(w))
		nv, err := core.NewNNVersion(net, func(n *nn.Network) error {
			for i := 0; i < count; i++ {
				if _, err := faultinject.RandomWeightInj(n, layer, -10, 30, faultR); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("serve: version %d replica %d: %w", v, w, err)
		}
		return nv, quant, nil
	}
	for w := 0; w < s.cfg.WorkersPerVersion; w++ {
		nv, quant, err := p.factory(w)
		if err != nil {
			return nil, err
		}
		p.addWorker(nv, quant)
	}
	p.start()
	return p, nil
}

// Classify queues one image and blocks until its answer, deadline or
// rejection. The returned error mirrors Result.Err (nil for degraded
// answers — degradation is an answer, not a failure).
func (s *Server) Classify(img *tensor.Tensor) (Result, error) {
	req, err := s.submit(img)
	if err != nil {
		return Result{Err: err}, err
	}
	res := <-req.done
	return res, res.Err
}

// submit performs bounded admission: it never blocks on a full queue.
func (s *Server) submit(img *tensor.Tensor) (*request, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	// sink is nil when tracing is disabled; every span call below is then a
	// no-op and t0 is never read.
	sink := s.m.spans
	var sp *obs.Span
	var t0 float64
	if sink != nil {
		sp = sink.StartTrace("request")
		if s.cfg.ShardLabel != "" {
			sp.SetAttr("shard", s.cfg.ShardLabel)
		}
		t0 = sink.Now()
	}
	want := nn.InputChannels * nn.InputSize * nn.InputSize
	if img == nil || img.Len() != want {
		sp.SetAttr("error", "bad_image")
		sp.End()
		return nil, fmt.Errorf("serve: image must have %d values", want)
	}
	now := time.Now()
	req := &request{
		image:    img,
		enqueued: now,
		deadline: now.Add(s.cfg.RequestTimeout),
		done:     make(chan Result, 1),
	}
	if sink != nil {
		// All span writes happen before the channel send: the moment the
		// request enters the queue the batcher owns it (and its span), so
		// the admission interval closes here and queue wait starts.
		req.span = sp
		req.tq = sink.Now()
		sp.Interval("admission", t0, req.tq, s.m.shardAttrs)
	}
	select {
	case s.queue <- req:
		s.m.queueDepth.Set(float64(s.depth.Add(1)))
		return req, nil
	default:
		sp.SetAttr("error", "queue_full")
		sp.End()
		s.m.rejected.Inc()
		return nil, ErrQueueFull
	}
}

// Rejuvenate drains version v, reloads its pristine weights and reinstates
// it, while the other versions keep serving. kind labels the trigger in the
// metrics. Serialised: concurrent calls queue up, so at most one version is
// out of rotation at any moment.
func (s *Server) Rejuvenate(v int, kind string) error {
	p, err := s.pool(v)
	if err != nil {
		return err
	}
	s.rejuvMu.Lock()
	defer s.rejuvMu.Unlock()
	start := time.Now()
	t0 := s.m.spans.Now()
	err = p.withQuiesced(func(nv *core.NNVersion) error { return nv.Restore() })
	p.resetDivergence()
	if err != nil {
		return fmt.Errorf("serve: rejuvenating %s: %w", p.name, err)
	}
	attrs := map[string]any{
		"version": p.name, "kind": kind,
		"drain_ms": float64(time.Since(start)) / float64(time.Millisecond),
	}
	if s.cfg.ShardLabel != "" {
		attrs["shard"] = s.cfg.ShardLabel
	}
	if sink := s.m.spans; sink != nil {
		// Rejuvenation is its own single-span trace covering drain → restore
		// → reinstate; request traces proceed concurrently on the other
		// versions.
		sink.Emit(sink.NewTraceID(), 0, "rejuvenation", t0, sink.Now(), attrs)
	}
	s.m.rejuvenations(kind).Inc()
	s.m.trace("rejuvenation", attrs)
	s.m.incident("rejuvenation_"+kind, attrs)
	return nil
}

// Compromise injects the configured weight fault into every replica of
// version v — the serving-side analogue of an attack, used by the demo and
// tests to provoke divergence. The pool is quiesced during injection so no
// worker reads weights mid-write.
func (s *Server) Compromise(v int) error {
	p, err := s.pool(v)
	if err != nil {
		return err
	}
	s.rejuvMu.Lock()
	defer s.rejuvMu.Unlock()
	// Inject into the first replica, then copy its weights to the rest:
	// all replicas of a version must stay functionally identical, so the
	// version keeps a single (now faulty) behaviour whichever worker
	// serves a batch.
	var weights [][]float32
	err = p.withQuiesced(func(nv *core.NNVersion) error {
		if weights == nil {
			if err := nv.Compromise(); err != nil {
				return err
			}
			weights = nv.Network().CloneWeights()
			return nil
		}
		return nv.Network().RestoreWeights(weights)
	})
	if err != nil {
		return fmt.Errorf("serve: compromising %s: %w", p.name, err)
	}
	s.m.trace("compromise", map[string]any{"version": p.name})
	s.m.incident("compromise", map[string]any{"version": p.name})
	return nil
}

func (s *Server) pool(v int) (*pool, error) {
	if v < 0 || v >= len(s.pools) {
		return nil, fmt.Errorf("serve: version %d outside [0,%d)", v, len(s.pools))
	}
	return s.pools[v], nil
}

// VersionStatus is one version's health snapshot.
type VersionStatus struct {
	Index      int     `json:"index"`
	Name       string  `json:"name"`
	State      string  `json:"state"`
	InFlight   int     `json:"in_flight"`
	Workers    int     `json:"workers"`
	Quantized  bool    `json:"quantized,omitempty"`
	Divergence float64 `json:"divergence"`
}

// Status reports the live health of every version plus the queue depth.
func (s *Server) Status() (versions []VersionStatus, queueDepth int) {
	for _, p := range s.pools {
		versions = append(versions, p.status())
	}
	return versions, int(s.depth.Load())
}

// Health returns the attached health engine (nil when disabled).
func (s *Server) Health() *health.Engine { return s.health }

// ShardLabel returns the configured shard label ("" for standalone servers).
func (s *Server) ShardLabel() string { return s.cfg.ShardLabel }

// QueueDepth returns the live admission-queue length — the gateway
// autoscaler's primary load signal.
func (s *Server) QueueDepth() int { return int(s.depth.Load()) }

// QueueCapacity returns the admission queue's bound.
func (s *Server) QueueCapacity() int { return s.cfg.QueueDepth }

// Workers returns the current per-version replica count (the pools are kept
// symmetric, so any pool's size is the answer).
func (s *Server) Workers() int {
	if len(s.pools) == 0 {
		return 0
	}
	return s.pools[0].size()
}

// SetDraining flips the shard-lifecycle drain flag. Draining is a routable
// condition, not an error: the server keeps answering everything that still
// reaches it, and the flag only tells the routing tier (gateway ring) to
// prefer successors. The transition is traced so incident timelines show
// when traffic was steered away.
func (s *Server) SetDraining(v bool) {
	if s.draining.Swap(v) == v {
		return
	}
	attrs := map[string]any{"draining": v}
	if s.cfg.ShardLabel != "" {
		attrs["shard"] = s.cfg.ShardLabel
	}
	if sink := s.m.spans; sink != nil {
		now := sink.Now()
		sink.Emit(sink.NewTraceID(), 0, "drain", now, now, attrs)
	}
	s.m.trace("drain", attrs)
}

// Draining reports the shard-lifecycle drain flag.
func (s *Server) Draining() bool { return s.draining.Load() }

// ResizeWorkers grows or shrinks every version pool to perVersion replicas,
// one pool at a time so at most one version is ever paused — the other n−1
// keep answering while a pool quiesces (the same zero-downtime contract as
// rejuvenation). New replicas adopt the CURRENT weights of their pool, so a
// compromised version stays functionally uniform until it is rejuvenated.
func (s *Server) ResizeWorkers(perVersion int) error {
	if perVersion < 1 {
		return fmt.Errorf("serve: need at least one worker per version, got %d", perVersion)
	}
	s.rejuvMu.Lock()
	defer s.rejuvMu.Unlock()
	from := s.Workers()
	if from == perVersion {
		return nil
	}
	t0 := s.m.spans.Now()
	var first error
	for _, p := range s.pools {
		if err := p.resize(perVersion); err != nil && first == nil {
			first = fmt.Errorf("serve: resizing %s: %w", p.name, err)
		}
	}
	attrs := map[string]any{"from": from, "to": perVersion}
	if s.cfg.ShardLabel != "" {
		attrs["shard"] = s.cfg.ShardLabel
	}
	if sink := s.m.spans; sink != nil {
		sink.Emit(sink.NewTraceID(), 0, "resize", t0, sink.Now(), attrs)
	}
	s.m.trace("resize", attrs)
	return first
}

// RejuvenateAll drains, restores and reinstates every version in sequence —
// the whole-shard rejuvenation a gateway performs behind a drained ring
// entry. Zero downtime within the shard: Rejuvenate serialises on rejuvMu,
// so only one version is ever out of rotation.
func (s *Server) RejuvenateAll(kind string) error {
	var first error
	for v := range s.pools {
		if err := s.Rejuvenate(v, kind); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops admission, lets the batcher finish queued work (failing
// anything unservable with ErrClosed), and waits for all goroutines.
// Idempotent.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.stop)
	s.stopped.Wait()
	s.haltPools()
	// Fail whatever is still queued; nothing will serve it now.
	for {
		select {
		case req := <-s.queue:
			s.depth.Add(-1)
			req.done <- Result{Err: ErrClosed}
			req.span.SetAttr("error", "closed")
			req.span.End()
		default:
			s.m.queueDepth.Set(float64(s.depth.Load()))
			return
		}
	}
}

func (s *Server) haltPools() {
	for _, p := range s.pools {
		p.halt()
	}
}

// proactiveLoop is the time-triggered rejuvenation rotation (§IV's
// timer-based trigger): every interval one version, round-robin.
func (s *Server) proactiveLoop() {
	defer s.stopped.Done()
	t := time.NewTicker(s.cfg.ProactiveInterval)
	defer t.Stop()
	next := 0
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			v := next % len(s.pools)
			next++
			_ = s.Rejuvenate(v, RejuvProactive)
		}
	}
}

// maybeReact fires the reactive trigger. With the health engine attached
// the verdict decides: a version is rejuvenated when its divergence
// component went critical (and its cooldown passed), and the whole trigger
// is vetoed while the engine judges the queue to be collapsing — draining a
// version under backpressure would amplify the incident. Without the
// engine, the legacy per-pool divergence window decides. Either way the
// rejuvenation runs on its own goroutine so the batcher never blocks on a
// drain.
func (s *Server) maybeReact() {
	if s.health != nil && s.health.SuppressRejuvenation() {
		return
	}
	for _, p := range s.pools {
		if s.health != nil {
			if !s.health.ShouldRejuvenate(p.name) {
				continue
			}
		} else if !p.shouldRejuvenate() {
			continue
		}
		if s.reactivePending.CompareAndSwap(false, true) {
			s.m.incident("divergence", map[string]any{
				"version": p.name, "rate": p.divergenceRate(),
			})
			go func(v int) {
				defer s.reactivePending.Store(false)
				_ = s.Rejuvenate(v, RejuvReactive)
			}(p.index)
		}
		return
	}
}

// Rejuvenation trigger kinds, used as the metric label.
const (
	RejuvProactive = "proactive"
	RejuvReactive  = "reactive"
	RejuvManual    = "manual"
)
