package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mvml/internal/health"
	"mvml/internal/obs"
)

// healthTestConfig enables the health engine on the standard test config.
func healthTestConfig() Config {
	cfg := testConfig()
	cfg.Health = &health.Options{}
	return cfg
}

// TestResponsesUnchangedByHealthEngine extends the repo's determinism
// guarantee to the health engine: it subscribes to the span firehose and
// judges, but never touches the serving path, so the same request sequence
// against a health-enabled instrumented server and a bare one yields
// identical answers.
func TestResponsesUnchangedByHealthEngine(t *testing.T) {
	rt := obs.NewRuntime(256)
	bare := newTestServer(t, testConfig(), nil)
	withHealth := newTestServer(t, healthTestConfig(), rt)
	if withHealth.Health() == nil {
		t.Fatal("health engine not constructed despite Health options + span sink")
	}

	const n = 24
	for i := 0; i < n; i++ {
		img := testImage(i)
		a, errA := bare.Classify(img)
		b, errB := withHealth.Classify(img)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("request %d: error mismatch %v vs %v", i, errA, errB)
		}
		if a.Class != b.Class || a.Degraded != b.Degraded ||
			a.Agreeing != b.Agreeing || a.Proposals != b.Proposals {
			t.Fatalf("request %d: health-engine answer differs: %+v vs %+v", i, a, b)
		}
	}

	// The engine observed the traffic and judged the ensemble clean. (Not
	// asserted: the overall rollup — stage-latency EWMAs see real wall-clock
	// durations, and on a noisy machine a jitter anomaly may legitimately
	// mark a stage degraded without saying anything about the ensemble.)
	v := withHealth.Health().Snapshot()
	if v.Spans == 0 || v.Rounds != n {
		t.Fatalf("engine saw %d spans / %d rounds, want >0 / %d", v.Spans, v.Rounds, n)
	}
	for _, c := range v.Components {
		if strings.HasPrefix(c.Name, "version:") && c.Level != health.Healthy {
			t.Fatalf("identical-ensemble version judged %s: %+v", c.Level, c)
		}
	}
	for _, s := range v.SLOs {
		if s.Objective.Name != "latency" && s.BudgetRemaining != 1 {
			t.Fatalf("SLO %s budget %v on clean traffic, want 1", s.Objective.Name, s.BudgetRemaining)
		}
	}

	// mv_health_* series are present in the exposition.
	var b strings.Builder
	if err := rt.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mv_health_state", "mv_health_budget_remaining", "mv_health_burn_rate",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %s:\n%s", want, b.String())
		}
	}
}

// TestHealthRequiresSpanSink: health options without a telemetry runtime
// are a no-op, not an error (the engine has nothing to observe).
func TestHealthRequiresSpanSink(t *testing.T) {
	s := newTestServer(t, healthTestConfig(), nil)
	if s.Health() != nil {
		t.Fatal("engine constructed without a span sink")
	}
	if res, err := s.Classify(testImage(0)); err != nil || res.Proposals != 3 {
		t.Fatalf("serving broken without engine: res=%+v err=%v", res, err)
	}
}

// TestHealthzReportsEngineVerdict: /healthz carries the engine's verdict
// and adopts its overall level as the endpoint status.
func TestHealthzReportsEngineVerdict(t *testing.T) {
	rt := obs.NewRuntime(256)
	s := newTestServer(t, healthTestConfig(), rt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 8; i++ {
		if _, err := s.Classify(testImage(i)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	hr := decode[healthResponse](t, resp)
	if hr.Health == nil {
		t.Fatal("/healthz missing the health verdict")
	}
	if hr.Status != hr.Health.Overall.String() {
		t.Fatalf("endpoint status %q does not mirror the verdict %q", hr.Status, hr.Health.Overall)
	}
	if len(hr.Health.SLOs) != 3 {
		t.Fatalf("%d SLOs in verdict, want 3", len(hr.Health.SLOs))
	}
	names := map[string]bool{}
	for _, c := range hr.Health.Components {
		names[c.Name] = true
	}
	for _, want := range []string{"overall", "version:tiny-0", "version:tiny-1", "version:tiny-2"} {
		if !names[want] {
			t.Fatalf("verdict missing component %q: %v", want, names)
		}
	}
}

// TestHealthEngineGatesReactiveRejuvenation: with the engine enabled, the
// reactive trigger fires on the engine's verdict (version component
// critical), drains the compromised version and restores full agreement.
func TestHealthEngineGatesReactiveRejuvenation(t *testing.T) {
	rt := obs.NewRuntime(256)
	cfg := healthTestConfig()
	cfg.DivergenceWindow = 8
	cfg.DivergenceThreshold = 0.5
	s := newTestServer(t, cfg, rt)
	if err := s.Compromise(1); err != nil {
		t.Fatal(err)
	}
	reactive := rt.Metrics().Counter("mvserve_rejuvenations_total", "kind", RejuvReactive)
	fired := classifyUntil(t, s, 500, func(res Result) bool {
		if res.Err != nil {
			t.Fatalf("request failed during engine-gated rejuvenation: %v", res.Err)
		}
		return reactive.Value() > 0
	})
	if !fired {
		t.Fatalf("engine verdict never triggered rejuvenation (snapshot: %+v)", s.Health().Snapshot())
	}
	if !classifyUntil(t, s, 200, func(res Result) bool { return res.Agreeing == 3 }) {
		t.Fatal("version still diverging after engine-gated rejuvenation")
	}
}
