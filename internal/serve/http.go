package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mvml/internal/health"
	"mvml/internal/nn"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// ClassifyRequest is the JSON body of POST /v1/classify. Either Image (a
// flat channel-major pixel array of length C·H·W) or Class (a synthetic
// traffic sign rendered server-side, deterministic in Class and Seed) must
// be set.
type ClassifyRequest struct {
	Image []float32 `json:"image,omitempty"`
	Class *int      `json:"class,omitempty"`
	Seed  uint64    `json:"seed,omitempty"`
}

// ClassifyResponse is the JSON answer for one classification.
type ClassifyResponse struct {
	Class     int     `json:"class"`
	Degraded  bool    `json:"degraded"`
	Reason    string  `json:"reason,omitempty"`
	Agreeing  int     `json:"agreeing"`
	Proposals int     `json:"proposals"`
	LatencyMS float64 `json:"latency_ms"`
}

// healthResponse is the JSON body of GET /healthz.
type healthResponse struct {
	Status     string          `json:"status"`
	QueueDepth int             `json:"queue_depth"`
	Versions   []VersionStatus `json:"versions"`
	// Health carries the streaming health engine's verdict (components,
	// SLO budgets, online α) when the engine is enabled.
	Health *health.Verdict `json:"health,omitempty"`
}

// adminRequest is the JSON body of the /admin endpoints.
type adminRequest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/classify     — classify one image (429 when the queue is full)
//	GET  /healthz         — per-version health and queue depth
//	POST /admin/rejuvenate — manually drain+restore one version
//	POST /admin/compromise — fault-inject one version (demos/tests)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /admin/rejuvenate", s.handleRejuvenate)
	mux.HandleFunc("POST /admin/compromise", s.handleCompromise)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	img, err := req.Tensor()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	start := time.Now()
	res, err := s.Classify(img)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Explicit backpressure: tell the client when to come back instead
		// of letting the queue grow without bound.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrNoProposals), errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, ClassifyResponse{
			Class:     res.Class,
			Degraded:  res.Degraded,
			Reason:    res.Reason,
			Agreeing:  res.Agreeing,
			Proposals: res.Proposals,
			LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
		})
	}
}

// Tensor materialises the request's image: either the client's raw pixels or
// a server-rendered synthetic sign (deterministic in Class and Seed, which
// makes load generation and determinism tests trivial). Exported so the
// gateway's HTTP layer decodes requests identically to a standalone server.
func (req *ClassifyRequest) Tensor() (*tensor.Tensor, error) {
	want := nn.InputChannels * nn.InputSize * nn.InputSize
	switch {
	case len(req.Image) > 0 && req.Class != nil:
		return nil, errors.New(`provide "image" or "class", not both`)
	case len(req.Image) > 0:
		return tensor.FromSlice(req.Image, nn.InputChannels, nn.InputSize, nn.InputSize)
	case req.Class != nil:
		c := *req.Class
		if c < 0 || c >= signs.NumClasses {
			return nil, fmt.Errorf("class %d outside [0,%d)", c, signs.NumClasses)
		}
		r := xrand.New(req.Seed).Split("render", uint64(c))
		return signs.Render(c, r, signs.DefaultConfig()), nil
	default:
		return nil, fmt.Errorf(`provide "image" (%d values) or "class"`, want)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	versions, depth := s.Status()
	resp := healthResponse{
		Status:     "ok",
		QueueDepth: depth,
		Versions:   versions,
	}
	if v := s.health.Snapshot(); v != nil {
		resp.Health = v
		resp.Status = v.Overall.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRejuvenate(w http.ResponseWriter, r *http.Request) {
	var req adminRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	kind := req.Kind
	if kind == "" {
		kind = RejuvManual
	}
	if err := s.Rejuvenate(req.Version, kind); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "rejuvenated"})
}

func (s *Server) handleCompromise(w http.ResponseWriter, r *http.Request) {
	var req adminRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	if err := s.Compromise(req.Version); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "compromised"})
}
