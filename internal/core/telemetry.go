package core

import (
	"mvml/internal/obs"
)

// Metric names the core system registers. Collected here so exposition
// consumers and tests share one vocabulary.
const (
	// MetricVoterRounds counts voter rounds by outcome label
	// ("decision", "skip_divergence", "skip_no_modules").
	MetricVoterRounds = "mvml_voter_rounds_total"
	// MetricInferenceLatency is the per-module inference latency histogram
	// (seconds), labelled by module.
	MetricInferenceLatency = "mvml_inference_latency_seconds"
	// MetricVoteLatency is the voter's decision latency histogram.
	MetricVoteLatency = "mvml_vote_latency_seconds"
	// MetricModuleState is a per-module gauge holding the numeric state
	// code (1=H, 2=C, 3=N, 4=R).
	MetricModuleState = "mvml_module_state"
	// MetricModulesInState gauges how many modules currently sit in each
	// state, labelled by state ("H", "C", "N", "R").
	MetricModulesInState = "mvml_modules_in_state"
	// MetricTransitions counts module state transitions, labelled by
	// module, from and to.
	MetricTransitions = "mvml_module_transitions_total"
	// MetricRejuvenations counts rejuvenation starts, labelled by kind
	// ("reactive", "proactive") and module; proactive starts also carry the
	// selection policy.
	MetricRejuvenations = "mvml_rejuvenations_total"
	// MetricRejuvenationTriggers counts proactive trigger expiries.
	MetricRejuvenationTriggers = "mvml_rejuvenation_triggers_total"
)

// telemetry holds the pre-resolved metric handles and tracer for one System.
// All methods are nil-safe, so an uninstrumented System (tel == nil) pays a
// single pointer comparison on the hot path and performs no allocation —
// and, because telemetry only observes, it never consumes xrand draws:
// instrumented and uninstrumented runs are decision-identical.
type telemetry struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	spans  *obs.SpanSink
	flight *obs.FlightRecorder

	// trace groups every span this System emits; span times are simulated
	// seconds (the System's clock), not the sink's wall clock.
	trace uint64
	// stateSince tracks, per module, the simulated second it entered its
	// current state — closed into a "module_state" span on each transition.
	stateSince []float64
	// rejuvStart tracks, per module, when its in-progress rejuvenation
	// began (NaN-free: -1 when none is running).
	rejuvStart []float64

	// Hot-path handles, resolved once at Instrument time.
	decisions     *obs.Counter
	skipDiverge   *obs.Counter
	skipNoModules *obs.Counter
	moduleLatency []*obs.Histogram // indexed like System.modules
	voteLatency   *obs.Histogram

	// Per-module state gauges and per-state population gauges.
	stateGauge  []*obs.Gauge
	inState     [4]*obs.Gauge // indexed by ModuleState-1
	triggers    *obs.Counter
	moduleNames []string
}

// stateLabel is the exposition value for a module state.
func stateLabel(s ModuleState) string { return s.String() }

// newTelemetry resolves every handle the system needs. Every handle may be
// nil independently (tracing without metrics and vice versa).
func newTelemetry(reg *obs.Registry, tracer *obs.Tracer, spans *obs.SpanSink, flight *obs.FlightRecorder, moduleNames []string) *telemetry {
	t := &telemetry{
		reg: reg, tracer: tracer, spans: spans, flight: flight,
		trace:       spans.NewTraceID(),
		stateSince:  make([]float64, len(moduleNames)),
		rejuvStart:  make([]float64, len(moduleNames)),
		moduleNames: moduleNames,
	}
	for i := range t.rejuvStart {
		t.rejuvStart[i] = -1
	}
	reg.Help(MetricVoterRounds, "Voter rounds by outcome (decision, skip_divergence, skip_no_modules).")
	reg.Help(MetricInferenceLatency, "Wall-clock latency of one module inference, per version.")
	reg.Help(MetricVoteLatency, "Wall-clock latency of one voter decision.")
	reg.Help(MetricModuleState, "Current module state code: 1=H, 2=C, 3=N, 4=R.")
	reg.Help(MetricModulesInState, "Number of modules currently in each health state.")
	reg.Help(MetricTransitions, "Module health-state transitions.")
	reg.Help(MetricRejuvenations, "Rejuvenation starts by kind and module.")
	reg.Help(MetricRejuvenationTriggers, "Proactive rejuvenation trigger expiries.")
	t.decisions = reg.Counter(MetricVoterRounds, "outcome", "decision")
	t.skipDiverge = reg.Counter(MetricVoterRounds, "outcome", "skip_divergence")
	t.skipNoModules = reg.Counter(MetricVoterRounds, "outcome", "skip_no_modules")
	t.voteLatency = reg.Histogram(MetricVoteLatency, obs.LatencyBuckets())
	t.triggers = reg.Counter(MetricRejuvenationTriggers)
	for _, name := range moduleNames {
		t.moduleLatency = append(t.moduleLatency,
			reg.Histogram(MetricInferenceLatency, obs.LatencyBuckets(), "module", name))
		t.stateGauge = append(t.stateGauge, reg.Gauge(MetricModuleState, "module", name))
	}
	for st := Healthy; st <= Rejuvenating; st++ {
		t.inState[st-1] = reg.Gauge(MetricModulesInState, "state", stateLabel(st))
	}
	return t
}

// transition records one module state change: a labelled counter increment,
// the per-module state gauge, and a trace event. kind annotates rejuvenation
// starts ("reactive"/"proactive"); policy names the proactive victim policy.
func (t *telemetry) transition(now float64, idx int, from, to ModuleState, kind, policy string) {
	if t == nil {
		return
	}
	name := t.moduleNames[idx]
	t.reg.Counter(MetricTransitions,
		"module", name, "from", stateLabel(from), "to", stateLabel(to)).Inc()
	t.stateGauge[idx].Set(float64(to))
	if kind != "" {
		if policy != "" {
			t.reg.Counter(MetricRejuvenations, "kind", kind, "module", name, "policy", policy).Inc()
		} else {
			t.reg.Counter(MetricRejuvenations, "kind", kind, "module", name).Inc()
		}
	}
	if t.tracer != nil {
		attrs := map[string]any{
			"module": name,
			"from":   stateLabel(from),
			"to":     stateLabel(to),
		}
		typ := "state_transition"
		if kind != "" {
			typ = "rejuvenation_start"
			attrs["kind"] = kind
			if policy != "" {
				attrs["policy"] = policy
			}
		}
		t.tracer.Emit(now, typ, attrs)
	}
	if t.spans != nil {
		// Close the interval the module spent in its previous state. Span
		// times are simulated seconds on the System's shared trace.
		t.spans.Emit(t.trace, 0, "module_state", t.stateSince[idx], now,
			map[string]any{"module": name, "state": stateLabel(from)})
		t.stateSince[idx] = now
		if to == Rejuvenating {
			t.rejuvStart[idx] = now
		} else if from == Rejuvenating && t.rejuvStart[idx] >= 0 {
			t.spans.Emit(t.trace, 0, "rejuvenation", t.rejuvStart[idx], now,
				map[string]any{"module": name})
			t.rejuvStart[idx] = -1
		}
	}
	switch {
	case kind != "":
		t.flight.Trigger("rejuvenation_"+kind, map[string]any{"module": name})
	case to == Compromised:
		t.flight.Trigger("compromise", map[string]any{"module": name})
	}
}

// trigger records a proactive rejuvenation trigger expiry.
func (t *telemetry) trigger(now float64) {
	if t == nil {
		return
	}
	t.triggers.Inc()
	if t.tracer != nil {
		t.tracer.Emit(now, "rejuvenation_trigger", nil)
	}
}

// syncPopulation refreshes the per-state population gauges.
func (t *telemetry) syncPopulation(counts [4]int) {
	if t == nil {
		return
	}
	for i, g := range t.inState {
		g.Set(float64(counts[i]))
	}
}

// voterOutcome records one voter round by outcome.
func (t *telemetry) voterOutcome(now float64, d *decisionOutcome) {
	if t == nil {
		return
	}
	switch {
	case !d.skipped:
		t.decisions.Inc()
	case d.proposals == 0:
		t.skipNoModules.Inc()
	default:
		t.skipDiverge.Inc()
	}
	if t.tracer != nil && d.skipped {
		t.tracer.Emit(now, "voter_skip", map[string]any{
			"reason":    d.reason,
			"proposals": d.proposals,
		})
	}
	// A skip with live proposals is a divergence: a zero-length span marks
	// the voter round in simulated time, and the flight recorder snapshots
	// the window around it.
	if d.skipped && d.proposals > 0 {
		if t.spans != nil {
			t.spans.Emit(t.trace, 0, "divergence", now, now,
				map[string]any{"reason": d.reason, "proposals": d.proposals})
		}
		t.flight.Trigger("divergence", map[string]any{"reason": d.reason})
	}
	// A decided round with dissent is a minority disagreement — not a skip,
	// so it gets its own span kind. The health engine's online α estimator
	// counts these per-module error events and their pairwise overlaps.
	if !d.skipped && len(d.dissenting) > 0 && t.spans != nil {
		t.spans.Emit(t.trace, 0, "disagreement", now, now,
			map[string]any{"diverged": d.dissenting, "proposals": d.proposals})
	}
}

// decisionOutcome is the telemetry-relevant slice of a Decision, extracted
// so telemetry stays non-generic.
type decisionOutcome struct {
	skipped    bool
	reason     string
	proposals  int
	dissenting []string
}

// Instrument attaches a metrics registry and/or event tracer to the system.
// Either argument may be nil; passing both nil detaches telemetry. The
// instrumentation is purely observational — it draws nothing from the
// system's random stream — so it never changes the decision sequence.
// Instrument is not safe to call concurrently with Infer/Advance.
func (s *System[I, O]) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	s.instrument(reg, tracer, nil, nil)
}

// InstrumentObs is Instrument taking a full obs.Runtime: in addition to
// metrics and events the system emits module_state / rejuvenation /
// divergence spans (in simulated seconds) and fires the runtime's flight
// recorder around compromises, divergences and rejuvenations. A nil Runtime
// detaches telemetry.
func (s *System[I, O]) InstrumentObs(rt *obs.Runtime) {
	s.instrument(rt.Metrics(), rt.Tracer(), rt.Spans(), rt.Flight())
}

func (s *System[I, O]) instrument(reg *obs.Registry, tracer *obs.Tracer, spans *obs.SpanSink, flight *obs.FlightRecorder) {
	if reg == nil && tracer == nil && spans == nil && flight == nil {
		s.tel = nil
		return
	}
	names := make([]string, len(s.modules))
	for i, m := range s.modules {
		names[i] = m.Name()
	}
	s.tel = newTelemetry(reg, tracer, spans, flight, names)
	for i, m := range s.modules {
		s.tel.stateGauge[i].Set(float64(m.state))
	}
	s.tel.syncPopulation(s.statePopulation())
}

// statePopulation counts modules per state, indexed by ModuleState-1.
func (s *System[I, O]) statePopulation() [4]int {
	var counts [4]int
	for _, m := range s.modules {
		counts[m.state-1]++
	}
	return counts
}
