package core

import (
	"errors"
	"fmt"

	"mvml/internal/nn"
	"mvml/internal/tensor"
)

// NNVersion adapts a trained neural network to the Version interface. The
// pristine weights are snapshotted at construction — the "safe memory
// location" (§IV) rejuvenation reloads from — and Compromise applies a
// caller-supplied fault (typically faultinject.RandomWeightInj).
type NNVersion struct {
	net      *nn.Network
	pristine [][]float32
	// compromiseFn degrades the live network; it runs on every H→C event.
	compromiseFn func(*nn.Network) error
}

var _ Version[*tensor.Tensor, int] = (*NNVersion)(nil)

// NewNNVersion wraps net. compromiseFn may be nil for versions that are
// never degraded in place (e.g. overhead measurements).
func NewNNVersion(net *nn.Network, compromiseFn func(*nn.Network) error) (*NNVersion, error) {
	if net == nil {
		return nil, errors.New("core: nil network")
	}
	return &NNVersion{
		net:          net,
		pristine:     net.CloneWeights(),
		compromiseFn: compromiseFn,
	}, nil
}

// Name implements Version.
func (v *NNVersion) Name() string { return v.net.Name }

// Infer implements Version.
func (v *NNVersion) Infer(x *tensor.Tensor) (int, error) {
	return v.net.Predict(x)
}

// Compromise implements Version by applying the configured fault to the
// live weights.
func (v *NNVersion) Compromise() error {
	if v.compromiseFn == nil {
		return nil
	}
	if err := v.compromiseFn(v.net); err != nil {
		return fmt.Errorf("core: fault injection into %s: %w", v.net.Name, err)
	}
	return nil
}

// Restore implements Version by reloading the pristine weights.
func (v *NNVersion) Restore() error {
	return v.net.RestoreWeights(v.pristine)
}

// Network exposes the wrapped network for evaluation harnesses.
func (v *NNVersion) Network() *nn.Network { return v.net }
