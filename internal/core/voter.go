package core

import (
	"fmt"
	"sort"
)

// Decision is the voter's verdict for one inference round.
type Decision[O any] struct {
	// Value is the agreed output; meaningless when Skipped.
	Value O
	// Skipped reports that the voter safely declined to output
	// (rule R.2's input divergence, or no functional modules at all).
	Skipped bool
	// Reason explains a skip.
	Reason string
	// Agreeing is the number of proposals backing the chosen value.
	Agreeing int
	// Proposals is the number of proposals considered.
	Proposals int
	// Dissenting names the modules whose proposal disagreed with the
	// chosen value, in proposal order. Nil when the round was skipped or
	// unanimous — the common case allocates nothing. This is the per-round
	// error-overlap signal the health engine's online α estimator consumes
	// (two modules dissenting on the same input is a simultaneous-error
	// observation, the numerator of the paper's Eq. 8).
	Dissenting []string
}

// dissenters collects the modules disagreeing with value under eq,
// allocating only when dissent exists.
func dissenters[O any](proposals []Proposal[O], eq Equal[O], value O) []string {
	var out []string
	for _, p := range proposals {
		if !eq(p.Value, value) {
			out = append(out, p.Module)
		}
	}
	return out
}

// Voter decides a final output from module proposals. Implementations must
// treat an empty proposal list as a skip.
type Voter[O any] interface {
	// Vote combines the proposals of the currently functional modules.
	Vote(proposals []Proposal[O]) Decision[O]
}

// Equal abstracts output comparison so approximate agreement (paper §IV,
// "equal/similar inputs") is expressible; exact equality is the default for
// comparable outputs.
type Equal[O any] func(a, b O) bool

// MajorityVoter implements the paper's voting rules R.1–R.3:
//
//   - R.1 — three (or more) proposals: an output needs at least ⌈(n+1)/2⌉
//     agreeing proposals (2-out-of-3 for n=3); otherwise skip.
//   - R.2 — exactly two proposals: both must agree, otherwise the voter
//     *safely skips* rather than guess.
//   - R.3 — a single proposal is accepted as-is.
//
// Agreement is judged by Eq; a wrong-but-agreeing majority still produces an
// output (the voter does not know the ground truth).
type MajorityVoter[O any] struct {
	// Eq compares proposals; required.
	Eq Equal[O]
}

var _ Voter[int] = (*MajorityVoter[int])(nil)

// NewEqualityVoter returns a MajorityVoter over a comparable output type.
func NewEqualityVoter[O comparable]() *MajorityVoter[O] {
	return &MajorityVoter[O]{Eq: func(a, b O) bool { return a == b }}
}

// Vote implements Voter.
func (v *MajorityVoter[O]) Vote(proposals []Proposal[O]) Decision[O] {
	n := len(proposals)
	switch n {
	case 0:
		return Decision[O]{Skipped: true, Reason: "no functional modules"}
	case 1:
		// R.3: accept the only proposal.
		return Decision[O]{Value: proposals[0].Value, Agreeing: 1, Proposals: 1}
	}
	// Cluster proposals by pairwise agreement and take the largest cluster.
	best, bestCount := v.largestCluster(proposals)
	need := n/2 + 1
	if n == 2 {
		need = 2 // R.2: unanimity of the two functional modules
	}
	if bestCount >= need {
		return Decision[O]{Value: best, Agreeing: bestCount, Proposals: n,
			Dissenting: dissenters(proposals, v.Eq, best)}
	}
	return Decision[O]{
		Skipped:   true,
		Reason:    fmt.Sprintf("no %d-of-%d agreement", need, n),
		Proposals: n,
	}
}

func (v *MajorityVoter[O]) largestCluster(proposals []Proposal[O]) (O, int) {
	bestIdx, bestCount := 0, 0
	for i := range proposals {
		count := 0
		for j := range proposals {
			if v.Eq(proposals[i].Value, proposals[j].Value) {
				count++
			}
		}
		if count > bestCount {
			bestIdx, bestCount = i, count
		}
	}
	return proposals[bestIdx].Value, bestCount
}

// UnanimousVoter requires every functional module to agree (the 3-out-of-3
// scheme referenced in §IV); any divergence is a safe skip.
type UnanimousVoter[O any] struct {
	Eq Equal[O]
}

var _ Voter[int] = (*UnanimousVoter[int])(nil)

// NewUnanimousVoter returns a UnanimousVoter over a comparable output type.
func NewUnanimousVoter[O comparable]() *UnanimousVoter[O] {
	return &UnanimousVoter[O]{Eq: func(a, b O) bool { return a == b }}
}

// Vote implements Voter.
func (v *UnanimousVoter[O]) Vote(proposals []Proposal[O]) Decision[O] {
	n := len(proposals)
	if n == 0 {
		return Decision[O]{Skipped: true, Reason: "no functional modules"}
	}
	for i := 1; i < n; i++ {
		if !v.Eq(proposals[0].Value, proposals[i].Value) {
			return Decision[O]{Skipped: true, Reason: "unanimity violated", Proposals: n}
		}
	}
	return Decision[O]{Value: proposals[0].Value, Agreeing: n, Proposals: n}
}

// PluralityVoter outputs the most common proposal without a majority
// threshold, breaking ties by the earliest proposer. It never skips unless
// there are no proposals — a contrast configuration for the ablation
// experiments (a plurality voter cannot "safely skip", which is exactly the
// property the paper credits for the two-version system's advantage).
type PluralityVoter[O any] struct {
	Eq Equal[O]
}

var _ Voter[int] = (*PluralityVoter[int])(nil)

// NewPluralityVoter returns a PluralityVoter over a comparable output type.
func NewPluralityVoter[O comparable]() *PluralityVoter[O] {
	return &PluralityVoter[O]{Eq: func(a, b O) bool { return a == b }}
}

// Vote implements Voter.
func (v *PluralityVoter[O]) Vote(proposals []Proposal[O]) Decision[O] {
	if len(proposals) == 0 {
		return Decision[O]{Skipped: true, Reason: "no functional modules"}
	}
	mv := MajorityVoter[O]{Eq: v.Eq}
	value, count := mv.largestCluster(proposals)
	return Decision[O]{Value: value, Agreeing: count, Proposals: len(proposals),
		Dissenting: dissenters(proposals, v.Eq, value)}
}

// MedianVoter implements approximate agreement for continuous outputs
// (steering angles, speed set-points — the paper cites Dolev et al. and Wu
// et al. for these). Rules R.1–R.3 carry over: with three or more proposals
// it outputs the median provided a majority lies within Epsilon of it; with
// two proposals both must be within Epsilon (else safe skip); a single
// proposal is trusted. The median bounds the influence of any single
// Byzantine version: with a correct majority, the output always lies within
// the correct proposals' range.
type MedianVoter struct {
	// Epsilon is the agreement half-width.
	Epsilon float64
}

var _ Voter[float64] = (*MedianVoter)(nil)

// Vote implements Voter.
func (v *MedianVoter) Vote(proposals []Proposal[float64]) Decision[float64] {
	n := len(proposals)
	switch n {
	case 0:
		return Decision[float64]{Skipped: true, Reason: "no functional modules"}
	case 1:
		return Decision[float64]{Value: proposals[0].Value, Agreeing: 1, Proposals: 1}
	}
	values := make([]float64, n)
	for i, p := range proposals {
		values[i] = p.Value
	}
	sort.Float64s(values)
	median := values[n/2]
	if n%2 == 0 {
		median = (values[n/2-1] + values[n/2]) / 2
	}
	agreeing := 0
	for _, val := range values {
		d := val - median
		if d < 0 {
			d = -d
		}
		if d <= v.Epsilon {
			agreeing++
		}
	}
	need := n/2 + 1
	if n == 2 {
		need = 2 // R.2: both must agree
	}
	if agreeing >= need {
		within := func(a, b float64) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d <= v.Epsilon
		}
		return Decision[float64]{Value: median, Agreeing: agreeing, Proposals: n,
			Dissenting: dissenters(proposals, within, median)}
	}
	return Decision[float64]{
		Skipped:   true,
		Reason:    fmt.Sprintf("no %d-of-%d approximate agreement", need, n),
		Proposals: n,
	}
}

// WeightedVoter scores each proposal cluster by the sum of per-module
// weights (e.g. historical accuracy) and outputs the heaviest cluster if it
// exceeds half the total weight; otherwise it skips. With all-equal weights
// it reduces to MajorityVoter.
type WeightedVoter[O any] struct {
	Eq Equal[O]
	// WeightOf returns a module's voting weight (default 1).
	WeightOf func(module string) float64
}

var _ Voter[int] = (*WeightedVoter[int])(nil)

// Vote implements Voter.
func (v *WeightedVoter[O]) Vote(proposals []Proposal[O]) Decision[O] {
	n := len(proposals)
	if n == 0 {
		return Decision[O]{Skipped: true, Reason: "no functional modules"}
	}
	weight := func(m string) float64 {
		if v.WeightOf == nil {
			return 1
		}
		return v.WeightOf(m)
	}
	var total float64
	for _, p := range proposals {
		total += weight(p.Module)
	}
	bestIdx, bestWeight, bestCount := 0, 0.0, 0
	for i := range proposals {
		var w float64
		count := 0
		for j := range proposals {
			if v.Eq(proposals[i].Value, proposals[j].Value) {
				w += weight(proposals[j].Module)
				count++
			}
		}
		if w > bestWeight {
			bestIdx, bestWeight, bestCount = i, w, count
		}
	}
	if n == 1 || bestWeight > total/2 {
		return Decision[O]{Value: proposals[bestIdx].Value, Agreeing: bestCount, Proposals: n,
			Dissenting: dissenters(proposals, v.Eq, proposals[bestIdx].Value)}
	}
	return Decision[O]{Skipped: true, Reason: "no weighted majority", Proposals: n}
}
