package core

import (
	"math"
	"testing"

	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

func ensembleConfig() SyntheticEnsembleConfig {
	return SyntheticEnsembleConfig{
		Versions: 3,
		Classes:  43,
		P:        0.062892584,
		PPrime:   0.240406440,
		Alpha:    0.369952542,
		Seed:     38,
	}
}

func TestSyntheticEnsembleValidation(t *testing.T) {
	bad := ensembleConfig()
	bad.Versions = 0
	if _, err := NewSyntheticEnsemble(bad); err == nil {
		t.Fatal("expected error for 0 versions")
	}
	bad = ensembleConfig()
	bad.Classes = 1
	if _, err := NewSyntheticEnsemble(bad); err == nil {
		t.Fatal("expected error for 1 class")
	}
	bad = ensembleConfig()
	bad.P, bad.PPrime = 0.5, 0.1
	if _, err := NewSyntheticEnsemble(bad); err == nil {
		t.Fatal("expected error for p > p'")
	}
}

// errorSets runs every version over n inputs and returns the error sets.
func errorSets(t *testing.T, versions []Version[LabeledInput, int], n int) []map[int]bool {
	t.Helper()
	r := xrand.New(123)
	sets := make([]map[int]bool, len(versions))
	for i := range sets {
		sets[i] = make(map[int]bool)
	}
	for id := 0; id < n; id++ {
		truth := r.Intn(43)
		for vi, v := range versions {
			out, err := v.Infer(LabeledInput{ID: id, Truth: truth})
			if err != nil {
				t.Fatal(err)
			}
			if out != truth {
				sets[vi][id] = true
			}
		}
	}
	return sets
}

func TestSyntheticEnsembleCalibration(t *testing.T) {
	versions, err := NewSyntheticEnsemble(ensembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 40_000
	sets := errorSets(t, versions, n)

	// Marginal error probability matches p.
	for i, set := range sets {
		got := float64(len(set)) / n
		if math.Abs(got-0.0629) > 0.006 {
			t.Errorf("version %d healthy error rate %.4f, want ≈0.0629", i, got)
		}
	}
	// Pairwise α matches the target.
	alpha := reliability.AlphaThreeVersion(sets[0], sets[1], sets[2])
	if math.Abs(alpha-0.3700) > 0.04 {
		t.Errorf("measured alpha %.4f, want ≈0.37", alpha)
	}
}

func TestSyntheticCompromisedErrorRate(t *testing.T) {
	versions, err := NewSyntheticEnsemble(ensembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := versions[0]
	if err := v.Compromise(); err != nil {
		t.Fatal(err)
	}
	const n = 40_000
	r := xrand.New(5)
	errs := 0
	for id := 0; id < n; id++ {
		truth := r.Intn(43)
		out, err := v.Infer(LabeledInput{ID: id, Truth: truth})
		if err != nil {
			t.Fatal(err)
		}
		if out != truth {
			errs++
		}
	}
	got := float64(errs) / n
	if math.Abs(got-0.2404) > 0.01 {
		t.Fatalf("compromised error rate %.4f, want ≈0.2404", got)
	}
	// Restore brings p back down.
	if err := v.Restore(); err != nil {
		t.Fatal(err)
	}
	errs = 0
	for id := 0; id < n; id++ {
		truth := (id * 7) % 43
		out, err := v.Infer(LabeledInput{ID: id, Truth: truth})
		if err != nil {
			t.Fatal(err)
		}
		if out != truth {
			errs++
		}
	}
	if got := float64(errs) / n; got > 0.1 {
		t.Fatalf("restored error rate %.4f, want ≈0.0629", got)
	}
}

func TestSyntheticDeterministicPerInput(t *testing.T) {
	versions, err := NewSyntheticEnsemble(ensembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := LabeledInput{ID: 42, Truth: 7}
	a, err := versions[0].Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := versions[0].Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same input produced different outputs")
	}
}

func TestSyntheticCommonModeProducesSameWrongLabel(t *testing.T) {
	// On hard inputs every version must emit the SAME wrong label, which
	// is what defeats majority voting. Find hard inputs as those where
	// all three healthy versions err, and check label agreement.
	versions, err := NewSyntheticEnsemble(ensembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for id := 0; id < 20_000 && found < 50; id++ {
		truth := id % 43
		outs := make([]int, len(versions))
		allWrong := true
		for vi, v := range versions {
			out, err := v.Infer(LabeledInput{ID: id, Truth: truth})
			if err != nil {
				t.Fatal(err)
			}
			outs[vi] = out
			if out == truth {
				allWrong = false
			}
		}
		if !allWrong {
			continue
		}
		found++
		if outs[0] != outs[1] || outs[1] != outs[2] {
			t.Fatalf("input %d: common-mode errors disagree: %v", id, outs)
		}
	}
	if found == 0 {
		t.Fatal("no common-mode failures found in 20k inputs")
	}
}

func TestSyntheticRejectsBadTruth(t *testing.T) {
	versions, err := NewSyntheticEnsemble(ensembleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := versions[0].Infer(LabeledInput{ID: 1, Truth: 99}); err == nil {
		t.Fatal("expected error for out-of-range truth")
	}
}

func TestMixtureParamsEdgeCases(t *testing.T) {
	// p = 0: never errs.
	c, q, err := mixtureParams(0, 0.5)
	if err != nil || c != 0 || q != 0 {
		t.Fatalf("p=0: c=%v q=%v err=%v", c, q, err)
	}
	// alpha = 1: fully dependent, all errors common-mode.
	c, q, err = mixtureParams(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-0.1) > 1e-9 || math.Abs(q) > 1e-9 {
		t.Fatalf("alpha=1: c=%v q=%v, want c=p, q=0", c, q)
	}
	// Consistency: c + (1-c)q == p for a general case.
	c, q, err = mixtureParams(0.2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if p := c + (1-c)*q; math.Abs(p-0.2) > 1e-9 {
		t.Fatalf("marginal %v, want 0.2", p)
	}
	if both := c + (1-c)*q*q; math.Abs(both-0.4*0.2) > 1e-9 {
		t.Fatalf("joint %v, want %v", both, 0.4*0.2)
	}
}

// TestSyntheticSystemMatchesReliabilityModel runs the full architecture
// (synthetic ensemble + majority voter, all modules healthy) over many
// inputs and compares the empirical output reliability against the paper's
// R_{3,0,0} formula.
func TestSyntheticSystemMatchesReliabilityModel(t *testing.T) {
	cfg := ensembleConfig()
	versions, err := NewSyntheticEnsemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem[LabeledInput, int](versions, NewEqualityVoter[int](), noFaultConfig(), xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 30_000
	r := xrand.New(99)
	correct := 0
	for id := 0; id < n; id++ {
		truth := r.Intn(cfg.Classes)
		d, _, err := sys.Infer(float64(id), LabeledInput{ID: id, Truth: truth})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Skipped && d.Value == truth {
			correct++
		}
	}
	got := float64(correct) / n
	// Under the calibrated mixture, the voter outputs the truth iff the
	// input is not common-mode hard and at least 2 of 3 private draws are
	// correct: (1-c)·((1-q)³ + 3(1-q)²q).
	c, q, err := mixtureParams(cfg.P, cfg.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - c) * ((1-q)*(1-q)*(1-q) + 3*(1-q)*(1-q)*q)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical 3-version reliability %.4f vs mixture prediction %.4f", got, want)
	}
	// The triple-version system must beat a single version (1-p), the
	// qualitative claim behind the paper's architecture.
	if got <= 1-cfg.P {
		t.Fatalf("3-version reliability %.4f does not beat single version %.4f", got, 1-cfg.P)
	}
	// And the paper's closed-form R(3,0,0) is an upper-side model of the
	// same quantity: it should sit within a few points of the empirical
	// rate.
	params := reliability.Params{P: cfg.P, PPrime: cfg.PPrime, Alpha: cfg.Alpha,
		MeanTimeToCompromise: 1, MeanTimeToFailure: 1,
		MeanReactiveRejuvenation: 1, MeanProactiveRejuvenation: 1, RejuvenationInterval: 1}
	model, err := params.StateReliability(reliability.State{Healthy: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-model) > 0.03 {
		t.Fatalf("empirical %.4f too far from the paper model R(3,0,0) %.4f", got, model)
	}
}
