package core

import (
	"encoding/json"
	"os"
	"testing"

	"mvml/internal/obs"
	"mvml/internal/xrand"
)

// divergingVersion answers the shared healthy value until compromised, then
// a version-unique wrong one, so any compromised member visibly disagrees.
type divergingVersion struct {
	name        string
	id          int
	compromised bool
}

func (v *divergingVersion) Name() string { return v.name }
func (v *divergingVersion) Infer(int) (int, error) {
	if v.compromised {
		return -1 - v.id, nil
	}
	return 1, nil
}
func (v *divergingVersion) Compromise() error { v.compromised = true; return nil }
func (v *divergingVersion) Restore() error    { v.compromised = false; return nil }

// stepRecord is the decision-relevant outcome of one Infer call.
type stepRecord struct {
	skipped  bool
	value    int
	agreeing int
}

// driveSystem runs a fault-injected system through a fixed inference
// schedule and returns the full decision sequence.
func driveSystem(t *testing.T, sys *System[int, int], steps int) []stepRecord {
	t.Helper()
	out := make([]stepRecord, 0, steps)
	for i := 0; i < steps; i++ {
		d, _, err := sys.Infer(float64(i)*0.25, i)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, stepRecord{skipped: d.Skipped, value: d.Value, agreeing: d.Agreeing})
	}
	return out
}

// TestInstrumentDoesNotAlterDecisions is the determinism regression test:
// a run instrumented with the full observability stack (metrics, events,
// spans and an attached flight recorder) must produce exactly the decision
// sequence, stats, and final module states of the uninstrumented run with
// the same seed.
func TestInstrumentDoesNotAlterDecisions(t *testing.T) {
	const steps = 2000
	cfg := CaseStudyConfig()

	build := func() *System[int, int] {
		sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), cfg, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	plain := build()
	instrumented := build()
	rt := obs.NewRuntime(1024)
	fr, err := obs.NewFlightRecorder(t.TempDir(), 0, 0, rt.Spans(), rt.Tracer())
	if err != nil {
		t.Fatal(err)
	}
	rt.AttachFlightRecorder(fr)
	instrumented.InstrumentObs(rt)

	seqA := driveSystem(t, plain, steps)
	seqB := driveSystem(t, instrumented, steps)
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("step %d diverged: plain %+v vs instrumented %+v", i, seqA[i], seqB[i])
		}
	}
	if plain.Stats() != instrumented.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", plain.Stats(), instrumented.Stats())
	}
	for i, m := range plain.Modules() {
		if m.State() != instrumented.Modules()[i].State() {
			t.Fatalf("module %d state diverged: %v vs %v", i, m.State(), instrumented.Modules()[i].State())
		}
	}
}

// TestSystemSpanEmission drives a fault-injected run with spans and a
// flight recorder attached and checks the simulated-clock span stream:
// module_state intervals on every transition, rejuvenation intervals with
// drain durations, zero-length divergence markers, and incident files
// around compromises / divergences / rejuvenations. Two diverging versions
// make every single compromise a 1v1 split, so the run reliably produces
// divergences.
func TestSystemSpanEmission(t *testing.T) {
	cfg := CaseStudyConfig()
	versions := []Version[int, int]{
		&divergingVersion{name: "a", id: 0},
		&divergingVersion{name: "b", id: 1},
	}
	sys, err := NewSystem[int, int](versions, NewEqualityVoter[int](), cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rt := obs.NewRuntime(4096)
	fr, err := obs.NewFlightRecorder(t.TempDir(), 0, 0, rt.Spans(), rt.Tracer())
	if err != nil {
		t.Fatal(err)
	}
	rt.AttachFlightRecorder(fr)
	sys.InstrumentObs(rt)
	driveSystem(t, sys, 3000)
	st := sys.Stats()
	if st.Compromises == 0 || st.Divergences == 0 || st.ReactiveRejuvenations == 0 {
		t.Fatalf("run too quiet to be meaningful: %+v", st)
	}

	trace := uint64(0)
	kinds := map[string]int{}
	for _, r := range rt.Spans().Spans() {
		kinds[r.Kind]++
		if trace == 0 {
			trace = r.Trace
		} else if r.Trace != trace {
			t.Fatalf("system emitted multiple trace ids: %d and %d", trace, r.Trace)
		}
		switch r.Kind {
		case "module_state":
			if r.Attrs["module"] == nil || r.Attrs["state"] == nil {
				t.Fatalf("module_state span missing attrs: %+v", r)
			}
			if r.End < r.Start {
				t.Fatalf("module_state interval inverted: %+v", r)
			}
		case "rejuvenation":
			if r.End <= r.Start {
				t.Fatalf("rejuvenation span has no drain duration: %+v", r)
			}
		case "divergence":
			if r.End != r.Start {
				t.Fatalf("divergence marker not zero-length: %+v", r)
			}
		default:
			t.Fatalf("unexpected span kind %q", r.Kind)
		}
	}
	for _, kind := range []string{"module_state", "rejuvenation", "divergence"} {
		if kinds[kind] == 0 {
			t.Fatalf("no %s spans emitted (kinds: %v)", kind, kinds)
		}
	}
	if kinds["divergence"] != st.Divergences {
		t.Fatalf("%d divergence spans, stats counted %d", kinds["divergence"], st.Divergences)
	}

	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	reasons := map[string]bool{}
	for _, path := range fr.Incidents() {
		reasons[readIncidentReason(t, path)] = true
	}
	for _, want := range []string{"compromise", "divergence", "rejuvenation_reactive"} {
		if !reasons[want] {
			t.Fatalf("no incident for %q (got %v)", want, reasons)
		}
	}
}

// readIncidentReason extracts the reason field from one incident file.
func readIncidentReason(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var inc struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(b, &inc); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return inc.Reason
}

// TestTelemetryMirrorsStats checks the registry counters agree with the
// System's own Stats after a long fault-injected run.
func TestTelemetryMirrorsStats(t *testing.T) {
	cfg := CaseStudyConfig()
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), cfg, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	sys.Instrument(reg, tr)
	driveSystem(t, sys, 3000)
	st := sys.Stats()
	if st.Decisions == 0 || st.Compromises == 0 {
		t.Fatalf("run too quiet to be meaningful: %+v", st)
	}

	decisions := reg.Counter(MetricVoterRounds, "outcome", "decision").Value()
	skipNoMod := reg.Counter(MetricVoterRounds, "outcome", "skip_no_modules").Value()
	skipDiv := reg.Counter(MetricVoterRounds, "outcome", "skip_divergence").Value()
	if decisions != uint64(st.Decisions) {
		t.Errorf("decision counter %d, stats %d", decisions, st.Decisions)
	}
	if skipNoMod+skipDiv != uint64(st.Skips) {
		t.Errorf("skip counters %d+%d, stats %d", skipNoMod, skipDiv, st.Skips)
	}
	if skipDiv != uint64(st.Divergences) {
		t.Errorf("divergence counter %d, stats %d", skipDiv, st.Divergences)
	}

	var rejuv uint64
	for _, m := range reg.Snapshot() {
		if m.Name == MetricRejuvenations {
			rejuv += uint64(*m.Value)
		}
	}
	if rejuv != uint64(st.ReactiveRejuvenations+st.ProactiveRejuvenations) {
		t.Errorf("rejuvenation counters %d, stats %d+%d",
			rejuv, st.ReactiveRejuvenations, st.ProactiveRejuvenations)
	}

	// Stats.Inferences counts voter rounds: the vote-latency histogram sees
	// exactly one observation per round, while the per-module latency
	// histograms sum to rounds x functional modules (between the all-dead
	// and all-healthy extremes).
	var voteCount, moduleCount uint64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case MetricVoteLatency:
			voteCount += m.Histogram.Count
		case MetricInferenceLatency:
			moduleCount += m.Histogram.Count
		}
	}
	if voteCount != uint64(st.Inferences) {
		t.Errorf("vote histogram count %d, stats %d rounds", voteCount, st.Inferences)
	}
	if moduleCount == 0 || moduleCount > 3*uint64(st.Inferences) {
		t.Errorf("module inference count %d outside (0, 3x%d]", moduleCount, st.Inferences)
	}

	// The trace saw the same lifecycle the stats did.
	if tr.Emitted() == 0 {
		t.Error("no trace events emitted")
	}
}

func TestInstrumentDetach(t *testing.T) {
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), noFaultConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	sys.Instrument(reg, nil)
	if _, _, err := sys.Infer(1, 0); err != nil {
		t.Fatal(err)
	}
	before := reg.Counter(MetricVoterRounds, "outcome", "decision").Value()
	if before != 1 {
		t.Fatalf("decision counter %d, want 1", before)
	}
	sys.Instrument(nil, nil) // detach
	if _, _, err := sys.Infer(2, 0); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricVoterRounds, "outcome", "decision").Value(); got != before {
		t.Fatalf("detached system still counted: %d", got)
	}
}

func TestStatsRatios(t *testing.T) {
	var zero Stats
	if zero.SkipRatio() != 0 || zero.DecisionRatio() != 0 || zero.DivergenceRatio() != 0 {
		t.Fatal("zero-inference ratios must be 0, not NaN")
	}
	s := Stats{Inferences: 8, Skips: 2, Decisions: 6, Divergences: 1}
	if s.SkipRatio() != 0.25 || s.DecisionRatio() != 0.75 || s.DivergenceRatio() != 0.125 {
		t.Fatalf("ratios %v %v %v", s.SkipRatio(), s.DecisionRatio(), s.DivergenceRatio())
	}
}

// benchSystem builds a no-fault system so the benchmark isolates the Infer
// hot path itself.
func benchSystem(b *testing.B) *System[int, int] {
	b.Helper()
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), noFaultConfig(), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkInferUninstrumented(b *testing.B) {
	sys := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Infer(float64(i), i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferInstrumented(b *testing.B) {
	sys := benchSystem(b)
	sys.Instrument(obs.NewRegistry(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Infer(float64(i), i); err != nil {
			b.Fatal(err)
		}
	}
}
