package core

import "fmt"

// ModuleState is the health state of an ML module.
type ModuleState int

// Module health states. Healthy and Compromised modules are functional
// (they answer inference requests); NonFunctional and Rejuvenating modules
// are not.
const (
	// Healthy modules behave as trained.
	Healthy ModuleState = iota + 1
	// Compromised modules remain responsive but may output errors
	// (the adversary keeps them alive to evade detection, §IV).
	Compromised
	// NonFunctional modules have crashed and no longer respond; the
	// voter's missing-proposal detection triggers reactive rejuvenation.
	NonFunctional
	// Rejuvenating modules are being reloaded (reactively or proactively)
	// and cannot process sensor data meanwhile.
	Rejuvenating
)

func (s ModuleState) String() string {
	switch s {
	case Healthy:
		return "H"
	case Compromised:
		return "C"
	case NonFunctional:
		return "N"
	case Rejuvenating:
		return "R"
	default:
		return fmt.Sprintf("ModuleState(%d)", int(s))
	}
}

// Functional reports whether a module in this state answers inference
// requests.
func (s ModuleState) Functional() bool {
	return s == Healthy || s == Compromised
}

// Module pairs a Version with its health state and event timers. Modules are
// owned and driven by a System.
type Module[I, O any] struct {
	version Version[I, O]
	state   ModuleState

	// Event times (simulated seconds); +Inf when not scheduled.
	compromiseAt float64 // pending H -> C
	crashAt      float64 // pending C -> N
	rejuvDoneAt  float64 // pending completion of an ongoing rejuvenation

	// wasCompromisedAtRejuvenation remembers whether Restore needs to be
	// called when rejuvenation finishes (the version was degraded).
	degraded bool

	// Counters.
	compromises   int
	crashes       int
	rejuvenations int
}

// Name returns the wrapped version's name.
func (m *Module[I, O]) Name() string { return m.version.Name() }

// State returns the module's current health state.
func (m *Module[I, O]) State() ModuleState { return m.state }

// Stats returns lifetime counters: compromises suffered, crashes suffered,
// rejuvenations completed.
func (m *Module[I, O]) Stats() (compromises, crashes, rejuvenations int) {
	return m.compromises, m.crashes, m.rejuvenations
}
