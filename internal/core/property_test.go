package core

import (
	"testing"
	"testing/quick"

	"mvml/internal/xrand"
)

// randomProposals builds a proposal list from fuzz input.
func randomProposals(values []uint8) []Proposal[int] {
	out := make([]Proposal[int], 0, len(values))
	for i, v := range values {
		out = append(out, Proposal[int]{
			Module: string(rune('a' + i%26)),
			Value:  int(v % 7),
		})
	}
	return out
}

// TestPropertyMajorityOutputIsAProposal: whatever the majority voter emits
// must be one of the proposed values — the voter can never invent an output.
func TestPropertyMajorityOutputIsAProposal(t *testing.T) {
	v := NewEqualityVoter[int]()
	f := func(values []uint8) bool {
		proposals := randomProposals(values)
		d := v.Vote(proposals)
		if d.Skipped {
			return true
		}
		for _, p := range proposals {
			if p.Value == d.Value {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMajorityNeedsQuorum: a non-skipped majority decision is backed
// by more than half of the proposals (or is the lone proposal).
func TestPropertyMajorityNeedsQuorum(t *testing.T) {
	v := NewEqualityVoter[int]()
	f := func(values []uint8) bool {
		proposals := randomProposals(values)
		d := v.Vote(proposals)
		if d.Skipped {
			return true
		}
		count := 0
		for _, p := range proposals {
			if p.Value == d.Value {
				count++
			}
		}
		if len(proposals) == 1 {
			return count == 1
		}
		return count > len(proposals)/2 || (len(proposals) == 2 && count == 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMajorityPermutationInvariant: shuffling the proposals never
// changes a majority verdict (the winning value is unique when a quorum
// exists).
func TestPropertyMajorityPermutationInvariant(t *testing.T) {
	v := NewEqualityVoter[int]()
	f := func(values []uint8, seed uint64) bool {
		proposals := randomProposals(values)
		a := v.Vote(proposals)
		shuffled := append([]Proposal[int](nil), proposals...)
		xrand.New(seed).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := v.Vote(shuffled)
		if a.Skipped != b.Skipped {
			return false
		}
		return a.Skipped || a.Value == b.Value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnanimousImpliesMajority: whenever unanimity produces an
// output, the majority voter must produce the same output.
func TestPropertyUnanimousImpliesMajority(t *testing.T) {
	u := NewUnanimousVoter[int]()
	m := NewEqualityVoter[int]()
	f := func(values []uint8) bool {
		proposals := randomProposals(values)
		du := u.Vote(proposals)
		if du.Skipped {
			return true
		}
		dm := m.Vote(proposals)
		return !dm.Skipped && dm.Value == du.Value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPluralityAlwaysDecides: plurality skips only on empty input.
func TestPropertyPluralityAlwaysDecides(t *testing.T) {
	v := NewPluralityVoter[int]()
	f := func(values []uint8) bool {
		proposals := randomProposals(values)
		d := v.Vote(proposals)
		return d.Skipped == (len(proposals) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySystemOccupancyIsDistribution: after any advance, the system
// occupancy fractions sum to 1 and every state has the right module total.
func TestPropertySystemOccupancyIsDistribution(t *testing.T) {
	f := func(seed uint64, horizonRaw uint16) bool {
		horizon := 10 + float64(horizonRaw%2000)
		cfg := Config{
			MeanTimeToCompromise:      5,
			MeanTimeToFailure:         7,
			MeanReactiveRejuvenation:  0.5,
			MeanProactiveRejuvenation: 0.5,
			RejuvenationInterval:      3,
		}
		sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), cfg, xrand.New(seed))
		if err != nil {
			return false
		}
		if err := sys.Advance(horizon); err != nil {
			return false
		}
		var total float64
		for st, frac := range sys.Occupancy() {
			if frac < 0 || st.Total() != 3 {
				return false
			}
			total += frac
		}
		return total > 0.999 && total < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMixtureCalibration: for any valid (p, alpha), the solved
// mixture reproduces both the marginal and the pairwise joint probability.
func TestPropertyMixtureCalibration(t *testing.T) {
	f := func(pRaw, aRaw uint16) bool {
		p := 0.001 + 0.8*float64(pRaw)/65535
		alpha := float64(aRaw) / 65535
		c, q, err := mixtureParams(p, alpha)
		if err != nil {
			// Some (p, alpha) pairs have no valid mixture; that is a
			// documented error, not a property violation.
			return true
		}
		if c < 0 || c > 1 || q < 0 || q > 1 {
			return false
		}
		marginal := c + (1-c)*q
		joint := c + (1-c)*q*q
		return abs(marginal-p) < 1e-9 && abs(joint-alpha*p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
