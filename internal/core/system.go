package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

// SelectionMode chooses how the proactive rejuvenator picks its victim.
type SelectionMode int

// Proactive victim-selection policies.
const (
	// SelectByCount picks uniformly among functional modules, i.e. a
	// compromised module is chosen with probability #C/(#C+#H) — the
	// DSPN's w1/w2 weight functions (Table I).
	SelectByCount SelectionMode = iota + 1
	// SelectPreferCompromised picks a compromised module (when one
	// exists) with probability PreferProb, else a uniformly random
	// functional module — the 2/3-prioritisation policy of the CARLA
	// case study (§VII-A).
	SelectPreferCompromised
)

func (m SelectionMode) String() string {
	switch m {
	case SelectByCount:
		return "by_count"
	case SelectPreferCompromised:
		return "prefer_compromised"
	default:
		return fmt.Sprintf("SelectionMode(%d)", int(m))
	}
}

// Config parameterises a System.
type Config struct {
	// MeanTimeToCompromise is 1/λc: exponential mean of the H→C event.
	MeanTimeToCompromise float64
	// MeanTimeToFailure is 1/λ: exponential mean of the C→N event.
	MeanTimeToFailure float64
	// MeanReactiveRejuvenation is 1/μ: exponential mean of reactive
	// rejuvenation (one module at a time, as in the DSPN's Tr).
	MeanReactiveRejuvenation float64
	// MeanProactiveRejuvenation is 1/μr.
	MeanProactiveRejuvenation float64
	// RejuvenationInterval is 1/γ, the deterministic trigger period.
	// Zero disables proactive rejuvenation.
	RejuvenationInterval float64
	// Selection picks the proactive victim-selection policy
	// (default SelectByCount).
	Selection SelectionMode
	// PreferProb is the compromised-first probability for
	// SelectPreferCompromised (the case study uses 2/3).
	PreferProb float64
	// DisableFaults freezes the fault processes (modules stay healthy);
	// used by overhead measurements.
	DisableFaults bool
	// DisableReactive turns off reactive rejuvenation: crashed modules
	// stay non-functional. Together with RejuvenationInterval = 0 this is
	// the case study's "without rejuvenation" arm, where the ensemble
	// degrades monotonically over a run.
	DisableReactive bool
	// PerModuleClocks selects per-module fault clocks: every healthy
	// module carries its own exponential compromise timer (so the system
	// compromise rate scales with the healthy count), as in the CARLA
	// case study where "models become compromised sequentially". The
	// default (false) uses system-level single-server clocks, matching
	// the DSPN semantics of Figs. 2/3 under which the paper's Table V is
	// reproduced.
	PerModuleClocks bool
}

// CaseStudyConfig returns the CARLA case-study parameters of §VII-A:
// 1/λc = 8 s, 1/λ = 16 s, 1/μ = 1/μr = 0.5 s, 1/γ = 3 s, with the
// 2/3 compromised-first selection policy. Models "become compromised
// sequentially" (§VII-A), i.e. one system-level compromise process — the
// DSPN-aligned shared clocks, under which a 3 s rejuvenation interval can
// keep up with the 8 s compromise stream.
func CaseStudyConfig() Config {
	return Config{
		MeanTimeToCompromise:      8,
		MeanTimeToFailure:         16,
		MeanReactiveRejuvenation:  0.5,
		MeanProactiveRejuvenation: 0.5,
		RejuvenationInterval:      3,
		Selection:                 SelectPreferCompromised,
		PreferProb:                2.0 / 3.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.RejuvenationInterval < 0 {
		return fmt.Errorf("core: negative rejuvenation interval %v", c.RejuvenationInterval)
	}
	if c.RejuvenationInterval > 0 && c.MeanProactiveRejuvenation <= 0 {
		return fmt.Errorf("core: proactive rejuvenation mean %v must be positive", c.MeanProactiveRejuvenation)
	}
	if c.Selection == SelectPreferCompromised && (c.PreferProb < 0 || c.PreferProb > 1) {
		return fmt.Errorf("core: PreferProb %v outside [0,1]", c.PreferProb)
	}
	if c.DisableFaults {
		// Fault-process parameters are unused.
		return nil
	}
	if c.MeanTimeToCompromise <= 0 || c.MeanTimeToFailure <= 0 {
		return fmt.Errorf("core: fault-process means must be positive (1/λc=%v, 1/λ=%v)",
			c.MeanTimeToCompromise, c.MeanTimeToFailure)
	}
	if !c.DisableReactive && c.MeanReactiveRejuvenation <= 0 {
		return fmt.Errorf("core: reactive rejuvenation mean %v must be positive", c.MeanReactiveRejuvenation)
	}
	return nil
}

// Stats aggregates a system's decision outcomes and lifecycle events. The
// counters are maintained unconditionally (telemetry attachment never
// changes them); when a registry is attached via Instrument, the same
// quantities are mirrored as metric series.
type Stats struct {
	Decisions  int // votes that produced an output
	Skips      int // safe skips (divergence or no functional modules)
	Inferences int // total inference rounds
	// Divergences counts the skips caused by disagreement between at least
	// one functional module pair (i.e. skips with a non-empty proposal
	// set); Skips - Divergences rounds had no functional modules at all.
	Divergences int
	// Compromises and Crashes count H→C and C→N transitions across all
	// modules.
	Compromises int
	Crashes     int
	// ReactiveRejuvenations and ProactiveRejuvenations count rejuvenation
	// starts by kind.
	ReactiveRejuvenations  int
	ProactiveRejuvenations int
}

// ratio is the shared zero-Inferences guard: every Stats accessor reports 0
// before the first inference round rather than NaN.
func (s Stats) ratio(n int) float64 {
	if s.Inferences == 0 {
		return 0
	}
	return float64(n) / float64(s.Inferences)
}

// SkipRatio is the fraction of rounds the voter skipped (the paper reports
// ≈2% for the case study).
func (s Stats) SkipRatio() float64 { return s.ratio(s.Skips) }

// DecisionRatio is the fraction of rounds that produced an output.
func (s Stats) DecisionRatio() float64 { return s.ratio(s.Decisions) }

// DivergenceRatio is the fraction of rounds skipped due to module
// disagreement (excluding rounds with no functional modules).
func (s Stats) DivergenceRatio() float64 { return s.ratio(s.Divergences) }

// System is the executable multi-version architecture: N versioned modules,
// a trusted voter, stochastic fault processes, and the rejuvenation
// mechanism, driven along a simulated clock.
type System[I, O any] struct {
	modules []*Module[I, O]
	voter   Voter[O]
	cfg     Config
	rng     *xrand.Rand

	now            float64
	nextTick       float64 // next proactive trigger expiry
	pendingTrigger bool    // a trigger fired but no rejuvenation started yet
	repairing      int     // index of module under reactive repair, -1 if none

	// Single-server fault clocks (used unless cfg.PerModuleClocks).
	sysCompromiseAt float64
	sysCrashAt      float64

	stats     Stats
	occupancy map[reliability.State]float64
	observed  float64

	// tel is the optional observability hook (see Instrument); nil means
	// uninstrumented, and every telemetry method no-ops on nil.
	tel *telemetry
}

// NewSystem builds a system over the given versions. The voter is trusted
// and assumed not to fail (fault model, §III).
func NewSystem[I, O any](versions []Version[I, O], voter Voter[O], cfg Config, rng *xrand.Rand) (*System[I, O], error) {
	if len(versions) == 0 {
		return nil, errors.New("core: need at least one version")
	}
	if voter == nil {
		return nil, errors.New("core: nil voter")
	}
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Selection == 0 {
		cfg.Selection = SelectByCount
	}
	s := &System[I, O]{
		voter:           voter,
		cfg:             cfg,
		rng:             rng,
		repairing:       -1,
		occupancy:       make(map[reliability.State]float64),
		nextTick:        math.Inf(1),
		sysCompromiseAt: math.Inf(1),
		sysCrashAt:      math.Inf(1),
	}
	if cfg.RejuvenationInterval > 0 {
		s.nextTick = cfg.RejuvenationInterval
	}
	names := make(map[string]bool, len(versions))
	for _, v := range versions {
		if names[v.Name()] {
			return nil, fmt.Errorf("core: duplicate version name %q", v.Name())
		}
		names[v.Name()] = true
		m := &Module[I, O]{
			version:      v,
			state:        Healthy,
			compromiseAt: math.Inf(1),
			crashAt:      math.Inf(1),
			rejuvDoneAt:  math.Inf(1),
		}
		if cfg.PerModuleClocks {
			m.compromiseAt = s.sampleCompromise(0)
		}
		s.modules = append(s.modules, m)
	}
	s.resampleSharedClocks(0)
	return s, nil
}

// resampleSharedClocks re-draws the system-level exponential fault clocks
// after a state change. By memorylessness this is statistically equivalent
// to letting a pending clock run, and it keeps the enabling conditions (a
// healthy module exists / a compromised module exists) in sync with the
// marking — exactly the DSPN's single-server Tc and Tf.
func (s *System[I, O]) resampleSharedClocks(now float64) {
	if s.cfg.PerModuleClocks || s.cfg.DisableFaults {
		return
	}
	anyHealthy, anyCompromised := false, false
	for _, m := range s.modules {
		switch m.state {
		case Healthy:
			anyHealthy = true
		case Compromised:
			anyCompromised = true
		}
	}
	if anyHealthy {
		s.sysCompromiseAt = now + s.rng.Exp(s.cfg.MeanTimeToCompromise)
	} else {
		s.sysCompromiseAt = math.Inf(1)
	}
	if anyCompromised {
		s.sysCrashAt = now + s.rng.Exp(s.cfg.MeanTimeToFailure)
	} else {
		s.sysCrashAt = math.Inf(1)
	}
}

// sampleCompromise draws the next per-module compromise time; it returns
// +Inf when faults are disabled or the system runs on shared single-server
// clocks (where resampleSharedClocks owns the fault schedule).
func (s *System[I, O]) sampleCompromise(now float64) float64 {
	if s.cfg.DisableFaults || !s.cfg.PerModuleClocks {
		return math.Inf(1)
	}
	return now + s.rng.Exp(s.cfg.MeanTimeToCompromise)
}

// Now returns the system's simulated clock.
func (s *System[I, O]) Now() float64 { return s.now }

// Modules exposes the modules (read-mostly; callers must not mutate state).
func (s *System[I, O]) Modules() []*Module[I, O] { return s.modules }

// Stats returns decision counters.
func (s *System[I, O]) Stats() Stats { return s.stats }

// State returns the current (i, j, k) system state; modules under any form
// of rejuvenation count as non-functional.
func (s *System[I, O]) State() reliability.State {
	var st reliability.State
	for _, m := range s.modules {
		switch m.state {
		case Healthy:
			st.Healthy++
		case Compromised:
			st.Compromised++
		default:
			st.NonFunctional++
		}
	}
	return st
}

// Occupancy returns the fraction of simulated time spent in each system
// state since construction — directly comparable with the DSPN model's
// steady-state probabilities.
func (s *System[I, O]) Occupancy() map[reliability.State]float64 {
	out := make(map[reliability.State]float64, len(s.occupancy))
	if s.observed <= 0 {
		return out
	}
	for st, dur := range s.occupancy {
		out[st] = dur / s.observed
	}
	return out
}

// nextEventTime scans all pending events.
func (s *System[I, O]) nextEventTime() float64 {
	t := s.nextTick
	if s.sysCompromiseAt < t {
		t = s.sysCompromiseAt
	}
	if s.sysCrashAt < t {
		t = s.sysCrashAt
	}
	for _, m := range s.modules {
		if m.compromiseAt < t {
			t = m.compromiseAt
		}
		if m.crashAt < t {
			t = m.crashAt
		}
		if m.rejuvDoneAt < t {
			t = m.rejuvDoneAt
		}
	}
	return t
}

// Advance moves the simulated clock to target, processing every fault and
// rejuvenation event on the way.
func (s *System[I, O]) Advance(target float64) error {
	if target < s.now {
		return fmt.Errorf("core: cannot advance backwards from %v to %v", s.now, target)
	}
	for {
		next := s.nextEventTime()
		if next > target {
			s.dwell(target - s.now)
			s.now = target
			return nil
		}
		s.dwell(next - s.now)
		s.now = next
		if err := s.processEventsAt(next); err != nil {
			return err
		}
	}
}

func (s *System[I, O]) dwell(dt float64) {
	if dt <= 0 {
		return
	}
	s.occupancy[s.State()] += dt
	s.observed += dt
}

// compromiseModule performs the H→C transition on module i.
func (s *System[I, O]) compromiseModule(i int, t float64) error {
	m := s.modules[i]
	m.compromiseAt = math.Inf(1)
	m.state = Compromised
	m.compromises++
	m.degraded = true
	s.stats.Compromises++
	s.tel.transition(t, i, Healthy, Compromised, "", "")
	if err := m.version.Compromise(); err != nil {
		return fmt.Errorf("core: compromising %s: %w", m.Name(), err)
	}
	if s.cfg.PerModuleClocks {
		m.crashAt = t + s.rng.Exp(s.cfg.MeanTimeToFailure)
	}
	return nil
}

// crashModule performs the C→N transition on module i.
func (s *System[I, O]) crashModule(i int, t float64) {
	m := s.modules[i]
	m.crashAt = math.Inf(1)
	m.state = NonFunctional
	m.crashes++
	s.stats.Crashes++
	s.tel.transition(t, i, Compromised, NonFunctional, "", "")
}

// pickRandomInState returns a uniformly random module index in the given
// state, or -1 if none exists.
func (s *System[I, O]) pickRandomInState(st ModuleState) int {
	var idxs []int
	for i, m := range s.modules {
		if m.state == st {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[s.rng.Intn(len(idxs))]
}

// processEventsAt fires every event scheduled exactly at time t.
func (s *System[I, O]) processEventsAt(t float64) error {
	// Single-server fault clocks (DSPN semantics): one compromise / crash
	// event at a time, hitting a uniformly random eligible module.
	if s.sysCompromiseAt <= t {
		s.sysCompromiseAt = math.Inf(1)
		if i := s.pickRandomInState(Healthy); i >= 0 {
			if err := s.compromiseModule(i, t); err != nil {
				return err
			}
		}
	}
	if s.sysCrashAt <= t {
		s.sysCrashAt = math.Inf(1)
		if i := s.pickRandomInState(Compromised); i >= 0 {
			s.crashModule(i, t)
		}
	}
	for i, m := range s.modules {
		switch {
		case m.compromiseAt <= t && m.state == Healthy:
			if err := s.compromiseModule(i, t); err != nil {
				return err
			}

		case m.crashAt <= t && m.state == Compromised:
			s.crashModule(i, t)

		case m.rejuvDoneAt <= t && m.state == Rejuvenating:
			m.rejuvDoneAt = math.Inf(1)
			m.state = Healthy
			m.rejuvenations++
			s.tel.transition(t, i, Rejuvenating, Healthy, "", "")
			if m.degraded {
				if err := m.version.Restore(); err != nil {
					return fmt.Errorf("core: restoring %s: %w", m.Name(), err)
				}
				m.degraded = false
			}
			m.compromiseAt = s.sampleCompromise(t)
			if s.repairing == i {
				s.repairing = -1
			}
		}
	}
	// Proactive trigger expiry: register a pending trigger and reset the
	// clock (DSPN: Tac fires, Trt immediately returns the token to Prc).
	if t >= s.nextTick {
		s.pendingTrigger = true
		s.nextTick = t + s.cfg.RejuvenationInterval
		s.tel.trigger(t)
	}
	// Reactive rejuvenation: one crashed module at a time (single-server
	// Tr), taking precedence over proactive starts.
	if s.repairing < 0 && !s.cfg.DisableReactive {
		for i, m := range s.modules {
			if m.state == NonFunctional {
				s.repairing = i
				m.state = Rejuvenating
				m.rejuvDoneAt = t + s.rng.Exp(s.cfg.MeanReactiveRejuvenation)
				s.stats.ReactiveRejuvenations++
				s.tel.transition(t, i, NonFunctional, Rejuvenating, "reactive", "")
				break
			}
		}
	}
	// Proactive start: only when no module is crashed or rejuvenating
	// (guard g2) and a trigger is pending.
	if s.pendingTrigger && s.canStartProactive() {
		victim := s.selectVictim()
		if victim >= 0 {
			m := s.modules[victim]
			from := m.state
			m.state = Rejuvenating
			m.crashAt = math.Inf(1)
			m.compromiseAt = math.Inf(1)
			m.rejuvDoneAt = t + s.rng.Exp(s.cfg.MeanProactiveRejuvenation)
			s.pendingTrigger = false
			s.stats.ProactiveRejuvenations++
			s.tel.transition(t, victim, from, Rejuvenating, "proactive", s.cfg.Selection.String())
		}
	}
	// Re-arm the single-server fault clocks against the new state
	// (memorylessness makes re-drawing equivalent to continuing).
	s.resampleSharedClocks(t)
	if s.tel != nil {
		s.tel.syncPopulation(s.statePopulation())
	}
	return nil
}

func (s *System[I, O]) canStartProactive() bool {
	for _, m := range s.modules {
		if m.state == NonFunctional || m.state == Rejuvenating {
			return false
		}
	}
	return true
}

// selectVictim picks the module to rejuvenate proactively, or -1 if none is
// eligible.
func (s *System[I, O]) selectVictim() int {
	var healthy, compromised []int
	for i, m := range s.modules {
		switch m.state {
		case Healthy:
			healthy = append(healthy, i)
		case Compromised:
			compromised = append(compromised, i)
		}
	}
	total := len(healthy) + len(compromised)
	if total == 0 {
		return -1
	}
	switch s.cfg.Selection {
	case SelectPreferCompromised:
		if len(compromised) > 0 && s.rng.Bernoulli(s.cfg.PreferProb) {
			return compromised[s.rng.Intn(len(compromised))]
		}
		all := append(append([]int(nil), healthy...), compromised...)
		return all[s.rng.Intn(len(all))]
	default: // SelectByCount: uniform over functional modules (w1/w2)
		all := append(append([]int(nil), healthy...), compromised...)
		return all[s.rng.Intn(len(all))]
	}
}

// Infer advances the clock to time t and runs one voted inference round.
// Non-functional and rejuvenating modules contribute no proposal. The
// returned proposals allow callers to audit individual versions.
func (s *System[I, O]) Infer(t float64, in I) (Decision[O], []Proposal[O], error) {
	if err := s.Advance(t); err != nil {
		return Decision[O]{}, nil, err
	}
	proposals := make([]Proposal[O], 0, len(s.modules))
	var start time.Time
	for i, m := range s.modules {
		if !m.state.Functional() {
			continue
		}
		if s.tel != nil {
			start = time.Now()
		}
		out, err := m.version.Infer(in)
		if s.tel != nil {
			s.tel.moduleLatency[i].Observe(time.Since(start).Seconds())
		}
		if err != nil {
			return Decision[O]{}, nil, fmt.Errorf("core: inference on %s: %w", m.Name(), err)
		}
		proposals = append(proposals, Proposal[O]{Module: m.Name(), Value: out})
	}
	if s.tel != nil {
		start = time.Now()
	}
	d := s.voter.Vote(proposals)
	if s.tel != nil {
		s.tel.voteLatency.Observe(time.Since(start).Seconds())
	}
	s.stats.Inferences++
	if d.Skipped {
		s.stats.Skips++
		if len(proposals) > 0 {
			s.stats.Divergences++
		}
	} else {
		s.stats.Decisions++
	}
	if s.tel != nil {
		s.tel.voterOutcome(t, &decisionOutcome{
			skipped:    d.Skipped,
			reason:     d.Reason,
			proposals:  len(proposals),
			dissenting: d.Dissenting,
		})
	}
	return d, proposals, nil
}
