package core

// Fuzz coverage for the five voting schemes. Each target decodes an
// arbitrary byte string into a proposal list and checks the voting rules
// R.1–R.3 as executable invariants: agreement thresholds, safe-skip
// conditions, and (for the median voter) containment in the proposal range.
// The harness itself never panicking is part of the contract — voters sit on
// the perception hot path and must tolerate any proposal multiset.

import (
	"math"
	"testing"
)

// fuzzProposals decodes bytes into proposals over a small label alphabet so
// that agreement clusters of every size actually occur.
func fuzzProposals(data []byte) []Proposal[int] {
	props := make([]Proposal[int], 0, len(data))
	for i, b := range data {
		props = append(props, Proposal[int]{
			Module: string(rune('A' + i%7)),
			Value:  int(b % 5),
		})
		if len(props) == 64 {
			break
		}
	}
	return props
}

// clusterCount returns how many proposals share value v.
func clusterCount(props []Proposal[int], v int) int {
	n := 0
	for _, p := range props {
		if p.Value == v {
			n++
		}
	}
	return n
}

func FuzzVoter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 1, 2})
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add([]byte{3, 3, 3, 3, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		props := fuzzProposals(data)
		n := len(props)
		need := n/2 + 1
		if n == 2 {
			need = 2 // R.2
		}

		majority := NewEqualityVoter[int]().Vote(props)
		unanimous := NewUnanimousVoter[int]().Vote(props)
		plurality := NewPluralityVoter[int]().Vote(props)
		weighted := (&WeightedVoter[int]{Eq: func(a, b int) bool { return a == b }}).Vote(props)

		for name, d := range map[string]Decision[int]{
			"majority": majority, "unanimous": unanimous,
			"plurality": plurality, "weighted": weighted,
		} {
			if n == 0 && !d.Skipped {
				t.Fatalf("%s: empty proposal list must skip", name)
			}
			if !d.Skipped {
				if d.Agreeing < 1 || d.Agreeing > n {
					t.Fatalf("%s: agreeing %d out of range [1,%d]", name, d.Agreeing, n)
				}
				if got := clusterCount(props, d.Value); got != d.Agreeing {
					t.Fatalf("%s: reported %d agreeing, actual cluster size %d", name, d.Agreeing, got)
				}
			}
			if n > 0 && d.Proposals != n {
				t.Fatalf("%s: Proposals = %d, want %d", name, d.Proposals, n)
			}
		}

		// R.1/R.2: majority output requires a need-sized cluster; a skip
		// means no such cluster exists.
		if !majority.Skipped && n >= 2 && majority.Agreeing < need {
			t.Fatalf("majority accepted with %d < %d agreement", majority.Agreeing, need)
		}
		if majority.Skipped && n >= 2 {
			for _, p := range props {
				if clusterCount(props, p.Value) >= need {
					t.Fatalf("majority skipped despite %d-of-%d cluster on %d",
						clusterCount(props, p.Value), n, p.Value)
				}
			}
		}
		// R.3: a single proposal is accepted as-is.
		if n == 1 && (majority.Skipped || majority.Value != props[0].Value) {
			t.Fatalf("single proposal not accepted as-is: %+v", majority)
		}

		// Unanimity: accepted iff every proposal agrees.
		allEqual := n > 0
		for _, p := range props {
			if p.Value != props[0].Value {
				allEqual = false
				break
			}
		}
		if unanimous.Skipped == allEqual && n > 0 {
			t.Fatalf("unanimous voter: skipped=%v with allEqual=%v", unanimous.Skipped, allEqual)
		}

		// A plurality voter only skips on an empty list.
		if n > 0 && plurality.Skipped {
			t.Fatal("plurality voter must not skip on non-empty proposals")
		}

		// With unit weights the weighted voter must reduce to the majority
		// voter exactly (same skip decision, value, and cluster size).
		if weighted.Skipped != majority.Skipped {
			t.Fatalf("unit-weight weighted voter diverged from majority: %+v vs %+v", weighted, majority)
		}
		if !weighted.Skipped && (weighted.Value != majority.Value || weighted.Agreeing != majority.Agreeing) {
			t.Fatalf("unit-weight weighted voter chose %+v, majority chose %+v", weighted, majority)
		}
	})
}

func FuzzMedianVoter(f *testing.F) {
	f.Add([]byte{}, 0.5)
	f.Add([]byte{10, 12, 200}, 2.0)
	f.Add([]byte{128, 128}, 0.0)
	f.Fuzz(func(t *testing.T, data []byte, epsilon float64) {
		if math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
			t.Skip("degenerate epsilon")
		}
		props := make([]Proposal[float64], 0, len(data))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, b := range data {
			v := (float64(b) - 128) / 16
			props = append(props, Proposal[float64]{Module: string(rune('A' + i%5)), Value: v})
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			if len(props) == 64 {
				break
			}
		}
		d := (&MedianVoter{Epsilon: epsilon}).Vote(props)
		if len(props) == 0 {
			if !d.Skipped {
				t.Fatal("median voter must skip on empty proposals")
			}
			return
		}
		if d.Proposals != len(props) {
			t.Fatalf("Proposals = %d, want %d", d.Proposals, len(props))
		}
		if !d.Skipped {
			// The median is always inside the proposal range, bounding the
			// influence of any single Byzantine version.
			if d.Value < lo || d.Value > hi {
				t.Fatalf("median %v outside proposal range [%v, %v]", d.Value, lo, hi)
			}
			need := len(props)/2 + 1
			if len(props) == 2 {
				need = 2
			}
			if len(props) >= 2 && d.Agreeing < need {
				t.Fatalf("median accepted with %d < %d agreement", d.Agreeing, need)
			}
		}
	})
}
