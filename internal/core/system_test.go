package core

import (
	"math"
	"testing"

	"mvml/internal/petri"
	"mvml/internal/reliability"
	"mvml/internal/xrand"
)

// constVersion always answers the same value and tracks lifecycle calls.
type constVersion struct {
	name                  string
	value                 int
	compromises, restores int
}

func (v *constVersion) Name() string           { return v.name }
func (v *constVersion) Infer(int) (int, error) { return v.value, nil }
func (v *constVersion) Compromise() error      { v.compromises++; return nil }
func (v *constVersion) Restore() error         { v.restores++; return nil }

func testVersions(n int) []Version[int, int] {
	out := make([]Version[int, int], n)
	for i := range out {
		out[i] = &constVersion{name: string(rune('a' + i)), value: 1}
	}
	return out
}

func noFaultConfig() Config {
	return Config{DisableFaults: true}
}

func TestNewSystemValidation(t *testing.T) {
	voter := NewEqualityVoter[int]()
	rng := xrand.New(1)
	if _, err := NewSystem[int, int](nil, voter, noFaultConfig(), rng); err == nil {
		t.Fatal("expected error for no versions")
	}
	if _, err := NewSystem[int, int](testVersions(3), nil, noFaultConfig(), rng); err == nil {
		t.Fatal("expected error for nil voter")
	}
	if _, err := NewSystem[int, int](testVersions(3), voter, noFaultConfig(), nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	bad := Config{MeanTimeToCompromise: -1}
	if _, err := NewSystem[int, int](testVersions(3), voter, bad, rng); err == nil {
		t.Fatal("expected error for bad config")
	}
	dup := []Version[int, int]{
		&constVersion{name: "same"},
		&constVersion{name: "same"},
	}
	if _, err := NewSystem[int, int](dup, voter, noFaultConfig(), rng); err == nil {
		t.Fatal("expected error for duplicate names")
	}
}

func TestConfigValidate(t *testing.T) {
	good := CaseStudyConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("case-study config invalid: %v", err)
	}
	cases := []Config{
		{MeanTimeToCompromise: 0, MeanTimeToFailure: 1, MeanReactiveRejuvenation: 1},
		{MeanTimeToCompromise: 1, MeanTimeToFailure: 1, MeanReactiveRejuvenation: 0},
		{MeanTimeToCompromise: 1, MeanTimeToFailure: 1, MeanReactiveRejuvenation: 1, RejuvenationInterval: -2},
		{MeanTimeToCompromise: 1, MeanTimeToFailure: 1, MeanReactiveRejuvenation: 1, RejuvenationInterval: 3},
		{DisableFaults: true, RejuvenationInterval: 3}, // proactive without duration
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestInferAllHealthy(t *testing.T) {
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), noFaultConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	d, proposals, err := sys.Infer(1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Skipped || d.Value != 1 || d.Agreeing != 3 {
		t.Fatalf("decision %+v", d)
	}
	if len(proposals) != 3 {
		t.Fatalf("%d proposals, want 3", len(proposals))
	}
	if got := sys.Stats(); got.Decisions != 1 || got.Inferences != 1 || got.Skips != 0 {
		t.Fatalf("stats %+v", got)
	}
}

func TestAdvanceBackwardsRejected(t *testing.T) {
	sys, err := NewSystem[int, int](testVersions(1), NewEqualityVoter[int](), noFaultConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(5); err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(4); err == nil {
		t.Fatal("expected error advancing backwards")
	}
}

func TestCompromiseAndCrashLifecycle(t *testing.T) {
	// Fast fault clock, no rejuvenation interval: modules march
	// H -> C -> N and reactive repair brings them back.
	cfg := Config{
		MeanTimeToCompromise:     1,
		MeanTimeToFailure:        1,
		MeanReactiveRejuvenation: 0.1,
	}
	vs := testVersions(3)
	sys, err := NewSystem[int, int](vs, NewEqualityVoter[int](), cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(200); err != nil {
		t.Fatal(err)
	}
	for _, m := range sys.Modules() {
		comp, crashes, rejuv := m.Stats()
		if comp == 0 || crashes == 0 || rejuv == 0 {
			t.Fatalf("module %s never cycled: %d/%d/%d", m.Name(), comp, crashes, rejuv)
		}
	}
	// Version hooks were driven.
	for _, v := range vs {
		cv, ok := v.(*constVersion)
		if !ok {
			t.Fatal("unexpected version type")
		}
		if cv.compromises == 0 || cv.restores == 0 {
			t.Fatalf("version %s hooks not called: %d compromises, %d restores",
				cv.name, cv.compromises, cv.restores)
		}
	}
}

func TestProactiveRejuvenationRestoresCompromised(t *testing.T) {
	// Compromise happens fast, crash is essentially never, so only
	// proactive rejuvenation can restore modules.
	cfg := Config{
		MeanTimeToCompromise:      1,
		MeanTimeToFailure:         1e12,
		MeanReactiveRejuvenation:  0.1,
		MeanProactiveRejuvenation: 0.1,
		RejuvenationInterval:      2,
		Selection:                 SelectByCount,
	}
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(500); err != nil {
		t.Fatal(err)
	}
	totalRejuv := 0
	for _, m := range sys.Modules() {
		_, crashes, rejuv := m.Stats()
		if crashes != 0 {
			t.Fatalf("module %s crashed despite huge MTTF", m.Name())
		}
		totalRejuv += rejuv
	}
	if totalRejuv == 0 {
		t.Fatal("proactive rejuvenation never completed")
	}
	// Roughly one rejuvenation per interval is possible; at least a
	// meaningful fraction should have happened over 250 intervals.
	if totalRejuv < 100 {
		t.Fatalf("only %d rejuvenations in 500s with a 2s interval", totalRejuv)
	}
}

func TestProactiveDisabledWhenIntervalZero(t *testing.T) {
	cfg := Config{
		MeanTimeToCompromise:     1,
		MeanTimeToFailure:        1e12,
		MeanReactiveRejuvenation: 0.1,
	}
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), cfg, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(300); err != nil {
		t.Fatal(err)
	}
	// Without crashes and without proactive rejuvenation, every module
	// ends compromised and no rejuvenations happen.
	st := sys.State()
	if st.Compromised != 3 {
		t.Fatalf("state %v, want all compromised", st)
	}
	for _, m := range sys.Modules() {
		if _, _, rejuv := m.Stats(); rejuv != 0 {
			t.Fatal("rejuvenation happened with interval 0")
		}
	}
}

func TestSkipAccounting(t *testing.T) {
	// Two versions that disagree force R.2 skips.
	vs := []Version[int, int]{
		&constVersion{name: "a", value: 1},
		&constVersion{name: "b", value: 2},
	}
	sys, err := NewSystem[int, int](vs, NewEqualityVoter[int](), noFaultConfig(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := sys.Infer(float64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.Skips != 10 || st.SkipRatio() != 1 {
		t.Fatalf("stats %+v, want all skips", st)
	}
}

// TestOccupancyMatchesDSPN is the architecture-to-model cross-validation:
// the runtime system's empirical (i,j,k) occupancy must match the steady
// state of the Fig. 2 DSPN under the same parameters.
func TestOccupancyMatchesDSPN(t *testing.T) {
	params := reliability.Params{
		P: 0.06, PPrime: 0.24, Alpha: 0.37,
		MeanTimeToCompromise:      50,
		MeanTimeToFailure:         50,
		MeanReactiveRejuvenation:  0.5,
		MeanProactiveRejuvenation: 0.5,
		RejuvenationInterval:      10,
	}
	model, err := reliability.NewModel(3, params, false)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := model.SolveExact()
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		MeanTimeToCompromise:     params.MeanTimeToCompromise,
		MeanTimeToFailure:        params.MeanTimeToFailure,
		MeanReactiveRejuvenation: params.MeanReactiveRejuvenation,
	}
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), cfg, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(200_000); err != nil {
		t.Fatal(err)
	}
	occ := sys.Occupancy()
	for st, want := range exact.StateProbs {
		if want < 0.01 {
			continue // skip states too rare to estimate tightly
		}
		got := occ[st]
		if math.Abs(got-want) > 0.02 {
			t.Errorf("state %v: runtime occupancy %.4f vs DSPN %.4f", st, got, want)
		}
	}
}

// TestOccupancyMatchesProactiveDSPN cross-validates the proactive
// rejuvenation path against the Fig. 3 DSPN solved by simulation.
func TestOccupancyMatchesProactiveDSPN(t *testing.T) {
	params := reliability.Params{
		P: 0.06, PPrime: 0.24, Alpha: 0.37,
		MeanTimeToCompromise:      50,
		MeanTimeToFailure:         50,
		MeanReactiveRejuvenation:  0.5,
		MeanProactiveRejuvenation: 0.5,
		RejuvenationInterval:      10,
	}
	model, err := reliability.NewModel(3, params, true)
	if err != nil {
		t.Fatal(err)
	}
	dspn, err := model.SolveSimulation(petri.SimConfig{Horizon: 500_000, Warmup: 1000}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		MeanTimeToCompromise:      params.MeanTimeToCompromise,
		MeanTimeToFailure:         params.MeanTimeToFailure,
		MeanReactiveRejuvenation:  params.MeanReactiveRejuvenation,
		MeanProactiveRejuvenation: params.MeanProactiveRejuvenation,
		RejuvenationInterval:      params.RejuvenationInterval,
		Selection:                 SelectByCount,
	}
	sys, err := NewSystem[int, int](testVersions(3), NewEqualityVoter[int](), cfg, xrand.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(500_000); err != nil {
		t.Fatal(err)
	}
	occ := sys.Occupancy()
	for st, want := range dspn.StateProbs {
		if want < 0.02 {
			continue
		}
		got := occ[st]
		if math.Abs(got-want) > 0.03 {
			t.Errorf("state %v: runtime occupancy %.4f vs DSPN %.4f", st, got, want)
		}
	}
}

func TestModuleStateString(t *testing.T) {
	if Healthy.String() != "H" || Compromised.String() != "C" ||
		NonFunctional.String() != "N" || Rejuvenating.String() != "R" {
		t.Fatal("ModuleState.String broken")
	}
	if Healthy.Functional() != true || NonFunctional.Functional() != false ||
		Rejuvenating.Functional() != false || Compromised.Functional() != true {
		t.Fatal("ModuleState.Functional broken")
	}
}

func TestFuncVersion(t *testing.T) {
	v := &FuncVersion[int, int]{
		VersionName: "fn",
		InferFn:     func(in int) (int, error) { return in * 2, nil },
	}
	if v.Name() != "fn" {
		t.Fatal("name")
	}
	out, err := v.Infer(21)
	if err != nil || out != 42 {
		t.Fatalf("infer: %v %v", out, err)
	}
	if err := v.Compromise(); err != nil {
		t.Fatal(err)
	}
	if err := v.Restore(); err != nil {
		t.Fatal(err)
	}
	empty := &FuncVersion[int, int]{VersionName: "empty"}
	if _, err := empty.Infer(1); err == nil {
		t.Fatal("expected error for missing InferFn")
	}
}
