package core

import (
	"fmt"
	"math"

	"mvml/internal/xrand"
)

// LabeledInput is a classification request whose ground truth is known to
// the harness (never to the voter). The ID must uniquely identify the
// underlying sample: correlated-error modelling keys the shared "hardness"
// of an input on it.
type LabeledInput struct {
	ID    int
	Truth int
}

// SyntheticVersion is a statistical stand-in for a trained classifier: it
// errs with probability p when healthy and p′ when compromised, and its
// errors are correlated across the ensemble with dependency α, reproducing
// the error structure the paper measures on real models (Eq. 8). Errors on
// "hard" inputs (the shared failure component) yield the same wrong label in
// every version — the common-mode behaviour that defeats majority voting —
// while independent errors yield version-specific wrong labels.
type SyntheticVersion struct {
	name       string
	classes    int
	sharedSeed uint64
	// Mixture parameters: a version errs on an input when the input's
	// shared hardness draw falls below c, or its private draw falls
	// below q. Healthy and compromised states use separately calibrated
	// (c, q) pairs.
	cHealthy, qHealthy         float64
	cCompromised, qCompromised float64

	compromised bool
}

var _ Version[LabeledInput, int] = (*SyntheticVersion)(nil)

// mixtureParams solves c + (1-c)q = p and c + (1-c)q² = αp for the shared
// (c) and private (q) error components, so that the marginal error
// probability is p and the pairwise error-set overlap is α.
func mixtureParams(p, alpha float64) (c, q float64, err error) {
	if p <= 0 {
		return 0, 0, nil
	}
	if p >= 1 {
		return 1, 0, nil
	}
	disc := (1-alpha*p)*(1-alpha*p) - 4*(1-p)*p*(1-alpha)
	if disc < 0 {
		return 0, 0, fmt.Errorf("core: no error mixture for p=%v, alpha=%v", p, alpha)
	}
	q = ((1 - alpha*p) - math.Sqrt(disc)) / (2 * (1 - p))
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		// Requires negative correlation (alpha*p < p*p), which a shared
		// failure component cannot express.
		return 0, 0, fmt.Errorf("core: no error mixture for p=%v, alpha=%v (alpha < p)", p, alpha)
	}
	c = (p - q) / (1 - q)
	if c < 0 || c > 1 {
		return 0, 0, fmt.Errorf("core: infeasible shared component %v for p=%v, alpha=%v", c, p, alpha)
	}
	return c, q, nil
}

// SyntheticEnsembleConfig parameterises NewSyntheticEnsemble.
type SyntheticEnsembleConfig struct {
	// Versions is the ensemble size.
	Versions int
	// Classes is the label-space size (>= 2).
	Classes int
	// P and PPrime are the healthy and compromised error probabilities.
	P, PPrime float64
	// Alpha is the target pairwise error dependency.
	Alpha float64
	// Seed determines all error draws.
	Seed uint64
}

// NewSyntheticEnsemble builds n synthetic versions sharing a common-mode
// error component calibrated so that each version errs with probability P
// (P′ when compromised) and pairwise error sets overlap by ≈Alpha.
func NewSyntheticEnsemble(cfg SyntheticEnsembleConfig) ([]Version[LabeledInput, int], error) {
	if cfg.Versions < 1 {
		return nil, fmt.Errorf("core: ensemble needs at least 1 version, got %d", cfg.Versions)
	}
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("core: ensemble needs at least 2 classes, got %d", cfg.Classes)
	}
	if cfg.P > cfg.PPrime {
		return nil, fmt.Errorf("core: p (%v) must not exceed p' (%v)", cfg.P, cfg.PPrime)
	}
	ch, qh, err := mixtureParams(cfg.P, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	cc, qc, err := mixtureParams(cfg.PPrime, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	out := make([]Version[LabeledInput, int], 0, cfg.Versions)
	for i := 0; i < cfg.Versions; i++ {
		out = append(out, &SyntheticVersion{
			name:         fmt.Sprintf("synthetic-v%d", i+1),
			classes:      cfg.Classes,
			sharedSeed:   cfg.Seed,
			cHealthy:     ch,
			qHealthy:     qh,
			cCompromised: cc,
			qCompromised: qc,
		})
	}
	return out, nil
}

// Name implements Version.
func (v *SyntheticVersion) Name() string { return v.name }

// Compromise implements Version: the error rate jumps to p′.
func (v *SyntheticVersion) Compromise() error {
	v.compromised = true
	return nil
}

// Restore implements Version: rejuvenation reloads the pristine behaviour.
func (v *SyntheticVersion) Restore() error {
	v.compromised = false
	return nil
}

// Compromised reports the version's current behaviour mode.
func (v *SyntheticVersion) Compromised() bool { return v.compromised }

// Infer implements Version. The output is deterministic per
// (input, version, behaviour mode).
func (v *SyntheticVersion) Infer(in LabeledInput) (int, error) {
	if in.Truth < 0 || in.Truth >= v.classes {
		return 0, fmt.Errorf("core: truth label %d outside [0,%d)", in.Truth, v.classes)
	}
	c, q := v.cHealthy, v.qHealthy
	if v.compromised {
		c, q = v.cCompromised, v.qCompromised
	}
	shared := xrand.New(v.sharedSeed).Split("input", uint64(in.ID))
	hardness := shared.Float64()
	commonWrong := v.wrongLabel(in.Truth, shared)
	if hardness < c {
		// Common-mode failure: every errant version yields the same
		// wrong label.
		return commonWrong, nil
	}
	// q is already the conditional private-error probability given the
	// input is not hard (mixtureParams solves c + (1-c)q = p).
	private := xrand.New(v.sharedSeed).Split(v.name, uint64(in.ID))
	if private.Float64() < q {
		// Independent failure, version-specific wrong label.
		return v.wrongLabel(in.Truth, private), nil
	}
	return in.Truth, nil
}

func (v *SyntheticVersion) wrongLabel(truth int, r *xrand.Rand) int {
	w := r.Intn(v.classes - 1)
	if w >= truth {
		w++
	}
	return w
}
