// Package core implements the paper's primary contribution as an executable
// architecture: a multi-version ML system in which N diverse inference
// versions run behind a trusted voter, stochastic fault processes drive
// modules from healthy (H) through compromised (C) to non-functional (N)
// states, and a rejuvenation mechanism — reactive for crashed modules,
// time-triggered proactive for the rest — restores them to health by
// reloading from a safe location.
//
// The package is generic over the input and output types, so the same
// machinery hosts the traffic-sign classifiers (output: class index) and the
// driving-simulator object detectors (output: bounding-box sets with an
// IoU-based voter).
package core

import "fmt"

// Version is one diverse implementation of the inference task — the unit the
// architecture replicates. Compromise switches the version to its degraded
// behaviour (e.g. fault-injected weights); Restore reloads the pristine
// implementation, which is what rejuvenation does.
type Version[I, O any] interface {
	// Name identifies the version (e.g. "alexnet-small").
	Name() string
	// Infer runs one inference.
	Infer(in I) (O, error)
	// Compromise degrades the version, as an attack or fault would.
	Compromise() error
	// Restore returns the version to its pristine behaviour.
	Restore() error
}

// FuncVersion adapts plain functions to the Version interface; used by tests
// and by versions whose compromise behaviour is modelled rather than
// injected.
type FuncVersion[I, O any] struct {
	VersionName  string
	InferFn      func(in I) (O, error)
	CompromiseFn func() error
	RestoreFn    func() error
}

var _ Version[int, int] = (*FuncVersion[int, int])(nil)

// Name implements Version.
func (v *FuncVersion[I, O]) Name() string { return v.VersionName }

// Infer implements Version.
func (v *FuncVersion[I, O]) Infer(in I) (O, error) {
	if v.InferFn == nil {
		var zero O
		return zero, fmt.Errorf("core: version %s has no inference function", v.VersionName)
	}
	return v.InferFn(in)
}

// Compromise implements Version.
func (v *FuncVersion[I, O]) Compromise() error {
	if v.CompromiseFn == nil {
		return nil
	}
	return v.CompromiseFn()
}

// Restore implements Version.
func (v *FuncVersion[I, O]) Restore() error {
	if v.RestoreFn == nil {
		return nil
	}
	return v.RestoreFn()
}

// Proposal is one module's contribution to a vote.
type Proposal[O any] struct {
	// Module is the proposing module's name.
	Module string
	// Value is the proposed output.
	Value O
}
