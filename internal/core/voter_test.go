package core

import "testing"

func props(values ...int) []Proposal[int] {
	out := make([]Proposal[int], len(values))
	for i, v := range values {
		out[i] = Proposal[int]{Module: string(rune('a' + i)), Value: v}
	}
	return out
}

func TestMajorityVoterRules(t *testing.T) {
	v := NewEqualityVoter[int]()
	cases := []struct {
		name     string
		inputs   []Proposal[int]
		want     int
		skipped  bool
		agreeing int
	}{
		{"R.1 unanimous", props(5, 5, 5), 5, false, 3},
		{"R.1 two-of-three", props(5, 5, 9), 5, false, 2},
		{"R.1 two-of-three wrong majority", props(9, 9, 5), 9, false, 2},
		{"R.1 full divergence skips", props(1, 2, 3), 0, true, 0},
		{"R.2 agreement", props(7, 7), 7, false, 2},
		{"R.2 divergence safely skips", props(7, 8), 0, true, 0},
		{"R.3 single accepted", props(4), 4, false, 1},
		{"no proposals skips", nil, 0, true, 0},
	}
	for _, c := range cases {
		d := v.Vote(c.inputs)
		if d.Skipped != c.skipped {
			t.Errorf("%s: skipped=%v, want %v (%s)", c.name, d.Skipped, c.skipped, d.Reason)
			continue
		}
		if !c.skipped {
			if d.Value != c.want {
				t.Errorf("%s: value %d, want %d", c.name, d.Value, c.want)
			}
			if d.Agreeing != c.agreeing {
				t.Errorf("%s: agreeing %d, want %d", c.name, d.Agreeing, c.agreeing)
			}
		}
	}
}

func TestMajorityVoterFiveVersions(t *testing.T) {
	v := NewEqualityVoter[int]()
	// 3-of-5 majority.
	if d := v.Vote(props(1, 2, 3, 3, 3)); d.Skipped || d.Value != 3 {
		t.Fatalf("want majority 3, got %+v", d)
	}
	// 2-2-1 has no 3-of-5 majority.
	if d := v.Vote(props(1, 1, 2, 2, 3)); !d.Skipped {
		t.Fatalf("want skip for 2-2-1 split, got %+v", d)
	}
}

func TestUnanimousVoter(t *testing.T) {
	v := NewUnanimousVoter[int]()
	if d := v.Vote(props(2, 2, 2)); d.Skipped || d.Value != 2 {
		t.Fatalf("unanimous agreement rejected: %+v", d)
	}
	if d := v.Vote(props(2, 2, 3)); !d.Skipped {
		t.Fatalf("2-of-3 should not satisfy unanimity: %+v", d)
	}
	if d := v.Vote(props(4)); d.Skipped || d.Value != 4 {
		t.Fatalf("single proposal should pass: %+v", d)
	}
	if d := v.Vote(nil); !d.Skipped {
		t.Fatal("no proposals should skip")
	}
}

func TestPluralityVoterNeverSkipsWithProposals(t *testing.T) {
	v := NewPluralityVoter[int]()
	if d := v.Vote(props(1, 2, 3)); d.Skipped {
		t.Fatalf("plurality should pick something: %+v", d)
	}
	if d := v.Vote(props(1, 2, 2)); d.Skipped || d.Value != 2 {
		t.Fatalf("plurality should pick 2: %+v", d)
	}
	if d := v.Vote(nil); !d.Skipped {
		t.Fatal("no proposals should skip")
	}
}

func TestWeightedVoter(t *testing.T) {
	weights := map[string]float64{"a": 5, "b": 1, "c": 1}
	v := &WeightedVoter[int]{
		Eq:       func(x, y int) bool { return x == y },
		WeightOf: func(m string) float64 { return weights[m] },
	}
	// a=9 outweighs b=c=5 (5 > 7/2).
	if d := v.Vote(props(9, 5, 5)); d.Skipped || d.Value != 9 {
		t.Fatalf("weighted vote should favour the heavy module: %+v", d)
	}
	// Equal weights reduce to majority.
	v2 := &WeightedVoter[int]{Eq: func(x, y int) bool { return x == y }}
	if d := v2.Vote(props(9, 5, 5)); d.Skipped || d.Value != 5 {
		t.Fatalf("equal-weight vote should pick the majority: %+v", d)
	}
	// No majority weight -> skip.
	weights = map[string]float64{"a": 1, "b": 1, "c": 1}
	if d := v.Vote(props(1, 2, 3)); !d.Skipped {
		t.Fatalf("divergent equal weights should skip: %+v", d)
	}
	if d := v.Vote(nil); !d.Skipped {
		t.Fatal("no proposals should skip")
	}
}

func TestMajorityVoterApproximateEquality(t *testing.T) {
	// "equal/similar inputs" (§IV): approximate agreement within 0.5.
	v := &MajorityVoter[float64]{Eq: func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d <= 0.5
	}}
	d := v.Vote([]Proposal[float64]{
		{Module: "a", Value: 1.0},
		{Module: "b", Value: 1.3},
		{Module: "c", Value: 9.0},
	})
	if d.Skipped || d.Agreeing != 2 {
		t.Fatalf("approximate agreement failed: %+v", d)
	}
}

func fprops(values ...float64) []Proposal[float64] {
	out := make([]Proposal[float64], len(values))
	for i, v := range values {
		out[i] = Proposal[float64]{Module: string(rune('a' + i)), Value: v}
	}
	return out
}

func TestMedianVoterApproximateAgreement(t *testing.T) {
	v := &MedianVoter{Epsilon: 0.5}
	// Three close steering angles: median wins.
	d := v.Vote(fprops(0.10, 0.12, 0.15))
	if d.Skipped || d.Value != 0.12 || d.Agreeing != 3 {
		t.Fatalf("close proposals: %+v", d)
	}
	// A Byzantine outlier cannot move the output outside the correct range.
	d = v.Vote(fprops(0.10, 0.12, 99))
	if d.Skipped || d.Value != 0.12 {
		t.Fatalf("outlier shifted the output: %+v", d)
	}
	// Full divergence skips.
	d = v.Vote(fprops(-5, 0, 5))
	if !d.Skipped {
		t.Fatalf("divergent proposals should skip: %+v", d)
	}
	// R.2 for two proposals: both within epsilon of the midpoint.
	d = v.Vote(fprops(0.1, 0.4))
	if d.Skipped || d.Value != 0.25 {
		t.Fatalf("two close proposals: %+v", d)
	}
	d = v.Vote(fprops(0.1, 3.0))
	if !d.Skipped {
		t.Fatalf("two divergent proposals should skip: %+v", d)
	}
	// R.3 and empty input.
	if d := v.Vote(fprops(0.7)); d.Skipped || d.Value != 0.7 {
		t.Fatalf("single proposal: %+v", d)
	}
	if d := v.Vote(nil); !d.Skipped {
		t.Fatal("no proposals should skip")
	}
}

func TestMedianVoterEvenCount(t *testing.T) {
	v := &MedianVoter{Epsilon: 2}
	d := v.Vote(fprops(1, 2, 3, 4))
	if d.Skipped || d.Value != 2.5 {
		t.Fatalf("even-count median: %+v", d)
	}
}
