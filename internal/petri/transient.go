package petri

import (
	"errors"
	"fmt"
	"sort"

	"mvml/internal/obs"
	"mvml/internal/parallel"
	"mvml/internal/stats"
	"mvml/internal/xrand"
)

// TransientConfig controls a transient (mission-time) analysis.
type TransientConfig struct {
	// Times are the observation instants (need not be sorted).
	Times []float64
	// Replications is the number of independent runs (default 1000).
	Replications int
	// Level is the CI confidence level (default 0.95).
	Level float64
	// MaxEvents bounds each replication (default 10e6).
	MaxEvents int
	// Workers bounds concurrent replications (<= 0 = GOMAXPROCS). Each
	// replication's stream is Split from the caller's rng, so results are
	// identical for every worker count.
	Workers int
	// Metrics, when non-nil, counts completed replications under
	// mvml_parallel_replications_total{experiment="transient/<net>"}.
	Metrics *obs.Registry
}

func (c *TransientConfig) fillDefaults() {
	if c.Replications == 0 {
		c.Replications = 1000
	}
	if c.Level == 0 {
		c.Level = 0.95
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 10_000_000
	}
}

// TransientPoint is the estimated expected reward at one instant.
type TransientPoint struct {
	Time   float64
	Reward stats.Interval
}

// TransientRewards estimates E[reward(X(t))] at the requested instants by
// independent replications from the initial marking — the mission-time
// complement to the steady-state Simulate. Deterministic transitions are
// fully supported (each replication uses the same event semantics as
// Simulate).
func TransientRewards(net *Net, cfg TransientConfig, reward func(Marking) float64, rng *xrand.Rand) ([]TransientPoint, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if reward == nil {
		return nil, errors.New("petri: nil reward function")
	}
	if rng == nil {
		return nil, errors.New("petri: nil rng")
	}
	if len(cfg.Times) == 0 {
		return nil, errors.New("petri: no observation times")
	}
	if cfg.Replications < 2 {
		return nil, fmt.Errorf("petri: need at least 2 replications, got %d", cfg.Replications)
	}
	times := append([]float64(nil), cfg.Times...)
	sort.Float64s(times)
	if times[0] < 0 {
		return nil, fmt.Errorf("petri: negative observation time %v", times[0])
	}

	// Fan the replications out: each one's generator is Split off the
	// caller's rng exactly as the sequential loop did, and the per-rep
	// reward vectors come back in replication order, so the estimates are
	// identical for any worker count.
	runs, err := parallel.Run(rng, "rep", cfg.Replications, parallel.Options{
		Workers:  cfg.Workers,
		Progress: parallel.RegistryProgress(cfg.Metrics, "transient/"+net.Name()),
	}, func(rep int, repRNG *xrand.Rand) ([]float64, error) {
		return transientRun(net, times, cfg.MaxEvents, reward, repRNG)
	})
	if err != nil {
		return nil, err
	}
	samples := make([][]float64, len(times))
	for i := range samples {
		samples[i] = make([]float64, 0, cfg.Replications)
	}
	for _, vals := range runs {
		for i, v := range vals {
			samples[i] = append(samples[i], v)
		}
	}
	out := make([]TransientPoint, 0, len(times))
	for i, t := range times {
		ci, err := stats.MeanCI(samples[i], cfg.Level)
		if err != nil {
			return nil, err
		}
		out = append(out, TransientPoint{Time: t, Reward: ci})
	}
	return out, nil
}

// transientRun simulates one replication and samples the reward at each
// observation time.
func transientRun(net *Net, times []float64, maxEvents int, reward func(Marking) float64, rng *xrand.Rand) ([]float64, error) {
	m := net.InitialMarking()
	detRemaining := make(map[*Transition]float64)
	vals := make([]float64, 0, len(times))
	next := 0 // next observation index
	now := 0.0
	events := 0

	// fireImmediates resolves the entire vanishing chain at the current
	// instant.
	fireImmediates := func() error {
		for chain := 0; ; chain++ {
			enabled := net.EnabledImmediate(m)
			if len(enabled) == 0 {
				return nil
			}
			if chain >= maxImmediateChain {
				return fmt.Errorf("petri: immediate-transition livelock in marking %s", m.Key())
			}
			weights := make([]float64, len(enabled))
			for i, t := range enabled {
				weights[i] = t.Weight(m)
			}
			tr := enabled[rng.Categorical(weights)]
			nm, err := net.Fire(m, tr)
			if err != nil {
				return err
			}
			m = nm
			for dt := range detRemaining {
				if !dt.EnabledIn(m) {
					delete(detRemaining, dt)
				}
			}
		}
	}
	if err := fireImmediates(); err != nil {
		return nil, err
	}

	observeThrough := func(until float64) {
		for next < len(times) && times[next] <= until {
			vals = append(vals, reward(m))
			next++
		}
	}

	end := times[len(times)-1]
	for next < len(times) {
		if events > maxEvents {
			return nil, fmt.Errorf("petri: transient run exceeded %d events", maxEvents)
		}
		timed := net.EnabledTimed(m)
		if len(timed) == 0 {
			observeThrough(end)
			break
		}
		var winner *Transition
		minDelay := 0.0
		for _, t := range timed {
			var d float64
			switch t.Kind {
			case Exponential:
				d = rng.Exp(t.Delay(m))
			case Deterministic:
				rem, ok := detRemaining[t]
				if !ok {
					rem = t.Delay(m)
					detRemaining[t] = rem
				}
				d = rem
			}
			if winner == nil || d < minDelay {
				winner, minDelay = t, d
			}
		}
		// Observation instants strictly before the next firing see the
		// current marking.
		observeThrough(now + minDelay)
		if next >= len(times) {
			break
		}
		now += minDelay
		for t, rem := range detRemaining {
			if t == winner {
				delete(detRemaining, t)
				continue
			}
			detRemaining[t] = rem - minDelay
		}
		nm, err := net.Fire(m, winner)
		if err != nil {
			return nil, err
		}
		m = nm
		events++
		for t := range detRemaining {
			if !t.EnabledIn(m) {
				delete(detRemaining, t)
			}
		}
		if err := fireImmediates(); err != nil {
			return nil, err
		}
	}
	return vals, nil
}
