// Package petri implements Deterministic and Stochastic Petri Nets (DSPNs),
// the modelling substrate the paper evaluates with TimeNET. Nets are built
// programmatically from places, immediate / exponential / deterministic
// transitions, weighted arcs, inhibitor arcs, guard predicates and
// marking-dependent firing weights (Table I of the paper uses all of these).
//
// Two solvers are provided: a discrete-event Monte-Carlo simulator
// (sim.go) that handles the full DSPN class, and an exact continuous-time
// Markov-chain solver (ctmc.go) for nets without deterministic transitions,
// used to cross-validate the simulator. erlang.go approximates deterministic
// transitions by Erlang phase chains so that DSPNs can also be pushed
// through the exact solver.
//
// Timed transitions fire with single-server semantics: the firing rate does
// not scale with the token count of input places. This matches TimeNET's
// default and — as verified against the paper's Table V — is the semantics
// under which the paper's reliability numbers are reproduced exactly. Use
// SetDelayFunc for marking-dependent rates if infinite-server behaviour is
// wanted.
package petri

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates transition timing semantics.
type Kind int

// Transition kinds.
const (
	// Immediate transitions fire in zero time, with conflicts resolved by
	// priority first and probabilistic weights second.
	Immediate Kind = iota + 1
	// Exponential transitions fire after an exponentially distributed
	// delay (memoryless).
	Exponential
	// Deterministic transitions fire after a fixed delay, with enabling
	// memory: the countdown pauses state only while continuously enabled
	// and resets when the transition is disabled or fires.
	Deterministic
)

func (k Kind) String() string {
	switch k {
	case Immediate:
		return "immediate"
	case Exponential:
		return "exponential"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Place holds tokens.
type Place struct {
	Name    string
	Initial int

	index int
}

// Index returns the place's position in markings.
func (p *Place) Index() int { return p.index }

// Marking is the token count per place, indexed by Place.Index.
type Marking []int

// Count returns the token count of a place.
func (m Marking) Count(p *Place) int { return m[p.index] }

// Key returns a compact string key identifying the marking.
func (m Marking) Key() string {
	var sb strings.Builder
	for i, v := range m {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

// Clone returns a copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

type arc struct {
	place  *Place
	weight int
}

// Transition moves tokens between places.
type Transition struct {
	Name string
	Kind Kind

	// delay returns the mean delay (Exponential) or the fixed delay
	// (Deterministic) in the given marking. Unused for Immediate.
	delay func(Marking) float64
	// weight returns the conflict-resolution weight for Immediate
	// transitions (defaults to 1).
	weight func(Marking) float64
	// guard must return true for the transition to be enabled
	// (defaults to always true).
	guard    func(Marking) bool
	priority int

	inputs     []arc
	outputs    []arc
	inhibitors []arc

	index int
}

// SetGuard attaches an enabling predicate (guard function over the marking).
func (t *Transition) SetGuard(g func(Marking) bool) *Transition {
	t.guard = g
	return t
}

// SetWeight attaches a marking-dependent firing weight used to resolve
// conflicts between simultaneously enabled immediate transitions — the
// mechanism behind the paper's w1/w2 healthy-vs-compromised selection.
func (t *Transition) SetWeight(w func(Marking) float64) *Transition {
	t.weight = w
	return t
}

// SetPriority sets the immediate-transition priority; higher fires first.
func (t *Transition) SetPriority(p int) *Transition {
	t.priority = p
	return t
}

// SetDelayFunc replaces the constant delay with a marking-dependent one.
// For Exponential transitions the returned value is the mean delay, so
// infinite-server semantics is expressed as baseMean/float64(tokens).
func (t *Transition) SetDelayFunc(f func(Marking) float64) *Transition {
	t.delay = f
	return t
}

// Weight evaluates the transition's conflict weight in a marking.
func (t *Transition) Weight(m Marking) float64 {
	if t.weight == nil {
		return 1
	}
	return t.weight(m)
}

// Delay evaluates the transition's (mean) delay in a marking.
func (t *Transition) Delay(m Marking) float64 {
	return t.delay(m)
}

// Net is a Petri net under construction or in use. It is immutable once
// handed to a solver; build it fully first.
type Net struct {
	name        string
	places      []*Place
	transitions []*Transition
}

// NewNet returns an empty net.
func NewNet(name string) *Net {
	return &Net{name: name}
}

// Name returns the net's name.
func (n *Net) Name() string { return n.name }

// Places returns the net's places in index order.
func (n *Net) Places() []*Place { return n.places }

// Transitions returns the net's transitions in creation order.
func (n *Net) Transitions() []*Transition { return n.transitions }

// AddPlace adds a place holding the given initial token count.
func (n *Net) AddPlace(name string, initial int) *Place {
	p := &Place{Name: name, Initial: initial, index: len(n.places)}
	n.places = append(n.places, p)
	return p
}

func (n *Net) addTransition(name string, kind Kind, delay float64) *Transition {
	t := &Transition{
		Name:  name,
		Kind:  kind,
		delay: func(Marking) float64 { return delay },
		index: len(n.transitions),
	}
	n.transitions = append(n.transitions, t)
	return t
}

// AddImmediate adds an immediate transition.
func (n *Net) AddImmediate(name string) *Transition {
	return n.addTransition(name, Immediate, 0)
}

// AddExponential adds an exponential transition with the given mean delay.
func (n *Net) AddExponential(name string, meanDelay float64) *Transition {
	return n.addTransition(name, Exponential, meanDelay)
}

// AddDeterministic adds a deterministic transition with the given delay.
func (n *Net) AddDeterministic(name string, delay float64) *Transition {
	return n.addTransition(name, Deterministic, delay)
}

// AddInput adds an input arc: firing t consumes weight tokens from p.
func (n *Net) AddInput(p *Place, t *Transition, weight int) {
	t.inputs = append(t.inputs, arc{place: p, weight: weight})
}

// AddOutput adds an output arc: firing t produces weight tokens in p.
func (n *Net) AddOutput(t *Transition, p *Place, weight int) {
	t.outputs = append(t.outputs, arc{place: p, weight: weight})
}

// AddInhibitor adds an inhibitor arc: t is disabled while p holds at least
// weight tokens.
func (n *Net) AddInhibitor(p *Place, t *Transition, weight int) {
	t.inhibitors = append(t.inhibitors, arc{place: p, weight: weight})
}

// InitialMarking returns the marking defined by the places' initial tokens.
func (n *Net) InitialMarking() Marking {
	m := make(Marking, len(n.places))
	for _, p := range n.places {
		m[p.index] = p.Initial
	}
	return m
}

// Validate checks structural well-formedness.
func (n *Net) Validate() error {
	if len(n.places) == 0 {
		return errors.New("petri: net has no places")
	}
	if len(n.transitions) == 0 {
		return errors.New("petri: net has no transitions")
	}
	names := make(map[string]bool, len(n.places))
	for _, p := range n.places {
		if p.Name == "" {
			return errors.New("petri: unnamed place")
		}
		if names[p.Name] {
			return fmt.Errorf("petri: duplicate place name %q", p.Name)
		}
		names[p.Name] = true
		if p.Initial < 0 {
			return fmt.Errorf("petri: place %q has negative initial marking", p.Name)
		}
	}
	tnames := make(map[string]bool, len(n.transitions))
	for _, t := range n.transitions {
		if t.Name == "" {
			return errors.New("petri: unnamed transition")
		}
		if tnames[t.Name] {
			return fmt.Errorf("petri: duplicate transition name %q", t.Name)
		}
		tnames[t.Name] = true
		for _, a := range append(append(append([]arc(nil), t.inputs...), t.outputs...), t.inhibitors...) {
			if a.weight <= 0 {
				return fmt.Errorf("petri: transition %q has non-positive arc weight", t.Name)
			}
			if a.place.index >= len(n.places) || n.places[a.place.index] != a.place {
				return fmt.Errorf("petri: transition %q references a place not in this net", t.Name)
			}
		}
		if t.Kind != Immediate {
			m := n.InitialMarking()
			if d := t.Delay(m); d <= 0 {
				return fmt.Errorf("petri: transition %q has non-positive delay %v in the initial marking", t.Name, d)
			}
		}
	}
	return nil
}

// EnabledIn reports whether t is enabled in marking m: guard satisfied,
// every input place sufficiently marked, every inhibitor place below its
// threshold.
func (t *Transition) EnabledIn(m Marking) bool {
	if t.guard != nil && !t.guard(m) {
		return false
	}
	for _, a := range t.inputs {
		if m[a.place.index] < a.weight {
			return false
		}
	}
	for _, a := range t.inhibitors {
		if m[a.place.index] >= a.weight {
			return false
		}
	}
	return true
}

// Fire returns the marking after firing t in m. It returns an error if t is
// not enabled.
func (n *Net) Fire(m Marking, t *Transition) (Marking, error) {
	if !t.EnabledIn(m) {
		return nil, fmt.Errorf("petri: transition %q not enabled in marking %s", t.Name, m.Key())
	}
	next := m.Clone()
	for _, a := range t.inputs {
		next[a.place.index] -= a.weight
	}
	for _, a := range t.outputs {
		next[a.place.index] += a.weight
	}
	return next, nil
}

// enabledOfKind collects enabled transitions, optionally filtered by kind
// (0 means all kinds).
func (n *Net) enabledOfKind(m Marking, kind Kind) []*Transition {
	var out []*Transition
	for _, t := range n.transitions {
		if kind != 0 && t.Kind != kind {
			continue
		}
		if t.EnabledIn(m) {
			out = append(out, t)
		}
	}
	return out
}

// EnabledImmediate returns the enabled immediate transitions of maximal
// priority; firing probability among them is proportional to their weights.
func (n *Net) EnabledImmediate(m Marking) []*Transition {
	candidates := n.enabledOfKind(m, Immediate)
	if len(candidates) == 0 {
		return nil
	}
	best := candidates[0].priority
	for _, t := range candidates[1:] {
		if t.priority > best {
			best = t.priority
		}
	}
	out := candidates[:0]
	for _, t := range candidates {
		if t.priority == best {
			out = append(out, t)
		}
	}
	return out
}

// EnabledTimed returns the enabled exponential and deterministic transitions.
func (n *Net) EnabledTimed(m Marking) []*Transition {
	var out []*Transition
	for _, t := range n.transitions {
		if t.Kind == Immediate {
			continue
		}
		if t.EnabledIn(m) {
			out = append(out, t)
		}
	}
	return out
}

// HasDeterministic reports whether the net contains deterministic
// transitions (i.e. is a true DSPN rather than a GSPN).
func (n *Net) HasDeterministic() bool {
	for _, t := range n.transitions {
		if t.Kind == Deterministic {
			return true
		}
	}
	return false
}
