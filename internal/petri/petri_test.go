package petri

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

// buildCycle returns a 3-state cycle net P1 -> P2 -> P3 -> P1 with
// exponential transitions of the given mean delays.
func buildCycle(d1, d2, d3 float64) (*Net, [3]*Place) {
	n := NewNet("cycle")
	p1 := n.AddPlace("P1", 1)
	p2 := n.AddPlace("P2", 0)
	p3 := n.AddPlace("P3", 0)
	t1 := n.AddExponential("T1", d1)
	t2 := n.AddExponential("T2", d2)
	t3 := n.AddExponential("T3", d3)
	n.AddInput(p1, t1, 1)
	n.AddOutput(t1, p2, 1)
	n.AddInput(p2, t2, 1)
	n.AddOutput(t2, p3, 1)
	n.AddInput(p3, t3, 1)
	n.AddOutput(t3, p1, 1)
	return n, [3]*Place{p1, p2, p3}
}

func TestValidateCatchesErrors(t *testing.T) {
	empty := NewNet("empty")
	if err := empty.Validate(); err == nil {
		t.Fatal("expected error for empty net")
	}

	n := NewNet("dup")
	n.AddPlace("P", 1)
	n.AddPlace("P", 0)
	n.AddExponential("T", 1)
	if err := n.Validate(); err == nil {
		t.Fatal("expected error for duplicate place name")
	}

	n2 := NewNet("badweight")
	p := n2.AddPlace("P", 1)
	tr := n2.AddExponential("T", 1)
	n2.AddInput(p, tr, 0)
	if err := n2.Validate(); err == nil {
		t.Fatal("expected error for zero arc weight")
	}

	n3 := NewNet("baddelay")
	p3 := n3.AddPlace("P", 1)
	tr3 := n3.AddExponential("T", -1)
	n3.AddInput(p3, tr3, 1)
	if err := n3.Validate(); err == nil {
		t.Fatal("expected error for negative delay")
	}
}

func TestFireMovesTokens(t *testing.T) {
	n, places := buildCycle(1, 1, 1)
	m := n.InitialMarking()
	if m.Count(places[0]) != 1 || m.Count(places[1]) != 0 {
		t.Fatalf("unexpected initial marking %v", m)
	}
	next, err := n.Fire(m, n.Transitions()[0])
	if err != nil {
		t.Fatal(err)
	}
	if next.Count(places[0]) != 0 || next.Count(places[1]) != 1 {
		t.Fatalf("marking after fire: %v", next)
	}
	// Original marking untouched.
	if m.Count(places[0]) != 1 {
		t.Fatal("Fire mutated the source marking")
	}
	// Firing a disabled transition errors.
	if _, err := n.Fire(next, n.Transitions()[0]); err == nil {
		t.Fatal("expected error firing disabled transition")
	}
}

func TestMarkingKeyDistinct(t *testing.T) {
	a := Marking{1, 2, 3}
	b := Marking{12, 3}
	if a.Key() == b.Key() {
		t.Fatal("distinct markings share a key")
	}
	if a.Key() != a.Clone().Key() {
		t.Fatal("clone changed the key")
	}
}

func TestInhibitorArcDisables(t *testing.T) {
	n := NewNet("inhib")
	p := n.AddPlace("P", 1)
	blocker := n.AddPlace("B", 1)
	tr := n.AddExponential("T", 1)
	n.AddInput(p, tr, 1)
	n.AddInhibitor(blocker, tr, 1)
	if tr.EnabledIn(n.InitialMarking()) {
		t.Fatal("transition should be inhibited")
	}
	m := n.InitialMarking()
	m[blocker.Index()] = 0
	if !tr.EnabledIn(m) {
		t.Fatal("transition should be enabled once the inhibitor clears")
	}
}

func TestGuardDisables(t *testing.T) {
	n := NewNet("guard")
	p := n.AddPlace("P", 1)
	flag := n.AddPlace("F", 0)
	tr := n.AddExponential("T", 1)
	n.AddInput(p, tr, 1)
	tr.SetGuard(func(m Marking) bool { return m.Count(flag) > 0 })
	if tr.EnabledIn(n.InitialMarking()) {
		t.Fatal("guard should disable the transition")
	}
	m := n.InitialMarking()
	m[flag.Index()] = 1
	if !tr.EnabledIn(m) {
		t.Fatal("transition should be enabled when the guard holds")
	}
}

func TestCTMCCycleMatchesAnalytic(t *testing.T) {
	// Steady-state occupancy of a cycle is proportional to the mean delay
	// of the outgoing transition.
	n, places := buildCycle(2, 3, 5)
	res, err := SolveCTMC(n)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.3, 0.5}
	for i, p := range places {
		got := res.Probability(func(m Marking) bool { return m.Count(p) == 1 })
		if math.Abs(got-want[i]) > 1e-9 {
			t.Errorf("state %d probability %v, want %v", i, got, want[i])
		}
	}
}

func TestCTMCExpectedReward(t *testing.T) {
	n, places := buildCycle(1, 1, 2)
	res, err := SolveCTMC(n)
	if err != nil {
		t.Fatal(err)
	}
	// Reward 1 in state 3 (prob 0.5), 0 elsewhere.
	got := res.ExpectedReward(func(m Marking) float64 {
		if m.Count(places[2]) == 1 {
			return 1
		}
		return 0
	})
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("expected reward %v, want 0.5", got)
	}
}

func TestCTMCRejectsDeterministic(t *testing.T) {
	n := NewNet("det")
	p := n.AddPlace("P", 1)
	q := n.AddPlace("Q", 0)
	tr := n.AddDeterministic("T", 1)
	n.AddInput(p, tr, 1)
	n.AddOutput(tr, q, 1)
	back := n.AddExponential("B", 1)
	n.AddInput(q, back, 1)
	n.AddOutput(back, p, 1)
	if _, err := SolveCTMC(n); err == nil {
		t.Fatal("expected rejection of deterministic transitions")
	}
}

func TestCTMCImmediateVanishingElimination(t *testing.T) {
	// P1 --exp--> Pv, where Pv is vanishing: two immediate transitions
	// with weights 1 and 3 route to A or B; A and B return to P1 with
	// different mean delays. Time in A vs B must reflect both the branch
	// probabilities (1/4, 3/4) and the sojourn times.
	n := NewNet("branch")
	p1 := n.AddPlace("P1", 1)
	pv := n.AddPlace("Pv", 0)
	pa := n.AddPlace("A", 0)
	pb := n.AddPlace("B", 0)

	leave := n.AddExponential("leave", 1)
	n.AddInput(p1, leave, 1)
	n.AddOutput(leave, pv, 1)

	toA := n.AddImmediate("toA")
	toA.SetWeight(func(Marking) float64 { return 1 })
	n.AddInput(pv, toA, 1)
	n.AddOutput(toA, pa, 1)

	toB := n.AddImmediate("toB")
	toB.SetWeight(func(Marking) float64 { return 3 })
	n.AddInput(pv, toB, 1)
	n.AddOutput(toB, pb, 1)

	backA := n.AddExponential("backA", 2)
	n.AddInput(pa, backA, 1)
	n.AddOutput(backA, p1, 1)
	backB := n.AddExponential("backB", 4)
	n.AddInput(pb, backB, 1)
	n.AddOutput(backB, p1, 1)

	res, err := SolveCTMC(n)
	if err != nil {
		t.Fatal(err)
	}
	// Mean cycle time = 1 + 0.25*2 + 0.75*4 = 4.5.
	wantP1 := 1.0 / 4.5
	wantA := 0.25 * 2 / 4.5
	wantB := 0.75 * 4 / 4.5
	gotP1 := res.Probability(func(m Marking) bool { return m.Count(p1) == 1 })
	gotA := res.Probability(func(m Marking) bool { return m.Count(pa) == 1 })
	gotB := res.Probability(func(m Marking) bool { return m.Count(pb) == 1 })
	if math.Abs(gotP1-wantP1) > 1e-9 || math.Abs(gotA-wantA) > 1e-9 || math.Abs(gotB-wantB) > 1e-9 {
		t.Fatalf("probabilities (%v, %v, %v), want (%v, %v, %v)", gotP1, gotA, gotB, wantP1, wantA, wantB)
	}
	// No vanishing marking may appear among the states.
	for _, m := range res.States {
		if m.Count(pv) != 0 {
			t.Fatal("vanishing marking survived elimination")
		}
	}
}

func TestCTMCPriorityBeatsWeight(t *testing.T) {
	// Two immediates from the same place; the higher-priority one always
	// wins regardless of weights.
	n := NewNet("prio")
	p1 := n.AddPlace("P1", 1)
	pv := n.AddPlace("Pv", 0)
	pa := n.AddPlace("A", 0)
	pb := n.AddPlace("B", 0)

	leave := n.AddExponential("leave", 1)
	n.AddInput(p1, leave, 1)
	n.AddOutput(leave, pv, 1)

	toA := n.AddImmediate("toA").SetPriority(5)
	n.AddInput(pv, toA, 1)
	n.AddOutput(toA, pa, 1)
	toB := n.AddImmediate("toB")
	toB.SetWeight(func(Marking) float64 { return 1000 })
	n.AddInput(pv, toB, 1)
	n.AddOutput(toB, pb, 1)

	backA := n.AddExponential("backA", 1)
	n.AddInput(pa, backA, 1)
	n.AddOutput(backA, p1, 1)
	backB := n.AddExponential("backB", 1)
	n.AddInput(pb, backB, 1)
	n.AddOutput(backB, p1, 1)

	res, err := SolveCTMC(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Probability(func(m Marking) bool { return m.Count(pb) == 1 }); got != 0 {
		t.Fatalf("low-priority branch has probability %v, want 0", got)
	}
}

func TestSimulateCycleMatchesCTMC(t *testing.T) {
	n, places := buildCycle(2, 3, 5)
	res, err := Simulate(n, SimConfig{Horizon: 50_000, Warmup: 500}, nil, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.3, 0.5}
	for i, p := range places {
		got := res.Probability(func(m Marking) bool { return m.Count(p) == 1 })
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("simulated occupancy %v, want %v", got, want[i])
		}
	}
}

func TestSimulateRewardCI(t *testing.T) {
	n, places := buildCycle(1, 1, 2)
	reward := func(m Marking) float64 {
		if m.Count(places[2]) == 1 {
			return 1
		}
		return 0
	}
	res, err := Simulate(n, SimConfig{Horizon: 20_000, Warmup: 100}, reward, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reward-0.5) > 0.02 {
		t.Fatalf("reward %v, want ≈0.5", res.Reward)
	}
	if !res.RewardCI.Contains(res.Reward) {
		t.Fatalf("CI %v does not contain the point estimate %v", res.RewardCI, res.Reward)
	}
	if res.RewardCI.Hi-res.RewardCI.Lo > 0.1 {
		t.Fatalf("CI %v too wide", res.RewardCI)
	}
}

func TestSimulateDeterministicDutyCycle(t *testing.T) {
	// P1 --det(8)--> P2 --exp(2)--> P1: long-run fraction of time in P1 is
	// 8/(8+2) = 0.8.
	n := NewNet("duty")
	p1 := n.AddPlace("P1", 1)
	p2 := n.AddPlace("P2", 0)
	on := n.AddDeterministic("on", 8)
	n.AddInput(p1, on, 1)
	n.AddOutput(on, p2, 1)
	off := n.AddExponential("off", 2)
	n.AddInput(p2, off, 1)
	n.AddOutput(off, p1, 1)

	res, err := Simulate(n, SimConfig{Horizon: 40_000, Warmup: 100}, nil, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Probability(func(m Marking) bool { return m.Count(p1) == 1 })
	if math.Abs(got-0.8) > 0.01 {
		t.Fatalf("duty cycle %v, want 0.8", got)
	}
}

func TestErlangApproximationMatchesDeterministic(t *testing.T) {
	n := NewNet("duty")
	p1 := n.AddPlace("P1", 1)
	p2 := n.AddPlace("P2", 0)
	on := n.AddDeterministic("on", 8)
	n.AddInput(p1, on, 1)
	n.AddOutput(on, p2, 1)
	off := n.AddExponential("off", 2)
	n.AddInput(p2, off, 1)
	n.AddOutput(off, p1, 1)

	approx, err := ErlangApproximation(n, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveCTMC(approx)
	if err != nil {
		t.Fatal(err)
	}
	// The ON countdown is spread across P1 and the phase places, so check
	// the OFF state: occupancy of P2 = E[off]/(E[on]+E[off]) = 0.2. For
	// this cyclic net the mean-value argument is exact for any stage
	// count. Original place indices survive the transformation.
	gotOff := res.Probability(func(m Marking) bool { return m[p2.Index()] == 1 })
	if math.Abs(gotOff-0.2) > 1e-6 {
		t.Fatalf("Erlang-approximated OFF occupancy %v, want 0.2", gotOff)
	}
	// And the ON side (everything not in P2) complements it.
	gotOn := res.Probability(func(m Marking) bool { return m[p2.Index()] == 0 })
	if math.Abs(gotOn-0.8) > 1e-6 {
		t.Fatalf("Erlang-approximated ON occupancy %v, want 0.8", gotOn)
	}
	_ = p1
}

func TestErlangApproximationStageCount(t *testing.T) {
	n := NewNet("d")
	p := n.AddPlace("P", 1)
	q := n.AddPlace("Q", 0)
	tr := n.AddDeterministic("T", 4)
	n.AddInput(p, tr, 1)
	n.AddOutput(tr, q, 1)
	back := n.AddExponential("B", 1)
	n.AddInput(q, back, 1)
	n.AddOutput(back, p, 1)

	approx, err := ErlangApproximation(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 5 stages -> 5 exponential transitions replacing T, plus B.
	if got := len(approx.Transitions()); got != 6 {
		t.Fatalf("%d transitions after transformation, want 6", got)
	}
	// 4 intermediate phase places plus the 2 originals.
	if got := len(approx.Places()); got != 6 {
		t.Fatalf("%d places after transformation, want 6", got)
	}
	if _, err := ErlangApproximation(n, 0); err == nil {
		t.Fatal("expected error for zero stages")
	}
}

func TestSimulateAbsorbingMarking(t *testing.T) {
	n := NewNet("absorbing")
	p := n.AddPlace("P", 1)
	q := n.AddPlace("Q", 0)
	tr := n.AddExponential("T", 1)
	n.AddInput(p, tr, 1)
	n.AddOutput(tr, q, 1)

	res, err := Simulate(n, SimConfig{Horizon: 1000, Warmup: 0}, nil, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Probability(func(m Marking) bool { return m.Count(q) == 1 })
	if got < 0.99 {
		t.Fatalf("absorbing state occupancy %v, want ≈1", got)
	}
}

func TestSimulateImmediateLivelockDetected(t *testing.T) {
	n := NewNet("livelock")
	p := n.AddPlace("P", 1)
	q := n.AddPlace("Q", 0)
	ab := n.AddImmediate("ab")
	n.AddInput(p, ab, 1)
	n.AddOutput(ab, q, 1)
	ba := n.AddImmediate("ba")
	n.AddInput(q, ba, 1)
	n.AddOutput(ba, p, 1)

	if _, err := Simulate(n, SimConfig{Horizon: 10}, nil, xrand.New(1)); err == nil {
		t.Fatal("expected livelock detection")
	}
	if _, err := SolveCTMC(n); err == nil {
		t.Fatal("expected livelock detection in CTMC solver")
	}
}

func TestSimulateConfigValidation(t *testing.T) {
	n, _ := buildCycle(1, 1, 1)
	if _, err := Simulate(n, SimConfig{Horizon: -1}, nil, xrand.New(1)); err == nil {
		t.Fatal("expected error for negative horizon")
	}
	if _, err := Simulate(n, SimConfig{Horizon: 10}, nil, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestSimulateDeterministicEnablingMemory(t *testing.T) {
	// A deterministic transition with delay 10 races an exponential with
	// mean 1 that does NOT disable it (separate token). With enabling
	// memory, the deterministic transition still fires every 10 time
	// units despite the frequent exponential events. The cycle P1->P2->P1
	// with det(10) and exp(0.5) back gives occupancy ≈ 10/10.5.
	n := NewNet("memory")
	p1 := n.AddPlace("P1", 1)
	p2 := n.AddPlace("P2", 0)
	noise := n.AddPlace("N", 1)

	det := n.AddDeterministic("det", 10)
	n.AddInput(p1, det, 1)
	n.AddOutput(det, p2, 1)
	back := n.AddExponential("back", 0.5)
	n.AddInput(p2, back, 1)
	n.AddOutput(back, p1, 1)
	// Self-loop exponential generating many events while det counts down.
	tick := n.AddExponential("tick", 1)
	n.AddInput(noise, tick, 1)
	n.AddOutput(tick, noise, 1)

	res, err := Simulate(n, SimConfig{Horizon: 30_000, Warmup: 100}, nil, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Probability(func(m Marking) bool { return m.Count(p1) == 1 })
	want := 10.0 / 10.5
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("occupancy %v, want %v: deterministic clock was reset by unrelated events", got, want)
	}
}

func TestKindString(t *testing.T) {
	if Immediate.String() != "immediate" || Exponential.String() != "exponential" || Deterministic.String() != "deterministic" {
		t.Fatal("Kind.String broken")
	}
}

func BenchmarkSimulateCycle(b *testing.B) {
	n, _ := buildCycle(1, 2, 3)
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(n, SimConfig{Horizon: 1000, Warmup: 10}, nil, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveCTMCCycle(b *testing.B) {
	n, _ := buildCycle(1, 2, 3)
	for i := 0; i < b.N; i++ {
		if _, err := SolveCTMC(n); err != nil {
			b.Fatal(err)
		}
	}
}
