package petri

import (
	"math"
	"testing"
	"testing/quick"

	"mvml/internal/xrand"
)

// randomErgodicNet builds a random strongly connected exponential-only net:
// a token ring of 3-6 places with random mean delays plus random "shortcut"
// transitions, guaranteeing every marking stays reachable. It is used to
// cross-validate the two solvers on arbitrary structures.
func randomErgodicNet(seed uint64) (*Net, []*Place) {
	r := xrand.New(seed)
	n := 3 + r.Intn(4)
	net := NewNet("random")
	places := make([]*Place, n)
	for i := range places {
		initial := 0
		if i == 0 {
			initial = 1
		}
		places[i] = net.AddPlace(placeName(i), initial)
	}
	// Ring transitions keep the chain irreducible.
	for i := range places {
		t := net.AddExponential(transName(i), 0.5+4*r.Float64())
		net.AddInput(places[i], t, 1)
		net.AddOutput(t, places[(i+1)%n], 1)
	}
	// Random extra shortcuts.
	extra := r.Intn(3)
	for k := 0; k < extra; k++ {
		from := r.Intn(n)
		to := r.Intn(n)
		if from == to {
			continue
		}
		t := net.AddExponential(transName(100+k), 0.5+4*r.Float64())
		net.AddInput(places[from], t, 1)
		net.AddOutput(t, places[to], 1)
	}
	return net, places
}

func placeName(i int) string { return "P" + string(rune('A'+i)) }
func transName(i int) string {
	if i >= 100 {
		return "S" + string(rune('A'+i-100))
	}
	return "T" + string(rune('A'+i))
}

// TestPropertySimulationOccupancySumsToOne: for any random ergodic net, the
// simulator's occupancy fractions form a probability distribution.
func TestPropertySimulationOccupancySumsToOne(t *testing.T) {
	f := func(seed uint64) bool {
		net, _ := randomErgodicNet(seed)
		res, err := Simulate(net, SimConfig{Horizon: 2000, Warmup: 10}, nil, xrand.New(seed+1))
		if err != nil {
			return false
		}
		var total float64
		for _, frac := range res.Occupancy {
			if frac < 0 {
				return false
			}
			total += frac
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCTMCDistribution: the exact solver returns a probability
// distribution for any random ergodic net.
func TestPropertyCTMCDistribution(t *testing.T) {
	f := func(seed uint64) bool {
		net, _ := randomErgodicNet(seed)
		res, err := SolveCTMC(net)
		if err != nil {
			return false
		}
		var total float64
		for _, p := range res.Pi {
			if p < -1e-12 {
				return false
			}
			total += p
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySimulationMatchesCTMC: the two independent solvers agree on
// random ergodic nets.
func TestPropertySimulationMatchesCTMC(t *testing.T) {
	f := func(seed uint64) bool {
		net, places := randomErgodicNet(seed)
		exact, err := SolveCTMC(net)
		if err != nil {
			return false
		}
		sim, err := Simulate(net, SimConfig{Horizon: 30_000, Warmup: 100}, nil, xrand.New(seed+2))
		if err != nil {
			return false
		}
		for _, p := range places {
			want := exact.Probability(func(m Marking) bool { return m.Count(p) == 1 })
			got := sim.Probability(func(m Marking) bool { return m.Count(p) == 1 })
			if math.Abs(want-got) > 0.04 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTokenConservation: in a conservative net (every transition
// consumes and produces exactly one token), the total token count is
// invariant under any firing sequence.
func TestPropertyTokenConservation(t *testing.T) {
	f := func(seed uint64) bool {
		net, _ := randomErgodicNet(seed)
		m := net.InitialMarking()
		total := func(m Marking) int {
			sum := 0
			for _, v := range m {
				sum += v
			}
			return sum
		}
		want := total(m)
		r := xrand.New(seed + 3)
		for step := 0; step < 200; step++ {
			enabled := net.EnabledTimed(m)
			if len(enabled) == 0 {
				break
			}
			next, err := net.Fire(m, enabled[r.Intn(len(enabled))])
			if err != nil {
				return false
			}
			m = next
			if total(m) != want {
				return false
			}
			for _, v := range m {
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyErlangPreservesTangibleDistribution: replacing a deterministic
// transition with an Erlang chain must leave the original places' mean
// token counts close to the DSPN simulation for the on/off pattern.
func TestPropertyErlangConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		onDelay := 1 + 9*r.Float64()
		offMean := 0.5 + 4*r.Float64()

		net := NewNet("duty")
		p1 := net.AddPlace("P1", 1)
		p2 := net.AddPlace("P2", 0)
		on := net.AddDeterministic("on", onDelay)
		net.AddInput(p1, on, 1)
		net.AddOutput(on, p2, 1)
		off := net.AddExponential("off", offMean)
		net.AddInput(p2, off, 1)
		net.AddOutput(off, p1, 1)

		approx, err := ErlangApproximation(net, 25)
		if err != nil {
			return false
		}
		res, err := SolveCTMC(approx)
		if err != nil {
			return false
		}
		got := res.Probability(func(m Marking) bool { return m[p2.Index()] == 1 })
		want := offMean / (onDelay + offMean)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
