package petri

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

func TestTransientExponentialDecay(t *testing.T) {
	// P1 --exp(mean 2)--> P2 (absorbing). E[1{P1}(t)] = e^{-t/2}.
	n := NewNet("decay")
	p1 := n.AddPlace("P1", 1)
	p2 := n.AddPlace("P2", 0)
	tr := n.AddExponential("T", 2)
	n.AddInput(p1, tr, 1)
	n.AddOutput(tr, p2, 1)

	reward := func(m Marking) float64 {
		if m.Count(p1) == 1 {
			return 1
		}
		return 0
	}
	points, err := TransientRewards(n, TransientConfig{
		Times:        []float64{0.5, 1, 2, 4},
		Replications: 6000,
	}, reward, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		want := math.Exp(-pt.Time / 2)
		if math.Abs(pt.Reward.Mean-want) > 0.02 {
			t.Errorf("E[R(%v)] = %.4f, want %.4f", pt.Time, pt.Reward.Mean, want)
		}
		if !pt.Reward.Contains(pt.Reward.Mean) {
			t.Error("CI does not contain its own mean")
		}
	}
}

func TestTransientDeterministicIsExactBeforeFiring(t *testing.T) {
	// P1 --det(8)--> P2: the token provably stays in P1 until exactly t=8.
	n := NewNet("det")
	p1 := n.AddPlace("P1", 1)
	p2 := n.AddPlace("P2", 0)
	tr := n.AddDeterministic("T", 8)
	n.AddInput(p1, tr, 1)
	n.AddOutput(tr, p2, 1)
	back := n.AddExponential("B", 2)
	n.AddInput(p2, back, 1)
	n.AddOutput(back, p1, 1)

	reward := func(m Marking) float64 {
		if m.Count(p1) == 1 {
			return 1
		}
		return 0
	}
	points, err := TransientRewards(n, TransientConfig{
		Times:        []float64{4, 7.9, 8.5},
		Replications: 400,
	}, reward, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Reward.Mean != 1 || points[1].Reward.Mean != 1 {
		t.Fatalf("before the deterministic firing the reward must be exactly 1: %v, %v",
			points[0].Reward.Mean, points[1].Reward.Mean)
	}
	if points[2].Reward.Mean >= 1 {
		t.Fatalf("after t=8 some mass must have left P1: %v", points[2].Reward.Mean)
	}
}

func TestTransientTimesSortedInOutput(t *testing.T) {
	n, _ := buildCycle(1, 1, 1)
	points, err := TransientRewards(n, TransientConfig{
		Times:        []float64{5, 1, 3},
		Replications: 50,
	}, func(Marking) float64 { return 1 }, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Time != 1 || points[1].Time != 3 || points[2].Time != 5 {
		t.Fatalf("times not sorted: %v %v %v", points[0].Time, points[1].Time, points[2].Time)
	}
}

func TestTransientValidation(t *testing.T) {
	n, _ := buildCycle(1, 1, 1)
	rw := func(Marking) float64 { return 1 }
	if _, err := TransientRewards(n, TransientConfig{Times: nil}, rw, xrand.New(1)); err == nil {
		t.Fatal("expected error for no times")
	}
	if _, err := TransientRewards(n, TransientConfig{Times: []float64{-1}}, rw, xrand.New(1)); err == nil {
		t.Fatal("expected error for negative time")
	}
	if _, err := TransientRewards(n, TransientConfig{Times: []float64{1}}, nil, xrand.New(1)); err == nil {
		t.Fatal("expected error for nil reward")
	}
	if _, err := TransientRewards(n, TransientConfig{Times: []float64{1}}, rw, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := TransientRewards(n, TransientConfig{Times: []float64{1}, Replications: 1}, rw, xrand.New(1)); err == nil {
		t.Fatal("expected error for 1 replication")
	}
}

func TestTransientAbsorbingObservesTail(t *testing.T) {
	// After absorption every later observation still gets a sample.
	n := NewNet("absorb")
	p := n.AddPlace("P", 1)
	q := n.AddPlace("Q", 0)
	tr := n.AddExponential("T", 0.1)
	n.AddInput(p, tr, 1)
	n.AddOutput(tr, q, 1)
	points, err := TransientRewards(n, TransientConfig{
		Times:        []float64{1, 10, 100},
		Replications: 100,
	}, func(m Marking) float64 { return float64(m.Count(q)) }, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		if pt.Reward.Mean < 0.99 {
			t.Fatalf("absorbed mass missing at t=%v: %v", pt.Time, pt.Reward.Mean)
		}
	}
}
