package petri

import (
	"fmt"
)

// ErlangApproximation returns a copy of the net in which every
// deterministic transition is replaced by a k-stage Erlang phase chain of
// exponential transitions (each with mean delay/k). As k grows, the chain's
// firing-time distribution converges to the deterministic delay, so the
// transformed net — which SolveCTMC accepts — approximates the DSPN. This is
// the cross-validation path for the Monte-Carlo simulator.
//
// The original places keep their indices (new phase places are appended), so
// guards, weights and reward functions written against the original net keep
// working on markings of the transformed net. Guards and inhibitors of a
// deterministic transition are applied to the first stage only; the
// approximation is exact for the rejuvenation-clock pattern used in this
// repository, where the deterministic transition is never disabled while
// counting down.
func ErlangApproximation(net *Net, stages int) (*Net, error) {
	if stages < 1 {
		return nil, fmt.Errorf("petri: Erlang approximation needs at least 1 stage, got %d", stages)
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}

	out := NewNet(net.Name() + "-erlang")
	placeMap := make(map[*Place]*Place, len(net.places))
	for _, p := range net.places {
		placeMap[p] = out.AddPlace(p.Name, p.Initial)
	}

	copyArcs := func(src, dst *Transition) {
		for _, a := range src.inputs {
			out.AddInput(placeMap[a.place], dst, a.weight)
		}
		for _, a := range src.outputs {
			out.AddOutput(dst, placeMap[a.place], a.weight)
		}
		for _, a := range src.inhibitors {
			out.AddInhibitor(placeMap[a.place], dst, a.weight)
		}
		dst.guard = src.guard
		dst.weight = src.weight
		dst.priority = src.priority
	}

	for _, t := range net.transitions {
		switch t.Kind {
		case Immediate:
			nt := out.AddImmediate(t.Name)
			copyArcs(t, nt)
		case Exponential:
			nt := out.AddExponential(t.Name, 1)
			copyArcs(t, nt)
			nt.delay = t.delay
		case Deterministic:
			if stages == 1 {
				// Degenerate case: a single exponential stage.
				nt := out.AddExponential(t.Name, 1)
				copyArcs(t, nt)
				nt.delay = t.delay
				continue
			}
			// Build the phase chain: first stage consumes the original
			// inputs (and carries guard/inhibitors), intermediate stages
			// hop through fresh phase places, last stage produces the
			// original outputs.
			origDelay := t.delay
			stageDelay := func(m Marking) float64 {
				return origDelay(m) / float64(stages)
			}
			prevPlace := (*Place)(nil)
			for s := 0; s < stages; s++ {
				nt := out.AddExponential(fmt.Sprintf("%s#e%d", t.Name, s), 1)
				nt.SetDelayFunc(stageDelay)
				if s == 0 {
					for _, a := range t.inputs {
						out.AddInput(placeMap[a.place], nt, a.weight)
					}
					for _, a := range t.inhibitors {
						out.AddInhibitor(placeMap[a.place], nt, a.weight)
					}
					nt.guard = t.guard
				} else {
					out.AddInput(prevPlace, nt, 1)
				}
				if s == stages-1 {
					for _, a := range t.outputs {
						out.AddOutput(nt, placeMap[a.place], a.weight)
					}
				} else {
					phase := out.AddPlace(fmt.Sprintf("%s#p%d", t.Name, s), 0)
					out.AddOutput(nt, phase, 1)
					prevPlace = phase
				}
			}
		}
	}
	return out, nil
}
