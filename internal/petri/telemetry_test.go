package petri

import (
	"testing"

	"mvml/internal/obs"
	"mvml/internal/xrand"
)

// TestSimulateTelemetry checks that attaching a registry counts every
// firing without perturbing the simulation's random stream.
func TestSimulateTelemetry(t *testing.T) {
	cfg := SimConfig{Horizon: 2000, Warmup: 10}

	n1, _ := buildCycle(1, 2, 3)
	plain, err := Simulate(n1, cfg, nil, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tr := obs.NewTracer(8)
	cfg.Metrics = reg
	cfg.Tracer = tr
	n2, _ := buildCycle(1, 2, 3)
	inst, err := Simulate(n2, cfg, nil, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}

	// Determinism: the same seed fires the same event sequence.
	if plain.Events != inst.Events || plain.Observed != inst.Observed {
		t.Fatalf("instrumented run diverged: events %d vs %d, observed %v vs %v",
			plain.Events, inst.Events, plain.Observed, inst.Observed)
	}
	for key, frac := range plain.Occupancy {
		if inst.Occupancy[key] != frac {
			t.Fatalf("occupancy diverged at %s: %v vs %v", key, frac, inst.Occupancy[key])
		}
	}

	// Every firing was counted, split across the three transitions.
	var fired uint64
	for _, m := range reg.Snapshot() {
		if m.Name == MetricFirings {
			if m.Labels["net"] != "cycle" {
				t.Fatalf("firing counter labels %+v", m.Labels)
			}
			fired += uint64(*m.Value)
		}
	}
	if fired != uint64(inst.Events) {
		t.Fatalf("firing counters %d, events %d", fired, inst.Events)
	}

	// Simulated-time progress reached the end of the run.
	gauge := reg.Gauge(MetricSimTime, "net", "cycle").Value()
	if gauge <= 0 || gauge > cfg.Warmup+cfg.Horizon {
		t.Fatalf("sim-time gauge %v outside (0, %v]", gauge, cfg.Warmup+cfg.Horizon)
	}

	// One end-of-run trace event.
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Type != "petri_run_end" {
		t.Fatalf("trace %+v", evs)
	}
	if evs[0].Attrs["net"] != "cycle" || evs[0].Attrs["events"] != inst.Events {
		t.Fatalf("trace attrs %+v", evs[0].Attrs)
	}
}
