package petri

import (
	"errors"
	"fmt"

	"mvml/internal/obs"
	"mvml/internal/stats"
	"mvml/internal/xrand"
)

// SimConfig controls a Monte-Carlo simulation run.
type SimConfig struct {
	// Horizon is the simulated time to observe after warmup.
	Horizon float64
	// Warmup is discarded simulated time before measurement starts.
	Warmup float64
	// Batches is the number of batch-means windows for the reward CI
	// (default 20).
	Batches int
	// Level is the CI confidence level (default 0.95).
	Level float64
	// MaxEvents bounds the number of transition firings (default 50e6).
	MaxEvents int
	// Metrics, when non-nil, receives per-transition firing counters and a
	// simulated-time progress gauge (labelled by net name). Purely
	// observational: no rng draws are consumed, so instrumented runs fire
	// the same transition sequence.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one end-of-run event summarising the
	// simulation.
	Tracer *obs.Tracer
}

// Petri metric names.
const (
	// MetricFirings counts transition firings, labelled by net and
	// transition.
	MetricFirings = "mvml_petri_firings_total"
	// MetricSimTime gauges the current simulated time, labelled by net.
	MetricSimTime = "mvml_petri_sim_time"
)

func (c *SimConfig) fillDefaults() {
	if c.Batches == 0 {
		c.Batches = 20
	}
	if c.Level == 0 {
		c.Level = 0.95
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 50_000_000
	}
}

// Validate reports configuration errors.
func (c SimConfig) Validate() error {
	if c.Horizon <= 0 {
		return fmt.Errorf("petri: non-positive horizon %v", c.Horizon)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("petri: negative warmup %v", c.Warmup)
	}
	if c.Batches < 2 {
		return fmt.Errorf("petri: need at least 2 batches, got %d", c.Batches)
	}
	return nil
}

// SimResult summarises a simulation run.
type SimResult struct {
	// Occupancy is the fraction of observed time spent in each tangible
	// marking, keyed by Marking.Key().
	Occupancy map[string]float64
	// MarkingOf maps keys back to markings.
	MarkingOf map[string]Marking
	// Reward is the time-averaged reward (when a reward function was
	// supplied), with a batch-means confidence interval.
	Reward   float64
	RewardCI stats.Interval
	// Events is the number of transitions fired.
	Events int
	// Observed is the measured (post-warmup) simulated time.
	Observed float64
}

// Probability sums the occupancy of markings satisfying pred.
func (r *SimResult) Probability(pred func(Marking) bool) float64 {
	var total float64
	for key, frac := range r.Occupancy {
		if pred(r.MarkingOf[key]) {
			total += frac
		}
	}
	return total
}

// maxImmediateChain bounds consecutive zero-time firings to detect
// immediate-transition livelock.
const maxImmediateChain = 100_000

// Simulate runs the DSPN from its initial marking for cfg.Warmup+cfg.Horizon
// simulated time units and returns time-average statistics. reward may be
// nil when only occupancy is of interest.
//
// Semantics: immediate transitions fire first (highest priority, then
// weight-proportional random choice); exponential transitions are resampled
// in every tangible marking (statistically equivalent to race semantics by
// memorylessness, and required for marking-dependent rates); deterministic
// transitions use enabling memory — their countdown continues across
// markings while they remain enabled and resets when disabled.
func Simulate(net *Net, cfg SimConfig, reward func(Marking) float64, rng *xrand.Rand) (*SimResult, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("petri: nil rng")
	}

	m := net.InitialMarking()
	res := &SimResult{
		Occupancy: make(map[string]float64),
		MarkingOf: make(map[string]Marking),
	}
	detRemaining := make(map[*Transition]float64)
	batchReward := make([]float64, cfg.Batches)
	batchTime := make([]float64, cfg.Batches)
	batchLen := cfg.Horizon / float64(cfg.Batches)
	end := cfg.Warmup + cfg.Horizon

	var now float64

	// Telemetry: firing counters are resolved lazily per transition and
	// cached, so the hot loop performs map lookups on pointers rather than
	// registry (mutex + string) lookups. All no-ops when Metrics is nil.
	var firingCtrs map[*Transition]*obs.Counter
	var simTimeGauge *obs.Gauge
	if cfg.Metrics != nil {
		cfg.Metrics.Help(MetricFirings, "Transition firings per net and transition.")
		cfg.Metrics.Help(MetricSimTime, "Simulated-time progress of the current/last run.")
		firingCtrs = make(map[*Transition]*obs.Counter)
		simTimeGauge = cfg.Metrics.Gauge(MetricSimTime, "net", net.Name())
	}
	recordFiring := func(t *Transition) {
		if firingCtrs == nil {
			return
		}
		c, ok := firingCtrs[t]
		if !ok {
			c = cfg.Metrics.Counter(MetricFirings, "net", net.Name(), "transition", t.Name)
			firingCtrs[t] = c
		}
		c.Inc()
		simTimeGauge.Set(now)
	}

	fireImmediates := func() error {
		for chain := 0; ; chain++ {
			enabled := net.EnabledImmediate(m)
			if len(enabled) == 0 {
				return nil
			}
			if chain >= maxImmediateChain {
				return fmt.Errorf("petri: immediate-transition livelock in marking %s", m.Key())
			}
			weights := make([]float64, len(enabled))
			for i, t := range enabled {
				weights[i] = t.Weight(m)
			}
			t := enabled[rng.Categorical(weights)]
			next, err := net.Fire(m, t)
			if err != nil {
				return err
			}
			m = next
			res.Events++
			recordFiring(t)
			// Drop deterministic clocks of transitions the firing disabled.
			for dt := range detRemaining {
				if !dt.EnabledIn(m) {
					delete(detRemaining, dt)
				}
			}
		}
	}

	// accumulate records a dwell of length dt in marking m starting at
	// time `from`, splitting it across warmup and batch windows.
	accumulate := func(from, dt float64) {
		if dt <= 0 {
			return
		}
		start := from
		stop := from + dt
		if stop <= cfg.Warmup {
			return
		}
		if start < cfg.Warmup {
			start = cfg.Warmup
		}
		if stop > end {
			stop = end
		}
		if stop <= start {
			return
		}
		key := m.Key()
		if _, ok := res.MarkingOf[key]; !ok {
			res.MarkingOf[key] = m.Clone()
		}
		res.Occupancy[key] += stop - start
		res.Observed += stop - start

		var rw float64
		if reward != nil {
			rw = reward(m)
		}
		// Split over batch windows.
		for start < stop {
			b := int((start - cfg.Warmup) / batchLen)
			if b >= cfg.Batches {
				b = cfg.Batches - 1
			}
			winEnd := cfg.Warmup + float64(b+1)*batchLen
			seg := stop - start
			if winEnd-start < seg {
				seg = winEnd - start
			}
			if seg <= 0 {
				break
			}
			batchTime[b] += seg
			batchReward[b] += rw * seg
			start += seg
		}
	}

	if err := fireImmediates(); err != nil {
		return nil, err
	}

	for now < end {
		if res.Events > cfg.MaxEvents {
			return nil, fmt.Errorf("petri: exceeded %d events at t=%v", cfg.MaxEvents, now)
		}
		timed := net.EnabledTimed(m)
		if len(timed) == 0 {
			// Absorbing marking: dwell until the horizon.
			accumulate(now, end-now)
			now = end
			break
		}
		// Determine the winning transition and its delay.
		var winner *Transition
		minDelay := 0.0
		for _, t := range timed {
			var d float64
			switch t.Kind {
			case Exponential:
				d = rng.Exp(t.Delay(m))
			case Deterministic:
				rem, ok := detRemaining[t]
				if !ok {
					rem = t.Delay(m)
					detRemaining[t] = rem
				}
				d = rem
			}
			if winner == nil || d < minDelay {
				winner, minDelay = t, d
			}
		}
		if now+minDelay > end {
			// Horizon reached before the next firing.
			accumulate(now, end-now)
			now = end
			break
		}
		accumulate(now, minDelay)
		now += minDelay
		// Age the deterministic clocks that were running.
		for t, rem := range detRemaining {
			if t == winner {
				delete(detRemaining, t)
				continue
			}
			detRemaining[t] = rem - minDelay
		}
		next, err := net.Fire(m, winner)
		if err != nil {
			return nil, err
		}
		m = next
		res.Events++
		recordFiring(winner)
		for t := range detRemaining {
			if !t.EnabledIn(m) {
				delete(detRemaining, t)
			}
		}
		if err := fireImmediates(); err != nil {
			return nil, err
		}
	}

	// Normalise occupancy.
	if res.Observed > 0 {
		for k := range res.Occupancy {
			res.Occupancy[k] /= res.Observed
		}
	}
	if reward != nil {
		means := make([]float64, 0, cfg.Batches)
		var total, totalTime float64
		for b := 0; b < cfg.Batches; b++ {
			if batchTime[b] > 0 {
				means = append(means, batchReward[b]/batchTime[b])
			}
			total += batchReward[b]
			totalTime += batchTime[b]
		}
		if totalTime > 0 {
			res.Reward = total / totalTime
		}
		if len(means) >= 2 {
			ci, err := stats.MeanCI(means, cfg.Level)
			if err == nil {
				res.RewardCI = ci
			}
		}
	}
	if cfg.Tracer != nil {
		cfg.Tracer.Emit(now, "petri_run_end", map[string]any{
			"net":      net.Name(),
			"events":   res.Events,
			"observed": res.Observed,
			"markings": len(res.Occupancy),
		})
	}
	return res, nil
}
