package petri

import (
	"fmt"
	"math"
)

// maxCTMCStates bounds the tangible state space of the exact solver.
const maxCTMCStates = 20_000

// maxVanishingDepth bounds immediate-firing recursion during vanishing
// marking elimination.
const maxVanishingDepth = 10_000

// CTMCResult is the exact steady-state solution of a GSPN (a net without
// deterministic transitions).
type CTMCResult struct {
	// States are the reachable tangible markings.
	States []Marking
	// Pi are the steady-state probabilities aligned with States.
	Pi []float64
	// Index maps Marking.Key() to the position in States.
	Index map[string]int
}

// Probability sums steady-state probability over markings satisfying pred.
func (r *CTMCResult) Probability(pred func(Marking) bool) float64 {
	var total float64
	for i, m := range r.States {
		if pred(m) {
			total += r.Pi[i]
		}
	}
	return total
}

// ExpectedReward computes the steady-state expectation of a reward function,
// i.e. Eq. 3 of the paper with R(m) as the per-state reward.
func (r *CTMCResult) ExpectedReward(reward func(Marking) float64) float64 {
	var total float64
	for i, m := range r.States {
		total += r.Pi[i] * reward(m)
	}
	return total
}

// SolveCTMC computes the exact steady-state distribution of a net whose
// timed transitions are all exponential. Immediate transitions are allowed;
// vanishing markings are eliminated on the fly by following weighted
// immediate firings to the tangible successors. Deterministic transitions
// are rejected — use Simulate or ErlangApproximation for those.
func SolveCTMC(net *Net) (*CTMCResult, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if net.HasDeterministic() {
		return nil, fmt.Errorf("petri: net %q has deterministic transitions; SolveCTMC handles only exponential/immediate nets", net.Name())
	}

	// resolveTangible returns the distribution over tangible markings
	// reached from m by firing immediate transitions (possibly none).
	var resolveTangible func(m Marking, prob float64, depth int, acc map[string]float64, reps map[string]Marking) error
	resolveTangible = func(m Marking, prob float64, depth int, acc map[string]float64, reps map[string]Marking) error {
		if depth > maxVanishingDepth {
			return fmt.Errorf("petri: immediate-transition livelock in marking %s", m.Key())
		}
		enabled := net.EnabledImmediate(m)
		if len(enabled) == 0 {
			key := m.Key()
			acc[key] += prob
			if _, ok := reps[key]; !ok {
				reps[key] = m
			}
			return nil
		}
		var totalW float64
		weights := make([]float64, len(enabled))
		for i, t := range enabled {
			w := t.Weight(m)
			if w < 0 {
				w = 0
			}
			weights[i] = w
			totalW += w
		}
		if totalW <= 0 {
			// All-zero weights: uniform choice, matching the simulator.
			for i := range weights {
				weights[i] = 1
			}
			totalW = float64(len(enabled))
		}
		for i, t := range enabled {
			if weights[i] == 0 {
				continue
			}
			next, err := net.Fire(m, t)
			if err != nil {
				return err
			}
			if err := resolveTangible(next, prob*weights[i]/totalW, depth+1, acc, reps); err != nil {
				return err
			}
		}
		return nil
	}

	// Resolve the initial marking to tangible starting states.
	initialDist := make(map[string]float64)
	reps := make(map[string]Marking)
	if err := resolveTangible(net.InitialMarking(), 1, 0, initialDist, reps); err != nil {
		return nil, err
	}

	res := &CTMCResult{Index: make(map[string]int)}
	addState := func(m Marking) int {
		key := m.Key()
		if i, ok := res.Index[key]; ok {
			return i
		}
		i := len(res.States)
		res.Index[key] = i
		res.States = append(res.States, m.Clone())
		return i
	}
	for key := range initialDist {
		addState(reps[key])
	}

	// Breadth-first exploration of the tangible reachability graph,
	// recording rate entries (from, to, rate).
	type rateEntry struct {
		from, to int
		rate     float64
	}
	var rates []rateEntry
	for head := 0; head < len(res.States); head++ {
		if len(res.States) > maxCTMCStates {
			return nil, fmt.Errorf("petri: tangible state space exceeds %d states", maxCTMCStates)
		}
		m := res.States[head]
		for _, t := range net.EnabledTimed(m) {
			mean := t.Delay(m)
			if mean <= 0 || math.IsInf(mean, 0) || math.IsNaN(mean) {
				return nil, fmt.Errorf("petri: transition %q has invalid mean delay %v in marking %s", t.Name, mean, m.Key())
			}
			next, err := net.Fire(m, t)
			if err != nil {
				return nil, err
			}
			dist := make(map[string]float64)
			distReps := make(map[string]Marking)
			if err := resolveTangible(next, 1, 0, dist, distReps); err != nil {
				return nil, err
			}
			for key, prob := range dist {
				to := addState(distReps[key])
				rates = append(rates, rateEntry{from: head, to: to, rate: prob / mean})
			}
		}
	}

	nStates := len(res.States)
	if nStates == 0 {
		return nil, fmt.Errorf("petri: net %q has no tangible states", net.Name())
	}
	if nStates == 1 {
		res.Pi = []float64{1}
		return res, nil
	}

	// Build the generator Q and solve πQ = 0, Σπ = 1 by Gaussian
	// elimination on Qᵀ with the last equation replaced by normalisation.
	q := make([][]float64, nStates)
	for i := range q {
		q[i] = make([]float64, nStates)
	}
	for _, e := range rates {
		if e.from == e.to {
			continue // self-loops do not affect the steady state
		}
		q[e.from][e.to] += e.rate
	}
	for i := 0; i < nStates; i++ {
		var sum float64
		for j := 0; j < nStates; j++ {
			if j != i {
				sum += q[i][j]
			}
		}
		q[i][i] = -sum
	}
	a := make([][]float64, nStates)
	b := make([]float64, nStates)
	for c := 0; c < nStates; c++ {
		a[c] = make([]float64, nStates)
		for r := 0; r < nStates; r++ {
			a[c][r] = q[r][c] // transpose
		}
	}
	for j := 0; j < nStates; j++ {
		a[nStates-1][j] = 1
	}
	b[nStates-1] = 1

	pi, err := solveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("petri: steady-state solve failed: %w", err)
	}
	// Clean tiny negative round-off and renormalise.
	var total float64
	for i, v := range pi {
		if v < 0 && v > -1e-9 {
			pi[i] = 0
			v = 0
		}
		if v < 0 {
			return nil, fmt.Errorf("petri: negative steady-state probability %v for state %s", v, res.States[i].Key())
		}
		total += v
	}
	if total <= 0 {
		return nil, fmt.Errorf("petri: degenerate steady-state solution")
	}
	for i := range pi {
		pi[i] /= total
	}
	res.Pi = pi
	return res, nil
}

// solveLinear solves a·x = b by Gaussian elimination with partial pivoting.
// a is modified in place.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("singular matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[i] / a[i][i]
	}
	return x, nil
}
