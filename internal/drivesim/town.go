package drivesim

import (
	"fmt"
	"math"
)

// Town is a named map with pre-defined routes, mirroring the CARLA towns the
// paper drives in (Town02–Town05, two routes each; Fig. 5).
type Town struct {
	Name   string
	Routes []*Path
}

// NumRoutes is the number of evaluation routes across all towns (the
// paper's routes #1–#8).
const NumRoutes = 8

// mustPath builds a path from literal waypoints; the layouts below are
// static data, so a failure is a programming error.
func mustPath(points []Vec2) *Path {
	p, err := NewPath(points)
	if err != nil {
		panic(err)
	}
	return p
}

// Towns returns the four town layouts. Each town has a distinct geometric
// character — city grid, winding arterial, highway loop, mixed grid — so the
// eight routes exercise different speed/curvature regimes like the paper's
// CARLA maps.
func Towns() []*Town {
	return []*Town{
		town02(), town03(), town04(), town05(),
	}
}

// town02 is a compact city grid: straight blocks joined by 90° corner arcs.
func town02() *Town {
	// Route 1: L-shaped drive through two blocks.
	r1 := []Vec2{{0, 0}, {60, 0}, {110, 0}, {150, 0}}
	r1 = arcPoints(r1, Vec2{150, 20}, 20, -math.Pi/2, 0)
	r1 = append(r1, Vec2{170, 80}, Vec2{170, 150}, Vec2{170, 220})

	// Route 2: U-shaped block circuit.
	r2 := []Vec2{{0, 0}, {80, 0}, {140, 0}}
	r2 = arcPoints(r2, Vec2{140, 25}, 25, -math.Pi/2, 0)
	r2 = append(r2, Vec2{165, 70}, Vec2{165, 110})
	r2 = arcPoints(r2, Vec2{140, 110}, 25, 0, math.Pi/2)
	r2 = append(r2, Vec2{80, 135}, Vec2{0, 135}, Vec2{-60, 135})

	return &Town{Name: "Town02", Routes: []*Path{mustPath(r1), mustPath(r2)}}
}

// town03 is a winding arterial: long S-curves.
func town03() *Town {
	s1 := make([]Vec2, 0, 128)
	for i := 0; i <= 120; i++ {
		x := float64(i) * 3
		s1 = append(s1, Vec2{x, 35 * math.Sin(x/55)})
	}
	s2 := make([]Vec2, 0, 128)
	for i := 0; i <= 110; i++ {
		x := float64(i) * 3
		s2 = append(s2, Vec2{x, 25*math.Cos(x/40) - 25})
	}
	return &Town{Name: "Town03", Routes: []*Path{mustPath(s1), mustPath(s2)}}
}

// town04 is a highway loop: long straights with sweeping curves.
func town04() *Town {
	r1 := []Vec2{{0, 0}, {150, 0}, {280, 0}}
	r1 = arcPoints(r1, Vec2{280, 60}, 60, -math.Pi/2, 0)
	r1 = append(r1, Vec2{340, 180}, Vec2{340, 320})

	r2 := []Vec2{{0, 0}, {120, 0}}
	r2 = arcPoints(r2, Vec2{120, 80}, 80, -math.Pi/2, 0)
	r2 = append(r2, Vec2{200, 200})
	r2 = arcPoints(r2, Vec2{120, 200}, 80, 0, math.Pi/2)
	r2 = append(r2, Vec2{0, 280}, Vec2{-140, 280})

	return &Town{Name: "Town04", Routes: []*Path{mustPath(r1), mustPath(r2)}}
}

// town05 is a mixed grid with a diagonal connector.
func town05() *Town {
	r1 := []Vec2{{0, 0}, {70, 0}, {120, 0}}
	r1 = arcPoints(r1, Vec2{120, 15}, 15, -math.Pi/2, math.Pi/4)
	r1 = append(r1, Vec2{170, 75}, Vec2{220, 130}, Vec2{270, 185})

	r2 := []Vec2{{0, 0}, {90, 0}}
	r2 = arcPoints(r2, Vec2{90, 30}, 30, -math.Pi/2, 0)
	r2 = append(r2, Vec2{120, 100}, Vec2{120, 160})
	r2 = arcPoints(r2, Vec2{90, 160}, 30, 0, math.Pi/2)
	r2 = append(r2, Vec2{20, 190}, Vec2{-60, 190}, Vec2{-120, 190})

	return &Town{Name: "Town05", Routes: []*Path{mustPath(r1), mustPath(r2)}}
}

// Route returns the 1-based route number used in the paper's Table VI
// (routes #1–#8: two per town in town order) along with its town name.
func Route(number int) (*Path, string, error) {
	if number < 1 || number > NumRoutes {
		return nil, "", fmt.Errorf("drivesim: route %d outside 1..%d", number, NumRoutes)
	}
	towns := Towns()
	town := towns[(number-1)/2]
	return town.Routes[(number-1)%2], town.Name, nil
}
