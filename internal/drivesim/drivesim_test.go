package drivesim

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

func TestNewPathValidation(t *testing.T) {
	if _, err := NewPath([]Vec2{{0, 0}}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, err := NewPath([]Vec2{{0, 0}, {0, 0}}); err == nil {
		t.Fatal("expected error for duplicate point")
	}
}

func TestPathArcLength(t *testing.T) {
	p, err := NewPath([]Vec2{{0, 0}, {3, 0}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Length() != 7 {
		t.Fatalf("length %v, want 7", p.Length())
	}
	if got := p.PointAt(3); got != (Vec2{3, 0}) {
		t.Fatalf("PointAt(3) = %v", got)
	}
	if got := p.PointAt(5); got != (Vec2{3, 2}) {
		t.Fatalf("PointAt(5) = %v", got)
	}
	// Clamping.
	if got := p.PointAt(-1); got != (Vec2{0, 0}) {
		t.Fatalf("PointAt(-1) = %v", got)
	}
	if got := p.PointAt(99); got != (Vec2{3, 4}) {
		t.Fatalf("PointAt(99) = %v", got)
	}
}

func TestPathHeading(t *testing.T) {
	p, err := NewPath([]Vec2{{0, 0}, {10, 0}, {10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if h := p.HeadingAt(5); math.Abs(h) > 1e-9 {
		t.Fatalf("heading at 5 = %v, want 0", h)
	}
	if h := p.HeadingAt(15); math.Abs(h-math.Pi/2) > 1e-9 {
		t.Fatalf("heading at 15 = %v, want π/2", h)
	}
}

func TestNearestArcLength(t *testing.T) {
	p, err := NewPath([]Vec2{{0, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.NearestArcLength(Vec2{4, 3}); math.Abs(s-4) > 1e-9 {
		t.Fatalf("nearest arc length %v, want 4", s)
	}
	if s := p.NearestArcLength(Vec2{-5, 1}); s != 0 {
		t.Fatalf("nearest arc length %v, want 0 (clamped)", s)
	}
}

func TestTownsAndRoutes(t *testing.T) {
	towns := Towns()
	if len(towns) != 4 {
		t.Fatalf("%d towns, want 4", len(towns))
	}
	for _, town := range towns {
		if len(town.Routes) != 2 {
			t.Fatalf("%s has %d routes, want 2", town.Name, len(town.Routes))
		}
		for i, r := range town.Routes {
			if r.Length() < 120 {
				t.Fatalf("%s route %d too short: %v m", town.Name, i, r.Length())
			}
		}
	}
	for n := 1; n <= NumRoutes; n++ {
		if _, _, err := Route(n); err != nil {
			t.Fatalf("route %d: %v", n, err)
		}
	}
	if _, _, err := Route(0); err == nil {
		t.Fatal("expected error for route 0")
	}
	if _, _, err := Route(9); err == nil {
		t.Fatal("expected error for route 9")
	}
}

func TestRouteNumberingMatchesTowns(t *testing.T) {
	_, name1, _ := Route(1)
	_, name3, _ := Route(3)
	_, name8, _ := Route(8)
	if name1 != "Town02" || name3 != "Town03" || name8 != "Town05" {
		t.Fatalf("route->town mapping wrong: %s %s %s", name1, name3, name8)
	}
}

func TestNPCProfileAndMotion(t *testing.T) {
	p, err := NewPath([]Vec2{{0, 0}, {1000, 0}})
	if err != nil {
		t.Fatal(err)
	}
	npc, err := NewNPC(1, p, 0, []SpeedPhase{
		{Until: 5, Speed: 10},
		{Until: 10, Speed: 0},
		{Until: 1e9, Speed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.05
	for frame := 0; frame < int(4/dt); frame++ {
		npc.Step(float64(frame)*dt, dt)
	}
	if v := npc.State().Speed; math.Abs(v-10) > 0.01 {
		t.Fatalf("speed at t=4 is %v, want 10", v)
	}
	for frame := int(4 / dt); frame < int(9/dt); frame++ {
		npc.Step(float64(frame)*dt, dt)
	}
	if v := npc.State().Speed; v != 0 {
		t.Fatalf("speed at t=9 is %v, want 0 (stopped phase)", v)
	}
	for frame := int(9 / dt); frame < int(14/dt); frame++ {
		npc.Step(float64(frame)*dt, dt)
	}
	if v := npc.State().Speed; math.Abs(v-4) > 0.01 {
		t.Fatalf("speed at t=14 is %v, want 4", v)
	}
	if npc.ArcLength() <= 0 {
		t.Fatal("NPC never moved")
	}
}

func TestNPCValidation(t *testing.T) {
	p, _ := NewPath([]Vec2{{0, 0}, {100, 0}})
	if _, err := NewNPC(1, nil, 0, []SpeedPhase{{Until: 1, Speed: 1}}); err == nil {
		t.Fatal("expected error for nil path")
	}
	if _, err := NewNPC(1, p, 500, []SpeedPhase{{Until: 1, Speed: 1}}); err == nil {
		t.Fatal("expected error for start beyond path")
	}
	if _, err := NewNPC(1, p, 0, nil); err == nil {
		t.Fatal("expected error for empty profile")
	}
	if _, err := NewNPC(1, p, 0, []SpeedPhase{{Until: 5, Speed: 1}, {Until: 3, Speed: 2}}); err == nil {
		t.Fatal("expected error for non-increasing phases")
	}
	if _, err := NewNPC(1, p, 0, []SpeedPhase{{Until: 5, Speed: -1}}); err == nil {
		t.Fatal("expected error for negative speed")
	}
}

func TestNPCStopsAtPathEnd(t *testing.T) {
	p, _ := NewPath([]Vec2{{0, 0}, {20, 0}})
	npc, err := NewNPC(1, p, 0, []SpeedPhase{{Until: 1e9, Speed: 10}})
	if err != nil {
		t.Fatal(err)
	}
	for frame := 0; frame < 200; frame++ {
		npc.Step(float64(frame)*0.05, 0.05)
	}
	if npc.ArcLength() != p.Length() {
		t.Fatalf("NPC at %v, want clamped to %v", npc.ArcLength(), p.Length())
	}
	if npc.State().Speed != 0 {
		t.Fatal("NPC should stop at path end")
	}
}

func TestRunConfigValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := Run(Config{RouteNumber: 0}, PerfectPerception{}, rng); err == nil {
		t.Fatal("expected error for route 0")
	}
	if _, err := Run(Config{RouteNumber: 1}, nil, rng); err == nil {
		t.Fatal("expected error for nil perception")
	}
	if _, err := Run(Config{RouteNumber: 1}, PerfectPerception{}, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

// TestPerfectPerceptionAvoidsCollisions: with ground-truth perception the
// planner must brake for the stopping lead vehicle on every route.
func TestPerfectPerceptionAvoidsCollisions(t *testing.T) {
	rng := xrand.New(2)
	for route := 1; route <= NumRoutes; route++ {
		res, err := Run(Config{RouteNumber: route}, PerfectPerception{}, rng.Split("run", uint64(route)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Collided {
			t.Errorf("route %d: collision at frame %d despite perfect perception",
				route, res.FirstCollisionFrame)
		}
		if res.TotalFrames < 300 {
			t.Errorf("route %d: suspiciously short run (%d frames)", route, res.TotalFrames)
		}
	}
}

// TestBlindPerceptionCollides: the scenarios must actually contain rear-end
// hazards — driving blind has to end in collision on every route.
func TestBlindPerceptionCollides(t *testing.T) {
	rng := xrand.New(3)
	for route := 1; route <= NumRoutes; route++ {
		res, err := Run(Config{RouteNumber: route}, BlindPerception{}, rng.Split("run", uint64(route)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Collided {
			t.Errorf("route %d: no collision while driving blind — scenario has no hazard", route)
		}
		if res.CollisionRate() <= 0 {
			t.Errorf("route %d: zero collision rate while blind", route)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Config{RouteNumber: 1}, PerfectPerception{}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{RouteNumber: 1}, PerfectPerception{}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFrames != b.TotalFrames || a.CollisionFrames != b.CollisionFrames ||
		a.AvgFPS != b.AvgFPS {
		t.Fatal("same-seed runs diverged")
	}
}

func TestCostAccountStructure(t *testing.T) {
	single := &costAccount{}
	triple := &costAccount{}
	for i := 0; i < 100; i++ {
		single.record(1, 0, 2)
		triple.record(3, 0, 2)
	}
	if single.fps() <= triple.fps() {
		t.Fatalf("single-version FPS (%v) must exceed three-version (%v)", single.fps(), triple.fps())
	}
	// The versions run concurrently, so 3v costs far less than 3× 1v.
	ratio := triple.fps() / single.fps()
	if ratio < 0.6 || ratio > 0.85 {
		t.Fatalf("3v/1v FPS ratio %v outside the paper's ≈0.73 band", ratio)
	}
	if triple.gpuPct() <= single.gpuPct() {
		t.Fatal("GPU utilisation should grow with versions")
	}
	if triple.cpuPct() <= single.cpuPct() {
		t.Fatal("CPU utilisation should grow with versions")
	}
}

func TestCollisionRateAndSkipRatio(t *testing.T) {
	r := &Result{TotalFrames: 200, CollisionFrames: 50, SkippedFrames: 4}
	if got := r.CollisionRate(); got != 25 {
		t.Fatalf("collision rate %v, want 25", got)
	}
	if got := r.SkipRatio(); got != 0.02 {
		t.Fatalf("skip ratio %v, want 0.02", got)
	}
	empty := &Result{}
	if empty.CollisionRate() != 0 || empty.SkipRatio() != 0 {
		t.Fatal("empty result rates should be 0")
	}
}

func TestVec2Ops(t *testing.T) {
	a, b := Vec2{3, 4}, Vec2{1, 1}
	if a.Len() != 5 {
		t.Fatal("Len")
	}
	if a.Add(b) != (Vec2{4, 5}) || a.Sub(b) != (Vec2{2, 3}) {
		t.Fatal("Add/Sub")
	}
	if a.Scale(2) != (Vec2{6, 8}) {
		t.Fatal("Scale")
	}
	if a.Dot(b) != 7 {
		t.Fatal("Dot")
	}
	if math.Abs(Vec2{0, 2}.Heading()-math.Pi/2) > 1e-12 {
		t.Fatal("Heading")
	}
}

func TestNormAngle(t *testing.T) {
	if got := normAngle(3 * math.Pi); math.Abs(got-math.Pi) > 1e-9 {
		t.Fatalf("normAngle(3π) = %v", got)
	}
	if got := normAngle(-3 * math.Pi); math.Abs(got+math.Pi) > 1e-9 {
		t.Fatalf("normAngle(-3π) = %v", got)
	}
}

func BenchmarkRunPerfect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{RouteNumber: 1}, PerfectPerception{}, xrand.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
