package drivesim

import (
	"fmt"
	"math"
)

// VehicleState is the pose and motion of a vehicle.
type VehicleState struct {
	Pos     Vec2
	Heading float64 // radians
	Speed   float64 // m/s
}

// Object is a ground-truth actor visible to the perception sensors.
type Object struct {
	ID      int
	Pos     Vec2
	Speed   float64
	Heading float64
}

// Detection is one perceived object (position in world frame).
type Detection struct {
	Pos Vec2
}

// Scene is the sensor snapshot handed to the perception system each frame.
type Scene struct {
	Frame   int
	Time    float64
	Ego     VehicleState
	Objects []Object // ground-truth objects within sensor range
}

// PerceptionResult is the voted perception output for one frame.
type PerceptionResult struct {
	// Skipped reports that the voter declined to output this frame; the
	// planner must hold its previous command (§VII-A).
	Skipped bool
	// Objects are the agreed detections (empty and meaningful when not
	// skipped).
	Objects []Detection
}

// PerceptionSystem abstracts the (multi-version) perception pipeline so the
// simulator does not depend on its implementation.
type PerceptionSystem interface {
	// Perceive processes one frame at simulated time t.
	Perceive(t float64, scene Scene) (PerceptionResult, error)
	// FunctionalModules reports how many perception versions are
	// currently answering (drives the compute-cost account).
	FunctionalModules() int
	// RejuvenatingModules reports how many versions are being reloaded
	// this frame; reloading stalls the accelerator (cost account).
	RejuvenatingModules() int
}

// SpeedPhase is one segment of an NPC speed profile.
type SpeedPhase struct {
	// Until is the end time (seconds) of this phase.
	Until float64
	// Speed is the target speed during the phase.
	Speed float64
}

// NPC is a scripted traffic vehicle following a path with a piecewise
// speed profile. The final phase's speed holds forever.
type NPC struct {
	ID      int
	Radius  float64
	path    *Path
	s       float64 // arc length along path
	speed   float64
	profile []SpeedPhase
}

// NewNPC creates a scripted vehicle at the given start arc length.
func NewNPC(id int, path *Path, startS float64, profile []SpeedPhase) (*NPC, error) {
	if path == nil {
		return nil, fmt.Errorf("drivesim: NPC %d has no path", id)
	}
	if startS < 0 || startS > path.Length() {
		return nil, fmt.Errorf("drivesim: NPC %d start %v outside path [0, %v]", id, startS, path.Length())
	}
	if len(profile) == 0 {
		return nil, fmt.Errorf("drivesim: NPC %d has no speed profile", id)
	}
	for i, ph := range profile {
		if ph.Speed < 0 {
			return nil, fmt.Errorf("drivesim: NPC %d phase %d has negative speed", id, i)
		}
		// NaN sails past the negative-speed check (every comparison with
		// NaN is false) and would silently poison the NPC's position for
		// the rest of the run; Inf survives it outright.
		if math.IsNaN(ph.Speed) || math.IsInf(ph.Speed, 0) {
			return nil, fmt.Errorf("drivesim: NPC %d phase %d has non-finite speed %v", id, i, ph.Speed)
		}
		if math.IsNaN(ph.Until) {
			return nil, fmt.Errorf("drivesim: NPC %d phase %d has NaN end time", id, i)
		}
		if i > 0 && ph.Until <= profile[i-1].Until {
			return nil, fmt.Errorf("drivesim: NPC %d phases not strictly increasing", id)
		}
	}
	return &NPC{ID: id, Radius: 1.3, path: path, s: startS, profile: profile}, nil
}

// targetSpeed returns the profile speed at time t.
func (n *NPC) targetSpeed(t float64) float64 {
	for _, ph := range n.profile {
		if t < ph.Until {
			return ph.Speed
		}
	}
	return n.profile[len(n.profile)-1].Speed
}

// maxNPCAccel bounds NPC acceleration/braking (m/s²).
const maxNPCAccel = 4.0

// Step advances the NPC by dt seconds.
func (n *NPC) Step(t, dt float64) {
	target := n.targetSpeed(t)
	if n.speed < target {
		n.speed += maxNPCAccel * dt
		if n.speed > target {
			n.speed = target
		}
	} else if n.speed > target {
		n.speed -= maxNPCAccel * dt
		if n.speed < target {
			n.speed = target
		}
	}
	n.s += n.speed * dt
	if n.s > n.path.Length() {
		n.s = n.path.Length()
		n.speed = 0
	}
}

// State returns the NPC's current pose.
func (n *NPC) State() VehicleState {
	return VehicleState{
		Pos:     n.path.PointAt(n.s),
		Heading: n.path.HeadingAt(n.s),
		Speed:   n.speed,
	}
}

// Object returns the NPC as a ground-truth perception object.
func (n *NPC) Object() Object {
	st := n.State()
	return Object{ID: n.ID, Pos: st.Pos, Speed: st.Speed, Heading: st.Heading}
}

// ArcLength returns the NPC's position along its path.
func (n *NPC) ArcLength() float64 { return n.s }

// SetSpeed overrides the NPC speed (collision response).
func (n *NPC) SetSpeed(v float64) { n.speed = v }
