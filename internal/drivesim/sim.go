package drivesim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mvml/internal/obs"
	"mvml/internal/xrand"
)

// Config parameterises one simulation run.
type Config struct {
	// RouteNumber selects routes #1–#8 (Table VI numbering).
	RouteNumber int
	// DT is the frame period in seconds (default 0.05 → 20 FPS of
	// simulated sensor frames).
	DT float64
	// MaxFrames bounds the run; 0 derives it from the route length
	// (roughly the paper's ≈30 s, 600–750 frames).
	MaxFrames int
	// CruiseSpeed is the ego's desired speed (default 12 m/s).
	CruiseSpeed float64
	// SensorRange limits perception to nearby objects (default 45 m).
	SensorRange float64
	// Traffic, when non-nil, replaces the route's scripted NPCs; an empty
	// non-nil slice runs the route with no traffic at all. The scenario
	// falsifier uses this to drive searched traffic schedules through the
	// simulator. NPCs are stateful: callers must pass freshly constructed
	// vehicles to each Run.
	Traffic []*NPC
	// DetectionMatchRadius is the association distance (m) under which a
	// perception detection counts as covering a ground-truth object for
	// the missed-obstacle safety signal (default 2.0).
	DetectionMatchRadius float64
	// Metrics, when non-nil, receives frame counters, tick-latency
	// histograms and ego-state gauges. Telemetry is purely observational:
	// it consumes no draws from the run's rng, so instrumented and
	// uninstrumented runs are decision-identical.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives hazard events (collisions, perception
	// skips, run completion) stamped with simulated time.
	Tracer *obs.Tracer
}

// Drivesim metric names.
const (
	// MetricFrames counts simulated frames, labelled by route.
	MetricFrames = "mvml_drivesim_frames_total"
	// MetricCollisionFrames counts frames with ego/NPC overlap.
	MetricCollisionFrames = "mvml_drivesim_collision_frames_total"
	// MetricSkippedFrames counts frames on which perception safely skipped.
	MetricSkippedFrames = "mvml_drivesim_skipped_frames_total"
	// MetricTickLatency is the wall-clock duration of one simulation frame
	// (traffic step + perception + planning + dynamics).
	MetricTickLatency = "mvml_drivesim_tick_seconds"
	// MetricEgoSpeed gauges the ego's current speed (m/s).
	MetricEgoSpeed = "mvml_drivesim_ego_speed_mps"
)

func (c *Config) fillDefaults() {
	if c.DT == 0 {
		c.DT = 0.05
	}
	if c.CruiseSpeed == 0 {
		c.CruiseSpeed = 12
	}
	if c.SensorRange == 0 {
		c.SensorRange = 45
	}
	if c.DetectionMatchRadius == 0 {
		c.DetectionMatchRadius = 2.0
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.RouteNumber < 1 || c.RouteNumber > NumRoutes {
		return fmt.Errorf("drivesim: route %d outside 1..%d", c.RouteNumber, NumRoutes)
	}
	if c.DT < 0 || c.CruiseSpeed < 0 || c.SensorRange < 0 || c.MaxFrames < 0 ||
		c.DetectionMatchRadius < 0 {
		return errors.New("drivesim: negative config value")
	}
	// A NaN slips past every < comparison and an Inf survives them, then
	// poisons the frame-count derivation (int conversion of a non-finite
	// float is platform-defined) and every kinematic update downstream —
	// reject both here rather than running a silently meaningless scenario.
	for name, v := range map[string]float64{
		"DT": c.DT, "CruiseSpeed": c.CruiseSpeed, "SensorRange": c.SensorRange,
		"DetectionMatchRadius": c.DetectionMatchRadius,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("drivesim: non-finite %s %v", name, v)
		}
	}
	return nil
}

// Result summarises one run with the paper's Table VI metrics plus the
// overhead proxies of Table VIII.
type Result struct {
	Route string // town name
	// TotalFrames is the run length in frames.
	TotalFrames int
	// CollisionFrames counts frames in which the ego overlaps an NPC.
	CollisionFrames int
	// FirstCollisionFrame is the frame of the first contact, or -1.
	FirstCollisionFrame int
	// Collided reports whether any collision occurred.
	Collided bool
	// SkippedFrames counts frames on which the perception voter skipped.
	SkippedFrames int
	// Completed reports whether the ego reached the end of the route.
	Completed bool

	// Per-step safety signals (see frameSafety). They are pure
	// observations of ground truth versus the perception output: computing
	// them consumes no rng draws and alters no decision.

	// MinTTC is the minimum time-to-collision (s) against any in-corridor
	// lead object across the run, capped at TTCCap; 0 once any collision
	// occurs.
	MinTTC float64
	// MissedObstacleFrames counts non-skipped frames on which an
	// in-corridor ground-truth object ahead of the ego had no perception
	// detection within DetectionMatchRadius.
	MissedObstacleFrames int
	// UnsafeSpeedFrames counts frames on which the ego moved faster than
	// the maximum-braking stopping envelope for the nearest in-corridor
	// obstacle — i.e. frames on which even a perfect emergency brake could
	// no longer prevent contact.
	UnsafeSpeedFrames int

	// Overhead proxies (see costAccount).
	AvgFPS     float64
	AvgCPUUtil float64
	AvgGPUUtil float64
}

// CollisionRate is the ratio of collision frames to total frames (%).
func (r *Result) CollisionRate() float64 {
	if r.TotalFrames == 0 {
		return 0
	}
	return 100 * float64(r.CollisionFrames) / float64(r.TotalFrames)
}

// SkipRatio is the fraction of frames the voter skipped.
func (r *Result) SkipRatio() float64 {
	if r.TotalFrames == 0 {
		return 0
	}
	return float64(r.SkippedFrames) / float64(r.TotalFrames)
}

// Ego dynamics parameters.
const (
	egoRadius    = 1.4  // m, collision circle
	egoMaxAccel  = 3.0  // m/s²
	egoMaxBrake  = 8.0  // m/s²
	wheelBase    = 2.8  // m, bicycle model
	lookahead    = 7.0  // m, pure-pursuit target distance
	maxSteer     = 0.9  // rad
	safeGap      = 10.0 // m, desired gap to a lead obstacle
	hardStopGap  = 6.0  // m, emergency braking threshold
	corridorHalf = 2.2  // m, lateral half-width considered "in my lane"
)

// costAccount models the per-frame perception compute cost, reproducing the
// overhead structure of Table VIII: the versions execute concurrently on the
// accelerator, so the frame time is a base cost plus the slowest version
// plus a small serialisation overhead per extra active version; utilisation
// proxies scale with the average number of active versions.
type costAccount struct {
	frames        int
	sumFrameMS    float64
	sumFunctional float64
}

// Per-frame cost model constants (milliseconds); calibrated so a
// single-version system lands near the paper's 5.85 FPS and a three-version
// one near 4.27 FPS on the reference hardware.
const (
	costBaseMS       = 41.0
	costVersionMS    = 130.0
	costExtraMS      = 33.0 // serialisation overhead per extra active version
	costVoterMS      = 1.5
	costReloadMS     = 60.0 // module reload stall while rejuvenating
	cpuBasePct       = 3.45
	cpuPerVersionPct = 0.175
	gpuBasePct       = 24.5
	gpuPerVersionPct = 3.5
)

func (a *costAccount) record(functional, rejuvenating int, jitterMS float64) {
	a.frames++
	frame := costBaseMS + costVoterMS + jitterMS
	if functional > 0 {
		frame += costVersionMS + costExtraMS*float64(functional-1)
	}
	frame += costReloadMS * float64(rejuvenating)
	a.sumFrameMS += frame
	a.sumFunctional += float64(functional)
}

func (a *costAccount) fps() float64 {
	if a.frames == 0 {
		return 0
	}
	return 1000 / (a.sumFrameMS / float64(a.frames))
}

func (a *costAccount) cpuPct() float64 {
	if a.frames == 0 {
		return 0
	}
	return cpuBasePct + cpuPerVersionPct*a.sumFunctional/float64(a.frames)
}

func (a *costAccount) gpuPct() float64 {
	if a.frames == 0 {
		return 0
	}
	return gpuBasePct + gpuPerVersionPct*a.sumFunctional/float64(a.frames)
}

// Run executes one driving scenario with the given perception system. The
// rng drives scenario noise only (cost jitter); all perception randomness
// lives inside the PerceptionSystem.
func Run(cfg Config, percept PerceptionSystem, rng *xrand.Rand) (*Result, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if percept == nil {
		return nil, errors.New("drivesim: nil perception system")
	}
	if rng == nil {
		return nil, errors.New("drivesim: nil rng")
	}
	route, townName, err := Route(cfg.RouteNumber)
	if err != nil {
		return nil, err
	}
	npcs := cfg.Traffic
	if npcs == nil {
		npcs, err = scenarioNPCs(cfg.RouteNumber, route)
		if err != nil {
			return nil, err
		}
	}
	maxFrames := cfg.MaxFrames
	if maxFrames == 0 {
		// Long enough for a well-perceiving ego to reach the jam tail at
		// ~55% of the route (including ~12 s of scripted stop delays)
		// plus a short queued phase; runs end here, as the paper's ≈30 s
		// scenarios do.
		maxFrames = int((0.55*route.Length()/cfg.CruiseSpeed + 16) / cfg.DT)
	}

	ego := VehicleState{Pos: route.PointAt(0), Heading: route.HeadingAt(0)}
	res := &Result{Route: townName, FirstCollisionFrame: -1, MinTTC: TTCCap}
	account := &costAccount{}

	// Telemetry handles; all nil (no-op) when cfg.Metrics is nil.
	routeLabel := fmt.Sprintf("%d", cfg.RouteNumber)
	cfg.Metrics.Help(MetricTickLatency, "Wall-clock duration of one simulation frame.")
	frameCtr := cfg.Metrics.Counter(MetricFrames, "route", routeLabel)
	collisionCtr := cfg.Metrics.Counter(MetricCollisionFrames, "route", routeLabel)
	skipCtr := cfg.Metrics.Counter(MetricSkippedFrames, "route", routeLabel)
	tickHist := cfg.Metrics.Histogram(MetricTickLatency, obs.LatencyBuckets())
	speedGauge := cfg.Metrics.Gauge(MetricEgoSpeed)
	wasColliding := false

	// The planner holds the last commanded target speed across skipped
	// frames (§VII-A: driving properties remain unchanged on a skip).
	targetSpeed := cfg.CruiseSpeed

	for frame := 0; frame < maxFrames; frame++ {
		t := float64(frame) * cfg.DT
		var tickStart time.Time
		if cfg.Metrics != nil {
			tickStart = time.Now()
		}

		// Advance traffic.
		for _, n := range npcs {
			n.Step(t, cfg.DT)
		}

		// Sensor snapshot: objects within range.
		scene := Scene{Frame: frame, Time: t, Ego: ego}
		for _, n := range npcs {
			obj := n.Object()
			if obj.Pos.Dist(ego.Pos) <= cfg.SensorRange {
				scene.Objects = append(scene.Objects, obj)
			}
		}

		out, err := percept.Perceive(t, scene)
		if err != nil {
			return nil, fmt.Errorf("drivesim: perception at frame %d: %w", frame, err)
		}
		account.record(percept.FunctionalModules(), percept.RejuvenatingModules(), rng.Uniform(0, 4))

		if out.Skipped {
			res.SkippedFrames++
			skipCtr.Inc()
			if cfg.Tracer != nil {
				cfg.Tracer.Emit(t, "perception_skip", map[string]any{
					"route": cfg.RouteNumber, "frame": frame,
				})
			}
			// Hold the previous command.
		} else {
			targetSpeed = planSpeed(cfg, route, ego, out.Objects)
		}

		// Per-step safety signals against ground truth (the frame's scene,
		// not the perception output): minimum TTC, stopping-envelope
		// violations and undetected in-corridor obstacles.
		ttc, missed, unsafe := frameSafety(route, ego, npcs, out, cfg)
		if ttc < res.MinTTC {
			res.MinTTC = ttc
		}
		if missed {
			res.MissedObstacleFrames++
		}
		if unsafe {
			res.UnsafeSpeedFrames++
		}

		ego = stepEgo(route, ego, targetSpeed, cfg.DT)

		// Collision check with simple inelastic response: contact pins
		// the ego to the obstacle's speed while overlapping.
		colliding := false
		for _, n := range npcs {
			if ego.Pos.Dist(n.State().Pos) < egoRadius+n.Radius {
				colliding = true
				if ego.Speed > n.State().Speed {
					ego.Speed = n.State().Speed
				}
			}
		}
		if colliding {
			res.CollisionFrames++
			res.MinTTC = 0
			collisionCtr.Inc()
			if !res.Collided {
				res.Collided = true
				res.FirstCollisionFrame = frame
			}
			if !wasColliding && cfg.Tracer != nil {
				cfg.Tracer.Emit(t, "collision", map[string]any{
					"route": cfg.RouteNumber, "frame": frame,
					"speed": ego.Speed,
				})
			}
		}
		wasColliding = colliding

		res.TotalFrames++
		frameCtr.Inc()
		speedGauge.Set(ego.Speed)
		if cfg.Metrics != nil {
			tickHist.Observe(time.Since(tickStart).Seconds())
		}
		if route.NearestArcLength(ego.Pos) >= route.Length()-2 {
			res.Completed = true
			break
		}
	}
	res.AvgFPS = account.fps()
	res.AvgCPUUtil = account.cpuPct()
	res.AvgGPUUtil = account.gpuPct()
	if cfg.Tracer != nil {
		cfg.Tracer.Emit(float64(res.TotalFrames)*cfg.DT, "run_end", map[string]any{
			"route":     cfg.RouteNumber,
			"frames":    res.TotalFrames,
			"collided":  res.Collided,
			"skipped":   res.SkippedFrames,
			"completed": res.Completed,
		})
	}
	return res, nil
}

// TTCCap bounds the reported time-to-collision: approaches slower than this
// are not a hazard, and a finite cap keeps Result JSON-encodable (a run that
// never closes on anything reports MinTTC == TTCCap, not +Inf).
const TTCCap = 60.0

// frameSafety computes one frame's safety signals from ground truth: the
// smallest time-to-collision against any in-corridor object ahead, whether
// any such object within sensor range went undetected by the (non-skipped)
// perception output, and whether the ego's speed exceeds the maximum-braking
// stopping envelope for the nearest obstacle.
func frameSafety(route *Path, ego VehicleState, npcs []*NPC, out PerceptionResult, cfg Config) (ttc float64, missed, unsafe bool) {
	ttc = TTCCap
	egoS := route.NearestArcLength(ego.Pos)
	for _, n := range npcs {
		st := n.State()
		objS := route.NearestArcLength(st.Pos)
		if st.Pos.Dist(route.PointAt(objS)) > corridorHalf {
			continue
		}
		ahead := objS - egoS
		// Range-gate on the same Euclidean distance the sensor snapshot
		// uses, not on arc length: on a curve an object can be closer as
		// the crow flies than along the route, and the probe must only
		// blame perception for objects the sensor could actually see.
		if ahead <= 0 || st.Pos.Dist(ego.Pos) > cfg.SensorRange {
			continue
		}
		gap := ahead - (egoRadius + n.Radius)
		if gap < 0 {
			gap = 0
		}
		if closing := ego.Speed - st.Speed; closing > 0 {
			if t := gap / closing; t < ttc {
				ttc = t
			}
		}
		// Stopping envelope: v² > 2·a_max·gap means contact is already
		// unavoidable under full braking.
		if ego.Speed*ego.Speed > 2*egoMaxBrake*gap {
			unsafe = true
		}
		if !out.Skipped {
			covered := false
			for _, d := range out.Objects {
				if d.Pos.Dist(st.Pos) <= cfg.DetectionMatchRadius {
					covered = true
					break
				}
			}
			if !covered {
				missed = true
			}
		}
	}
	return ttc, missed, unsafe
}

// planSpeed decides the ego target speed from the perceived obstacle set:
// cruise unless something occupies the lane corridor ahead, then follow at a
// safe gap or brake hard when very close.
func planSpeed(cfg Config, route *Path, ego VehicleState, objects []Detection) float64 {
	// Route-relative hazard test: an obstacle matters when it sits on the
	// route corridor ahead of the ego's own arc-length position. This
	// handles curves, where a straight heading-relative projection would
	// let a lead vehicle slip out of the corridor mid-turn.
	egoS := route.NearestArcLength(ego.Pos)
	nearest := math.Inf(1)
	for _, d := range objects {
		// A detection with a non-finite coordinate (a degenerate upstream
		// perception value) carries no usable position: NaN would slide
		// through the corridor test below because every comparison against
		// NaN is false. Drop it explicitly instead of letting it silently
		// shadow or fabricate a hazard.
		if math.IsNaN(d.Pos.X) || math.IsNaN(d.Pos.Y) ||
			math.IsInf(d.Pos.X, 0) || math.IsInf(d.Pos.Y, 0) {
			continue
		}
		objS := route.NearestArcLength(d.Pos)
		lateral := d.Pos.Dist(route.PointAt(objS))
		if lateral > corridorHalf {
			continue
		}
		ahead := objS - egoS
		if ahead <= 0 || ahead > cfg.SensorRange {
			continue
		}
		if ahead < nearest {
			nearest = ahead
		}
	}
	if nearest <= hardStopGap {
		return 0
	}
	// Kinematic braking-distance rule: cap the speed so the ego can stop
	// before closing to hardStopGap at a comfortable deceleration.
	const comfortBrake = 2.8 // m/s², well under egoMaxBrake for margin
	limit := math.Sqrt(2 * comfortBrake * (nearest - hardStopGap))
	if limit < cfg.CruiseSpeed {
		return limit
	}
	return cfg.CruiseSpeed
}

// stepEgo advances the ego one frame: pure-pursuit steering toward the
// route, bounded acceleration toward the target speed.
func stepEgo(route *Path, ego VehicleState, targetSpeed, dt float64) VehicleState {
	// Longitudinal control.
	switch {
	case ego.Speed < targetSpeed:
		ego.Speed += egoMaxAccel * dt
		if ego.Speed > targetSpeed {
			ego.Speed = targetSpeed
		}
	case ego.Speed > targetSpeed:
		ego.Speed -= egoMaxBrake * dt
		if ego.Speed < targetSpeed {
			ego.Speed = targetSpeed
		}
	}

	// Pure pursuit: steer toward a point `lookahead` metres down the route.
	s := route.NearestArcLength(ego.Pos)
	target := route.PointAt(s + lookahead)
	desired := target.Sub(ego.Pos).Heading()
	diff := normAngle(desired - ego.Heading)
	steer := diff
	if steer > maxSteer {
		steer = maxSteer
	} else if steer < -maxSteer {
		steer = -maxSteer
	}
	// Kinematic bicycle model.
	ego.Heading = normAngle(ego.Heading + ego.Speed/wheelBase*math.Tan(steer)*dt*0.5)
	ego.Pos = ego.Pos.Add(Vec2{math.Cos(ego.Heading), math.Sin(ego.Heading)}.Scale(ego.Speed * dt))
	return ego
}

func normAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// scenarioNPCs builds the scripted traffic for a route: a lead vehicle that
// slows, stops once, drives on and finally parks on the route (the tail of a
// traffic jam — the persistent rear-end hazard), plus a second slower
// vehicle further along that also stops temporarily. Phase timings vary per
// route so the eight scenarios differ.
func scenarioNPCs(routeNumber int, route *Path) ([]*NPC, error) {
	shift := float64(routeNumber) * 0.7
	// The lead stops twice (hazards at ~8–15 s and ~16–22 s) and finally
	// parks at ~55% of the route — the tail of a traffic jam. The cruise
	// phase length is solved so the park position is route-relative,
	// keeping the ego's queue exposure comparable across routes.
	parkS := 0.55 * route.Length()
	// The eight evaluation routes are all well over 120 m, but this builder
	// also runs against caller-supplied paths (tests, scenario search):
	// clamp the spawn points into the path instead of handing NewNPC an
	// out-of-range arc length on a short route.
	leadStart := 35.0
	if leadStart > 0.3*route.Length() {
		leadStart = 0.3 * route.Length()
	}
	cruiseDist := parkS - leadStart - 7*(4+shift) - 8*6
	parkT := (22 + shift) + cruiseDist/8
	if parkT < 23+shift {
		parkT = 23 + shift
	}
	lead, err := NewNPC(1, route, leadStart, []SpeedPhase{
		{Until: 4 + shift, Speed: 7},
		{Until: 10 + shift, Speed: 2}, // first slowdown
		{Until: 16 + shift, Speed: 8},
		{Until: 22 + shift, Speed: 3}, // second slowdown
		{Until: parkT, Speed: 8},
		{Until: 1e9, Speed: 0}, // parks on the route
	})
	if err != nil {
		return nil, err
	}
	farS := 90.0
	if farS > route.Length()-20 {
		farS = route.Length() - 20
	}
	if farS < leadStart {
		// Short route: keep the second vehicle ahead of the lead rather
		// than spawning it at a negative arc length (which NewNPC rejects)
		// or behind the hazard it is meant to back up.
		farS = (leadStart + route.Length()) / 2
	}
	slow, err := NewNPC(2, route, farS, []SpeedPhase{
		{Until: 12 + shift, Speed: 5},
		{Until: 18 + shift, Speed: 2},
		{Until: 1e9, Speed: 6},
	})
	if err != nil {
		return nil, err
	}
	return []*NPC{lead, slow}, nil
}

// PerfectPerception returns the ground truth every frame — the ideal
// baseline used by tests and the overhead experiment's upper bound.
type PerfectPerception struct{}

var _ PerceptionSystem = (*PerfectPerception)(nil)

// Perceive implements PerceptionSystem.
func (PerfectPerception) Perceive(_ float64, scene Scene) (PerceptionResult, error) {
	out := PerceptionResult{Objects: make([]Detection, 0, len(scene.Objects))}
	for _, o := range scene.Objects {
		out.Objects = append(out.Objects, Detection{Pos: o.Pos})
	}
	return out, nil
}

// FunctionalModules implements PerceptionSystem.
func (PerfectPerception) FunctionalModules() int { return 1 }

// RejuvenatingModules implements PerceptionSystem.
func (PerfectPerception) RejuvenatingModules() int { return 0 }

// BlindPerception never sees anything — the worst-case baseline showing the
// scenarios genuinely contain rear-end hazards.
type BlindPerception struct{}

var _ PerceptionSystem = (*BlindPerception)(nil)

// Perceive implements PerceptionSystem.
func (BlindPerception) Perceive(float64, Scene) (PerceptionResult, error) {
	return PerceptionResult{}, nil
}

// FunctionalModules implements PerceptionSystem.
func (BlindPerception) FunctionalModules() int { return 1 }

// RejuvenatingModules implements PerceptionSystem.
func (BlindPerception) RejuvenatingModules() int { return 0 }
