package drivesim

import (
	"math"
	"strings"
	"testing"

	"mvml/internal/xrand"
)

// TestConfigValidateNonFinite: NaN slips past every "< 0" comparison and Inf
// survives them, so Validate must reject non-finite values explicitly —
// otherwise int(NaN) decides the frame count (platform-defined) and the run
// silently does nothing or never ends.
func TestConfigValidateNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{RouteNumber: 1}, true},
		{"nan dt", Config{RouteNumber: 1, DT: nan}, false},
		{"inf dt", Config{RouteNumber: 1, DT: inf}, false},
		{"nan cruise", Config{RouteNumber: 1, CruiseSpeed: nan}, false},
		{"inf cruise", Config{RouteNumber: 1, CruiseSpeed: inf}, false},
		{"nan sensor range", Config{RouteNumber: 1, SensorRange: nan}, false},
		{"neg match radius", Config{RouteNumber: 1, DetectionMatchRadius: -1}, false},
		{"nan match radius", Config{RouteNumber: 1, DetectionMatchRadius: nan}, false},
		{"neg dt", Config{RouteNumber: 1, DT: -0.05}, false},
		{"route high", Config{RouteNumber: 9}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
	// Run must surface the same rejection rather than simulating garbage.
	if _, err := Run(Config{RouteNumber: 1, CruiseSpeed: nan}, PerfectPerception{}, xrand.New(1)); err == nil {
		t.Fatal("Run accepted a NaN cruise speed")
	}
}

// TestNewNPCNonFinitePhases: a NaN phase speed used to pass the "< 0" check
// and then propagate into the NPC's arc length, turning every later position
// into NaN with no error anywhere — the silent-NaN class of bug.
func TestNewNPCNonFinitePhases(t *testing.T) {
	p, err := NewPath([]Vec2{{0, 0}, {100, 0}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		profile []SpeedPhase
	}{
		{"nan speed", []SpeedPhase{{Until: 5, Speed: math.NaN()}}},
		{"inf speed", []SpeedPhase{{Until: 5, Speed: math.Inf(1)}}},
		{"nan until", []SpeedPhase{{Until: math.NaN(), Speed: 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewNPC(1, p, 0, tc.profile); err == nil {
				t.Fatal("expected error for non-finite phase")
			}
		})
	}
	// Regression check for the silent propagation itself: before the fix, a
	// NaN-speed NPC stepped to a NaN position without any error.
	npc, err := NewNPC(1, p, 0, []SpeedPhase{{Until: 1e9, Speed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		npc.Step(float64(i)*0.05, 0.05)
	}
	if pos := npc.State().Pos; math.IsNaN(pos.X) || math.IsNaN(pos.Y) {
		t.Fatal("finite profile produced NaN position")
	}
}

// TestScenarioNPCsShortRoutes: the scripted-traffic builder must cope with
// routes far shorter than the eight evaluation routes — near-zero-length
// paths clamp the spawn points into the path instead of erroring out.
func TestScenarioNPCsShortRoutes(t *testing.T) {
	lengths := []float64{4, 12, 30, 60, 200}
	for _, length := range lengths {
		p, err := NewPath([]Vec2{{0, 0}, {length, 0}})
		if err != nil {
			t.Fatal(err)
		}
		npcs, err := scenarioNPCs(3, p)
		if err != nil {
			t.Fatalf("length %v: %v", length, err)
		}
		if len(npcs) != 2 {
			t.Fatalf("length %v: %d NPCs, want 2", length, len(npcs))
		}
		for _, n := range npcs {
			if s := n.ArcLength(); s < 0 || s > p.Length() {
				t.Fatalf("length %v: NPC %d spawned at %v outside [0, %v]",
					length, n.ID, s, p.Length())
			}
		}
	}
}

// TestPlanSpeedEdgeCases: table-driven coverage of the target-speed planner,
// including the NaN/Inf detection guard (a NaN position slides through the
// corridor test because every NaN comparison is false).
func TestPlanSpeedEdgeCases(t *testing.T) {
	route, err := NewPath([]Vec2{{0, 0}, {200, 0}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{RouteNumber: 1}
	cfg.fillDefaults()
	stopped := VehicleState{Pos: Vec2{50, 0}}
	cases := []struct {
		name    string
		ego     VehicleState
		objects []Detection
		want    func(v float64) bool
		desc    string
	}{
		{"empty scene cruises", stopped, nil,
			func(v float64) bool { return v == cfg.CruiseSpeed }, "cruise"},
		{"obstacle behind ignored", stopped, []Detection{{Pos: Vec2{30, 0}}},
			func(v float64) bool { return v == cfg.CruiseSpeed }, "cruise"},
		{"obstacle at ego ignored", stopped, []Detection{{Pos: Vec2{50, 0}}},
			func(v float64) bool { return v == cfg.CruiseSpeed }, "cruise"},
		{"obstacle inside hard-stop gap", stopped, []Detection{{Pos: Vec2{54, 0}}},
			func(v float64) bool { return v == 0 }, "full stop"},
		{"obstacle ahead limits speed", stopped, []Detection{{Pos: Vec2{65, 0}}},
			func(v float64) bool { return v > 0 && v < cfg.CruiseSpeed }, "braking limit"},
		{"lateral obstacle ignored", stopped, []Detection{{Pos: Vec2{65, 5}}},
			func(v float64) bool { return v == cfg.CruiseSpeed }, "cruise"},
		{"nan detection ignored", stopped,
			[]Detection{{Pos: Vec2{math.NaN(), math.NaN()}}},
			func(v float64) bool { return v == cfg.CruiseSpeed }, "cruise"},
		{"inf detection ignored", stopped,
			[]Detection{{Pos: Vec2{math.Inf(1), 0}}},
			func(v float64) bool { return v == cfg.CruiseSpeed }, "cruise"},
		{"nan detection does not mask a real hazard", stopped,
			[]Detection{{Pos: Vec2{math.NaN(), 0}}, {Pos: Vec2{54, 0}}},
			func(v float64) bool { return v == 0 }, "full stop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := planSpeed(cfg, route, tc.ego, tc.objects)
			if math.IsNaN(got) {
				t.Fatalf("planSpeed returned NaN")
			}
			if !tc.want(got) {
				t.Fatalf("planSpeed = %v, want %s", got, tc.desc)
			}
		})
	}
}

// TestTrafficOverride: a non-nil Config.Traffic replaces the scripted NPCs;
// an empty slice means an open road even for blind perception.
func TestTrafficOverride(t *testing.T) {
	res, err := Run(Config{RouteNumber: 1, Traffic: []*NPC{}}, BlindPerception{}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided {
		t.Fatal("collision on an empty road")
	}
	if res.MinTTC != TTCCap {
		t.Fatalf("MinTTC %v on an empty road, want cap %v", res.MinTTC, TTCCap)
	}
	if res.MissedObstacleFrames != 0 || res.UnsafeSpeedFrames != 0 {
		t.Fatal("safety counters non-zero on an empty road")
	}

	// A single parked NPC straight ahead must produce a rear-end collision
	// when driving blind.
	route, _, err := Route(1)
	if err != nil {
		t.Fatal(err)
	}
	parked, err := NewNPC(1, route, 40, []SpeedPhase{{Until: 1e9, Speed: 0}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Run(Config{RouteNumber: 1, Traffic: []*NPC{parked}}, BlindPerception{}, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collided {
		t.Fatal("no collision with a parked obstacle while blind")
	}
	if res.MinTTC != 0 {
		t.Fatalf("MinTTC %v after a collision, want 0", res.MinTTC)
	}
	if res.UnsafeSpeedFrames == 0 {
		t.Fatal("no unsafe-speed exposure before a rear-end collision")
	}
}

// TestSafetySignals: perfect perception keeps the safety margins clean on
// every route, blind perception burns them — the signals the falsifier
// scores must separate the two regimes.
func TestSafetySignals(t *testing.T) {
	for route := 1; route <= NumRoutes; route++ {
		perfect, err := Run(Config{RouteNumber: route}, PerfectPerception{}, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if perfect.MinTTC <= 0 || perfect.MinTTC > TTCCap {
			t.Errorf("route %d: perfect MinTTC %v outside (0, %v]", route, perfect.MinTTC, TTCCap)
		}
		if perfect.MissedObstacleFrames != 0 {
			t.Errorf("route %d: perfect perception missed %d frames", route, perfect.MissedObstacleFrames)
		}
		blind, err := Run(Config{RouteNumber: route}, BlindPerception{}, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if blind.MinTTC != 0 {
			t.Errorf("route %d: blind MinTTC %v, want 0 (collides)", route, blind.MinTTC)
		}
		if blind.MissedObstacleFrames == 0 {
			t.Errorf("route %d: blind perception missed nothing", route)
		}
		if blind.MinTTC >= perfect.MinTTC {
			t.Errorf("route %d: blind MinTTC %v not below perfect %v", route, blind.MinTTC, perfect.MinTTC)
		}
	}
}

// TestValidateErrorMentionsField: the non-finite rejection must name the
// offending field so scenario search failures are debuggable.
func TestValidateErrorMentionsField(t *testing.T) {
	err := Config{RouteNumber: 1, CruiseSpeed: math.NaN()}.Validate()
	if err == nil || !strings.Contains(err.Error(), "CruiseSpeed") {
		t.Fatalf("error %v does not name CruiseSpeed", err)
	}
}
