// Package drivesim is a deterministic 2-D autonomous-driving simulator
// standing in for CARLA/OpenCDA in the paper's case study (§VII). It
// provides four town maps with two routes each (the paper's eight
// scenarios), a path-following ego vehicle with a bicycle model and PID
// speed control, scripted NPC traffic, rear-end collision dynamics, frame
// metrics (collision rate, first collision frame, skip ratio) and a
// compute-cost account that yields the FPS/CPU/GPU overhead proxies of
// Table VIII.
package drivesim

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D point or vector in metres.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Len returns the Euclidean norm.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the distance between two points.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Len() }

// Dot returns the dot product.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Heading returns the angle of v in radians.
func (v Vec2) Heading() float64 { return math.Atan2(v.Y, v.X) }

// Path is a polyline with arc-length parameterisation; routes and NPC
// trajectories are paths.
type Path struct {
	points []Vec2
	cum    []float64 // cumulative arc length at each point
}

// NewPath builds a path from at least two waypoints. Consecutive duplicate
// points are rejected.
func NewPath(points []Vec2) (*Path, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("drivesim: path needs at least 2 points, got %d", len(points))
	}
	cum := make([]float64, len(points))
	for i := 1; i < len(points); i++ {
		seg := points[i].Dist(points[i-1])
		if seg == 0 {
			return nil, fmt.Errorf("drivesim: duplicate consecutive waypoint at index %d", i)
		}
		cum[i] = cum[i-1] + seg
	}
	return &Path{points: append([]Vec2(nil), points...), cum: cum}, nil
}

// Length returns the total arc length.
func (p *Path) Length() float64 { return p.cum[len(p.cum)-1] }

// locate returns the segment index and interpolation fraction for arc
// length s (clamped to the path).
func (p *Path) locate(s float64) (int, float64) {
	if s <= 0 {
		return 0, 0
	}
	if s >= p.Length() {
		return len(p.points) - 2, 1
	}
	// Binary search over the cumulative lengths.
	lo, hi := 0, len(p.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	segLen := p.cum[lo+1] - p.cum[lo]
	return lo, (s - p.cum[lo]) / segLen
}

// PointAt returns the position at arc length s (clamped).
func (p *Path) PointAt(s float64) Vec2 {
	i, frac := p.locate(s)
	a, b := p.points[i], p.points[i+1]
	return a.Add(b.Sub(a).Scale(frac))
}

// HeadingAt returns the tangent heading at arc length s (clamped).
func (p *Path) HeadingAt(s float64) float64 {
	i, _ := p.locate(s)
	return p.points[i+1].Sub(p.points[i]).Heading()
}

// Points returns a copy of the waypoints.
func (p *Path) Points() []Vec2 {
	return append([]Vec2(nil), p.points...)
}

// NearestArcLength returns the arc length of the point on the path closest
// to q, used for route re-projection of the ego pose.
func (p *Path) NearestArcLength(q Vec2) float64 {
	best := math.Inf(1)
	bestS := 0.0
	for i := 0; i < len(p.points)-1; i++ {
		a, b := p.points[i], p.points[i+1]
		ab := b.Sub(a)
		t := q.Sub(a).Dot(ab) / ab.Dot(ab)
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		proj := a.Add(ab.Scale(t))
		if d := q.Dist(proj); d < best {
			best = d
			bestS = p.cum[i] + ab.Len()*t
		}
	}
	return bestS
}

// arcPoints appends a circular arc from angle a0 to a1 (radians) around
// centre c with the given radius, sampled every ~2 m.
func arcPoints(dst []Vec2, c Vec2, radius, a0, a1 float64) []Vec2 {
	arcLen := math.Abs(a1-a0) * radius
	steps := int(arcLen/2) + 2
	for i := 1; i <= steps; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(steps)
		dst = append(dst, Vec2{c.X + radius*math.Cos(a), c.Y + radius*math.Sin(a)})
	}
	return dst
}
