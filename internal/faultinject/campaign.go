package faultinject

import (
	"fmt"
	"runtime"

	"mvml/internal/nn"
	"mvml/internal/parallel"
	"mvml/internal/xrand"
)

// Campaigns automate what PyTorchFI-style tooling is used for in the paper's
// §II-B: injecting many independent faults and measuring the accuracy
// distribution, per layer and fault kind, to find where a model is fragile.

// Kind selects the fault model of a campaign.
type Kind int

// Campaign fault kinds.
const (
	// KindWeightValue replaces one weight with a uniform value in
	// [MinVal, MaxVal) — random_weight_inj.
	KindWeightValue Kind = iota + 1
	// KindBitFlip flips one uniformly random bit of one weight.
	KindBitFlip
	// KindStuckAtZero forces one weight to zero.
	KindStuckAtZero
)

func (k Kind) String() string {
	switch k {
	case KindWeightValue:
		return "weight-value"
	case KindBitFlip:
		return "bit-flip"
	case KindStuckAtZero:
		return "stuck-at-zero"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CampaignConfig parameterises RunCampaign.
type CampaignConfig struct {
	// Kind is the fault model.
	Kind Kind
	// Layers restricts the sweep (nil = every parameterised layer).
	Layers []int
	// TrialsPerLayer is the number of independent injections per layer.
	TrialsPerLayer int
	// MinVal, MaxVal bound KindWeightValue injections.
	MinVal, MaxVal float64
	// CriticalAccuracy classifies a trial as critical when the faulted
	// accuracy falls below this threshold.
	CriticalAccuracy float64
	// Seed drives the injections.
	Seed uint64
	// Workers bounds concurrent trials (<= 0 = GOMAXPROCS). Layer forward
	// passes record state, so concurrent trials each need a private network:
	// parallel execution requires Replicate; without it the campaign runs
	// sequentially. Every trial's stream is a pure function of (Seed, layer,
	// trial) and accuracy is evaluated on identical weights, so results are
	// identical for every worker count.
	Workers int
	// Replicate returns an independent network with the same architecture
	// and weights as the campaign target (e.g. rebuild + RestoreWeights).
	// Called once per extra worker.
	Replicate func() (*nn.Network, error)
}

// Validate reports configuration errors.
func (c CampaignConfig) Validate() error {
	switch c.Kind {
	case KindWeightValue, KindBitFlip, KindStuckAtZero:
	default:
		return fmt.Errorf("faultinject: unknown campaign kind %v", c.Kind)
	}
	if c.TrialsPerLayer < 1 {
		return fmt.Errorf("faultinject: TrialsPerLayer %d < 1", c.TrialsPerLayer)
	}
	if c.Kind == KindWeightValue && c.MaxVal <= c.MinVal {
		return fmt.Errorf("faultinject: empty value range [%v, %v)", c.MinVal, c.MaxVal)
	}
	return nil
}

// LayerImpact is the per-layer outcome of a campaign.
type LayerImpact struct {
	Layer int
	Name  string
	// Baseline is the fault-free accuracy.
	Baseline float64
	// Trials is the number of injections performed.
	Trials int
	// MeanAccuracy and MinAccuracy summarise the faulted accuracies.
	MeanAccuracy, MinAccuracy float64
	// CriticalFraction is the share of trials below CriticalAccuracy.
	CriticalFraction float64
}

// CampaignResult summarises a fault-injection campaign.
type CampaignResult struct {
	Kind     Kind
	Baseline float64
	Layers   []LayerImpact
}

// RunCampaign injects TrialsPerLayer independent faults into each targeted
// layer, measuring the model's accuracy on eval after each and reverting
// before the next. The model is returned to its pristine state.
func RunCampaign(net *nn.Network, eval []nn.Sample, cfg CampaignConfig, rng *xrand.Rand) (*CampaignResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(eval) == 0 {
		return nil, fmt.Errorf("faultinject: empty evaluation set")
	}
	if rng == nil {
		return nil, fmt.Errorf("faultinject: nil rng")
	}
	baseline, err := net.Accuracy(eval)
	if err != nil {
		return nil, err
	}
	layers := cfg.Layers
	if layers == nil {
		for _, pl := range net.ParamLayers() {
			layers = append(layers, pl.Index)
		}
	}
	paramLayers := net.ParamLayers()

	// Replica pool for concurrent trials. Injections mutate weights and
	// forward passes record per-layer state, so two in-flight trials must
	// never share a network; each worker borrows a replica (the original
	// counts as one), injects, evaluates, reverts and returns it pristine.
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Replicate == nil {
		workers = 1
	}
	if workers > cfg.TrialsPerLayer {
		workers = cfg.TrialsPerLayer
	}
	replicas := make(chan *nn.Network, workers)
	replicas <- net
	for i := 1; i < workers; i++ {
		clone, err := cfg.Replicate()
		if err != nil {
			return nil, fmt.Errorf("faultinject: replicate network: %w", err)
		}
		if clone == nil {
			return nil, fmt.Errorf("faultinject: Replicate returned a nil network")
		}
		replicas <- clone
	}
	root := xrand.New(cfg.Seed)

	res := &CampaignResult{Kind: cfg.Kind, Baseline: baseline}
	for _, layer := range layers {
		if layer < 0 || layer >= len(paramLayers) {
			return nil, fmt.Errorf("%w: %d", ErrNoSuchLayer, layer)
		}
		// Per-trial streams are Split from root by (layer, trial), exactly
		// as the sequential campaign derived them; accuracies come back in
		// trial order, so the reduction below matches the sequential one.
		accs, err := parallel.Run(root, fmt.Sprintf("campaign/%d", layer), cfg.TrialsPerLayer,
			parallel.Options{Workers: workers},
			func(trial int, r *xrand.Rand) (float64, error) {
				target := <-replicas
				defer func() { replicas <- target }()
				var inj Injection
				var err error
				switch cfg.Kind {
				case KindWeightValue:
					inj, err = RandomWeightInj(target, layer, cfg.MinVal, cfg.MaxVal, r)
				case KindBitFlip:
					inj, err = BitFlip(target, layer, r)
				case KindStuckAtZero:
					inj, err = StuckAt(target, layer, 0, r)
				}
				if err != nil {
					return 0, err
				}
				acc, err := target.Accuracy(eval)
				inj.Revert()
				return acc, err
			})
		if err != nil {
			return nil, err
		}
		impact := LayerImpact{
			Layer:       layer,
			Name:        paramLayers[layer].Name,
			Baseline:    baseline,
			MinAccuracy: 1,
		}
		var sum float64
		critical := 0
		for _, acc := range accs {
			sum += acc
			if acc < impact.MinAccuracy {
				impact.MinAccuracy = acc
			}
			if acc < cfg.CriticalAccuracy {
				critical++
			}
			impact.Trials++
		}
		impact.MeanAccuracy = sum / float64(impact.Trials)
		impact.CriticalFraction = float64(critical) / float64(impact.Trials)
		res.Layers = append(res.Layers, impact)
	}
	return res, nil
}

// Render formats the campaign outcome as a text table.
func (r *CampaignResult) Render() string {
	out := fmt.Sprintf("Fault-injection campaign (%s), baseline accuracy %.4f\n", r.Kind, r.Baseline)
	out += fmt.Sprintf("%-4s %-12s %-7s %-10s %-10s %-9s\n",
		"layer", "name", "trials", "mean acc", "min acc", "critical")
	for _, l := range r.Layers {
		out += fmt.Sprintf("%-4d %-12s %-7d %-10.4f %-10.4f %-9.2f\n",
			l.Layer, l.Name, l.Trials, l.MeanAccuracy, l.MinAccuracy, l.CriticalFraction)
	}
	return out
}
