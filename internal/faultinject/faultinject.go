// Package faultinject perturbs trained neural networks at run time, playing
// the role PyTorchFI plays in the paper: manufacturing "compromised" model
// versions whose behaviour mimics transient hardware faults (bit flips,
// stuck-at defects) or attacks on the ML framework (weight corruption). All
// injections record what they changed so they can be reverted — which is
// exactly what the rejuvenation mechanism does when it reloads a module from
// a safe memory location.
package faultinject

import (
	"errors"
	"fmt"
	"math"

	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// Injection records a single applied weight perturbation.
type Injection struct {
	LayerIndex  int     // parameterised-layer index (0-based)
	LayerName   string  // layer name for diagnostics
	TensorIndex int     // which parameter tensor within the layer
	Offset      int     // flat element offset within the tensor
	Old, New    float32 // value before and after

	target *tensor.Tensor
}

func (inj Injection) String() string {
	return fmt.Sprintf("layer %d (%s) tensor %d[%d]: %v -> %v",
		inj.LayerIndex, inj.LayerName, inj.TensorIndex, inj.Offset, inj.Old, inj.New)
}

// Revert undoes the injection. Reverting twice is harmless.
func (inj Injection) Revert() {
	if inj.target != nil {
		inj.target.Data[inj.Offset] = inj.Old
	}
}

// ErrNoSuchLayer is returned when the targeted parameterised layer does not
// exist.
var ErrNoSuchLayer = errors.New("faultinject: no such parameterised layer")

// layerAt returns the parameterised layer with the given index.
func layerAt(net *nn.Network, layer int) (nn.ParamLayer, error) {
	layers := net.ParamLayers()
	if layer < 0 || layer >= len(layers) {
		return nn.ParamLayer{}, fmt.Errorf("%w: %d (network %s has %d)",
			ErrNoSuchLayer, layer, net.Name, len(layers))
	}
	return layers[layer], nil
}

// pickWeight selects a uniformly random element of a uniformly random
// parameter tensor of the layer (weights and biases both eligible, matching
// PyTorchFI's weight-space addressing).
func pickWeight(pl nn.ParamLayer, r *xrand.Rand) (int, *tensor.Tensor, int) {
	total := 0
	for _, p := range pl.Params {
		total += p.Len()
	}
	k := r.Intn(total)
	for ti, p := range pl.Params {
		if k < p.Len() {
			return ti, p, k
		}
		k -= p.Len()
	}
	// Unreachable: k < total by construction.
	last := len(pl.Params) - 1
	return last, pl.Params[last], pl.Params[last].Len() - 1
}

// RandomWeightInj replaces one random weight of the given parameterised
// layer with a uniform value in [minVal, maxVal) — the analog of
// PyTorchFI's random_weight_inj(layer, min, max) that the paper uses with
// (1, -10, 30) for classification and (-100, 300) for the YOLO detectors.
func RandomWeightInj(net *nn.Network, layer int, minVal, maxVal float64, r *xrand.Rand) (Injection, error) {
	if maxVal <= minVal {
		return Injection{}, fmt.Errorf("faultinject: empty value range [%v, %v)", minVal, maxVal)
	}
	pl, err := layerAt(net, layer)
	if err != nil {
		return Injection{}, err
	}
	ti, p, off := pickWeight(pl, r)
	inj := Injection{
		LayerIndex:  layer,
		LayerName:   pl.Name,
		TensorIndex: ti,
		Offset:      off,
		Old:         p.Data[off],
		New:         float32(r.Uniform(minVal, maxVal)),
		target:      p,
	}
	p.Data[off] = inj.New
	return inj, nil
}

// BitFlip flips one uniformly random bit of one random weight of the layer,
// modelling a single-event upset in weight memory.
func BitFlip(net *nn.Network, layer int, r *xrand.Rand) (Injection, error) {
	pl, err := layerAt(net, layer)
	if err != nil {
		return Injection{}, err
	}
	ti, p, off := pickWeight(pl, r)
	bit := uint(r.Intn(32))
	old := p.Data[off]
	flipped := math.Float32frombits(math.Float32bits(old) ^ (1 << bit))
	inj := Injection{
		LayerIndex:  layer,
		LayerName:   pl.Name,
		TensorIndex: ti,
		Offset:      off,
		Old:         old,
		New:         flipped,
		target:      p,
	}
	p.Data[off] = flipped
	return inj, nil
}

// StuckAt forces one random weight of the layer to a fixed value, modelling
// a permanent stuck-at defect.
func StuckAt(net *nn.Network, layer int, value float32, r *xrand.Rand) (Injection, error) {
	pl, err := layerAt(net, layer)
	if err != nil {
		return Injection{}, err
	}
	ti, p, off := pickWeight(pl, r)
	inj := Injection{
		LayerIndex:  layer,
		LayerName:   pl.Name,
		TensorIndex: ti,
		Offset:      off,
		Old:         p.Data[off],
		New:         value,
		target:      p,
	}
	p.Data[off] = value
	return inj, nil
}

// GaussianWeightNoise adds N(0, sigma) noise to every weight of the layer,
// modelling broader memory corruption (e.g. a rowhammer spray). It returns
// one Injection per perturbed element; Revert them in any order to restore.
func GaussianWeightNoise(net *nn.Network, layer int, sigma float64, r *xrand.Rand) ([]Injection, error) {
	if sigma <= 0 {
		return nil, fmt.Errorf("faultinject: non-positive sigma %v", sigma)
	}
	pl, err := layerAt(net, layer)
	if err != nil {
		return nil, err
	}
	var injs []Injection
	for ti, p := range pl.Params {
		for off := range p.Data {
			old := p.Data[off]
			p.Data[off] = old + float32(r.Normal(0, sigma))
			injs = append(injs, Injection{
				LayerIndex:  layer,
				LayerName:   pl.Name,
				TensorIndex: ti,
				Offset:      off,
				Old:         old,
				New:         p.Data[off],
				target:      p,
			})
		}
	}
	return injs, nil
}

// RevertAll undoes a batch of injections.
func RevertAll(injs []Injection) {
	for _, inj := range injs {
		inj.Revert()
	}
}

// AdversarialNoise perturbs an input sample with bounded uniform noise,
// modelling a simple input-space adversarial attack (the faults rejuvenation
// does NOT defend against; used by ablation experiments). The input is
// modified in place and clamped to [0, 1].
func AdversarialNoise(x *tensor.Tensor, epsilon float64, r *xrand.Rand) error {
	if epsilon < 0 {
		return fmt.Errorf("faultinject: negative epsilon %v", epsilon)
	}
	for i := range x.Data {
		x.Data[i] += float32(r.Uniform(-epsilon, epsilon))
		if x.Data[i] < 0 {
			x.Data[i] = 0
		} else if x.Data[i] > 1 {
			x.Data[i] = 1
		}
	}
	return nil
}

// CalibrationResult describes a compromise calibrated to an accuracy band.
type CalibrationResult struct {
	Seed     uint64
	Accuracy float64
	Applied  []Injection
}

// CalibrateCompromise searches injection seeds until a single
// RandomWeightInj into the given layer drops the model's accuracy on the
// evaluation set into [minAcc, maxAcc] — reproducing the paper's per-model
// seed search (seeds 5, 183, 34) that produced compromised versions "with
// similar (reduced) accuracy". The successful injection is left applied;
// failed attempts are reverted. If no seed in [0, maxTries) lands in the
// band, the model is left unmodified and an error is returned.
func CalibrateCompromise(
	net *nn.Network,
	eval []nn.Sample,
	layer int,
	minVal, maxVal float64,
	minAcc, maxAcc float64,
	maxTries uint64,
	base *xrand.Rand,
) (CalibrationResult, error) {
	if minAcc > maxAcc {
		return CalibrationResult{}, fmt.Errorf("faultinject: empty accuracy band [%v, %v]", minAcc, maxAcc)
	}
	for seed := uint64(0); seed < maxTries; seed++ {
		r := base.Split("calibrate", seed)
		inj, err := RandomWeightInj(net, layer, minVal, maxVal, r)
		if err != nil {
			return CalibrationResult{}, err
		}
		acc, err := net.Accuracy(eval)
		if err != nil {
			inj.Revert()
			return CalibrationResult{}, err
		}
		if acc >= minAcc && acc <= maxAcc {
			return CalibrationResult{Seed: seed, Accuracy: acc, Applied: []Injection{inj}}, nil
		}
		inj.Revert()
	}
	return CalibrationResult{}, fmt.Errorf(
		"faultinject: no seed in [0,%d) drops accuracy into [%v, %v]", maxTries, minAcc, maxAcc)
}
