package faultinject

import (
	"fmt"
	"math"

	"mvml/internal/nn"
	"mvml/internal/xrand"
)

// ParseKind maps a DSL label (the Kind.String form, e.g. "weight-value")
// back to a campaign fault kind. The scenario DSL stores fault kinds as
// these labels so counterexample files stay readable and stable across
// renumberings of the Kind constants.
func ParseKind(label string) (Kind, error) {
	switch label {
	case "weight-value":
		return KindWeightValue, nil
	case "bit-flip":
		return KindBitFlip, nil
	case "stuck-at-zero":
		return KindStuckAtZero, nil
	default:
		return 0, fmt.Errorf("faultinject: unknown fault kind %q", label)
	}
}

// ScheduledFault is one timed injection in a Schedule.
type ScheduledFault struct {
	// Time is the simulated second at which the fault strikes.
	Time float64 `json:"time"`
	// Kind selects the fault model.
	Kind Kind `json:"kind"`
	// Layer is the parameterised-layer index targeted.
	Layer int `json:"layer"`
	// MinVal and MaxVal bound KindWeightValue injections (ignored
	// otherwise).
	MinVal float64 `json:"min_val,omitempty"`
	MaxVal float64 `json:"max_val,omitempty"`
}

// Schedule is a time-ordered fault-injection plan: the deterministic,
// replayable counterpart of a stochastic campaign. The scenario falsifier
// encodes compromise schedules in this form so that a counterexample found
// once replays the exact same faults at the exact same simulated times.
type Schedule []ScheduledFault

// Validate reports schedule errors: non-finite or negative times, times out
// of order, unknown kinds, or empty weight-value ranges.
func (s Schedule) Validate() error {
	prev := math.Inf(-1)
	for i, f := range s {
		if math.IsNaN(f.Time) || math.IsInf(f.Time, 0) || f.Time < 0 {
			return fmt.Errorf("faultinject: schedule[%d] has invalid time %v", i, f.Time)
		}
		if f.Time < prev {
			return fmt.Errorf("faultinject: schedule[%d] time %v before predecessor %v", i, f.Time, prev)
		}
		prev = f.Time
		switch f.Kind {
		case KindWeightValue:
			if f.MaxVal <= f.MinVal {
				return fmt.Errorf("faultinject: schedule[%d] empty value range [%v, %v)", i, f.MinVal, f.MaxVal)
			}
		case KindBitFlip, KindStuckAtZero:
		default:
			return fmt.Errorf("faultinject: schedule[%d] unknown kind %v", i, f.Kind)
		}
		if f.Layer < 0 {
			return fmt.Errorf("faultinject: schedule[%d] negative layer %d", i, f.Layer)
		}
	}
	return nil
}

// Due returns the indices of schedule entries striking in (prev, now] — the
// faults a frame-stepped simulation must apply when advancing from time
// prev to time now.
func (s Schedule) Due(prev, now float64) []int {
	var due []int
	for i, f := range s {
		if f.Time > prev && f.Time <= now {
			due = append(due, i)
		}
	}
	return due
}

// Apply injects every due entry in (prev, now] into the network, drawing
// injection randomness from per-entry Split substreams of rng so the result
// is independent of how the caller chunks time. It returns the applied
// injections in schedule order; revert them to rejuvenate.
func (s Schedule) Apply(net *nn.Network, prev, now float64, rng *xrand.Rand) ([]Injection, error) {
	var applied []Injection
	for _, i := range s.Due(prev, now) {
		f := s[i]
		r := rng.Split("schedule", uint64(i))
		var (
			inj Injection
			err error
		)
		switch f.Kind {
		case KindWeightValue:
			inj, err = RandomWeightInj(net, f.Layer, f.MinVal, f.MaxVal, r)
		case KindBitFlip:
			inj, err = BitFlip(net, f.Layer, r)
		case KindStuckAtZero:
			inj, err = StuckAt(net, f.Layer, 0, r)
		default:
			err = fmt.Errorf("faultinject: schedule[%d] unknown kind %v", i, f.Kind)
		}
		if err != nil {
			RevertAll(applied)
			return nil, err
		}
		applied = append(applied, inj)
	}
	return applied, nil
}
