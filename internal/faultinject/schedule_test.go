package faultinject

import (
	"math"
	"reflect"
	"testing"

	"mvml/internal/nn"
	"mvml/internal/signs"
	"mvml/internal/xrand"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindWeightValue, KindBitFlip, KindStuckAtZero} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("rowhammer"); err == nil {
		t.Fatal("expected error for unknown kind label")
	}
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"empty", nil, true},
		{"ordered", Schedule{
			{Time: 1, Kind: KindBitFlip},
			{Time: 2, Kind: KindWeightValue, MinVal: -1, MaxVal: 1},
		}, true},
		{"equal times", Schedule{{Time: 1, Kind: KindBitFlip}, {Time: 1, Kind: KindStuckAtZero}}, true},
		{"out of order", Schedule{{Time: 2, Kind: KindBitFlip}, {Time: 1, Kind: KindBitFlip}}, false},
		{"nan time", Schedule{{Time: math.NaN(), Kind: KindBitFlip}}, false},
		{"negative time", Schedule{{Time: -1, Kind: KindBitFlip}}, false},
		{"unknown kind", Schedule{{Time: 1, Kind: Kind(99)}}, false},
		{"empty range", Schedule{{Time: 1, Kind: KindWeightValue, MinVal: 1, MaxVal: 1}}, false},
		{"negative layer", Schedule{{Time: 1, Kind: KindBitFlip, Layer: -1}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestScheduleDue(t *testing.T) {
	s := Schedule{{Time: 1}, {Time: 2}, {Time: 2}, {Time: 5}}
	if got := s.Due(0, 2); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Due(0,2) = %v", got)
	}
	if got := s.Due(2, 4); got != nil {
		t.Fatalf("Due(2,4) = %v, want none", got)
	}
	if got := s.Due(4, 10); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("Due(4,10) = %v", got)
	}
}

// TestScheduleApplyChunkingInvariance: applying a schedule in one sweep or in
// many small time steps must inject the identical faults, because each entry
// draws from its own Split substream.
func TestScheduleApplyChunkingInvariance(t *testing.T) {
	sched := Schedule{
		{Time: 0.5, Kind: KindBitFlip, Layer: 0},
		{Time: 1.0, Kind: KindWeightValue, Layer: 1, MinVal: -10, MaxVal: 30},
		{Time: 2.5, Kind: KindStuckAtZero, Layer: 0},
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	run := func(steps int) ([]Injection, *nn.Network) {
		net := nn.NewLeNetSmall(signs.NumClasses, xrand.New(4).Split("init", 0))
		rng := xrand.New(7)
		var all []Injection
		prev := 0.0
		for i := 1; i <= steps; i++ {
			now := 3 * float64(i) / float64(steps)
			injs, err := sched.Apply(net, prev, now, rng)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, injs...)
			prev = now
		}
		return all, net
	}
	oneShot, netA := run(1)
	chunked, netB := run(60)
	if len(oneShot) != len(sched) || len(chunked) != len(sched) {
		t.Fatalf("applied %d / %d injections, want %d", len(oneShot), len(chunked), len(sched))
	}
	for i := range oneShot {
		a, b := oneShot[i], chunked[i]
		if a.LayerIndex != b.LayerIndex || a.TensorIndex != b.TensorIndex ||
			a.Offset != b.Offset || a.New != b.New {
			t.Fatalf("injection %d diverged between chunkings:\n%v\n%v", i, a, b)
		}
	}
	// The two networks must hold identical weights after the schedule...
	layersA, layersB := netA.ParamLayers(), netB.ParamLayers()
	for li := range layersA {
		for ti := range layersA[li].Params {
			da, db := layersA[li].Params[ti].Data, layersB[li].Params[ti].Data
			for off := range da {
				if da[off] != db[off] {
					t.Fatalf("weights diverged at layer %d tensor %d offset %d", li, ti, off)
				}
			}
		}
	}
	// ...and reverting must restore the pristine network (rejuvenation).
	RevertAll(oneShot)
	pristine := nn.NewLeNetSmall(signs.NumClasses, xrand.New(4).Split("init", 0))
	layersP := pristine.ParamLayers()
	for li := range layersA {
		for ti := range layersA[li].Params {
			da, dp := layersA[li].Params[ti].Data, layersP[li].Params[ti].Data
			for off := range da {
				if da[off] != dp[off] {
					t.Fatalf("revert left layer %d tensor %d offset %d modified", li, ti, off)
				}
			}
		}
	}
}

func TestScheduleApplyErrorReverts(t *testing.T) {
	net := nn.NewLeNetSmall(signs.NumClasses, xrand.New(4).Split("init", 0))
	sched := Schedule{
		{Time: 1, Kind: KindBitFlip, Layer: 0},
		{Time: 2, Kind: KindBitFlip, Layer: 999}, // no such layer
	}
	if _, err := sched.Apply(net, 0, 5, xrand.New(1)); err == nil {
		t.Fatal("expected error for out-of-range layer")
	}
	pristine := nn.NewLeNetSmall(signs.NumClasses, xrand.New(4).Split("init", 0))
	la, lp := net.ParamLayers(), pristine.ParamLayers()
	for li := range la {
		for ti := range la[li].Params {
			da, dp := la[li].Params[ti].Data, lp[li].Params[ti].Data
			for off := range da {
				if da[off] != dp[off] {
					t.Fatal("failed Apply left the network modified")
				}
			}
		}
	}
}
