package faultinject

import (
	"math"
	"testing"

	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

func testNet(t *testing.T) *nn.Network {
	t.Helper()
	return nn.NewLeNetSmall(10, xrand.New(1))
}

func TestRandomWeightInjChangesExactlyOneWeight(t *testing.T) {
	net := testNet(t)
	before := net.CloneWeights()
	inj, err := RandomWeightInj(net, 0, -10, 30, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	params := net.Params()
	for i, p := range params {
		for j := range p.Data {
			if p.Data[j] != before[i][j] {
				changed++
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d weights changed, want 1", changed)
	}
	if inj.New < -10 || inj.New >= 30 {
		t.Fatalf("injected value %v outside [-10, 30)", inj.New)
	}
	if inj.LayerIndex != 0 {
		t.Fatalf("injection targeted layer %d", inj.LayerIndex)
	}
}

func TestRandomWeightInjTargetsRequestedLayer(t *testing.T) {
	net := testNet(t)
	layers := net.ParamLayers()
	target := 2
	inj, err := RandomWeightInj(net, target, 0, 1, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if inj.LayerName != layers[target].Name {
		t.Fatalf("injected into %q, want %q", inj.LayerName, layers[target].Name)
	}
	// The changed value must live in one of that layer's tensors.
	found := false
	for _, p := range layers[target].Params {
		for _, v := range p.Data {
			if v == inj.New {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("injected value not found in target layer")
	}
}

func TestRevertRestoresWeight(t *testing.T) {
	net := testNet(t)
	before := net.CloneWeights()
	inj, err := RandomWeightInj(net, 1, -10, 30, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	inj.Revert()
	params := net.Params()
	for i, p := range params {
		for j := range p.Data {
			if p.Data[j] != before[i][j] {
				t.Fatal("revert did not restore original weights")
			}
		}
	}
	inj.Revert() // double revert is harmless
}

func TestRandomWeightInjErrors(t *testing.T) {
	net := testNet(t)
	if _, err := RandomWeightInj(net, 99, 0, 1, xrand.New(1)); err == nil {
		t.Fatal("expected error for bad layer")
	}
	if _, err := RandomWeightInj(net, 0, 5, 5, xrand.New(1)); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestBitFlipChangesBitPattern(t *testing.T) {
	net := testNet(t)
	inj, err := BitFlip(net, 0, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	oldBits := math.Float32bits(inj.Old)
	newBits := math.Float32bits(inj.New)
	diff := oldBits ^ newBits
	if diff == 0 {
		t.Fatal("bit flip changed nothing")
	}
	if diff&(diff-1) != 0 {
		t.Fatalf("more than one bit flipped: %032b", diff)
	}
}

func TestStuckAt(t *testing.T) {
	net := testNet(t)
	inj, err := StuckAt(net, 0, 0, xrand.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if inj.New != 0 {
		t.Fatalf("stuck-at value %v, want 0", inj.New)
	}
}

func TestGaussianWeightNoisePerturbsWholeLayer(t *testing.T) {
	net := testNet(t)
	pl := net.ParamLayers()[0]
	var layerSize int
	for _, p := range pl.Params {
		layerSize += p.Len()
	}
	injs, err := GaussianWeightNoise(net, 0, 0.1, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(injs) != layerSize {
		t.Fatalf("%d injections, want %d", len(injs), layerSize)
	}
	RevertAll(injs)
	// After revert, all weights should equal the originals.
	for _, inj := range injs {
		if inj.target.Data[inj.Offset] != inj.Old {
			t.Fatal("RevertAll did not restore weights")
		}
	}
}

func TestGaussianWeightNoiseRejectsBadSigma(t *testing.T) {
	net := testNet(t)
	if _, err := GaussianWeightNoise(net, 0, 0, xrand.New(1)); err == nil {
		t.Fatal("expected error for sigma 0")
	}
}

func TestAdversarialNoiseBoundedAndClamped(t *testing.T) {
	r := xrand.New(8)
	x := tensor.New(100)
	x.Fill(0.5)
	orig := x.Clone()
	if err := AdversarialNoise(x, 0.1, r); err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		d := math.Abs(float64(x.Data[i] - orig.Data[i]))
		if d > 0.1+1e-6 {
			t.Fatalf("perturbation %v exceeds epsilon", d)
		}
	}
	// Clamping: start at 1.0, noise cannot push above 1.
	x.Fill(1)
	if err := AdversarialNoise(x, 0.5, r); err != nil {
		t.Fatal(err)
	}
	for _, v := range x.Data {
		if v > 1 || v < 0 {
			t.Fatalf("value %v escaped [0,1]", v)
		}
	}
	if err := AdversarialNoise(x, -1, r); err == nil {
		t.Fatal("expected error for negative epsilon")
	}
}

// syntheticEval builds samples a fresh LeNet classifies arbitrarily; we only
// need a deterministic evaluation set for calibration tests.
func syntheticEval(n int, r *xrand.Rand) []nn.Sample {
	samples := make([]nn.Sample, n)
	for i := range samples {
		x := tensor.New(nn.InputChannels, nn.InputSize, nn.InputSize)
		x.RandomizeUniform(r, 0, 1)
		samples[i] = nn.Sample{X: x, Label: i % 10}
	}
	return samples
}

func TestCalibrateCompromiseFindsBand(t *testing.T) {
	net := testNet(t)
	r := xrand.New(9)
	eval := syntheticEval(40, r)
	baseAcc, err := net.Accuracy(eval)
	if err != nil {
		t.Fatal(err)
	}
	// A band that includes the base accuracy must be reachable: even a
	// harmless injection lands in it.
	res, err := CalibrateCompromise(net, eval, 0, -0.01, 0.01, 0, 1, 50, r)
	if err != nil {
		t.Fatalf("calibration failed (base acc %v): %v", baseAcc, err)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Fatalf("calibrated accuracy %v", res.Accuracy)
	}
	if len(res.Applied) != 1 {
		t.Fatalf("%d injections applied, want 1", len(res.Applied))
	}
}

func TestCalibrateCompromiseUnreachableBandRestoresModel(t *testing.T) {
	net := testNet(t)
	r := xrand.New(10)
	eval := syntheticEval(30, r)
	before := net.CloneWeights()
	// Accuracy > 1 is impossible, so calibration must fail and restore.
	_, err := CalibrateCompromise(net, eval, 0, -10, 30, 1.5, 2.0, 5, r)
	if err == nil {
		t.Fatal("expected calibration failure")
	}
	params := net.Params()
	for i, p := range params {
		for j := range p.Data {
			if p.Data[j] != before[i][j] {
				t.Fatal("failed calibration left the model modified")
			}
		}
	}
}

func TestCalibrateCompromiseBadBand(t *testing.T) {
	net := testNet(t)
	if _, err := CalibrateCompromise(net, nil, 0, 0, 1, 0.9, 0.1, 5, xrand.New(1)); err == nil {
		t.Fatal("expected error for inverted band")
	}
}

func TestInjectionString(t *testing.T) {
	net := testNet(t)
	inj, err := RandomWeightInj(net, 0, -1, 1, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if inj.String() == "" {
		t.Fatal("empty injection description")
	}
}
