package faultinject

import (
	"strings"
	"testing"

	"mvml/internal/xrand"
)

func campaignConfig() CampaignConfig {
	return CampaignConfig{
		Kind:             KindWeightValue,
		TrialsPerLayer:   4,
		MinVal:           -10,
		MaxVal:           30,
		CriticalAccuracy: 0.05,
		Seed:             7,
	}
}

func TestCampaignValidation(t *testing.T) {
	bad := campaignConfig()
	bad.Kind = Kind(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	bad = campaignConfig()
	bad.TrialsPerLayer = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for zero trials")
	}
	bad = campaignConfig()
	bad.MinVal, bad.MaxVal = 5, 5
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestCampaignSweepsAllLayersAndRestores(t *testing.T) {
	net := testNet(t)
	eval := syntheticEval(30, xrand.New(3))
	before := net.CloneWeights()

	res, err := RunCampaign(net, eval, campaignConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != len(net.ParamLayers()) {
		t.Fatalf("swept %d layers, want %d", len(res.Layers), len(net.ParamLayers()))
	}
	for _, l := range res.Layers {
		if l.Trials != 4 {
			t.Fatalf("layer %d ran %d trials", l.Layer, l.Trials)
		}
		if l.MeanAccuracy < 0 || l.MeanAccuracy > 1 || l.MinAccuracy > l.MeanAccuracy+1e-12 {
			t.Fatalf("layer %d stats inconsistent: %+v", l.Layer, l)
		}
		if l.CriticalFraction < 0 || l.CriticalFraction > 1 {
			t.Fatalf("layer %d critical fraction %v", l.Layer, l.CriticalFraction)
		}
	}
	// The model is pristine afterwards.
	params := net.Params()
	for i, p := range params {
		for j := range p.Data {
			if p.Data[j] != before[i][j] {
				t.Fatal("campaign left the model modified")
			}
		}
	}
	if !strings.Contains(res.Render(), "baseline") {
		t.Fatal("render broken")
	}
}

func TestCampaignRespectsLayerSelection(t *testing.T) {
	net := testNet(t)
	eval := syntheticEval(20, xrand.New(5))
	cfg := campaignConfig()
	cfg.Layers = []int{0, 2}
	cfg.Kind = KindBitFlip
	res, err := RunCampaign(net, eval, cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 2 || res.Layers[0].Layer != 0 || res.Layers[1].Layer != 2 {
		t.Fatalf("unexpected layer selection: %+v", res.Layers)
	}
	cfg.Layers = []int{99}
	if _, err := RunCampaign(net, eval, cfg, xrand.New(2)); err == nil {
		t.Fatal("expected error for bad layer")
	}
}

func TestCampaignStuckAtZero(t *testing.T) {
	net := testNet(t)
	eval := syntheticEval(20, xrand.New(6))
	cfg := campaignConfig()
	cfg.Kind = KindStuckAtZero
	cfg.TrialsPerLayer = 2
	if _, err := RunCampaign(net, eval, cfg, xrand.New(3)); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignErrors(t *testing.T) {
	net := testNet(t)
	if _, err := RunCampaign(net, nil, campaignConfig(), xrand.New(1)); err == nil {
		t.Fatal("expected error for empty eval set")
	}
	if _, err := RunCampaign(net, syntheticEval(5, xrand.New(1)), campaignConfig(), nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestKindString(t *testing.T) {
	if KindWeightValue.String() != "weight-value" || KindBitFlip.String() != "bit-flip" ||
		KindStuckAtZero.String() != "stuck-at-zero" {
		t.Fatal("Kind.String broken")
	}
}
