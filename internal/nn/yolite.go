package nn

import (
	"fmt"
	"math"

	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// YOLite is a miniature single-stage grid detector in the spirit of the
// YOLOv5 variants the paper deploys in CARLA: one forward pass over a
// coarse ego-centric sensor raster predicts, for every cell of a GxG grid,
// an objectness logit and the (dx, dy) offset of the object inside the
// cell. It exists so the perception pipeline can also be exercised with a
// real network in the loop (weight faults injected by faultinject, weights
// reloaded by rejuvenation), complementing the statistical detector model
// used for the large Table VI sweeps.
const (
	// YOLiteInputSize is the side length of the square input raster.
	YOLiteInputSize = 16
	// YOLiteGrid is the detection grid resolution (GxG cells).
	YOLiteGrid = 4
	// YOLiteChannels is the per-cell prediction layout: objectness logit,
	// x offset, y offset.
	YOLiteChannels = 3
)

// NewYOLite builds the detector network: three stride/pool stages reduce
// the 16x16 raster to the 4x4 grid, and a 1x1 convolution head emits
// (objectness, dx, dy) per cell.
func NewYOLite(r *xrand.Rand) *Network {
	return &Network{
		Name: "yolite",
		Layers: []Layer{
			NewConv2D("conv1", 1, 8, 3, 1, 1, r.Split("yolite-conv1", 0)),
			NewReLU("relu1"),
			NewConv2D("conv2", 8, 16, 3, 2, 1, r.Split("yolite-conv2", 0)), // 16 -> 8
			NewReLU("relu2"),
			NewConv2D("conv3", 16, 16, 3, 2, 1, r.Split("yolite-conv3", 0)), // 8 -> 4
			NewReLU("relu3"),
			NewConv2D("head", 16, YOLiteChannels, 1, 1, 0, r.Split("yolite-head", 0)),
		},
	}
}

// GridTarget is the training target for one raster: per-cell objectness and
// offsets, shape (YOLiteChannels, YOLiteGrid, YOLiteGrid) with objectness in
// {0,1} and offsets in [0,1] (meaningful only for occupied cells).
type GridTarget = tensor.Tensor

// Sigmoid returns 1/(1+e^-x).
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// YOLiteLoss computes the detection loss for one sample and the gradient
// w.r.t. the network output: binary cross-entropy on the objectness channel
// plus squared-error on the offsets of occupied cells (weighted by
// offsetWeight). Both pred and target must have the YOLite output shape.
func YOLiteLoss(pred, target *tensor.Tensor) (float64, *tensor.Tensor, error) {
	wantLen := YOLiteChannels * YOLiteGrid * YOLiteGrid
	if pred.Len() != wantLen || target.Len() != wantLen {
		return 0, nil, fmt.Errorf("nn: YOLite loss wants %d elements, got pred %d target %d",
			wantLen, pred.Len(), target.Len())
	}
	const offsetWeight = 2.0
	cells := YOLiteGrid * YOLiteGrid
	grad := tensor.New(pred.Shape...)
	var loss float64
	for c := 0; c < cells; c++ {
		logit := pred.Data[c]
		p := Sigmoid(logit)
		y := target.Data[c]
		// BCE with logits; clamp for numerical safety.
		pc := math.Min(math.Max(float64(p), 1e-7), 1-1e-7)
		loss += -(float64(y)*math.Log(pc) + (1-float64(y))*math.Log(1-pc))
		grad.Data[c] = p - y // d(BCE)/d(logit)
		if y > 0.5 {
			// Offset regression for occupied cells only.
			for ch := 1; ch < YOLiteChannels; ch++ {
				idx := ch*cells + c
				diff := pred.Data[idx] - target.Data[idx]
				loss += offsetWeight * float64(diff) * float64(diff)
				grad.Data[idx] = 2 * offsetWeight * diff
			}
		}
	}
	return loss, grad, nil
}

// GridDetection is one decoded detection in raster coordinates (pixels of
// the input raster, origin at its top-left corner).
type GridDetection struct {
	X, Y       float64
	Confidence float64
}

// DecodeYOLite converts a network output into detections: cells whose
// objectness probability exceeds threshold yield one detection at the cell
// origin plus the predicted offset (offsets are clamped to the cell).
func DecodeYOLite(pred *tensor.Tensor, threshold float64) ([]GridDetection, error) {
	wantLen := YOLiteChannels * YOLiteGrid * YOLiteGrid
	if pred.Len() != wantLen {
		return nil, fmt.Errorf("nn: DecodeYOLite wants %d elements, got %d", wantLen, pred.Len())
	}
	cells := YOLiteGrid * YOLiteGrid
	cellSize := float64(YOLiteInputSize) / YOLiteGrid
	var out []GridDetection
	for c := 0; c < cells; c++ {
		conf := float64(Sigmoid(pred.Data[c]))
		if conf < threshold {
			continue
		}
		cy := c / YOLiteGrid
		cx := c % YOLiteGrid
		dx := clamp01(float64(pred.Data[cells+c]))
		dy := clamp01(float64(pred.Data[2*cells+c]))
		out = append(out, GridDetection{
			X:          (float64(cx) + dx) * cellSize,
			Y:          (float64(cy) + dy) * cellSize,
			Confidence: conf,
		})
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// YOLiteSample is one training example: raster plus grid target.
type YOLiteSample struct {
	Raster *tensor.Tensor
	Target *tensor.Tensor
}

// TrainYOLiteBatch accumulates detection-loss gradients over a batch and
// applies one optimiser step, returning the mean loss.
func TrainYOLiteBatch(net *Network, batch []YOLiteSample, opt *SGD) (float64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("nn: empty YOLite batch")
	}
	net.ZeroGrads()
	var total float64
	for _, s := range batch {
		out, err := net.Forward(s.Raster, true)
		if err != nil {
			return 0, err
		}
		loss, grad, err := YOLiteLoss(out, s.Target)
		if err != nil {
			return 0, err
		}
		total += loss
		if err := net.Backward(grad); err != nil {
			return 0, err
		}
	}
	if err := opt.Step(net.Params(), net.Grads(), len(batch)); err != nil {
		return 0, err
	}
	return total / float64(len(batch)), nil
}
