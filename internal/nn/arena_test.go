package nn

import (
	"math"
	"testing"

	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// TestForwardBatchArenaMatchesPerSample: the arena-backed fused-GEMM path
// must reproduce the per-sample Forward logits bit for bit on all three
// architectures, including with parallel GEMM tiles and across arena reuse
// (dirty buffers must be fully overwritten).
func TestForwardBatchArenaMatchesPerSample(t *testing.T) {
	for _, name := range AllModels() {
		t.Run(name.String(), func(t *testing.T) {
			net, err := NewModel(name, 7, xrand.New(uint64(name)))
			if err != nil {
				t.Fatal(err)
			}
			xs := randomBatch(5, xrand.New(42))
			batch, err := Stack(xs)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]float32, len(xs))
			for i, x := range xs {
				single, err := net.Forward(x, false)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = single.Data
			}
			for _, workers := range []int{0, 4} {
				ar := NewInferenceArena()
				ar.GemmWorkers = workers
				for round := 0; round < 2; round++ { // round 1 reuses dirty buffers
					out, err := net.ForwardBatchArena(batch, ar)
					if err != nil {
						t.Fatal(err)
					}
					for i := range xs {
						row := out.Data[i*7 : (i+1)*7]
						for j, v := range want[i] {
							if math.Float32bits(row[j]) != math.Float32bits(v) {
								t.Fatalf("workers=%d round=%d sample %d logit %d: arena %v, per-sample %v",
									workers, round, i, j, row[j], v)
							}
						}
					}
				}
			}
		})
	}
}

// TestPredictBatchArenaZeroAllocs is the steady-state serving guarantee: with
// a warmed arena and a reused prediction slice, a full conv-net batch predict
// performs zero heap allocations.
func TestPredictBatchArenaZeroAllocs(t *testing.T) {
	for _, name := range AllModels() {
		t.Run(name.String(), func(t *testing.T) {
			net, err := NewModel(name, 7, xrand.New(uint64(name)))
			if err != nil {
				t.Fatal(err)
			}
			batch, err := Stack(randomBatch(8, xrand.New(8)))
			if err != nil {
				t.Fatal(err)
			}
			ar := NewInferenceArena()
			preds, err := net.PredictBatchArena(batch, ar, nil) // warm the arena
			if err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				preds, err = net.PredictBatchArena(batch, ar, preds)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state PredictBatchArena allocates %.1f objects per call, want 0", allocs)
			}
		})
	}
}

// TestPredictBatchArenaMatchesPredictBatch: same classes, reused preds slice.
func TestPredictBatchArenaMatchesPredictBatch(t *testing.T) {
	net, err := NewModel(ModelLeNet, 7, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Stack(randomBatch(6, xrand.New(2)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.PredictBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := net.PredictBatchArena(batch, NewInferenceArena(), make([]int, 0, 6))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("sample %d: arena class %d, PredictBatch class %d", i, got[i], w)
		}
	}
}

// TestMaxPoolNaNConsistency is the regression for the -Inf/-1 seeding bug:
// on an all-NaN window Forward used to return -Inf with argmax -1 (Backward
// then panicked on dx.Data[-1]) while ForwardBatch returned NaN. Both paths
// now seed with the window's first element, so NaN propagates identically
// and Backward routes the gradient to a real index.
func TestMaxPoolNaNConsistency(t *testing.T) {
	nan := float32(math.NaN())
	pool := NewMaxPool2D("pool", 2)
	for _, tc := range []struct {
		name string
		data []float32
	}{
		{"all-NaN", []float32{nan, nan, nan, nan}},
		{"NaN-first", []float32{nan, 5, 1, 2}},
		{"NaN-later", []float32{1, nan, 3, 2}},
		{"finite", []float32{1, 5, 3, 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x, err := tensor.FromSlice(append([]float32(nil), tc.data...), 1, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			y, err := pool.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			xb, err := tensor.FromSlice(append([]float32(nil), tc.data...), 1, 1, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			yb, err := pool.ForwardBatch(xb)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float32bits(y.Data[0]) != math.Float32bits(yb.Data[0]) {
				t.Fatalf("Forward %v, ForwardBatch %v", y.Data[0], yb.Data[0])
			}
			grad := tensor.New(1, 1, 1)
			grad.Fill(1)
			if _, err := pool.Backward(grad); err != nil { // used to panic on dx.Data[-1]
				t.Fatal(err)
			}
		})
	}
}

// TestReLUNaNConsistency: Forward used to zero NaN activations (v > 0 false)
// while ForwardBatch kept them; both must now propagate NaN.
func TestReLUNaNConsistency(t *testing.T) {
	nan := float32(math.NaN())
	relu := NewReLU("relu")
	x, err := tensor.FromSlice([]float32{nan, -1, 2}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := relu.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yb, err := relu.ForwardBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(y.Data[0])) {
		t.Fatalf("Forward zeroed a NaN activation: got %v", y.Data[0])
	}
	for i := range y.Data {
		if math.Float32bits(y.Data[i]) != math.Float32bits(yb.Data[i]) {
			t.Fatalf("element %d: Forward %v, ForwardBatch %v", i, y.Data[i], yb.Data[i])
		}
	}
}

// TestDenseBackwardInputAliasing is the regression for the lastX aliasing
// hazard: a caller that reuses its input buffer between Forward and Backward
// must still get gradients computed from the values seen at Forward time.
func TestDenseBackwardInputAliasing(t *testing.T) {
	r := xrand.New(7)
	d := NewDense("fc", 3, 2, r)
	x, err := tensor.FromSlice([]float32{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	x.Fill(-100) // caller reuses its buffer before Backward
	grad, err := tensor.FromSlice([]float32{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Backward(grad); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3, 1, 2, 3} // dW[o][i] = grad[o] * x_forward[i]
	for i, v := range want {
		if d.dW.Data[i] != v {
			t.Fatalf("dW[%d] = %v, want %v (gradient computed from mutated buffer)", i, d.dW.Data[i], v)
		}
	}
}
