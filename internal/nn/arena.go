package nn

import (
	"fmt"

	"mvml/internal/tensor"
)

// InferenceArena owns the reusable scratch buffers of the fused batched-GEMM
// inference path: im2col column matrices, GEMM outputs and per-layer
// activations, keyed by layer so every layer of a network keeps a stable
// buffer across requests. After the first request at a given batch size the
// steady-state serving hot path performs zero heap allocations.
//
// An arena is NOT safe for concurrent use — give every serving worker its
// own arena, exactly as every worker owns its own network replica. Tensors
// returned by arena-backed calls are owned by the arena and remain valid
// only until the next call that uses the same arena.
type InferenceArena struct {
	// GemmWorkers bounds the row-tile fan-out of the convolution GEMMs;
	// <= 1 runs sequentially. Outputs are bitwise identical for every
	// worker count (see tensor.GemmParallel), so this only trades CPU for
	// latency on large batches.
	GemmWorkers int

	// Profiler, when non-nil, receives per-layer timings and GEMM shapes
	// from every dispatch through this arena (see ForwardProfiler). The
	// default nil costs one branch per layer.
	Profiler ForwardProfiler

	// DisablePacking forces Conv2D and Dense back onto the unpacked fused
	// kernels (tensor.GemmParallel / GemmTransB). Answers are bitwise
	// identical either way — this knob exists so benchmarks can measure the
	// packed kernels against the baseline on the same code path.
	DisablePacking bool

	// Quant, when non-nil, switches every layer with a calibrated activation
	// scale onto the int8 quantized kernels (see CalibrateInt8). Layers
	// without a scale keep the float path, so a partially calibrated network
	// still serves.
	Quant *QuantParams

	bufs map[arenaKey]*tensor.Tensor
	// packed caches per-layer packed GEMM operands; weight panels inside are
	// keyed against weightEpoch and lazily repacked after InvalidateWeights.
	packed map[Layer]*packedLayer
	// weightEpoch counts InvalidateWeights calls. It starts at 1 so the
	// zero-valued epoch of a fresh packedLayer is always stale.
	weightEpoch uint64
	// observer, when non-nil, sees every (layer, input) pair ahead of
	// dispatch — the calibration hook.
	observer func(l Layer, x *tensor.Tensor)
	// profLayer labels GEMM observations with the layer currently being
	// dispatched; maintained by profiledForward.
	profLayer string
}

// arenaPurpose distinguishes the scratch buffers one layer may hold.
type arenaPurpose uint8

const (
	arenaCols arenaPurpose = iota // im2col column matrix
	arenaGemm                     // raw GEMM output before bias/reorder
	arenaOut                      // layer activation output
	arenaView                     // zero-copy reshaped view header
)

type arenaKey struct {
	owner   Layer
	purpose arenaPurpose
}

// NewInferenceArena returns an empty arena; buffers are grown on demand.
func NewInferenceArena() *InferenceArena {
	return &InferenceArena{
		bufs:        make(map[arenaKey]*tensor.Tensor),
		packed:      make(map[Layer]*packedLayer),
		weightEpoch: 1,
	}
}

// tensor returns the buffer for (owner, purpose) shaped as requested,
// growing the backing storage when needed. Contents are unspecified — the
// caller must overwrite every element (the tensor kernels above write, never
// accumulate, so reuse is safe).
func (a *InferenceArena) tensor(owner Layer, purpose arenaPurpose, shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	t := a.header(owner, purpose, shape)
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
	}
	t.Data = t.Data[:n]
	return t
}

// view returns a tensor header for (owner, purpose) aliasing the given data
// — the zero-allocation counterpart of Reshape, used by Flatten.
func (a *InferenceArena) view(owner Layer, purpose arenaPurpose, data []float32, shape ...int) *tensor.Tensor {
	t := a.header(owner, purpose, shape)
	t.Data = data
	return t
}

// header returns the cached tensor header for (owner, purpose) with its
// Shape set, leaving Data to the caller.
func (a *InferenceArena) header(owner Layer, purpose arenaPurpose, shape []int) *tensor.Tensor {
	key := arenaKey{owner: owner, purpose: purpose}
	t := a.bufs[key]
	if t == nil {
		t = &tensor.Tensor{}
		a.bufs[key] = t
	}
	if cap(t.Shape) < len(shape) {
		t.Shape = make([]int, len(shape))
	}
	t.Shape = t.Shape[:len(shape)]
	copy(t.Shape, shape)
	return t
}

// ArenaBatchLayer is the zero-allocation batched fast path: like BatchLayer,
// but writing into buffers borrowed from the arena instead of allocating.
// Implementations must never mutate their input tensor (residual blocks read
// it again for the skip path) and must return either the input itself or an
// arena-owned buffer.
type ArenaBatchLayer interface {
	ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error)
}

// Compile-time checks: every built-in layer provides the arena fast path.
var (
	_ ArenaBatchLayer = (*Center)(nil)
	_ ArenaBatchLayer = (*Dense)(nil)
	_ ArenaBatchLayer = (*Conv2D)(nil)
	_ ArenaBatchLayer = (*ReLU)(nil)
	_ ArenaBatchLayer = (*MaxPool2D)(nil)
	_ ArenaBatchLayer = (*GlobalAvgPool)(nil)
	_ ArenaBatchLayer = (*Flatten)(nil)
	_ ArenaBatchLayer = (*Dropout)(nil)
	_ ArenaBatchLayer = (*Residual)(nil)
)

// ForwardBatchArena runs batched inference through the arena-backed fused
// path where layers support it, falling back to BatchLayer and then to the
// per-sample loop. With a reused arena the steady state allocates nothing.
func (n *Network) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	return forwardBatchLayers(n.Layers, x, ar)
}

// PredictBatchArena returns the argmax class per batch row via the fused
// path. preds is reused when its capacity suffices and allocated otherwise;
// pass nil for a fresh slice (e.g. when the result outlives the next call).
func (n *Network) PredictBatchArena(x *tensor.Tensor, ar *InferenceArena, preds []int) ([]int, error) {
	out, err := n.ForwardBatchArena(x, ar)
	if err != nil {
		return nil, err
	}
	return argmaxRows(out, preds), nil
}

// argmaxRows writes the per-row argmax of a (B, classes) tensor into preds,
// growing it only when capacity is insufficient.
func argmaxRows(out *tensor.Tensor, preds []int) []int {
	b := out.Shape[0]
	stride := out.Len() / b
	if cap(preds) < b {
		preds = make([]int, b)
	}
	preds = preds[:b]
	for i := 0; i < b; i++ {
		row := out.Data[i*stride : (i+1)*stride]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		preds[i] = best
	}
	return preds
}

// ForwardBatchArena implements ArenaBatchLayer (elementwise shift).
func (l *Center) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	y := ar.tensor(l, arenaOut, x.Shape...)
	off := l.Offset
	for i, v := range x.Data {
		y.Data[i] = v - off
	}
	return y, nil
}

// ForwardBatchArena implements ArenaBatchLayer with one (B, in) × (out, in)ᵀ
// GEMM into the arena, bitwise identical to the per-sample dot products. By
// default the input is packed into register-block panels and multiplied
// against the cached packed Wᵀ (repacked only after InvalidateWeights); with
// a calibrated activation scale on ar.Quant the whole product runs in int8.
func (d *Dense) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	out, in := d.W.Shape[0], d.W.Shape[1]
	if len(x.Shape) != 2 || x.Shape[1] != in {
		return nil, fmt.Errorf("dense %s: batched input shape %v, want (B, %d)", d.name, x.Shape, in)
	}
	b := x.Shape[0]
	if xs, ok := ar.Quant.Scale(d); ok {
		y, err := d.forwardArenaInt8(x, xs, b, out, in, ar)
		if err != nil {
			return nil, fmt.Errorf("dense %s: %w", d.name, err)
		}
		return y, nil
	}
	y := ar.tensor(d, arenaOut, b, out)
	if ar.DisablePacking {
		if err := tensor.GemmTransB(y, x, d.W); err != nil {
			return nil, fmt.Errorf("dense %s: %w", d.name, err)
		}
	} else {
		p, err := ar.denseWeightsPacked(d)
		if err != nil {
			return nil, fmt.Errorf("dense %s: %w", d.name, err)
		}
		if err := p.actA.Pack(x); err != nil {
			return nil, fmt.Errorf("dense %s: %w", d.name, err)
		}
		if err := tensor.GemmPackedParallel(y, &p.actA, &p.wB, ar.GemmWorkers); err != nil {
			return nil, fmt.Errorf("dense %s: %w", d.name, err)
		}
	}
	ar.noteGemm(b, out, in)
	for i := 0; i < b; i++ {
		row := y.Data[i*out : (i+1)*out]
		for o := range row {
			row[o] += d.B.Data[o]
		}
	}
	return y, nil
}

// ForwardBatchArena implements ArenaBatchLayer: the whole batch is unrolled
// into one column matrix and convolved with a single GEMM — one kernel
// dispatch per layer instead of one per sample, with zero steady-state
// allocations.
func (c *Conv2D) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("conv %s: want (B,C,H,W) input, got %v", c.name, x.Shape)
	}
	outC, inC := c.Kernel.Shape[0], c.Kernel.Shape[1]
	kh, kw := c.Kernel.Shape[2], c.Kernel.Shape[3]
	if x.Shape[1] != inC {
		return nil, fmt.Errorf("conv %s: input channels %d, want %d", c.name, x.Shape[1], inC)
	}
	b := x.Shape[0]
	oh, ow := tensor.Conv2DShape(x.Shape[2], x.Shape[3], kh, kw, c.Stride, c.Pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("conv %s: empty output for input %v", c.name, x.Shape)
	}
	spatial := oh * ow

	cols := ar.tensor(c, arenaCols, inC*kh*kw, b*spatial)
	if err := tensor.Im2ColBatch(x, kh, kw, c.Stride, c.Pad, cols); err != nil {
		return nil, fmt.Errorf("conv %s: %w", c.name, err)
	}
	if xs, ok := ar.Quant.Scale(c); ok {
		out, err := c.forwardArenaInt8(cols, xs, b, outC, oh, ow, ar)
		if err != nil {
			return nil, fmt.Errorf("conv %s: %w", c.name, err)
		}
		return out, nil
	}
	y := ar.tensor(c, arenaGemm, outC, b*spatial)
	if ar.DisablePacking {
		if err := tensor.GemmParallel(y, c.kernelMatrix(), cols, ar.GemmWorkers); err != nil {
			return nil, fmt.Errorf("conv %s: %w", c.name, err)
		}
	} else {
		p, err := ar.convWeightsPacked(c)
		if err != nil {
			return nil, fmt.Errorf("conv %s: %w", c.name, err)
		}
		if err := p.actB.Pack(cols); err != nil {
			return nil, fmt.Errorf("conv %s: %w", c.name, err)
		}
		if err := tensor.GemmPackedParallel(y, &p.wA, &p.actB, ar.GemmWorkers); err != nil {
			return nil, fmt.Errorf("conv %s: %w", c.name, err)
		}
	}
	ar.noteGemm(outC, b*spatial, inC*kh*kw)
	// Reorder (outC, B·oh·ow) → (B, outC, oh, ow), adding the bias on the
	// way: per (sample, channel) the run is contiguous on both sides.
	out := ar.tensor(c, arenaOut, b, outC, oh, ow)
	for bi := 0; bi < b; bi++ {
		dst := out.Data[bi*outC*spatial : (bi+1)*outC*spatial]
		for o := 0; o < outC; o++ {
			bias := c.Bias.Data[o]
			src := y.Data[o*b*spatial+bi*spatial : o*b*spatial+(bi+1)*spatial]
			row := dst[o*spatial : (o+1)*spatial]
			for j, v := range src {
				row[j] = v + bias
			}
		}
	}
	return out, nil
}

// ForwardBatchArena implements ArenaBatchLayer. NaN activations propagate
// (v <= 0 is false for NaN), matching Forward and ForwardBatch.
func (l *ReLU) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	y := ar.tensor(l, arenaOut, x.Shape...)
	for i, v := range x.Data {
		if v <= 0 {
			y.Data[i] = 0
		} else {
			y.Data[i] = v
		}
	}
	return y, nil
}

// ForwardBatchArena implements ArenaBatchLayer for (B, C, H, W) inputs.
func (l *MaxPool2D) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("maxpool %s: want (B,C,H,W) input, got %v", l.name, x.Shape)
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	s := l.Size
	oh, ow := h/s, w/s
	if oh == 0 || ow == 0 {
		return nil, fmt.Errorf("maxpool %s: input %v smaller than window %d", l.name, x.Shape, s)
	}
	y := ar.tensor(l, arenaOut, b, c, oh, ow)
	oi := 0
	for i := 0; i < b; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := x.Data[base+(oy*s)*w+ox*s]
					for dy := 0; dy < s; dy++ {
						rowBase := base + (oy*s+dy)*w + ox*s
						for dx := 0; dx < s; dx++ {
							if v := x.Data[rowBase+dx]; v > best {
								best = v
							}
						}
					}
					y.Data[oi] = best
					oi++
				}
			}
		}
	}
	return y, nil
}

// ForwardBatchArena implements ArenaBatchLayer, reducing (B,C,H,W) to (B,C).
func (l *GlobalAvgPool) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("gap %s: want (B,C,H,W) input, got %v", l.name, x.Shape)
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := ar.tensor(l, arenaOut, b, c)
	inv := float32(1 / float64(h*w))
	for i := 0; i < b; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			var sum float32
			for _, v := range x.Data[base : base+h*w] {
				sum += v
			}
			y.Data[i*c+ch] = sum * inv
		}
	}
	return y, nil
}

// ForwardBatchArena implements ArenaBatchLayer with a cached header aliasing
// the input — a Reshape without the allocation.
func (l *Flatten) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	b := x.Shape[0]
	return ar.view(l, arenaView, x.Data, b, x.Len()/b), nil
}

// ForwardBatchArena implements ArenaBatchLayer: dropout is the identity at
// inference.
func (l *Dropout) ForwardBatchArena(x *tensor.Tensor, _ *InferenceArena) (*tensor.Tensor, error) {
	return x, nil
}

// ForwardBatchArena implements ArenaBatchLayer. Body layers write into their
// own arena buffers and never mutate x, so the skip path reads x unchanged
// after the body has run.
func (l *Residual) ForwardBatchArena(x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	y, err := forwardBatchLayers(l.Body, x, ar)
	if err != nil {
		return nil, fmt.Errorf("residual %s body: %w", l.name, err)
	}
	skip := x
	if l.Proj != nil {
		skip, err = forwardOneBatch(l.Proj, x, ar)
		if err != nil {
			return nil, fmt.Errorf("residual %s proj: %w", l.name, err)
		}
	}
	out := ar.tensor(l, arenaOut, y.Shape...)
	copy(out.Data, y.Data)
	if err := out.AddInPlace(skip); err != nil {
		return nil, fmt.Errorf("residual %s: body and skip shapes incompatible: %w", l.name, err)
	}
	return out, nil
}
