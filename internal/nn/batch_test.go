package nn

import (
	"fmt"
	"testing"

	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// randomBatch renders B random image-shaped inputs.
func randomBatch(b int, r *xrand.Rand) []*tensor.Tensor {
	xs := make([]*tensor.Tensor, b)
	for i := range xs {
		x := tensor.New(InputChannels, InputSize, InputSize)
		x.RandomizeUniform(r, 0, 1)
		xs[i] = x
	}
	return xs
}

func TestStack(t *testing.T) {
	r := xrand.New(1)
	xs := randomBatch(3, r)
	batch, err := Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, InputChannels, InputSize, InputSize}
	for i, d := range want {
		if batch.Shape[i] != d {
			t.Fatalf("shape %v, want %v", batch.Shape, want)
		}
	}
	stride := xs[0].Len()
	for i, x := range xs {
		for j, v := range x.Data {
			if batch.Data[i*stride+j] != v {
				t.Fatalf("sample %d element %d not copied", i, j)
			}
		}
	}
	if _, err := Stack(nil); err == nil {
		t.Fatal("expected error for empty batch")
	}
	bad := []*tensor.Tensor{tensor.New(2), tensor.New(3)}
	if _, err := Stack(bad); err == nil {
		t.Fatal("expected error for mismatched sample shapes")
	}
}

// TestForwardBatchMatchesPerSample is the core equivalence property: for all
// three classifier architectures, the batched path must produce exactly the
// logits (and therefore predictions) of the per-sample path.
func TestForwardBatchMatchesPerSample(t *testing.T) {
	for _, name := range AllModels() {
		t.Run(name.String(), func(t *testing.T) {
			net, err := NewModel(name, 7, xrand.New(uint64(name)))
			if err != nil {
				t.Fatal(err)
			}
			xs := randomBatch(5, xrand.New(99))
			batch, err := Stack(xs)
			if err != nil {
				t.Fatal(err)
			}
			out, err := net.ForwardBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if out.Shape[0] != 5 || out.Shape[1] != 7 {
				t.Fatalf("batched output shape %v, want (5, 7)", out.Shape)
			}
			preds, err := net.PredictBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range xs {
				single, err := net.Forward(x, false)
				if err != nil {
					t.Fatal(err)
				}
				row := out.Data[i*7 : (i+1)*7]
				for j, v := range single.Data {
					if row[j] != v {
						t.Fatalf("sample %d logit %d: batched %v, per-sample %v", i, j, row[j], v)
					}
				}
				if preds[i] != single.ArgMax() {
					t.Fatalf("sample %d: batched class %d, per-sample %d", i, preds[i], single.ArgMax())
				}
			}
		})
	}
}

// opaqueLayer hides a Center layer's batched path, forcing the per-sample
// fallback inside ForwardBatch.
type opaqueLayer struct{ inner *Center }

func (l *opaqueLayer) Name() string { return "opaque" }
func (l *opaqueLayer) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	return l.inner.Forward(x, train)
}
func (l *opaqueLayer) Backward(g *tensor.Tensor) (*tensor.Tensor, error) { return g, nil }
func (l *opaqueLayer) Params() []*tensor.Tensor                          { return nil }
func (l *opaqueLayer) Grads() []*tensor.Tensor                           { return nil }

func TestForwardBatchFallbackForUnbatchableLayer(t *testing.T) {
	r := xrand.New(3)
	net := &Network{Name: "probe", Layers: []Layer{
		&opaqueLayer{inner: NewCenter("center", 0.5)},
		NewFlatten("flat"),
		NewDense("fc", InputChannels*InputSize*InputSize, 4, r),
	}}
	xs := randomBatch(3, xrand.New(4))
	batch, err := Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.ForwardBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		single, err := net.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range single.Data {
			if out.Data[i*4+j] != v {
				t.Fatalf("fallback diverges at sample %d logit %d", i, j)
			}
		}
	}
}

// TestForwardBatchLeavesTrainingStateAlone: a batched inference between a
// Forward and its Backward must not corrupt the recorded activations.
func TestForwardBatchLeavesTrainingStateAlone(t *testing.T) {
	r := xrand.New(5)
	net := &Network{Name: "probe", Layers: []Layer{
		NewFlatten("flat"),
		NewDense("fc1", 6, 5, r),
		NewReLU("relu"),
		NewDense("fc2", 5, 3, r),
	}}
	x := tensor.New(2, 3)
	x.RandomizeUniform(r, -1, 1)

	// Reference gradient: forward + backward with nothing in between.
	out, err := net.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := SoftmaxCrossEntropy(out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(grad.Clone()); err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), net.Grads()[0].Data...)

	// Same forward, then a batched inference, then the backward.
	net.ZeroGrads()
	out2, err := net.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.New(4, 2, 3)
	batch.RandomizeUniform(xrand.New(7), -1, 1)
	if _, err := net.ForwardBatch(batch); err != nil {
		t.Fatal(err)
	}
	_, grad2, err := SoftmaxCrossEntropy(out2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(grad2.Clone()); err != nil {
		t.Fatal(err)
	}
	got := net.Grads()[0].Data
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gradient %d perturbed by batched inference: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestForwardBatchRejectsScalarShape(t *testing.T) {
	net, err := NewModel(ModelLeNet, 4, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.ForwardBatch(tensor.New(5)); err == nil {
		t.Fatal("expected error for input without a batch dimension")
	}
}

func BenchmarkForwardPerSample(b *testing.B) {
	benchForward(b, false)
}

func BenchmarkForwardBatched(b *testing.B) {
	benchForward(b, true)
}

func benchForward(b *testing.B, batched bool) {
	for _, name := range AllModels() {
		b.Run(fmt.Sprintf("%v", name), func(b *testing.B) {
			net, err := NewModel(name, 43, xrand.New(uint64(name)))
			if err != nil {
				b.Fatal(err)
			}
			xs := randomBatch(16, xrand.New(2))
			batch, err := Stack(xs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if batched {
					if _, err := net.PredictBatch(batch); err != nil {
						b.Fatal(err)
					}
				} else {
					for _, x := range xs {
						if _, err := net.Predict(x); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}
