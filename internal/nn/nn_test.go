package nn

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// lossOf runs a forward pass and returns the cross-entropy loss.
func lossOf(t *testing.T, net *Network, x *tensor.Tensor, label int) float64 {
	t.Helper()
	out, err := net.Forward(x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	loss, _, err := SoftmaxCrossEntropy(out, label)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

// checkGradients compares analytic parameter gradients against central
// finite differences for a single sample. Networks containing kinked
// activations (ReLU, max pooling) are piecewise smooth: a finite-difference
// probe that crosses an activation boundary produces a biased estimate for
// that one coordinate. maxBadFrac is the tolerated fraction of such sampled
// coordinates; pass 0 for kink-free stacks, where every coordinate must
// match.
func checkGradients(t *testing.T, net *Network, x *tensor.Tensor, label int, maxBadFrac float64) {
	t.Helper()
	net.ZeroGrads()
	out, err := net.Forward(x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := SoftmaxCrossEntropy(out, label)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}

	params, grads := net.Params(), net.Grads()
	const eps = 1e-2
	checked, bad := 0, 0
	var firstBad string
	for pi, p := range params {
		stride := p.Len()/20 + 1 // sample ~20 coordinates per tensor
		for j := 0; j < p.Len(); j += stride {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lossPlus := lossOf(t, net, x, label)
			p.Data[j] = orig - eps
			lossMinus := lossOf(t, net, x, label)
			p.Data[j] = orig

			numeric := (lossPlus - lossMinus) / (2 * eps)
			analytic := float64(grads[pi].Data[j])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1e-2, math.Max(math.Abs(numeric), math.Abs(analytic)))
			checked++
			if diff/scale > 0.08 {
				bad++
				if firstBad == "" {
					firstBad = fmt.Sprintf("param %d[%d]: analytic %v vs numeric %v", pi, j, analytic, numeric)
				}
			}
		}
	}
	if float64(bad) > maxBadFrac*float64(checked) {
		t.Errorf("%d/%d sampled gradients mismatched (budget %.0f%%); first: %s",
			bad, checked, maxBadFrac*100, firstBad)
	}
}

func TestDenseGradients(t *testing.T) {
	r := xrand.New(1)
	net := &Network{Name: "dense-test", Layers: []Layer{
		NewDense("fc1", 6, 5, r),
		NewReLU("relu"),
		NewDense("fc2", 5, 3, r),
	}}
	x := tensor.New(6)
	x.RandomizeUniform(r, -1, 1)
	checkGradients(t, net, x, 1, 0.05)
}

func TestConvGradients(t *testing.T) {
	r := xrand.New(2)
	net := &Network{Name: "conv-test", Layers: []Layer{
		NewConv2D("conv", 2, 3, 3, 1, 1, r),
		NewReLU("relu"),
		NewFlatten("flat"),
		NewDense("fc", 3*5*5, 4, r),
	}}
	x := tensor.New(2, 5, 5)
	x.RandomizeUniform(r, -1, 1)
	checkGradients(t, net, x, 2, 0.15)
}

func TestConvStridedGradients(t *testing.T) {
	r := xrand.New(3)
	net := &Network{Name: "conv-stride-test", Layers: []Layer{
		NewConv2D("conv", 1, 2, 3, 2, 1, r),
		NewFlatten("flat"),
		NewDense("fc", 2*3*3, 3, r),
	}}
	x := tensor.New(1, 6, 6)
	x.RandomizeUniform(r, -1, 1)
	checkGradients(t, net, x, 0, 0)
}

func TestMaxPoolGradients(t *testing.T) {
	r := xrand.New(4)
	net := &Network{Name: "pool-test", Layers: []Layer{
		NewConv2D("conv", 1, 2, 3, 1, 1, r),
		NewMaxPool2D("pool", 2),
		NewFlatten("flat"),
		NewDense("fc", 2*3*3, 3, r),
	}}
	x := tensor.New(1, 6, 6)
	x.RandomizeUniform(r, -1, 1)
	checkGradients(t, net, x, 1, 0.2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	r := xrand.New(5)
	net := &Network{Name: "gap-test", Layers: []Layer{
		NewConv2D("conv", 1, 4, 3, 1, 1, r),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 4, 3, r),
	}}
	x := tensor.New(1, 5, 5)
	x.RandomizeUniform(r, -1, 1)
	checkGradients(t, net, x, 2, 0)
}

func TestResidualIdentityGradients(t *testing.T) {
	r := xrand.New(6)
	block := NewResidual("res", nil,
		NewConv2D("c1", 2, 2, 3, 1, 1, r),
		NewReLU("r1"),
		NewConv2D("c2", 2, 2, 3, 1, 1, r),
	)
	net := &Network{Name: "res-test", Layers: []Layer{
		block,
		NewFlatten("flat"),
		NewDense("fc", 2*4*4, 3, r),
	}}
	x := tensor.New(2, 4, 4)
	x.RandomizeUniform(r, -1, 1)
	checkGradients(t, net, x, 0, 0.1)
}

func TestResidualProjectionGradients(t *testing.T) {
	r := xrand.New(7)
	block := NewResidual("res",
		NewConv2D("proj", 2, 4, 1, 1, 0, r),
		NewConv2D("c1", 2, 4, 3, 1, 1, r),
		NewReLU("r1"),
		NewConv2D("c2", 4, 4, 3, 1, 1, r),
	)
	net := &Network{Name: "res-proj-test", Layers: []Layer{
		block,
		NewGlobalAvgPool("gap"),
		NewDense("fc", 4, 3, r),
	}}
	x := tensor.New(2, 4, 4)
	x.RandomizeUniform(r, -1, 1)
	checkGradients(t, net, x, 1, 0.15)
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	pool := NewMaxPool2D("pool", 2)
	x, err := tensor.FromSlice([]float32{
		1, 2, 5, 0,
		3, 4, 1, 1,
		9, 0, 2, 8,
		0, 0, 7, 3,
	}, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	y, err := pool.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	wantY := []float32{4, 5, 9, 8}
	for i, w := range wantY {
		if y.Data[i] != w {
			t.Fatalf("pooled output %v, want %v", y.Data, wantY)
		}
	}
	grad, err := tensor.FromSlice([]float32{10, 20, 30, 40}, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dx, err := pool.Backward(grad)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient must land exactly on each window's argmax.
	wantDX := []float32{
		0, 0, 20, 0,
		0, 10, 0, 0,
		30, 0, 0, 40,
		0, 0, 0, 0,
	}
	for i, w := range wantDX {
		if dx.Data[i] != w {
			t.Fatalf("routed gradient %v, want %v", dx.Data, wantDX)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	logits, _ := tensor.FromSlice([]float32{2, -1, 0.5, 100}, 4)
	p := Softmax(logits)
	var sum float64
	for _, v := range p.Data {
		if v < 0 || v > 1 {
			t.Fatalf("softmax value out of range: %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if p.ArgMax() != 3 {
		t.Fatal("softmax should preserve argmax")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over k classes → loss = ln(k).
	logits := tensor.New(4)
	loss, grad, err := SoftmaxCrossEntropy(logits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln(4)", loss)
	}
	// Gradient = probs - onehot: 0.25 everywhere except -0.75 at label.
	for i, g := range grad.Data {
		want := float32(0.25)
		if i == 2 {
			want = -0.75
		}
		if math.Abs(float64(g-want)) > 1e-6 {
			t.Fatalf("grad[%d] = %v, want %v", i, g, want)
		}
	}
}

func TestCrossEntropyBadLabel(t *testing.T) {
	if _, _, err := SoftmaxCrossEntropy(tensor.New(3), 5); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
}

// blobs generates two well-separated Gaussian clusters as vectors.
func blobs(r *xrand.Rand, n, dim int) []Sample {
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		label := i % 2
		center := -1.0
		if label == 1 {
			center = 1.0
		}
		x := tensor.New(dim)
		for j := range x.Data {
			x.Data[j] = float32(r.Normal(center, 0.4))
		}
		samples = append(samples, Sample{X: x, Label: label})
	}
	return samples
}

func TestTrainingLearnsSeparableData(t *testing.T) {
	r := xrand.New(8)
	net := &Network{Name: "mlp", Layers: []Layer{
		NewDense("fc1", 8, 16, r),
		NewReLU("relu"),
		NewDense("fc2", 16, 2, r),
	}}
	train := blobs(r, 200, 8)
	test := blobs(r.Split("test", 0), 100, 8)

	opt := NewSGD(0.1, 0.9)
	for epoch := 0; epoch < 10; epoch++ {
		for i := 0; i < len(train); i += 20 {
			if _, err := net.TrainBatch(train[i:i+20], opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	acc, err := net.Accuracy(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("accuracy %v after training on separable blobs", acc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	r := xrand.New(9)
	net := NewLeNetSmall(4, r)
	batch := make([]Sample, 8)
	for i := range batch {
		x := tensor.New(InputChannels, InputSize, InputSize)
		x.RandomizeUniform(r, 0, 1)
		batch[i] = Sample{X: x, Label: i % 4}
	}
	opt := NewSGD(0.05, 0.9)
	first, err := net.TrainBatch(batch, opt)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 30; i++ {
		last, err = net.TrainBatch(batch, opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
}

func TestModelForwardShapes(t *testing.T) {
	r := xrand.New(10)
	for _, name := range AllModels() {
		net, err := NewModel(name, 43, r.Split(name.String(), 0))
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.New(InputChannels, InputSize, InputSize)
		x.RandomizeUniform(r, 0, 1)
		out, err := net.Forward(x, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Len() != 43 {
			t.Fatalf("%s output size %d, want 43", name, out.Len())
		}
		if net.ParamCount() == 0 {
			t.Fatalf("%s has no parameters", name)
		}
	}
}

func TestModelsAreDiverse(t *testing.T) {
	r := xrand.New(11)
	counts := map[ModelName]int{}
	for _, name := range AllModels() {
		net, err := NewModel(name, 10, r.Split(name.String(), 0))
		if err != nil {
			t.Fatal(err)
		}
		counts[name] = net.ParamCount()
	}
	if counts[ModelAlexNet] == counts[ModelLeNet] || counts[ModelLeNet] == counts[ModelResNet] {
		t.Fatalf("architectures should differ in size: %v", counts)
	}
}

func TestNewModelUnknown(t *testing.T) {
	if _, err := NewModel(ModelName(99), 10, xrand.New(1)); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestParamLayers(t *testing.T) {
	r := xrand.New(12)
	net := NewLeNetSmall(10, r)
	pls := net.ParamLayers()
	if len(pls) != 5 { // conv1, conv2, fc1, fc2, fc3
		t.Fatalf("LeNetSmall has %d parameterised layers, want 5", len(pls))
	}
	for i, pl := range pls {
		if pl.Index != i {
			t.Fatalf("param layer %d has index %d", i, pl.Index)
		}
		if len(pl.Params) == 0 {
			t.Fatalf("param layer %s has no params", pl.Name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := xrand.New(13)
	src := NewLeNetSmall(10, r.Split("src", 0))
	dst := NewLeNetSmall(10, r.Split("dst", 0))

	x := tensor.New(InputChannels, InputSize, InputSize)
	x.RandomizeUniform(r, 0, 1)

	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := src.Forward(x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Forward(x.Clone(), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded network computes different outputs")
		}
	}
}

func TestLoadWeightsArchMismatch(t *testing.T) {
	r := xrand.New(14)
	src := NewLeNetSmall(10, r.Split("a", 0))
	dst := NewAlexNetSmall(10, r.Split("b", 0))
	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadWeights(&buf); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestCloneRestoreWeights(t *testing.T) {
	r := xrand.New(15)
	net := NewLeNetSmall(10, r)
	saved := net.CloneWeights()

	// Corrupt a weight, then restore.
	net.Params()[0].Data[0] = 999
	if err := net.RestoreWeights(saved); err != nil {
		t.Fatal(err)
	}
	if net.Params()[0].Data[0] == 999 {
		t.Fatal("RestoreWeights did not undo corruption")
	}

	// Saved copy must be independent of live weights.
	net.Params()[0].Data[0] = 123
	if saved[0][0] == 123 {
		t.Fatal("CloneWeights aliases live weights")
	}
}

func TestErrorSet(t *testing.T) {
	r := xrand.New(16)
	net := &Network{Name: "mlp", Layers: []Layer{
		NewDense("fc1", 4, 8, r),
		NewReLU("relu"),
		NewDense("fc2", 8, 2, r),
	}}
	samples := blobs(r, 50, 4)
	errs, err := net.ErrorSet(samples)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := net.Accuracy(samples)
	if err != nil {
		t.Fatal(err)
	}
	wantErrs := int(math.Round((1 - acc) * float64(len(samples))))
	if len(errs) != wantErrs {
		t.Fatalf("error set size %d inconsistent with accuracy %v", len(errs), acc)
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	r := xrand.New(17)
	d := NewDropout("drop", 0.5, r)
	x := tensor.New(100)
	x.RandomizeUniform(r, -1, 1)
	y, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("dropout altered values at inference")
		}
	}
}

func TestDropoutTrainPreservesExpectation(t *testing.T) {
	r := xrand.New(18)
	d := NewDropout("drop", 0.3, r)
	x := tensor.New(10000)
	x.Fill(1)
	y, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	zeros := 0
	for _, v := range y.Data {
		sum += float64(v)
		if v == 0 {
			zeros++
		}
	}
	mean := sum / float64(len(y.Data))
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("inverted dropout mean %v, want ≈1", mean)
	}
	frac := float64(zeros) / float64(len(y.Data))
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("dropped fraction %v, want ≈0.3", frac)
	}
}

func TestSGDStepErrors(t *testing.T) {
	opt := NewSGD(0.1, 0.9)
	p := tensor.New(3)
	g := tensor.New(3)
	if err := opt.Step([]*tensor.Tensor{p}, nil, 1); err == nil {
		t.Fatal("expected mismatch error")
	}
	if err := opt.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g}, 0); err == nil {
		t.Fatal("expected batch-size error")
	}
}

func TestForwardErrorPropagatesLayerName(t *testing.T) {
	r := xrand.New(19)
	net := &Network{Name: "bad", Layers: []Layer{NewDense("fc", 4, 2, r)}}
	if _, err := net.Forward(tensor.New(7), false); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func BenchmarkLeNetForward(b *testing.B) {
	r := xrand.New(1)
	net := NewLeNetSmall(43, r)
	x := tensor.New(InputChannels, InputSize, InputSize)
	x.RandomizeUniform(r, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResNetForward(b *testing.B) {
	r := xrand.New(1)
	net := NewResNetSmall(43, r)
	x := tensor.New(InputChannels, InputSize, InputSize)
	x.RandomizeUniform(r, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}
