package nn

import (
	"errors"
	"fmt"

	"mvml/internal/tensor"
)

// QuantParams holds the per-layer activation scales of a calibrated int8
// inference configuration. Scales are keyed by layer identity, so params
// calibrated on one network replica must not be shared with another — each
// serving replica calibrates its own (the scales come out identical because
// replicas share weights and the calibration set is fixed, but the keys do
// not transfer).
//
// Weight scales are NOT stored here: they derive from the weights themselves
// and are recomputed whenever the arena repacks after a weight swap, so a
// compromised-then-rejuvenated layer is always quantized against its current
// weights.
type QuantParams struct {
	scales map[Layer]tensor.Int8Scale
}

// Scale returns the calibrated input-activation scale for l.
func (q *QuantParams) Scale(l Layer) (tensor.Int8Scale, bool) {
	if q == nil {
		return tensor.Int8Scale{}, false
	}
	s, ok := q.scales[l]
	return s, ok
}

// Layers reports how many layers have calibrated scales.
func (q *QuantParams) Layers() int {
	if q == nil {
		return 0
	}
	return len(q.scales)
}

// CalibrateInt8 runs the calibration set through the float32 arena path and
// records, for every Conv2D and Dense layer, the maximum absolute input
// activation observed (for convolutions the maximum is taken over the im2col
// column matrix, which contains exactly the values the quantized kernel will
// consume — padding zeros included). The symmetric scale mapping that maximum
// to ±127 becomes the layer's activation scale.
//
// The maximum over a set is independent of batch splits and visit order, so
// calibration is deterministic for a given network and sample set.
func CalibrateInt8(n *Network, samples []Sample, batchSize int) (*QuantParams, error) {
	if len(samples) == 0 {
		return nil, errors.New("nn: int8 calibration needs at least one sample")
	}
	if batchSize < 1 {
		batchSize = 32
	}
	maxAbs := make(map[Layer]float32)
	ar := NewInferenceArena()
	ar.observer = func(l Layer, x *tensor.Tensor) {
		switch l.(type) {
		case *Conv2D:
			// The conv kernel quantizes the column matrix, not x itself, but
			// im2col only rearranges (and zero-pads) x's values: max|cols| ==
			// max(max|x|, 0), and MaxAbs of a non-empty tensor is >= 0 already.
			if m := tensor.MaxAbs(x.Data); m > maxAbs[l] {
				maxAbs[l] = m
			}
		case *Dense:
			if m := tensor.MaxAbs(x.Data); m > maxAbs[l] {
				maxAbs[l] = m
			}
		}
	}
	xs := make([]*tensor.Tensor, 0, batchSize)
	for start := 0; start < len(samples); start += batchSize {
		end := start + batchSize
		if end > len(samples) {
			end = len(samples)
		}
		xs = xs[:0]
		for _, s := range samples[start:end] {
			xs = append(xs, s.X)
		}
		batch, err := Stack(xs)
		if err != nil {
			return nil, fmt.Errorf("nn: int8 calibration: %w", err)
		}
		if _, err := n.ForwardBatchArena(batch, ar); err != nil {
			return nil, fmt.Errorf("nn: int8 calibration: %w", err)
		}
	}
	q := &QuantParams{scales: make(map[Layer]tensor.Int8Scale, len(maxAbs))}
	for l, m := range maxAbs {
		q.scales[l] = tensor.Int8ScaleFor(m)
	}
	return q, nil
}

// growInt32 returns buf with length n, reusing its storage when possible.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// packedLayer is the arena's per-layer cache of packed GEMM operands. Weight
// panels (and the int8 weight scale) are rebuilt whenever their epoch falls
// behind the arena's weight epoch — i.e. after every weight swap the arena is
// told about via InvalidateWeights. Activation panels and the int32
// accumulator are per-call scratch whose backing storage persists so the
// steady state allocates nothing.
type packedLayer struct {
	// Float path: conv caches the kernel matrix as the A operand, dense
	// caches Wᵀ as the B operand.
	wEpoch uint64
	wA     tensor.PackedA
	wB     tensor.PackedB
	actA   tensor.PackedA // dense input panels (per call)
	actB   tensor.PackedB // conv column panels (per call)

	// Int8 path: quantized weight panels plus the weight scale they were
	// quantized with.
	qwEpoch uint64
	wScale  tensor.Int8Scale
	qwA     tensor.PackedAInt8
	qwB     tensor.PackedBInt8
	qactA   tensor.PackedAInt8 // dense input panels (per call)
	qactB   tensor.PackedBInt8 // conv column panels (per call)
	acc     []int32            // int32 GEMM output (per call)
}

// packedFor returns l's packed-operand cache, creating it on first use.
func (a *InferenceArena) packedFor(l Layer) *packedLayer {
	p := a.packed[l]
	if p == nil {
		p = &packedLayer{}
		a.packed[l] = p
	}
	return p
}

// InvalidateWeights marks every cached packed weight panel stale. Serving
// workers call this after any weight swap on their replica — fault injection,
// rejuvenation restore, weight adoption on resize — so the next forward pass
// repacks (and, on the int8 path, re-quantizes) from the current weights.
// The float activations buffers need no invalidation: they are fully
// overwritten on every call.
func (a *InferenceArena) InvalidateWeights() {
	a.weightEpoch++
}

// convWeightsPacked returns c's packed kernel-matrix panels, repacking when
// the arena's weight epoch moved.
func (a *InferenceArena) convWeightsPacked(c *Conv2D) (*packedLayer, error) {
	p := a.packedFor(c)
	if p.wEpoch != a.weightEpoch {
		if err := p.wA.Pack(c.kernelMatrix()); err != nil {
			return nil, err
		}
		p.wEpoch = a.weightEpoch
	}
	return p, nil
}

// denseWeightsPacked returns d's packed Wᵀ panels, repacking when the
// arena's weight epoch moved.
func (a *InferenceArena) denseWeightsPacked(d *Dense) (*packedLayer, error) {
	p := a.packedFor(d)
	if p.wEpoch != a.weightEpoch {
		if err := p.wB.PackTransposed(d.W); err != nil {
			return nil, err
		}
		p.wEpoch = a.weightEpoch
	}
	return p, nil
}

// convWeightsQuantized returns c's int8 kernel-matrix panels, re-quantizing
// from the current weights when the arena's weight epoch moved.
func (a *InferenceArena) convWeightsQuantized(c *Conv2D) (*packedLayer, error) {
	p := a.packedFor(c)
	if p.qwEpoch != a.weightEpoch {
		p.wScale = tensor.Int8ScaleFor(tensor.MaxAbs(c.Kernel.Data))
		if err := p.qwA.Pack(c.kernelMatrix(), p.wScale.Inv); err != nil {
			return nil, err
		}
		p.qwEpoch = a.weightEpoch
	}
	return p, nil
}

// denseWeightsQuantized returns d's int8 Wᵀ panels, re-quantizing from the
// current weights when the arena's weight epoch moved.
func (a *InferenceArena) denseWeightsQuantized(d *Dense) (*packedLayer, error) {
	p := a.packedFor(d)
	if p.qwEpoch != a.weightEpoch {
		p.wScale = tensor.Int8ScaleFor(tensor.MaxAbs(d.W.Data))
		if err := p.qwB.PackTransposed(d.W, p.wScale.Inv); err != nil {
			return nil, err
		}
		p.qwEpoch = a.weightEpoch
	}
	return p, nil
}

// forwardArenaInt8 is the quantized convolution kernel dispatch: the column
// matrix is quantized with the calibrated activation scale, multiplied
// against the int8 weight panels in exact int32 arithmetic, and dequantized
// while the bias/reorder pass writes the output. Shape checks and the column
// matrix itself are shared with the float path in ForwardBatchArena.
func (c *Conv2D) forwardArenaInt8(cols *tensor.Tensor, xs tensor.Int8Scale,
	b, outC, oh, ow int, ar *InferenceArena) (*tensor.Tensor, error) {
	spatial := oh * ow
	p, err := ar.convWeightsQuantized(c)
	if err != nil {
		return nil, err
	}
	if err := p.qactB.Pack(cols, xs.Inv); err != nil {
		return nil, err
	}
	p.acc = growInt32(p.acc, outC*b*spatial)
	if err := tensor.GemmInt8PackedParallel(p.acc, &p.qwA, &p.qactB, ar.GemmWorkers); err != nil {
		return nil, err
	}
	ar.noteGemm(outC, b*spatial, cols.Shape[0])
	// Dequantize fused into the (outC, B·oh·ow) → (B, outC, oh, ow) reorder:
	// one multiply per element on top of the float path's bias add.
	scale := p.wScale.Scale * xs.Scale
	out := ar.tensor(c, arenaOut, b, outC, oh, ow)
	for bi := 0; bi < b; bi++ {
		dst := out.Data[bi*outC*spatial : (bi+1)*outC*spatial]
		for o := 0; o < outC; o++ {
			bias := c.Bias.Data[o]
			src := p.acc[o*b*spatial+bi*spatial : o*b*spatial+(bi+1)*spatial]
			row := dst[o*spatial : (o+1)*spatial]
			for j, v := range src {
				row[j] = float32(v)*scale + bias
			}
		}
	}
	return out, nil
}

// forwardArenaInt8 is the quantized dense dispatch: the input batch is
// quantized row-wise with the calibrated activation scale and multiplied
// against the int8 Wᵀ panels; the bias pass dequantizes.
func (d *Dense) forwardArenaInt8(x *tensor.Tensor, xs tensor.Int8Scale,
	b, out, in int, ar *InferenceArena) (*tensor.Tensor, error) {
	p, err := ar.denseWeightsQuantized(d)
	if err != nil {
		return nil, err
	}
	if err := p.qactA.Pack(x, xs.Inv); err != nil {
		return nil, err
	}
	p.acc = growInt32(p.acc, b*out)
	if err := tensor.GemmInt8PackedParallel(p.acc, &p.qactA, &p.qwB, ar.GemmWorkers); err != nil {
		return nil, err
	}
	ar.noteGemm(b, out, in)
	scale := p.wScale.Scale * xs.Scale
	y := ar.tensor(d, arenaOut, b, out)
	for i := 0; i < b; i++ {
		src := p.acc[i*out : (i+1)*out]
		row := y.Data[i*out : (i+1)*out]
		for o, v := range src {
			row[o] = float32(v)*scale + d.B.Data[o]
		}
	}
	return y, nil
}
