// Package nn is a small, deterministic neural-network library: the substrate
// standing in for PyTorch in this reproduction. It provides the layers needed
// by the three classifier architectures the paper trains (LeNet, AlexNet,
// ResNet50 — reproduced here as size-reduced variants with the same
// structural diversity), per-sample backpropagation with mini-batch gradient
// accumulation, SGD with momentum, and weight snapshots for serialisation
// and fault injection.
package nn

import (
	"errors"
	"fmt"
	"math"

	"mvml/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward must record
// whatever it needs for the next Backward call; layers are therefore
// stateful and not safe for concurrent use. Inference-only callers pass
// train=false, which skips regularisation noise such as dropout.
type Layer interface {
	// Name identifies the layer for diagnostics and fault targeting.
	Name() string
	// Forward computes the layer output for a single sample.
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	// Backward consumes the gradient w.r.t. the layer output and returns
	// the gradient w.r.t. the layer input, accumulating parameter
	// gradients internally.
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient accumulators aligned with Params.
	Grads() []*tensor.Tensor
}

// Network is an ordered stack of layers with a human-readable name
// (e.g. "lenet-small").
type Network struct {
	Name   string
	Layers []Layer
}

// Forward runs a single sample through every layer.
func (n *Network) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for _, l := range n.Layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %s: %w", l.Name(), err)
		}
	}
	return x, nil
}

// Backward propagates an output gradient through the stack in reverse.
func (n *Network) Backward(grad *tensor.Tensor) error {
	var err error
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad, err = n.Layers[i].Backward(grad)
		if err != nil {
			return fmt.Errorf("nn: layer %s backward: %w", n.Layers[i].Name(), err)
		}
	}
	return nil
}

// Predict returns the argmax class for one input sample.
func (n *Network) Predict(x *tensor.Tensor) (int, error) {
	out, err := n.Forward(x, false)
	if err != nil {
		return 0, err
	}
	return out.ArgMax(), nil
}

// Params returns every trainable tensor in the network, in layer order.
func (n *Network) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads returns every gradient accumulator, aligned with Params.
func (n *Network) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range n.Layers {
		gs = append(gs, l.Grads()...)
	}
	return gs
}

// ZeroGrads clears all gradient accumulators.
func (n *Network) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Len()
	}
	return total
}

// ParamLayer pairs a layer index with its parameter tensors; the fault
// injector uses this to target "layer k" the way PyTorchFI does.
type ParamLayer struct {
	Index  int // position among parameterised layers (0-based)
	Name   string
	Params []*tensor.Tensor
}

// ParamLayers lists the layers that carry trainable parameters, in network
// order. Layer 0 is the first parameterised layer, matching the paper's
// "inject into layer 1" convention up to the off-by-one of their tool.
func (n *Network) ParamLayers() []ParamLayer {
	var out []ParamLayer
	idx := 0
	for _, l := range n.Layers {
		if ps := l.Params(); len(ps) > 0 {
			out = append(out, ParamLayer{Index: idx, Name: l.Name(), Params: ps})
			idx++
		}
	}
	return out
}

// Softmax converts logits to a probability vector (numerically stabilised).
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(logits.Shape...)
	maxv := logits.Data[0]
	for _, v := range logits.Data[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits.Data {
		e := math.Exp(float64(v - maxv))
		out.Data[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out.Data {
		out.Data[i] *= inv
	}
	return out
}

// ErrBadLabel is returned when a class label is outside the logit range.
var ErrBadLabel = errors.New("nn: label out of range")

// SoftmaxCrossEntropy returns the cross-entropy loss for one sample and the
// gradient of the loss w.r.t. the logits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (float64, *tensor.Tensor, error) {
	if label < 0 || label >= logits.Len() {
		return 0, nil, fmt.Errorf("%w: %d with %d classes", ErrBadLabel, label, logits.Len())
	}
	probs := Softmax(logits)
	p := float64(probs.Data[label])
	if p < 1e-12 {
		p = 1e-12
	}
	loss := -math.Log(p)
	grad := probs // reuse: grad = probs - onehot(label)
	grad.Data[label]--
	return loss, grad, nil
}

// SGD is stochastic gradient descent with classical momentum and optional L2
// weight decay, the optimiser the paper's training setup uses.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD returns an optimiser with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*tensor.Tensor]*tensor.Tensor)}
}

// Step applies one update to every parameter given its accumulated gradient
// scaled by 1/batchSize, then the caller should zero the gradients.
func (o *SGD) Step(params, grads []*tensor.Tensor, batchSize int) error {
	if len(params) != len(grads) {
		return fmt.Errorf("nn: %d params but %d grads", len(params), len(grads))
	}
	if batchSize <= 0 {
		return fmt.Errorf("nn: non-positive batch size %d", batchSize)
	}
	scale := float32(1 / float64(batchSize))
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for i, p := range params {
		g := grads[i]
		if p.Len() != g.Len() {
			return fmt.Errorf("nn: param %d size %d, grad size %d", i, p.Len(), g.Len())
		}
		v, ok := o.velocity[p]
		if !ok {
			v = tensor.New(p.Shape...)
			o.velocity[p] = v
		}
		for j := range p.Data {
			step := g.Data[j]*scale + wd*p.Data[j]
			v.Data[j] = mom*v.Data[j] - lr*step
			p.Data[j] += v.Data[j]
		}
	}
	return nil
}

// Sample is one labelled training example.
type Sample struct {
	X     *tensor.Tensor
	Label int
}

// TrainBatch accumulates gradients over a mini-batch and applies one
// optimiser step. It returns the mean loss over the batch.
func (n *Network) TrainBatch(batch []Sample, opt *SGD) (float64, error) {
	if len(batch) == 0 {
		return 0, errors.New("nn: empty batch")
	}
	n.ZeroGrads()
	var totalLoss float64
	for _, s := range batch {
		out, err := n.Forward(s.X, true)
		if err != nil {
			return 0, err
		}
		loss, grad, err := SoftmaxCrossEntropy(out, s.Label)
		if err != nil {
			return 0, err
		}
		totalLoss += loss
		if err := n.Backward(grad); err != nil {
			return 0, err
		}
	}
	if err := opt.Step(n.Params(), n.Grads(), len(batch)); err != nil {
		return 0, err
	}
	return totalLoss / float64(len(batch)), nil
}

// Accuracy evaluates top-1 accuracy over a sample set.
func (n *Network) Accuracy(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("nn: empty evaluation set")
	}
	correct := 0
	for _, s := range samples {
		pred, err := n.Predict(s.X)
		if err != nil {
			return 0, err
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)), nil
}

// ErrorSet returns the indices of samples the network misclassifies; the
// reliability package intersects these sets to estimate the error-dependency
// factor α (Eq. 8 of the paper).
func (n *Network) ErrorSet(samples []Sample) (map[int]bool, error) {
	errs := make(map[int]bool)
	for i, s := range samples {
		pred, err := n.Predict(s.X)
		if err != nil {
			return nil, err
		}
		if pred != s.Label {
			errs[i] = true
		}
	}
	return errs, nil
}
