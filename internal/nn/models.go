package nn

import (
	"fmt"

	"mvml/internal/xrand"
)

// InputSize is the spatial side length of the classifier inputs. The signs
// dataset renders to this size; the three architectures below are sized for
// it the way the paper's models are sized for GTSRB crops.
const InputSize = 24

// InputChannels is the number of colour channels of classifier inputs.
const InputChannels = 3

// NewLeNetSmall builds the LeNet-5-style classifier: two valid (unpadded)
// 5×5 convolutions with pooling, then three dense layers — the shallowest
// and most classical of the three versions.
func NewLeNetSmall(numClasses int, r *xrand.Rand) *Network {
	// 3×24×24 → conv5 → 6×20×20 → pool → 6×10×10 → conv5 → 16×6×6 →
	// pool → 16×3×3 → 144 → 120 → 84 → classes.
	return &Network{
		Name: "lenet-small",
		Layers: []Layer{
			NewCenter("center", 0.5),
			NewConv2D("conv1", InputChannels, 6, 5, 1, 0, r.Split("lenet-conv1", 0)),
			NewReLU("relu1"),
			NewMaxPool2D("pool1", 2),
			NewConv2D("conv2", 6, 16, 5, 1, 0, r.Split("lenet-conv2", 0)),
			NewReLU("relu2"),
			NewMaxPool2D("pool2", 2),
			NewFlatten("flatten"),
			NewDense("fc1", 16*3*3, 120, r.Split("lenet-fc1", 0)),
			NewReLU("relu3"),
			NewDense("fc2", 120, 84, r.Split("lenet-fc2", 0)),
			NewReLU("relu4"),
			NewDense("fc3", 84, numClasses, r.Split("lenet-fc3", 0)),
		},
	}
}

// NewAlexNetSmall builds the AlexNet-style classifier: a deeper stack of
// padded 3×3 convolutions with aggressive pooling and a dropout-regularised
// dense head.
func NewAlexNetSmall(numClasses int, r *xrand.Rand) *Network {
	// 3×24×24 → 16×24×24 → pool → 16×12×12 → 32×12×12 → pool → 32×6×6 →
	// 32×6×6 → pool → 32×3×3 → 288 → 128 → classes.
	return &Network{
		Name: "alexnet-small",
		Layers: []Layer{
			NewCenter("center", 0.5),
			NewConv2D("conv1", InputChannels, 16, 3, 1, 1, r.Split("alex-conv1", 0)),
			NewReLU("relu1"),
			NewMaxPool2D("pool1", 2),
			NewConv2D("conv2", 16, 32, 3, 1, 1, r.Split("alex-conv2", 0)),
			NewReLU("relu2"),
			NewMaxPool2D("pool2", 2),
			NewConv2D("conv3", 32, 32, 3, 1, 1, r.Split("alex-conv3", 0)),
			NewReLU("relu3"),
			NewMaxPool2D("pool3", 2),
			NewFlatten("flatten"),
			NewDropout("drop1", 0.25, r.Split("alex-drop1", 0)),
			NewDense("fc1", 32*3*3, 128, r.Split("alex-fc1", 0)),
			NewReLU("relu4"),
			NewDense("fc2", 128, numClasses, r.Split("alex-fc2", 0)),
		},
	}
}

// zeroInit clears a convolution's kernel so a residual block starts as the
// identity mapping — the standard initialisation trick that keeps deep
// residual stacks trainable without normalisation layers.
func zeroInit(c *Conv2D) *Conv2D {
	c.Kernel.Zero()
	return c
}

// NewResNetSmall builds the ResNet-style classifier: a convolutional stem,
// two residual blocks (the second with a 1×1 projection on the skip path),
// global average pooling, and a linear head.
func NewResNetSmall(numClasses int, r *xrand.Rand) *Network {
	// 3×24×24 → stem 16×24×24 → pool → 16×12×12 → res1 → pool → 16×6×6 →
	// res2 (projects to 32×6×6) → flatten → classes.
	block1 := NewResidual("res1", nil,
		NewConv2D("res1-conv1", 16, 16, 3, 1, 1, r.Split("res1-conv1", 0)),
		NewReLU("res1-relu"),
		zeroInit(NewConv2D("res1-conv2", 16, 16, 3, 1, 1, r.Split("res1-conv2", 0))),
	)
	block2 := NewResidual("res2",
		NewConv2D("res2-proj", 16, 32, 1, 1, 0, r.Split("res2-proj", 0)),
		NewConv2D("res2-conv1", 16, 32, 3, 1, 1, r.Split("res2-conv1", 0)),
		NewReLU("res2-relu"),
		zeroInit(NewConv2D("res2-conv2", 32, 32, 3, 1, 1, r.Split("res2-conv2", 0))),
	)
	return &Network{
		Name: "resnet-small",
		Layers: []Layer{
			NewCenter("center", 0.5),
			NewConv2D("stem", InputChannels, 16, 3, 1, 1, r.Split("resnet-stem", 0)),
			NewReLU("stem-relu"),
			NewMaxPool2D("pool1", 2),
			block1,
			NewReLU("relu1"),
			NewMaxPool2D("pool2", 2),
			block2,
			NewReLU("relu2"),
			NewFlatten("flatten"),
			NewDense("head", 32*6*6, numClasses, r.Split("resnet-head", 0)),
		},
	}
}

// ModelName identifies one of the three classifier architectures.
type ModelName int

// The three diverse classifier versions, mirroring the paper's
// AlexNet / ResNet50 / LeNet triple (Table II order).
const (
	ModelAlexNet ModelName = iota + 1
	ModelResNet
	ModelLeNet
)

func (m ModelName) String() string {
	switch m {
	case ModelAlexNet:
		return "alexnet-small"
	case ModelResNet:
		return "resnet-small"
	case ModelLeNet:
		return "lenet-small"
	default:
		return fmt.Sprintf("ModelName(%d)", int(m))
	}
}

// NewModel builds the named architecture.
func NewModel(name ModelName, numClasses int, r *xrand.Rand) (*Network, error) {
	switch name {
	case ModelAlexNet:
		return NewAlexNetSmall(numClasses, r), nil
	case ModelResNet:
		return NewResNetSmall(numClasses, r), nil
	case ModelLeNet:
		return NewLeNetSmall(numClasses, r), nil
	default:
		return nil, fmt.Errorf("nn: unknown model %v", name)
	}
}

// AllModels lists the three versions in the paper's Table II order.
func AllModels() []ModelName {
	return []ModelName{ModelAlexNet, ModelResNet, ModelLeNet}
}
