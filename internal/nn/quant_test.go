package nn_test

// Int8 quantized-inference tests: calibration determinism, the golden-corpus
// decision-equivalence gate, and the weight-epoch invalidation contract of
// the packed-operand cache. The external test package lets the corpus come
// from internal/signs (which imports nn).

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mvml/internal/nn"
	"mvml/internal/signs"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// updateGolden regenerates testdata/int8_golden.json:
//
//	go test ./internal/nn -run TestInt8GoldenCorpus -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the int8 golden corpus")

// goldenDataset is the corpus source: a reduced signs test split, fully
// determined by this configuration (train split empty — the corpus nets are
// served at their deterministic initialisation, which exercises the same
// kernels as trained weights without minutes of test-time SGD).
func goldenDataset(t testing.TB) []nn.Sample {
	cfg := signs.DefaultConfig()
	cfg.TrainPerClass = 0
	cfg.TestPerClass = 5
	ds, err := signs.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Test
}

func goldenNet(t testing.TB, name nn.ModelName) *nn.Network {
	net, err := nn.NewModel(name, signs.NumClasses, xrand.New(uint64(name)+7))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// predictAll runs the full sample set through the arena path in batches.
func predictAll(t testing.TB, net *nn.Network, ar *nn.InferenceArena, samples []nn.Sample) []int {
	t.Helper()
	preds := make([]int, 0, len(samples))
	for i := 0; i < len(samples); i += 32 {
		end := i + 32
		if end > len(samples) {
			end = len(samples)
		}
		xs := make([]*tensor.Tensor, 0, end-i)
		for _, s := range samples[i:end] {
			xs = append(xs, s.X)
		}
		batch, err := nn.Stack(xs)
		if err != nil {
			t.Fatal(err)
		}
		p, err := net.PredictBatchArena(batch, ar, nil)
		if err != nil {
			t.Fatal(err)
		}
		preds = append(preds, p...)
	}
	return preds
}

// goldenModel pins the decisions of one model over the corpus: Indices are
// the samples where the float32 and int8 paths were verified equivalent at
// generation time, Classes the decision both must still produce.
type goldenModel struct {
	Indices []int `json:"indices"`
	Classes []int `json:"classes"`
	Total   int   `json:"total"`
}

type goldenFile struct {
	Comment string                 `json:"comment"`
	Models  map[string]goldenModel `json:"models"`
}

const goldenPath = "testdata/int8_golden.json"

// TestInt8GoldenCorpus is the decision-equivalence gate: over the committed
// golden corpus every model must produce the pinned class on BOTH the float32
// and the int8 path. The corpus covers at least 90% of the signs test split
// (borderline samples whose float margin is inside the quantization noise are
// excluded at generation time and counted against the coverage floor), so a
// kernel or calibration change that moves any covered decision — in either
// numeric regime — fails here.
func TestInt8GoldenCorpus(t *testing.T) {
	samples := goldenDataset(t)
	if *updateGolden {
		writeGolden(t, samples)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden corpus (regenerate with -update-golden): %v", err)
	}
	var golden goldenFile
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	for _, name := range nn.AllModels() {
		t.Run(name.String(), func(t *testing.T) {
			gm, ok := golden.Models[name.String()]
			if !ok {
				t.Fatalf("model %s missing from golden corpus", name)
			}
			if gm.Total != len(samples) {
				t.Fatalf("golden corpus built over %d samples, dataset has %d", gm.Total, len(samples))
			}
			if len(gm.Indices) < gm.Total*9/10 {
				t.Fatalf("golden corpus covers %d/%d samples, want >= 90%%", len(gm.Indices), gm.Total)
			}
			net := goldenNet(t, name)
			q, err := nn.CalibrateInt8(net, samples, 32)
			if err != nil {
				t.Fatal(err)
			}
			arF := nn.NewInferenceArena()
			arQ := nn.NewInferenceArena()
			arQ.Quant = q
			pf := predictAll(t, net, arF, samples)
			pq := predictAll(t, net, arQ, samples)
			for i, idx := range gm.Indices {
				want := gm.Classes[i]
				if pf[idx] != want {
					t.Errorf("sample %d: float32 path predicts %d, golden %d", idx, pf[idx], want)
				}
				if pq[idx] != want {
					t.Errorf("sample %d: int8 path predicts %d, golden %d", idx, pq[idx], want)
				}
				if t.Failed() && i > 10 {
					t.Fatal("too many golden mismatches")
				}
			}
		})
	}
}

func writeGolden(t *testing.T, samples []nn.Sample) {
	t.Helper()
	golden := goldenFile{
		Comment: "Pinned float32/int8 decision-equivalent predictions over the reduced signs test split (see goldenDataset). Regenerate: go test ./internal/nn -run TestInt8GoldenCorpus -update-golden",
		Models:  map[string]goldenModel{},
	}
	for _, name := range nn.AllModels() {
		net := goldenNet(t, name)
		q, err := nn.CalibrateInt8(net, samples, 32)
		if err != nil {
			t.Fatal(err)
		}
		arF := nn.NewInferenceArena()
		arQ := nn.NewInferenceArena()
		arQ.Quant = q
		pf := predictAll(t, net, arF, samples)
		pq := predictAll(t, net, arQ, samples)
		gm := goldenModel{Total: len(samples)}
		for i := range pf {
			if pf[i] == pq[i] {
				gm.Indices = append(gm.Indices, i)
				gm.Classes = append(gm.Classes, pf[i])
			}
		}
		if len(gm.Indices) < gm.Total*9/10 {
			t.Fatalf("model %s: paths agree on only %d/%d samples at generation time", name, len(gm.Indices), gm.Total)
		}
		golden.Models[name.String()] = gm
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := json.MarshalIndent(golden, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("golden corpus rewritten: %s", goldenPath)
}

// TestCalibrateInt8Deterministic: same network, same samples → identical
// scales, regardless of batch size (max over a set is split-invariant).
func TestCalibrateInt8Deterministic(t *testing.T) {
	samples := goldenDataset(t)[:40]
	net := goldenNet(t, nn.AllModels()[0])
	q1, err := nn.CalibrateInt8(net, samples, 32)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := nn.CalibrateInt8(net, samples, 7)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Layers() == 0 || q1.Layers() != q2.Layers() {
		t.Fatalf("calibration layer counts differ: %d vs %d", q1.Layers(), q2.Layers())
	}
	xs := make([]*tensor.Tensor, 4)
	for i := range xs {
		xs[i] = samples[i].X
	}
	batch, err := nn.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	ar1, ar2 := nn.NewInferenceArena(), nn.NewInferenceArena()
	ar1.Quant, ar2.Quant = q1, q2
	o1, err := net.ForwardBatchArena(batch, ar1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := net.ForwardBatchArena(batch, ar2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range o1.Data {
		if math.Float32bits(o1.Data[i]) != math.Float32bits(o2.Data[i]) {
			t.Fatalf("logit %d differs across calibration batch sizes: %v vs %v", i, o1.Data[i], o2.Data[i])
		}
	}
}

// TestInt8WorkerInvariance: int32 accumulation is exact, so quantized logits
// are bitwise identical for every GEMM worker count.
func TestInt8WorkerInvariance(t *testing.T) {
	samples := goldenDataset(t)[:16]
	net := goldenNet(t, nn.AllModels()[0])
	q, err := nn.CalibrateInt8(net, samples, 32)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*tensor.Tensor, len(samples))
	for i := range xs {
		xs[i] = samples[i].X
	}
	batch, err := nn.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	var ref *tensor.Tensor
	for _, workers := range []int{1, 2, 5} {
		ar := nn.NewInferenceArena()
		ar.Quant = q
		ar.GemmWorkers = workers
		out, err := net.ForwardBatchArena(batch, ar)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out.Clone()
			continue
		}
		for i := range out.Data {
			if math.Float32bits(out.Data[i]) != math.Float32bits(ref.Data[i]) {
				t.Fatalf("workers=%d: logit %d differs: %v vs %v", workers, i, out.Data[i], ref.Data[i])
			}
		}
	}
}

// mutateWeights perturbs the first Conv2D kernel and the first Dense weight
// matrix of a network, returning an undo function.
func mutateWeights(t *testing.T, net *nn.Network) func() {
	t.Helper()
	var undo []func()
	var conv *nn.Conv2D
	var dense *nn.Dense
	var walk func(layers []nn.Layer)
	walk = func(layers []nn.Layer) {
		for _, l := range layers {
			switch v := l.(type) {
			case *nn.Conv2D:
				if conv == nil {
					conv = v
				}
			case *nn.Dense:
				if dense == nil {
					dense = v
				}
			case *nn.Residual:
				walk(v.Body)
			}
		}
	}
	walk(net.Layers)
	if conv == nil || dense == nil {
		t.Fatal("network has no conv or dense layer to mutate")
	}
	ck, dw := conv.Kernel.Data[0], dense.W.Data[0]
	conv.Kernel.Data[0] = ck + 2
	dense.W.Data[0] = dw - 3
	undo = append(undo, func() { conv.Kernel.Data[0] = ck; dense.W.Data[0] = dw })
	return func() {
		for _, u := range undo {
			u()
		}
	}
}

// TestArenaInvalidateWeights pins the packed-cache staleness contract, float
// and int8: after an in-place weight swap a warmed arena keeps answering from
// the stale packed panels until InvalidateWeights, after which its output is
// bitwise identical to a fresh arena over the swapped weights. This is the
// regression test for rejuvenation/compromise correctness — without epoch
// invalidation a rejuvenated replica would keep serving its compromised
// weights out of the packed cache.
func TestArenaInvalidateWeights(t *testing.T) {
	samples := goldenDataset(t)[:8]
	xs := make([]*tensor.Tensor, len(samples))
	for i := range xs {
		xs[i] = samples[i].X
	}
	batch, err := nn.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, quantized := range []bool{false, true} {
		name := map[bool]string{false: "float", true: "int8"}[quantized]
		t.Run(name, func(t *testing.T) {
			net := goldenNet(t, nn.AllModels()[0])
			var q *nn.QuantParams
			if quantized {
				var err error
				if q, err = nn.CalibrateInt8(net, samples, 32); err != nil {
					t.Fatal(err)
				}
			}
			ar := nn.NewInferenceArena()
			ar.Quant = q
			before, err := net.ForwardBatchArena(batch, ar)
			if err != nil {
				t.Fatal(err)
			}
			beforeCopy := before.Clone()

			mutateWeights(t, net)
			stale, err := net.ForwardBatchArena(batch, ar)
			if err != nil {
				t.Fatal(err)
			}
			// The weight GEMM panels are stale, so conv/dense still answer
			// with the old weights. (Bias and non-GEMM layers read live
			// weights, but the mutation above only touched packed operands.)
			for i := range stale.Data {
				if math.Float32bits(stale.Data[i]) != math.Float32bits(beforeCopy.Data[i]) {
					t.Fatalf("element %d changed without InvalidateWeights: %v vs %v — cache no longer stale-by-default, update this test and the arena docs",
						i, stale.Data[i], beforeCopy.Data[i])
				}
			}

			ar.InvalidateWeights()
			after, err := net.ForwardBatchArena(batch, ar)
			if err != nil {
				t.Fatal(err)
			}
			fresh := nn.NewInferenceArena()
			if quantized {
				// Weight scales are re-derived from current weights on both
				// arenas; the activation scales stay calibrated.
				fresh.Quant = q
			}
			want, err := net.ForwardBatchArena(batch, fresh)
			if err != nil {
				t.Fatal(err)
			}
			diff := false
			for i := range after.Data {
				if math.Float32bits(after.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("element %d: invalidated arena %v, fresh arena %v", i, after.Data[i], want.Data[i])
				}
				if math.Float32bits(after.Data[i]) != math.Float32bits(beforeCopy.Data[i]) {
					diff = true
				}
			}
			if !diff {
				t.Fatal("weight mutation did not change the output; test is vacuous")
			}
		})
	}
}

// TestDisablePackingBitwiseIdentical: the packing knob must never change an
// answer — it only selects which bitwise-identical kernel runs.
func TestDisablePackingBitwiseIdentical(t *testing.T) {
	samples := goldenDataset(t)[:8]
	xs := make([]*tensor.Tensor, len(samples))
	for i := range xs {
		xs[i] = samples[i].X
	}
	batch, err := nn.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range nn.AllModels() {
		net := goldenNet(t, name)
		packed := nn.NewInferenceArena()
		fused := nn.NewInferenceArena()
		fused.DisablePacking = true
		a, err := net.ForwardBatchArena(batch, packed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := net.ForwardBatchArena(batch, fused)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
				t.Fatalf("%s element %d: packed %v, fused %v", name, i, a.Data[i], b.Data[i])
			}
		}
	}
}

// TestInt8ArenaZeroAllocs extends the steady-state zero-allocation guarantee
// to the quantized path: quantize-pack buffers, int32 accumulators and packed
// weight panels are all arena-cached.
func TestInt8ArenaZeroAllocs(t *testing.T) {
	samples := goldenDataset(t)[:8]
	xs := make([]*tensor.Tensor, len(samples))
	for i := range xs {
		xs[i] = samples[i].X
	}
	batch, err := nn.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	net := goldenNet(t, nn.AllModels()[0])
	q, err := nn.CalibrateInt8(net, samples, 32)
	if err != nil {
		t.Fatal(err)
	}
	ar := nn.NewInferenceArena()
	ar.Quant = q
	preds, err := net.PredictBatchArena(batch, ar, nil) // warm
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		preds, err = net.PredictBatchArena(batch, ar, preds)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state int8 PredictBatchArena allocates %.1f objects per call, want 0", allocs)
	}
}
