package nn

import (
	"errors"
	"fmt"

	"mvml/internal/tensor"
)

// BatchLayer is the optional batched-inference fast path a layer can
// implement: ForwardBatch consumes a tensor with a leading batch dimension
// (B, ...sample shape) and returns (B, ...output shape). Implementations
// must be side-effect free — unlike Forward they record no backward state —
// so batched inference never perturbs an interleaved training pass. Layers
// without this method fall back to a per-sample Forward loop inside
// Network.ForwardBatch.
type BatchLayer interface {
	ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error)
}

// Compile-time checks: every built-in layer provides the batched fast path
// (the per-sample fallback still exists for third-party layers).
var (
	_ BatchLayer = (*Center)(nil)
	_ BatchLayer = (*Dense)(nil)
	_ BatchLayer = (*Conv2D)(nil)
	_ BatchLayer = (*ReLU)(nil)
	_ BatchLayer = (*MaxPool2D)(nil)
	_ BatchLayer = (*GlobalAvgPool)(nil)
	_ BatchLayer = (*Flatten)(nil)
	_ BatchLayer = (*Dropout)(nil)
	_ BatchLayer = (*Residual)(nil)
)

// Stack copies per-sample tensors of identical shape into one batch tensor
// with a leading batch dimension.
func Stack(samples []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(samples) == 0 {
		return nil, errors.New("nn: cannot stack an empty batch")
	}
	first := samples[0]
	out := tensor.New(append([]int{len(samples)}, first.Shape...)...)
	stride := first.Len()
	for i, s := range samples {
		if s.Len() != stride {
			return nil, fmt.Errorf("nn: sample %d has %d elements, batch wants %d", i, s.Len(), stride)
		}
		copy(out.Data[i*stride:(i+1)*stride], s.Data)
	}
	return out, nil
}

// sampleView returns a zero-copy view of row i of a batch tensor.
func sampleView(x *tensor.Tensor, i, stride int) *tensor.Tensor {
	return &tensor.Tensor{Shape: x.Shape[1:], Data: x.Data[i*stride : (i+1)*stride]}
}

// forwardBatchLayers pushes a batch tensor through a layer stack. With a
// non-nil arena it takes the zero-allocation ArenaBatchLayer path, then the
// allocating BatchLayer path, then a per-sample Forward loop — all three are
// bitwise identical (same per-element accumulation order everywhere).
func forwardBatchLayers(layers []Layer, x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	if len(x.Shape) < 2 {
		return nil, fmt.Errorf("nn: batched input wants a leading batch dimension, got shape %v", x.Shape)
	}
	var err error
	for _, l := range layers {
		x, err = forwardOneBatch(l, x, ar)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %s: %w", l.Name(), err)
		}
	}
	return x, nil
}

// forwardOneBatch dispatches a single layer on the best available batched
// path (see forwardBatchLayers).
func forwardOneBatch(l Layer, x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	if ar != nil {
		if ar.observer != nil {
			ar.observer(l, x)
		}
		if al, ok := l.(ArenaBatchLayer); ok {
			if ar.Profiler != nil {
				return profiledForward(al, l, x, ar)
			}
			return al.ForwardBatchArena(x, ar)
		}
	}
	if bl, ok := l.(BatchLayer); ok {
		return bl.ForwardBatch(x)
	}
	return forwardPerSample(l, x)
}

// forwardPerSample is the fallback for layers without a batched kernel: it
// slices the batch into per-sample views, runs the layer's single-sample
// Forward (inference mode) on each, and restacks the outputs.
func forwardPerSample(l Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	b := x.Shape[0]
	stride := x.Len() / b
	var out *tensor.Tensor
	outStride := 0
	for i := 0; i < b; i++ {
		y, err := l.Forward(sampleView(x, i, stride), false)
		if err != nil {
			return nil, err
		}
		if out == nil {
			outStride = y.Len()
			out = tensor.New(append([]int{b}, y.Shape...)...)
		} else if y.Len() != outStride {
			return nil, fmt.Errorf("nn: layer %s produced %d elements for sample %d, want %d",
				l.Name(), y.Len(), i, outStride)
		}
		copy(out.Data[i*outStride:(i+1)*outStride], y.Data)
	}
	return out, nil
}

// ForwardBatch runs inference over a batch tensor with a leading batch
// dimension, e.g. (B, C, H, W) for the convolutional classifiers. It is the
// serving hot path: one dispatch per layer instead of one per sample, with
// batched kernels (a single matrix multiply for dense layers) where the
// layer supports them.
func (n *Network) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	return forwardBatchLayers(n.Layers, x, nil)
}

// PredictBatch returns the argmax class per batch row.
func (n *Network) PredictBatch(x *tensor.Tensor) ([]int, error) {
	out, err := n.ForwardBatch(x)
	if err != nil {
		return nil, err
	}
	return argmaxRows(out, nil), nil
}

// ForwardBatch implements BatchLayer (the centering shift is elementwise and
// shape-agnostic).
func (l *Center) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] -= l.Offset
	}
	return y, nil
}

// ForwardBatch implements BatchLayer with one (B, in) × (out, in)ᵀ matrix
// multiply — the batched counterpart of the per-sample dot products.
func (d *Dense) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, in := d.W.Shape[0], d.W.Shape[1]
	if len(x.Shape) != 2 || x.Shape[1] != in {
		return nil, fmt.Errorf("dense %s: batched input shape %v, want (B, %d)", d.name, x.Shape, in)
	}
	y, err := tensor.MatMulTransB(x, d.W)
	if err != nil {
		return nil, fmt.Errorf("dense %s: %w", d.name, err)
	}
	b := x.Shape[0]
	for i := 0; i < b; i++ {
		row := y.Data[i*out : (i+1)*out]
		for o := range row {
			row[o] += d.B.Data[o]
		}
	}
	return y, nil
}

// ForwardBatch implements BatchLayer by delegating to the fused batched-GEMM
// path with a throwaway arena: the whole batch becomes one column matrix and
// one GEMM, bitwise identical to the former per-sample im2col loop (same
// per-element accumulation order — see tensor.Im2ColBatch and tensor.Gemm).
func (c *Conv2D) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	return c.ForwardBatchArena(x, NewInferenceArena())
}

// ForwardBatch implements BatchLayer (elementwise, no mask bookkeeping).
func (l *ReLU) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	y := x.Clone()
	for i, v := range y.Data {
		if v <= 0 {
			y.Data[i] = 0
		}
	}
	return y, nil
}

// ForwardBatch implements BatchLayer for (B, C, H, W) inputs.
func (l *MaxPool2D) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("maxpool %s: want (B,C,H,W) input, got %v", l.name, x.Shape)
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	s := l.Size
	oh, ow := h/s, w/s
	if oh == 0 || ow == 0 {
		return nil, fmt.Errorf("maxpool %s: input %v smaller than window %d", l.name, x.Shape, s)
	}
	y := tensor.New(b, c, oh, ow)
	oi := 0
	for i := 0; i < b; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := x.Data[base+(oy*s)*w+ox*s]
					for dy := 0; dy < s; dy++ {
						rowBase := base + (oy*s+dy)*w + ox*s
						for dx := 0; dx < s; dx++ {
							if v := x.Data[rowBase+dx]; v > best {
								best = v
							}
						}
					}
					y.Data[oi] = best
					oi++
				}
			}
		}
	}
	return y, nil
}

// ForwardBatch implements BatchLayer, reducing (B, C, H, W) to (B, C).
func (l *GlobalAvgPool) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("gap %s: want (B,C,H,W) input, got %v", l.name, x.Shape)
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(b, c)
	inv := float32(1 / float64(h*w))
	for i := 0; i < b; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			var sum float32
			for _, v := range x.Data[base : base+h*w] {
				sum += v
			}
			y.Data[i*c+ch] = sum * inv
		}
	}
	return y, nil
}

// ForwardBatch implements BatchLayer by flattening everything after the
// batch dimension.
func (l *Flatten) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	b := x.Shape[0]
	return x.Reshape(b, x.Len()/b)
}

// ForwardBatch implements BatchLayer: dropout is the identity at inference
// (inverted dropout rescales survivors during training instead).
func (l *Dropout) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	return x, nil
}

// ForwardBatch implements BatchLayer by running body and projection through
// the same batched dispatch as Network.ForwardBatch.
func (l *Residual) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	y, err := forwardBatchLayers(l.Body, x, nil)
	if err != nil {
		return nil, fmt.Errorf("residual %s body: %w", l.name, err)
	}
	skip := x
	if l.Proj != nil {
		skip, err = forwardOneBatch(l.Proj, x, nil)
		if err != nil {
			return nil, fmt.Errorf("residual %s proj: %w", l.name, err)
		}
	}
	out := y.Clone()
	if err := out.AddInPlace(skip); err != nil {
		return nil, fmt.Errorf("residual %s: body and skip shapes incompatible: %w", l.name, err)
	}
	return out, nil
}
