package nn

import (
	"time"

	"mvml/internal/tensor"
)

// ForwardProfiler receives opt-in per-layer observations from the arena
// inference path: wall time per layer dispatch and the shape of every GEMM a
// layer issues. Implementations must be safe for use from the single
// goroutine that owns the arena (the same ownership rule as the arena
// itself) and must not retain the layer label strings beyond the call.
//
// Profiling is observational only — it never changes what a forward pass
// computes — and costs nothing when InferenceArena.Profiler is nil.
type ForwardProfiler interface {
	// ObserveLayer reports one layer dispatch: the layer's name, the wall
	// seconds the dispatch took, and the batch size it processed.
	ObserveLayer(layer string, seconds float64, batch int)
	// ObserveGemm reports one GEMM issued while the named layer was running,
	// as its (m, n, k) shape: an (m×k)·(k×n) product writing m×n outputs.
	ObserveGemm(layer string, m, n, k int)
}

// profiledForward wraps one arena layer dispatch with timing and labels the
// arena so nested GEMM observations attribute to this layer. The label is
// saved and restored around the call because residual blocks dispatch their
// body layers recursively through the same arena.
func profiledForward(al ArenaBatchLayer, l Layer, x *tensor.Tensor, ar *InferenceArena) (*tensor.Tensor, error) {
	prev := ar.profLayer
	ar.profLayer = l.Name()
	start := time.Now()
	y, err := al.ForwardBatchArena(x, ar)
	ar.Profiler.ObserveLayer(ar.profLayer, time.Since(start).Seconds(), x.Shape[0])
	ar.profLayer = prev
	return y, err
}

// noteGemm forwards one GEMM shape to the arena's profiler, attributed to
// the layer currently dispatched through profiledForward. A nil profiler
// makes this a single branch on the hot path.
func (a *InferenceArena) noteGemm(m, n, k int) {
	if a == nil || a.Profiler == nil {
		return
	}
	a.Profiler.ObserveGemm(a.profLayer, m, n, k)
}
