package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the serialised form of a network's trainable state.
type snapshot struct {
	Name   string
	Shapes [][]int
	Data   [][]float32
}

// SaveWeights writes the network's trainable parameters to w (gob encoded).
// The architecture itself is not stored; reload into a network built by the
// same constructor.
func (n *Network) SaveWeights(w io.Writer) error {
	params := n.Params()
	snap := snapshot{
		Name:   n.Name,
		Shapes: make([][]int, 0, len(params)),
		Data:   make([][]float32, 0, len(params)),
	}
	for _, p := range params {
		snap.Shapes = append(snap.Shapes, p.Shape)
		snap.Data = append(snap.Data, p.Data)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: encoding weights for %s: %w", n.Name, err)
	}
	return nil
}

// LoadWeights restores trainable parameters previously written by
// SaveWeights. The target network must have the same architecture.
func (n *Network) LoadWeights(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decoding weights: %w", err)
	}
	params := n.Params()
	if len(snap.Data) != len(params) {
		return fmt.Errorf("nn: snapshot has %d tensors, network %s has %d",
			len(snap.Data), n.Name, len(params))
	}
	for i, p := range params {
		if len(snap.Data[i]) != p.Len() {
			return fmt.Errorf("nn: tensor %d size %d in snapshot, %d in network",
				i, len(snap.Data[i]), p.Len())
		}
		copy(p.Data, snap.Data[i])
	}
	return nil
}

// CloneWeights returns deep copies of the network's parameter values, used
// by the rejuvenation mechanism as the "safe memory location" a module is
// reloaded from (paper §IV) and by the fault injector to restore a healthy
// state.
func (n *Network) CloneWeights() [][]float32 {
	params := n.Params()
	out := make([][]float32, 0, len(params))
	for _, p := range params {
		c := make([]float32, p.Len())
		copy(c, p.Data)
		out = append(out, c)
	}
	return out
}

// RestoreWeights copies previously cloned weights back into the network.
func (n *Network) RestoreWeights(saved [][]float32) error {
	params := n.Params()
	if len(saved) != len(params) {
		return fmt.Errorf("nn: %d saved tensors, network %s has %d", len(saved), n.Name, len(params))
	}
	for i, p := range params {
		if len(saved[i]) != p.Len() {
			return fmt.Errorf("nn: saved tensor %d size %d, want %d", i, len(saved[i]), p.Len())
		}
		copy(p.Data, saved[i])
	}
	return nil
}
