package nn_test

// Differential property tests: every built-in layer, driven through the
// per-sample Forward path and both batched paths (allocating and
// arena-backed fused GEMM) on identical inputs, must produce bitwise-equal
// outputs — including when fault-injected weights poison the network with
// NaN and ±Inf. This is the equivalence contract the N-version voter relies
// on: a kernel that handles special values differently across paths would
// make the ensemble disagree with itself. The external test package lets
// the poisoning go through internal/faultinject (which imports nn).

import (
	"math"
	"testing"

	"mvml/internal/faultinject"
	"mvml/internal/nn"
	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// frankenNet stacks one instance of every built-in layer type: Center,
// Conv2D, ReLU, MaxPool2D, Residual (with conv body and identity skip),
// GlobalAvgPool, Flatten, Dropout and Dense.
func frankenNet(seed uint64) *nn.Network {
	r := xrand.New(seed)
	return &nn.Network{Name: "franken", Layers: []nn.Layer{
		nn.NewCenter("center", 0.5),
		nn.NewConv2D("conv1", 3, 4, 3, 1, 1, r),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool", 2),
		nn.NewResidual("res", nil,
			nn.NewConv2D("res-conv", 4, 4, 3, 1, 1, r),
			nn.NewReLU("res-relu"),
		),
		nn.NewGlobalAvgPool("gap"),
		nn.NewFlatten("flat"),
		nn.NewDropout("drop", 0.5, r),
		nn.NewDense("fc", 4, 5, r),
	}}
}

// poisonValues cycles through the IEEE special values the fault injector can
// write into weight memory.
var poisonValues = []float32{
	float32(math.NaN()),
	float32(math.Inf(1)),
	float32(math.Inf(-1)),
	1e30, // overflows to Inf through the conv accumulations
}

func frankenBatch(b int, seed uint64) []*tensor.Tensor {
	r := xrand.New(seed)
	xs := make([]*tensor.Tensor, b)
	for i := range xs {
		x := tensor.New(3, 8, 8)
		x.RandomizeUniform(r, 0, 1)
		xs[i] = x
	}
	return xs
}

// checkAllPathsAgree runs the three inference paths and fails on the first
// bitwise difference. GemmWorkers=4 also exercises the parallel row tiles
// under -race.
func checkAllPathsAgree(t *testing.T, net *nn.Network, xs []*tensor.Tensor) {
	t.Helper()
	batch, err := nn.Stack(xs)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := net.ForwardBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	ar := nn.NewInferenceArena()
	ar.GemmWorkers = 4
	fused, err := net.ForwardBatchArena(batch, ar)
	if err != nil {
		t.Fatal(err)
	}
	stride := batched.Len() / len(xs)
	for i, x := range xs {
		single, err := net.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		if single.Len() != stride {
			t.Fatalf("sample %d: per-sample output has %d elements, batched %d", i, single.Len(), stride)
		}
		for j, v := range single.Data {
			bw := batched.Data[i*stride+j]
			fw := fused.Data[i*stride+j]
			if math.Float32bits(bw) != math.Float32bits(v) {
				t.Fatalf("sample %d element %d: ForwardBatch %v, Forward %v", i, j, bw, v)
			}
			if math.Float32bits(fw) != math.Float32bits(v) {
				t.Fatalf("sample %d element %d: ForwardBatchArena %v, Forward %v", i, j, fw, v)
			}
		}
	}
}

// TestDifferentialAllLayersPoisoned drives the franken-network through all
// three inference paths with a special value injected into every
// parameterised layer in turn.
func TestDifferentialAllLayersPoisoned(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		net := frankenNet(seed)
		xs := frankenBatch(3, seed+100)
		checkAllPathsAgree(t, net, xs) // healthy baseline
		r := xrand.New(seed + 200)
		for layer := range net.ParamLayers() {
			for _, v := range poisonValues {
				inj, err := faultinject.StuckAt(net, layer, v, r)
				if err != nil {
					t.Fatal(err)
				}
				checkAllPathsAgree(t, net, xs)
				inj.Revert()
			}
		}
	}
}

// TestDifferentialArchitecturesPoisoned repeats the property on the three
// real classifier architectures (deeper stacks, strided convs, projections).
func TestDifferentialArchitecturesPoisoned(t *testing.T) {
	for _, name := range nn.AllModels() {
		t.Run(name.String(), func(t *testing.T) {
			net, err := nn.NewModel(name, 7, xrand.New(uint64(name)))
			if err != nil {
				t.Fatal(err)
			}
			r := xrand.New(uint64(name) + 1)
			xs := make([]*tensor.Tensor, 3)
			for i := range xs {
				x := tensor.New(nn.InputChannels, nn.InputSize, nn.InputSize)
				x.RandomizeUniform(r, 0, 1)
				xs[i] = x
			}
			layers := net.ParamLayers()
			for li := 0; li < len(layers); li += 2 { // every other layer keeps runtime bounded
				inj, err := faultinject.StuckAt(net, li, float32(math.NaN()), r)
				if err != nil {
					t.Fatal(err)
				}
				checkAllPathsAgree(t, net, xs)
				inj.Revert()
			}
		})
	}
}

// FuzzForwardBatchArena fuzzes the equivalence property over seeds, batch
// sizes and poison values.
func FuzzForwardBatchArena(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2))
	f.Add(uint64(7), uint8(1), uint8(1))
	f.Add(uint64(42), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, poison, bsz uint8) {
		net := frankenNet(seed)
		b := int(bsz)%4 + 1
		xs := frankenBatch(b, seed+1)
		r := xrand.New(seed + 2)
		layers := net.ParamLayers()
		layer := int(poison) % len(layers)
		if _, err := faultinject.StuckAt(net, layer, poisonValues[int(poison)%len(poisonValues)], r); err != nil {
			t.Fatal(err)
		}
		checkAllPathsAgree(t, net, xs)
	})
}
