package nn

import (
	"fmt"
	"math"

	"mvml/internal/tensor"
	"mvml/internal/xrand"
)

// Compile-time interface compliance checks.
var (
	_ Layer = (*Center)(nil)
	_ Layer = (*Dense)(nil)
	_ Layer = (*Conv2D)(nil)
	_ Layer = (*ReLU)(nil)
	_ Layer = (*MaxPool2D)(nil)
	_ Layer = (*GlobalAvgPool)(nil)
	_ Layer = (*Flatten)(nil)
	_ Layer = (*Dropout)(nil)
	_ Layer = (*Residual)(nil)
)

// Center is a fixed (non-trainable) input-normalisation layer that shifts
// values by a constant, mapping [0,1] pixel data to the zero-centred range
// He-initialised weights expect.
type Center struct {
	Offset float32
	name   string
}

// NewCenter returns a centering layer subtracting offset.
func NewCenter(name string, offset float32) *Center {
	return &Center{Offset: offset, name: name}
}

// Name implements Layer.
func (l *Center) Name() string { return l.name }

// Forward implements Layer.
func (l *Center) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] -= l.Offset
	}
	return y, nil
}

// Backward implements Layer (identity gradient).
func (l *Center) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	return grad, nil
}

// Params implements Layer.
func (l *Center) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *Center) Grads() []*tensor.Tensor { return nil }

// Dense is a fully connected layer: y = W·x + b with W of shape (out, in).
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	name   string

	lastX *tensor.Tensor
}

// NewDense returns a dense layer with He-normal initialised weights.
func NewDense(name string, in, out int, r *xrand.Rand) *Dense {
	d := &Dense{
		W:    tensor.New(out, in),
		B:    tensor.New(out),
		dW:   tensor.New(out, in),
		dB:   tensor.New(out),
		name: name,
	}
	d.W.RandomizeNormal(r, 0, math.Sqrt(2/float64(in)))
	return d
}

func (d *Dense) Name() string { return d.name }

func (d *Dense) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	out, in := d.W.Shape[0], d.W.Shape[1]
	if x.Len() != in {
		return nil, fmt.Errorf("dense %s: input size %d, want %d", d.name, x.Len(), in)
	}
	// Clone: retaining the caller's tensor by reference would corrupt the
	// weight gradient if the caller reuses its input buffer before Backward.
	d.lastX = x.Clone()
	y := tensor.New(out)
	for o := 0; o < out; o++ {
		row := d.W.Data[o*in : (o+1)*in]
		var sum float32
		for i, w := range row {
			sum += w * x.Data[i]
		}
		y.Data[o] = sum + d.B.Data[o]
	}
	return y, nil
}

func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	out, in := d.W.Shape[0], d.W.Shape[1]
	if grad.Len() != out {
		return nil, fmt.Errorf("dense %s: grad size %d, want %d", d.name, grad.Len(), out)
	}
	if d.lastX == nil {
		return nil, fmt.Errorf("dense %s: Backward before Forward", d.name)
	}
	dx := tensor.New(in)
	for o := 0; o < out; o++ {
		g := grad.Data[o]
		d.dB.Data[o] += g
		if g == 0 {
			continue
		}
		wRow := d.W.Data[o*in : (o+1)*in]
		dwRow := d.dW.Data[o*in : (o+1)*in]
		for i := 0; i < in; i++ {
			dwRow[i] += g * d.lastX.Data[i]
			dx.Data[i] += g * wRow[i]
		}
	}
	return dx, nil
}

func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }
func (d *Dense) Grads() []*tensor.Tensor  { return []*tensor.Tensor{d.dW, d.dB} }

// Conv2D is a 2-D convolution over (C, H, W) inputs implemented with im2col.
// The kernel tensor has shape (outC, inC, KH, KW).
type Conv2D struct {
	Kernel, Bias *tensor.Tensor
	dK, dB       *tensor.Tensor
	Stride, Pad  int
	name         string

	lastCols  *tensor.Tensor
	lastShape []int
	kmat      *tensor.Tensor
}

// NewConv2D returns a convolution layer with He-normal initialised kernels.
func NewConv2D(name string, inC, outC, k, stride, pad int, r *xrand.Rand) *Conv2D {
	c := &Conv2D{
		Kernel: tensor.New(outC, inC, k, k),
		Bias:   tensor.New(outC),
		dK:     tensor.New(outC, inC, k, k),
		dB:     tensor.New(outC),
		Stride: stride,
		Pad:    pad,
		name:   name,
	}
	fanIn := inC * k * k
	c.Kernel.RandomizeNormal(r, 0, math.Sqrt(2/float64(fanIn)))
	return c
}

func (c *Conv2D) Name() string { return c.name }

// kernelMatrix returns the (outC, inC·KH·KW) matrix view of the kernel,
// cached so the hot paths never allocate a header. The view aliases
// Kernel.Data, which every mutation path (training, fault injection,
// RestoreWeights) updates in place rather than replacing — so the cache can
// never go stale.
func (c *Conv2D) kernelMatrix() *tensor.Tensor {
	if c.kmat == nil {
		outC, inC := c.Kernel.Shape[0], c.Kernel.Shape[1]
		kh, kw := c.Kernel.Shape[2], c.Kernel.Shape[3]
		c.kmat = &tensor.Tensor{Shape: []int{outC, inC * kh * kw}, Data: c.Kernel.Data}
	}
	return c.kmat
}

func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	if len(x.Shape) != 3 {
		return nil, fmt.Errorf("conv %s: want (C,H,W) input, got %v", c.name, x.Shape)
	}
	outC, inC := c.Kernel.Shape[0], c.Kernel.Shape[1]
	kh, kw := c.Kernel.Shape[2], c.Kernel.Shape[3]
	if x.Shape[0] != inC {
		return nil, fmt.Errorf("conv %s: input channels %d, want %d", c.name, x.Shape[0], inC)
	}
	cols, err := tensor.Im2Col(x, kh, kw, c.Stride, c.Pad)
	if err != nil {
		return nil, fmt.Errorf("conv %s: %w", c.name, err)
	}
	c.lastCols = cols
	c.lastShape = x.Shape
	y, err := tensor.MatMul(c.kernelMatrix(), cols)
	if err != nil {
		return nil, fmt.Errorf("conv %s: %w", c.name, err)
	}
	oh, ow := tensor.Conv2DShape(x.Shape[1], x.Shape[2], kh, kw, c.Stride, c.Pad)
	spatial := oh * ow
	for o := 0; o < outC; o++ {
		b := c.Bias.Data[o]
		row := y.Data[o*spatial : (o+1)*spatial]
		for i := range row {
			row[i] += b
		}
	}
	return y.Reshape(outC, oh, ow)
}

func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.lastCols == nil {
		return nil, fmt.Errorf("conv %s: Backward before Forward", c.name)
	}
	outC, inC := c.Kernel.Shape[0], c.Kernel.Shape[1]
	kh, kw := c.Kernel.Shape[2], c.Kernel.Shape[3]
	spatial := c.lastCols.Shape[1]
	gmat, err := grad.Reshape(outC, spatial)
	if err != nil {
		return nil, fmt.Errorf("conv %s: grad shape %v: %w", c.name, grad.Shape, err)
	}
	// Bias gradient: sum over spatial positions.
	for o := 0; o < outC; o++ {
		var sum float32
		for _, v := range gmat.Data[o*spatial : (o+1)*spatial] {
			sum += v
		}
		c.dB.Data[o] += sum
	}
	// Kernel gradient: grad · colsᵀ.
	dk, err := tensor.MatMulTransB(gmat, c.lastCols)
	if err != nil {
		return nil, err
	}
	if err := c.dK.AddInPlace(dk); err != nil {
		return nil, err
	}
	// Input gradient: kernelᵀ · grad, scattered back with Col2Im.
	dcols, err := tensor.MatMulTransA(c.kernelMatrix(), gmat)
	if err != nil {
		return nil, err
	}
	return tensor.Col2Im(dcols, inC, c.lastShape[1], c.lastShape[2], kh, kw, c.Stride, c.Pad)
}

func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.Kernel, c.Bias} }
func (c *Conv2D) Grads() []*tensor.Tensor  { return []*tensor.Tensor{c.dK, c.dB} }

// ReLU is the rectified linear activation.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

func (l *ReLU) Name() string { return l.name }

func (l *ReLU) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	y := x.Clone()
	if cap(l.mask) < y.Len() {
		l.mask = make([]bool, y.Len())
	}
	l.mask = l.mask[:y.Len()]
	// NaN propagates (v <= 0 is false for NaN), matching ForwardBatch —
	// zeroing it would hide fault-injected corruption from the voter.
	for i, v := range y.Data {
		l.mask[i] = v > 0
		if v <= 0 {
			y.Data[i] = 0
		}
	}
	return y, nil
}

func (l *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if grad.Len() != len(l.mask) {
		return nil, fmt.Errorf("relu %s: grad size %d, mask size %d", l.name, grad.Len(), len(l.mask))
	}
	dx := grad.Clone()
	for i := range dx.Data {
		if !l.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

func (l *ReLU) Params() []*tensor.Tensor { return nil }
func (l *ReLU) Grads() []*tensor.Tensor  { return nil }

// MaxPool2D is non-overlapping max pooling with a square window.
type MaxPool2D struct {
	Size int
	name string

	argmax    []int
	lastShape []int
}

// NewMaxPool2D returns a max-pooling layer with the given window size
// (stride equals the window size).
func NewMaxPool2D(name string, size int) *MaxPool2D {
	return &MaxPool2D{Size: size, name: name}
}

func (l *MaxPool2D) Name() string { return l.name }

func (l *MaxPool2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	if len(x.Shape) != 3 {
		return nil, fmt.Errorf("maxpool %s: want (C,H,W) input, got %v", l.name, x.Shape)
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	s := l.Size
	oh, ow := h/s, w/s
	if oh == 0 || ow == 0 {
		return nil, fmt.Errorf("maxpool %s: input %v smaller than window %d", l.name, x.Shape, s)
	}
	l.lastShape = x.Shape
	y := tensor.New(c, oh, ow)
	if cap(l.argmax) < y.Len() {
		l.argmax = make([]int, y.Len())
	}
	l.argmax = l.argmax[:y.Len()]
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Seed with the window's first element, like ForwardBatch:
				// a -Inf/-1 seed never updates on an all-NaN window (every
				// compare is false) and Backward then indexes dx.Data[-1].
				start := base + (oy*s)*w + ox*s
				best, bi := x.Data[start], start
				for dy := 0; dy < s; dy++ {
					rowBase := base + (oy*s+dy)*w + ox*s
					for dx := 0; dx < s; dx++ {
						if v := x.Data[rowBase+dx]; v > best {
							best, bi = v, rowBase+dx
						}
					}
				}
				y.Data[oi] = best
				l.argmax[oi] = bi
				oi++
			}
		}
	}
	return y, nil
}

func (l *MaxPool2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if grad.Len() != len(l.argmax) {
		return nil, fmt.Errorf("maxpool %s: grad size %d, want %d", l.name, grad.Len(), len(l.argmax))
	}
	dx := tensor.New(l.lastShape...)
	for i, src := range l.argmax {
		dx.Data[src] += grad.Data[i]
	}
	return dx, nil
}

func (l *MaxPool2D) Params() []*tensor.Tensor { return nil }
func (l *MaxPool2D) Grads() []*tensor.Tensor  { return nil }

// GlobalAvgPool reduces (C, H, W) to a length-C vector by spatial averaging,
// as in ResNet's final pooling stage.
type GlobalAvgPool struct {
	name      string
	lastShape []int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

func (l *GlobalAvgPool) Name() string { return l.name }

func (l *GlobalAvgPool) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	if len(x.Shape) != 3 {
		return nil, fmt.Errorf("gap %s: want (C,H,W) input, got %v", l.name, x.Shape)
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	l.lastShape = x.Shape
	y := tensor.New(c)
	inv := float32(1 / float64(h*w))
	for ch := 0; ch < c; ch++ {
		var sum float32
		for _, v := range x.Data[ch*h*w : (ch+1)*h*w] {
			sum += v
		}
		y.Data[ch] = sum * inv
	}
	return y, nil
}

func (l *GlobalAvgPool) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	c, h, w := l.lastShape[0], l.lastShape[1], l.lastShape[2]
	if grad.Len() != c {
		return nil, fmt.Errorf("gap %s: grad size %d, want %d", l.name, grad.Len(), c)
	}
	dx := tensor.New(c, h, w)
	inv := float32(1 / float64(h*w))
	for ch := 0; ch < c; ch++ {
		g := grad.Data[ch] * inv
		row := dx.Data[ch*h*w : (ch+1)*h*w]
		for i := range row {
			row[i] = g
		}
	}
	return dx, nil
}

func (l *GlobalAvgPool) Params() []*tensor.Tensor { return nil }
func (l *GlobalAvgPool) Grads() []*tensor.Tensor  { return nil }

// Flatten reshapes any input to a vector.
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

func (l *Flatten) Name() string { return l.name }

func (l *Flatten) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	l.lastShape = x.Shape
	return x.Reshape(x.Len())
}

func (l *Flatten) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	return grad.Reshape(l.lastShape...)
}

func (l *Flatten) Params() []*tensor.Tensor { return nil }
func (l *Flatten) Grads() []*tensor.Tensor  { return nil }

// Dropout randomly zeroes activations during training (inverted dropout:
// survivors are scaled by 1/(1-p) so inference needs no rescaling).
type Dropout struct {
	P    float64
	name string
	rng  *xrand.Rand
	mask []float32
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(name string, p float64, r *xrand.Rand) *Dropout {
	return &Dropout{P: p, name: name, rng: r}
}

func (l *Dropout) Name() string { return l.name }

func (l *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || l.P <= 0 {
		// Identity at inference; mark mask as pass-through for Backward.
		if cap(l.mask) < x.Len() {
			l.mask = make([]float32, x.Len())
		}
		l.mask = l.mask[:x.Len()]
		for i := range l.mask {
			l.mask[i] = 1
		}
		return x, nil
	}
	y := x.Clone()
	if cap(l.mask) < y.Len() {
		l.mask = make([]float32, y.Len())
	}
	l.mask = l.mask[:y.Len()]
	keep := float32(1 / (1 - l.P))
	for i := range y.Data {
		if l.rng.Float64() < l.P {
			l.mask[i] = 0
			y.Data[i] = 0
		} else {
			l.mask[i] = keep
			y.Data[i] *= keep
		}
	}
	return y, nil
}

func (l *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if grad.Len() != len(l.mask) {
		return nil, fmt.Errorf("dropout %s: grad size %d, mask size %d", l.name, grad.Len(), len(l.mask))
	}
	dx := grad.Clone()
	for i := range dx.Data {
		dx.Data[i] *= l.mask[i]
	}
	return dx, nil
}

func (l *Dropout) Params() []*tensor.Tensor { return nil }
func (l *Dropout) Grads() []*tensor.Tensor  { return nil }

// Residual wraps a body sub-stack with a skip connection:
// y = body(x) + proj(x), where proj is identity when nil (requiring the body
// to preserve the element count) or a 1×1 convolution / dense projection when
// the body changes dimensions — the structural signature of ResNet.
type Residual struct {
	Body []Layer
	Proj Layer // optional projection for the skip path
	name string
}

// NewResidual returns a residual block over the given body layers. proj may
// be nil for an identity skip.
func NewResidual(name string, proj Layer, body ...Layer) *Residual {
	return &Residual{Body: body, Proj: proj, name: name}
}

func (l *Residual) Name() string { return l.name }

func (l *Residual) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	y := x
	var err error
	for _, b := range l.Body {
		y, err = b.Forward(y, train)
		if err != nil {
			return nil, fmt.Errorf("residual %s body %s: %w", l.name, b.Name(), err)
		}
	}
	skip := x
	if l.Proj != nil {
		skip, err = l.Proj.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("residual %s proj: %w", l.name, err)
		}
	}
	out := y.Clone()
	if err := out.AddInPlace(skip); err != nil {
		return nil, fmt.Errorf("residual %s: body and skip shapes incompatible: %w", l.name, err)
	}
	return out, nil
}

func (l *Residual) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	bodyGrad := grad
	var err error
	for i := len(l.Body) - 1; i >= 0; i-- {
		bodyGrad, err = l.Body[i].Backward(bodyGrad)
		if err != nil {
			return nil, fmt.Errorf("residual %s body backward: %w", l.name, err)
		}
	}
	skipGrad := grad
	if l.Proj != nil {
		skipGrad, err = l.Proj.Backward(grad)
		if err != nil {
			return nil, fmt.Errorf("residual %s proj backward: %w", l.name, err)
		}
	}
	dx := bodyGrad.Clone()
	if err := dx.AddInPlace(skipGrad); err != nil {
		return nil, fmt.Errorf("residual %s: gradient shapes incompatible: %w", l.name, err)
	}
	return dx, nil
}

func (l *Residual) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, b := range l.Body {
		ps = append(ps, b.Params()...)
	}
	if l.Proj != nil {
		ps = append(ps, l.Proj.Params()...)
	}
	return ps
}

func (l *Residual) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, b := range l.Body {
		gs = append(gs, b.Grads()...)
	}
	if l.Proj != nil {
		gs = append(gs, l.Proj.Grads()...)
	}
	return gs
}
