package nn

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

// recordingProfiler captures every observation the arena path reports.
type recordingProfiler struct {
	layers []layerObs
	gemms  []gemmObs
}

type layerObs struct {
	layer   string
	seconds float64
	batch   int
}

type gemmObs struct {
	layer   string
	m, n, k int
}

func (p *recordingProfiler) ObserveLayer(layer string, seconds float64, batch int) {
	p.layers = append(p.layers, layerObs{layer, seconds, batch})
}

func (p *recordingProfiler) ObserveGemm(layer string, m, n, k int) {
	p.gemms = append(p.gemms, gemmObs{layer, m, n, k})
}

// TestProfilerDoesNotChangeOutputs: attaching a profiler to the arena must
// leave every logit bitwise identical on all three architectures, while
// reporting at least one timed dispatch per layer with the right batch size.
func TestProfilerDoesNotChangeOutputs(t *testing.T) {
	const b = 5
	for _, name := range AllModels() {
		t.Run(name.String(), func(t *testing.T) {
			net, err := NewModel(name, 7, xrand.New(uint64(name)))
			if err != nil {
				t.Fatal(err)
			}
			batch, err := Stack(randomBatch(b, xrand.New(42)))
			if err != nil {
				t.Fatal(err)
			}
			plain, err := net.ForwardBatchArena(batch, NewInferenceArena())
			if err != nil {
				t.Fatal(err)
			}

			prof := &recordingProfiler{}
			ar := NewInferenceArena()
			ar.Profiler = prof
			profiled, err := net.ForwardBatchArena(batch, ar)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range plain.Data {
				if math.Float32bits(profiled.Data[i]) != math.Float32bits(v) {
					t.Fatalf("logit %d: profiled %v, plain %v", i, profiled.Data[i], v)
				}
			}

			if len(prof.layers) == 0 {
				t.Fatal("profiler saw no layer dispatches")
			}
			seen := map[string]bool{}
			for _, o := range prof.layers {
				seen[o.layer] = true
				if o.batch != b {
					t.Fatalf("layer %s observed batch %d, want %d", o.layer, o.batch, b)
				}
				if o.seconds < 0 {
					t.Fatalf("layer %s observed negative duration %v", o.layer, o.seconds)
				}
			}
			for _, l := range net.Layers {
				if !seen[l.Name()] {
					t.Fatalf("layer %s never observed (saw %v)", l.Name(), seen)
				}
			}
			// Every GEMM must attribute to a layer that was dispatched.
			for _, g := range prof.gemms {
				if !seen[g.layer] {
					t.Fatalf("GEMM attributed to unknown layer %q", g.layer)
				}
			}
		})
	}
}

// TestProfilerGemmShapes pins the exact (m, n, k) each layer kind reports:
// Dense issues (B, out, in); Conv2D issues (outC, B·oh·ow, inC·kh·kw).
func TestProfilerGemmShapes(t *testing.T) {
	const b = 3
	r := xrand.New(7)
	net := &Network{
		Name: "shapes",
		Layers: []Layer{
			NewConv2D("conv", InputChannels, 4, 3, 1, 1, r),
			NewFlatten("flat"),
			NewDense("fc", 4*InputSize*InputSize, 5, r),
		},
	}
	batch, err := Stack(randomBatch(b, xrand.New(1)))
	if err != nil {
		t.Fatal(err)
	}
	prof := &recordingProfiler{}
	ar := NewInferenceArena()
	ar.Profiler = prof
	if _, err := net.ForwardBatchArena(batch, ar); err != nil {
		t.Fatal(err)
	}
	want := []gemmObs{
		{"conv", 4, b * InputSize * InputSize, InputChannels * 3 * 3},
		{"fc", b, 5, 4 * InputSize * InputSize},
	}
	if len(prof.gemms) != len(want) {
		t.Fatalf("observed %d GEMMs, want %d: %+v", len(prof.gemms), len(want), prof.gemms)
	}
	for i, w := range want {
		if prof.gemms[i] != w {
			t.Fatalf("GEMM %d: got %+v, want %+v", i, prof.gemms[i], w)
		}
	}
}

// TestProfilerBytesFormula documents the byte-volume accounting used by the
// serving metrics: 4 bytes per float32 across the A, B and C operands.
func TestProfilerBytesFormula(t *testing.T) {
	m, n, k := 4, 6, 8
	if got := 4 * (m*k + k*n + m*n); got != 416 {
		t.Fatalf("byte formula drifted: %d", got)
	}
}
