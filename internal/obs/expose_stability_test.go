package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestWritePrometheusByteIdentical pins the exposition-stability contract:
// repeated snapshots of an unchanged registry serialise to byte-identical
// output (families name-sorted, series key-sorted), so scrapes diff cleanly.
func TestWritePrometheusByteIdentical(t *testing.T) {
	r := NewRegistry()
	r.Help("mv_a_total", "A counter.")
	r.Counter("mv_a_total", "version", "b").Add(3)
	r.Counter("mv_a_total", "version", "a").Inc()
	r.Gauge("mv_b", "state", "H").Set(2)
	r.Histogram("mv_c_seconds", LatencyBuckets()).Observe(0.004)

	var first bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if first.Len() == 0 {
		t.Fatal("empty exposition")
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := r.WritePrometheus(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("snapshot %d differs:\n--- first\n%s\n--- again\n%s", i, first.String(), again.String())
		}
	}
}

// TestWritePrometheusDeterministicUnderConcurrentCreation races many
// goroutines creating interleaved series, then checks the final exposition
// is independent of creation order: whatever interleaving happened, the
// sorted output must match a registry built sequentially.
func TestWritePrometheusDeterministicUnderConcurrentCreation(t *testing.T) {
	const goroutines = 8
	const perG = 25

	concurrent := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				concurrent.Counter("mv_conc_total", "g", fmt.Sprintf("%d", g), "i", fmt.Sprintf("%02d", i)).Inc()
				concurrent.Gauge("mv_conc_gauge", "g", fmt.Sprintf("%d", g)).Set(float64(i))
			}
		}(g)
	}
	wg.Wait()

	sequential := NewRegistry()
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			sequential.Counter("mv_conc_total", "g", fmt.Sprintf("%d", g), "i", fmt.Sprintf("%02d", i)).Inc()
			sequential.Gauge("mv_conc_gauge", "g", fmt.Sprintf("%d", g)).Set(float64(perG - 1))
		}
	}

	var a, b bytes.Buffer
	if err := concurrent.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := sequential.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("concurrent creation changed exposition:\n--- concurrent\n%s\n--- sequential\n%s", a.String(), b.String())
	}
}
