package obs

import (
	"math"
	"sync"
)

// SampleConfig parameterises tail-based trace sampling. The zero value keeps
// everything (Rate 0 with no other criteria would retain only error/slow/
// lifecycle traces; use Rate >= 1 for record-everything).
type SampleConfig struct {
	// Rate is the fraction of *normal* request traces to retain, in [0,1].
	// Error, degraded, slow and non-request (lifecycle) traces are always
	// retained regardless of Rate; >= 1 retains every trace.
	Rate float64
	// Seed drives the deterministic retain/drop hash. Two samplers with the
	// same seed make identical decisions for the same trace ids, no matter
	// how many goroutines publish spans — the decision is a pure function of
	// (seed, trace id), never of scheduling.
	Seed uint64
	// SlowSeconds is the root-span duration at or above which a request
	// trace is always retained (the tail of the latency distribution is the
	// interesting part). <= 0 selects DefaultSlowSeconds.
	SlowSeconds float64
	// DecisionCache bounds the trace-id → decision memory that routes
	// late-published child spans the same way as their root batch.
	// <= 0 selects DefaultDecisionCache.
	DecisionCache int
}

// DefaultSlowSeconds is the always-retain latency threshold, matched to the
// health engine's default per-request latency objective.
const DefaultSlowSeconds = 0.25

// DefaultDecisionCache bounds the sampler's decision memory.
const DefaultDecisionCache = 8192

// Sampler makes tail-based retention decisions over whole traces: a span
// batch is judged once its root is visible (SpanSink publishes a complete
// trace in one batch), so the decision can consider the outcome — errors,
// degradation, end-to-end latency — rather than guessing at the head.
//
// Decisions are deterministic: every criterion is a pure function of the
// trace's content and the sampler's seed, so the retained-trace set for a
// given span stream is identical at any worker count. A nil *Sampler
// retains everything.
type Sampler struct {
	cfg    SampleConfig
	thresh uint64 // retain when hash < thresh

	mu        sync.Mutex
	decisions map[uint64]bool
	order     []uint64 // FIFO eviction ring over decisions
	next      int

	kept       uint64
	sampledOut uint64

	keptC    *Counter // optional registry counters
	droppedC *Counter
}

// NewSampler builds a sampler from cfg.
func NewSampler(cfg SampleConfig) *Sampler {
	if cfg.SlowSeconds <= 0 {
		cfg.SlowSeconds = DefaultSlowSeconds
	}
	if cfg.DecisionCache <= 0 {
		cfg.DecisionCache = DefaultDecisionCache
	}
	s := &Sampler{
		cfg:       cfg,
		decisions: make(map[uint64]bool),
		order:     make([]uint64, cfg.DecisionCache),
	}
	switch {
	case cfg.Rate >= 1:
		s.thresh = math.MaxUint64
	case cfg.Rate <= 0:
		s.thresh = 0
	default:
		s.thresh = uint64(cfg.Rate * float64(math.MaxUint64))
	}
	return s
}

// SetCounters attaches registry counters for retained and sampled-out
// traces (either may be nil).
func (s *Sampler) SetCounters(kept, sampledOut *Counter) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.keptC, s.droppedC = kept, sampledOut
	s.mu.Unlock()
}

// Stats returns how many traces were retained and sampled out so far.
func (s *Sampler) Stats() (kept, sampledOut uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kept, s.sampledOut
}

// Rate returns the configured normal-traffic retention rate (1 for a nil
// sampler: everything is kept).
func (s *Sampler) Rate() float64 {
	if s == nil {
		return 1
	}
	return s.cfg.Rate
}

// splitmix64 is the finaliser the retain/drop hash runs the trace id
// through; its avalanche means consecutive ids land uniformly in [0, 2^64).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashKeep is the deterministic coin flip for normal traffic.
func (s *Sampler) hashKeep(trace uint64) bool {
	return splitmix64(s.cfg.Seed^(trace*0x9e3779b97f4a7c15)) < s.thresh
}

// judge computes the retention decision for one trace from the spans at
// hand. Caller holds s.mu.
func (s *Sampler) judge(trace uint64, recs []SpanRecord) bool {
	var root *SpanRecord
	for i := range recs {
		r := &recs[i]
		if r.Trace != trace {
			continue
		}
		if r.Attrs != nil {
			if r.Attrs["error"] != nil {
				return true
			}
			if b, ok := r.Attrs["degraded"].(bool); ok && b {
				return true
			}
		}
		if r.Parent == 0 {
			root = r
		}
	}
	if root != nil {
		// Roots other than serving traffic ("request" at a shard, "route" at
		// the gateway) are lifecycle or simulation traces (rejuvenation,
		// drain, resize, scale, shed, ...): always retained — they are rare
		// and every one matters to an incident timeline.
		if root.Kind != "request" && root.Kind != "route" {
			return true
		}
		if root.Duration() >= s.cfg.SlowSeconds {
			return true
		}
	}
	return s.hashKeep(trace)
}

// remember caches one decision, evicting FIFO beyond the cache bound.
// Caller holds s.mu.
func (s *Sampler) remember(trace uint64, keep bool) {
	if old := s.order[s.next]; old != 0 {
		delete(s.decisions, old)
	}
	s.order[s.next] = trace
	s.next = (s.next + 1) % len(s.order)
	s.decisions[trace] = keep
	if keep {
		s.kept++
		s.keptC.Inc()
	} else {
		s.sampledOut++
		s.droppedC.Inc()
	}
}

// Retain returns the subset of recs belonging to retained traces, preserving
// order. A batch may span multiple traces; each trace is judged once and the
// decision is remembered so late-published children follow their root. A nil
// sampler retains everything.
func (s *Sampler) Retain(recs []SpanRecord) []SpanRecord {
	if s == nil || len(recs) == 0 {
		return recs
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Fast path: the whole batch is one trace (how SpanSink publishes).
	single := true
	for i := 1; i < len(recs); i++ {
		if recs[i].Trace != recs[0].Trace {
			single = false
			break
		}
	}
	if single {
		if s.keepLocked(recs[0].Trace, recs) {
			return recs
		}
		return nil
	}
	out := recs[:0:0]
	for i := range recs {
		if s.keepLocked(recs[i].Trace, recs) {
			out = append(out, recs[i])
		}
	}
	return out
}

// Decision reports the cached decision for a trace id.
func (s *Sampler) Decision(trace uint64) (keep, known bool) {
	if s == nil {
		return true, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keep, known = s.decisions[trace]
	return keep, known
}

// keepLocked resolves (caching if new) one trace's decision. Caller holds
// s.mu.
func (s *Sampler) keepLocked(trace uint64, recs []SpanRecord) bool {
	if keep, ok := s.decisions[trace]; ok {
		return keep
	}
	keep := s.judge(trace, recs)
	s.remember(trace, keep)
	return keep
}
