package obs

import (
	"context"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIDisabledIsNoOp(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Fatal("no flags set but Enabled")
	}
	rt, err := c.Start()
	if err != nil || rt != nil {
		t.Fatalf("disabled Start = (%v, %v), want (nil, nil)", rt, err)
	}
	if err := c.Finish(nil); err != nil {
		t.Fatalf("disabled Finish: %v", err)
	}
}

func TestCLIStartFinishArtifacts(t *testing.T) {
	dir := t.TempDir()
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.RegisterFlags(fs)
	args := []string{
		"-metrics-addr", "127.0.0.1:0",
		"-telemetry-out", filepath.Join(dir, "summary.json"),
		"-trace-out", filepath.Join(dir, "trace.jsonl"),
		"-trace-capacity", "4",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	rt, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if rt == nil || rt.Metrics() == nil || rt.Tracer() == nil {
		t.Fatal("enabled Start must return a live runtime")
	}
	rt.Metrics().Counter("mvml_clitest_total").Inc()
	rt.Tracer().Emit(1, "clitest", nil)

	// The live endpoint serves the counter while the run is in flight.
	addr := c.ListenAddr()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "mvml_clitest_total 1") {
		t.Fatalf("live exposition missing counter:\n%s", body)
	}

	if err := c.Finish(map[string]any{"command": "clitest"}); err != nil {
		t.Fatal(err)
	}
	sum, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), `"mvml_clitest_total"`) || !strings.Contains(string(sum), `"clitest"`) {
		t.Fatalf("summary content:\n%s", sum)
	}
	trace, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"type":"clitest"`) {
		t.Fatalf("trace content:\n%s", trace)
	}
	// The endpoint is torn down after Finish.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics endpoint still up after Finish")
	}
}

// TestFinishReleasesMetricsPort proves the graceful shutdown gives the port
// back: after Finish, binding the exact same address must succeed.
func TestFinishReleasesMetricsPort(t *testing.T) {
	var c CLI
	c.MetricsAddr = "127.0.0.1:0"
	c.SummaryPath = filepath.Join(t.TempDir(), "s.json")
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	addr := c.ListenAddr()
	if addr == "" {
		t.Fatal("no listen address while endpoint is up")
	}
	if err := c.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if got := c.ListenAddr(); got != "" {
		t.Fatalf("ListenAddr after Finish = %q, want empty", got)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port %s not released after Finish: %v", addr, err)
	}
	ln.Close()
}

// TestShutdownIdempotent: Shutdown on a CLI that never started an endpoint,
// and a second Shutdown after a successful one, are both no-ops.
func TestShutdownIdempotent(t *testing.T) {
	var c CLI
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown without endpoint: %v", err)
	}
	c.MetricsAddr = "127.0.0.1:0"
	c.SummaryPath = filepath.Join(t.TempDir(), "s.json")
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if err := c.Finish(nil); err != nil {
		t.Fatalf("finish after shutdown: %v", err)
	}
}

func TestCLISummaryPathDefaults(t *testing.T) {
	var c CLI
	c.MetricsAddr = "127.0.0.1:0"
	rt, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if rt == nil {
		t.Fatal("nil runtime")
	}
	if c.SummaryPath != DefaultSummaryPath {
		t.Fatalf("summary path %q, want default %q", c.SummaryPath, DefaultSummaryPath)
	}
	// Redirect the default into a temp dir before Finish writes it.
	c.SummaryPath = filepath.Join(t.TempDir(), "s.json")
	if err := c.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c.SummaryPath); err != nil {
		t.Fatal(err)
	}
}

func TestCLISpansIncidentsAndDebugEndpoints(t *testing.T) {
	dir := t.TempDir()
	c := &CLI{
		MetricsAddr: "127.0.0.1:0",
		SummaryPath: filepath.Join(dir, "s.json"),
		SpansPath:   filepath.Join(dir, "spans.jsonl"),
		IncidentDir: filepath.Join(dir, "incidents"),
		Pprof:       true,
	}
	c.InfoLabel("workers", "3x2")
	rt, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Spans() == nil || rt.Flight() == nil {
		t.Fatal("runtime missing span sink or flight recorder")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + c.ListenAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, `mv_build_info{binary=`) ||
		!strings.Contains(body, `workers="3x2"`) {
		t.Fatalf("/metrics = %d, build info missing:\n%s", code, body)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(body, "/debug/pprof/") {
		t.Fatalf("/ index = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/no-such-page"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}

	sp := rt.Spans().StartTrace("request")
	sp.Child("vote").End()
	sp.End()
	rt.Flight().Trigger("compromise", map[string]any{"version": "a"})
	if err := c.Finish(nil); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(c.SpansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("span export holds %d records, want 2", len(recs))
	}
	incidents, err := filepath.Glob(filepath.Join(c.IncidentDir, "incident-*.json"))
	if err != nil || len(incidents) != 1 {
		t.Fatalf("incident files = %v (%v), want exactly one", incidents, err)
	}
}

func TestCLIPprofOffByDefault(t *testing.T) {
	c := &CLI{MetricsAddr: "127.0.0.1:0", SummaryPath: filepath.Join(t.TempDir(), "s.json")}
	if _, err := c.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + c.ListenAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -pprof = %d, want 404", resp.StatusCode)
	}
	if err := c.Finish(nil); err != nil {
		t.Fatal(err)
	}
}
