// Package obs is the repository's observability substrate: a
// concurrency-safe metrics registry (atomic counters, gauges and streaming
// histograms with quantile estimation), a structured event tracer backed by
// a bounded ring buffer with a JSONL sink, and two exposition paths —
// Prometheus text format over net/http and an end-of-run JSON summary.
//
// The package is pure stdlib and designed around two guarantees the
// simulation stack depends on:
//
//   - Nil no-op: every handle (*Registry, *Counter, *Gauge, *Histogram,
//     *Tracer, *Runtime) treats a nil receiver as "telemetry disabled" and
//     does nothing, allocating nothing. Instrumented code paths therefore
//     need no feature flags — an uninstrumented run passes nil handles and
//     pays only a predictable nil check.
//
//   - Determinism: no function in this package consumes xrand draws or any
//     other source of simulation randomness, so attaching telemetry never
//     perturbs a run's decision sequence. (Latency observations read the
//     wall clock, which affects only the recorded values, never control
//     flow.)
package obs

// Runtime bundles a metrics registry, an event tracer and a span sink — the
// trio every instrumented component accepts. A nil *Runtime is valid and
// yields nil (no-op) handles, so callers can thread
// cfg.Obs.Metrics()/cfg.Obs.Tracer()/cfg.Obs.Spans() unconditionally.
type Runtime struct {
	reg    *Registry
	tracer *Tracer
	spans  *SpanSink
	flight *FlightRecorder
}

// DefaultTraceCapacity is the ring-buffer size used when NewRuntime is
// called with a non-positive capacity.
const DefaultTraceCapacity = 8192

// Names of the ring-buffer drop and sampling-decision counters every
// Runtime registers: silent telemetry loss is itself a telemetry signal.
const (
	MetricDroppedSpans  = "mv_obs_dropped_spans_total"
	MetricDroppedEvents = "mv_obs_dropped_events_total"
	MetricSampledTraces = "mv_obs_sampled_traces_total"
)

// NewRuntime returns a Runtime with a fresh registry, a tracer and a span
// sink each holding up to traceCapacity records (DefaultTraceCapacity
// when <= 0). Ring-buffer evictions in the tracer and span sink are mirrored
// into mv_obs_dropped_events_total / mv_obs_dropped_spans_total so data loss
// is never silent.
func NewRuntime(traceCapacity int) *Runtime {
	if traceCapacity <= 0 {
		traceCapacity = DefaultTraceCapacity
	}
	r := &Runtime{
		reg:    NewRegistry(),
		tracer: NewTracer(traceCapacity),
		spans:  NewSpanSink(traceCapacity),
	}
	r.reg.Help(MetricDroppedSpans, "Spans evicted from the span ring buffer before being read.")
	r.reg.Help(MetricDroppedEvents, "Events evicted from the trace ring buffer before being read.")
	r.spans.SetDropCounter(r.reg.Counter(MetricDroppedSpans))
	r.tracer.SetDropCounter(r.reg.Counter(MetricDroppedEvents))
	return r
}

// SetSampler installs the tail sampler on the span sink and wires its
// kept/sampled-out decision counters into the registry as
// mv_obs_sampled_traces_total{decision="kept"|"sampled_out"}.
func (r *Runtime) SetSampler(sm *Sampler) {
	if r == nil {
		return
	}
	if sm != nil {
		r.reg.Help(MetricSampledTraces, "Tail-sampling retention decisions by outcome.")
		sm.SetCounters(
			r.reg.Counter(MetricSampledTraces, "decision", "kept"),
			r.reg.Counter(MetricSampledTraces, "decision", "sampled_out"),
		)
	}
	r.spans.SetSampler(sm)
}

// Metrics returns the registry, or nil for a nil Runtime.
func (r *Runtime) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer returns the event tracer, or nil for a nil Runtime.
func (r *Runtime) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Spans returns the span sink, or nil for a nil Runtime.
func (r *Runtime) Spans() *SpanSink {
	if r == nil {
		return nil
	}
	return r.spans
}

// Flight returns the attached flight recorder, or nil when none is attached
// (or for a nil Runtime).
func (r *Runtime) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight
}

// AttachFlightRecorder wires fr into the runtime: accessible via Flight and
// fed by the span sink.
func (r *Runtime) AttachFlightRecorder(fr *FlightRecorder) {
	if r == nil {
		return
	}
	r.flight = fr
	r.spans.AttachFlightRecorder(fr)
}
