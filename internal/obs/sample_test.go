package obs

import (
	"math"
	"testing"
)

// mkTrace builds one finished trace of spans directly (ids are arbitrary but
// unique per call site's choosing).
func mkTrace(trace uint64, kind string, dur float64, attrs map[string]any) []SpanRecord {
	return []SpanRecord{{Trace: trace, ID: trace*10 + 1, Kind: kind, Start: 0, End: dur, Attrs: attrs}}
}

func TestSamplerAlwaysKeepsErrorSlowLifecycle(t *testing.T) {
	s := NewSampler(SampleConfig{Rate: 0, Seed: 1}) // rate 0: only criteria keep
	cases := []struct {
		name string
		recs []SpanRecord
		want bool
	}{
		{"error attr", mkTrace(1, "request", 0.01, map[string]any{"error": "deadline"}), true},
		{"degraded attr", mkTrace(2, "request", 0.01, map[string]any{"degraded": true}), true},
		{"slow root", mkTrace(3, "request", 0.5, nil), true},
		{"lifecycle root", mkTrace(4, "rejuvenation", 0.001, nil), true},
		{"normal fast", mkTrace(5, "request", 0.01, nil), false},
		{"degraded false", mkTrace(6, "request", 0.01, map[string]any{"degraded": false}), false},
		{"error on child", []SpanRecord{
			{Trace: 7, ID: 71, Kind: "request", Start: 0, End: 0.01},
			{Trace: 7, ID: 72, Parent: 71, Kind: "forward", Start: 0, End: 0.01,
				Attrs: map[string]any{"error": "worker gone"}},
		}, true},
	}
	for _, c := range cases {
		got := s.Retain(c.recs)
		kept := len(got) > 0
		if kept != c.want {
			t.Errorf("%s: retained=%v, want %v", c.name, kept, c.want)
		}
		if kept && len(got) != len(c.recs) {
			t.Errorf("%s: retained %d of %d spans (traces are all-or-nothing)", c.name, len(got), len(c.recs))
		}
	}
}

func TestSamplerHashFractionApproximatesRate(t *testing.T) {
	for _, rate := range []float64{0.1, 0.5} {
		s := NewSampler(SampleConfig{Rate: rate, Seed: 42})
		kept := 0
		const n = 20000
		for tr := uint64(1); tr <= n; tr++ {
			if len(s.Retain(mkTrace(tr, "request", 0.001, nil))) > 0 {
				kept++
			}
		}
		got := float64(kept) / n
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %v: kept fraction %v", rate, got)
		}
	}
}

func TestSamplerDeterministicAcrossInstances(t *testing.T) {
	a := NewSampler(SampleConfig{Rate: 0.3, Seed: 7})
	b := NewSampler(SampleConfig{Rate: 0.3, Seed: 7})
	diff := NewSampler(SampleConfig{Rate: 0.3, Seed: 8})
	var disagreeSeed int
	for tr := uint64(1); tr <= 1000; tr++ {
		recs := mkTrace(tr, "request", 0.001, nil)
		ka := len(a.Retain(recs)) > 0
		kb := len(b.Retain(recs)) > 0
		if ka != kb {
			t.Fatalf("trace %d: same seed disagreed", tr)
		}
		if kd := len(diff.Retain(recs)) > 0; kd != ka {
			disagreeSeed++
		}
	}
	if disagreeSeed == 0 {
		t.Fatal("different seeds never disagreed; hash likely ignores seed")
	}
}

func TestSamplerDecisionCacheRoutesLateChildren(t *testing.T) {
	s := NewSampler(SampleConfig{Rate: 0, Seed: 1})
	// Slow root: kept. A late child of the same trace is fast and has no
	// error, but must follow the cached decision.
	root := mkTrace(9, "request", 0.9, nil)
	if len(s.Retain(root)) == 0 {
		t.Fatal("slow root not retained")
	}
	late := []SpanRecord{{Trace: 9, ID: 95, Parent: 91, Kind: "reply", Start: 0.9, End: 0.91}}
	if len(s.Retain(late)) == 0 {
		t.Fatal("late child of a retained trace was dropped")
	}
	// And the inverse: late child of a sampled-out trace is dropped too.
	if len(s.Retain(mkTrace(10, "request", 0.001, nil))) != 0 {
		t.Fatal("normal trace unexpectedly retained at rate 0")
	}
	late = []SpanRecord{{Trace: 10, ID: 105, Parent: 101, Kind: "reply",
		Start: 0.001, End: 0.9}} // slow on its own, but the trace was judged
	if len(s.Retain(late)) != 0 {
		t.Fatal("late child of a sampled-out trace was retained")
	}
	if keep, known := s.Decision(10); !known || keep {
		t.Fatalf("Decision(10) = %v,%v, want false,true", keep, known)
	}
}

func TestSamplerNilRetainsEverything(t *testing.T) {
	var s *Sampler
	recs := mkTrace(1, "request", 0.001, nil)
	if got := s.Retain(recs); len(got) != len(recs) {
		t.Fatal("nil sampler dropped spans")
	}
	if s.Rate() != 1 {
		t.Fatal("nil sampler rate != 1")
	}
	if k, o := s.Stats(); k != 0 || o != 0 {
		t.Fatal("nil sampler stats non-zero")
	}
}

func TestSinkSamplingFiltersRingAndJSONLNotFirehose(t *testing.T) {
	sink := NewSpanSink(64)
	sink.SetSampler(NewSampler(SampleConfig{Rate: 0, Seed: 3}))
	full := &captureObserver{}
	samp := &captureObserver{}
	sink.Attach(full)
	sink.AttachSampled(samp)

	fast := sink.StartTrace("request")
	fast.End()
	slow := sink.StartTrace("request")
	slow.EndAt(slow.rec.Start + 1.0)

	if got := sink.Published(); got != 2 {
		t.Fatalf("Published = %d, want 2 (pre-sampling)", got)
	}
	if got := sink.Retained(); got != 1 {
		t.Fatalf("Retained = %d, want 1", got)
	}
	recs := sink.Spans()
	if len(recs) != 1 || recs[0].Trace != slow.TraceID() {
		t.Fatalf("ring holds %v, want only the slow trace", recs)
	}
	if full.count != 2 {
		t.Fatalf("firehose observer saw %d spans, want 2", full.count)
	}
	if samp.count != 1 {
		t.Fatalf("sampled observer saw %d spans, want 1", samp.count)
	}
}

type captureObserver struct{ count int }

func (c *captureObserver) ObserveSpans(recs []SpanRecord, _ float64) { c.count += len(recs) }

// TestRingOverflowDropCounters overflows both ring buffers and asserts the
// silent-loss bugfix: evictions must show up on the metrics path.
func TestRingOverflowDropCounters(t *testing.T) {
	rt := NewRuntime(4)
	for i := 0; i < 10; i++ {
		sp := rt.Spans().StartTrace("request")
		sp.End()
		rt.Tracer().Emit(float64(i), "tick", nil)
	}
	if got := rt.Spans().Dropped(); got != 6 {
		t.Fatalf("sink dropped %d, want 6", got)
	}
	if got := rt.Metrics().Counter(MetricDroppedSpans).Value(); got != 6 {
		t.Fatalf("%s = %d, want 6", MetricDroppedSpans, got)
	}
	if got := rt.Tracer().Dropped(); got != 6 {
		t.Fatalf("tracer dropped %d, want 6", got)
	}
	if got := rt.Metrics().Counter(MetricDroppedEvents).Value(); got != 6 {
		t.Fatalf("%s = %d, want 6", MetricDroppedEvents, got)
	}
}

func TestRuntimeSamplerCounters(t *testing.T) {
	rt := NewRuntime(16)
	rt.SetSampler(NewSampler(SampleConfig{Rate: 0, Seed: 1}))
	fast := rt.Spans().StartTrace("request")
	fast.End()
	slow := rt.Spans().StartTrace("rejuvenation")
	slow.End()
	if got := rt.Metrics().Counter(MetricSampledTraces, "decision", "kept").Value(); got != 1 {
		t.Fatalf("kept counter = %d, want 1", got)
	}
	if got := rt.Metrics().Counter(MetricSampledTraces, "decision", "sampled_out").Value(); got != 1 {
		t.Fatalf("sampled_out counter = %d, want 1", got)
	}
}
