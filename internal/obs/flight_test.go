package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newTestRecorder(t *testing.T, post time.Duration, maxIncidents int) (*FlightRecorder, *SpanSink, *Tracer) {
	t.Helper()
	sink := NewSpanSink(32)
	tracer := NewTracer(32)
	fr, err := NewFlightRecorder(t.TempDir(), post, maxIncidents, sink, tracer)
	if err != nil {
		t.Fatal(err)
	}
	sink.AttachFlightRecorder(fr)
	return fr, sink, tracer
}

func readIncident(t *testing.T, path string) Incident {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.Unmarshal(b, &inc); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return inc
}

func TestFlightRecorderCapturesPreAndPostWindow(t *testing.T) {
	fr, sink, tracer := newTestRecorder(t, 50*time.Millisecond, 0)

	sink.Emit(1, 0, "before", 0, 1, nil)
	tracer.Emit(0.5, "compromise", nil)
	fr.Trigger("compromise", map[string]any{"version": "a"})
	sink.Emit(1, 0, "during", 1, 2, nil) // inside the post-window

	time.Sleep(60 * time.Millisecond)
	// This publish lands after the post-window and also finalises it.
	sink.Emit(1, 0, "after", 2, 3, nil)

	files := fr.Incidents()
	if len(files) != 1 {
		t.Fatalf("incident files: %v", files)
	}
	inc := readIncident(t, files[0])
	if inc.Reason != "compromise" || inc.Attrs["version"] != "a" {
		t.Fatalf("incident header: %+v", inc)
	}
	kinds := map[string]bool{}
	for _, r := range inc.Spans {
		kinds[r.Kind] = true
	}
	if !kinds["before"] || !kinds["during"] {
		t.Fatalf("incident spans missing pre/post capture: %v", kinds)
	}
	if kinds["after"] {
		t.Fatal("incident captured a span past its post-window")
	}
	if len(inc.Events) != 1 || inc.Events[0].Type != "compromise" {
		t.Fatalf("incident events: %+v", inc.Events)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderFoldsSameReason(t *testing.T) {
	fr, _, _ := newTestRecorder(t, time.Minute, 0)
	fr.Trigger("divergence", nil)
	fr.Trigger("divergence", nil)
	fr.Trigger("divergence", nil)
	fr.Trigger("compromise", nil) // distinct reason: its own incident
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	files := fr.Incidents()
	if len(files) != 2 {
		t.Fatalf("incident files: %v", files)
	}
	inc := readIncident(t, files[0])
	if inc.Reason != "divergence" || inc.FollowUps != 2 {
		t.Fatalf("folding failed: reason=%s follow_ups=%d", inc.Reason, inc.FollowUps)
	}
}

func TestFlightRecorderMaxIncidents(t *testing.T) {
	fr, _, _ := newTestRecorder(t, time.Nanosecond, 2)
	time.Sleep(time.Millisecond) // every post-window expires immediately
	fr.Trigger("a", nil)
	time.Sleep(time.Millisecond)
	fr.Trigger("b", nil)
	time.Sleep(time.Millisecond)
	fr.Trigger("c", nil) // over the cap: dropped
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if files := fr.Incidents(); len(files) != 2 {
		t.Fatalf("cap not enforced: %v", files)
	}
}

func TestFlightRecorderFilenames(t *testing.T) {
	fr, _, _ := newTestRecorder(t, time.Minute, 0)
	fr.Trigger("rejuvenation_reactive", nil)
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	files := fr.Incidents()
	if len(files) != 1 {
		t.Fatalf("incident files: %v", files)
	}
	if got := filepath.Base(files[0]); got != "incident-000-rejuvenation_reactive.json" {
		t.Fatalf("incident filename %q", got)
	}
}

// TestFlightRecorderConcurrentTriggers hammers the recorder with parallel
// triggers and publishes and checks the invariants that keep a sustained
// fault from flooding the disk: at most MaxIncidents incident files are
// written; every trigger of a within-cap reason is accounted for either as
// an incident or as a FollowUp fold; and no incident holds the same span
// twice (the Trigger snapshot and the publish stream race on every span).
func TestFlightRecorderConcurrentTriggers(t *testing.T) {
	const (
		maxIncidents = 4
		goroutines   = 8
		perGoroutine = 50
	)
	// A long post-window keeps every incident open for the whole test, so
	// same-reason folding applies to all triggers after the first.
	fr, sink, _ := newTestRecorder(t, time.Minute, maxIncidents)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reason := fmt.Sprintf("reason-%d", g%2) // two reasons, both within cap
			for i := 0; i < perGoroutine; i++ {
				fr.Trigger(reason, nil)
				sink.Emit(uint64(g+1), 0, "work", float64(i), float64(i)+1, nil)
			}
		}(g)
	}
	wg.Wait()
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}

	files := fr.Incidents()
	if len(files) > maxIncidents {
		t.Fatalf("cap breached: %d incidents written, cap %d", len(files), maxIncidents)
	}
	// Both reasons fit under the cap, so every trigger must be accounted for:
	// one incident per reason plus FollowUps covering the rest.
	byReason := map[string]int{}
	for _, path := range files {
		inc := readIncident(t, path)
		byReason[inc.Reason] += 1 + inc.FollowUps
		seen := map[uint64]bool{}
		for _, r := range inc.Spans {
			if r.ID == 0 {
				continue
			}
			if seen[r.ID] {
				t.Fatalf("incident %d captured span %d twice", inc.ID, r.ID)
			}
			seen[r.ID] = true
		}
	}
	total := goroutines * perGoroutine
	if byReason["reason-0"]+byReason["reason-1"] != total {
		t.Fatalf("lost triggers: %v (want %d total)", byReason, total)
	}
}

// TestFlightRecorderExactlyOnceCapture races one trigger against a stream of
// publishes and checks that, with a ring large enough to never evict, the
// single open incident holds every span published before Close exactly once:
// no span is lost in the gap between the pre-trigger snapshot and the
// observer registration, and none is double-counted.
func TestFlightRecorderExactlyOnceCapture(t *testing.T) {
	const spans = 400
	sink := NewSpanSink(spans + 16)
	fr, err := NewFlightRecorder(t.TempDir(), time.Minute, 0, sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink.AttachFlightRecorder(fr)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < spans; i++ {
			sink.Emit(1, 0, "work", float64(i), float64(i)+1, nil)
		}
	}()
	fr.Trigger("race", nil) // concurrent with the publish stream
	<-done
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}

	files := fr.Incidents()
	if len(files) != 1 {
		t.Fatalf("incident files: %v", files)
	}
	inc := readIncident(t, files[0])
	seen := map[uint64]bool{}
	for _, r := range inc.Spans {
		if seen[r.ID] {
			t.Fatalf("span %d captured twice", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != spans {
		t.Fatalf("captured %d distinct spans, want %d", len(seen), spans)
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Trigger("x", nil)
	fr.ObserveSpans(nil, 0)
	if fr.Dir() != "" || fr.Incidents() != nil {
		t.Fatal("nil recorder not empty")
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	// A recorder with neither sink nor tracer still writes incidents.
	fr2, err := NewFlightRecorder(t.TempDir(), time.Minute, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr2.Trigger("bare", nil)
	if err := fr2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(fr2.Incidents()) != 1 {
		t.Fatal("bare recorder wrote no incident")
	}
}
