package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newTestRecorder(t *testing.T, post time.Duration, maxIncidents int) (*FlightRecorder, *SpanSink, *Tracer) {
	t.Helper()
	sink := NewSpanSink(32)
	tracer := NewTracer(32)
	fr, err := NewFlightRecorder(t.TempDir(), post, maxIncidents, sink, tracer)
	if err != nil {
		t.Fatal(err)
	}
	sink.AttachFlightRecorder(fr)
	return fr, sink, tracer
}

func readIncident(t *testing.T, path string) Incident {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var inc Incident
	if err := json.Unmarshal(b, &inc); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return inc
}

func TestFlightRecorderCapturesPreAndPostWindow(t *testing.T) {
	fr, sink, tracer := newTestRecorder(t, 50*time.Millisecond, 0)

	sink.Emit(1, 0, "before", 0, 1, nil)
	tracer.Emit(0.5, "compromise", nil)
	fr.Trigger("compromise", map[string]any{"version": "a"})
	sink.Emit(1, 0, "during", 1, 2, nil) // inside the post-window

	time.Sleep(60 * time.Millisecond)
	// This publish lands after the post-window and also finalises it.
	sink.Emit(1, 0, "after", 2, 3, nil)

	files := fr.Incidents()
	if len(files) != 1 {
		t.Fatalf("incident files: %v", files)
	}
	inc := readIncident(t, files[0])
	if inc.Reason != "compromise" || inc.Attrs["version"] != "a" {
		t.Fatalf("incident header: %+v", inc)
	}
	kinds := map[string]bool{}
	for _, r := range inc.Spans {
		kinds[r.Kind] = true
	}
	if !kinds["before"] || !kinds["during"] {
		t.Fatalf("incident spans missing pre/post capture: %v", kinds)
	}
	if kinds["after"] {
		t.Fatal("incident captured a span past its post-window")
	}
	if len(inc.Events) != 1 || inc.Events[0].Type != "compromise" {
		t.Fatalf("incident events: %+v", inc.Events)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderFoldsSameReason(t *testing.T) {
	fr, _, _ := newTestRecorder(t, time.Minute, 0)
	fr.Trigger("divergence", nil)
	fr.Trigger("divergence", nil)
	fr.Trigger("divergence", nil)
	fr.Trigger("compromise", nil) // distinct reason: its own incident
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	files := fr.Incidents()
	if len(files) != 2 {
		t.Fatalf("incident files: %v", files)
	}
	inc := readIncident(t, files[0])
	if inc.Reason != "divergence" || inc.FollowUps != 2 {
		t.Fatalf("folding failed: reason=%s follow_ups=%d", inc.Reason, inc.FollowUps)
	}
}

func TestFlightRecorderMaxIncidents(t *testing.T) {
	fr, _, _ := newTestRecorder(t, time.Nanosecond, 2)
	time.Sleep(time.Millisecond) // every post-window expires immediately
	fr.Trigger("a", nil)
	time.Sleep(time.Millisecond)
	fr.Trigger("b", nil)
	time.Sleep(time.Millisecond)
	fr.Trigger("c", nil) // over the cap: dropped
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if files := fr.Incidents(); len(files) != 2 {
		t.Fatalf("cap not enforced: %v", files)
	}
}

func TestFlightRecorderFilenames(t *testing.T) {
	fr, _, _ := newTestRecorder(t, time.Minute, 0)
	fr.Trigger("rejuvenation_reactive", nil)
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	files := fr.Incidents()
	if len(files) != 1 {
		t.Fatalf("incident files: %v", files)
	}
	if got := filepath.Base(files[0]); got != "incident-000-rejuvenation_reactive.json" {
		t.Fatalf("incident filename %q", got)
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Trigger("x", nil)
	fr.observe(nil, 0)
	if fr.Dir() != "" || fr.Incidents() != nil {
		t.Fatal("nil recorder not empty")
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	// A recorder with neither sink nor tracer still writes incidents.
	fr2, err := NewFlightRecorder(t.TempDir(), time.Minute, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr2.Trigger("bare", nil)
	if err := fr2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(fr2.Incidents()) != 1 {
		t.Fatal("bare recorder wrote no incident")
	}
}
