package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType discriminates the three metric families.
type metricType int

const (
	typeCounter metricType = iota + 1
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricType(%d)", int(t))
	}
}

// Counter is a monotonically increasing integer metric. A nil *Counter is a
// valid no-op handle.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric. A nil *Gauge is a valid no-op handle.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (lock-free CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one labelled instance of a metric family.
type series struct {
	labels []Label // sorted by key
	key    string  // canonical rendering of labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	typ    metricType
	help   string
	series map[string]*series
}

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// Registry holds metric families and hands out live handles. Handle lookup
// takes a mutex; the returned handles themselves are lock-free atomics, so
// hot paths should resolve handles once and reuse them. A nil *Registry is a
// valid no-op: every getter returns a nil handle.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// canonLabels validates and canonicalises alternating key/value label pairs.
func canonLabels(kv []string) ([]Label, string) {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return labels, b.String()
}

// getSeries finds or creates the series for (name, labels), enforcing that a
// metric name keeps a single type for its lifetime. The series' handle is
// allocated under the registry lock (see the typ switch), so concurrent
// lookups of a new series observe exactly one Counter/Gauge/Histogram.
func (r *Registry) getSeries(name string, typ metricType, buckets []float64, kv []string) *series {
	labels, key := canonLabels(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ == 0 {
		f.typ = typ // family pre-created by Help; adopt the first metric type
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: labels, key: key}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = NewHistogram(buckets)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name and the alternating key/value label
// pairs, creating it on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.getSeries(name, typeCounter, nil, kv).c
}

// Gauge returns the gauge for name and labels, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.getSeries(name, typeGauge, nil, kv).g
}

// Histogram returns the histogram for name and labels, creating it with the
// given bucket upper bounds on first use. Later calls for an existing series
// reuse the original buckets. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, buckets []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.getSeries(name, typeHistogram, buckets, kv).h
}

// Help attaches a HELP string to a metric family (created lazily if the
// family does not exist yet, typed on first metric use). No-op on nil.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = help
		return
	}
	r.families[name] = &family{name: name, help: help, series: make(map[string]*series)}
}

// familyView is a point-in-time copy of a family's structure, safe to walk
// after the registry lock is released (the metric values themselves remain
// live atomics).
type familyView struct {
	name, help string
	typ        metricType
	series     []*series
}

// snapshot copies the families in name order; within a family the series are
// sorted by canonical label key. Exposition and summaries share this
// ordering so output is stable for golden-file tests.
func (r *Registry) snapshot() []familyView {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		if len(f.series) == 0 {
			continue // help-only family with no data yet
		}
		v := familyView{name: f.name, help: f.help, typ: f.typ,
			series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			v.series = append(v.series, s)
		}
		sort.Slice(v.series, func(i, j int) bool { return v.series[i].key < v.series[j].key })
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
