package obs

import (
	"math"
	"sort"
	"sync/atomic"

	"mvml/internal/stats"
)

// Histogram is a streaming histogram over fixed bucket upper bounds, safe
// for concurrent observation. Observations are lock-free: each falls into
// the first bucket whose upper bound is >= the value (the last, implicit
// +Inf bucket catches the rest), and a running sum/count supports the mean.
// Quantiles are estimated by linear interpolation inside the containing
// bucket, the same scheme Prometheus' histogram_quantile uses.
//
// A nil *Histogram is a valid no-op handle.
type Histogram struct {
	bounds []float64       // sorted, finite upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits; +Inf until the first observation
	max    atomic.Uint64 // float64 bits; -Inf until the first observation
}

// NewHistogram builds a histogram over the given finite upper bounds. The
// bounds are copied, sorted and deduplicated; non-finite bounds are dropped
// (the +Inf overflow bucket always exists). An empty bound list yields a
// single-bucket histogram that still tracks count/sum/mean.
func NewHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			bs = append(bs, b)
		}
	}
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	h := &Histogram{bounds: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// DefBuckets returns the conventional Prometheus default bounds, suitable
// for request latencies measured in seconds down to 5 ms.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// LatencyBuckets returns exponential bounds from 1 µs to ~2 s, matched to
// in-process inference and simulation-tick timings.
func LatencyBuckets() []float64 {
	return ExpBuckets(1e-6, 2, 21)
}

// ExpBuckets returns n bounds starting at start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket with bound >= v; len(bounds) is the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.min.Load()
		if !(v < math.Float64frombits(old)) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if !(v > math.Float64frombits(old)) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Min returns the smallest observation, or 0 when no finite-comparable
// value has been observed (empty histogram, nil handle, or NaN-only input).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	v := math.Float64frombits(h.min.Load())
	if math.IsInf(v, 1) {
		return 0
	}
	return v
}

// Max returns the largest observation, or 0 when no finite-comparable value
// has been observed.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	v := math.Float64frombits(h.max.Load())
	if math.IsInf(v, -1) {
		return 0
	}
	return v
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Bounds returns the finite bucket upper bounds (shared slice; do not
// mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of per-bucket (non-cumulative) counts,
// with the overflow (+Inf) bucket last.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) via stats.BucketQuantile
// (linear interpolation within the containing bucket). The estimate is then
// clamped into [Min(), Max()], so a quantile can never lie outside the range
// actually observed — bucket interpolation alone can overshoot when the
// observations occupy only part of a bucket. Returns 0 when the histogram is
// empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	est := stats.BucketQuantile(h.bounds, counts, q)
	lo := math.Float64frombits(h.min.Load())
	hi := math.Float64frombits(h.max.Load())
	if lo <= hi { // at least one comparable observation
		est = math.Max(lo, math.Min(hi, est))
	}
	return est
}
