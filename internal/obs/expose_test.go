package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds the fixed registry the exposition golden file
// describes.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Help("mvml_test_requests_total", "Total test requests.")
	r.Counter("mvml_test_requests_total", "code", "200").Add(3)
	r.Counter("mvml_test_requests_total", "code", "500").Inc()
	r.Gauge("mvml_test_queue_depth").Set(2.5)
	h := r.Histogram("mvml_test_latency_seconds", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.2, 0.75, 3} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Fatalf("exposition drifted from golden file (run with UPDATE_GOLDEN=1 to refresh)\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `mvml_test_requests_total{code="200"} 3`) {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
	// A nil registry still serves an empty, well-formed exposition.
	rec = httptest.NewRecorder()
	var nilReg *Registry
	nilReg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("nil registry: code %d body %q", rec.Code, rec.Body.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		4:            "4",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestSummaryJSON(t *testing.T) {
	reg := goldenRegistry()
	tr := NewTracer(2)
	tr.Emit(1, "a", nil)
	tr.Emit(2, "b", nil)
	tr.Emit(3, "c", nil)
	s := BuildSummary(reg, tr, map[string]any{"command": "test"})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Metrics []struct {
			Name      string            `json:"name"`
			Type      string            `json:"type"`
			Labels    map[string]string `json:"labels"`
			Value     *float64          `json:"value"`
			Histogram *struct {
				Count   uint64  `json:"count"`
				Sum     float64 `json:"sum"`
				Mean    float64 `json:"mean"`
				P50     float64 `json:"p50"`
				Buckets []struct {
					Le    any    `json:"le"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"histogram"`
		} `json:"metrics"`
		Trace *struct {
			Emitted  uint64 `json:"emitted"`
			Retained int    `json:"retained"`
			Dropped  uint64 `json:"dropped"`
		} `json:"trace"`
		Extra map[string]any `json:"extra"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Metrics) != 4 {
		t.Fatalf("%d metric snapshots, want 4", len(decoded.Metrics))
	}
	if decoded.Trace == nil || decoded.Trace.Emitted != 3 || decoded.Trace.Retained != 2 || decoded.Trace.Dropped != 1 {
		t.Fatalf("trace summary %+v", decoded.Trace)
	}
	if decoded.Extra["command"] != "test" {
		t.Fatalf("extra %+v", decoded.Extra)
	}
	var sawHist bool
	for _, m := range decoded.Metrics {
		if m.Type != "histogram" {
			continue
		}
		sawHist = true
		h := m.Histogram
		if h == nil || h.Count != 4 || math.Abs(h.Sum-4) > 1e-12 || math.Abs(h.Mean-1) > 1e-12 {
			t.Fatalf("histogram snapshot %+v", h)
		}
		// Buckets are cumulative and end with the string-encoded +Inf bound.
		last := h.Buckets[len(h.Buckets)-1]
		if last.Le != "+Inf" || last.Count != 4 {
			t.Fatalf("+Inf bucket %+v", last)
		}
		if h.P50 <= 0 {
			t.Fatalf("p50 %v", h.P50)
		}
	}
	if !sawHist {
		t.Fatal("no histogram in summary")
	}
	// Nil registry and tracer still build a writable summary.
	var buf2 bytes.Buffer
	if err := BuildSummary(nil, nil, nil).WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
}
