package obs

import (
	"math"
	"testing"

	"mvml/internal/xrand"
)

func TestNewHistogramCanonicalisesBounds(t *testing.T) {
	h := NewHistogram([]float64{5, 1, 3, 1, math.Inf(1), math.NaN(), 3})
	want := []float64{1, 3, 5}
	got := h.Bounds()
	if len(got) != len(want) {
		t.Fatalf("bounds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds %v, want %v", got, want)
		}
	}
	if n := len(h.BucketCounts()); n != len(want)+1 {
		t.Fatalf("%d buckets, want %d (incl. +Inf)", n, len(want)+1)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// Upper bounds are inclusive: 1 -> bucket le=1, 2 -> le=2, 4 -> le=4.
	want := []uint64{2, 2, 2, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts %v, want %v", got, want)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count %d, want 7", h.Count())
	}
	if math.Abs(h.Sum()-112) > 1e-12 {
		t.Fatalf("sum %v, want 112", h.Sum())
	}
	if math.Abs(h.Mean()-16) > 1e-12 {
		t.Fatalf("mean %v, want 16", h.Mean())
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	// 10k uniform draws over [0, 1) against fine linear buckets: the
	// interpolated quantiles must land close to the true ones.
	h := NewHistogram(LinearBuckets(0.01, 0.01, 100))
	rng := xrand.New(7)
	for i := 0; i < 10_000; i++ {
		h.Observe(rng.Float64())
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.02 {
			t.Errorf("uniform q%.2f = %v, want within 0.02", q, got)
		}
	}
}

func TestHistogramQuantileExponential(t *testing.T) {
	// Exponential(rate=1): the true q-quantile is -ln(1-q).
	h := NewHistogram(ExpBuckets(1e-3, 1.2, 60))
	rng := xrand.New(11)
	for i := 0; i < 20_000; i++ {
		h.Observe(rng.Exp(1))
	}
	for _, q := range []float64{0.5, 0.9} {
		want := -math.Log(1 - q)
		got := h.Quantile(q)
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("exp q%.2f = %v, want ~%v", q, got, want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile should be 0")
	}
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// All mass in the +Inf overflow bucket: the bucket estimate (largest
	// finite bound, 2) is clamped up into the observed range [50, 50].
	h.Observe(50)
	if got := h.Quantile(0.99); got != 50 {
		t.Errorf("overflow quantile %v, want 50 (clamped to observed min)", got)
	}
	// Out-of-range q is clamped.
	if got := h.Quantile(-1); got != 50 {
		t.Errorf("q=-1 -> %v, want 50", got)
	}
	if got := h.Quantile(2); got != 50 {
		t.Errorf("q=2 -> %v, want 50", got)
	}
	if h.Min() != 50 || h.Max() != 50 {
		t.Errorf("min/max = %v/%v, want 50/50", h.Min(), h.Max())
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := ExpBuckets(1, 2, 3); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Errorf("ExpBuckets = %v", got)
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Error("invalid ExpBuckets args should yield nil")
	}
	if got := LinearBuckets(1, 0.5, 3); len(got) != 3 || got[2] != 2 {
		t.Errorf("LinearBuckets = %v", got)
	}
	if b := DefBuckets(); len(b) == 0 || b[0] != 0.005 {
		t.Errorf("DefBuckets = %v", b)
	}
	if b := LatencyBuckets(); len(b) != 21 || b[0] != 1e-6 {
		t.Errorf("LatencyBuckets = %v", b)
	}
}

func TestNilHandlesNoOp(t *testing.T) {
	// Every nil handle must be safe and inert — this is the disabled path
	// of the whole instrumentation layer.
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.Help("x", "help")
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.Bounds() != nil || h.BucketCounts() != nil {
		t.Fatal("nil histogram must be inert")
	}
	var tr *Tracer
	tr.Emit(0, "x", nil)
	if tr.Events() != nil || tr.Len() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	if err := tr.WriteJSONL(nil); err != nil {
		t.Fatal("nil tracer WriteJSONL should be a no-op")
	}
	var rt *Runtime
	if rt.Metrics() != nil || rt.Tracer() != nil {
		t.Fatal("nil runtime must expose nil handles")
	}
}
