package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Incident is the flight recorder's self-contained snapshot of the window
// around one trigger: every span and trace event retained at trigger time
// (the pre-window, bounded by the ring capacities) plus every span that
// finished within PostWindow seconds afterwards.
type Incident struct {
	ID     int            `json:"id"`
	Reason string         `json:"reason"`
	Time   float64        `json:"t"` // sink seconds at trigger
	Attrs  map[string]any `json:"attrs,omitempty"`
	// PostWindow is the post-trigger capture horizon in seconds.
	PostWindow float64 `json:"post_window_seconds"`
	// FollowUps counts same-reason triggers folded into this incident while
	// its post-window was still open.
	FollowUps int          `json:"follow_ups,omitempty"`
	Spans     []SpanRecord `json:"spans,omitempty"`
	Events    []Event      `json:"events,omitempty"`

	// seen tracks captured span ids so the pre-trigger snapshot and the
	// publish stream never record the same span twice (a publish can race
	// the trigger: its ring insert may land before the snapshot while its
	// observer notification lands after the incident opened).
	seen map[uint64]bool
}

// capture appends recs, skipping spans this incident already holds.
func (inc *Incident) capture(recs []SpanRecord) {
	if inc.seen == nil {
		inc.seen = make(map[uint64]bool, len(recs))
		for _, r := range inc.Spans {
			inc.seen[r.ID] = true
		}
	}
	for _, r := range recs {
		if r.ID != 0 && inc.seen[r.ID] {
			continue
		}
		inc.seen[r.ID] = true
		inc.Spans = append(inc.Spans, r)
	}
}

// DefaultPostWindow is the post-trigger capture horizon used when a
// FlightRecorder is built with a non-positive one.
const DefaultPostWindow = 2 * time.Second

// DefaultMaxIncidents bounds how many incident files one run may write.
const DefaultMaxIncidents = 32

// FlightRecorder reconstructs the seconds surrounding compromise,
// divergence and rejuvenation events. It rides on the bounded rings the
// span sink and event tracer already maintain: Trigger snapshots both
// (the pre-window), then the recorder keeps appending spans as the sink
// publishes them until the post-window closes, and finally writes one
// self-contained JSON incident file into its directory.
//
// Incident finalisation is driven by subsequent span publishes and by
// Close, so a recorder never needs its own goroutine. Same-reason triggers
// arriving while an incident's post-window is open fold into it (the
// FollowUps counter), keeping a sustained fault from flooding the disk;
// the MaxIncidents cap bounds the worst case. A nil *FlightRecorder is a
// valid no-op handle.
type FlightRecorder struct {
	dir          string
	post         float64
	maxIncidents int
	sink         *SpanSink
	tracer       *Tracer

	mu      sync.Mutex
	seq     int
	open    []*Incident
	closeAt []float64 // aligned with open
	written []string
	err     error
}

// NewFlightRecorder builds a recorder writing incident files into dir
// (created if missing). sink and tracer provide the pre-trigger window and
// may each be nil independently. post <= 0 selects DefaultPostWindow;
// maxIncidents <= 0 selects DefaultMaxIncidents.
func NewFlightRecorder(dir string, post time.Duration, maxIncidents int, sink *SpanSink, tracer *Tracer) (*FlightRecorder, error) {
	if post <= 0 {
		post = DefaultPostWindow
	}
	if maxIncidents <= 0 {
		maxIncidents = DefaultMaxIncidents
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight recorder dir: %w", err)
	}
	return &FlightRecorder{
		dir:          dir,
		post:         post.Seconds(),
		maxIncidents: maxIncidents,
		sink:         sink,
		tracer:       tracer,
	}, nil
}

// Dir returns the incident directory ("" on a nil recorder).
func (f *FlightRecorder) Dir() string {
	if f == nil {
		return ""
	}
	return f.dir
}

// Trigger opens an incident for the given reason: it snapshots the span and
// event rings now and keeps capturing spans until the post-window closes.
// attrs is stored as given and must not be mutated afterwards. Triggers
// beyond the incident cap, and same-reason triggers landing inside an open
// incident's post-window, only bump counters.
func (f *FlightRecorder) Trigger(reason string, attrs map[string]any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Snapshot the pre-window while holding f.mu, so that every span is
	// captured exactly once: a concurrent publish either lands its ring
	// insert before this snapshot (captured here; its pending ObserveSpans
	// is deduplicated by Incident.capture) or after it (delivered through
	// ObserveSpans once the incident is registered). Taking the sink's lock
	// inside f.mu cannot deadlock — the sink never holds its own lock while
	// notifying observers, so no path acquires sink.mu → f.mu.
	spans := f.sink.Spans()
	events := f.tracer.Events()
	now := f.sink.Now()
	f.finalizeLocked(now)
	for i, inc := range f.open {
		if inc.Reason == reason && now < f.closeAt[i] {
			inc.FollowUps++
			return
		}
	}
	if f.seq >= f.maxIncidents {
		return
	}
	inc := &Incident{
		ID:         f.seq,
		Reason:     reason,
		Time:       now,
		Attrs:      attrs,
		PostWindow: f.post,
		Spans:      spans,
		Events:     events,
	}
	f.seq++
	f.open = append(f.open, inc)
	f.closeAt = append(f.closeAt, now+f.post)
}

// ObserveSpans implements SpanObserver: every batch of published spans
// (delivered by the sink with no sink lock held) is absorbed by the open
// incidents, and incidents whose post-window has passed are written out.
func (f *FlightRecorder) ObserveSpans(recs []SpanRecord, now float64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	// Expire first: a publish landing after an incident's post-window must
	// finalise it without being captured by it.
	f.finalizeLocked(now)
	for _, inc := range f.open {
		inc.capture(recs)
	}
}

// finalizeLocked writes out every open incident whose post-window closed.
// Caller holds f.mu.
func (f *FlightRecorder) finalizeLocked(now float64) {
	keep := f.open[:0]
	keepAt := f.closeAt[:0]
	for i, inc := range f.open {
		if now < f.closeAt[i] {
			keep = append(keep, inc)
			keepAt = append(keepAt, f.closeAt[i])
			continue
		}
		f.writeLocked(inc)
	}
	f.open = keep
	f.closeAt = keepAt
}

// writeLocked persists one incident file. Caller holds f.mu.
func (f *FlightRecorder) writeLocked(inc *Incident) {
	path := filepath.Join(f.dir, fmt.Sprintf("incident-%03d-%s.json", inc.ID, sanitizeReason(inc.Reason)))
	file, err := os.Create(path)
	if err == nil {
		enc := json.NewEncoder(file)
		enc.SetIndent("", "  ")
		err = enc.Encode(inc)
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		if f.err == nil {
			f.err = fmt.Errorf("obs: incident %d: %w", inc.ID, err)
		}
		return
	}
	f.written = append(f.written, path)
}

// sanitizeReason maps a trigger reason to a filename-safe slug.
func sanitizeReason(reason string) string {
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "incident"
	}
	return string(out)
}

// Close finalises every still-open incident regardless of its remaining
// post-window and reports the first write error.
func (f *FlightRecorder) Close() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, inc := range f.open {
		f.writeLocked(inc)
	}
	f.open = nil
	f.closeAt = nil
	return f.err
}

// Incidents returns the paths of every incident file written so far.
func (f *FlightRecorder) Incidents() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.written...)
}
