package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one structured trace record. Time is the component's own clock —
// simulated seconds for the simulation stack — so traces from deterministic
// runs are themselves deterministic; Seq is a global emission index that
// survives ring-buffer eviction (the oldest retained event's Seq reveals how
// many were dropped).
type Event struct {
	Seq   uint64         `json:"seq"`
	Time  float64        `json:"t"`
	Type  string         `json:"type"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer collects events into a bounded ring buffer: emission is O(1), the
// newest `capacity` events are retained, and the total emitted/dropped
// counts are tracked. A nil *Tracer is a valid no-op handle.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	size    int
	next    uint64 // next Seq
	dropped uint64
	dropC   *Counter // optional registry counter mirroring dropped
}

// NewTracer returns a tracer retaining up to capacity events (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit appends an event. Attrs may be nil; the map is stored as-is, so
// callers must not mutate it afterwards.
func (t *Tracer) Emit(time float64, typ string, attrs map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Event{Seq: t.next, Time: time, Type: typ, Attrs: attrs}
	t.next++
	if t.size < len(t.buf) {
		t.buf[(t.start+t.size)%len(t.buf)] = e
		t.size++
		return
	}
	t.buf[t.start] = e
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
	t.dropC.Inc()
}

// SetDropCounter mirrors ring-buffer evictions into a registry counter so
// silent event loss becomes visible on the metrics path.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropC = c
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.size)
	for i := 0; i < t.size; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Emitted returns the total number of events ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Dropped returns how many events the ring evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes the retained events as JSON Lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("obs: encoding trace event %d: %w", e.Seq, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines trace back into events (blank lines are
// skipped), the inverse of WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: decoding trace line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}
