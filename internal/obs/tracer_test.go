package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(float64(i), "e", nil)
	}
	if tr.Emitted() != 5 || tr.Len() != 3 || tr.Dropped() != 2 {
		t.Fatalf("emitted=%d len=%d dropped=%d", tr.Emitted(), tr.Len(), tr.Dropped())
	}
	evs := tr.Events()
	// The newest 3 survive, oldest first, with their original Seq numbers.
	for i, want := range []uint64{2, 3, 4} {
		if evs[i].Seq != want || evs[i].Time != float64(want) {
			t.Fatalf("events %+v", evs)
		}
	}
}

func TestTracerCapacityFloor(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(1, "a", nil)
	tr.Emit(2, "b", nil)
	if tr.Len() != 1 || tr.Events()[0].Type != "b" {
		t.Fatalf("capacity floor: %+v", tr.Events())
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(0.5, "state_transition", map[string]any{"module": "v1", "from": "H", "to": "C"})
	tr.Emit(1.25, "collision", nil)
	tr.Emit(2, "run_end", map[string]any{"frames": float64(120), "completed": true})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("%d lines, want 3:\n%s", got, buf.String())
	}

	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(back) != len(want) {
		t.Fatalf("round-trip %d events, want %d", len(back), len(want))
	}
	for i := range want {
		if back[i].Seq != want[i].Seq || back[i].Time != want[i].Time || back[i].Type != want[i].Type {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, back[i], want[i])
		}
	}
	if back[0].Attrs["module"] != "v1" || back[2].Attrs["completed"] != true {
		t.Fatalf("attrs lost: %+v", back)
	}
	// Blank lines and surrounding whitespace are tolerated.
	evs, err := ReadJSONL(strings.NewReader("\n{\"seq\":9,\"t\":1,\"type\":\"x\"}\n\n"))
	if err != nil || len(evs) != 1 || evs[0].Seq != 9 {
		t.Fatalf("blank-line parse: %v %+v", err, evs)
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
}
