package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpanTraceStructure(t *testing.T) {
	s := NewSpanSink(64)
	root := s.StartTrace("request")
	root.SetAttr("class", 3)
	child := root.Child("vote")
	child.End()
	id := root.Interval("queue_wait", 0.5, 1.5, nil)
	if id == 0 {
		t.Fatal("Interval returned id 0")
	}
	root.IntervalUnder(id, "forward", 0.6, 1.0, map[string]any{"version": "a"})
	if got := s.Published(); got != 0 {
		t.Fatalf("children published before root ended: %d", got)
	}
	root.End()

	recs := s.Spans()
	if len(recs) != 4 {
		t.Fatalf("got %d spans, want 4", len(recs))
	}
	byKind := map[string]SpanRecord{}
	for _, r := range recs {
		if r.Trace != root.TraceID() {
			t.Fatalf("span %q has trace %d, want %d", r.Kind, r.Trace, root.TraceID())
		}
		byKind[r.Kind] = r
	}
	if byKind["vote"].Parent != root.ID() {
		t.Fatalf("vote parent = %d, want root %d", byKind["vote"].Parent, root.ID())
	}
	if byKind["forward"].Parent != byKind["queue_wait"].ID {
		t.Fatal("IntervalUnder did not link forward under queue_wait")
	}
	if byKind["request"].Attrs["class"] != 3 {
		t.Fatalf("root attrs = %v", byKind["request"].Attrs)
	}
	if d := byKind["queue_wait"].Duration(); d != 1.0 {
		t.Fatalf("queue_wait duration = %v, want 1.0", d)
	}
	// The root is published last, so the whole trace went out in one batch.
	if recs[len(recs)-1].Kind != "request" {
		t.Fatalf("last published span is %q, want request", recs[len(recs)-1].Kind)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := NewSpanSink(8)
	sp := s.StartTrace("request")
	sp.End()
	sp.End()
	if got := s.Published(); got != 1 {
		t.Fatalf("double End published %d spans, want 1", got)
	}
}

func TestSpanLateChildPublishesDirectly(t *testing.T) {
	s := NewSpanSink(8)
	root := s.StartTrace("request")
	root.End()
	root.Interval("reply", 1, 2, nil)
	if got := s.Published(); got != 2 {
		t.Fatalf("late child not published: %d spans", got)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *SpanSink
	if s.Now() != 0 || s.NewTraceID() != 0 || s.Published() != 0 || s.Dropped() != 0 {
		t.Fatal("nil sink not zero-valued")
	}
	if s.Spans() != nil {
		t.Fatal("nil sink returned spans")
	}
	s.SetWriter(&bytes.Buffer{})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Emit(1, 0, "x", 0, 1, nil) != 0 {
		t.Fatal("nil sink emitted")
	}
	sp := s.StartTrace("request")
	if sp != nil {
		t.Fatal("nil sink returned a live span")
	}
	// Every method of a nil span is a no-op.
	sp.SetAttr("k", 1)
	if sp.Child("c") != nil {
		t.Fatal("nil span produced a child")
	}
	if sp.Interval("i", 0, 1, nil) != 0 || sp.IntervalUnder(7, "i", 0, 1, nil) != 0 {
		t.Fatal("nil span recorded an interval")
	}
	sp.End()
	sp.EndAt(5)
	if sp.TraceID() != 0 || sp.ID() != 0 {
		t.Fatal("nil span has ids")
	}
}

func TestSpanRingEviction(t *testing.T) {
	s := NewSpanSink(2)
	for i := 0; i < 5; i++ {
		s.Emit(1, 0, "x", float64(i), float64(i)+1, nil)
	}
	if got := s.Published(); got != 5 {
		t.Fatalf("published %d, want 5", got)
	}
	if got := s.Dropped(); got != 3 {
		t.Fatalf("dropped %d, want 3", got)
	}
	recs := s.Spans()
	if len(recs) != 2 || recs[0].Start != 3 || recs[1].Start != 4 {
		t.Fatalf("ring retained %v", recs)
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	s := NewSpanSink(16)
	var buf bytes.Buffer
	s.SetWriter(&buf)
	root := s.StartTrace("request")
	root.Child("vote").End()
	root.End()
	s.Emit(9, 0, "rejuvenation", 1, 2, map[string]any{"version": "b"})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("wrote %d lines, want 3", lines)
	}
	recs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d spans, want 3", len(recs))
	}
	last := recs[2]
	if last.Kind != "rejuvenation" || last.Trace != 9 || last.Attrs["version"] != "b" {
		t.Fatalf("round-trip mangled record: %+v", last)
	}
}

func TestSpanIDsUnique(t *testing.T) {
	s := NewSpanSink(64)
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		sp := s.StartTrace("request")
		c := sp.Child("c")
		for _, id := range []uint64{sp.ID(), c.ID()} {
			if id == 0 || seen[id] {
				t.Fatalf("duplicate or zero span id %d", id)
			}
			seen[id] = true
		}
		c.End()
		sp.End()
	}
}
