package tsdb

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"mvml/internal/health"
	"mvml/internal/obs"
)

func TestIngesterAggregatesSpanStream(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 120})
	ing := NewIngester(s, nil)
	Replay(demoSpans(), ing)

	horizon := ing.MaxT() + 1
	reqA := s.SumOver(SeriesRequests, 0, horizon, "kind", "request", "shard", "shard-a")
	reqB := s.SumOver(SeriesRequests, 0, horizon, "kind", "request", "shard", "shard-b")
	if reqA+reqB != 119 { // 120 traces minus the rejuvenation
		t.Fatalf("requests a+b = %v+%v, want 119", reqA, reqB)
	}
	if errs := s.FamilySumOver(SeriesErrors, 0, horizon); errs == 0 {
		t.Fatal("no errors ingested")
	}
	if lc := s.SumOver(SeriesLifecycle, 0, horizon, "kind", "rejuvenation"); lc != 1 {
		t.Fatalf("lifecycle rejuvenations = %v, want 1", lc)
	}
	if _, ok := s.QuantileOver(SeriesStage, 0, horizon, 0.5, "kind", "forward", "shard", "shard-a", "version", "v0"); !ok {
		t.Fatal("no per-version forward latency series")
	}
	if v, ok := s.LastValue(SeriesQueue, "shard", "shard-a"); !ok || v < 0 {
		t.Fatalf("queue depth = %v,%v", v, ok)
	}
	// Root request latency histograms carry trace exemplars.
	if ex := s.Exemplars(SeriesStage, "kind", "request", "shard", "shard-a"); len(ex) == 0 {
		t.Fatal("no exemplars on request latency")
	}
	// A slow trace's exemplar resolves near the tail.
	if e, ok := s.ExemplarNear(SeriesStage, 0.5, "kind", "request", "shard", "shard-a"); !ok || e.Trace == 0 {
		t.Fatalf("tail exemplar = %+v,%v", e, ok)
	}
}

// TestLiveEqualsReplay drives a real sink (sampler installed, ingester
// attached post-sampling, JSONL export on) and then replays the export into
// a second store: content and rule/alert state must match exactly.
func TestLiveEqualsReplay(t *testing.T) {
	var jsonl bytes.Buffer
	sink := obs.NewSpanSink(4096)
	sink.SetWriter(&jsonl)
	sink.SetSampler(obs.NewSampler(obs.SampleConfig{Rate: 0.2, Seed: 9}))

	live := New(Config{BucketSeconds: 1, Buckets: 120})
	liveRules := NewRules(live, 1, DefaultServingRules(healthDefaults()))
	liveIng := NewIngester(live, liveRules)
	sink.AttachSampled(liveIng)

	for i := 0; i < 120; i++ {
		sink.EmitBatch(buildTrace(i))
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadSpans(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || uint64(len(recs)) != sink.Retained() {
		t.Fatalf("export holds %d records, sink retained %d", len(recs), sink.Retained())
	}

	replay := New(Config{BucketSeconds: 1, Buckets: 120})
	replayRules := NewRules(replay, 1, DefaultServingRules(healthDefaults()))
	Replay(recs, NewIngester(replay, replayRules))

	var a, b bytes.Buffer
	if err := live.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := replay.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("live store != replay store\n--- live ---\n%s\n--- replay ---\n%s", a.String(), b.String())
	}
	if !reflect.DeepEqual(liveRules.Alerts(), replayRules.Alerts()) {
		t.Fatalf("alert state diverged: live %+v replay %+v", liveRules.Alerts(), replayRules.Alerts())
	}
	ja, _ := json.Marshal(BuildReport(live, liveRules))
	jb, _ := json.Marshal(BuildReport(replay, replayRules))
	if !bytes.Equal(ja, jb) {
		t.Fatal("JSON reports diverged between live and replay")
	}
}

// TestSamplingKeepsEveryIncidentAndSlowTrace checks the acceptance bar: at
// a 10% normal-traffic rate, every error, degraded, slow and lifecycle
// trace survives sampling, and their exemplar links resolve.
func TestSamplingKeepsEveryIncidentAndSlowTrace(t *testing.T) {
	var jsonl bytes.Buffer
	sink := obs.NewSpanSink(8192)
	sink.SetWriter(&jsonl)
	sink.SetSampler(obs.NewSampler(obs.SampleConfig{Rate: 0.1, Seed: 1}))
	store := New(Config{BucketSeconds: 1, Buckets: 120})
	ing := NewIngester(store, nil)
	sink.AttachSampled(ing)

	for i := 0; i < 120; i++ {
		sink.EmitBatch(buildTrace(i))
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadSpans(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	retained := map[uint64]bool{}
	for _, r := range recs {
		retained[r.Trace] = true
	}
	for i := 0; i < 120; i++ {
		dur, errAttr, kind := traceSpec(i)
		mustKeep := errAttr || kind != "request" || dur >= obs.DefaultSlowSeconds || i%13 == 2
		if mustKeep && !retained[uint64(1+i)] {
			t.Fatalf("trace %d (dur=%v err=%v kind=%s) sampled out", 1+i, dur, errAttr, kind)
		}
	}
	// Exemplar link works: a tail exemplar resolves to a retained trace.
	for _, shard := range []string{"shard-a", "shard-b"} {
		e, ok := store.ExemplarNear(SeriesStage, 0.5, "kind", "request", "shard", shard)
		if !ok || !retained[e.Trace] {
			t.Fatalf("%s: tail exemplar %+v not retained", shard, e)
		}
	}
}

func TestRulesAlertLifecycleFeedsHealthEngine(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 600})
	rules := NewRules(s, 1, DefaultServingRules(healthDefaults()))
	reg := obs.NewRegistry()
	rules.Register(reg)
	eng := health.NewEngine(health.Options{}, reg)
	rules.AddSink(eng)

	// Healthy traffic for 40s, then a 20s error storm, then recovery.
	emit := func(t0 float64, n int, errRate float64) {
		for i := 0; i < n; i++ {
			ts := t0 + float64(i)*0.01
			s.Add(SeriesRequests, ts, 1, "kind", "request", "shard", "a")
			s.Observe(SeriesStage, ts, 0.01, "kind", "request", "shard", "a")
			if errRate > 0 && float64(i%100) < errRate*100 {
				s.Add(SeriesErrors, ts, 1, "kind", "request", "shard", "a")
			}
		}
	}
	for sec := 0; sec < 40; sec++ {
		emit(float64(sec), 50, 0)
		rules.Advance(float64(sec + 1))
	}
	if g := reg.Gauge(MetricAlertFiring, "alert", AlertHighErrorRate).Value(); g != 0 {
		t.Fatalf("error alert firing during healthy traffic")
	}
	for sec := 40; sec < 60; sec++ {
		emit(float64(sec), 50, 0.5)
		rules.Advance(float64(sec + 1))
	}
	alerts := rules.Alerts()
	var errAlert *AlertStatus
	for i := range alerts {
		if alerts[i].Name == AlertHighErrorRate {
			errAlert = &alerts[i]
		}
	}
	if errAlert == nil || !errAlert.Firing {
		t.Fatalf("error alert not firing after storm: %+v", alerts)
	}
	if g := reg.Gauge(MetricAlertFiring, "alert", AlertHighErrorRate).Value(); g != 1 {
		t.Fatal("mv_tsdb_alert_firing gauge not set")
	}
	if lvl := eng.Level("alert:" + AlertHighErrorRate); lvl != health.Critical {
		t.Fatalf("health component level = %v, want Critical", lvl)
	}
	// Recovery: clean traffic long enough to drain the 30s window.
	for sec := 60; sec < 100; sec++ {
		emit(float64(sec), 50, 0)
		rules.Advance(float64(sec + 1))
	}
	if lvl := eng.Level("alert:" + AlertHighErrorRate); lvl != health.Healthy {
		t.Fatalf("health component did not recover: %v", lvl)
	}
	// The p99 recording rule has a value (autoscaler signal path).
	if v, ok := s.LastValue(RuleP99Latency); !ok || v <= 0 {
		t.Fatalf("p99 recording rule = %v,%v", v, ok)
	}
}
