package tsdb

import (
	"strings"
	"testing"

	"mvml/internal/obs"
)

func TestParseTextLabelsAndTypes(t *testing.T) {
	in := `# HELP mv_req_total requests
# TYPE mv_req_total counter
mv_req_total{shard="a",msg="he said \"hi\""} 42
mv_req_total{shard="b"} 7
# TYPE mv_depth gauge
mv_depth 3.5
# TYPE mv_lat_seconds histogram
mv_lat_seconds_bucket{le="0.1"} 9
mv_lat_seconds_bucket{le="+Inf"} 10
mv_lat_seconds_sum 1.25
mv_lat_seconds_count 10
`
	parsed, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Types["mv_req_total"] != "counter" || parsed.Types["mv_lat_seconds"] != "histogram" {
		t.Fatalf("types = %v", parsed.Types)
	}
	if len(parsed.Samples) != 7 {
		t.Fatalf("samples = %d, want 7", len(parsed.Samples))
	}
	first := parsed.Samples[0]
	if first.Value != 42 {
		t.Fatalf("first sample = %+v", first)
	}
	got := canonKV(first.Labels)
	if !strings.Contains(got, `msg="he said \"hi\""`) || !strings.Contains(got, `shard="a"`) {
		t.Fatalf("escaped labels mangled: %s", got)
	}
}

func TestScraperCounterDeltasAndResets(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{BucketSeconds: 1, Buckets: 60})
	sc := NewScraper(s)
	c := reg.Counter("mv_demo_total", "shard", "a")
	g := reg.Gauge("mv_demo_depth")
	h := reg.Histogram("mv_demo_latency_seconds", obs.DefBuckets())

	c.Add(10)
	g.Set(4)
	h.Observe(0.05)
	if err := sc.ScrapeRegistry(reg, 1); err != nil {
		t.Fatal(err)
	}
	// First sight of a counter establishes the baseline: nothing recorded.
	if got := s.SumOver("mv_demo_total", 0, 10, "shard", "a"); got != 0 {
		t.Fatalf("baseline scrape recorded %v, want 0", got)
	}
	// Gauges land immediately.
	if v, ok := s.LastValue("mv_demo_depth"); !ok || v != 4 {
		t.Fatalf("gauge = %v,%v", v, ok)
	}

	c.Add(5)
	h.Observe(0.2)
	if err := sc.ScrapeRegistry(reg, 2); err != nil {
		t.Fatal(err)
	}
	if got := s.SumOver("mv_demo_total", 0, 10, "shard", "a"); got != 5 {
		t.Fatalf("delta = %v, want 5", got)
	}
	// Histogram component series accumulate like counters.
	if got := s.SumOver("mv_demo_latency_seconds_count", 0, 10); got != 1 {
		t.Fatalf("hist count delta = %v, want 1", got)
	}

	// Counter reset (fresh registry, lower value): counted from zero.
	reg2 := obs.NewRegistry()
	reg2.Counter("mv_demo_total", "shard", "a").Add(3)
	if err := sc.ScrapeRegistry(reg2, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.SumOver("mv_demo_total", 0, 10, "shard", "a"); got != 8 {
		t.Fatalf("post-reset sum = %v, want 8", got)
	}
}

func TestScraperSkipsSelfMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{BucketSeconds: 1, Buckets: 60})
	s.Register(reg)
	s.Add("mv_demo_total", 0.5, 1) // makes mv_tsdb_samples_total nonzero
	sc := NewScraper(s)
	if err := sc.ScrapeRegistry(reg, 1); err != nil {
		t.Fatal(err)
	}
	if err := sc.ScrapeRegistry(reg, 2); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.SeriesNames() {
		if strings.HasPrefix(name, "mv_tsdb_") {
			t.Fatalf("self-metric %s scraped into the store", name)
		}
	}
}
