package tsdb

import (
	"bytes"
	"strings"
	"testing"

	"mvml/internal/obs"
)

func TestStoreRateAndGaugeBuckets(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 10})
	s.Add("req", 0.2, 1, "shard", "a")
	s.Add("req", 0.9, 1, "shard", "a")
	s.Add("req", 1.1, 1, "shard", "a")
	if got := s.SumOver("req", 0, 0.99, "shard", "a"); got != 2 {
		t.Fatalf("bucket 0 sum = %v, want 2", got)
	}
	if got := s.SumOver("req", 0, 2, "shard", "a"); got != 3 {
		t.Fatalf("window sum = %v, want 3", got)
	}
	if got := s.RateOver("req", 0, 3, "shard", "a"); got != 1 {
		t.Fatalf("rate = %v, want 1", got)
	}

	s.Set("depth", 1.5, 7)
	s.Set("depth", 1.2, 4) // earlier write in the same bucket loses
	if v, ok := s.LastValue("depth"); !ok || v != 7 {
		t.Fatalf("LastValue = %v,%v want 7,true", v, ok)
	}
	s.Set("depth", 5.0, 2)
	if v, _ := s.LastValue("depth"); v != 2 {
		t.Fatalf("LastValue after later bucket = %v, want 2", v)
	}
}

func TestStoreRetentionEviction(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 4})
	for i := 0; i < 10; i++ {
		s.Add("req", float64(i)+0.5, 1)
	}
	// Buckets 0..5 have been recycled; only 6..9 remain.
	if got := s.SumOver("req", 0, 20); got != 4 {
		t.Fatalf("retained sum = %v, want 4", got)
	}
	if got := s.SumOver("req", 0, 5.99); got != 0 {
		t.Fatalf("evicted window sum = %v, want 0", got)
	}
}

func TestStoreHistogramQuantileAndExemplars(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 60})
	for i := 0; i < 99; i++ {
		s.ObserveEx("lat", float64(i%10)+0.5, 0.01, uint64(100+i), "kind", "request")
	}
	s.ObserveEx("lat", 5.5, 0.9, 7777, "kind", "request")
	q, ok := s.QuantileOver("lat", 0, 60, 0.5, "kind", "request")
	if !ok || q > 0.05 {
		t.Fatalf("p50 = %v,%v", q, ok)
	}
	q99, ok := s.QuantileOver("lat", 0, 60, 0.999, "kind", "request")
	if !ok || q99 < 0.5 {
		t.Fatalf("p99.9 = %v, want near 0.9+", q99)
	}
	frac, ok := s.FracBelow("lat", 0, 60, 0.25, "kind", "request")
	if !ok || frac < 0.98 || frac > 1 {
		t.Fatalf("FracBelow(0.25) = %v,%v", frac, ok)
	}
	// The slow observation's exemplar is retrievable near its value.
	e, ok := s.ExemplarNear("lat", 0.9, "kind", "request")
	if !ok || e.Trace != 7777 {
		t.Fatalf("ExemplarNear(0.9) = %+v,%v want trace 7777", e, ok)
	}
	// And a mid-range lookup still resolves to some exemplar.
	if _, ok := s.ExemplarNear("lat", 0.05, "kind", "request"); !ok {
		t.Fatal("no exemplar near 0.05")
	}
	if got := len(s.Exemplars("lat", "kind", "request")); got < 2 {
		t.Fatalf("exemplar count = %d, want >= 2", got)
	}
}

func TestStoreFamilyQueriesAcrossShards(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 60})
	s.Add(SeriesRequests, 1, 5, "kind", "request", "shard", "a")
	s.Add(SeriesRequests, 1, 7, "kind", "request", "shard", "b")
	s.Observe(SeriesStage, 1, 0.1, "kind", "request", "shard", "a")
	s.Observe(SeriesStage, 1, 0.3, "kind", "request", "shard", "b")
	s.Observe(SeriesStage, 1, 9.0, "kind", "rejuvenation", "shard", "")
	if got := s.FamilySumOver(SeriesRequests, 0, 2); got != 12 {
		t.Fatalf("family sum = %v, want 12", got)
	}
	q, ok := s.FamilyQuantileOver(SeriesStage, 0, 2, 0.99, "kind", "request")
	if !ok || q > 1 {
		t.Fatalf("family p99 = %v,%v — rejuvenation series must be excluded", q, ok)
	}
	frac, ok := s.FamilyFracBelow(SeriesStage, 0, 2, 0.2, "kind", "request")
	if !ok || frac != 0.5 {
		t.Fatalf("family FracBelow = %v,%v want 0.5", frac, ok)
	}
	s.Set(SeriesQueue, 1, 3, "shard", "a")
	s.Set(SeriesQueue, 1, 4, "shard", "b")
	if sum, ok := s.FamilyLastSum(SeriesQueue); !ok || sum != 7 {
		t.Fatalf("FamilyLastSum = %v,%v want 7", sum, ok)
	}
}

func TestStoreSeriesOverflowCounted(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 4, MaxSeries: 2})
	reg := obs.NewRegistry()
	s.Register(reg)
	s.Add("a", 1, 1)
	s.Add("b", 1, 1)
	s.Add("c", 1, 1) // refused
	if got := reg.Counter(MetricOverflow).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricOverflow, got)
	}
	if got := reg.Gauge(MetricSeries).Value(); got != 2 {
		t.Fatalf("%s = %v, want 2", MetricSeries, got)
	}
}

func TestStoreExpositionByteStable(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 60})
	reg := obs.NewRegistry()
	s.Register(reg)
	rules := NewRules(s, 1, DefaultServingRules(healthDefaults()))
	rules.Register(reg)
	ing := NewIngester(s, rules)
	Replay(demoSpans(), ing)

	var a, b bytes.Buffer
	if err := s.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("store exposition not byte-stable across repeated writes")
	}
	text := a.String()
	for _, want := range []string{SeriesRequests, SeriesStage, "# {trace=\"", RuleP99Latency} {
		if !strings.Contains(text, want) {
			t.Fatalf("store exposition missing %q:\n%s", want, text)
		}
	}

	var ra, rb bytes.Buffer
	if err := reg.WritePrometheus(&ra); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Fatal("registry exposition not byte-stable")
	}
	rtext := ra.String()
	for _, want := range []string{MetricSamples, MetricSeries, MetricRuleValue, MetricAlertFiring} {
		if !strings.Contains(rtext, want) {
			t.Fatalf("registry exposition missing %q", want)
		}
	}
}
