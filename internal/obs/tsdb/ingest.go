package tsdb

import (
	"sync"

	"mvml/internal/obs"
)

// Span-derived series names. The mv_tsdb_ prefix marks content that came
// through the store (as opposed to the live registry's mvserve_*/mvgateway_*
// families scraped alongside).
const (
	SeriesRequests  = "mv_tsdb_requests_total"
	SeriesErrors    = "mv_tsdb_errors_total"
	SeriesDegraded  = "mv_tsdb_degraded_total"
	SeriesLifecycle = "mv_tsdb_lifecycle_total"
	SeriesStage     = "mv_tsdb_stage_latency_seconds"
	SeriesQueue     = "mv_tsdb_queue_depth"
	SeriesBatch     = "mv_tsdb_batch_size"
)

// rootKind reports whether kind is normal serving traffic when seen on a
// root span ("request" at a shard, "route" at the gateway).
func trafficRoot(kind string) bool { return kind == "request" || kind == "route" }

// Ingester aggregates a span stream into a Store: per-stage/per-shard
// latency histograms with exemplar links, request/error/degraded rates,
// queue-depth and batch-size streams, and lifecycle counts. It implements
// obs.SpanObserver and is meant to be attached with SpanSink.AttachSampled,
// so a store fed live and one replayed from the retained spans.jsonl see
// the exact same records.
//
// The ingester's clock advances only on span end timestamps — never the
// wall — which is what makes live == replay hold bit-for-bit. After each
// batch it advances the attached rule engine (if any) to the newest span
// time seen.
type Ingester struct {
	store *Store
	rules *Rules // optional; advanced on the span clock

	mu      sync.Mutex
	shardOf map[uint64]string // trace → shard fallback for shard-less spans
	fifo    []uint64          // bounded eviction over shardOf
	next    int
	maxT    float64
}

// shardCache bounds the trace → shard fallback memory.
const shardCache = 4096

// NewIngester returns an ingester writing into store and advancing rules
// (which may be nil) on the span clock.
func NewIngester(store *Store, rules *Rules) *Ingester {
	return &Ingester{store: store, rules: rules,
		shardOf: make(map[uint64]string), fifo: make([]uint64, shardCache)}
}

// ObserveSpans ingests one published batch. Batches are whole traces in the
// live pipeline; Replay reconstructs the same batching from a JSONL export.
func (in *Ingester) ObserveSpans(recs []obs.SpanRecord, _ float64) {
	if in == nil || len(recs) == 0 {
		return
	}
	in.mu.Lock()
	// Pre-scan: a trace's shard is announced by whichever spans carry the
	// attribute (the root always does in serve/gateway); remember it so
	// shard-less members of the same trace — including late children in a
	// later batch — are attributed correctly.
	for i := range recs {
		if sh := attrString(recs[i].Attrs["shard"]); sh != "" {
			in.remember(recs[i].Trace, sh)
		}
	}
	for i := range recs {
		in.ingest(&recs[i])
	}
	maxT := in.maxT
	in.mu.Unlock()
	in.rules.Advance(maxT)
}

// remember caches trace → shard with FIFO eviction. Caller holds in.mu.
func (in *Ingester) remember(trace uint64, shard string) {
	if _, ok := in.shardOf[trace]; ok {
		return
	}
	if old := in.fifo[in.next]; old != 0 {
		delete(in.shardOf, old)
	}
	in.fifo[in.next] = trace
	in.next = (in.next + 1) % len(in.fifo)
	in.shardOf[trace] = shard
}

// ingest aggregates one record. Caller holds in.mu.
func (in *Ingester) ingest(rec *obs.SpanRecord) {
	if rec.End > in.maxT {
		in.maxT = rec.End
	}
	t := rec.End
	shard := attrString(rec.Attrs["shard"])
	if shard == "" {
		shard = in.shardOf[rec.Trace]
	}

	isRoot := rec.Parent == 0
	switch {
	case isRoot && trafficRoot(rec.Kind):
		in.store.Add(SeriesRequests, t, 1, "kind", rec.Kind, "shard", shard)
		in.store.ObserveEx(SeriesStage, t, rec.Duration(), rec.Trace,
			"kind", rec.Kind, "shard", shard)
		if attrBool(rec.Attrs["degraded"]) {
			in.store.Add(SeriesDegraded, t, 1, "shard", shard)
		}
	case isRoot:
		// Lifecycle / simulation roots: rejuvenation, drain, resize, scale,
		// shed, ... — rare, always retained by the sampler, each one a
		// timeline event.
		in.store.Add(SeriesLifecycle, t, 1, "kind", rec.Kind)
		in.store.ObserveEx(SeriesStage, t, rec.Duration(), rec.Trace,
			"kind", rec.Kind, "shard", shard)
	default:
		// Pipeline stage inside a trace. The version label (forwards carry
		// it) splits per-model-version latency without exploding the rest.
		kv := []string{"kind", rec.Kind, "shard", shard}
		if v := attrString(rec.Attrs["version"]); v != "" {
			kv = append(kv, "version", v)
		}
		in.store.ObserveEx(SeriesStage, t, rec.Duration(), rec.Trace, kv...)
	}

	if rec.Attrs != nil {
		if rec.Attrs["error"] != nil {
			in.store.Add(SeriesErrors, t, 1, "kind", rec.Kind, "shard", shard)
		}
		if rec.Kind == "batch" {
			if d, ok := attrFloat(rec.Attrs["queue_depth"]); ok {
				in.store.Set(SeriesQueue, t, d, "shard", shard)
			}
			if b, ok := attrFloat(rec.Attrs["batch_size"]); ok {
				in.store.Observe(SeriesBatch, t, b, "shard", shard)
			}
		}
	}
}

// MaxT returns the newest span end time ingested so far.
func (in *Ingester) MaxT() float64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.maxT
}

// Replay feeds a JSONL span export through the ingester with the live
// pipeline's batching reconstructed: the sink publishes whole traces as
// single batches, so runs of consecutive same-trace records are exactly the
// live batches (a late child merged into an adjacent run aggregates
// identically — per-record aggregation only consults the shared trace→shard
// cache). After the final batch the attached rule engine has advanced to the
// last span time, so rule/alert state matches the live run too.
func Replay(recs []obs.SpanRecord, in *Ingester) {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Trace == recs[i].Trace {
			j++
		}
		in.ObserveSpans(recs[i:j], recs[j-1].End)
		i = j
	}
}

// attrString mirrors the health engine's attribute coercion: JSON replay
// yields strings as-is.
func attrString(v any) string {
	s, _ := v.(string)
	return s
}

// attrBool coerces a span attribute to bool.
func attrBool(v any) bool {
	b, _ := v.(bool)
	return b
}

// attrFloat coerces a span attribute to float64: live maps hold ints,
// JSON-replayed maps hold float64.
func attrFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	}
	return 0, false
}
