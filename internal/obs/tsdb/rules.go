package tsdb

import (
	"sync"

	"mvml/internal/health"
	"mvml/internal/obs"
)

// Cmp orients an alert rule's threshold comparison.
type Cmp int

const (
	// CmpNone marks a recording-only rule (no alert).
	CmpNone Cmp = iota
	// CmpAbove fires when the expression exceeds the threshold.
	CmpAbove
	// CmpBelow fires when the expression falls below the threshold.
	CmpBelow
)

// Rule is one recording/alert rule: Expr is evaluated over the store at
// every evaluation boundary; the value is recorded back into the store as a
// gauge series named Name (so rule outputs are themselves queryable and
// dashboard-visible), and — when Cmp is not CmpNone — compared against
// Threshold, firing after the condition holds for ForSeconds.
type Rule struct {
	Name string
	// Expr computes the rule's value at evaluation time t; ok=false (no
	// data) records nothing and treats the alert condition as not met.
	Expr func(s *Store, t float64) (v float64, ok bool)

	Threshold  float64
	Cmp        Cmp
	ForSeconds float64
	// Critical escalates the fed health component to Critical instead of
	// Degraded.
	Critical bool
	// Reason annotates transitions pushed to alert sinks.
	Reason string
}

// AlertSink receives alert transitions. health.Engine implements it
// (ObserveAlert), as does the dashboard's alert log.
type AlertSink interface {
	ObserveAlert(name string, critical, firing bool, t float64, reason string)
}

// AlertStatus is one alert's current state, for snapshots.
type AlertStatus struct {
	Name      string  `json:"name"`
	Critical  bool    `json:"critical"`
	Firing    bool    `json:"firing"`
	Since     float64 `json:"since,omitempty"` // firing: time the condition began
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Reason    string  `json:"reason,omitempty"`
}

// alertState tracks one rule's pending/firing machinery.
type alertState struct {
	pendingSince float64 // condition-true start, -1 when not pending
	firing       bool
	lastValue    float64
	lastOK       bool
}

// Rules evaluates a fixed rule set over a store at a fixed cadence on the
// span clock: Advance(t) evaluates every elapsed boundary exactly once, so
// the rule/alert timeline from a live run and from a replay of the same
// spans is identical.
type Rules struct {
	store *Store
	every float64

	mu      sync.Mutex
	rules   []Rule
	state   []alertState
	lastIdx int64
	sinks   []AlertSink

	valueG  []*obs.Gauge
	firingG []*obs.Gauge
}

// Metric names for rule outputs mirrored into the registry.
const (
	MetricRuleValue   = "mv_tsdb_rule_value"
	MetricAlertFiring = "mv_tsdb_alert_firing"
)

// NewRules returns a rule engine evaluating rules every `every` seconds
// (<= 0 selects 1s). A nil *Rules is a valid no-op handle.
func NewRules(store *Store, every float64, rules []Rule) *Rules {
	if every <= 0 {
		every = 1
	}
	r := &Rules{store: store, every: every, rules: rules,
		state: make([]alertState, len(rules)), lastIdx: -1,
		valueG: make([]*obs.Gauge, len(rules)), firingG: make([]*obs.Gauge, len(rules))}
	for i := range r.state {
		r.state[i].pendingSince = -1
	}
	return r
}

// Register mirrors rule values and alert firing states into reg as
// mv_tsdb_rule_value{rule=...} / mv_tsdb_alert_firing{alert=...} gauges.
func (r *Rules) Register(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.Help(MetricRuleValue, "Latest recording-rule value by rule name.")
	reg.Help(MetricAlertFiring, "1 while the named alert is firing, else 0.")
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rule := range r.rules {
		r.valueG[i] = reg.Gauge(MetricRuleValue, "rule", rule.Name)
		if rule.Cmp != CmpNone {
			r.firingG[i] = reg.Gauge(MetricAlertFiring, "alert", rule.Name)
			r.firingG[i].Set(0)
		}
	}
}

// AddSink subscribes sink to alert transitions (fire and resolve).
func (r *Rules) AddSink(sink AlertSink) {
	if r == nil || sink == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, sink)
	r.mu.Unlock()
}

// maxCatchUp bounds how many missed evaluation boundaries one Advance call
// replays (a pathological time jump skips ahead instead of spinning).
const maxCatchUp = 100000

// Advance evaluates every boundary in (last, t]. Monotonic: a stale t is a
// no-op, so concurrent publishers may race through here safely.
func (r *Rules) Advance(t float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := int64(t / r.every)
	if idx <= r.lastIdx {
		return
	}
	if r.lastIdx < idx-maxCatchUp {
		r.lastIdx = idx - maxCatchUp
	}
	for i := r.lastIdx + 1; i <= idx; i++ {
		r.evalLocked(float64(i) * r.every)
	}
	r.lastIdx = idx
}

// evalLocked evaluates every rule at boundary time te. Caller holds r.mu;
// Expr and store writes take the store's own lock (lock order rules →
// store), and sinks are invoked with r.mu held (sinks must not call back
// into Rules).
func (r *Rules) evalLocked(te float64) {
	for i := range r.rules {
		rule := &r.rules[i]
		st := &r.state[i]
		v, ok := rule.Expr(r.store, te)
		st.lastValue, st.lastOK = v, ok
		if ok {
			r.store.Set(rule.Name, te, v)
			r.valueG[i].Set(v)
		}
		if rule.Cmp == CmpNone {
			continue
		}
		cond := ok && (rule.Cmp == CmpAbove && v > rule.Threshold ||
			rule.Cmp == CmpBelow && v < rule.Threshold)
		switch {
		case cond && st.pendingSince < 0:
			st.pendingSince = te
		case !cond:
			st.pendingSince = -1
		}
		firing := st.pendingSince >= 0 && te-st.pendingSince >= rule.ForSeconds
		if firing != st.firing {
			st.firing = firing
			if r.firingG[i] != nil {
				if firing {
					r.firingG[i].Set(1)
				} else {
					r.firingG[i].Set(0)
				}
			}
			for _, sink := range r.sinks {
				sink.ObserveAlert(rule.Name, rule.Critical, firing, te, rule.Reason)
			}
		}
	}
}

// Alerts snapshots the current state of every alerting rule.
func (r *Rules) Alerts() []AlertStatus {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []AlertStatus
	for i, rule := range r.rules {
		if rule.Cmp == CmpNone {
			continue
		}
		st := r.state[i]
		a := AlertStatus{Name: rule.Name, Critical: rule.Critical, Firing: st.firing,
			Value: st.lastValue, Threshold: rule.Threshold, Reason: rule.Reason}
		if st.firing {
			a.Since = st.pendingSince
		}
		out = append(out, a)
	}
	return out
}

// RuleNames returns the configured rule names in order.
func (r *Rules) RuleNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.rules))
	for i, rule := range r.rules {
		out[i] = rule.Name
	}
	return out
}

// Recording/alert rule names produced by DefaultServingRules.
const (
	RuleRequestRate = "mv_tsdb_request_rate"
	RuleErrorRatio  = "mv_tsdb_error_ratio"
	RuleP99Latency  = "mv_tsdb_p99_latency_seconds"
	RuleLatencySLO  = "mv_tsdb_latency_slo_attainment"
	RuleQueueDepth  = "mv_tsdb_queue_backlog"

	AlertHighErrorRate = RuleErrorRatio
	AlertLatencyBurn   = RuleLatencySLO
)

// RuleWindowSeconds is the look-back window the serving rules evaluate over
// — matched to the health engine's long burn-rate window so the two layers
// judge the same horizon.
const RuleWindowSeconds = 30

// DefaultServingRules derives the standard rule set from the health
// engine's SLO thresholds, so tsdb alerts and health verdicts share one set
// of objectives: request rate and queue backlog (recording only), error
// ratio vs the availability target (critical alert), p99 latency (recording,
// the autoscaler's signal), and latency-SLO attainment vs the latency
// objective/target (warning alert).
func DefaultServingRules(opts health.Options) []Rule {
	d := health.DefaultOptions()
	latObj := opts.LatencyObjective
	if latObj <= 0 {
		latObj = d.LatencyObjective
	}
	objs := opts.Objectives
	if len(objs) == 0 {
		objs = health.DefaultObjectives()
	}
	target := func(name string, fallback float64) float64 {
		for _, o := range objs {
			if o.Name == name {
				return o.Target
			}
		}
		return fallback
	}
	availTarget := target("availability", 0.99)
	latTarget := target("latency", 0.95)
	const w = RuleWindowSeconds
	return []Rule{
		{
			Name: RuleRequestRate,
			Expr: func(s *Store, t float64) (float64, bool) {
				return s.FamilySumOver(SeriesRequests, t-w, t) / w, true
			},
		},
		{
			Name: RuleErrorRatio,
			Expr: func(s *Store, t float64) (float64, bool) {
				req := s.FamilySumOver(SeriesRequests, t-w, t)
				if req == 0 {
					return 0, false
				}
				return s.FamilySumOver(SeriesErrors, t-w, t) / req, true
			},
			Cmp:        CmpAbove,
			Threshold:  1 - availTarget,
			ForSeconds: 5,
			Critical:   true,
			Reason:     "windowed error ratio exceeds the availability error budget",
		},
		{
			Name: RuleP99Latency,
			Expr: func(s *Store, t float64) (float64, bool) {
				return s.FamilyQuantileOver(SeriesStage, t-w, t, 0.99, "kind", "request")
			},
		},
		{
			Name: RuleLatencySLO,
			Expr: func(s *Store, t float64) (float64, bool) {
				return s.FamilyFracBelow(SeriesStage, t-w, t, latObj, "kind", "request")
			},
			Cmp:        CmpBelow,
			Threshold:  latTarget,
			ForSeconds: 5,
			Reason:     "fraction of requests within the latency objective fell below target",
		},
		{
			Name: RuleQueueDepth,
			Expr: func(s *Store, t float64) (float64, bool) {
				return s.FamilyLastSum(SeriesQueue)
			},
		},
	}
}
