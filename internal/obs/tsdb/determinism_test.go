package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"mvml/internal/obs"
)

// traceSetRecorder collects retained trace ids from the sampled firehose.
type traceSetRecorder struct {
	mu  sync.Mutex
	ids map[uint64]bool
}

func (r *traceSetRecorder) ObserveSpans(recs []obs.SpanRecord, _ float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range recs {
		r.ids[rec.Trace] = true
	}
}

func (r *traceSetRecorder) sorted() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint64, 0, len(r.ids))
	for id := range r.ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// retainedSet publishes the 120-trace demo stream through a sink with the
// given worker count and returns the sorted retained trace ids.
func retainedSet(t *testing.T, workers int) []uint64 {
	t.Helper()
	sink := obs.NewSpanSink(8192)
	sink.SetSampler(obs.NewSampler(obs.SampleConfig{Rate: 0.1, Seed: 1}))
	rec := &traceSetRecorder{ids: make(map[uint64]bool)}
	sink.AttachSampled(rec)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 120; i += workers {
				sink.EmitBatch(buildTrace(i))
			}
		}(w)
	}
	wg.Wait()
	return rec.sorted()
}

// TestSamplingDeterminismGolden pins the retained-trace set for the demo
// stream at rate 0.1, seed 1: identical across worker counts 1/4/8 and
// across releases (golden file; refresh with UPDATE_GOLDEN=1).
func TestSamplingDeterminismGolden(t *testing.T) {
	base := retainedSet(t, 1)
	for _, workers := range []int{4, 8} {
		got := retainedSet(t, workers)
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Fatalf("retained set differs at %d workers:\n1: %v\n%d: %v",
				workers, base, workers, got)
		}
	}

	var b strings.Builder
	for _, id := range base {
		fmt.Fprintf(&b, "%d\n", id)
	}
	path := filepath.Join("testdata", "retained_rate10_seed1.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("retained-trace set drifted from golden (UPDATE_GOLDEN=1 to refresh)\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestConcurrentScrapeIngestAndRules hammers one store from three sides at
// once — span ingestion, registry scraping, rule evaluation — and then
// checks it still serves consistent queries. Run with -race in CI.
func TestConcurrentScrapeIngestAndRules(t *testing.T) {
	s := New(Config{BucketSeconds: 1, Buckets: 600})
	reg := obs.NewRegistry()
	s.Register(reg)
	rules := NewRules(s, 1, DefaultServingRules(healthDefaults()))
	rules.Register(reg)
	ing := NewIngester(s, rules)
	sc := NewScraper(s)
	c := reg.Counter("mv_demo_total")

	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		Replay(demoSpans(), ing)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.Add(3)
			if err := sc.ScrapeRegistry(reg, float64(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			rules.Advance(float64(i) / 20)
			s.Snapshot()
			rules.Alerts()
		}
	}()
	wg.Wait()

	horizon := ing.MaxT() + 1
	if got := s.FamilySumOver(SeriesRequests, 0, horizon); got != 119 {
		t.Fatalf("requests after concurrent load = %v, want 119", got)
	}
	if got := s.SumOver("mv_demo_total", 0, 100); got != 3*49 {
		t.Fatalf("scraped counter = %v, want %v", got, 3*49)
	}
}
