package tsdb

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"mvml/internal/health"
	"mvml/internal/obs"
)

// CLI is the shared command-line wiring for the telemetry pipeline's store:
// every serving binary registers the same -tsdb-* flag set, attaches the
// store to its obs Runtime after obs.CLI.Start, and finishes it after the
// run. Like the health CLI it is opt-in and rides the obs runtime — with
// -tsdb off, Attach returns nil and nothing is collected.
type CLI struct {
	// Enable turns the store on.
	Enable bool
	// Bucket is the time-bucket width.
	Bucket time.Duration
	// Retention bounds per-series history (Retention/Bucket buckets).
	Retention time.Duration
	// Eval is the recording/alert rule evaluation cadence (span clock).
	Eval time.Duration
	// Scrape is the registry scrape cadence (wall clock); 0 disables the
	// scrape path (span-derived series still collect).
	Scrape time.Duration
	// ReportPath receives the end-of-run store snapshot as JSON.
	ReportPath string

	store *Store
	rules *Rules
	ing   *Ingester
	scr   *Scraper
	now   func() float64
	reg   *obs.Registry
	stop  chan struct{}
	wg    sync.WaitGroup
}

// RegisterFlags installs the tsdb flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Enable, "tsdb", false,
		"collect windowed time-series (spans + registry scrapes) into the in-process store")
	fs.DurationVar(&c.Bucket, "tsdb-bucket", time.Second,
		"time-series store bucket width")
	fs.DurationVar(&c.Retention, "tsdb-retention", 10*time.Minute,
		"per-series retention horizon")
	fs.DurationVar(&c.Eval, "tsdb-eval", time.Second,
		"recording/alert rule evaluation interval (span clock)")
	fs.DurationVar(&c.Scrape, "tsdb-scrape", 2*time.Second,
		"metrics registry scrape interval (0 disables the scrape path)")
	fs.StringVar(&c.ReportPath, "tsdb-report", "",
		"write the end-of-run store snapshot (series, exemplars, alerts) here as JSON")
}

// Enabled reports whether the store is requested.
func (c *CLI) Enabled() bool { return c.Enable || c.ReportPath != "" }

// Attach builds the store, rule engine and span ingester on rt, deriving
// alert thresholds from hopts, and starts the registry scrape loop. Returns
// nil when disabled or when rt is nil (telemetry off).
func (c *CLI) Attach(rt *obs.Runtime, hopts health.Options) *Store {
	if !c.Enabled() || rt == nil {
		return nil
	}
	if c.Bucket <= 0 {
		c.Bucket = time.Second
	}
	if c.Retention < c.Bucket {
		c.Retention = 10 * time.Minute
	}
	c.store = New(Config{
		BucketSeconds: c.Bucket.Seconds(),
		Buckets:       int(c.Retention / c.Bucket),
	})
	c.reg = rt.Metrics()
	c.store.Register(c.reg)
	c.rules = NewRules(c.store, c.Eval.Seconds(), DefaultServingRules(hopts))
	c.rules.Register(c.reg)
	c.ing = NewIngester(c.store, c.rules)
	// Post-sampling attachment: the store aggregates exactly the spans the
	// JSONL export retains, so an offline replay reproduces it.
	rt.Spans().AttachSampled(c.ing)
	c.now = rt.Spans().Now
	if c.Scrape > 0 {
		c.scr = NewScraper(c.store)
		c.stop = make(chan struct{})
		c.wg.Add(1)
		go c.scrapeLoop()
	}
	return c.store
}

// scrapeLoop scrapes the registry on the wall clock until Finish.
func (c *CLI) scrapeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.Scrape)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			_ = c.scr.ScrapeRegistry(c.reg, c.now())
		}
	}
}

// Observe subscribes e to alert transitions: a firing alert bumps the
// engine's matching component, a resolving one lets it recover.
func (c *CLI) Observe(e *health.Engine) {
	if c.rules == nil || e == nil {
		return
	}
	c.rules.AddSink(e)
}

// Store returns the attached store (nil when disabled).
func (c *CLI) Store() *Store { return c.store }

// Rules returns the attached rule engine (nil when disabled).
func (c *CLI) Rules() *Rules { return c.rules }

// P99Source returns a closure reading the p99 recording rule — the gateway
// autoscaler's latency signal. Returns nil when the store is disabled, and
// the closure returns 0 until the rule has a value (callers fall back to
// their own measurement).
func (c *CLI) P99Source() func() time.Duration {
	if c.store == nil {
		return nil
	}
	store := c.store
	return func() time.Duration {
		v, ok := store.LastValue(RuleP99Latency)
		if !ok || v <= 0 {
			return 0
		}
		return time.Duration(v * float64(time.Second))
	}
}

// Report is the end-of-run JSON artifact: the full store snapshot plus the
// alert states (mvdash renders the same structure).
type Report struct {
	BucketSeconds float64       `json:"bucket_seconds"`
	Series        []SeriesView  `json:"series"`
	Alerts        []AlertStatus `json:"alerts,omitempty"`
}

// BuildReport snapshots the store and rule engine.
func BuildReport(s *Store, r *Rules) *Report {
	if s == nil {
		return nil
	}
	return &Report{BucketSeconds: s.BucketSeconds(), Series: s.Snapshot(), Alerts: r.Alerts()}
}

// Finish stops the scrape loop (after one final scrape, so short runs still
// land in the store) and writes the report artifact.
func (c *CLI) Finish() error {
	if c.store == nil {
		return nil
	}
	if c.stop != nil {
		close(c.stop)
		c.wg.Wait()
		c.stop = nil
		_ = c.scr.ScrapeRegistry(c.reg, c.now())
	}
	if c.ReportPath == "" {
		return nil
	}
	f, err := os.Create(c.ReportPath)
	if err != nil {
		return fmt.Errorf("tsdb: report: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(BuildReport(c.store, c.rules))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("tsdb: report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "tsdb: wrote store snapshot to %s\n", c.ReportPath)
	return nil
}
