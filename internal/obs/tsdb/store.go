// Package tsdb is an in-process time-series store for the observability
// pipeline: fixed-width time buckets per series with bounded retention,
// filled from two sources — streaming aggregation of the span firehose
// (Ingester) and periodic scrapes of the metrics registry (Scraper) — and
// queried by recording/alert rules (Rules), the gateway autoscaler and the
// mvdash dashboard.
//
// Like the rest of the obs stack the store is passive and deterministic:
// nothing here consumes randomness or feeds back into serving decisions,
// span-derived content advances only on span timestamps (so a live store and
// one replayed from the same spans.jsonl agree byte-for-byte), and every
// exposition path iterates series in sorted order so output is reproducible.
package tsdb

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mvml/internal/obs"
	"mvml/internal/stats"
)

// Config parameterises a Store.
type Config struct {
	// BucketSeconds is the time-bucket width; <= 0 selects 1s.
	BucketSeconds float64
	// Buckets is the per-series retention ring length (how many time
	// buckets of history each series keeps); <= 0 selects 600.
	Buckets int
	// HistBounds are the value-bucket upper bounds for histogram series;
	// empty selects obs.LatencyBuckets.
	HistBounds []float64
	// MaxSeries bounds the total series count (new series beyond the bound
	// are silently coalesced into the overflow counter); <= 0 selects 4096.
	MaxSeries int
}

func (c Config) withDefaults() Config {
	if c.BucketSeconds <= 0 {
		c.BucketSeconds = 1
	}
	if c.Buckets <= 0 {
		c.Buckets = 600
	}
	if len(c.HistBounds) == 0 {
		c.HistBounds = obs.LatencyBuckets()
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 4096
	}
	return c
}

// Point is one non-empty time bucket of a series: T is the bucket's start
// time, V the bucket's value (sum of deltas for rate series, last write for
// gauges, observation count for histograms).
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Exemplar links a histogram value bucket to a retained trace: "a request
// that landed in this latency bucket looks like trace Trace".
type Exemplar struct {
	Trace uint64  `json:"trace"`
	Value float64 `json:"value"`
	T     float64 `json:"t"`
}

// seriesKind is the per-series aggregation shape.
type seriesKind uint8

const (
	kindRate seriesKind = iota + 1
	kindGauge
	kindHist
)

func (k seriesKind) String() string {
	switch k {
	case kindRate:
		return "rate"
	case kindGauge:
		return "gauge"
	case kindHist:
		return "histogram"
	}
	return "unknown"
}

// histCell is one time bucket of a histogram series.
type histCell struct {
	counts []uint64 // per value bucket (len(bounds)+1, last = +Inf)
	sum    float64
	count  uint64
}

// cell is one time bucket of any series. idx names the absolute time-bucket
// index the cell currently holds; a ring position is valid for a query only
// when its idx matches the queried index (stale positions are lazily
// recycled as time advances).
type cell struct {
	idx   int64 // -1 when never written
	v     float64
	lastT float64 // gauge: time of last write (last-write-wins within bucket)
	h     *histCell
}

// seriesData is one (name, labels) series: a ring of time-bucket cells plus,
// for histograms, the per-value-bucket exemplar table (latest-wins, global
// over the series' lifetime — the freshest retained trace per latency band).
type seriesData struct {
	name   string
	labels string // canonical `k="v",...` form, "" for none
	kind   seriesKind
	ring   []cell
	maxIdx int64      // highest time-bucket index ever written
	ex     []Exemplar // histogram only; Trace==0 means empty slot
}

// Store is the time-series store. All methods are safe for concurrent use; a
// nil *Store is a valid no-op handle.
type Store struct {
	cfg Config

	mu       sync.Mutex
	series   map[string]*seriesData
	order    []string // sorted keys for deterministic iteration
	samples  uint64
	evicted  uint64 // time buckets recycled before ever being queried
	overflow uint64 // writes refused by the MaxSeries bound

	samplesC  *obs.Counter
	evictedC  *obs.Counter
	overflowC *obs.Counter
	seriesG   *obs.Gauge
}

// New returns an empty store.
func New(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), series: make(map[string]*seriesData)}
}

// Names of the store's self-metrics, registered by Register.
const (
	MetricSamples  = "mv_tsdb_samples_total"
	MetricEvicted  = "mv_tsdb_evicted_buckets_total"
	MetricOverflow = "mv_tsdb_series_overflow_total"
	MetricSeries   = "mv_tsdb_series"
)

// Register mirrors the store's own health into reg: sample/eviction/overflow
// counters and the live series-count gauge.
func (s *Store) Register(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.Help(MetricSamples, "Samples written into the time-series store.")
	reg.Help(MetricEvicted, "Time buckets recycled by the store's bounded retention.")
	reg.Help(MetricOverflow, "Writes refused because the store's series bound was reached.")
	reg.Help(MetricSeries, "Live series in the time-series store.")
	s.mu.Lock()
	s.samplesC = reg.Counter(MetricSamples)
	s.evictedC = reg.Counter(MetricEvicted)
	s.overflowC = reg.Counter(MetricOverflow)
	s.seriesG = reg.Gauge(MetricSeries)
	s.seriesG.Set(float64(len(s.series)))
	s.mu.Unlock()
}

// BucketSeconds returns the store's time-bucket width (0 on nil).
func (s *Store) BucketSeconds() float64 {
	if s == nil {
		return 0
	}
	return s.cfg.BucketSeconds
}

// canonKV canonicalises alternating key/value label pairs into the same
// sorted `k="v",...` form the metrics registry uses.
func canonKV(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("tsdb: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	var b strings.Builder
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// get finds or creates a series. Caller holds s.mu. Returns nil when the
// series bound refuses a new series.
func (s *Store) get(name string, kind seriesKind, labels string) *seriesData {
	key := name + "\xff" + labels
	sd := s.series[key]
	if sd != nil {
		if sd.kind != kind {
			panic(fmt.Sprintf("tsdb: series %s{%s} written as %s, requested as %s",
				name, labels, sd.kind, kind))
		}
		return sd
	}
	if len(s.series) >= s.cfg.MaxSeries {
		s.overflow++
		s.overflowC.Inc()
		return nil
	}
	sd = &seriesData{name: name, labels: labels, kind: kind,
		ring: make([]cell, s.cfg.Buckets), maxIdx: -1}
	for i := range sd.ring {
		sd.ring[i].idx = -1
	}
	if kind == kindHist {
		sd.ex = make([]Exemplar, len(s.cfg.HistBounds)+1)
	}
	s.series[key] = sd
	// Insert the key in sorted position so iteration order never depends on
	// map order.
	pos := sort.SearchStrings(s.order, key)
	s.order = append(s.order, "")
	copy(s.order[pos+1:], s.order[pos:])
	s.order[pos] = key
	s.seriesG.Set(float64(len(s.series)))
	return sd
}

// cellAt returns the ring cell for absolute time-bucket index idx, recycling
// a stale position. Caller holds s.mu.
func (s *Store) cellAt(sd *seriesData, idx int64) *cell {
	if idx < 0 {
		idx = 0
	}
	c := &sd.ring[idx%int64(len(sd.ring))]
	if c.idx != idx {
		if c.idx >= 0 {
			s.evicted++
			s.evictedC.Inc()
		}
		*c = cell{idx: idx}
	}
	if idx > sd.maxIdx {
		sd.maxIdx = idx
	}
	return c
}

func (s *Store) bucketIdx(t float64) int64 {
	return int64(math.Floor(t / s.cfg.BucketSeconds))
}

// Add accumulates delta into the rate series (name, kv) at time t.
func (s *Store) Add(name string, t, delta float64, kv ...string) {
	if s == nil {
		return
	}
	labels := canonKV(kv)
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.get(name, kindRate, labels)
	if sd == nil {
		return
	}
	s.cellAt(sd, s.bucketIdx(t)).v += delta
	s.samples++
	s.samplesC.Inc()
}

// Set records a gauge write at time t (last write within a bucket wins; a
// write earlier than the bucket's latest is ignored).
func (s *Store) Set(name string, t, v float64, kv ...string) {
	if s == nil {
		return
	}
	labels := canonKV(kv)
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.get(name, kindGauge, labels)
	if sd == nil {
		return
	}
	c := s.cellAt(sd, s.bucketIdx(t))
	if t >= c.lastT {
		c.v, c.lastT = v, t
	}
	s.samples++
	s.samplesC.Inc()
}

// Observe records a histogram observation at time t with no exemplar.
func (s *Store) Observe(name string, t, v float64, kv ...string) {
	s.ObserveEx(name, t, v, 0, kv...)
}

// ObserveEx records a histogram observation at time t; when trace is
// non-zero it becomes the value bucket's exemplar (latest-wins).
func (s *Store) ObserveEx(name string, t, v float64, trace uint64, kv ...string) {
	if s == nil {
		return
	}
	labels := canonKV(kv)
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.get(name, kindHist, labels)
	if sd == nil {
		return
	}
	c := s.cellAt(sd, s.bucketIdx(t))
	if c.h == nil {
		c.h = &histCell{counts: make([]uint64, len(s.cfg.HistBounds)+1)}
	}
	b := s.valueBucket(v)
	c.h.counts[b]++
	c.h.sum += v
	c.h.count++
	if trace != 0 && t >= sd.ex[b].T {
		sd.ex[b] = Exemplar{Trace: trace, Value: v, T: t}
	}
	s.samples++
	s.samplesC.Inc()
}

// valueBucket maps v to its value-bucket index (len(bounds) = +Inf bucket).
func (s *Store) valueBucket(v float64) int {
	bounds := s.cfg.HistBounds
	i := sort.SearchFloat64s(bounds, v)
	// SearchFloat64s finds the first bound >= v; buckets are `le` bounds so
	// v exactly on a bound belongs to that bucket.
	return i
}

// visit iterates the valid cells of series sd overlapping [t0, t1).
// Caller holds s.mu.
func (sd *seriesData) visit(s *Store, t0, t1 float64, fn func(c *cell)) {
	if sd == nil {
		return
	}
	i0, i1 := s.bucketIdx(t0), s.bucketIdx(t1)
	// Live cells only span [maxIdx-len+1, maxIdx]; clamp the walk to that
	// range so wide windows don't scan (or alias into) recycled buckets.
	if i1 > sd.maxIdx {
		i1 = sd.maxIdx
	}
	if lo := sd.maxIdx - int64(len(sd.ring)) + 1; i0 < lo {
		i0 = lo
	}
	for i := i0; i <= i1; i++ {
		if i < 0 {
			continue
		}
		c := &sd.ring[i%int64(len(sd.ring))]
		if c.idx == i {
			fn(c)
		}
	}
}

func (s *Store) lookup(name string, kv []string) *seriesData {
	return s.series[name+"\xff"+canonKV(kv)]
}

// RateOver returns the per-second rate of the rate series over [t0, t1].
func (s *Store) RateOver(name string, t0, t1 float64, kv ...string) float64 {
	if s == nil || t1 <= t0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	s.lookup(name, kv).visit(s, t0, t1, func(c *cell) { sum += c.v })
	return sum / (t1 - t0)
}

// SumOver returns the total accumulated by a rate series over [t0, t1].
func (s *Store) SumOver(name string, t0, t1 float64, kv ...string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	s.lookup(name, kv).visit(s, t0, t1, func(c *cell) { sum += c.v })
	return sum
}

// LastValue returns the most recent gauge write (any time bucket), reporting
// whether the series has one.
func (s *Store) LastValue(name string, kv ...string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.lookup(name, kv)
	if sd == nil || sd.maxIdx < 0 {
		return 0, false
	}
	c := &sd.ring[sd.maxIdx%int64(len(sd.ring))]
	if c.idx != sd.maxIdx {
		return 0, false
	}
	return c.v, true
}

// mergeHist merges a histogram series' cells over [t0, t1]. Caller holds
// s.mu. Returns nil when the window holds no observations.
func (s *Store) mergeHist(sd *seriesData, t0, t1 float64) *histCell {
	if sd == nil || sd.kind != kindHist {
		return nil
	}
	m := &histCell{counts: make([]uint64, len(s.cfg.HistBounds)+1)}
	sd.visit(s, t0, t1, func(c *cell) {
		if c.h == nil {
			return
		}
		for i, n := range c.h.counts {
			m.counts[i] += n
		}
		m.sum += c.h.sum
		m.count += c.h.count
	})
	if m.count == 0 {
		return nil
	}
	return m
}

// QuantileOver estimates quantile q of a histogram series over [t0, t1],
// reporting whether the window held any observations.
func (s *Store) QuantileOver(name string, t0, t1, q float64, kv ...string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.mergeHist(s.lookup(name, kv), t0, t1)
	if m == nil {
		return 0, false
	}
	return stats.BucketQuantile(s.cfg.HistBounds, m.counts, q), true
}

// CountOver returns a histogram series' observation count and sum over
// [t0, t1].
func (s *Store) CountOver(name string, t0, t1 float64, kv ...string) (uint64, float64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.mergeHist(s.lookup(name, kv), t0, t1)
	if m == nil {
		return 0, 0
	}
	return m.count, m.sum
}

// FracBelow returns the fraction of a histogram series' observations at or
// below bound over [t0, t1] (the empirical CDF at bound, resolved to value
// buckets), reporting whether the window held any observations.
func (s *Store) FracBelow(name string, t0, t1, bound float64, kv ...string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.mergeHist(s.lookup(name, kv), t0, t1)
	if m == nil {
		return 0, false
	}
	var below uint64
	for i, ub := range s.cfg.HistBounds {
		if ub <= bound {
			below += m.counts[i]
		}
	}
	return float64(below) / float64(m.count), true
}

// ExemplarNear returns the exemplar closest to value v in a histogram
// series: the exemplar of v's own value bucket if present, else the nearest
// populated bucket's. The second result reports whether any exemplar exists.
func (s *Store) ExemplarNear(name string, v float64, kv ...string) (Exemplar, bool) {
	if s == nil {
		return Exemplar{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.lookup(name, kv)
	if sd == nil || sd.kind != kindHist {
		return Exemplar{}, false
	}
	return s.exemplarNearLocked(sd, v)
}

// ExemplarNearLabels is ExemplarNear addressed by a canonical label string
// (as reported by Snapshot), for callers walking snapshot views.
func (s *Store) ExemplarNearLabels(name, labels string, v float64) (Exemplar, bool) {
	if s == nil {
		return Exemplar{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.series[name+"\xff"+labels]
	if sd == nil || sd.kind != kindHist {
		return Exemplar{}, false
	}
	return s.exemplarNearLocked(sd, v)
}

func (s *Store) exemplarNearLocked(sd *seriesData, v float64) (Exemplar, bool) {
	b := s.valueBucket(v)
	best, found := Exemplar{}, false
	bestDist := math.MaxInt
	for i, e := range sd.ex {
		if e.Trace == 0 {
			continue
		}
		d := i - b
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, found, bestDist = e, true, d
		}
	}
	return best, found
}

// SumOverLabels is SumOver addressed by a canonical label string (as
// reported by Snapshot and LabelSets).
func (s *Store) SumOverLabels(name, labels string, t0, t1 float64) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	s.series[name+"\xff"+labels].visit(s, t0, t1, func(c *cell) { sum += c.v })
	return sum
}

// Exemplars returns a histogram series' populated exemplars, lowest value
// bucket first.
func (s *Store) Exemplars(name string, kv ...string) []Exemplar {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.lookup(name, kv)
	if sd == nil {
		return nil
	}
	var out []Exemplar
	for _, e := range sd.ex {
		if e.Trace != 0 {
			out = append(out, e)
		}
	}
	return out
}

// matchLabels reports whether a series' canonical label string contains
// every k=v pair in match (alternating kv list). Parts are compared exactly,
// so a value embedding another pair's text cannot false-positive.
func matchLabels(labels string, match []string) bool {
	if len(match) == 0 {
		return true
	}
	parts := splitTopLevel(labels)
	for i := 0; i+1 < len(match); i += 2 {
		want := fmt.Sprintf("%s=%q", match[i], match[i+1])
		ok := false
		for _, p := range parts {
			if p == want {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// familyEach visits every series of family name whose labels contain all
// match pairs. Caller holds s.mu.
func (s *Store) familyEach(name string, match []string, fn func(sd *seriesData)) {
	for _, key := range s.order {
		sd := s.series[key]
		if sd.name == name && matchLabels(sd.labels, match) {
			fn(sd)
		}
	}
}

// FamilySumOver sums a rate family over [t0, t1] across every series whose
// labels contain all match pairs (cross-shard aggregation).
func (s *Store) FamilySumOver(name string, t0, t1 float64, match ...string) float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	s.familyEach(name, match, func(sd *seriesData) {
		sd.visit(s, t0, t1, func(c *cell) { sum += c.v })
	})
	return sum
}

// FamilyQuantileOver estimates quantile q over [t0, t1] with the value
// buckets of every matching series merged.
func (s *Store) FamilyQuantileOver(name string, t0, t1, q float64, match ...string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &histCell{counts: make([]uint64, len(s.cfg.HistBounds)+1)}
	s.familyEach(name, match, func(sd *seriesData) {
		if h := s.mergeHist(sd, t0, t1); h != nil {
			for i, n := range h.counts {
				m.counts[i] += n
			}
			m.count += h.count
		}
	})
	if m.count == 0 {
		return 0, false
	}
	return stats.BucketQuantile(s.cfg.HistBounds, m.counts, q), true
}

// FamilyFracBelow returns the merged empirical CDF at bound over [t0, t1]
// across every matching series.
func (s *Store) FamilyFracBelow(name string, t0, t1, bound float64, match ...string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var below, total uint64
	s.familyEach(name, match, func(sd *seriesData) {
		if h := s.mergeHist(sd, t0, t1); h != nil {
			total += h.count
			for i, ub := range s.cfg.HistBounds {
				if ub <= bound {
					below += h.counts[i]
				}
			}
		}
	})
	if total == 0 {
		return 0, false
	}
	return float64(below) / float64(total), true
}

// FamilyLastSum sums the latest gauge value of every matching series.
func (s *Store) FamilyLastSum(name string, match ...string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	found := false
	s.familyEach(name, match, func(sd *seriesData) {
		if sd.maxIdx < 0 {
			return
		}
		c := &sd.ring[sd.maxIdx%int64(len(sd.ring))]
		if c.idx == sd.maxIdx {
			sum += c.v
			found = true
		}
	})
	return sum, found
}

// SeriesView is one series in a store snapshot.
type SeriesView struct {
	Name      string     `json:"name"`
	Labels    string     `json:"labels,omitempty"`
	Kind      string     `json:"kind"`
	Points    []Point    `json:"points,omitempty"`
	Count     uint64     `json:"count,omitempty"` // histogram: total observations
	Sum       float64    `json:"sum,omitempty"`
	P50       float64    `json:"p50,omitempty"`
	P99       float64    `json:"p99,omitempty"`
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot captures every series: points ascending in time, series sorted by
// (name, labels) — deterministic for goldens and the dashboard's JSON
// report. Histogram points carry the per-bucket observation count; quantiles
// summarise the whole retained window.
func (s *Store) Snapshot() []SeriesView {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesView, 0, len(s.order))
	for _, key := range s.order {
		sd := s.series[key]
		sv := SeriesView{Name: sd.name, Labels: sd.labels, Kind: sd.kind.String()}
		lo := sd.maxIdx - int64(len(sd.ring)) + 1
		if lo < 0 {
			lo = 0
		}
		if sd.maxIdx >= 0 {
			for i := lo; i <= sd.maxIdx; i++ {
				c := &sd.ring[i%int64(len(sd.ring))]
				if c.idx != i {
					continue
				}
				t := float64(i) * s.cfg.BucketSeconds
				switch sd.kind {
				case kindHist:
					if c.h != nil {
						sv.Points = append(sv.Points, Point{T: t, V: float64(c.h.count)})
						sv.Count += c.h.count
						sv.Sum += c.h.sum
					}
				default:
					sv.Points = append(sv.Points, Point{T: t, V: c.v})
				}
			}
		}
		if sd.kind == kindHist && sv.Count > 0 {
			if m := s.mergeHist(sd, float64(lo)*s.cfg.BucketSeconds,
				float64(sd.maxIdx+1)*s.cfg.BucketSeconds); m != nil {
				sv.P50 = stats.BucketQuantile(s.cfg.HistBounds, m.counts, 0.5)
				sv.P99 = stats.BucketQuantile(s.cfg.HistBounds, m.counts, 0.99)
			}
		}
		for _, e := range sd.ex {
			if e.Trace != 0 {
				sv.Exemplars = append(sv.Exemplars, e)
			}
		}
		out = append(out, sv)
	}
	return out
}

// splitCanon turns a canonical label string back into kv pairs (labels were
// canonicalised on the way in, so this is parse-free splitting).
func splitCanon(labels string) []string {
	if labels == "" {
		return nil
	}
	var kv []string
	for _, part := range splitTopLevel(labels) {
		eq := strings.IndexByte(part, '=')
		v := part[eq+1:]
		kv = append(kv, part[:eq], v[1:len(v)-1]) // strip quotes; values are %q-escaped but round-trip through canonKV identically
	}
	return kv
}

// splitTopLevel splits a canonical label string on commas outside quotes.
func splitTopLevel(labels string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, labels[start:])
	return parts
}

// WritePrometheus writes the store's content as Prometheus-flavoured text:
// rate series as per-bucket sample lines, gauges as their latest value,
// histograms as cumulative value buckets with OpenMetrics-style exemplar
// annotations. Series iterate in sorted order and floats render in the
// registry's canonical form, so repeated calls over unchanged content are
// byte-identical.
func (s *Store) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(bw, "# TSDB bucket=%s retention=%d series=%d samples=%d\n",
		formatFloat(s.cfg.BucketSeconds), s.cfg.Buckets, len(s.series), s.samples)
	for _, key := range s.order {
		sd := s.series[key]
		full := sd.name
		if sd.labels != "" {
			full = sd.name + "{" + sd.labels + "}"
		}
		fmt.Fprintf(bw, "# SERIES %s %s\n", full, sd.kind)
		switch sd.kind {
		case kindRate, kindGauge:
			lo := sd.maxIdx - int64(len(sd.ring)) + 1
			if lo < 0 {
				lo = 0
			}
			for i := lo; i <= sd.maxIdx && sd.maxIdx >= 0; i++ {
				c := &sd.ring[i%int64(len(sd.ring))]
				if c.idx != i {
					continue
				}
				fmt.Fprintf(bw, "%s %s %s\n", full,
					formatFloat(c.v), formatFloat(float64(i)*s.cfg.BucketSeconds))
			}
		case kindHist:
			m := s.mergeHist(sd, 0, float64(sd.maxIdx+1)*s.cfg.BucketSeconds)
			if m == nil {
				continue
			}
			var cum uint64
			for i, b := range s.cfg.HistBounds {
				cum += m.counts[i]
				fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d", sd.name, labelPrefix(sd.labels), formatFloat(b), cum)
				if e := sd.ex[i]; e.Trace != 0 {
					fmt.Fprintf(bw, " # {trace=\"%d\"} %s %s", e.Trace, formatFloat(e.Value), formatFloat(e.T))
				}
				fmt.Fprintln(bw)
			}
			cum += m.counts[len(m.counts)-1]
			fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d", sd.name, labelPrefix(sd.labels), cum)
			if e := sd.ex[len(sd.ex)-1]; e.Trace != 0 {
				fmt.Fprintf(bw, " # {trace=\"%d\"} %s %s", e.Trace, formatFloat(e.Value), formatFloat(e.T))
			}
			fmt.Fprintln(bw)
			fmt.Fprintf(bw, "%s_sum%s %s\n", sd.name, bracketed(sd.labels), formatFloat(m.sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", sd.name, bracketed(sd.labels), m.count)
		}
	}
	return bw.Flush()
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func bracketed(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatFloat mirrors the registry's Prometheus float rendering.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SeriesNames returns the distinct series family names, sorted.
func (s *Store) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	seen := map[string]bool{}
	for _, key := range s.order {
		n := s.series[key].name
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// LabelSets returns the canonical label strings of every series in family
// name, sorted.
func (s *Store) LabelSets(name string) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, key := range s.order {
		if sd := s.series[key]; sd.name == name {
			out = append(out, sd.labels)
		}
	}
	return out
}
