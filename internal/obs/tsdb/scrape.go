package tsdb

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mvml/internal/obs"
)

// Sample is one parsed exposition sample.
type Sample struct {
	Name   string
	Labels []string // alternating kv, sorted by key
	Value  float64
}

// Scrape is one parsed Prometheus text exposition.
type Scrape struct {
	// Types maps family name → "counter" | "gauge" | "histogram" (absent
	// for untyped families).
	Types   map[string]string
	Samples []Sample
}

// ParseText parses Prometheus text exposition format 0.0.4 (the registry's
// own output and what `mvdash -live` polls from a /metrics endpoint).
// Unparseable lines are an error — the inputs are machine-generated.
func ParseText(r io.Reader) (*Scrape, error) {
	out := &Scrape{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				out.Types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("tsdb: exposition line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: reading exposition: %w", err)
	}
	return out, nil
}

// parseSample parses `name{k="v",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		s.Name = line[:brace]
		close := strings.LastIndexByte(line, '}')
		if close < brace {
			return s, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(line[brace+1 : close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[close+1:])
	} else {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return s, fmt.Errorf("missing value")
		}
		s.Name = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	// A timestamp (or exemplar annotation) may trail the value.
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k="v",k2="v2"` with Go-quoted values.
func parseLabels(in string) ([]string, error) {
	var kv []string
	for len(in) > 0 {
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label segment %q", in)
		}
		key := strings.TrimSpace(in[:eq])
		rest := in[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value after %q", key)
		}
		// Find the closing quote, honouring escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value after %q", key)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value for %q: %w", key, err)
		}
		kv = append(kv, key, val)
		in = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		in = strings.TrimSpace(in)
	}
	// Sort pairs by key for canonical ordering.
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	out := kv[:0]
	for _, p := range ps {
		out = append(out, p.k, p.v)
	}
	return out, nil
}

// Scraper ingests metric expositions into a store at scrape times: gauges
// record their current value, counters (and histogram component series)
// record the delta since the previous scrape — so the store's time buckets
// hold per-interval increments, sparkline- and rate-ready. The first sight
// of a counter establishes its baseline and records nothing.
//
// The store's own mv_tsdb_* self-metrics are skipped to avoid the feedback
// loop of the store measuring itself into itself.
type Scraper struct {
	store *Store

	mu   sync.Mutex
	last map[string]float64 // counter sample identity → last seen value
}

// NewScraper returns a scraper writing into store.
func NewScraper(store *Store) *Scraper {
	return &Scraper{store: store, last: make(map[string]float64)}
}

// ScrapeRegistry captures reg's current exposition at time t.
func (sc *Scraper) ScrapeRegistry(reg *obs.Registry, t float64) error {
	if sc == nil || reg == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return err
	}
	return sc.ScrapeText(&buf, t)
}

// ScrapeText ingests one parsed exposition at time t.
func (sc *Scraper) ScrapeText(r io.Reader, t float64) error {
	if sc == nil {
		return nil
	}
	parsed, err := ParseText(r)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, s := range parsed.Samples {
		if strings.HasPrefix(s.Name, "mv_tsdb_") {
			continue
		}
		typ := parsed.Types[s.Name]
		if typ == "" {
			// Histogram component series (_bucket/_sum/_count) inherit the
			// family's type.
			typ = parsed.Types[strings.TrimSuffix(strings.TrimSuffix(
				strings.TrimSuffix(s.Name, "_bucket"), "_sum"), "_count")]
			if typ == "histogram" {
				typ = "counter" // components accumulate like counters
			}
		}
		switch typ {
		case "counter":
			key := s.Name + "\xff" + canonKV(s.Labels)
			prev, seen := sc.last[key]
			sc.last[key] = s.Value
			if !seen {
				continue
			}
			delta := s.Value - prev
			if delta < 0 {
				delta = s.Value // counter reset: count from zero
			}
			if delta != 0 {
				sc.store.Add(s.Name, t, delta, s.Labels...)
			}
		default: // gauge and untyped
			sc.store.Set(s.Name, t, s.Value, s.Labels...)
		}
	}
	return nil
}
