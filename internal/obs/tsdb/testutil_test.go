package tsdb

import (
	"mvml/internal/health"
	"mvml/internal/obs"
)

func healthDefaults() health.Options { return health.DefaultOptions() }

// traceSpec derives one synthetic request trace's shape from its index,
// with no randomness: every ~11th trace is slow, every ~17th errors, and
// trace 60 is a rejuvenation lifecycle event.
func traceSpec(i int) (dur float64, err bool, kind string) {
	kind = "request"
	dur = 0.002 + float64(i%7)*0.003
	if i%11 == 3 {
		dur = 0.4 + float64(i%5)*0.1
	}
	if i%17 == 5 {
		err = true
	}
	if i == 60 {
		kind = "rejuvenation"
		dur = 0.05
	}
	return
}

// buildTrace assembles the records of synthetic trace i as the live
// pipeline would publish them: children first, root last, ids pre-assigned
// so the stream is identical no matter which goroutine emits it.
func buildTrace(i int) []obs.SpanRecord {
	trace := uint64(1 + i)
	base := uint64(1000 + 10*i)
	start := 0.05 * float64(i)
	dur, errAttr, kind := traceSpec(i)
	shard := "shard-" + string(rune('a'+i%2))
	if kind != "request" {
		return []obs.SpanRecord{{
			Trace: trace, ID: base, Kind: kind, Start: start, End: start + dur,
			Attrs: map[string]any{"version": "v0", "kind": "reactive"},
		}}
	}
	attrs := map[string]any{"shard": shard}
	root := obs.SpanRecord{Trace: trace, ID: base, Kind: "request",
		Start: start, End: start + dur, Attrs: attrs}
	if errAttr {
		attrs["error"] = "deadline"
	}
	if i%13 == 2 {
		attrs["degraded"] = true
	}
	recs := []obs.SpanRecord{
		{Trace: trace, ID: base + 1, Parent: base, Kind: "queue_wait",
			Start: start, End: start + dur*0.2, Attrs: map[string]any{"shard": shard}},
		{Trace: trace, ID: base + 2, Parent: base, Kind: "batch",
			Start: start + dur*0.2, End: start + dur*0.8,
			Attrs: map[string]any{"shard": shard, "batch_size": 4, "queue_depth": i % 9}},
		{Trace: trace, ID: base + 3, Parent: base + 2, Kind: "forward",
			Start: start + dur*0.2, End: start + dur*0.7,
			Attrs: map[string]any{"shard": shard, "version": "v" + string(rune('0'+i%3))}},
		{Trace: trace, ID: base + 4, Parent: base, Kind: "vote",
			Start: start + dur*0.8, End: start + dur*0.9,
			Attrs: map[string]any{"shard": shard, "agreeing": 3, "proposals": 3}},
		root,
	}
	return recs
}

// demoSpans returns the full synthetic stream (120 traces) in publish order.
func demoSpans() []obs.SpanRecord {
	var out []obs.SpanRecord
	for i := 0; i < 120; i++ {
		out = append(out, buildTrace(i)...)
	}
	return out
}
