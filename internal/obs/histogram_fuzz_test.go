package obs

// Fuzz coverage for the histogram quantile estimator. The invariants are the
// ones expose.go relies on when it prints P50/P90/P99 summaries: estimates
// stay inside the observed value range and respect quantile ordering, for
// arbitrary bucket layouts and observation streams.

import (
	"math"
	"testing"
)

// fuzzValues decodes an arbitrary byte string into a bounded list of finite
// float64s, mixing magnitudes so that buckets under-, over- and exactly
// cover the observations.
func fuzzValues(data []byte) []float64 {
	vals := make([]float64, 0, len(data))
	for i, b := range data {
		v := float64(b) - 128
		switch i % 3 {
		case 1:
			v /= 64
		case 2:
			v *= 32
		}
		vals = append(vals, v)
		if len(vals) == 256 {
			break
		}
	}
	return vals
}

func FuzzHistogramQuantile(f *testing.F) {
	f.Add([]byte{0}, 1.0, 0.5)
	f.Add([]byte{1, 2, 3, 200, 255}, 0.25, 0.9)
	f.Add([]byte{128, 128, 128}, -4.0, 0.0)
	f.Add([]byte{7, 99, 250, 13, 13, 13}, 10.0, 1.0)
	f.Fuzz(func(t *testing.T, data []byte, width, q float64) {
		if math.IsNaN(width) || math.IsInf(width, 0) || math.Abs(width) > 1e6 {
			t.Skip("degenerate bucket width")
		}
		vals := fuzzValues(data)
		if len(vals) == 0 {
			t.Skip("no observations")
		}
		h := NewHistogram(LinearBuckets(-100, width, 40))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			h.Observe(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if h.Count() != uint64(len(vals)) {
			t.Fatalf("count %d, want %d", h.Count(), len(vals))
		}
		if h.Min() != lo || h.Max() != hi {
			t.Fatalf("min/max = %v/%v, want %v/%v", h.Min(), h.Max(), lo, hi)
		}

		// Any quantile estimate must land inside the observed range.
		got := h.Quantile(q)
		if math.IsNaN(got) || got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v outside observed [%v, %v]", q, got, lo, hi)
		}

		// Quantiles must be monotone non-decreasing in q.
		prev := math.Inf(-1)
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(p)
			if cur < prev {
				t.Fatalf("Quantile not monotone: q=%v -> %v after %v", p, cur, prev)
			}
			prev = cur
		}
	})
}
