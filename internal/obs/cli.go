package obs

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// CLI is the shared command-line wiring for telemetry: every cmd/ binary
// registers the same flag set, calls Start before its run and Finish after.
// Telemetry is opt-in — with none of the flags set, Start returns a nil
// Runtime and the whole stack runs uninstrumented (nil no-op handles).
type CLI struct {
	// MetricsAddr serves Prometheus text exposition on this address
	// ("host:port") for the lifetime of the process when non-empty.
	MetricsAddr string
	// SummaryPath receives the end-of-run JSON summary. Defaults to
	// DefaultSummaryPath when telemetry is enabled by another flag.
	SummaryPath string
	// TracePath receives the retained trace events as JSONL.
	TracePath string
	// SpansPath streams every finished span as JSONL for the lifetime of
	// the run (the input of `mvtrace summary`/`mvtrace waterfall`).
	SpansPath string
	// IncidentDir enables the flight recorder: the window around every
	// divergence, compromise and rejuvenation is written there as a
	// self-contained JSON incident file.
	IncidentDir string
	// IncidentPost is the flight recorder's post-trigger capture horizon.
	IncidentPost time.Duration
	// TraceCapacity bounds the trace and span ring buffers.
	TraceCapacity int
	// Pprof mounts net/http/pprof under /debug/pprof/ on the metrics
	// endpoint (requires MetricsAddr).
	Pprof bool
	// Hold keeps the metrics endpoint up for this long after Finish, so
	// short runs can still be scraped.
	Hold time.Duration
	// SampleRate < 1 enables tail-based trace sampling: error/slow/lifecycle
	// traces are always retained, plus this fraction of normal traffic.
	SampleRate float64
	// SampleSlow is the always-retain latency threshold for sampled runs.
	SampleSlow time.Duration
	// SampleSeed seeds the deterministic retain/drop hash.
	SampleSeed uint64

	rt        *Runtime
	srv       *http.Server
	ln        net.Listener
	spansFile *os.File
	infoKV    []string
}

// DefaultSummaryPath is where the JSON run summary lands when telemetry is
// enabled without an explicit -telemetry-out.
const DefaultSummaryPath = "mvml-telemetry.json"

// MetricBuildInfo is the constant-1 gauge identifying the emitting binary:
// go version, binary name, and whatever extra labels the binary added via
// InfoLabel (e.g. its workers configuration).
const MetricBuildInfo = "mv_build_info"

// RegisterFlags installs the telemetry flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "",
		"serve Prometheus metrics on this address (e.g. :9090) and enable telemetry")
	fs.StringVar(&c.SummaryPath, "telemetry-out", "",
		fmt.Sprintf("write the JSON telemetry summary here and enable telemetry (default %s when another telemetry flag is set)", DefaultSummaryPath))
	fs.StringVar(&c.TracePath, "trace-out", "",
		"write the JSONL event trace here and enable telemetry")
	fs.StringVar(&c.SpansPath, "spans-out", "",
		"stream the JSONL span trace here and enable telemetry (analyse with mvtrace)")
	fs.StringVar(&c.IncidentDir, "incident-dir", "",
		"write flight-recorder incident files into this directory and enable telemetry")
	fs.DurationVar(&c.IncidentPost, "incident-post", DefaultPostWindow,
		"flight-recorder post-trigger capture window")
	fs.IntVar(&c.TraceCapacity, "trace-capacity", DefaultTraceCapacity,
		"event-trace and span ring buffer capacity")
	fs.BoolVar(&c.Pprof, "pprof", false,
		"mount net/http/pprof under /debug/pprof/ on the metrics endpoint")
	fs.DurationVar(&c.Hold, "metrics-hold", 0,
		"keep the metrics endpoint up this long after the run finishes")
	fs.Float64Var(&c.SampleRate, "sample-rate", 1,
		"tail-sampling retention rate for normal traces in [0,1); 1 records everything (error/slow/lifecycle traces are always retained)")
	fs.DurationVar(&c.SampleSlow, "sample-slow", 250*time.Millisecond,
		"always retain request traces at least this slow when sampling")
	fs.Uint64Var(&c.SampleSeed, "sample-seed", 0,
		"seed for the deterministic tail-sampling hash")
}

// InfoLabel adds one label pair to the mv_build_info gauge; call before
// Start (binaries use it to expose run configuration such as worker counts).
func (c *CLI) InfoLabel(key, value string) {
	c.infoKV = append(c.infoKV, key, value)
}

// Enabled reports whether any telemetry flag turns collection on.
func (c *CLI) Enabled() bool {
	return c.MetricsAddr != "" || c.SummaryPath != "" || c.TracePath != "" ||
		c.SpansPath != "" || c.IncidentDir != ""
}

// Start builds the Runtime and, when requested, brings up the metrics
// endpoint, the span exporter and the flight recorder. It returns (nil, nil)
// when telemetry is disabled.
func (c *CLI) Start() (*Runtime, error) {
	if !c.Enabled() {
		return nil, nil
	}
	if c.SummaryPath == "" {
		c.SummaryPath = DefaultSummaryPath
	}
	c.rt = NewRuntime(c.TraceCapacity)
	c.registerBuildInfo()
	// 0 (the zero value: CLI built without RegisterFlags) and >= 1 both mean
	// record everything; sampling engages only for an explicit fraction.
	if c.SampleRate > 0 && c.SampleRate < 1 {
		c.rt.SetSampler(NewSampler(SampleConfig{
			Rate:        c.SampleRate,
			Seed:        c.SampleSeed,
			SlowSeconds: c.SampleSlow.Seconds(),
		}))
	}
	if c.SpansPath != "" {
		f, err := os.Create(c.SpansPath)
		if err != nil {
			return nil, fmt.Errorf("obs: span export: %w", err)
		}
		c.spansFile = f
		c.rt.Spans().SetWriter(f)
	}
	if c.IncidentDir != "" {
		fr, err := NewFlightRecorder(c.IncidentDir, c.IncidentPost, 0, c.rt.Spans(), c.rt.Tracer())
		if err != nil {
			return nil, err
		}
		c.rt.AttachFlightRecorder(fr)
	}
	if c.MetricsAddr != "" {
		ln, err := net.Listen("tcp", c.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics listener: %w", err)
		}
		c.ln = ln
		c.srv = &http.Server{Handler: c.debugMux()}
		srv := c.srv
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", ln.Addr())
		if c.Pprof {
			fmt.Fprintf(os.Stderr, "obs: serving pprof on http://%s/debug/pprof/\n", ln.Addr())
		}
	}
	return c.rt, nil
}

// registerBuildInfo publishes the mv_build_info identity gauge.
func (c *CLI) registerBuildInfo() {
	reg := c.rt.Metrics()
	reg.Help(MetricBuildInfo, "Constant 1; labels identify the emitting binary and its configuration.")
	kv := append([]string{
		"binary", filepath.Base(os.Args[0]),
		"go_version", runtime.Version(),
	}, c.infoKV...)
	reg.Gauge(MetricBuildInfo, kv...).Set(1)
}

// debugMux routes the metrics endpoint: /metrics for exposition, a plain
// index at /, and (behind -pprof) the net/http/pprof handlers under /debug/.
func (c *CLI) debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", c.rt.Metrics().Handler())
	pprofOn := c.Pprof
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" && r.URL.Path != "/debug" && r.URL.Path != "/debug/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "mvml debug index")
		fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
		if pprofOn {
			fmt.Fprintln(w, "  /debug/pprof/  runtime profiles (heap, goroutine, profile, trace, ...)")
		}
	})
	if c.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Finish writes the summary and trace artifacts, closes the span exporter
// and flight recorder, honours -metrics-hold, and shuts the endpoint down.
// extra is embedded verbatim in the summary's "extra" field. Safe to call
// when telemetry is disabled.
func (c *CLI) Finish(extra map[string]any) error {
	if c.rt == nil {
		return nil
	}
	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if fr := c.rt.Flight(); fr != nil {
		fail(fr.Close())
		if n := len(fr.Incidents()); n > 0 {
			fmt.Fprintf(os.Stderr, "obs: wrote %d incident file(s) to %s\n", n, fr.Dir())
		}
	}
	if c.spansFile != nil {
		err := c.rt.Spans().Flush()
		if cerr := c.spansFile.Close(); err == nil {
			err = cerr
		}
		c.spansFile = nil
		if err != nil {
			fail(fmt.Errorf("obs: span export: %w", err))
		} else if sm := c.rt.Spans().Sampler(); sm != nil {
			kept, out := sm.Stats()
			fmt.Fprintf(os.Stderr, "obs: wrote %d of %d spans to %s (tail sampling: %d traces kept, %d sampled out)\n",
				c.rt.Spans().Retained(), c.rt.Spans().Published(), c.SpansPath, kept, out)
		} else {
			fmt.Fprintf(os.Stderr, "obs: wrote %d spans to %s\n", c.rt.Spans().Published(), c.SpansPath)
		}
	}
	if c.SummaryPath != "" {
		f, err := os.Create(c.SummaryPath)
		if err != nil {
			return fmt.Errorf("obs: summary: %w", err)
		}
		err = BuildSummary(c.rt.Metrics(), c.rt.Tracer(), extra).WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: summary: %w", err)
		}
		fmt.Fprintf(os.Stderr, "obs: wrote telemetry summary to %s\n", c.SummaryPath)
	}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return fmt.Errorf("obs: trace: %w", err)
		}
		err = c.rt.Tracer().WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "obs: wrote %d trace events to %s\n", c.rt.Tracer().Len(), c.TracePath)
	}
	if c.srv != nil {
		if c.Hold > 0 {
			fmt.Fprintf(os.Stderr, "obs: holding metrics endpoint for %s\n", c.Hold)
			time.Sleep(c.Hold)
		}
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			return fmt.Errorf("obs: metrics shutdown: %w", err)
		}
	}
	return firstErr
}

// shutdownGrace bounds how long Finish waits for in-flight scrapes before
// forcing the metrics endpoint closed.
const shutdownGrace = 5 * time.Second

// ListenAddr returns the metrics endpoint's bound address (useful when
// MetricsAddr requested an ephemeral port), or "" when no endpoint is up.
func (c *CLI) ListenAddr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Shutdown gracefully stops the metrics HTTP server: the listener closes
// immediately (so the port is released for reuse) and in-flight scrapes get
// until ctx's deadline to complete, after which the server is forced closed.
// Safe to call when no endpoint is running, and idempotent.
func (c *CLI) Shutdown(ctx context.Context) error {
	if c.srv == nil {
		return nil
	}
	// Close the listener directly: Serve may not have registered it with the
	// server yet (it runs on its own goroutine), and the port must be free
	// the moment Shutdown returns.
	if c.ln != nil {
		_ = c.ln.Close()
	}
	err := c.srv.Shutdown(ctx)
	if err != nil {
		// The deadline expired with responses still in flight; Close tears
		// the connections down so the process can exit.
		_ = c.srv.Close()
	}
	c.srv = nil
	c.ln = nil
	return err
}
