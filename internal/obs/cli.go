package obs

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// CLI is the shared command-line wiring for telemetry: every cmd/ binary
// registers the same flag set, calls Start before its run and Finish after.
// Telemetry is opt-in — with none of the flags set, Start returns a nil
// Runtime and the whole stack runs uninstrumented (nil no-op handles).
type CLI struct {
	// MetricsAddr serves Prometheus text exposition on this address
	// ("host:port") for the lifetime of the process when non-empty.
	MetricsAddr string
	// SummaryPath receives the end-of-run JSON summary. Defaults to
	// DefaultSummaryPath when telemetry is enabled by another flag.
	SummaryPath string
	// TracePath receives the retained trace events as JSONL.
	TracePath string
	// TraceCapacity bounds the trace ring buffer.
	TraceCapacity int
	// Hold keeps the metrics endpoint up for this long after Finish, so
	// short runs can still be scraped.
	Hold time.Duration

	rt  *Runtime
	srv *http.Server
	ln  net.Listener
}

// DefaultSummaryPath is where the JSON run summary lands when telemetry is
// enabled without an explicit -telemetry-out.
const DefaultSummaryPath = "mvml-telemetry.json"

// RegisterFlags installs the telemetry flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "",
		"serve Prometheus metrics on this address (e.g. :9090) and enable telemetry")
	fs.StringVar(&c.SummaryPath, "telemetry-out", "",
		fmt.Sprintf("write the JSON telemetry summary here and enable telemetry (default %s when another telemetry flag is set)", DefaultSummaryPath))
	fs.StringVar(&c.TracePath, "trace-out", "",
		"write the JSONL event trace here and enable telemetry")
	fs.IntVar(&c.TraceCapacity, "trace-capacity", DefaultTraceCapacity,
		"event-trace ring buffer capacity")
	fs.DurationVar(&c.Hold, "metrics-hold", 0,
		"keep the metrics endpoint up this long after the run finishes")
}

// Enabled reports whether any telemetry flag turns collection on.
func (c *CLI) Enabled() bool {
	return c.MetricsAddr != "" || c.SummaryPath != "" || c.TracePath != ""
}

// Start builds the Runtime and, when requested, brings up the metrics
// endpoint. It returns (nil, nil) when telemetry is disabled.
func (c *CLI) Start() (*Runtime, error) {
	if !c.Enabled() {
		return nil, nil
	}
	if c.SummaryPath == "" {
		c.SummaryPath = DefaultSummaryPath
	}
	c.rt = NewRuntime(c.TraceCapacity)
	if c.MetricsAddr != "" {
		ln, err := net.Listen("tcp", c.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics listener: %w", err)
		}
		c.ln = ln
		c.srv = &http.Server{Handler: c.rt.Metrics().Handler()}
		srv := c.srv
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", ln.Addr())
	}
	return c.rt, nil
}

// Finish writes the summary and trace artifacts, honours -metrics-hold, and
// shuts the endpoint down. extra is embedded verbatim in the summary's
// "extra" field. Safe to call when telemetry is disabled.
func (c *CLI) Finish(extra map[string]any) error {
	if c.rt == nil {
		return nil
	}
	if c.SummaryPath != "" {
		f, err := os.Create(c.SummaryPath)
		if err != nil {
			return fmt.Errorf("obs: summary: %w", err)
		}
		err = BuildSummary(c.rt.Metrics(), c.rt.Tracer(), extra).WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: summary: %w", err)
		}
		fmt.Fprintf(os.Stderr, "obs: wrote telemetry summary to %s\n", c.SummaryPath)
	}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return fmt.Errorf("obs: trace: %w", err)
		}
		err = c.rt.Tracer().WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "obs: wrote %d trace events to %s\n", c.rt.Tracer().Len(), c.TracePath)
	}
	if c.srv != nil {
		if c.Hold > 0 {
			fmt.Fprintf(os.Stderr, "obs: holding metrics endpoint for %s\n", c.Hold)
			time.Sleep(c.Hold)
		}
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			return fmt.Errorf("obs: metrics shutdown: %w", err)
		}
	}
	return nil
}

// shutdownGrace bounds how long Finish waits for in-flight scrapes before
// forcing the metrics endpoint closed.
const shutdownGrace = 5 * time.Second

// ListenAddr returns the metrics endpoint's bound address (useful when
// MetricsAddr requested an ephemeral port), or "" when no endpoint is up.
func (c *CLI) ListenAddr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Shutdown gracefully stops the metrics HTTP server: the listener closes
// immediately (so the port is released for reuse) and in-flight scrapes get
// until ctx's deadline to complete, after which the server is forced closed.
// Safe to call when no endpoint is running, and idempotent.
func (c *CLI) Shutdown(ctx context.Context) error {
	if c.srv == nil {
		return nil
	}
	// Close the listener directly: Serve may not have registered it with the
	// server yet (it runs on its own goroutine), and the port must be free
	// the moment Shutdown returns.
	if c.ln != nil {
		_ = c.ln.Close()
	}
	err := c.srv.Shutdown(ctx)
	if err != nil {
		// The deadline expired with responses still in flight; Close tears
		// the connections down so the process can exit.
		_ = c.srv.Close()
	}
	c.srv = nil
	c.ln = nil
	return err
}
