package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegistryHandlesAreShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "route", "1")
	b := r.Counter("hits_total", "route", "1")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("hits_total", "route", "2")
	if a == other {
		t.Fatal("different labels must return different counters")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("value %d, want 3", a.Value())
	}
	// Label order must not matter: the key is canonicalised.
	x := r.Gauge("temp", "b", "2", "a", "1")
	y := r.Gauge("temp", "a", "1", "b", "2")
	if x != y {
		t.Fatal("label order must not create distinct series")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter/gauge type conflict")
		}
	}()
	r.Gauge("m")
}

func TestRegistryOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd label list")
		}
	}()
	r.Counter("m", "key-without-value")
}

// Regression: Help() pre-creates an untyped family; the first metric call
// must adopt its type instead of reporting a conflict.
func TestHelpBeforeFirstMetric(t *testing.T) {
	r := NewRegistry()
	r.Help("requests_total", "Total requests.")
	c := r.Counter("requests_total")
	if c == nil {
		t.Fatal("counter after Help returned nil")
	}
	c.Inc()
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Name != "requests_total" || *snap[0].Value != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	// Help after the fact updates the family in place.
	r.Help("requests_total", "Updated.")
	fams := r.snapshot()
	if len(fams) != 1 || fams[0].help != "Updated." {
		t.Fatalf("help not updated: %+v", fams)
	}
}

func TestHistogramFirstBucketsWin(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat", []float64{1, 2})
	h2 := r.Histogram("lat", []float64{10, 20, 30})
	if h1 != h2 {
		t.Fatal("same series must share one histogram")
	}
	if got := len(h1.Bounds()); got != 2 {
		t.Fatalf("bounds %v, want the first registration's", h1.Bounds())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	// Exercised under `go test -race`: concurrent handle resolution,
	// observation, and exposition must be race-free.
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%4)
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", "worker", label).Inc()
				r.Gauge("depth", "worker", label).Set(float64(i))
				r.Histogram("lat", DefBuckets(), "worker", label).Observe(float64(i) / iters)
				if i%500 == 0 {
					r.Help("ops_total", "Concurrent ops.")
				}
			}
		}(w)
	}
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.WritePrometheus(discard{})
			_ = r.Snapshot()
		}
	}()
	wg.Wait()

	var total uint64
	for _, m := range r.Snapshot() {
		if m.Name == "ops_total" {
			total += uint64(*m.Value)
		}
	}
	if total != workers*iters {
		t.Fatalf("ops_total %d, want %d", total, workers*iters)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestCounterGaugeConcurrentAdd(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter %d, want 4000", c.Value())
	}
	if g.Value() != 2000 {
		t.Fatalf("gauge %v, want 2000", g.Value())
	}
}
