package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span: a named interval on the sink's clock,
// linked into a trace by parent/child ids. Records are what the ring buffer
// retains, what the JSONL exporter writes, and what the flight recorder
// snapshots — a live Span is just a builder for one of these.
type SpanRecord struct {
	// Trace groups every span of one logical operation (e.g. one served
	// request); ids are unique per sink, never zero.
	Trace uint64 `json:"trace"`
	// ID is the span's own id, unique per sink, never zero.
	ID uint64 `json:"id"`
	// Parent is the enclosing span's id, or zero for a root span.
	Parent uint64 `json:"parent,omitempty"`
	// Kind names the stage this span measures ("request", "forward", ...).
	Kind string `json:"kind"`
	// Start and End are seconds on the emitting component's clock: monotonic
	// wall seconds since the sink's epoch for the serving path, simulated
	// seconds for the simulation stack.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Attrs carries span attributes; stored as given, so emitters must not
	// mutate the map afterwards.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Duration returns End - Start in seconds.
func (r SpanRecord) Duration() float64 { return r.End - r.Start }

// SpanObserver receives every batch of spans a sink publishes, after the
// sink's own lock is released. Observers must take their own locks; the sink
// guarantees the lock order sink → observer (it never calls an observer with
// its lock held), so an observer may snapshot the sink from inside
// ObserveSpans. The flight recorder and the health engine are the two
// in-tree observers.
type SpanObserver interface {
	ObserveSpans(recs []SpanRecord, now float64)
}

// SpanSink collects finished spans. It keeps the newest `capacity` records
// in a ring buffer (the flight recorder's pre-trigger window), optionally
// streams every record to a JSONL writer, and notifies attached
// SpanObservers (flight recorder, health engine) as records are published.
//
// A nil *SpanSink is a valid no-op handle: every method does nothing and
// StartTrace returns a nil (no-op) Span, so instrumented code needs no
// feature flags and a disabled path pays only nil checks.
type SpanSink struct {
	epoch time.Time

	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	sampler atomic.Pointer[Sampler]

	mu        sync.Mutex
	buf       []SpanRecord
	start     int
	size      int
	total     uint64 // spans ever published (pre-sampling)
	retained  uint64 // spans that survived sampling (= total with no sampler)
	dropped   uint64
	dropC     *Counter // optional registry counter mirroring dropped
	w         *bufio.Writer
	werr      error
	observers []SpanObserver // full firehose: every published span
	sampled   []SpanObserver // post-sampling: retained spans only
}

// NewSpanSink returns a sink retaining up to capacity finished spans
// (minimum 1). The sink's clock starts at zero now.
func NewSpanSink(capacity int) *SpanSink {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanSink{epoch: time.Now(), buf: make([]SpanRecord, capacity)}
}

// Now returns seconds since the sink's epoch on the monotonic clock, the
// timebase of every wall-clock span. Returns 0 on a nil sink.
func (s *SpanSink) Now() float64 {
	if s == nil {
		return 0
	}
	return time.Since(s.epoch).Seconds()
}

// SetWriter streams every subsequently published span to w as JSON Lines
// (one SpanRecord per line). Call Flush before reading the destination.
func (s *SpanSink) SetWriter(w io.Writer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w = bufio.NewWriter(w)
}

// Flush drains the JSONL writer and reports the first error any write hit.
func (s *SpanSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w != nil {
		if err := s.w.Flush(); err != nil && s.werr == nil {
			s.werr = err
		}
	}
	return s.werr
}

// Attach registers o to receive every subsequently published span batch.
// Attaching nil is a no-op.
func (s *SpanSink) Attach(o SpanObserver) {
	if s == nil || o == nil {
		return
	}
	s.mu.Lock()
	s.observers = append(s.observers, o)
	s.mu.Unlock()
}

// AttachSampled registers o to receive only the spans that survive tail
// sampling (everything, when no sampler is set). Downstream aggregators that
// must reproduce identically from a sampled JSONL export — the tsdb span
// ingester — attach here; true-rate consumers (health engine, flight
// recorder) use Attach.
func (s *SpanSink) AttachSampled(o SpanObserver) {
	if s == nil || o == nil {
		return
	}
	s.mu.Lock()
	s.sampled = append(s.sampled, o)
	s.mu.Unlock()
}

// SetSampler installs (or, with nil, removes) the tail sampler deciding
// which traces the ring buffer, the JSONL export and sampled observers
// retain. Full-firehose observers are unaffected.
func (s *SpanSink) SetSampler(sm *Sampler) {
	if s == nil {
		return
	}
	s.sampler.Store(sm)
}

// Sampler returns the installed tail sampler, or nil when recording
// everything.
func (s *SpanSink) Sampler() *Sampler {
	if s == nil {
		return nil
	}
	return s.sampler.Load()
}

// SetDropCounter mirrors ring-buffer evictions into a registry counter so
// silent span loss becomes visible on the metrics path.
func (s *SpanSink) SetDropCounter(c *Counter) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dropC = c
	s.mu.Unlock()
}

// AttachFlightRecorder wires fr to observe every published span.
func (s *SpanSink) AttachFlightRecorder(fr *FlightRecorder) {
	if fr == nil {
		return
	}
	s.Attach(fr)
}

// Spans returns the retained records, oldest first.
func (s *SpanSink) Spans() []SpanRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanRecord, s.size)
	for i := 0; i < s.size; i++ {
		out[i] = s.buf[(s.start+i)%len(s.buf)]
	}
	return out
}

// Published returns the total number of spans ever published.
func (s *SpanSink) Published() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Retained returns how many published spans survived tail sampling (equal
// to Published when no sampler is installed).
func (s *SpanSink) Retained() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retained
}

// Dropped returns how many spans the ring evicted.
func (s *SpanSink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// NewTraceID allocates a fresh trace id (0 on a nil sink).
func (s *SpanSink) NewTraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.nextTrace.Add(1)
}

// newSpanID allocates a fresh span id.
func (s *SpanSink) newSpanID() uint64 { return s.nextSpan.Add(1) }

// Emit publishes one already-finished span directly — the low-level path for
// components that measure on their own clock (e.g. the simulation stack's
// simulated seconds). It returns the new span's id (0 on a nil sink).
func (s *SpanSink) Emit(trace, parent uint64, kind string, start, end float64, attrs map[string]any) uint64 {
	if s == nil {
		return 0
	}
	rec := SpanRecord{Trace: trace, ID: s.newSpanID(), Parent: parent,
		Kind: kind, Start: start, End: end, Attrs: attrs}
	s.publish([]SpanRecord{rec})
	return rec.ID
}

// EmitBatch publishes a batch of already-finished records at once — the
// whole-trace entry point for components that build complete traces on
// their own clock (and for replay tooling). The batch flows through the
// same sampling, ring, JSONL and observer path a root span's End uses.
func (s *SpanSink) EmitBatch(recs []SpanRecord) {
	if s == nil {
		return
	}
	s.publish(recs)
}

// publish routes a batch of finished records: the tail sampler (when set)
// decides retention first, then ring insertion and JSONL streaming of the
// retained subset happen under one lock acquisition, then observers are
// notified — full-firehose observers with the whole batch, sampled observers
// with the retained subset.
func (s *SpanSink) publish(recs []SpanRecord) {
	if s == nil || len(recs) == 0 {
		return
	}
	now := s.Now()
	retained := s.sampler.Load().Retain(recs)
	s.mu.Lock()
	s.total += uint64(len(recs))
	s.retained += uint64(len(retained))
	for _, rec := range retained {
		if s.size < len(s.buf) {
			s.buf[(s.start+s.size)%len(s.buf)] = rec
			s.size++
		} else {
			s.buf[s.start] = rec
			s.start = (s.start + 1) % len(s.buf)
			s.dropped++
			s.dropC.Inc()
		}
		if s.w != nil && s.werr == nil {
			if b, err := json.Marshal(rec); err != nil {
				s.werr = err
			} else {
				b = append(b, '\n')
				if _, err := s.w.Write(b); err != nil {
					s.werr = err
				}
			}
		}
	}
	watchers := s.observers
	sampledWatchers := s.sampled
	s.mu.Unlock()
	// Outside s.mu: observers take their own locks and may snapshot the sink
	// again (lock order is always sink → observer, never nested).
	for _, o := range watchers {
		o.ObserveSpans(recs, now)
	}
	if len(retained) > 0 {
		for _, o := range sampledWatchers {
			o.ObserveSpans(retained, now)
		}
	}
}

// ReadSpans parses a JSON Lines span export back into records, the inverse
// of the sink's streaming writer.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: decoding span line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}

// Span is a live, unfinished span. A Span is owned by exactly one goroutine
// at a time; ownership may transfer through a channel handoff (the queue
// between admission and the batcher provides the happens-before edge), but
// two goroutines must never touch the same Span concurrently.
//
// Child spans buffer their finished records inside the root, so a whole
// trace costs a single sink-lock acquisition when the root ends — the
// lock-cheap per-request recorder the serving hot path relies on. A nil
// *Span is a valid no-op handle.
type Span struct {
	sink  *SpanSink
	root  *Span // self for roots
	rec   SpanRecord
	buf   []SpanRecord // root only: finished descendants awaiting publish
	ended bool
}

// StartTrace opens a new trace rooted at a span of the given kind, starting
// now. Returns nil (a no-op Span) on a nil sink.
func (s *SpanSink) StartTrace(kind string) *Span {
	if s == nil {
		return nil
	}
	sp := &Span{sink: s, rec: SpanRecord{
		Trace: s.NewTraceID(), ID: s.newSpanID(), Kind: kind, Start: s.Now()}}
	sp.root = sp
	return sp
}

// TraceID returns the span's trace id (0 for a nil span).
func (sp *Span) TraceID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.rec.Trace
}

// ID returns the span's own id (0 for a nil span).
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.rec.ID
}

// SetAttr attaches one attribute to the span.
func (sp *Span) SetAttr(key string, v any) {
	if sp == nil {
		return
	}
	if sp.rec.Attrs == nil {
		sp.rec.Attrs = make(map[string]any, 4)
	}
	sp.rec.Attrs[key] = v
}

// Child opens a sub-span of the given kind starting now.
func (sp *Span) Child(kind string) *Span {
	if sp == nil {
		return nil
	}
	return &Span{sink: sp.sink, root: sp.root, rec: SpanRecord{
		Trace: sp.rec.Trace, ID: sp.sink.newSpanID(), Parent: sp.rec.ID,
		Kind: kind, Start: sp.sink.Now()}}
}

// Interval appends an already-finished child span [start, end] under sp and
// returns its id, usable as the parent of deeper intervals. This is how the
// batcher back-fills stages it measured before knowing which requests they
// belong to (queue wait, per-version forwards).
func (sp *Span) Interval(kind string, start, end float64, attrs map[string]any) uint64 {
	if sp == nil {
		return 0
	}
	return sp.IntervalUnder(sp.rec.ID, kind, start, end, attrs)
}

// IntervalUnder is Interval with an explicit parent span id (which must
// belong to the same trace).
func (sp *Span) IntervalUnder(parent uint64, kind string, start, end float64, attrs map[string]any) uint64 {
	if sp == nil {
		return 0
	}
	rec := SpanRecord{Trace: sp.rec.Trace, ID: sp.sink.newSpanID(), Parent: parent,
		Kind: kind, Start: start, End: end, Attrs: attrs}
	sp.root.deposit(rec)
	return rec.ID
}

// deposit buffers one finished record in the root, or publishes directly
// when the root has already gone out (late child).
func (root *Span) deposit(rec SpanRecord) {
	if root.ended {
		root.sink.publish([]SpanRecord{rec})
		return
	}
	root.buf = append(root.buf, rec)
}

// End finishes the span now. A child deposits its record into the root; the
// root publishes every buffered descendant plus itself in one batch.
// Idempotent: a second End is a no-op.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.EndAt(sp.sink.Now())
}

// EndAt is End with an explicit end time on the sink's clock.
func (sp *Span) EndAt(end float64) {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	sp.rec.End = end
	if sp.root != sp {
		sp.root.deposit(sp.rec)
		return
	}
	recs := append(sp.buf, sp.rec)
	sp.buf = nil
	sp.sink.publish(recs)
}
