package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders `name{labels}` with optional extra label pairs appended
// after the series' own (used for histogram `le`).
func seriesName(name, labelKey string, extra ...string) string {
	var parts []string
	if labelKey != "" {
		parts = append(parts, labelKey)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return name
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series by
// label set, so output is reproducible. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, s.key), s.c.Value())
			case typeGauge:
				fmt.Fprintf(bw, "%s %s\n", seriesName(f.name, s.key), formatFloat(s.g.Value()))
			case typeHistogram:
				counts := s.h.BucketCounts()
				bounds := s.h.Bounds()
				var cum uint64
				for i, b := range bounds {
					cum += counts[i]
					fmt.Fprintf(bw, "%s %d\n",
						seriesName(f.name+"_bucket", s.key, "le", formatFloat(b)), cum)
				}
				cum += counts[len(counts)-1]
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name+"_bucket", s.key, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s %s\n", seriesName(f.name+"_sum", s.key), formatFloat(s.h.Sum()))
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name+"_count", s.key), s.h.Count())
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format. Usable on a nil registry (serves an empty exposition).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// BucketSnapshot is one cumulative histogram bucket in a Summary.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"` // cumulative
}

// HistogramSnapshot is a histogram's state in a Summary.
type HistogramSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Mean    float64          `json:"mean"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// MetricSnapshot is one series in a Summary.
type MetricSnapshot struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     *float64           `json:"value,omitempty"` // counter / gauge
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// TraceSummary reports the tracer's ring state in a Summary.
type TraceSummary struct {
	Emitted  uint64 `json:"emitted"`
	Retained int    `json:"retained"`
	Dropped  uint64 `json:"dropped"`
}

// Summary is the machine-readable end-of-run telemetry artifact.
type Summary struct {
	Metrics []MetricSnapshot `json:"metrics"`
	Trace   *TraceSummary    `json:"trace,omitempty"`
	Extra   map[string]any   `json:"extra,omitempty"`
}

// Snapshot captures every registered series. Returns nil on a nil registry.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			m := MetricSnapshot{Name: f.name, Type: f.typ.String()}
			if len(s.labels) > 0 {
				m.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					m.Labels[l.Key] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				v := float64(s.c.Value())
				m.Value = &v
			case typeGauge:
				v := s.g.Value()
				m.Value = &v
			case typeHistogram:
				h := &HistogramSnapshot{
					Count: s.h.Count(),
					Sum:   s.h.Sum(),
					Mean:  s.h.Mean(),
					P50:   s.h.Quantile(0.5),
					P90:   s.h.Quantile(0.9),
					P99:   s.h.Quantile(0.99),
				}
				counts := s.h.BucketCounts()
				var cum uint64
				for i, b := range s.h.Bounds() {
					cum += counts[i]
					h.Buckets = append(h.Buckets, BucketSnapshot{UpperBound: b, Count: cum})
				}
				cum += counts[len(counts)-1]
				h.Buckets = append(h.Buckets, BucketSnapshot{UpperBound: math.Inf(1), Count: cum})
				m.Histogram = h
			}
			out = append(out, m)
		}
	}
	return out
}

// BuildSummary assembles the JSON run summary from a registry, an optional
// tracer and optional run metadata. Both reg and tr may be nil.
func BuildSummary(reg *Registry, tr *Tracer, extra map[string]any) *Summary {
	s := &Summary{Metrics: reg.Snapshot(), Extra: extra}
	if tr != nil {
		s.Trace = &TraceSummary{Emitted: tr.Emitted(), Retained: tr.Len(), Dropped: tr.Dropped()}
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MarshalJSON renders the +Inf upper bound as the string "+Inf" (JSON has no
// infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := any(b.UpperBound)
	if math.IsInf(b.UpperBound, 1) {
		le = "+Inf"
	}
	return json.Marshal(map[string]any{"le": le, "count": b.Count})
}
