package stats

import (
	"cmp"
	"math"
)

// NearestRank returns the q-quantile of sorted (ascending order) using the
// nearest-rank definition: the smallest element whose cumulative rank
// reaches ⌈q·n⌉. It is exact — no interpolation — which makes it the right
// choice when the full sample is in memory (trace summaries, load-test
// latency reports). q outside [0,1] clamps to the extremes; an empty slice
// yields the zero value.
func NearestRank[T cmp.Ordered](sorted []T, q float64) T {
	var zero T
	if len(sorted) == 0 {
		return zero
	}
	if math.IsNaN(q) || q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// BucketQuantile estimates the q-quantile of a bucketed sample by linear
// interpolation within the containing bucket — the same scheme Prometheus'
// histogram_quantile uses. bounds are sorted finite bucket upper bounds and
// counts holds one non-cumulative count per bound plus a final overflow
// (+Inf) bucket, so len(counts) == len(bounds)+1. The first bucket is
// assumed to start at 0 (or at its own bound when that bound is negative);
// overflow observations are attributed to the largest finite bound, the
// best available estimate. Returns 0 for an empty sample. Callers that
// track the observed min/max should clamp the estimate into that range —
// interpolation alone can overshoot when observations occupy only part of
// a bucket.
func BucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no finite upper edge to interpolate against.
			break
		}
		upper := bounds[i]
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		} else if upper < 0 {
			lower = upper
		}
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}
