package stats

import (
	"math"
	"sort"
	"testing"
	"time"
)

// TestNearestRankExactSmallSets pins the nearest-rank definition on small
// sets where the expected order statistic can be read off by hand.
func TestNearestRankExactSmallSets(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{[]float64{7}, 0, 7},
		{[]float64{7}, 0.5, 7},
		{[]float64{7}, 1, 7},
		{[]float64{1, 2}, 0.5, 1},  // ⌈0.5·2⌉ = 1st element
		{[]float64{1, 2}, 0.51, 2}, // ⌈1.02⌉ = 2nd element
		{[]float64{1, 2, 3}, 0.5, 2},
		{[]float64{1, 2, 3, 4}, 0.25, 1},
		{[]float64{1, 2, 3, 4}, 0.5, 2},
		{[]float64{1, 2, 3, 4}, 0.75, 3},
		{[]float64{1, 2, 3, 4}, 1, 4},
		{[]float64{1, 2, 3, 4, 5}, 0.99, 5},
		{nil, 0.5, 0},
		{[]float64{1, 2, 3}, -0.5, 1}, // clamped
		{[]float64{1, 2, 3}, 1.5, 3},  // clamped
	}
	for _, c := range cases {
		if got := NearestRank(c.sorted, c.q); got != c.want {
			t.Errorf("NearestRank(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}

// TestNearestRankProperties checks, over deterministic pseudo-random
// samples, that the estimate is always an element of the sample and that it
// is monotone non-decreasing in q.
func TestNearestRankProperties(t *testing.T) {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 { // xorshift64*, deterministic across runs
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64(state*0x2545f4914f6cdd1d>>11) / (1 << 53)
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(next()*200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = next() * 1e3
		}
		sort.Float64s(xs)
		member := map[float64]bool{}
		for _, x := range xs {
			member[x] = true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := NearestRank(xs, q)
			if !member[v] {
				t.Fatalf("trial %d: NearestRank(q=%v) = %v not in sample", trial, q, v)
			}
			if v < prev {
				t.Fatalf("trial %d: NearestRank not monotone at q=%v: %v < %v", trial, q, v, prev)
			}
			prev = v
		}
	}
}

// TestNearestRankGenericTypes exercises the generic signature with the
// integer-backed time.Duration used by the serve load generator.
func TestNearestRankGenericTypes(t *testing.T) {
	ds := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if got := NearestRank(ds, 0.5); got != 2*time.Millisecond {
		t.Fatalf("duration median: %v", got)
	}
	is := []int{3, 5, 9}
	if got := NearestRank(is, 1); got != 9 {
		t.Fatalf("int max: %v", got)
	}
}

// TestBucketQuantileExact pins interpolation on hand-checkable bucket
// layouts.
func TestBucketQuantileExact(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 10 observations uniformly in the (1,2] bucket.
	counts := []uint64{0, 10, 0, 0}
	if got := BucketQuantile(bounds, counts, 0.5); got != 1.5 {
		t.Fatalf("mid-bucket median: %v", got)
	}
	if got := BucketQuantile(bounds, counts, 1); got != 2 {
		t.Fatalf("bucket upper edge: %v", got)
	}
	// Overflow-only sample: attributed to the largest finite bound.
	if got := BucketQuantile(bounds, []uint64{0, 0, 0, 7}, 0.5); got != 4 {
		t.Fatalf("overflow attribution: %v", got)
	}
	// Empty sample.
	if got := BucketQuantile(bounds, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Fatalf("empty sample: %v", got)
	}
	// No finite bounds at all.
	if got := BucketQuantile(nil, []uint64{5}, 0.5); got != 0 {
		t.Fatalf("no bounds: %v", got)
	}
}

// TestBucketQuantileMonotone checks monotonicity in q and range containment
// for a fixed multi-bucket sample.
func TestBucketQuantileMonotone(t *testing.T) {
	bounds := []float64{0.5, 1, 2, 4, 8}
	counts := []uint64{3, 0, 7, 11, 2, 1}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.005 {
		v := BucketQuantile(bounds, counts, q)
		if v < prev {
			t.Fatalf("BucketQuantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		if v < 0 || v > bounds[len(bounds)-1] {
			t.Fatalf("BucketQuantile(q=%v) = %v outside [0, %v]", q, v, bounds[len(bounds)-1])
		}
		prev = v
	}
}
