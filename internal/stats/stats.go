// Package stats provides the small set of statistical estimators the
// experiment harnesses need: sample moments, Student-t confidence intervals
// (used for the overhead table), batch-means steady-state estimation (used
// by the Monte-Carlo DSPN solver), and fixed-width histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator needs more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator),
// or 0 when fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error for empty
// input or q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Interval is a two-sided confidence interval around a sample mean.
type Interval struct {
	Mean  float64
	Lo    float64
	Hi    float64
	Level float64 // confidence level, e.g. 0.95
}

func (ci Interval) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f]", ci.Mean, ci.Lo, ci.Hi)
}

// Contains reports whether v lies inside the interval (inclusive).
func (ci Interval) Contains(v float64) bool {
	return v >= ci.Lo && v <= ci.Hi
}

// Overlaps reports whether two intervals intersect. The paper uses CI
// overlap to argue that rejuvenation adds no significant GPU cost
// (Table VIII).
func (ci Interval) Overlaps(other Interval) bool {
	return ci.Lo <= other.Hi && other.Lo <= ci.Hi
}

// MeanCI returns the two-sided Student-t confidence interval for the mean of
// xs at the given confidence level (e.g. 0.95). It requires at least two
// samples.
func MeanCI(xs []float64, level float64) (Interval, error) {
	n := len(xs)
	if n < 2 {
		return Interval{}, ErrInsufficientData
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	m := Mean(xs)
	se := StdDev(xs) / math.Sqrt(float64(n))
	tcrit := tCritical(n-1, level)
	return Interval{Mean: m, Lo: m - tcrit*se, Hi: m + tcrit*se, Level: level}, nil
}

// tCritical returns the two-sided Student-t critical value for the given
// degrees of freedom and confidence level, computed by bisecting the
// regularised incomplete beta CDF.
func tCritical(df int, level float64) float64 {
	target := 1 - (1-level)/2 // upper-tail quantile of the CDF
	lo, hi := 0.0, 1000.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, float64(df)) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF is the CDF of Student's t distribution with df degrees of freedom,
// expressed through the regularised incomplete beta function.
func tCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// regIncBeta computes the regularised incomplete beta function I_x(a, b)
// via the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// BatchMeans estimates the mean of a (possibly autocorrelated) stationary
// series by splitting it into nBatches contiguous batches and treating the
// batch means as independent samples. It is the standard steady-state output
// analysis used by the Monte-Carlo DSPN solver.
func BatchMeans(series []float64, nBatches int, level float64) (Interval, error) {
	if nBatches < 2 {
		return Interval{}, fmt.Errorf("stats: need at least 2 batches, got %d", nBatches)
	}
	if len(series) < 2*nBatches {
		return Interval{}, ErrInsufficientData
	}
	batchLen := len(series) / nBatches
	means := make([]float64, 0, nBatches)
	for b := 0; b < nBatches; b++ {
		means = append(means, Mean(series[b*batchLen:(b+1)*batchLen]))
	}
	return MeanCI(means, level)
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples >= Hi
	total  int
}

// NewHistogram returns a histogram with nBins equal-width bins over [lo, hi).
// It returns an error for invalid bounds or bin counts.
func NewHistogram(lo, hi float64, nBins int) (*Histogram, error) {
	if nBins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bins, got %d", nBins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram bounds [%v, %v) are empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nBins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		bin := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if bin >= len(h.Counts) {
			bin = len(h.Counts) - 1
		}
		h.Counts[bin]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Frac returns the fraction of all samples that fell into bin i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
