package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mvml/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator = 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("variance of <2 samples should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("expected error for q > 1")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestTCriticalKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		df    int
		level float64
		want  float64
	}{
		{1, 0.95, 12.706},
		{2, 0.95, 4.303},
		{10, 0.95, 2.228},
		{30, 0.95, 2.042},
		{10, 0.99, 3.169},
	}
	for _, c := range cases {
		got := tCritical(c.df, c.level)
		if !almostEqual(got, c.want, 0.01) {
			t.Errorf("tCritical(df=%d, %v) = %v, want %v", c.df, c.level, got, c.want)
		}
	}
}

func TestMeanCICoversTrueMean(t *testing.T) {
	// For n draws from N(10, 2), the 95% CI should contain 10 roughly 95%
	// of the time; check it does so in at least 90 of 100 replications.
	r := xrand.New(99)
	covered := 0
	for rep := 0; rep < 100; rep++ {
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = r.Normal(10, 2)
		}
		ci, err := MeanCI(xs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ci.Contains(10) {
			covered++
		}
	}
	if covered < 88 {
		t.Fatalf("95%% CI covered true mean only %d/100 times", covered)
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Fatal("expected error for single sample")
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Fatal("expected error for bad level")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{Lo: 1, Hi: 3}
	b := Interval{Lo: 2.5, Hi: 4}
	c := Interval{Lo: 3.5, Hi: 5}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("expected a and b to overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("expected a and c to be disjoint")
	}
}

func TestBatchMeans(t *testing.T) {
	r := xrand.New(5)
	series := make([]float64, 10000)
	for i := range series {
		series[i] = r.Normal(7, 1)
	}
	ci, err := BatchMeans(series, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(7) {
		t.Fatalf("batch-means CI %v does not contain true mean 7", ci)
	}
	if ci.Hi-ci.Lo > 0.2 {
		t.Fatalf("batch-means CI %v too wide for 10k iid samples", ci)
	}
}

func TestBatchMeansErrors(t *testing.T) {
	if _, err := BatchMeans([]float64{1, 2, 3}, 1, 0.95); err == nil {
		t.Fatal("expected error for 1 batch")
	}
	if _, err := BatchMeans([]float64{1, 2, 3}, 5, 0.95); err == nil {
		t.Fatal("expected error for too-short series")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d, want 2", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin 4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if !almostEqual(h.Frac(0), 2.0/7.0, 1e-12) {
		t.Fatalf("Frac(0) = %v", h.Frac(0))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("expected error for empty range")
	}
}

func TestPropertyMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return Mean(clean) == 0
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-9 && m <= Max(clean)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		return Variance(clean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
