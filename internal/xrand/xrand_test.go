package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependentOfOrder(t *testing.T) {
	parent := New(7)
	x := parent.Split("a", 1).Uint64()
	y := parent.Split("b", 2).Uint64()

	parent2 := New(7)
	y2 := parent2.Split("b", 2).Uint64()
	x2 := parent2.Split("a", 1).Uint64()

	if x != x2 || y != y2 {
		t.Fatal("split streams depend on split order")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	a.Split("ignored", 0)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split consumed parent state")
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	parent := New(3)
	seen := map[uint64]bool{}
	for i := uint64(0); i < 50; i++ {
		v := parent.Split("run", i).Uint64()
		if seen[v] {
			t.Fatalf("duplicate first value across split streams at i=%d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(19)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frequency %v deviates from 0.1", i, frac)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const mean, n = 5.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean %v too far from %v", got, mean)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Exp(0)")
		}
	}()
	New(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(29)
	const mean, sd, n = 3.0, 2.0, 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("Normal mean %v too far from %v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Normal stddev %v too far from %v", math.Sqrt(variance), sd)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(31)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency %v", p, got)
	}
}

func TestCategoricalProportions(t *testing.T) {
	r := New(37)
	weights := []float64{1, 2, 7}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("category %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalIgnoresNonPositive(t *testing.T) {
	r := New(41)
	weights := []float64{0, -3, 5, 0}
	for i := 0; i < 1000; i++ {
		if got := r.Categorical(weights); got != 2 {
			t.Fatalf("Categorical chose zero-weight index %d", got)
		}
	}
}

func TestCategoricalAllZeroFallsBackToUniform(t *testing.T) {
	r := New(43)
	weights := []float64{0, 0, 0}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[r.Categorical(weights)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("uniform fallback only hit %d of 3 categories", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(47)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestPropertyIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUniformInRange(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		lo := math.Mod(math.Abs(a), 100)
		hi := lo + math.Mod(math.Abs(b), 100) + 1
		v := New(seed).Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(10)
	}
}
