package xrand

// Fuzz coverage for the Split derivation, which the parallel runner's
// determinism contract leans on: distinct (label, index) pairs must yield
// independent streams, and deriving a child must never disturb the parent.

import "testing"

// firstWords returns the first n outputs of a stream.
func firstWords(r *Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func FuzzXrandSplit(f *testing.F) {
	f.Add(uint64(1), "sys", uint64(0), "sim", uint64(1))
	f.Add(uint64(42), "rep", uint64(7), "rep", uint64(8))
	f.Add(uint64(0), "", uint64(0), "a", uint64(0))
	f.Add(uint64(99), "campaign/0", uint64(3), "campaign/1", uint64(3))
	f.Fuzz(func(t *testing.T, seed uint64, labelA string, idxA uint64, labelB string, idxB uint64) {
		if len(labelA) > 64 || len(labelB) > 64 {
			t.Skip("oversized label")
		}
		root := New(seed)
		before := *root

		a := firstWords(root.Split(labelA, idxA), 8)
		b := firstWords(root.Split(labelB, idxB), 8)

		// Split is a pure read of the parent: the parent state must be
		// untouched, so concurrent Split calls are race-free and repeated
		// derivations are stable.
		if *root != before {
			t.Fatal("Split advanced the parent generator state")
		}
		a2 := firstWords(root.Split(labelA, idxA), 8)
		for i := range a {
			if a[i] != a2[i] {
				t.Fatalf("Split(%q, %d) not reproducible at word %d", labelA, idxA, i)
			}
		}

		// Distinct (label, index) pairs must give visibly distinct streams:
		// a collision in all of the first 8 words would mean correlated
		// replications.
		if labelA == labelB && idxA == idxB {
			return
		}
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("Split(%q, %d) and Split(%q, %d) produced identical first-8 outputs",
				labelA, idxA, labelB, idxB)
		}
	})
}
