// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in this repository.
//
// All simulations (DSPN solving, fault processes, driving scenarios, dataset
// generation) take an explicit *Rand so that experiments are reproducible
// given a seed and independent across derived streams. The core generator is
// xoshiro256**, seeded through SplitMix64; stream derivation hashes a label
// and index into the seed so that, for example, run 3 of route 5 always sees
// the same random sequence regardless of scheduling.
package xrand

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; derive independent streams with Split instead of sharing.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical sequences.
func New(seed uint64) *Rand {
	var r Rand
	r.reseed(seed)
	return &r
}

func (r *Rand) reseed(seed uint64) {
	// SplitMix64 expansion of the seed into the xoshiro state. This is the
	// initialisation recommended by the xoshiro authors; it guarantees the
	// state is never all-zero.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split derives an independent generator identified by a label and an index.
// The derived stream is a pure function of (parent seed material, label, i):
// it does not advance the parent, so the order in which streams are split
// off does not matter.
func (r *Rand) Split(label string, i uint64) *Rand {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for j := 0; j < len(label); j++ {
		h ^= uint64(label[j])
		h *= 1099511628211
	}
	h ^= i + 0x9e3779b97f4a7c15
	h *= 1099511628211
	// Mix in the parent's state without consuming from it.
	h ^= r.s[0] ^ bits.RotateLeft64(r.s[2], 23)
	return New(h)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: Exp with non-positive mean")
	}
	// Inverse CDF; 1-Float64() avoids log(0).
	return -mean * math.Log(1-r.Float64())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Marsaglia polar method, one value per call).
func (r *Rand) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Categorical draws an index with probability proportional to weights[i].
// Non-positive weights are treated as zero. If all weights are zero it
// returns a uniform index. It panics on an empty slice.
func (r *Rand) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("xrand: Categorical with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
