package gateway

import (
	"fmt"
	"reflect"
	"testing"
)

func ringOf(t *testing.T, n int) *Ring {
	t.Helper()
	r := NewRing(0)
	for i := 0; i < n; i++ {
		if err := r.Add(fmt.Sprintf("shard-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("class:%d:%d", i%43, i)
	}
	return keys
}

// TestRingUniformity pins the distribution quality the virtual nodes buy:
// across 4, 8 and 16 shards every shard's share of a large key population
// stays within a constant factor of the ideal 1/N.
func TestRingUniformity(t *testing.T) {
	keys := testKeys(20000)
	for _, n := range []int{4, 8, 16} {
		r := ringOf(t, n)
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Lookup(k)] = counts[r.Lookup(k)] + 1
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d shards received keys", n, len(counts))
		}
		ideal := float64(len(keys)) / float64(n)
		for shard, c := range counts {
			ratio := float64(c) / ideal
			if ratio < 0.5 || ratio > 1.7 {
				t.Errorf("n=%d: %s owns %.2fx the ideal share (%d keys)", n, shard, ratio, c)
			}
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing property: adding a
// shard to an N-shard ring remaps only keys that move TO the new shard, and
// about K/(N+1) of them; removing a shard remaps only the keys it owned.
func TestRingMinimalMovement(t *testing.T) {
	const n = 8
	keys := testKeys(10000)
	r := ringOf(t, n)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	if err := r.Add("shard-new"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		after := r.Lookup(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "shard-new" {
			t.Fatalf("key %q moved %s -> %s, not to the added shard", k, before[k], after)
		}
	}
	ideal := len(keys) / (n + 1)
	if moved == 0 || moved > 2*ideal {
		t.Fatalf("add remapped %d keys, want (0, %d]", moved, 2*ideal)
	}

	// Removing the shard must restore the original assignment exactly.
	if err := r.Remove("shard-new"); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if got := r.Lookup(k); got != before[k] {
			t.Fatalf("key %q did not return to %s after remove (got %s)", k, before[k], got)
		}
	}
}

// TestRingSuccessorsDeterministic pins the failover order: distinct shards,
// primary first, and byte-identical across an independently built ring with
// the same membership — two gateways with the same view agree on routing.
func TestRingSuccessorsDeterministic(t *testing.T) {
	a, b := ringOf(t, 8), ringOf(t, 8)
	for _, k := range testKeys(500) {
		sa, sb := a.Successors(k, 3), b.Successors(k, 3)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("successor order diverged for %q: %v vs %v", k, sa, sb)
		}
		if len(sa) != 3 {
			t.Fatalf("want 3 successors, got %v", sa)
		}
		if sa[0] != a.Lookup(k) {
			t.Fatalf("successors[0] %s != owner %s", sa[0], a.Lookup(k))
		}
		seen := map[string]bool{}
		for _, s := range sa {
			if seen[s] {
				t.Fatalf("duplicate shard in successors %v", sa)
			}
			seen[s] = true
		}
	}
	// n above the shard count truncates instead of repeating.
	if got := len(ringOf(t, 2).Successors("k", 5)); got != 2 {
		t.Fatalf("successors beyond ring size: got %d shards, want 2", got)
	}
}

func TestRingMembershipErrors(t *testing.T) {
	r := ringOf(t, 2)
	if err := r.Add("shard-0"); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := r.Remove("nope"); err == nil {
		t.Fatal("unknown remove accepted")
	}
	if err := r.Add(""); err == nil {
		t.Fatal("empty shard id accepted")
	}
	if got := NewRing(0).Lookup("k"); got != "" {
		t.Fatalf("empty ring lookup returned %q", got)
	}
}
