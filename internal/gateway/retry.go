package gateway

import "sync"

// retryBudget is a per-client token bucket bounding retry amplification: each
// first attempt deposits Ratio tokens (capped at Burst), each retry spends
// one. A client whose requests mostly succeed accumulates budget for the
// occasional failover; a client whose requests mostly fail burns through it
// and degrades to single-attempt service — retries can then never multiply a
// brown-out, which is exactly the retry-storm failure mode this guards
// against.
type retryBudget struct {
	mu      sync.Mutex
	ratio   float64
	burst   float64
	clients map[string]*bucket
	max     int
}

type bucket struct {
	tokens float64
}

// defaultClient is the bucket key for requests with no client identity; they
// share one budget, so anonymous traffic cannot mint unlimited retries by
// omitting the header.
const defaultClient = "_anon"

func newRetryBudget(ratio, burst float64, maxClients int) *retryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	if maxClients <= 0 {
		maxClients = 1024
	}
	return &retryBudget{
		ratio:   ratio,
		burst:   burst,
		clients: make(map[string]*bucket),
		max:     maxClients,
	}
}

// deposit credits one first attempt for client.
func (rb *retryBudget) deposit(client string) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	b := rb.get(client)
	b.tokens += rb.ratio
	if b.tokens > rb.burst {
		b.tokens = rb.burst
	}
}

// spend consumes one retry token, reporting whether the retry is allowed.
func (rb *retryBudget) spend(client string) bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	b := rb.get(client)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// get resolves (or creates) a client's bucket. New clients start at full
// burst — the first request a client ever sends should be allowed to fail
// over. When the table is full, unknown clients fold into the shared
// anonymous bucket instead of growing without bound.
func (rb *retryBudget) get(client string) *bucket {
	if client == "" {
		client = defaultClient
	}
	if b, ok := rb.clients[client]; ok {
		return b
	}
	if len(rb.clients) >= rb.max && client != defaultClient {
		client = defaultClient
		if b, ok := rb.clients[client]; ok {
			return b
		}
	}
	b := &bucket{tokens: rb.burst}
	rb.clients[client] = b
	return b
}
