package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvml/internal/health"
	"mvml/internal/obs"
	"mvml/internal/serve"
	"mvml/internal/tensor"
)

// Config parameterises a Gateway. The zero value is usable; zero fields take
// the documented defaults.
type Config struct {
	// VirtualNodes per shard on the hash ring (<=0: DefaultVirtualNodes).
	VirtualNodes int
	// MaxInflight bounds concurrently routed requests; beyond it the gateway
	// sheds with ErrShed (HTTP 429) instead of queueing. <=0 defaults to 256.
	MaxInflight int
	// FailoverDepth is the maximum number of distinct shards one request may
	// try (primary + failovers). <=0 defaults to 3.
	FailoverDepth int
	// RetryRatio is the retry-budget deposit per first attempt (<=0: 0.1 —
	// at most ~10% retry amplification in steady state); RetryBurst caps a
	// client's accumulated budget (<=0: 10).
	RetryRatio float64
	RetryBurst float64
	// MaxClients bounds the retry-budget table (<=0: 1024).
	MaxClients int
}

// Sentinel errors; the HTTP layer maps ErrShed to 429 and the rest to 503.
var (
	// ErrShed is returned when the gateway is at MaxInflight and rejects the
	// request at the front door.
	ErrShed = errors.New("gateway: overloaded, request shed")
	// ErrNoShards is returned when no shard is available to try.
	ErrNoShards = errors.New("gateway: no shards on ring")
	// ErrExhausted is returned when every candidate shard was tried (or the
	// retry budget ran dry) without an answer.
	ErrExhausted = errors.New("gateway: all candidate shards failed")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("gateway: closed")

	errEmptyShardLabel = errors.New("gateway: shard has no ShardLabel")
)

// RouteInfo is the routing trace of one request: which shards were attempted
// in order, and which one answered. For a fixed ring membership, health state
// and failure schedule the trace is deterministic — the property the failover
// determinism test pins.
type RouteInfo struct {
	Key      string   `json:"key"`
	Attempts []string `json:"attempts"`
	Shard    string   `json:"shard,omitempty"`
}

// Gateway fronts a set of serving shards. Create with New, add shards with
// AddShard, route with Classify, stop with Close (shards are not owned by the
// gateway and stay up unless the autoscaler retires them).
type Gateway struct {
	cfg    Config
	m      *gwMetrics
	budget *retryBudget

	mu     sync.RWMutex
	ring   *Ring
	shards map[string]ShardClient

	inflight atomic.Int64
	closed   atomic.Bool

	// latencies is a fixed ring of recent end-to-end routing latencies — the
	// autoscaler's p99 signal.
	latMu   sync.Mutex
	lat     []time.Duration
	latNext int
	latFull bool

	scaler *autoscaler // nil until StartAutoscaler
}

// New returns a gateway with no shards. rt carries telemetry (nil: none).
func New(cfg Config, rt *obs.Runtime) *Gateway {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.FailoverDepth <= 0 {
		cfg.FailoverDepth = 3
	}
	return &Gateway{
		cfg:    cfg,
		m:      newGwMetrics(rt),
		budget: newRetryBudget(cfg.RetryRatio, cfg.RetryBurst, cfg.MaxClients),
		ring:   NewRing(cfg.VirtualNodes),
		shards: make(map[string]ShardClient),
		lat:    make([]time.Duration, 512),
	}
}

// AddShard registers a shard and puts it on the ring.
func (g *Gateway) AddShard(sc ShardClient) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ring.Add(sc.ID()); err != nil {
		return err
	}
	g.shards[sc.ID()] = sc
	g.m.shards.Set(float64(g.ring.Size()))
	return nil
}

// RemoveShard takes a shard off the ring and returns it; its keyspace falls
// to the ring successors. The shard itself keeps running — draining and
// closing are the caller's (or the autoscaler's) business.
func (g *Gateway) RemoveShard(id string) (ShardClient, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ring.Remove(id); err != nil {
		return nil, err
	}
	sc := g.shards[id]
	delete(g.shards, id)
	g.m.shards.Set(float64(g.ring.Size()))
	return sc, nil
}

// Shard returns a registered shard by id (nil when unknown).
func (g *Gateway) Shard(id string) ShardClient {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.shards[id]
}

// Shards returns the ring membership in sorted order.
func (g *Gateway) Shards() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring.Shards()
}

// canaryDenom carves 1/canaryDenom of an unhealthy shard's primary keyspace
// out as canary traffic that still routes to it first. Without the trickle,
// health-aware routing deadlocks: a deprioritised shard receives no traffic,
// its engine sees no clean observations, and its verdict never recovers —
// the shard starves forever on one transient incident.
const canaryDenom = 8

func isCanary(key string) bool { return hash64(key+"#canary")%canaryDenom == 0 }

// Plan returns the candidate shards for key in attempt order, applying the
// health-aware routing policy to the ring's successor list:
//
//  1. the hash owner, unhealthy or not, for the canary slice of its
//     keyspace — the recovery path (see canaryDenom);
//  2. healthy, non-draining shards in ring order — the primary pass;
//  3. degraded, non-draining shards in ring order — deprioritised, still
//     answering;
//  4. the remaining successors (critical or draining) as a last resort —
//     a wrong answer chance beats no answer in a fail-operational system.
//
// The policy is a pure function of key, ring membership and shard state, so
// two gateways with the same view route identically.
func (g *Gateway) Plan(key string) []ShardClient {
	plan, _ := g.plan(key)
	return plan
}

// plan also reports the ring owner's id, so Classify can count health-driven
// reroutes (first attempt away from the owner).
func (g *Gateway) plan(key string) ([]ShardClient, string) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	succ := g.ring.Successors(key, g.cfg.FailoverDepth)
	if len(succ) == 0 {
		return nil, ""
	}
	owner := succ[0]
	plan := make([]ShardClient, 0, len(succ))
	if sc := g.shards[owner]; sc != nil && !sc.Draining() && sc.Level() != health.Healthy && isCanary(key) {
		plan = append(plan, sc)
	}
	add := func(pick func(sc ShardClient) bool) {
		for _, id := range succ {
			sc := g.shards[id]
			if sc == nil {
				continue
			}
			already := false
			for _, p := range plan {
				if p.ID() == id {
					already = true
					break
				}
			}
			if !already && pick(sc) {
				plan = append(plan, sc)
			}
		}
	}
	add(func(sc ShardClient) bool { return sc.Level() == health.Healthy && !sc.Draining() })
	add(func(sc ShardClient) bool { return sc.Level() == health.Degraded && !sc.Draining() })
	add(func(sc ShardClient) bool { return true })
	return plan, owner
}

// RouteKey derives the ring key for a classify request: the client-supplied
// image hash, or the synthetic class index. Keeping the derivation here means
// the HTTP handler and in-process callers route identically.
func RouteKey(req *serve.ClassifyRequest) string {
	if req.Class != nil {
		return fmt.Sprintf("class:%d:%d", *req.Class, req.Seed)
	}
	h := uint64(1469598103934665603) // FNV-1a offset basis, inlined over floats
	for _, v := range req.Image {
		h ^= uint64(v * 65536)
		h *= 1099511628211
	}
	return fmt.Sprintf("img:%016x", h)
}

// Classify routes one request: plan candidates for key, attempt in order.
// The first attempt is free; each subsequent attempt (failover) spends one
// token from client's retry budget. A shard answering — even degraded —
// terminates the walk. Queue-full, closed and no-proposal errors advance to
// the next candidate; anything else (malformed input) returns immediately.
func (g *Gateway) Classify(key, client string, img *tensor.Tensor) (serve.Result, RouteInfo, error) {
	info := RouteInfo{Key: key}
	if g.closed.Load() {
		return serve.Result{}, info, ErrClosed
	}
	if n := g.inflight.Add(1); n > int64(g.cfg.MaxInflight) {
		g.inflight.Add(-1)
		g.m.shed.Inc()
		g.emitShed(key, client)
		return serve.Result{}, info, ErrShed
	}
	defer func() {
		g.m.inflight.Set(float64(g.inflight.Add(-1)))
	}()
	g.m.inflight.Set(float64(g.inflight.Load()))

	plan, owner := g.plan(key)
	if len(plan) == 0 {
		return serve.Result{}, info, ErrNoShards
	}
	if plan[0].ID() != owner {
		// The hash owner was skipped for health or drain: a reroute, not a
		// failover (nothing failed — the plan just started elsewhere).
		g.m.rerouted.Inc()
	}
	g.budget.deposit(client)

	var sp *obs.Span
	sink := g.m.spans
	if sink != nil {
		sp = sink.StartTrace("route")
		sp.SetAttr("key", key)
		if client != "" {
			sp.SetAttr("client", client)
		}
		defer sp.End()
	}
	start := time.Now()

	var lastErr error
	for i, sc := range plan {
		if i > 0 {
			// Failover: needs budget. A dry budget ends the walk — bounded
			// retry amplification is the whole point.
			if !g.budget.spend(client) {
				g.m.noBudget.Inc()
				if sp != nil {
					sp.SetAttr("budget_exhausted", true)
				}
				break
			}
			g.m.retries.Inc()
			g.m.failovers.Inc()
		}
		info.Attempts = append(info.Attempts, sc.ID())
		var t0 float64
		if sink != nil {
			t0 = sink.Now()
		}
		res, err := sc.Classify(img)
		if sp != nil {
			attrs := map[string]any{"shard": sc.ID()}
			if err != nil {
				attrs["error"] = err.Error()
			}
			kind := "attempt"
			if i > 0 {
				kind = "failover"
			}
			sp.Interval(kind, t0, sink.Now(), attrs)
		}
		switch {
		case err == nil:
			info.Shard = sc.ID()
			if sc.ID() == owner {
				g.m.routed.Inc()
			}
			g.m.attempts.Observe(float64(i + 1))
			g.recordLatency(time.Since(start))
			if sp != nil {
				sp.SetAttr("shard", sc.ID())
				if i > 0 {
					sp.SetAttr("failovers", i)
				}
			}
			return res, info, nil
		case errors.Is(err, serve.ErrQueueFull),
			errors.Is(err, serve.ErrClosed),
			errors.Is(err, serve.ErrNoProposals):
			lastErr = err // transient / shard-local: try the next candidate
		default:
			return serve.Result{}, info, err // request-shaped error: no retry helps
		}
	}
	g.m.failed.Inc()
	if lastErr == nil {
		lastErr = ErrExhausted
	}
	return serve.Result{}, info, fmt.Errorf("%w (last: %v)", ErrExhausted, lastErr)
}

// emitShed records a shed decision as a zero-duration trace, so overload
// shows up on the same timeline as the routing it displaced.
func (g *Gateway) emitShed(key, client string) {
	if g.m.spans == nil {
		return
	}
	t := g.m.spans.Now()
	attrs := map[string]any{"key": key}
	if client != "" {
		attrs["client"] = client
	}
	g.m.spans.Emit(g.m.spans.NewTraceID(), 0, "shed", t, t, attrs)
}

// recordLatency feeds the autoscaler's p99 ring.
func (g *Gateway) recordLatency(d time.Duration) {
	g.latMu.Lock()
	g.lat[g.latNext] = d
	g.latNext++
	if g.latNext == len(g.lat) {
		g.latNext = 0
		g.latFull = true
	}
	g.latMu.Unlock()
}

// latencySnapshot copies the recorded latencies (unordered).
func (g *Gateway) latencySnapshot() []time.Duration {
	g.latMu.Lock()
	defer g.latMu.Unlock()
	n := g.latNext
	if g.latFull {
		n = len(g.lat)
	}
	out := make([]time.Duration, n)
	copy(out, g.lat[:n])
	return out
}

// Inflight returns the number of requests currently being routed.
func (g *Gateway) Inflight() int { return int(g.inflight.Load()) }

// Close stops the gateway (and its autoscaler, if started). Registered
// shards are not closed — the gateway routes over them, it does not own them.
func (g *Gateway) Close() {
	if g.closed.Swap(true) {
		return
	}
	if g.scaler != nil {
		g.scaler.stop()
	}
}
