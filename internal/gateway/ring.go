// Package gateway is the front tier of a multi-shard deployment: it
// consistent-hashes classification requests across N serving shards, watches
// each shard's streaming health verdict, fails over to ring successors when a
// shard degrades or drains, enforces per-client retry budgets, sheds load at
// the front door, and autoscales worker pools (and whole shards) from queue
// depth and tail latency.
//
// The package is deliberately transport-agnostic: the gateway talks to shards
// through the ShardClient interface. LocalShard wraps an in-process
// *serve.Server (the topology every test and the demo uses); an HTTP-backed
// client implementing the same interface slots in unchanged when shards move
// out of process.
package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each shard owns
// VirtualNodes points on a 64-bit circle; a key routes to the first point
// clockwise from its hash. Virtual nodes smooth the key distribution
// (ownership imbalance shrinks roughly as 1/sqrt(vnodes)) and make shard
// add/remove move only ~K/N of the keyspace instead of reshuffling it all.
//
// Ring is not concurrency-safe; the Gateway guards it with its own mutex.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	shards map[string]struct{}
}

type ringPoint struct {
	hash  uint64
	shard string
}

// DefaultVirtualNodes balances lookup cost against distribution smoothness
// for single-digit shard counts.
const DefaultVirtualNodes = 64

// NewRing returns an empty ring with the given virtual-node count per shard
// (<=0 selects DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, shards: make(map[string]struct{})}
}

// hash64 is the ring's hash: FNV-1a over the byte string, then a
// splitmix64-style avalanche. Raw FNV of short, similar strings ("shard-0#1",
// "shard-0#2", ...) lands clustered on the circle — shard ownership shares
// then spread as wide as 0.2x–1.9x the ideal; the finaliser restores the
// uniformity the virtual nodes are supposed to buy. Deterministic across
// processes and platforms, which keeps routing traces reproducible.
func hash64(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a shard's virtual nodes. Adding an existing shard is an error —
// silent re-adds would double its ring weight.
func (r *Ring) Add(shard string) error {
	if shard == "" {
		return fmt.Errorf("gateway: empty shard id")
	}
	if _, ok := r.shards[shard]; ok {
		return fmt.Errorf("gateway: shard %q already on ring", shard)
	}
	r.shards[shard] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:  hash64(fmt.Sprintf("%s#%d", shard, i)),
			shard: shard,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return nil
}

// Remove deletes a shard's virtual nodes. Its keyspace falls to the
// clockwise successors; every other key keeps its owner.
func (r *Ring) Remove(shard string) error {
	if _, ok := r.shards[shard]; !ok {
		return fmt.Errorf("gateway: shard %q not on ring", shard)
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Size returns the number of shards on the ring.
func (r *Ring) Size() int { return len(r.shards) }

// Shards returns the shard ids on the ring in sorted order.
func (r *Ring) Shards() []string {
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the shard owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	succ := r.Successors(key, 1)
	if len(succ) == 0 {
		return ""
	}
	return succ[0]
}

// Successors returns up to n distinct shards in clockwise order starting at
// key's owner. Index 0 is the primary; the rest are the failover order, which
// every gateway computes identically for the same ring membership — that
// determinism is what makes routing traces reproducible.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	h := hash64(key)
	// First ring point at or clockwise-after h, wrapping at the top.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for range r.points {
		p := r.points[i%len(r.points)]
		i++
		if _, dup := seen[p.shard]; !dup {
			seen[p.shard] = struct{}{}
			out = append(out, p.shard)
			if len(out) == n {
				break
			}
		}
	}
	return out
}
